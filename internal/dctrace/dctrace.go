// Package dctrace generates a synthetic workload trace with the statistical
// shape of the Google ClusterData trace used in the paper's motivation study
// (Section II, Figure 1). The real trace is proprietary-format archival data
// not available offline, so we reproduce the properties the study depends
// on: machine-normalized CPU and memory demands with memory/CPU ratios
// spanning three orders of magnitude (Section I cites [1], [2]), heavy-
// tailed task sizes, and lognormal task durations.
package dctrace

import (
	"math"
	"math/rand"
	"sort"
)

// Task is one allocation request: demands are machine-normalized (1.0 = a
// whole server's worth of that resource).
type Task struct {
	ID     int
	Arrive float64 // seconds since trace start
	End    float64 // departure time
	CPU    float64 // fraction of one server's CPU
	Mem    float64 // fraction of one server's memory
}

// Config tunes the generator.
type Config struct {
	Seed  int64
	Tasks int
	// ArrivalRate is tasks per second (Poisson arrivals).
	ArrivalRate float64
	// MeanDuration is the mean task duration in seconds (lognormal).
	MeanDuration float64
	// CPULogMu/CPULogSigma shape the lognormal CPU demand.
	CPULogMu, CPULogSigma float64
	// RatioLogMu/RatioLogSigma shape the lognormal memory/CPU ratio;
	// sigma ~1.3 spans three orders of magnitude at the tails (paper
	// Section I), and a negative mu makes most tasks CPU-bound so memory
	// is the resource that strands on partially filled servers, as in the
	// Google trace.
	RatioLogMu, RatioLogSigma float64
}

// DefaultConfig reproduces the trace shape used for Figure 1. The arrival
// rate is tuned so steady-state demand fills ~85% of the 12555-server
// infrastructure.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Tasks:         400000,
		ArrivalRate:   95,
		MeanDuration:  1000,
		CPULogMu:      -2.5,
		CPULogSigma:   0.8,
		RatioLogMu:    -1.125,
		RatioLogSigma: 1.5,
	}
}

// Generate produces the trace, sorted by arrival time.
func Generate(cfg Config) []Task {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tasks := make([]Task, cfg.Tasks)
	now := 0.0
	// Duration lognormal with the requested mean: mean = exp(mu+sigma^2/2).
	durSigma := 1.0
	durMu := math.Log(cfg.MeanDuration) - durSigma*durSigma/2
	for i := range tasks {
		now += rng.ExpFloat64() / cfg.ArrivalRate
		cpu := math.Exp(cfg.CPULogMu + cfg.CPULogSigma*rng.NormFloat64())
		cpu = clamp(cpu, 0.001, 1.0)
		ratio := math.Exp(cfg.RatioLogMu + cfg.RatioLogSigma*rng.NormFloat64())
		mem := clamp(cpu*ratio, 0.001, 1.0)
		dur := math.Exp(durMu + durSigma*rng.NormFloat64())
		tasks[i] = Task{
			ID:     i,
			Arrive: now,
			End:    now + dur,
			CPU:    cpu,
			Mem:    mem,
		}
	}
	return tasks
}

// RatioSpreadOrders returns the log10 spread between the 0.5th and 99.5th
// percentile of memory/CPU ratios — the "three orders of magnitude" the
// paper cites.
func RatioSpreadOrders(tasks []Task) float64 {
	if len(tasks) == 0 {
		return 0
	}
	ratios := make([]float64, len(tasks))
	for i, t := range tasks {
		ratios[i] = t.Mem / t.CPU
	}
	sort.Float64s(ratios)
	lo := ratios[int(0.005*float64(len(ratios)))]
	hi := ratios[int(0.995*float64(len(ratios)))]
	return math.Log10(hi / lo)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
