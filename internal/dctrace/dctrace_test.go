package dctrace

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tasks = 1000
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
	cfg.Seed = 2
	c := Generate(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRatioSpansOrders(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tasks = 20000
	tasks := Generate(cfg)
	orders := RatioSpreadOrders(tasks)
	// Section I: memory/CPU demand ratios span about three orders of
	// magnitude. Clamping at the demand bounds compresses the raw spread a
	// little, so accept >= 2.
	if orders < 2 || orders > 6 {
		t.Fatalf("ratio spread = %.2f orders of magnitude", orders)
	}
}

func TestMeanDurationApproximatelyConfigured(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tasks = 30000
	cfg.MeanDuration = 500
	tasks := Generate(cfg)
	var sum float64
	for _, task := range tasks {
		sum += task.End - task.Arrive
	}
	mean := sum / float64(len(tasks))
	if math.Abs(mean-500)/500 > 0.15 {
		t.Fatalf("mean duration = %.1f, want ~500", mean)
	}
}

func TestRatioSpreadEmpty(t *testing.T) {
	if RatioSpreadOrders(nil) != 0 {
		t.Fatal("empty trace should report zero spread")
	}
}
