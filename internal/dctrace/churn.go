package dctrace

import (
	"math"
	"math/rand"
	"sort"
)

// Churn trace: a seeded time series of control-plane events with the
// statistical shape of datacenter churn — Poisson attach arrivals under a
// diurnal-ish rate envelope, tenant growth bursts that multiply the arrival
// rate for a window, lognormal attachment lifetimes and sizes, per-host
// memory-pressure random walks that drive autoscaler stealing, and agent
// flap storms. The replay engine (internal/bench) feeds these events to the
// real controlplane saga engine; everything here is a pure function of the
// seed so a replay report is byte-identical per seed.

// ChurnKind labels one churn event.
type ChurnKind string

// Churn event kinds.
const (
	// ChurnAttach is one attach arrival: compute host Compute steals Bytes
	// from donor host Donor. Seq identifies the attachment for its paired
	// departure.
	ChurnAttach ChurnKind = "attach"
	// ChurnDepart tears down the attachment created by the ChurnAttach with
	// Seq == Ref (skipped by the driver if that attach failed).
	ChurnDepart ChurnKind = "depart"
	// ChurnFlap crash-restarts the agent on Host, losing its volatile
	// state. Flaps arrive in storms; StormEnd marks the last flap of one.
	ChurnFlap ChurnKind = "flap"
	// ChurnPressure adjusts Host's synthetic memory demand by Bytes (signed)
	// — the random walk the autoscaler watermarks react to.
	ChurnPressure ChurnKind = "pressure"
	// ChurnScale runs one autoscaler evaluation (the orchestrator's
	// periodic memory-pressure stealing pass).
	ChurnScale ChurnKind = "scale"
)

// ChurnEvent is one timestamped event of the trace.
type ChurnEvent struct {
	At       float64 // seconds since trace start
	Kind     ChurnKind
	Seq      int   // attach: attachment sequence number
	Ref      int   // depart: Seq of the attach to tear down
	Compute  int   // attach: compute host index
	Donor    int   // attach: donor host index
	Host     int   // flap/pressure host index
	Bytes    int64 // attach size, or signed pressure delta
	StormEnd bool  // flap: last event of its storm
}

// ChurnConfig tunes the churn generator. Zero values take the defaults of
// DefaultChurnConfig.
type ChurnConfig struct {
	Seed    int64
	Minutes int // simulated trace duration
	Hosts   int

	// AttachPerMinute is the base attach arrival rate; the effective rate
	// is modulated by the diurnal envelope and burst windows.
	AttachPerMinute float64
	// MeanLifetime is the mean attachment lifetime in seconds (lognormal);
	// steady-state live attachments ~= AttachPerMinute/60 * MeanLifetime.
	MeanLifetime float64
	// DiurnalAmplitude in [0,1) modulates the arrival rate sinusoidally
	// over one full period spanning the trace (a compressed "day").
	DiurnalAmplitude float64
	// Bursts tenant-growth windows multiply the arrival rate by
	// BurstFactor for a window of duration/(4*Bursts) each.
	Bursts      int
	BurstFactor float64

	// FlapStorms agent flap storms of FlapsPerStorm flaps each, evenly
	// spaced through the trace.
	FlapStorms    int
	FlapsPerStorm int

	// PressurePerMinute memory-pressure random-walk events (across all
	// hosts), each a signed delta of up to PressureStepBytes.
	PressurePerMinute float64
	PressureStepBytes int64

	// ScalePerMinute autoscaler evaluations, evenly spaced.
	ScalePerMinute float64

	// BytesLogMu/BytesLogSigma shape the lognormal attachment size in MiB,
	// clamped to [MinBytes, MaxBytes].
	BytesLogMu, BytesLogSigma float64
	MinBytes, MaxBytes        int64
}

// DefaultChurnConfig returns a rack-shaped default: 8 hosts, 800 attach
// arrivals per simulated minute (≥1000 sagas/min including departures),
// ~2.4 s lifetimes (~32 live attachments at steady state), two growth
// bursts, one flap storm per minute, and 1–4 MiB attachment sizes.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Seed:              1,
		Minutes:           2,
		Hosts:             8,
		AttachPerMinute:   800,
		MeanLifetime:      2.4,
		DiurnalAmplitude:  0.5,
		Bursts:            2,
		BurstFactor:       2.0,
		FlapStorms:        2,
		FlapsPerStorm:     3,
		PressurePerMinute: 30,
		PressureStepBytes: 8 << 20,
		ScalePerMinute:    3,
		BytesLogMu:        0.4,
		BytesLogSigma:     0.6,
		MinBytes:          1 << 20,
		MaxBytes:          4 << 20,
	}
}

// normalize fills zero fields from the defaults (Bursts/FlapStorms/
// ScalePerMinute may legitimately be zero — they stay zero when Minutes is
// set, so callers can disable whole event classes).
func (cfg *ChurnConfig) normalize() {
	def := DefaultChurnConfig()
	if cfg.Minutes <= 0 {
		cfg.Minutes = def.Minutes
	}
	if cfg.Hosts <= 1 {
		cfg.Hosts = def.Hosts
	}
	if cfg.AttachPerMinute <= 0 {
		cfg.AttachPerMinute = def.AttachPerMinute
	}
	if cfg.MeanLifetime <= 0 {
		cfg.MeanLifetime = def.MeanLifetime
	}
	if cfg.BurstFactor <= 0 {
		cfg.BurstFactor = def.BurstFactor
	}
	if cfg.FlapsPerStorm <= 0 {
		cfg.FlapsPerStorm = def.FlapsPerStorm
	}
	if cfg.PressureStepBytes <= 0 {
		cfg.PressureStepBytes = def.PressureStepBytes
	}
	if cfg.BytesLogSigma <= 0 {
		cfg.BytesLogMu = def.BytesLogMu
		cfg.BytesLogSigma = def.BytesLogSigma
	}
	if cfg.MinBytes <= 0 {
		cfg.MinBytes = def.MinBytes
	}
	if cfg.MaxBytes < cfg.MinBytes {
		cfg.MaxBytes = def.MaxBytes
	}
}

// rateAt returns the effective attach arrival rate (per second) at t.
func (cfg *ChurnConfig) rateAt(t, duration float64) float64 {
	rate := cfg.AttachPerMinute / 60.0
	rate *= 1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*t/duration)
	if cfg.Bursts > 0 {
		width := duration / (4 * float64(cfg.Bursts))
		for b := 0; b < cfg.Bursts; b++ {
			center := duration * (float64(b) + 0.5) / float64(cfg.Bursts)
			if math.Abs(t-center) < width/2 {
				rate *= cfg.BurstFactor
			}
		}
	}
	return rate
}

// GenerateChurn produces the churn trace, sorted by time. Attach arrivals
// come from a nonhomogeneous Poisson process (thinning against the peak
// rate), so burst windows and the diurnal envelope shape the density
// without breaking seeded determinism.
func GenerateChurn(cfg ChurnConfig) []ChurnEvent {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	duration := float64(cfg.Minutes) * 60
	var evs []ChurnEvent

	// Attach/depart pairs. Lifetime lognormal with the requested mean.
	lifeSigma := 0.7
	lifeMu := math.Log(cfg.MeanLifetime) - lifeSigma*lifeSigma/2
	peak := cfg.AttachPerMinute / 60.0 * (1 + cfg.DiurnalAmplitude)
	if cfg.Bursts > 0 && cfg.BurstFactor > 1 {
		peak *= cfg.BurstFactor
	}
	seq := 0
	for t := rng.ExpFloat64() / peak; t < duration; t += rng.ExpFloat64() / peak {
		if rng.Float64() >= cfg.rateAt(t, duration)/peak {
			continue // thinned candidate
		}
		compute := rng.Intn(cfg.Hosts)
		donor := (compute + 1 + rng.Intn(cfg.Hosts-1)) % cfg.Hosts
		mib := math.Exp(cfg.BytesLogMu + cfg.BytesLogSigma*rng.NormFloat64())
		bytes := int64(mib) << 20
		if bytes < cfg.MinBytes {
			bytes = cfg.MinBytes
		}
		if bytes > cfg.MaxBytes {
			bytes = cfg.MaxBytes
		}
		evs = append(evs, ChurnEvent{
			At: t, Kind: ChurnAttach, Seq: seq,
			Compute: compute, Donor: donor, Bytes: bytes,
		})
		life := math.Exp(lifeMu + lifeSigma*rng.NormFloat64())
		if t+life < duration {
			evs = append(evs, ChurnEvent{At: t + life, Kind: ChurnDepart, Ref: seq})
		}
		seq++
	}

	// Flap storms, evenly spaced, flaps 50 ms apart within a storm.
	for s := 0; s < cfg.FlapStorms; s++ {
		at := duration * float64(s+1) / float64(cfg.FlapStorms+1)
		for k := 0; k < cfg.FlapsPerStorm; k++ {
			evs = append(evs, ChurnEvent{
				At: at + 0.05*float64(k), Kind: ChurnFlap,
				Host:     rng.Intn(cfg.Hosts),
				StormEnd: k == cfg.FlapsPerStorm-1,
			})
		}
	}

	// Memory-pressure random walk.
	nPressure := int(cfg.PressurePerMinute * float64(cfg.Minutes))
	for i := 0; i < nPressure; i++ {
		delta := int64(float64(cfg.PressureStepBytes) * (0.5 + rng.Float64()))
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		evs = append(evs, ChurnEvent{
			At: rng.Float64() * duration, Kind: ChurnPressure,
			Host: rng.Intn(cfg.Hosts), Bytes: delta,
		})
	}

	// Autoscaler evaluations on a fixed cadence.
	if cfg.ScalePerMinute > 0 {
		interval := 60 / cfg.ScalePerMinute
		for at := interval; at < duration; at += interval {
			evs = append(evs, ChurnEvent{At: at, Kind: ChurnScale})
		}
	}

	// Stable sort: equal timestamps keep their deterministic build order.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// ChurnMix counts the events of a trace by kind.
type ChurnMix struct {
	Attaches   int `json:"attaches"`
	Departs    int `json:"departs"`
	Flaps      int `json:"flaps"`
	FlapStorms int `json:"flap_storms"`
	Pressure   int `json:"pressure_events"`
	ScaleEvals int `json:"scale_evals"`
}

// MixOf tallies a trace.
func MixOf(evs []ChurnEvent) ChurnMix {
	var m ChurnMix
	for _, e := range evs {
		switch e.Kind {
		case ChurnAttach:
			m.Attaches++
		case ChurnDepart:
			m.Departs++
		case ChurnFlap:
			m.Flaps++
			if e.StormEnd {
				m.FlapStorms++
			}
		case ChurnPressure:
			m.Pressure++
		case ChurnScale:
			m.ScaleEvals++
		}
	}
	return m
}
