package dctrace

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestChurnDeterministic(t *testing.T) {
	cfg := DefaultChurnConfig()
	a := GenerateChurn(cfg)
	b := GenerateChurn(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different traces (%d vs %d events)", len(a), len(b))
	}
	cfg.Seed = 2
	c := GenerateChurn(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical traces")
	}
}

func TestChurnSortedAndWellFormed(t *testing.T) {
	cfg := DefaultChurnConfig()
	evs := GenerateChurn(cfg)
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	duration := float64(cfg.Minutes) * 60
	attachAt := map[int]float64{}
	for i, e := range evs {
		if i > 0 && evs[i-1].At > e.At {
			t.Fatalf("event %d out of order: %f after %f", i, e.At, evs[i-1].At)
		}
		if e.At < 0 || e.At >= duration+1 {
			t.Fatalf("event %d time %f outside trace", i, e.At)
		}
		switch e.Kind {
		case ChurnAttach:
			if e.Compute == e.Donor {
				t.Fatalf("attach %d: compute == donor == %d", e.Seq, e.Compute)
			}
			if e.Compute < 0 || e.Compute >= cfg.Hosts || e.Donor < 0 || e.Donor >= cfg.Hosts {
				t.Fatalf("attach %d: host out of range", e.Seq)
			}
			if e.Bytes < cfg.MinBytes || e.Bytes > cfg.MaxBytes {
				t.Fatalf("attach %d: bytes %d outside [%d,%d]", e.Seq, e.Bytes, cfg.MinBytes, cfg.MaxBytes)
			}
			if _, dup := attachAt[e.Seq]; dup {
				t.Fatalf("duplicate attach seq %d", e.Seq)
			}
			attachAt[e.Seq] = e.At
		case ChurnDepart:
			at, ok := attachAt[e.Ref]
			if !ok {
				t.Fatalf("depart references unseen attach %d", e.Ref)
			}
			if e.At < at {
				t.Fatalf("depart for %d at %f before its attach at %f", e.Ref, e.At, at)
			}
		case ChurnFlap:
			if e.Host < 0 || e.Host >= cfg.Hosts {
				t.Fatalf("flap host %d out of range", e.Host)
			}
		case ChurnPressure:
			if e.Bytes == 0 {
				t.Fatal("pressure event with zero delta")
			}
		}
	}
}

func TestChurnMixMatchesConfig(t *testing.T) {
	cfg := DefaultChurnConfig()
	m := MixOf(GenerateChurn(cfg))

	// Arrival count should be near rate*minutes (diurnal + burst modulation
	// averages out close to the base rate; allow a wide band).
	want := cfg.AttachPerMinute * float64(cfg.Minutes)
	if float64(m.Attaches) < 0.6*want || float64(m.Attaches) > 1.8*want {
		t.Fatalf("attaches %d not near expected %.0f", m.Attaches, want)
	}
	if m.Departs > m.Attaches {
		t.Fatalf("departs %d exceed attaches %d", m.Departs, m.Attaches)
	}
	// Mean lifetime 2.4 s << the 2-minute trace: nearly every attach departs.
	if float64(m.Departs) < 0.8*float64(m.Attaches) {
		t.Fatalf("only %d/%d attaches depart; lifetimes too long", m.Departs, m.Attaches)
	}
	if m.Flaps != cfg.FlapStorms*cfg.FlapsPerStorm {
		t.Fatalf("flaps %d, want %d", m.Flaps, cfg.FlapStorms*cfg.FlapsPerStorm)
	}
	if m.FlapStorms != cfg.FlapStorms {
		t.Fatalf("storms %d, want %d", m.FlapStorms, cfg.FlapStorms)
	}
	wantPressure := int(cfg.PressurePerMinute * float64(cfg.Minutes))
	if m.Pressure != wantPressure {
		t.Fatalf("pressure events %d, want %d", m.Pressure, wantPressure)
	}
	if m.ScaleEvals == 0 {
		t.Fatal("no scale evaluations")
	}
}

func TestChurnBurstDensity(t *testing.T) {
	// With one burst window and a strong factor, arrival density inside the
	// window must exceed the trace-wide average.
	cfg := DefaultChurnConfig()
	cfg.Bursts = 1
	cfg.BurstFactor = 4
	cfg.DiurnalAmplitude = 0
	evs := GenerateChurn(cfg)
	duration := float64(cfg.Minutes) * 60
	width := duration / 4
	lo, hi := duration/2-width/2, duration/2+width/2
	inWindow, total := 0, 0
	for _, e := range evs {
		if e.Kind != ChurnAttach {
			continue
		}
		total++
		if e.At >= lo && e.At < hi {
			inWindow++
		}
	}
	windowDensity := float64(inWindow) / width
	avgDensity := float64(total) / duration
	if windowDensity < 1.5*avgDensity {
		t.Fatalf("burst window density %.2f/s not above average %.2f/s", windowDensity, avgDensity)
	}
}

func TestChurnRateScaling(t *testing.T) {
	lowCfg := DefaultChurnConfig()
	lowCfg.AttachPerMinute = 200
	highCfg := DefaultChurnConfig()
	highCfg.AttachPerMinute = 800
	low := MixOf(GenerateChurn(lowCfg)).Attaches
	high := MixOf(GenerateChurn(highCfg)).Attaches
	ratio := float64(high) / float64(low)
	if math.Abs(ratio-4) > 1.5 {
		t.Fatalf("rate 4x should yield ~4x attaches, got %d vs %d (ratio %.2f)", high, low, ratio)
	}
}

func TestChurnStormEndMarksLastFlap(t *testing.T) {
	cfg := DefaultChurnConfig()
	cfg.FlapStorms = 3
	cfg.FlapsPerStorm = 4
	var flaps []ChurnEvent
	for _, e := range GenerateChurn(cfg) {
		if e.Kind == ChurnFlap {
			flaps = append(flaps, e)
		}
	}
	if len(flaps) != 12 {
		t.Fatalf("got %d flaps, want 12", len(flaps))
	}
	if !sort.SliceIsSorted(flaps, func(i, j int) bool { return flaps[i].At < flaps[j].At }) {
		t.Fatal("flaps not time-ordered")
	}
	for i, f := range flaps {
		wantEnd := i%4 == 3
		if f.StormEnd != wantEnd {
			t.Fatalf("flap %d StormEnd=%v, want %v", i, f.StormEnd, wantEnd)
		}
	}
}
