// Package fabric models the rack-scale network topologies of Section VII:
// beyond the prototype's direct-attached cables, a production deployment
// needs a switching layer — the paper argues at most one switch keeps the
// RTT acceptable, and weighs circuit-switched optics (no congestion, port
// limited) against packet switches (any-to-any, congestion-prone).
//
// A Switch here interposes between phy channels: a circuit-configured
// switch forwards frames from an ingress channel to its configured egress
// with a fixed switching latency; a packet switch additionally serializes
// all traffic through a shared crossbar with output queueing.
package fabric

import (
	"fmt"

	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// Mode selects the switching discipline.
type Mode int

// Switching disciplines of Section VII.
const (
	// Circuit is an optical circuit switch: after (slow, out-of-band)
	// reconfiguration, a circuit behaves like a cable with one extra
	// crossing — enormous bandwidth, no congestion, port-limited.
	Circuit Mode = iota
	// Packet is an electrical packet switch: any-to-any reachability
	// without reconfiguration, but frames pay store-and-forward and share
	// the crossbar, introducing congestion.
	Packet
)

var modeNames = [...]string{"circuit", "packet"}

// String returns the mode name.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config tunes a switch.
type Config struct {
	Mode Mode
	// Ports is the port count (circuit switches are port-limited; the
	// paper cites ns/us-scale optical switches of modest radix).
	Ports int
	// CrossingLatency is the per-frame forwarding latency: ~tens of ns for
	// an optical circuit (propagation only), hundreds for a packet switch
	// (store-and-forward + arbitration).
	CrossingLatency sim.Time
	// CrossbarBytesPerSec bounds the packet switch's aggregate throughput;
	// ignored in circuit mode (each circuit has the full line rate).
	CrossbarBytesPerSec float64
}

// DefaultCircuitConfig returns an optical circuit switch: 32 ports, 30 ns.
func DefaultCircuitConfig() Config {
	return Config{Mode: Circuit, Ports: 32, CrossingLatency: 30 * sim.Nanosecond}
}

// DefaultPacketConfig returns an electrical packet switch: 32 ports,
// 300 ns store-and-forward, 4x the channel rate of crossbar capacity.
func DefaultPacketConfig() Config {
	return Config{
		Mode:                Packet,
		Ports:               32,
		CrossingLatency:     300 * sim.Nanosecond,
		CrossbarBytesPerSec: 4 * phy.ChannelBytesPerSec,
	}
}

// Switch forwards frames between phy channels.
type Switch struct {
	k        *sim.Kernel
	name     string
	cfg      Config
	crossbar *sim.Pipe // packet mode only
	circuits int

	forwarded int64
	bytes     int64
}

// NewSwitch builds a switch.
func NewSwitch(k *sim.Kernel, name string, cfg Config) *Switch {
	if cfg.Ports <= 0 {
		panic("fabric: switch needs ports")
	}
	s := &Switch{k: k, name: name, cfg: cfg}
	if cfg.Mode == Packet {
		rate := cfg.CrossbarBytesPerSec
		if rate <= 0 {
			rate = float64(cfg.Ports) * phy.ChannelBytesPerSec
		}
		s.crossbar = sim.NewPipe(k, rate)
	}
	return s
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Connect configures a unidirectional circuit: frames arriving on `in` are
// forwarded out on `out`. Each circuit consumes one ingress and one egress
// port. It returns an error when the switch is out of ports.
func (s *Switch) Connect(in, out *phy.Channel) error {
	if s.circuits*2+2 > s.cfg.Ports {
		return fmt.Errorf("fabric: switch %s out of ports (%d)", s.name, s.cfg.Ports)
	}
	s.circuits++
	in.OnDeliver(func(d phy.Delivery) {
		s.forwarded++
		s.bytes += int64(d.Bytes)
		delay := s.cfg.CrossingLatency
		if s.crossbar != nil {
			_, done := s.crossbar.Reserve(int64(d.Bytes))
			delay += done - s.k.Now()
		}
		s.k.Schedule(delay, func() {
			// Preserve corruption markers through the switch: a frame
			// mangled on the first hop stays mangled.
			s.retransmit(out, d)
		})
	})
	return nil
}

func (s *Switch) retransmit(out *phy.Channel, d phy.Delivery) {
	if d.Corrupted {
		// Re-inject as an already-corrupted payload: flip the CRC by
		// transmitting a mangled copy so the far LLC sees the error.
		if wire, ok := d.Payload.([]byte); ok {
			mangled := append([]byte(nil), wire...)
			mangled[len(mangled)-1] ^= 0xFF
			out.Transmit(mangled, d.Bytes)
			return
		}
	}
	out.Transmit(d.Payload, d.Bytes)
}

// ConnectDuplex wires both directions of two links through the switch:
// a.fwd -> b-side, b.rev path etc. Given host-side links la (host A to
// switch) and lb (switch to host B), frames from A reach B and vice versa.
func (s *Switch) ConnectDuplex(la, lb *phy.Link) error {
	if err := s.Connect(la.AtoB, lb.AtoB); err != nil {
		return err
	}
	return s.Connect(lb.BtoA, la.BtoA)
}

// Stats returns (frames forwarded, bytes forwarded).
func (s *Switch) Stats() (frames, bytes int64) { return s.forwarded, s.bytes }

// Circuits returns the number of configured circuits.
func (s *Switch) Circuits() int { return s.circuits }
