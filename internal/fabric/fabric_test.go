package fabric

import (
	"testing"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/endpoint"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// switchedRig wires a compute endpoint to a memory endpoint through a
// switch: host links go host <-> switch on each side.
type switchedRig struct {
	k  *sim.Kernel
	ce *endpoint.ComputeEndpoint
	me *endpoint.MemoryEndpoint
	sw *Switch
}

func newSwitchedRig(t *testing.T, cfg Config, faults phy.FaultConfig) *switchedRig {
	t.Helper()
	k := sim.NewKernel()
	ce, err := endpoint.NewCompute(k, "c", 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	me := endpoint.NewMemory(k, "m", 90*sim.Nanosecond)
	sw := NewSwitch(k, "sw0", cfg)

	// Two physical hops: compute<->switch and switch<->memory.
	la := phy.NewLink(k, "a-sw", phy.LanesPerChannel, phy.SerdesCrossing, faults)
	lb := phy.NewLink(k, "sw-b", phy.LanesPerChannel, phy.SerdesCrossing, faults)
	// The LLC endpoints terminate on the host-side channels; the switch
	// bridges the middle.
	cp, mp := llc.NewPair(k, "llc", &phy.Link{AtoB: la.AtoB, BtoA: lb.BtoA}, llc.DefaultConfig())
	// NewPair wired deliver callbacks endpoint-to-endpoint; rewire through
	// the switch: A's egress goes to the switch, which forwards onto the
	// B-side link, and vice versa.
	if err := sw.Connect(la.AtoB, lb.AtoB); err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(lb.BtoA, la.BtoA); err != nil {
		t.Fatal(err)
	}
	// Far ends of the bridged links deliver into the LLC ports.
	lb.AtoB.OnDeliver(deliverOf(mp))
	la.BtoA.OnDeliver(deliverOf(cp))

	ce.AttachPort(cp)
	me.AttachPort(mp)
	reg, err := me.Steal("s", 0x10000000, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.RMMU().Map(0, reg.Base, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := ce.Router().AddFlow(1, cp); err != nil {
		t.Fatal(err)
	}
	return &switchedRig{k: k, ce: ce, me: me, sw: sw}
}

// deliverOf exposes a Port's receive path for rewiring (NewPair installed
// it on the direct link; the switched topology needs it on the second-hop
// link).
func deliverOf(p *llc.Port) func(phy.Delivery) {
	return p.Deliver
}

func measureLoad(t *testing.T, r *switchedRig) sim.Time {
	t.Helper()
	var lat sim.Time
	r.k.Go("probe", func(p *sim.Proc) {
		start := p.Now()
		if _, err := r.ce.Load(p, 0, capi.Cacheline); err != nil {
			t.Error(err)
		}
		lat = p.Now() - start
	})
	r.k.RunUntil(sim.Second)
	return lat
}

func TestCircuitSwitchAddsOneCrossing(t *testing.T) {
	direct := measureDirect(t)
	switched := measureLoad(t, newSwitchedRig(t, DefaultCircuitConfig(), phy.FaultConfig{}))
	extra := switched - direct
	// Two switch crossings (request + response) at 30ns, plus the second
	// hop's serialization.
	if extra < 60*sim.Nanosecond || extra > 250*sim.Nanosecond {
		t.Fatalf("circuit switch overhead = %v (direct %v, switched %v)", extra, direct, switched)
	}
}

func measureDirect(t *testing.T) sim.Time {
	t.Helper()
	k := sim.NewKernel()
	ce, err := endpoint.NewCompute(k, "c", 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	me := endpoint.NewMemory(k, "m", 90*sim.Nanosecond)
	link := phy.NewLink(k, "direct", phy.LanesPerChannel, phy.SerdesCrossing, phy.FaultConfig{})
	cp, mp := llc.NewPair(k, "llc", link, llc.DefaultConfig())
	ce.AttachPort(cp)
	me.AttachPort(mp)
	reg, err := me.Steal("s", 0x10000000, 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.RMMU().Map(0, reg.Base, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := ce.Router().AddFlow(1, cp); err != nil {
		t.Fatal(err)
	}
	var lat sim.Time
	k.Go("probe", func(p *sim.Proc) {
		start := p.Now()
		if _, err := ce.Load(p, 0, capi.Cacheline); err != nil {
			t.Error(err)
		}
		lat = p.Now() - start
	})
	k.RunUntil(sim.Second)
	return lat
}

func TestPacketSwitchSlowerThanCircuit(t *testing.T) {
	circuit := measureLoad(t, newSwitchedRig(t, DefaultCircuitConfig(), phy.FaultConfig{}))
	packet := measureLoad(t, newSwitchedRig(t, DefaultPacketConfig(), phy.FaultConfig{}))
	if packet <= circuit {
		t.Fatalf("packet switch (%v) should cost more than circuit (%v)", packet, circuit)
	}
}

func TestSwitchedDataIntegrity(t *testing.T) {
	r := newSwitchedRig(t, DefaultCircuitConfig(), phy.FaultConfig{})
	r.k.Go("app", func(p *sim.Proc) {
		want := make([]byte, 128)
		for i := range want {
			want[i] = byte(i ^ 0x5A)
		}
		if err := r.ce.Store(p, 0x2000, want); err != nil {
			t.Error(err)
			return
		}
		got, err := r.ce.Load(p, 0x2000, 128)
		if err != nil {
			t.Error(err)
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("byte %d corrupted through switch", i)
				return
			}
		}
	})
	r.k.RunUntil(sim.Second)
	if fr, by := r.sw.Stats(); fr == 0 || by == 0 {
		t.Fatal("switch forwarded nothing")
	}
}

func TestSwitchedReplayUnderLoss(t *testing.T) {
	r := newSwitchedRig(t, DefaultCircuitConfig(), phy.FaultConfig{DropProb: 0.05, CorruptProb: 0.05, Seed: 17})
	done := 0
	r.k.Go("app", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if _, err := r.ce.Load(p, uint64(i)*128, 128); err != nil {
				t.Error(err)
				return
			}
			done++
		}
	})
	r.k.RunUntil(10 * sim.Second)
	if done != 100 {
		t.Fatalf("only %d/100 loads completed through lossy switched fabric", done)
	}
}

func TestSwitchPortExhaustion(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", Config{Mode: Circuit, Ports: 4, CrossingLatency: 30 * sim.Nanosecond})
	mk := func() *phy.Link {
		return phy.NewLink(k, "l", phy.LanesPerChannel, 0, phy.FaultConfig{})
	}
	if err := sw.Connect(mk().AtoB, mk().AtoB); err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(mk().AtoB, mk().AtoB); err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(mk().AtoB, mk().AtoB); err == nil {
		t.Fatal("switch accepted circuits beyond its port count")
	}
	if sw.Circuits() != 2 {
		t.Fatalf("circuits = %d", sw.Circuits())
	}
}

func TestModeString(t *testing.T) {
	if Circuit.String() != "circuit" || Packet.String() != "packet" {
		t.Fatal("bad mode names")
	}
}
