package chaos

import (
	"encoding/json"

	"thymesisflow/internal/sim/shard"
)

// Report is the result of one campaign: every scenario's outcome plus the
// campaign seed that reproduces it exactly. All values derive from virtual
// time and deterministic counters, so the same seed yields a byte-identical
// report regardless of wall-clock, host, or worker count.
type Report struct {
	Seed      int64            `json:"seed"`
	Passed    bool             `json:"passed"`
	Scenarios []ScenarioReport `json:"scenarios"`
	// ControlPlane holds the orchestration-layer campaign results (sagas,
	// journal recovery, reconciliation), when that campaign ran.
	ControlPlane []CPScenarioReport `json:"control_plane,omitempty"`
}

// ScenarioReport is one scenario's outcome.
type ScenarioReport struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Seed is the scenario's derived seed. Running the scenario alone with
	// the campaign seed reproduces this value and the whole report.
	Seed     int64    `json:"seed"`
	Passed   bool     `json:"passed"`
	Failures []string `json:"failures,omitempty"`

	// Workload outcome.
	Ops        int    `json:"ops"`
	OpsOK      int    `json:"ops_ok"`
	OpsFailed  int    `json:"ops_failed"`
	FirstError string `json:"first_error,omitempty"`
	// LinesVerified counts cachelines whose content was checked — against
	// donor memory for every acknowledged store, and additionally end to end
	// through the datapath when the attachment survives the scenario.
	LinesVerified int `json:"lines_verified"`

	// Degradation measurements (virtual time).
	WorkNS         int64   `json:"work_ns"`
	AvgLatencyNS   int64   `json:"avg_latency_ns"`
	MaxLatencyNS   int64   `json:"max_latency_ns"`
	ThroughputMiBs float64 `json:"throughput_mib_s"`

	// Latency is the end-to-end percentile snapshot from the per-stage
	// attribution pipeline. Like everything else here it derives from
	// virtual time, so it is byte-identical for a given seed.
	Latency LatencyStats `json:"latency"`

	// Protocol and wire counters aggregated over both link directions.
	LLC LLCStats `json:"llc"`
	Phy PhyStats `json:"phy"`

	// FinalState is the attachment's lifecycle state at scenario end.
	FinalState string `json:"final_state"`

	// ShardHealth describes the parallel runtime's execution shape (windows,
	// barrier stall, flush depth, imbalance); nil on single-kernel runs. It
	// characterizes the runtime configuration rather than the simulation, so
	// it is the one section that legitimately varies with the shard count —
	// still byte-identical per (seed, shard count). Cross-shard-count
	// determinism comparisons strip it.
	ShardHealth *shard.Health `json:"shard_health,omitempty"`
}

// LatencyStats is the scenario's end-to-end latency distribution as seen by
// the attribution pipeline (internal/latency), plus the mean per-transaction
// time charged to the credit_stall stage — the pipeline's view of
// backpressure under faults.
type LatencyStats struct {
	Count             int64   `json:"count"`
	MeanNS            float64 `json:"mean_ns"`
	P50NS             float64 `json:"p50_ns"`
	P99NS             float64 `json:"p99_ns"`
	P999NS            float64 `json:"p999_ns"`
	MaxNS             float64 `json:"max_ns"`
	CreditStallMeanNS float64 `json:"credit_stall_mean_ns"`
}

// LLCStats aggregates the protocol counters of both ports of a link.
type LLCStats struct {
	TxFrames        int64 `json:"tx_frames"`
	TxControl       int64 `json:"tx_control"`
	TxReplayed      int64 `json:"tx_replayed"`
	TxTransactions  int64 `json:"tx_transactions"`
	RxTransactions  int64 `json:"rx_transactions"`
	RxCRCErrors     int64 `json:"rx_crc_errors"`
	RxGaps          int64 `json:"rx_gaps"`
	RxDuplicates    int64 `json:"rx_duplicates"`
	CreditStalls    int64 `json:"credit_stalls"`
	CreditProbes    int64 `json:"credit_probes"`
	ReplayExhausted int64 `json:"replay_exhausted"`
	ReplayOverflows int64 `json:"replay_overflows"`
	TxAbandoned     int64 `json:"tx_abandoned"`
	LinkDownEvents  int64 `json:"link_down_events"`
}

// PhyStats aggregates wire counters over both channels of a link.
type PhyStats struct {
	Sent      int64 `json:"sent"`
	Dropped   int64 `json:"dropped"`
	Corrupted int64 `json:"corrupted"`
}

// JSON renders the report as indented JSON. Map-free structures and
// deterministic inputs make the output byte-identical for a given seed.
func (r Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
