package chaos

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestCPCampaignPasses runs the control-plane catalogue: every scenario
// must satisfy the orchestration invariants (no leaked reservations, no
// orphaned donor memory, no half-configured agents, no parked sagas).
func TestCPCampaignPasses(t *testing.T) {
	for _, rep := range RunCPCampaign(CPCatalogue(), testSeed) {
		if !rep.Passed {
			t.Errorf("scenario %s failed: %s", rep.Name, strings.Join(rep.Failures, "; "))
		}
		if rep.Attaches == 0 {
			t.Errorf("scenario %s attached nothing", rep.Name)
		}
	}
}

// TestCPScenariosExerciseFaults spot-checks that each scenario drove the
// machinery it claims to.
func TestCPScenariosExerciseFaults(t *testing.T) {
	byName := map[string]CPScenarioReport{}
	for _, rep := range RunCPCampaign(CPCatalogue(), testSeed) {
		byName[rep.Name] = rep
	}
	if rep := byName["cp-agent-flap"]; rep.Transport.Crashes == 0 || rep.Counters.ReconcileRepairs == 0 {
		t.Errorf("cp-agent-flap: crashes=%d repairs=%d", rep.Transport.Crashes, rep.Counters.ReconcileRepairs)
	}
	if rep := byName["cp-orchestrator-crash-midsaga"]; rep.Crashes == 0 || rep.RecoveredSagas == 0 {
		t.Errorf("cp-orchestrator-crash-midsaga: crashes=%d recovered=%d", rep.Crashes, rep.RecoveredSagas)
	}
	if rep := byName["cp-duplicate-command-storm"]; rep.Transport.Dups == 0 || rep.Counters.SagaRetries == 0 {
		t.Errorf("cp-duplicate-command-storm: dups=%d retries=%d", rep.Transport.Dups, rep.Counters.SagaRetries)
	}
	if rep := byName["cp-ha-leader-kill-midsaga"]; rep.Crashes == 0 || rep.Raft == nil || rep.Raft.LeaderChanges == 0 {
		t.Errorf("cp-ha-leader-kill-midsaga: crashes=%d raft=%+v", rep.Crashes, rep.Raft)
	}
	if rep := byName["cp-ha-minority-partition"]; rep.Raft == nil || !rep.Raft.Converged || rep.Transport.PartitionDrops == 0 {
		t.Errorf("cp-ha-minority-partition: raft=%+v partition_drops=%d", rep.Raft, rep.Transport.PartitionDrops)
	}
	if rep := byName["cp-ha-majority-partition"]; rep.Raft == nil || rep.Raft.FencedWrites == 0 {
		t.Errorf("cp-ha-majority-partition: raft=%+v", rep.Raft)
	}
	if rep := byName["cp-ha-split-brain-fencing"]; rep.Raft == nil || rep.Raft.FencedWrites < 2 || !rep.Raft.Converged {
		t.Errorf("cp-ha-split-brain-fencing: raft=%+v", rep.Raft)
	}
	if rep := byName["cp-ha-follower-lag-catchup"]; rep.Raft == nil || !rep.Raft.Converged || rep.Raft.DroppedMessages == 0 {
		t.Errorf("cp-ha-follower-lag-catchup: raft=%+v", rep.Raft)
	}
}

// TestCPHAGroundTruthLabels: every HA scenario exports ground-truth labels
// (optional — the dominant faults live in the raft layer, outside the
// anomaly rules' scored series).
func TestCPHAGroundTruthLabels(t *testing.T) {
	for _, s := range haCatalogue() {
		labels := CPGroundTruth(s)
		if len(labels) == 0 {
			t.Errorf("%s exports no ground-truth labels", s.Name)
		}
		for _, l := range labels {
			if !l.Optional {
				t.Errorf("%s exports required label %+v; HA labels must be optional", s.Name, l)
			}
		}
	}
}

// TestCPCampaignTraceSummaries asserts every scenario report carries a saga
// trace summary whose aggregated stage durations tile the total wall time
// exactly — the chaos-level form of the tracing acceptance criterion (the
// per-trace invariant is enforced inside verify and would surface as a
// scenario failure).
func TestCPCampaignTraceSummaries(t *testing.T) {
	for _, rep := range RunCPCampaign(CPCatalogue(), testSeed) {
		tr := rep.Trace
		if tr.Sagas == 0 || tr.Events == 0 {
			t.Errorf("%s: empty trace summary: %+v", rep.Name, tr)
			continue
		}
		var sum int64
		for _, st := range tr.Stages {
			sum += st.DurNS
		}
		if sum != tr.TotalNS {
			t.Errorf("%s: stage durations sum to %dns, total is %dns", rep.Name, sum, tr.TotalNS)
		}
		if tr.TotalNS <= 0 {
			t.Errorf("%s: non-positive total trace time %dns", rep.Name, tr.TotalNS)
		}
	}
}

// TestCPCampaignDeterministic requires byte-identical reports for the same
// seed, across multiple seeds.
func TestCPCampaignDeterministic(t *testing.T) {
	for _, seed := range []int64{testSeed, testSeed + 1, testSeed + 2, 7} {
		a, err := json.MarshalIndent(RunCPCampaign(CPCatalogue(), seed), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(RunCPCampaign(CPCatalogue(), seed), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: report not byte-identical across runs", seed)
		}
	}
	a, _ := json.Marshal(RunCPCampaign(CPCatalogue(), testSeed))
	b, _ := json.Marshal(RunCPCampaign(CPCatalogue(), testSeed+1))
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical reports")
	}
}
