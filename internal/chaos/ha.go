// HA control-plane chaos: fault campaigns against a 3-node replicated
// control plane. The saga write-ahead journal rides an embedded Raft log
// (internal/raft) through controlplane.ReplicaSet; scenarios kill leaders
// mid-saga, partition minorities and majorities, drive split-brain with a
// fenced stale leader, and lag a follower behind the commit frontier —
// then assert both the orchestration invariants (via cpWorld.verify) and
// the replication invariants (committed journals identical across
// replicas, no committed saga lost to failover).
//
// The Raft cluster advances virtual time only inside Append calls and
// explicit ticks, all driven from the scenario goroutine, so every report
// is byte-identical per seed like the rest of the catalogue.

package chaos

import (
	"math/rand"

	"thymesisflow/internal/controlplane"
)

// haReplicaIDs are the control-plane node names of every HA scenario.
var haReplicaIDs = []string{"cp-a", "cp-b", "cp-c"}

// CPRaftSummary is the deterministic roll-up of the replica set at
// scenario end, embedded in CPScenarioReport for HA scenarios.
type CPRaftSummary struct {
	Nodes           int    `json:"nodes"`
	FinalLeader     string `json:"final_leader,omitempty"`
	FinalTerm       uint64 `json:"final_term"`
	FinalCommit     uint64 `json:"final_commit"`
	LeaderChanges   uint64 `json:"leader_changes"`
	DroppedMessages uint64 `json:"dropped_messages"`
	// FencedWrites counts journal appends that died with ErrQuorumLost on a
	// leader cut off from its quorum (the stale-leader fencing mechanism).
	FencedWrites int `json:"fenced_writes,omitempty"`
	// Converged reports whether every running replica ended the scenario
	// with an identical committed journal.
	Converged bool `json:"converged"`
}

// haWorld extends the durable control-plane world with a Raft replica set:
// the journal every booted Service writes is the current leader's
// replicated view, wrapped in the same CrashableJournal used to script
// process kills.
type haWorld struct {
	*cpWorld
	rs     *controlplane.ReplicaSet
	leader string
	fenced int
	down   string // at most one raft node is kept stopped at a time
}

func newHAWorld(rep *CPScenarioReport, faults controlplane.TransportFaults, obs *CPObserver, seed int64) *haWorld {
	w := newCPWorld(rep, faults, obs)
	if w == nil {
		return nil
	}
	rs, err := controlplane.NewReplicaSet(haReplicaIDs, seed)
	if err != nil {
		rep.fail("replica set: %v", err)
		return nil
	}
	leader, err := rs.ElectLeader(400)
	if err != nil {
		rep.fail("initial election: %v", err)
		return nil
	}
	h := &haWorld{cpWorld: w, rs: rs, leader: leader}
	h.journal = controlplane.NewCrashableJournal(rs.Journal(leader))
	return h
}

// bootLeader boots a control-plane process bound to the current leader:
// its journal view, its leader gate, and its raft status surface.
func (h *haWorld) bootLeader(tr controlplane.Transport) *controlplane.Service {
	svc := h.cpWorld.boot(tr)
	id := h.leader
	svc.SetLeaderGate(h.rs.Gate(id))
	svc.SetRaftStatus(func() controlplane.RaftStatus { return h.rs.StatusFor(id) })
	if h.obs != nil {
		h.obs.observeRaft(func() controlplane.RaftStatus { return h.rs.StatusFor(h.leader) })
	}
	return svc
}

// electOther ticks the replica set until a leader other than exclude holds
// a fully committed log (a stale leader can linger as "leader" in its own
// partition, so excluding it is what "the majority side elected" means).
func (h *haWorld) electOther(rep *CPScenarioReport, exclude string) string {
	for i := 0; i < 800; i++ {
		if id := h.rs.Leader(); id != "" && id != exclude {
			st := h.rs.StatusFor(id)
			if st.CommitIndex == st.LastIndex {
				return id
			}
		}
		if err := h.rs.Tick(1); err != nil {
			rep.fail("tick during election: %v", err)
			return ""
		}
	}
	rep.fail("no successor leader elected (excluding %s)", exclude)
	return ""
}

// failover handles a dead or fenced leader: bank the dead process's
// counters, optionally stop its raft node (process kill vs partition),
// elect a successor, rebind the journal, and boot + recover a fresh
// control plane on the new leader.
func (h *haWorld) failover(rep *CPScenarioReport, old *controlplane.Service, stopOld bool) *controlplane.Service {
	if old != nil {
		addCounters(rep, old.Counters())
	}
	rep.Crashes++
	stale := h.leader
	if stopOld {
		// Revive any previously killed node first so the quorum is never
		// reduced below majority by stacking kills.
		if h.down != "" {
			if err := h.rs.Restart(h.down); err != nil {
				rep.fail("restart %s: %v", h.down, err)
				return nil
			}
			h.down = ""
		}
		h.rs.Stop(stale)
		h.down = stale
	}
	next := h.electOther(rep, stale)
	if next == "" {
		return nil
	}
	h.leader = next
	h.journal = controlplane.NewCrashableJournal(h.rs.Journal(next))
	svc := h.bootLeader(h.faulty)
	rr, err := svc.Recover()
	if err != nil {
		rep.fail("recover on new leader %s: %v", next, err)
		return svc
	}
	rep.RecoveredSagas += rr.RolledForward + rr.Compensated + rr.Reparked
	svc.Reconcile()
	return svc
}

// heal shadows cpWorld.heal: same bank/recover/reconcile sequence, but the
// fresh process is leader-bound.
func (h *haWorld) heal(rep *CPScenarioReport, old *controlplane.Service) *controlplane.Service {
	if old != nil {
		addCounters(rep, old.Counters())
	}
	h.journal.FailAfter(-1)
	svc := h.bootLeader(h.inner)
	rr, err := svc.Recover()
	if err != nil {
		rep.fail("recover: %v", err)
		return svc
	}
	rep.RecoveredSagas += rr.RolledForward + rr.Compensated + rr.Reparked
	for i := 0; i < 5; i++ {
		if r := svc.Reconcile(); r.Repairs() == 0 && r.Unrepaired == 0 {
			break
		}
	}
	addCounters(rep, svc.Counters())
	return svc
}

// settle heals every raft partition, revives every stopped node, and ticks
// until replication has caught every replica up to the leader's commit.
func (h *haWorld) settle(rep *CPScenarioReport) {
	h.rs.HealAll()
	if h.down != "" {
		if err := h.rs.Restart(h.down); err != nil {
			rep.fail("restart %s: %v", h.down, err)
		}
		h.down = ""
	}
	for i := 0; i < 400; i++ {
		if h.caughtUp() {
			return
		}
		if err := h.rs.Tick(1); err != nil {
			rep.fail("settle tick: %v", err)
			return
		}
	}
	rep.fail("replicas did not converge within the settle budget")
}

func (h *haWorld) caughtUp() bool {
	members := h.rs.Members()
	var commit uint64
	for _, m := range members {
		if m.Role == "leader" {
			if m.Commit != m.LastIndex {
				return false
			}
			commit = m.Commit
		}
	}
	if commit == 0 {
		return false
	}
	for _, m := range members {
		if m.Stopped {
			continue
		}
		if m.Commit != commit || m.LastIndex != commit {
			return false
		}
	}
	return true
}

// fillRaft writes the replication summary and checks the log-convergence
// invariant: every running replica holds the identical committed journal.
func (h *haWorld) fillRaft(rep *CPScenarioReport) {
	st := h.rs.StatusFor(h.leader)
	sum := &CPRaftSummary{
		Nodes:           len(h.rs.IDs()),
		FinalLeader:     h.rs.Leader(),
		FinalTerm:       st.Term,
		FinalCommit:     st.CommitIndex,
		LeaderChanges:   h.rs.LeaderChanges(),
		DroppedMessages: h.rs.DroppedMessages(),
		FencedWrites:    h.fenced,
		Converged:       true,
	}
	base, err := h.rs.CommittedEntries(h.leader)
	if err != nil {
		rep.fail("committed entries on %s: %v", h.leader, err)
		sum.Converged = false
	}
	for _, m := range h.rs.Members() {
		if m.Stopped || m.ID == h.leader {
			continue
		}
		got, err := h.rs.CommittedEntries(m.ID)
		if err != nil {
			rep.fail("committed entries on %s: %v", m.ID, err)
			sum.Converged = false
			continue
		}
		if len(got) != len(base) {
			rep.fail("replica %s holds %d committed entries, leader %s holds %d",
				m.ID, len(got), h.leader, len(base))
			sum.Converged = false
			continue
		}
		for i := range got {
			if got[i].Seq != base[i].Seq || got[i].SagaID != base[i].SagaID || got[i].Event != base[i].Event {
				rep.fail("replica %s diverges from leader at committed entry %d", m.ID, i)
				sum.Converged = false
				break
			}
		}
	}
	rep.Raft = sum
}

// attachOne runs one attach, tallying the outcome; returns the record ID
// ("" on failure) and the error.
func (h *haWorld) attachOne(rep *CPScenarioReport, svc *controlplane.Service, i int) (string, error) {
	compute, donor := h.hostPair(i)
	rec, err := svc.Attach(controlplane.AttachRequest{
		ComputeHost: compute, DonorHost: donor, Bytes: 1 << 20, Channels: 1,
	})
	if err != nil {
		return "", err
	}
	rep.Attaches++
	return rec.ID, nil
}

// haCatalogue returns the HA control-plane scenario set.
func haCatalogue() []CPScenario {
	return []CPScenario{
		{
			Name: "cp-ha-leader-kill-midsaga",
			Description: "the raft leader process is killed after scripted journal appends mid-saga; " +
				"the next leader must recover every quorum-committed saga with no leaked state",
			run: runHALeaderKill,
		},
		{
			Name: "cp-ha-minority-partition",
			Description: "one follower (and one agent link) is partitioned away; the leader keeps " +
				"committing through the remaining quorum and the minority catches up after healing",
			run: runHAMinorityPartition,
		},
		{
			Name: "cp-ha-majority-partition",
			Description: "the leader is cut off from both followers mid-workload; its appends are " +
				"fenced by quorum loss and the majority side elects a successor that recovers the sagas",
			run: runHAMajorityPartition,
		},
		{
			Name: "cp-ha-split-brain-fencing",
			Description: "a stale leader keeps accepting writes in its own partition while the majority " +
				"elects a successor; fencing must discard every stale proposal and converge the logs",
			run: runHASplitBrain,
		},
		{
			Name: "cp-ha-follower-lag-catchup",
			Description: "a follower is down through the whole workload and restarts far behind the " +
				"commit frontier; log replication must replay it to an identical committed journal",
			run: runHAFollowerLag,
		},
	}
}

func runHALeaderKill(seed int64, rep *CPScenarioReport, obs *CPObserver) {
	h := newHAWorld(rep, controlplane.TransportFaults{
		DropProb: 0.05, DupProb: 0.10, AmbiguousProb: 0.10, Seed: seed,
	}, obs, seed)
	if h == nil {
		return
	}
	svc := h.bootLeader(h.faulty)
	rng := rand.New(rand.NewSource(seed))
	for op := 0; op < 8; op++ {
		// Even ops arm a kill a few quorum-committed appends into the saga
		// (op 0 always kills mid-attach); odd ops run with the journal
		// healthy so the workload makes real progress.
		if op%2 == 0 {
			kill := 2
			if op > 0 {
				kill = rng.Intn(12)
			}
			h.journal.FailAfter(kill)
		} else {
			h.journal.FailAfter(-1)
		}

		var err error
		live := svc.Attachments()
		if len(live) > 0 && op%3 == 2 {
			if err = svc.Detach(live[0].ID); err == nil {
				rep.Detaches++
			}
		} else {
			_, err = h.attachOne(rep, svc, op)
		}
		if err != nil && controlplane.IsCrash(err) {
			// The leader process died mid-saga: fail over to a successor.
			svc = h.failover(rep, svc, true)
			if svc == nil {
				return
			}
		} else if err != nil {
			rep.AttachErrors++
		}
	}
	h.settle(rep)
	svc = h.heal(rep, svc)
	h.verify(rep, svc)
	h.fillRaft(rep)
	if rep.Crashes == 0 {
		rep.fail("no leader kill was exercised")
	}
	if rep.Raft.LeaderChanges == 0 {
		rep.fail("leader never changed despite kills")
	}
}

func runHAMinorityPartition(seed int64, rep *CPScenarioReport, obs *CPObserver) {
	h := newHAWorld(rep, controlplane.TransportFaults{
		DropProb: 0.05, DupProb: 0.10, Seed: seed,
	}, obs, seed)
	if h == nil {
		return
	}
	svc := h.bootLeader(h.faulty)

	// Cut one follower off from both peers: the leader still holds a 2/3
	// quorum, so commits must keep flowing.
	var minority string
	for _, id := range h.rs.IDs() {
		if id != h.leader {
			minority = id
			break
		}
	}
	h.rs.Isolate(minority)
	// Also cut one control-plane -> agent link: partition drops surface in
	// the transport stats and the sagas touching that host retry into
	// failure and compensate cleanly.
	h.faulty.Partition(controlplane.DefaultSource, "node2")

	var ids []string
	for i := 0; i < 6; i++ {
		id, err := h.attachOne(rep, svc, i)
		if err != nil {
			rep.AttachErrors++
			continue
		}
		ids = append(ids, id)
	}
	h.faulty.HealAllPartitions()
	for i, id := range ids {
		if i%2 != 0 {
			continue
		}
		if err := svc.Detach(id); err != nil {
			rep.DetachErrors++
		} else {
			rep.Detaches++
		}
	}

	h.settle(rep)
	svc = h.heal(rep, svc)
	h.verify(rep, svc)
	h.fillRaft(rep)
	if rep.Attaches == 0 {
		rep.fail("leader committed nothing despite holding a quorum")
	}
	if rep.Transport.PartitionDrops == 0 {
		rep.fail("agent partition never dropped a message")
	}
	if !rep.Raft.Converged {
		rep.fail("minority replica %s did not catch up", minority)
	}
}

func runHAMajorityPartition(seed int64, rep *CPScenarioReport, obs *CPObserver) {
	h := newHAWorld(rep, controlplane.TransportFaults{
		DropProb: 0.05, DupProb: 0.10, Seed: seed,
	}, obs, seed)
	if h == nil {
		return
	}
	svc := h.bootLeader(h.faulty)

	// Two clean sagas so the journal has committed history to protect.
	for i := 0; i < 2; i++ {
		if _, err := h.attachOne(rep, svc, i); err != nil {
			rep.AttachErrors++
		}
	}

	// Cut the leader off from both followers: the majority is on the other
	// side. The in-flight saga's next append can never commit — fenced.
	stale := h.leader
	h.rs.Isolate(stale)
	if _, err := h.attachOne(rep, svc, 2); err != nil {
		if !controlplane.IsCrash(err) {
			rep.fail("fenced append surfaced as %v, want a crash", err)
		}
		h.fenced++
	} else {
		rep.fail("attach committed through a leader with no quorum")
	}

	// Majority side elects a successor; a fresh control plane recovers the
	// half-finished saga from the committed log and the workload continues.
	svc = h.failover(rep, svc, false)
	if svc == nil {
		return
	}
	for i := 3; i < 6; i++ {
		if _, err := h.attachOne(rep, svc, i); err != nil {
			rep.AttachErrors++
		}
	}

	h.settle(rep)
	svc = h.heal(rep, svc)
	h.verify(rep, svc)
	h.fillRaft(rep)
	if h.fenced == 0 {
		rep.fail("quorum loss never fenced a write")
	}
	if rep.Raft.LeaderChanges == 0 {
		rep.fail("majority never elected a successor")
	}
}

func runHASplitBrain(seed int64, rep *CPScenarioReport, obs *CPObserver) {
	h := newHAWorld(rep, controlplane.TransportFaults{
		DupProb: 0.10, Seed: seed,
	}, obs, seed)
	if h == nil {
		return
	}
	staleSvc := h.bootLeader(h.faulty)
	if _, err := h.attachOne(rep, staleSvc, 0); err != nil {
		rep.AttachErrors++
	}

	// Split: the old leader alone on one side, both followers on the other.
	// The stale side keeps accepting work — every write must die fenced.
	stale := h.leader
	h.rs.Isolate(stale)
	if _, err := h.attachOne(rep, staleSvc, 1); err != nil && controlplane.IsCrash(err) {
		h.fenced++
	} else if err == nil {
		rep.fail("stale leader committed a write inside its own partition")
	}

	// Majority side: new leader, new control plane, new committed work —
	// while the stale leader still believes it leads.
	newSvc := h.failover(rep, staleSvc, false)
	if newSvc == nil {
		return
	}
	for i := 2; i < 4; i++ {
		if _, err := h.attachOne(rep, newSvc, i); err != nil {
			rep.AttachErrors++
		}
	}
	// Second stale-side write attempt mid-split: still fenced (the stale
	// leader cannot learn it was deposed until the partition heals).
	if _, err := h.attachOne(rep, staleSvc, 4); err != nil && controlplane.IsCrash(err) {
		h.fenced++
	} else if err == nil {
		rep.fail("stale leader committed a second write inside its partition")
	}
	addCounters(rep, staleSvc.Counters())

	// Heal: the stale leader must step down, discard its uncommitted
	// proposals, and converge on the majority's log.
	h.settle(rep)
	if st := h.rs.StatusFor(stale); st.Role != "follower" {
		rep.fail("stale leader %s ended as %s, want follower", stale, st.Role)
	}
	newSvc = h.heal(rep, newSvc)
	h.verify(rep, newSvc)
	h.fillRaft(rep)
	if h.fenced < 2 {
		rep.fail("split-brain fenced %d writes, want 2", h.fenced)
	}
	if !rep.Raft.Converged {
		rep.fail("logs did not converge after the split healed")
	}
}

func runHAFollowerLag(seed int64, rep *CPScenarioReport, obs *CPObserver) {
	h := newHAWorld(rep, controlplane.TransportFaults{
		DropProb: 0.05, DupProb: 0.10, Seed: seed,
	}, obs, seed)
	if h == nil {
		return
	}
	svc := h.bootLeader(h.faulty)

	// One follower is down for the whole workload; the leader commits
	// through the remaining 2/3 quorum.
	var lagger string
	for _, id := range h.rs.IDs() {
		if id != h.leader {
			lagger = id
			break
		}
	}
	h.rs.Stop(lagger)
	h.down = lagger

	var ids []string
	for i := 0; i < 6; i++ {
		id, err := h.attachOne(rep, svc, i)
		if err != nil {
			rep.AttachErrors++
			continue
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		if i%2 != 0 {
			continue
		}
		if err := svc.Detach(id); err != nil {
			rep.DetachErrors++
		} else {
			rep.Detaches++
		}
	}

	commitBefore := h.rs.StatusFor(h.leader).CommitIndex
	// Restart the lagger far behind the frontier; settle replays it.
	h.settle(rep)
	st := h.rs.StatusFor(lagger)
	if st.CommitIndex < commitBefore {
		rep.fail("lagging follower %s caught up only to %d of %d", lagger, st.CommitIndex, commitBefore)
	}

	svc = h.heal(rep, svc)
	h.verify(rep, svc)
	h.fillRaft(rep)
	if rep.Attaches == 0 {
		rep.fail("no saga committed while the follower lagged")
	}
	if !rep.Raft.Converged {
		rep.fail("lagging follower did not converge after restart")
	}
}
