// Control-plane chaos: fault campaigns against the orchestration layer
// rather than the datapath. Scenarios drive a real controlplane.Service —
// saga engine, write-ahead journal, lossy agent transport, reconciliation
// loop — through agent crash-restarts, orchestrator crashes mid-saga, and
// duplicate-command storms, then assert the orchestration invariants: no
// leaked fabric reservations, no orphaned donor memory, no half-configured
// agents, no parked sagas after heal + reconcile.
//
// Like the datapath scenarios, every control-plane scenario derives its
// seed from (campaign seed, scenario name), uses zero-backoff retries and
// counter-only measurements, and therefore produces byte-identical reports
// per seed.

package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/controlplane"
	"thymesisflow/internal/core"
	"thymesisflow/internal/timeseries"
	"thymesisflow/internal/trace"
)

const cpToken = "chaos-cp-token"

// CPScenario scripts one control-plane fault campaign.
type CPScenario struct {
	Name        string
	Description string
	run         func(seed int64, rep *CPScenarioReport, obs *CPObserver)
}

// CPObserver is the control-plane flight-recorder tap: the scenario world's
// deterministic step clock is wrapped with a timeseries.ClockSampler, so
// every few clock readings the observer records the service's saga counters
// and inflight gauge into cp.* series. It reads only atomic counters — the
// clock fires while the saga engine holds its own locks — and folds in the
// counters banked across crash-restarts so the series stay cumulative over
// the whole scenario, not one process lifetime.
type CPObserver struct {
	rec *timeseries.Recorder
	rep *CPScenarioReport

	svc *controlplane.Service

	retries, repairs, parked, rejected, inflight *timeseries.Series

	// cp.raft.* series, created only by observeRaft (HA scenarios), so the
	// single-node scenarios' snapshots keep their pre-HA series set.
	raftStatus                       func() controlplane.RaftStatus
	raftTerm, raftCommit, raftElects *timeseries.Series
}

// NewCPObserver builds an observer recording into rec (which must be
// non-nil); pass it to RunCPRecorded.
func NewCPObserver(rec *timeseries.Recorder) *CPObserver {
	return &CPObserver{
		rec:      rec,
		retries:  rec.Series("cp.saga_retries", timeseries.Counter),
		repairs:  rec.Series("cp.reconcile_repairs", timeseries.Counter),
		parked:   rec.Series("cp.sagas_parked", timeseries.Counter),
		rejected: rec.Series("cp.sagas_rejected", timeseries.Counter),
		inflight: rec.Series("cp.saga_inflight", timeseries.Gauge),
	}
}

// wrap installs the sampling tap on the world clock.
func (o *CPObserver) wrap(inner trace.WallClock) trace.WallClock {
	cs := &timeseries.ClockSampler{Every: 8, Sample: o.sample}
	return cs.Wrap(inner)
}

// observe points the tap at the current control-plane process (boot calls
// it on every restart).
func (o *CPObserver) observe(svc *controlplane.Service) { o.svc = svc }

// observeRaft adds the cp.raft.* series to the recording, fed from status.
// Only the HA scenarios call it, so single-node snapshots are unchanged.
func (o *CPObserver) observeRaft(status func() controlplane.RaftStatus) {
	o.raftStatus = status
	if o.raftTerm == nil {
		o.raftTerm = o.rec.Series("cp.raft.term", timeseries.Gauge)
		o.raftCommit = o.rec.Series("cp.raft.commit_index", timeseries.Counter)
		o.raftElects = o.rec.Series("cp.raft.leader_changes", timeseries.Counter)
	}
}

func (o *CPObserver) sample(ts int64) {
	svc := o.svc
	if svc == nil {
		return
	}
	cur := svc.Counters()
	banked := o.rep.Counters
	o.retries.Record(ts, float64(banked.SagaRetries+cur.SagaRetries))
	o.repairs.Record(ts, float64(banked.ReconcileRepairs+cur.ReconcileRepairs))
	o.parked.Record(ts, float64(banked.SagasParked+cur.SagasParked))
	o.rejected.Record(ts, float64(banked.SagasRejected+cur.SagasRejected))
	o.inflight.Record(ts, float64(svc.InflightSagas()))
	if o.raftStatus != nil {
		st := o.raftStatus()
		o.raftTerm.Record(ts, float64(st.Term))
		o.raftCommit.Record(ts, float64(st.CommitIndex))
		o.raftElects.Record(ts, float64(st.LeaderChanges))
	}
}

// CPScenarioReport is one control-plane scenario's outcome. Every field is
// a deterministic counter, so reports are byte-identical per seed.
type CPScenarioReport struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Seed        int64    `json:"seed"`
	Passed      bool     `json:"passed"`
	Failures    []string `json:"failures,omitempty"`

	Attaches     int `json:"attaches"`
	Detaches     int `json:"detaches"`
	AttachErrors int `json:"attach_errors"`
	DetachErrors int `json:"detach_errors"`
	// Crashes counts orchestrator (control-plane) crash-restarts.
	Crashes int `json:"crashes"`
	// RecoveredSagas counts sagas journal replay had to resolve (restored,
	// rolled forward, or compensated) across all restarts.
	RecoveredSagas int `json:"recovered_sagas"`
	// FinalAttachments is the number of attachments live at scenario end.
	FinalAttachments int `json:"final_attachments"`

	Counters  controlplane.SagaCounters   `json:"counters"`
	Transport controlplane.TransportStats `json:"transport"`

	// Raft summarizes the replica set at scenario end. Only the HA scenarios
	// set it (pointer + omitempty keeps single-node reports byte-identical).
	Raft *CPRaftSummary `json:"raft,omitempty"`

	// Trace summarizes the scenario's saga traces. The event log lives in
	// the world, not the Service, so traces span crash-restarts; timestamps
	// come from a deterministic step clock, so the summary is byte-identical
	// per seed. verify additionally asserts the tiling invariant: every
	// reconstructed saga's stage durations sum exactly to its wall time.
	Trace CPTraceSummary `json:"trace"`
}

// CPTraceSummary is the deterministic roll-up of a scenario's saga traces.
type CPTraceSummary struct {
	// Sagas is the number of distinct traces reconstructed from the log.
	Sagas int `json:"sagas"`
	// Events is the total number of events recorded (including any the
	// bounded log later evicted).
	Events uint64 `json:"events"`
	// TotalNS sums end-to-end wall time over all reconstructed sagas.
	TotalNS int64 `json:"total_ns"`
	// Stages is the aggregated stage mix across all sagas; the durations sum
	// to TotalNS (sorted by descending duration, then name).
	Stages []trace.StageSpan `json:"stages,omitempty"`
}

func (r *CPScenarioReport) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// cpWorld is the durable world a control plane crashes and restarts over:
// cluster, topology model, agents, transports, and journal all outlive any
// single Service.
type cpWorld struct {
	cluster *core.Cluster
	model   *controlplane.Model
	inner   *controlplane.DirectTransport
	faulty  *controlplane.FaultyTransport
	journal *controlplane.CrashableJournal
	hosts   []string

	// elog and clock implement world-scoped saga tracing: the event log and
	// the deterministic step clock survive orchestrator crash-restarts, so a
	// saga that spans a crash keeps one coherent timeline across processes.
	elog  *trace.EventLog
	clock trace.WallClock

	// obs, when non-nil, is the flight-recorder tap riding the clock.
	obs *CPObserver
}

func newCPWorld(rep *CPScenarioReport, faults controlplane.TransportFaults, obs *CPObserver) *cpWorld {
	c := core.NewCluster()
	hosts := []string{"node0", "node1", "node2"}
	m := controlplane.NewModel()
	for _, n := range hosts {
		cfg := core.DefaultHostConfig(n)
		cfg.SectionSize = 1 << 20
		cfg.RMMUSections = 64
		if _, err := c.AddHost(cfg); err != nil {
			rep.fail("add host: %v", err)
			return nil
		}
		if err := m.AddHost(n, 4); err != nil {
			rep.fail("model host: %v", err)
			return nil
		}
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			ca := m.Transceivers(a, controlplane.LabelComputeEP)
			mb := m.Transceivers(b, controlplane.LabelMemoryEP)
			for i := range ca {
				if i < len(mb) {
					if err := m.Cable(ca[i], mb[i]); err != nil {
						rep.fail("cable: %v", err)
						return nil
					}
				}
			}
		}
	}
	inner := controlplane.NewDirectTransport()
	for _, n := range hosts {
		inner.Register(agent.New(n, cpToken))
	}
	w := &cpWorld{
		cluster: c,
		model:   m,
		inner:   inner,
		faulty:  controlplane.NewFaultyTransport(inner, faults),
		journal: controlplane.NewCrashableJournal(controlplane.NewMemJournal()),
		hosts:   hosts,
		elog:    trace.NewEventLog(1 << 14),
		clock:   trace.StepClock(0, 25),
		obs:     obs,
	}
	if obs != nil {
		obs.rep = rep
		w.clock = obs.wrap(w.clock)
	}
	return w
}

// boot starts a control-plane "process" over the world with zero-backoff
// retries (campaigns measure in counters, not wall time).
func (w *cpWorld) boot(tr controlplane.Transport) *controlplane.Service {
	svc := controlplane.NewService(w.model, controlplane.ClusterExecutor{Cluster: w.cluster}, cpToken)
	svc.SetJournal(w.journal)
	svc.SetTransport(tr)
	svc.SetRetryPolicy(controlplane.RetryPolicy{MaxAttempts: 6})
	svc.SetSagaTracing(w.elog, w.clock)
	if w.obs != nil {
		w.obs.observe(svc)
	}
	return svc
}

// addCounters folds one Service's fault-handling counters into the report;
// counters are per-process, so every crash-restart must bank them before
// the old Service is dropped.
func addCounters(rep *CPScenarioReport, c controlplane.SagaCounters) {
	rep.Counters.SagaRetries += c.SagaRetries
	rep.Counters.SagaCompensations += c.SagaCompensations
	rep.Counters.RecoveryReplays += c.RecoveryReplays
	rep.Counters.ReconcileRepairs += c.ReconcileRepairs
	rep.Counters.DetachAgentFailures += c.DetachAgentFailures
	rep.Counters.SagasParked += c.SagasParked
	rep.Counters.SagasRejected += c.SagasRejected
}

// heal banks the old process's counters, disarms the journal, restarts the
// control plane over the reliable transport, replays the journal, and
// reconciles to quiescence.
func (w *cpWorld) heal(rep *CPScenarioReport, old *controlplane.Service) *controlplane.Service {
	if old != nil {
		addCounters(rep, old.Counters())
	}
	w.journal.FailAfter(-1)
	svc := w.boot(w.inner)
	rr, err := svc.Recover()
	if err != nil {
		rep.fail("recover: %v", err)
		return svc
	}
	rep.RecoveredSagas += rr.RolledForward + rr.Compensated + rr.Reparked
	for i := 0; i < 5; i++ {
		if r := svc.Reconcile(); r.Repairs() == 0 && r.Unrepaired == 0 {
			break
		}
	}
	addCounters(rep, svc.Counters())
	return svc
}

// verify asserts the orchestration invariants against ground truth.
func (w *cpWorld) verify(rep *CPScenarioReport, svc *controlplane.Service) {
	recs := svc.Attachments()
	rep.FinalAttachments = len(recs)

	// Executor diff: control-plane records == live datapath attachments.
	recIDs := make(map[string]bool, len(recs))
	for _, r := range recs {
		recIDs[r.ID] = true
	}
	clusterAtts := w.cluster.Attachments()
	if len(clusterAtts) != len(recs) {
		rep.fail("executor holds %d attachments, records say %d", len(clusterAtts), len(recs))
	}
	for _, a := range clusterAtts {
		if !recIDs[a.ID] {
			rep.fail("orphaned datapath attachment %s", a.ID)
		}
	}

	// Reservation diff: planned paths are vertex-disjoint, so the reserved
	// set must be exactly the sum of record path lengths.
	wantReserved := 0
	for _, r := range recs {
		for _, n := range r.PathLen {
			wantReserved += n
		}
	}
	if got := len(w.model.ReservedIDs()); got != wantReserved {
		rep.fail("fabric holds %d reservations, records imply %d", got, wantReserved)
	}

	// Agent diff: every agent holds exactly the state the records imply.
	type side struct{ compute, donor bool }
	desired := make(map[string]map[string]side)
	for _, r := range recs {
		if desired[r.ComputeHost] == nil {
			desired[r.ComputeHost] = make(map[string]side)
		}
		s := desired[r.ComputeHost][r.SagaID]
		s.compute = true
		desired[r.ComputeHost][r.SagaID] = s
		if desired[r.DonorHost] == nil {
			desired[r.DonorHost] = make(map[string]side)
		}
		s = desired[r.DonorHost][r.SagaID]
		s.donor = true
		desired[r.DonorHost][r.SagaID] = s
	}
	for _, h := range w.hosts {
		st, err := w.inner.Query(h)
		if err != nil {
			rep.fail("query %s: %v", h, err)
			continue
		}
		for _, att := range st.Attachments {
			d, ok := desired[h][att.ID]
			if !ok {
				rep.fail("agent %s holds orphaned attachment %s", h, att.ID)
				continue
			}
			if d.compute && !att.ComputeAttached || d.donor && att.StolenBytes == 0 {
				rep.fail("agent %s half-configured for %s", h, att.ID)
			}
		}
		for id := range desired[h] {
			held := false
			for _, att := range st.Attachments {
				if att.ID == id {
					held = true
				}
			}
			if !held {
				rep.fail("agent %s missing desired attachment %s", h, id)
			}
		}
	}

	if parked := svc.ParkedSagas(); len(parked) != 0 {
		rep.fail("parked sagas after heal+reconcile: %v", parked)
	}
	rep.Transport = w.faulty.Stats()

	// Saga-trace roll-up plus the tiling invariant: the stage durations of
	// every reconstructed trace (sagas and reconcile/recovery passes alike)
	// must sum exactly to that trace's end-to-end wall time — the event
	// timeline has no gaps and no double counting.
	traces := trace.BuildSagaTraces(w.elog.Snapshot())
	if len(traces) == 0 {
		rep.fail("tracing recorded no saga traces")
	}
	byCat := map[string]int64{}
	for _, t := range traces {
		var sum int64
		for _, st := range t.Stages {
			sum += st.DurNS
			byCat[st.Name] += st.DurNS
		}
		if sum != t.TotalNS {
			rep.fail("trace %d (saga %q): stages sum to %dns, wall time is %dns",
				t.Trace, t.Saga, sum, t.TotalNS)
		}
		rep.Trace.TotalNS += t.TotalNS
	}
	rep.Trace.Sagas = len(traces)
	rep.Trace.Events = w.elog.Recorded()
	rep.Trace.Stages = make([]trace.StageSpan, 0, len(byCat))
	for name, dur := range byCat {
		s := trace.StageSpan{Name: name, DurNS: dur}
		if rep.Trace.TotalNS > 0 {
			s.Pct = 100 * float64(dur) / float64(rep.Trace.TotalNS)
		}
		rep.Trace.Stages = append(rep.Trace.Stages, s)
	}
	sort.Slice(rep.Trace.Stages, func(i, j int) bool {
		a, b := rep.Trace.Stages[i], rep.Trace.Stages[j]
		if a.DurNS != b.DurNS {
			return a.DurNS > b.DurNS
		}
		return a.Name < b.Name
	})
}

// hostPair rotates attach endpoints deterministically.
func (w *cpWorld) hostPair(i int) (compute, donor string) {
	n := len(w.hosts)
	return w.hosts[i%n], w.hosts[(i+1)%n]
}

// CPCatalogue returns the control-plane scenario set: the single-node
// scenarios below plus the HA replica-set scenarios (ha.go).
func CPCatalogue() []CPScenario {
	return append([]CPScenario{
		{
			Name: "cp-agent-flap",
			Description: "agents crash-restart under a lossy transport, losing volatile state; " +
				"the reconciliation loop must re-push configuration from the records",
			run: runAgentFlap,
		},
		{
			Name: "cp-orchestrator-crash-midsaga",
			Description: "the control plane crashes after random journal appends mid-saga; " +
				"each restart replays the journal and must converge with no leaked state",
			run: runOrchestratorCrash,
		},
		{
			Name: "cp-duplicate-command-storm",
			Description: "nearly every command is delivered twice and acks are frequently lost; " +
				"idempotent (AttachmentID, Epoch) application must keep agents exact",
			run: runDuplicateStorm,
		},
	}, haCatalogue()...)
}

func runAgentFlap(seed int64, rep *CPScenarioReport, obs *CPObserver) {
	w := newCPWorld(rep, controlplane.TransportFaults{
		DropProb: 0.05, DupProb: 0.10, AmbiguousProb: 0.10, Seed: seed,
	}, obs)
	if w == nil {
		return
	}
	svc := w.boot(w.faulty)
	rng := rand.New(rand.NewSource(seed))
	var ids []string
	for i := 0; i < 6; i++ {
		compute, donor := w.hostPair(i)
		rec, err := svc.Attach(controlplane.AttachRequest{
			ComputeHost: compute, DonorHost: donor, Bytes: 1 << 20, Channels: 1,
		})
		if err != nil {
			rep.AttachErrors++
		} else {
			rep.Attaches++
			ids = append(ids, rec.ID)
		}
		// Flap a random agent and let the reconciler repair it.
		if i%2 == 1 {
			host := w.hosts[rng.Intn(len(w.hosts))]
			w.faulty.CrashAgent(host) //nolint:errcheck // hosts are registered
			svc.Reconcile()
		}
	}
	for i, id := range ids {
		if i%2 != 0 {
			continue
		}
		if err := svc.Detach(id); err != nil {
			rep.DetachErrors++
		} else {
			rep.Detaches++
		}
	}
	svc = w.heal(rep, svc)
	w.verify(rep, svc)
	if rep.Transport.Crashes == 0 {
		rep.fail("no agent crash-restart was injected")
	}
	if rep.Counters.ReconcileRepairs == 0 {
		rep.fail("reconciler repaired nothing despite agent flaps")
	}
}

func runOrchestratorCrash(seed int64, rep *CPScenarioReport, obs *CPObserver) {
	w := newCPWorld(rep, controlplane.TransportFaults{
		DropProb: 0.05, DupProb: 0.10, AmbiguousProb: 0.10, Seed: seed,
	}, obs)
	if w == nil {
		return
	}
	svc := w.boot(w.faulty)
	rng := rand.New(rand.NewSource(seed))
	for op := 0; op < 8; op++ {
		// Even ops arm a crash a few journal appends into the saga (op 0
		// always crashes mid-attach; later even ops draw the crash point,
		// sometimes past the saga). Odd ops run with the journal healthy so
		// the workload also makes real progress.
		if op%2 == 0 {
			crashPoint := 3
			if op > 0 {
				crashPoint = rng.Intn(12)
			}
			w.journal.FailAfter(crashPoint)
		} else {
			w.journal.FailAfter(-1)
		}

		var err error
		live := svc.Attachments()
		if len(live) > 0 && op%3 == 2 {
			err = svc.Detach(live[0].ID)
			if err == nil {
				rep.Detaches++
			}
		} else {
			compute, donor := w.hostPair(op)
			_, err = svc.Attach(controlplane.AttachRequest{
				ComputeHost: compute, DonorHost: donor, Bytes: 1 << 20, Channels: 1,
			})
			if err == nil {
				rep.Attaches++
			}
		}
		if err != nil && controlplane.IsCrash(err) {
			// The process died mid-saga: restart from the journal.
			rep.Crashes++
			addCounters(rep, svc.Counters())
			w.journal.FailAfter(-1)
			svc = w.boot(w.faulty)
			rr, rerr := svc.Recover()
			if rerr != nil {
				rep.fail("recover after crash %d: %v", rep.Crashes, rerr)
				return
			}
			rep.RecoveredSagas += rr.RolledForward + rr.Compensated + rr.Reparked
			svc.Reconcile()
		} else if err != nil {
			rep.AttachErrors++
		}
	}
	svc = w.heal(rep, svc)
	w.verify(rep, svc)
	if rep.Crashes == 0 {
		rep.fail("no orchestrator crash was exercised")
	}
	if rep.RecoveredSagas == 0 {
		rep.fail("recovery never resolved an in-flight saga")
	}
}

func runDuplicateStorm(seed int64, rep *CPScenarioReport, obs *CPObserver) {
	w := newCPWorld(rep, controlplane.TransportFaults{
		DupProb: 0.90, AmbiguousProb: 0.40, Seed: seed,
	}, obs)
	if w == nil {
		return
	}
	svc := w.boot(w.faulty)
	var ids []string
	for i := 0; i < 4; i++ {
		compute, donor := w.hostPair(i)
		rec, err := svc.Attach(controlplane.AttachRequest{
			ComputeHost: compute, DonorHost: donor, Bytes: 1 << 20, Channels: 1,
		})
		if err != nil {
			rep.AttachErrors++
		} else {
			rep.Attaches++
			ids = append(ids, rec.ID)
		}
	}
	for _, id := range ids {
		if err := svc.Detach(id); err != nil {
			rep.DetachErrors++
		} else {
			rep.Detaches++
		}
	}
	svc = w.heal(rep, svc)
	w.verify(rep, svc)
	if rep.Transport.Dups == 0 {
		rep.fail("no duplicate delivery was injected")
	}
	if rep.Counters.SagaRetries == 0 {
		rep.fail("lost acks never forced a retry")
	}
	if rep.FinalAttachments != 0 {
		rep.fail("%d attachments survived full teardown", rep.FinalAttachments)
	}
}

// RunCP executes one control-plane scenario under the campaign seed.
func RunCP(s CPScenario, campaignSeed int64) CPScenarioReport {
	seed := deriveSeed(campaignSeed, s.Name)
	rep := CPScenarioReport{Name: s.Name, Description: s.Description, Seed: seed}
	s.run(seed, &rep, nil)
	rep.Passed = len(rep.Failures) == 0
	return rep
}

// RunCPRecorded is RunCP with a flight-recorder tap on the scenario world:
// alongside the report it returns the cp.* telemetry snapshot, timestamped
// by the world's deterministic step clock (so the snapshot is byte-identical
// per seed, like the report).
func RunCPRecorded(s CPScenario, campaignSeed int64, capacity int) (CPScenarioReport, timeseries.Snapshot) {
	seed := deriveSeed(campaignSeed, s.Name)
	rep := CPScenarioReport{Name: s.Name, Description: s.Description, Seed: seed}
	obs := NewCPObserver(timeseries.NewRecorder(capacity))
	s.run(seed, &rep, obs)
	rep.Passed = len(rep.Failures) == 0
	return rep, obs.rec.Snapshot()
}

// RunCPCampaign executes the control-plane catalogue serially.
func RunCPCampaign(scenarios []CPScenario, seed int64) []CPScenarioReport {
	out := make([]CPScenarioReport, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, RunCP(s, seed))
	}
	return out
}

// FindCP returns the control-plane scenario with the given name.
func FindCP(name string) (CPScenario, bool) {
	for _, s := range CPCatalogue() {
		if s.Name == name {
			return s, true
		}
	}
	return CPScenario{}, false
}
