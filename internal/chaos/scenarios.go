package chaos

import (
	"fmt"

	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// forever is an effectively unbounded window end.
const forever = sim.Time(1) << 62

// smallWindowLLC is the shrunken credit configuration used to provoke
// starvation quickly: a 2-slot window — smaller than the worker count, so
// senders must stall on backpressure — with a matching small replay buffer.
func smallWindowLLC() *llc.Config {
	cfg := llc.DefaultConfig()
	cfg.Credits = 2
	cfg.ReplayBuffer = 4
	return &cfg
}

// fastEscalationLLC shortens the retry budget so dead-link scenarios
// escalate within tens of microseconds of virtual time.
func fastEscalationLLC() *llc.Config {
	cfg := llc.DefaultConfig()
	cfg.ReplayTimeout = 5 * sim.Microsecond
	cfg.MaxReplayAttempts = 8
	return &cfg
}

// Catalogue returns the standard scenario set, covering every fault class
// the LLC claims to survive plus the escalation and detach paths it fences
// with. Order is the execution order of serial campaigns; results do not
// depend on it (per-scenario seeds derive from the scenario name).
func Catalogue() []Scenario {
	scenarios := []Scenario{
		{
			Name:        "baseline-clean",
			Description: "fault-free reference run; protocol must stay silent",
		},
		{
			Name:        "crc-burst",
			Description: "transient CRC burst (80% corruption for 100us) from a marginal transceiver",
			Faults: &phy.FaultSchedule{Windows: []phy.Window{
				{From: 50 * sim.Microsecond, To: 150 * sim.Microsecond, CorruptProb: 0.8},
			}},
			ExpectCRCErrors: true,
			ExpectReplays:   true,
		},
		{
			Name:        "link-flap",
			Description: "two total-loss flaps (100us each), shorter than the escalation budget",
			Faults: &phy.FaultSchedule{Windows: []phy.Window{
				{From: 100 * sim.Microsecond, To: 200 * sim.Microsecond, DropProb: 1},
				{From: 400 * sim.Microsecond, To: 500 * sim.Microsecond, DropProb: 1},
			}},
			ExpectDrops:   true,
			ExpectReplays: true,
		},
		{
			Name:        "credit-starvation",
			Description: "2-slot credit window under 50% bidirectional loss; probe cycle repairs lost returns",
			LLC:         smallWindowLLC(),
			Faults: &phy.FaultSchedule{Windows: []phy.Window{
				{From: 20 * sim.Microsecond, To: 220 * sim.Microsecond, DropProb: 0.5},
			}},
			ExpectDrops:   true,
			ExpectReplays: true,
			ExpectStalls:  true,
		},
		{
			Name:        "replay-storm",
			Description: "sustained 30% drop + 30% corruption for 300us; replay machinery under combined stress",
			Faults: &phy.FaultSchedule{Windows: []phy.Window{
				{From: 10 * sim.Microsecond, To: 310 * sim.Microsecond, DropProb: 0.3, CorruptProb: 0.3},
			}},
			ExpectDrops:     true,
			ExpectCRCErrors: true,
			ExpectReplays:   true,
		},
		{
			Name:        "detach-drain",
			Description: "graceful detach at 30us under load: outstanding ops drain, new ops rejected",
			Detach:      DetachDrain,
			DetachAt:    30 * sim.Microsecond,

			ExpectDetached: true,
		},
		{
			Name:        "detach-force",
			Description: "forced detach at 30us under load: outstanding ops faulted deterministically",
			Detach:      DetachForce,
			DetachAt:    30 * sim.Microsecond,

			ExpectDetached: true,
		},
		{
			Name:        "link-down-escalation",
			Description: "link dies permanently at 50us; bounded retries then fence, outstanding ops faulted",
			LLC:         fastEscalationLLC(),
			Faults: &phy.FaultSchedule{Windows: []phy.Window{
				{From: 50 * sim.Microsecond, To: forever, DropProb: 1},
			}},
			ExpectDrops:    true,
			ExpectLinkDown: true,
		},
	}
	// Sustained-loss sweep: three loss levels record the latency/bandwidth
	// degradation curve of the replay protocol.
	for _, pct := range []int{2, 5, 10} {
		scenarios = append(scenarios, Scenario{
			Name:        fmt.Sprintf("sustained-loss-%dpct", pct),
			Description: fmt.Sprintf("steady %d%% frame loss over the whole run", pct),
			Faults: &phy.FaultSchedule{
				Base: phy.FaultConfig{DropProb: float64(pct) / 100},
			},
			ExpectDrops:   true,
			ExpectReplays: true,
		})
	}
	return scenarios
}

// Find returns the catalogue scenario with the given name.
func Find(name string) (Scenario, bool) {
	for _, s := range Catalogue() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
