// Package chaos is a deterministic fault-campaign engine for the full
// ThymesisFlow datapath. A campaign drives a real core.Cluster — capi
// transactions through rmmu translation, llc framing/replay, and phy
// channels with scripted fault schedules — and asserts the paper's central
// reliability claim after recovery: the LLC keeps the datapath lossless
// under link errors (credit backpressure plus frame replay, PAPER.md §4/§6).
//
// Every scenario is seeded and reproducible: the campaign seed derives a
// per-scenario seed, which seeds the phy fault PRNGs and the cacheline
// content patterns. Reports carry only virtual-time measurements and
// deterministic counters, so one seed yields a byte-identical report
// whether scenarios run serially or across a worker pool.
package chaos

import (
	"fmt"
	"hash/fnv"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/core"
	"thymesisflow/internal/latency"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/timeseries"
)

// DetachMode selects the detach-under-load behaviour of a scenario.
type DetachMode int

// Detach modes.
const (
	DetachNone  DetachMode = iota
	DetachDrain            // graceful: reject new requests, drain outstanding
	DetachForce            // immediate: fault outstanding, tear down
)

// Scenario scripts one fault campaign. The zero value of optional fields
// selects defaults (4 workers, 48 ops each, 1 MiB attachment, default LLC
// config, 50 ms horizon).
type Scenario struct {
	Name        string
	Description string

	Workers      int
	OpsPerWorker int
	AttachBytes  int64
	Horizon      sim.Time

	// LLC overrides the link protocol parameters (nil = defaults).
	LLC *llc.Config
	// Faults, when non-nil, is installed on both link directions with
	// per-direction derived seeds; Base.Seed is overwritten from the
	// scenario seed so campaigns reproduce from the campaign seed alone.
	Faults *phy.FaultSchedule

	// Detach schedules a detach-under-load at DetachAt virtual time.
	Detach   DetachMode
	DetachAt sim.Time

	// Expectations, asserted as invariants.
	ExpectDrops     bool // fault schedule must actually drop frames
	ExpectCRCErrors bool // fault schedule must actually corrupt frames
	ExpectReplays   bool // recovery must have exercised the replay path
	ExpectStalls    bool // credit window must have been exhausted
	ExpectLinkDown  bool // scenario must end in the link-down state
	ExpectDetached  bool // scenario must end detached
}

func (s *Scenario) defaults() {
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.OpsPerWorker <= 0 {
		s.OpsPerWorker = 48
	}
	if s.AttachBytes <= 0 {
		s.AttachBytes = 1 << 20
	}
	if s.Horizon <= 0 {
		s.Horizon = 50 * sim.Millisecond
	}
}

// splitmix64 is the seed-derivation mixer (same stream capi.FillPattern
// uses): tiny, well-distributed, and dependency-free.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// deriveSeed maps (campaign seed, scenario name) to the scenario seed, so
// scenario results do not depend on catalogue order or worker scheduling.
func deriveSeed(campaign int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name)) //nolint:errcheck
	return int64(splitmix64(uint64(campaign) ^ h.Sum64()))
}

// patternSeed derives the content pattern of one (worker, op) cacheline.
func patternSeed(scenarioSeed int64, worker, op int) uint64 {
	return splitmix64(uint64(scenarioSeed) ^ (uint64(worker)<<32 | uint64(op) + 1))
}

// ackedLine records one store acknowledged through the datapath.
type ackedLine struct {
	line int
	pat  uint64
}

// Run executes one scenario under the campaign seed and returns its report.
func Run(s Scenario, campaignSeed int64) ScenarioReport {
	return RunSharded(s, campaignSeed, 1)
}

// RunSharded is Run on a cluster partitioned into the given number of
// simulation shards (one kernel per host, conservative lookahead windows).
// Reports carry only virtual-time measurements, so the shard count never
// changes a simulation result: shards=1 executes the exact sequential path,
// and the sharded runtime's deterministic merge reproduces it event for
// event. The one shard-count-dependent section is ShardHealth, which
// describes the runtime itself (and is still deterministic per seed at a
// fixed shard count).
func RunSharded(s Scenario, campaignSeed int64, shards int) ScenarioReport {
	rep, _ := runScenario(s, campaignSeed, shards, nil)
	return rep
}

// RunRecorded is RunSharded with the fabric flight recorder enabled on the
// scenario's cluster: alongside the report it returns the frozen telemetry
// snapshot the run produced, sampled on the virtual tick grid for as long
// as the run has live events. Recording adds no simulation events, so the
// report is identical to the unrecorded run's; series hold only
// virtual-time measurements, so the snapshot — minus the shard.* runtime
// series, which describe wall-clock barrier stalls — is byte-identical per
// seed at any shard count, exactly like the report.
func RunRecorded(s Scenario, campaignSeed int64, shards int, fopts core.FlightOptions) (ScenarioReport, timeseries.Snapshot) {
	return runScenario(s, campaignSeed, shards, &fopts)
}

func runScenario(s Scenario, campaignSeed int64, shards int, fopts *core.FlightOptions) (ScenarioReport, timeseries.Snapshot) {
	s.defaults()
	seed := deriveSeed(campaignSeed, s.Name)
	rep := ScenarioReport{
		Name:        s.Name,
		Description: s.Description,
		Seed:        seed,
		Ops:         s.Workers * s.OpsPerWorker,
	}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}

	cfg := llc.DefaultConfig()
	if s.LLC != nil {
		cfg = *s.LLC
	}
	if int64(rep.Ops)*capi.Cacheline > s.AttachBytes {
		fail("scenario writes %d lines into %d bytes", rep.Ops, s.AttachBytes)
		rep.Passed = false
		return rep, timeseries.Snapshot{}
	}

	c := core.NewClusterShards(shards)
	sink := c.EnableLatency()
	var rec *timeseries.Recorder
	if fopts != nil {
		rec = c.EnableFlightRecorder(*fopts)
	}
	for _, name := range []string{"compute", "donor"} {
		hc := core.DefaultHostConfig(name)
		hc.DRAMPerSocket = 4 << 30
		hc.SectionSize = 1 << 20
		hc.RMMUSections = 64
		if _, err := c.AddHost(hc); err != nil {
			fail("add host: %v", err)
			return rep, timeseries.Snapshot{}
		}
	}
	att, err := c.Attach(core.AttachSpec{
		ComputeHost: "compute", DonorHost: "donor",
		Bytes: s.AttachBytes, Backing: true, LLC: &cfg,
	})
	if err != nil {
		fail("attach: %v", err)
		return rep, timeseries.Snapshot{}
	}
	if s.Faults != nil {
		sched := *s.Faults
		sched.Base.Seed = seed
		c.ApplyFaultSchedule(att, sched)
	}

	// Workload: each worker stamps its own disjoint cachelines with
	// seed-derived patterns, one synchronous store at a time, recording
	// acknowledgement latency in virtual time.
	acked := make([][]ackedLine, s.Workers)
	errs := make([]error, s.Workers)
	var totalLat, maxLat, workEnd sim.Time
	for wi := 0; wi < s.Workers; wi++ {
		wi := wi
		c.K.Go(fmt.Sprintf("chaos-w%d", wi), func(p *sim.Proc) {
			buf := make([]byte, capi.Cacheline)
			for op := 0; op < s.OpsPerWorker; op++ {
				line := wi*s.OpsPerWorker + op
				pat := patternSeed(seed, wi, op)
				capi.FillPattern(buf, pat)
				t0 := c.K.Now()
				err := c.Store(p, att, int64(line)*capi.Cacheline, buf)
				if err != nil {
					errs[wi] = err
					break
				}
				lat := c.K.Now() - t0
				totalLat += lat
				if lat > maxLat {
					maxLat = lat
				}
				acked[wi] = append(acked[wi], ackedLine{line: line, pat: pat})
			}
			if now := c.K.Now(); now > workEnd {
				workEnd = now
			}
		})
	}
	if s.Detach != DetachNone {
		at := s.DetachAt
		if at <= 0 {
			at = 30 * sim.Microsecond
		}
		c.K.Schedule(at, func() {
			if err := c.BeginDetach(att.ID, s.Detach == DetachForce, nil); err != nil {
				fail("begin detach: %v", err)
			}
		})
	}
	c.RunUntil(s.Horizon)

	// Merge worker results in worker order (deterministic independent of
	// simulated interleaving: the kernel is single-threaded and seeded).
	var lines []ackedLine
	for wi := 0; wi < s.Workers; wi++ {
		rep.OpsOK += len(acked[wi])
		lines = append(lines, acked[wi]...)
		if errs[wi] != nil {
			rep.OpsFailed++
			if rep.FirstError == "" {
				rep.FirstError = errs[wi].Error()
			}
		}
	}
	rep.WorkNS = int64(workEnd / sim.Nanosecond)
	if rep.OpsOK > 0 {
		rep.AvgLatencyNS = int64(totalLat/sim.Time(rep.OpsOK)) / int64(sim.Nanosecond)
		rep.MaxLatencyNS = int64(maxLat / sim.Nanosecond)
		if workEnd > 0 {
			bytes := float64(rep.OpsOK) * capi.Cacheline
			secs := float64(workEnd) / float64(sim.Second)
			rep.ThroughputMiBs = bytes / (1 << 20) / secs
		}
	}

	// Invariant 1 — losslessness at the donor: every acknowledged store
	// must be present, bit-exact, in donor memory. This holds in every
	// scenario, including forced detach and link-down (an acknowledgement
	// means the write completed at the donor before the response returned).
	for _, l := range lines {
		off := int64(l.line) * capi.Cacheline
		got := att.Region.Data[off : off+capi.Cacheline]
		if !capi.PatternMatches(got, l.pat) {
			fail("donor content mismatch at line %d", l.line)
		}
	}
	rep.LinesVerified = len(lines)

	// Invariant 2 — end-to-end read-back through the recovered datapath
	// (only when the attachment is still active to serve it).
	if att.State() == core.StateActive {
		verified := 0
		c.K.Go("chaos-verify", func(p *sim.Proc) {
			for _, l := range lines {
				data, err := c.Load(p, att, int64(l.line)*capi.Cacheline, capi.Cacheline)
				if err != nil {
					fail("read-back of line %d: %v", l.line, err)
					return
				}
				if !capi.PatternMatches(data, l.pat) {
					fail("read-back mismatch at line %d", l.line)
					return
				}
				verified++
			}
		})
		c.RunUntil(2 * s.Horizon)
		if verified != len(lines) {
			fail("read-back verified %d/%d lines", verified, len(lines))
		}
		rep.LinesVerified += verified
	}

	// Aggregate protocol and wire counters over both directions.
	effCredits := cfg.Credits
	downSomewhere := false
	for _, p := range att.Ports() {
		for _, port := range []*llc.Port{p, p.Peer()} {
			if port == nil {
				continue
			}
			st := port.Stats()
			rep.LLC.TxFrames += st.TxFrames
			rep.LLC.TxControl += st.TxControl
			rep.LLC.TxReplayed += st.TxReplayed
			rep.LLC.TxTransactions += st.TxTransactions
			rep.LLC.RxTransactions += st.RxTransactions
			rep.LLC.RxCRCErrors += st.RxCRCErrors
			rep.LLC.RxGaps += st.RxGaps
			rep.LLC.RxDuplicates += st.RxDuplicates
			rep.LLC.CreditStalls += st.CreditStalls
			rep.LLC.CreditProbes += st.CreditProbes
			rep.LLC.ReplayExhausted += st.ReplayExhausted
			rep.LLC.ReplayOverflows += st.ReplayOverflows
			rep.LLC.TxAbandoned += st.TxAbandoned
			rep.LLC.LinkDownEvents += st.LinkDownEvents
			if port.Down() {
				downSomewhere = true
			}
			sent, dropped, corrupted := port.Channel().Stats()
			rep.Phy.Sent += sent
			rep.Phy.Dropped += dropped
			rep.Phy.Corrupted += corrupted
		}
	}
	rep.FinalState = att.State().String()

	// End-to-end latency snapshot from the attribution pipeline. Virtual
	// time only, so the numbers reproduce from the seed.
	e2e := sink.EndToEndSummary()
	stall := sink.StageSummaryFor(latency.StageCreditStall)
	rep.Latency = LatencyStats{
		Count:             e2e.Count,
		MeanNS:            e2e.Mean,
		P50NS:             e2e.P50,
		P99NS:             e2e.P99,
		P999NS:            e2e.P999,
		MaxNS:             e2e.Max,
		CreditStallMeanNS: stall.Mean,
	}

	// Invariant 3 — replay accounting: injected losses must be repaired by
	// the replay machinery, and every CRC-corrupted delivery must have been
	// detected (exact count match, unless a down port discarded deliveries).
	if rep.LLC.LinkDownEvents == 0 {
		if rep.Phy.Dropped > 0 && rep.LLC.TxReplayed == 0 {
			fail("%d frames dropped but nothing was replayed", rep.Phy.Dropped)
		}
		if rep.LLC.RxCRCErrors != rep.Phy.Corrupted {
			fail("CRC accounting: %d detected vs %d injected", rep.LLC.RxCRCErrors, rep.Phy.Corrupted)
		}
		// Invariant 4 — transaction conservation on the live link: every
		// transaction accepted for transmission was delivered exactly once.
		if rep.LLC.TxTransactions != rep.LLC.RxTransactions {
			fail("transaction conservation: %d sent vs %d delivered",
				rep.LLC.TxTransactions, rep.LLC.RxTransactions)
		}
		// Invariant 5 — credits conserved after quiescence.
		for _, p := range att.Ports() {
			for _, port := range []*llc.Port{p, p.Peer()} {
				if port != nil && port.Credits() != effCredits {
					fail("port %s holds %d credits after quiescence, want %d",
						port.Name(), port.Credits(), effCredits)
				}
			}
		}
	}

	// Expectations.
	if s.ExpectDrops && rep.Phy.Dropped == 0 {
		fail("expected dropped frames, saw none")
	}
	if s.ExpectCRCErrors && rep.LLC.RxCRCErrors == 0 {
		fail("expected CRC errors, saw none")
	}
	if s.ExpectReplays && rep.LLC.TxReplayed == 0 {
		fail("expected replays, saw none")
	}
	if s.ExpectStalls && rep.LLC.CreditStalls == 0 {
		fail("expected credit stalls, saw none")
	}
	if s.ExpectLinkDown {
		if rep.LLC.LinkDownEvents == 0 || !downSomewhere {
			fail("expected link-down escalation, link stayed up")
		}
		if rep.FinalState != core.StateLinkDown.String() {
			fail("final state %q, want link-down", rep.FinalState)
		}
	} else if rep.LLC.LinkDownEvents != 0 {
		fail("unexpected link-down escalation (%d events)", rep.LLC.LinkDownEvents)
	}
	if s.ExpectDetached && rep.FinalState != core.StateDetached.String() {
		fail("final state %q, want detached", rep.FinalState)
	}
	if s.Faults == nil && s.Detach == DetachNone {
		// Clean baseline: the protocol must be silent.
		if rep.Phy.Dropped != 0 || rep.LLC.RxCRCErrors != 0 || rep.LLC.TxReplayed != 0 {
			fail("clean run exercised fault paths: %+v", rep.LLC)
		}
		if rep.OpsFailed != 0 {
			fail("clean run failed %d ops: %s", rep.OpsFailed, rep.FirstError)
		}
	}

	if h, ok := c.ShardHealth(); ok {
		rep.ShardHealth = &h
	}

	rep.Passed = len(rep.Failures) == 0
	var snap timeseries.Snapshot
	if rec != nil {
		snap = rec.Snapshot()
	}
	return rep, snap
}

// RunCampaign executes the scenarios serially in order and assembles the
// campaign report.
func RunCampaign(scenarios []Scenario, seed int64) Report {
	return RunCampaignSharded(scenarios, seed, 1)
}

// RunCampaignSharded is RunCampaign with each scenario's cluster partitioned
// into the given number of simulation shards.
func RunCampaignSharded(scenarios []Scenario, seed int64, shards int) Report {
	rep := Report{Seed: seed, Passed: true}
	for _, s := range scenarios {
		sr := RunSharded(s, seed, shards)
		if !sr.Passed {
			rep.Passed = false
		}
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	return rep
}
