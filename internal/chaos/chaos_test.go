package chaos

import (
	"bytes"
	"strings"
	"testing"
)

const testSeed = 20260806

// TestCatalogueSize pins the acceptance floor: the standard campaign must
// carry at least 6 scenarios.
func TestCatalogueSize(t *testing.T) {
	if n := len(Catalogue()); n < 6 {
		t.Fatalf("catalogue has %d scenarios, want >= 6", n)
	}
}

// TestCampaignPasses runs the full standard campaign: every scenario must
// satisfy its losslessness, replay, credit, and escalation invariants.
func TestCampaignPasses(t *testing.T) {
	rep := RunCampaign(Catalogue(), testSeed)
	for _, sr := range rep.Scenarios {
		if !sr.Passed {
			t.Errorf("scenario %s failed: %s", sr.Name, strings.Join(sr.Failures, "; "))
		}
		if sr.LinesVerified == 0 {
			t.Errorf("scenario %s verified no cachelines", sr.Name)
		}
	}
	if !rep.Passed {
		t.Fatal("campaign failed")
	}
}

// TestScenarioExpectationsExercised spot-checks that the campaign really
// drove the paths it claims to: faults were injected, replays happened,
// escalation latched, detaches completed.
func TestScenarioExpectationsExercised(t *testing.T) {
	rep := RunCampaign(Catalogue(), testSeed)
	byName := map[string]ScenarioReport{}
	for _, sr := range rep.Scenarios {
		byName[sr.Name] = sr
	}
	if sr := byName["baseline-clean"]; sr.LLC.TxReplayed != 0 || sr.OpsOK != sr.Ops {
		t.Errorf("baseline not clean: %+v", sr.LLC)
	}
	if sr := byName["crc-burst"]; sr.LLC.RxCRCErrors == 0 || sr.LLC.RxCRCErrors != sr.Phy.Corrupted {
		t.Errorf("crc-burst accounting: detected %d, injected %d", sr.LLC.RxCRCErrors, sr.Phy.Corrupted)
	}
	if sr := byName["credit-starvation"]; sr.LLC.CreditStalls == 0 {
		t.Error("credit-starvation never stalled")
	}
	if sr := byName["link-down-escalation"]; sr.LLC.LinkDownEvents == 0 || sr.FinalState != "link-down" {
		t.Errorf("escalation did not latch: %+v state=%s", sr.LLC, sr.FinalState)
	}
	if sr := byName["detach-drain"]; sr.FinalState != "detached" || sr.OpsOK == 0 {
		t.Errorf("detach-drain: state=%s ok=%d", sr.FinalState, sr.OpsOK)
	}
	if sr := byName["detach-force"]; sr.FinalState != "detached" {
		t.Errorf("detach-force: state=%s", sr.FinalState)
	}
	// Degradation curve: higher loss must not improve average latency.
	l2 := byName["sustained-loss-2pct"].AvgLatencyNS
	l10 := byName["sustained-loss-10pct"].AvgLatencyNS
	if l10 < l2 {
		t.Errorf("degradation curve inverted: 10%% loss latency %dns < 2%% loss %dns", l10, l2)
	}
}

// TestCampaignDeterministic requires byte-identical reports for the same
// seed, and different protocol activity for a different seed.
func TestCampaignDeterministic(t *testing.T) {
	a, err := RunCampaign(Catalogue(), testSeed).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(Catalogue(), testSeed).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different campaign reports")
	}
	c, err := RunCampaign(Catalogue(), testSeed+1).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports (seed unused?)")
	}
}

// TestSingleScenarioReproducesFromSeed re-runs one scenario alone with the
// campaign seed and requires the identical per-scenario report — the
// property `tfbench -chaos -scenario <name>` relies on.
func TestSingleScenarioReproducesFromSeed(t *testing.T) {
	full := RunCampaign(Catalogue(), testSeed)
	for _, name := range []string{"crc-burst", "replay-storm", "link-down-escalation"} {
		s, ok := Find(name)
		if !ok {
			t.Fatalf("scenario %q missing from catalogue", name)
		}
		alone := Run(s, testSeed)
		var inFull ScenarioReport
		for _, sr := range full.Scenarios {
			if sr.Name == name {
				inFull = sr
			}
		}
		if alone.Seed != inFull.Seed {
			t.Fatalf("%s: seed %d alone vs %d in campaign", name, alone.Seed, inFull.Seed)
		}
		if alone.LLC != inFull.LLC || alone.Phy != inFull.Phy || alone.OpsOK != inFull.OpsOK {
			t.Fatalf("%s: standalone run diverged from campaign run", name)
		}
	}
}

// TestFindUnknown covers the miss path.
func TestFindUnknown(t *testing.T) {
	if _, ok := Find("no-such-scenario"); ok {
		t.Fatal("Find returned a scenario for an unknown name")
	}
}

// TestCampaignShardedMatchesSequential asserts the headline sharding
// guarantee at the chaos layer: the full campaign report is byte-identical
// whether each scenario's cluster runs on one kernel or one kernel per host.
// ShardHealth is the one section that describes the runtime rather than the
// simulation, so it is stripped before the cross-shard-count comparison (its
// own determinism is checked separately below).
func TestCampaignShardedMatchesSequential(t *testing.T) {
	stripHealth := func(r Report) Report {
		for i := range r.Scenarios {
			r.Scenarios[i].ShardHealth = nil
		}
		return r
	}
	seqRep := RunCampaignSharded(Catalogue(), testSeed, 1)
	shardedRep := RunCampaignSharded(Catalogue(), testSeed, 2)
	for _, sr := range seqRep.Scenarios {
		if sr.ShardHealth != nil {
			t.Fatalf("scenario %s: sequential run reported shard health", sr.Name)
		}
	}
	for _, sr := range shardedRep.Scenarios {
		if sr.ShardHealth == nil {
			t.Fatalf("scenario %s: sharded run reported no shard health", sr.Name)
		}
		if sr.ShardHealth.Windows == 0 || len(sr.ShardHealth.Shards) != 2 {
			t.Fatalf("scenario %s: degenerate shard health %+v", sr.Name, *sr.ShardHealth)
		}
	}
	seq, err := stripHealth(seqRep).JSON()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := stripHealth(shardedRep).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(seq) != string(sharded) {
		t.Fatalf("sharded campaign report diverges from sequential:\nseq:     %s\nsharded: %s", seq, sharded)
	}
}

// TestCampaignShardedHealthDeterministic requires the full sharded report —
// shard-health section included — to be byte-identical across repeated runs
// at the same seed and shard count.
func TestCampaignShardedHealthDeterministic(t *testing.T) {
	a, err := RunCampaignSharded(Catalogue(), testSeed, 2).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaignSharded(Catalogue(), testSeed, 2).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and shard count produced different shard-health reports")
	}
}
