package chaos

import (
	"sort"

	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/timeseries/detect"
)

// Ground-truth export: chaos scenarios already script exactly when and how
// the fabric misbehaves (fault windows, shrunken credit configs, transport
// fault mixes), so the scripts themselves are the labels the anomaly
// detector is scored against. GroundTruth and CPGroundTruth translate a
// scenario into detect.Label windows in that scenario's native tick domain —
// virtual picoseconds for the datapath, step-clock nanoseconds for the
// control plane.

// Label-derivation thresholds. These classify the *scripts*, not the
// telemetry: a window must be intense enough, against a credit window deep
// enough to sustain dense retransmission traffic, before the script is
// considered to have *guaranteed* a replay storm (a required label). Any
// lossy window at all is *allowed* to storm — whether faint loss builds a
// storm depends on which frames the seed happens to hit — so fainter
// scripts export optional labels instead of none.
const (
	// replayStormMinIntensity is the combined drop+corrupt probability a
	// fault window needs before sustained replay traffic is expected.
	replayStormMinIntensity = 0.25
	// replayStormMinCredits: a window smaller than this cannot keep enough
	// frames outstanding to storm (the credit-starvation scenario's 2-slot
	// window stalls instead).
	replayStormMinCredits = 64
	// baseStormMinLoss is the steady background loss rate above which the
	// whole run counts as a replay storm.
	baseStormMinLoss = 0.08
)

// labelEnd is the open upper bound for control-plane labels that span the
// whole scenario (the step clock never reaches it).
const labelEnd = int64(1) << 62

// GroundTruth derives the labeled anomaly windows implied by a datapath
// scenario's fault script and link configuration. Timestamps are virtual
// picoseconds; the run observes [0, 2*Horizon] (work phase plus read-back).
func GroundTruth(s Scenario) []detect.Label {
	s.defaults()
	end := int64(2 * s.Horizon)
	cfg := llc.DefaultConfig()
	if s.LLC != nil {
		cfg = *s.LLC
	}

	var labels []detect.Label
	if cfg.Credits < s.Workers {
		// More concurrent senders than credit slots: the window starves from
		// the first burst, faults or not.
		labels = append(labels, detect.Label{
			Class: detect.CreditStarvation, From: 0, To: end,
		})
	}
	if s.Faults != nil {
		labels = append(labels, faultLabels(s, cfg, end)...)
	}
	sortLabels(labels)
	return labels
}

func faultLabels(s Scenario, cfg llc.Config, end int64) []detect.Label {
	var labels []detect.Label
	clamp := func(t sim.Time) int64 {
		if int64(t) > end {
			return end
		}
		return int64(t)
	}
	// All degradation in a scenario merges into one spanning label: the
	// detector's clear hysteresis can bridge adjacent fault windows, and a
	// scenario's traffic pattern decides which windows it crosses at all —
	// "the link degraded during [first, last]" is the operator-level truth
	// the detector is scored against, not per-window edge alignment.
	degFrom, degTo := int64(-1), int64(-1)
	degrade := func(from, to int64) {
		if degFrom < 0 || from < degFrom {
			degFrom = from
		}
		if to > degTo {
			degTo = to
		}
	}
	if base := s.Faults.Base; base.DropProb > 0 || base.CorruptProb > 0 {
		degrade(0, end)
		// Heavy steady loss must read as a replay storm; fainter loss still
		// replays frames on lucky seeds, so it may (optional label).
		required := base.DropProb+base.CorruptProb >= baseStormMinLoss &&
			cfg.Credits >= replayStormMinCredits
		labels = append(labels, detect.Label{
			Class: detect.ReplayStorm, From: 0, To: end, Optional: !required,
		})
	}
	for _, w := range s.Faults.Windows {
		intensity := w.DropProb + w.CorruptProb
		if intensity <= 0 {
			continue
		}
		from, to := int64(w.From), clamp(w.To)
		degrade(from, to)
		if deadWindow(w, s.Horizon) {
			// A dying link is also a replay storm while it dies: every frame
			// sent into the blackout is retransmitted on the replay timer
			// until bounded retries fence the port.
			labels = append(labels,
				detect.Label{Class: detect.LinkDead, From: from, To: end},
				detect.Label{Class: detect.ReplayStorm, From: from, To: end},
			)
			continue
		}
		// Corruption keeps traffic (and therefore dense retransmission)
		// flowing through an intense window, so a deep credit window must
		// storm; any other lossy window is allowed to (optional label).
		required := intensity >= replayStormMinIntensity && w.CorruptProb > 0 &&
			cfg.Credits >= replayStormMinCredits
		labels = append(labels, detect.Label{
			Class: detect.ReplayStorm, From: from, To: to, Optional: !required,
		})
	}
	if degFrom >= 0 {
		labels = append(labels, detect.Label{
			Class: detect.LinkDegraded, From: degFrom, To: degTo,
		})
	}
	return labels
}

// deadWindow reports whether a fault window scripts a permanently dead link:
// total loss that never lifts within the scenario horizon, so bounded
// retries must fence the port.
func deadWindow(w phy.Window, horizon sim.Time) bool {
	return w.DropProb >= 1 && w.To >= horizon
}

// CPGroundTruth derives the labeled anomaly windows implied by a
// control-plane scenario's transport fault mix and crash script. The fault
// parameters live inside the scenario run functions, so the mapping is by
// catalogue name; timestamps are step-clock nanoseconds and every label
// spans the whole run (the faults are active from boot to heal).
func CPGroundTruth(s CPScenario) []detect.Label {
	var labels []detect.Label
	switch s.Name {
	case "cp-agent-flap":
		// 5% drop / 10% dup / 10% ambiguous transport: lost commands and acks
		// force saga retries, and the scripted agent crash-restarts leave
		// drift the reconciler must repair.
		labels = append(labels,
			detect.Label{Class: detect.SagaRetryStorm, From: 0, To: labelEnd},
			detect.Label{Class: detect.ReconcilerBacklog, From: 0, To: labelEnd},
		)
	case "cp-orchestrator-crash-midsaga":
		// Crash points truncate the run at scripted journal offsets, so how
		// much lossy-transport traffic (and with it retries or reconciler
		// drift) accumulates before the crash is seed-dependent: both labels
		// are optional. The scenario's own invariants cover recovery.
		labels = append(labels,
			detect.Label{Class: detect.SagaRetryStorm, From: 0, To: labelEnd, Optional: true},
			detect.Label{Class: detect.ReconcilerBacklog, From: 0, To: labelEnd, Optional: true},
		)
	case "cp-duplicate-command-storm":
		// 90% dup / 40% ambiguous: ambiguous results force retries (the
		// scenario asserts SagaRetries > 0), and ambiguously-completed
		// commands can leave records the reconciler trues up.
		labels = append(labels,
			detect.Label{Class: detect.SagaRetryStorm, From: 0, To: labelEnd},
			detect.Label{Class: detect.ReconcilerBacklog, From: 0, To: labelEnd, Optional: true},
		)
	case "cp-ha-leader-kill-midsaga", "cp-ha-minority-partition",
		"cp-ha-majority-partition", "cp-ha-split-brain-fencing",
		"cp-ha-follower-lag-catchup":
		// HA scenarios run a lossy agent transport, so retries and
		// reconciler drift are plausible on every seed — but the dominant
		// faults live in the raft layer (kills, partitions, fencing), whose
		// telemetry the anomaly rules do not score. Both labels stay
		// optional; replication correctness is asserted by the scenarios'
		// own invariants (log convergence, fencing, zero committed loss).
		labels = append(labels,
			detect.Label{Class: detect.SagaRetryStorm, From: 0, To: labelEnd, Optional: true},
			detect.Label{Class: detect.ReconcilerBacklog, From: 0, To: labelEnd, Optional: true},
		)
	}
	sortLabels(labels)
	return labels
}

func sortLabels(labels []detect.Label) {
	sort.Slice(labels, func(i, j int) bool {
		a, b := labels[i], labels[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.To < b.To
	})
}
