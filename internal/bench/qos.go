package bench

import (
	"fmt"
	"io"

	"thymesisflow/internal/route"
	"thymesisflow/internal/sim"
)

// AblationQoS demonstrates the channel-sharing extension of Section IV-A3:
// two tenants' active thymesisflows share one 12.5 GiB/s channel. Without
// shaping, a greedy bulk tenant starves a latency-sensitive one; with
// weighted QoS, each tenant gets its allocated bandwidth share.
func AblationQoS(w io.Writer) {
	fmt.Fprintf(w, "Ablation A5 — channel sharing: round-robin vs weighted QoS\n")
	fmt.Fprintf(w, "  %-12s %14s %14s %10s\n", "policy", "tenantA GiB/s", "tenantB GiB/s", "ratio")
	const rate = 12.5 * (1 << 30)
	for _, shaped := range []bool{false, true} {
		k := sim.NewKernel()
		var q *route.QoS
		if shaped {
			q = route.NewQoS(k, rate)
			q.SetWeight(1, 3) //nolint:errcheck
			q.SetWeight(2, 1) //nolint:errcheck
		}
		// The shared channel itself.
		channel := sim.NewPipe(k, rate)
		moved := map[route.NetworkID]int64{}
		// Tenant A issues 64 KiB bulk chunks; tenant B 4 KiB ones. Without
		// shaping, FIFO on the channel gives bandwidth in proportion to
		// offered chunk size — the greedy tenant wins.
		for _, tc := range []struct {
			id    route.NetworkID
			chunk int64
		}{{1, 4 << 10}, {2, 64 << 10}} {
			tc := tc
			k.Go("tenant", func(p *sim.Proc) {
				for p.Now() < 20*sim.Millisecond {
					if q != nil {
						q.Admit(p, tc.id, tc.chunk)
					}
					_, done := channel.Reserve(tc.chunk)
					moved[tc.id] += tc.chunk
					p.Sleep(done - p.Now())
				}
			})
		}
		k.RunUntil(20 * sim.Millisecond)
		k.Run()
		secs := 0.020
		a := float64(moved[1]) / secs / (1 << 30)
		b := float64(moved[2]) / secs / (1 << 30)
		name := "round-robin"
		if shaped {
			name = "QoS 3:1"
		}
		fmt.Fprintf(w, "  %-12s %14.2f %14.2f %10.2f\n", name, a, b, a/b)
	}
	fmt.Fprintf(w, "  (weighted shares hold regardless of the tenants' chunk sizes)\n")
}
