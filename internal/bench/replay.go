package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/controlplane"
	"thymesisflow/internal/core"
	"thymesisflow/internal/dctrace"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/trace"
)

// Replay: datacenter-churn traffic replay against the REAL control plane.
// A seeded dctrace churn trace (attach/depart arrivals under diurnal+burst
// envelopes, memory-pressure walks, agent flap storms, autoscaler cadence)
// is driven event by event through the actual saga engine — journaled
// write-ahead sagas over a seeded FaultyTransport, the reconciler, and the
// autoscaler — at thousands of sagas per simulated minute. Everything is a
// pure function of the seed, so the report is byte-identical per seed; the
// crash-point property test additionally kills and recovers the
// orchestrator mid-replay and asserts final-state equality with an
// uncrashed run.

const replayToken = "replay-secret"

// ReplayConfig parameterizes one replay run. Zero values take defaults().
type ReplayConfig struct {
	Seed              int64
	Minutes           int     // simulated trace duration
	RatePerMinute     float64 // base attach arrival rate
	Hosts             int
	TransceiversPerEP int
	// MaxInflightSagas is forwarded to Service.SetMaxInflightSagas — the
	// admission knob; the single-threaded driver never trips it, but the
	// concurrent driver (Workers > 1) races its issuers against it and
	// surfaces the shed load as SagasRejected.
	MaxInflightSagas int
	// Workers is the number of concurrent saga-issuing goroutines. 1 (the
	// default) is the deterministic sequential driver — byte-identical per
	// seed. N > 1 shards attach/depart events across N issuers routed by
	// attachment sequence (so each attachment's lifecycle stays ordered)
	// while flap storms, autoscaler evaluations, and periodic reconciles
	// run at pool barriers; totals then depend on scheduling, which is the
	// point — it is the load harness that makes admission control trip.
	Workers           int
	ReconcileEverySec float64 // periodic reconciler cadence (simulated)
	LocalBytes        int64   // synthetic local DRAM per host for the pressure model

	// HANodes > 1 replicates the saga write-ahead journal across an
	// in-process Raft replica set of that many control-plane nodes; sagas
	// execute on the elected leader behind the leader gate. LeaderKills
	// schedules that many deterministic leader kills during the trace (HA
	// mode only): each kill crashes the journal mid-saga, stops the Raft
	// leader, and recovery fails over to a freshly elected leader instead
	// of rebooting the same node. Both require the sequential driver.
	HANodes     int
	LeaderKills int

	// NoFaults zeroes the transport fault probabilities and NoAutoscale
	// disables the autoscaler — the crash-equality tests use both so a
	// crashed run's recovery traffic cannot skew the shared fault RNG.
	NoFaults    bool
	NoAutoscale bool

	// crashPoints arms the journal to fail after the given append counts,
	// in order, killing the control plane mid-saga; the driver recovers a
	// fresh incarnation and resumes the trace (tests only).
	crashPoints []int
}

func (cfg *ReplayConfig) defaults() {
	if cfg.Minutes <= 0 {
		cfg.Minutes = 2
	}
	if cfg.RatePerMinute <= 0 {
		cfg.RatePerMinute = 800
	}
	if cfg.Hosts <= 1 {
		cfg.Hosts = 8
	}
	if cfg.TransceiversPerEP <= 0 {
		cfg.TransceiversPerEP = 12
	}
	if cfg.MaxInflightSagas <= 0 {
		cfg.MaxInflightSagas = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ReconcileEverySec <= 0 {
		cfg.ReconcileEverySec = 20
	}
	if cfg.LocalBytes <= 0 {
		cfg.LocalBytes = 64 << 20
	}
}

// ReplayReconciler summarizes reconciler activity during the replay.
type ReplayReconciler struct {
	// PeriodicSweeps counts cadence-driven single sweeps.
	PeriodicSweeps int `json:"periodic_sweeps"`
	// StormReconciles counts flap storms; after each the driver sweeps
	// until clean and records the convergence passes (the "convergence
	// time after a flap storm" number).
	StormReconciles  int  `json:"storm_reconciles"`
	StormPassesTotal int  `json:"storm_passes_total"`
	StormPassesMax   int  `json:"storm_passes_max"`
	FinalPasses      int  `json:"final_passes"`
	FinalClean       bool `json:"final_clean"`
}

// ReplayJournal is the write-ahead journal growth over the run.
type ReplayJournal struct {
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// ReplayAttachment is one (compute, donor, bytes) multiset entry of the
// final attachment state. Executor IDs are deliberately excluded: a crashed
// and recovered run re-issues sagas under fresh IDs, but must converge to
// the same multiset.
type ReplayAttachment struct {
	Compute string `json:"compute"`
	Donor   string `json:"donor"`
	Bytes   int64  `json:"bytes"`
	Count   int    `json:"count"`
}

// ReplayRaft summarizes the replica set after an HA replay run: the
// surviving leader, its committed log, and the failover/partition tallies.
// Present only when HANodes > 1 (pointer + omitempty keeps single-node
// reports byte-identical with earlier versions).
type ReplayRaft struct {
	Nodes           int    `json:"nodes"`
	FinalLeader     string `json:"final_leader,omitempty"`
	FinalTerm       uint64 `json:"final_term"`
	FinalCommit     uint64 `json:"final_commit"`
	LeaderChanges   uint64 `json:"leader_changes"`
	DroppedMessages uint64 `json:"dropped_messages"`
	// Converged: every running replica exposes the identical committed
	// journal prefix at the end of the run.
	Converged bool `json:"converged"`
}

// ReplayFinalState is the converged end-of-trace state — the section the
// crash-point property test asserts byte-equal between a crashed and an
// uncrashed run.
type ReplayFinalState struct {
	Attachments      []ReplayAttachment `json:"attachments"`
	Count            int                `json:"count"`
	TotalBytes       int64              `json:"total_bytes"`
	ReservedVertices int                `json:"reserved_vertices"`
	AgentHeld        int                `json:"agent_held"`
	ParkedSagas      int                `json:"parked_sagas"`
}

// ReplayReport is the deterministic (per seed) result of a replay run.
type ReplayReport struct {
	Experiment       string  `json:"experiment"`
	Seed             int64   `json:"seed"`
	Minutes          int     `json:"minutes"`
	RatePerMinute    float64 `json:"rate_per_minute"`
	Hosts            int     `json:"hosts"`
	FaultsEnabled    bool    `json:"faults_enabled"`
	AutoscaleEnabled bool    `json:"autoscale_enabled"`
	MaxInflightSagas int     `json:"max_inflight_sagas"`
	Workers          int     `json:"workers"`
	HANodes          int     `json:"ha_nodes,omitempty"`
	LeaderKills      int     `json:"leader_kills,omitempty"`

	Trace dctrace.ChurnMix `json:"trace"`

	AttachesOK     int `json:"attaches_ok"`
	AttachErrors   int `json:"attach_errors"`
	DetachesOK     int `json:"detaches_ok"`
	DepartsSkipped int `json:"departs_skipped"`
	DetachErrors   int `json:"detach_errors"`
	ScaleAttaches  int `json:"scale_attaches"`
	ScaleDetaches  int `json:"scale_detaches"`
	ScaleErrors    int `json:"scale_errors"`
	Crashes        int `json:"crashes"`

	SagasCommitted    int     `json:"sagas_committed"`
	SagasPerSimMinute float64 `json:"sagas_per_sim_minute"`
	SagasPerSimSecond float64 `json:"sagas_per_sim_second"`

	// Profiles are the attach/detach stage profiles from the saga event
	// log (virtual StepClock nanoseconds — deterministic, not wall time).
	Profiles []trace.OpProfile `json:"profiles"`

	Reconciler ReplayReconciler            `json:"reconciler"`
	Journal    ReplayJournal               `json:"journal"`
	Counters   controlplane.SagaCounters   `json:"counters"`
	Transport  controlplane.TransportStats `json:"transport"`

	EventsRecorded uint64 `json:"events_recorded"`
	EventsDropped  uint64 `json:"events_dropped"`

	Raft *ReplayRaft `json:"raft,omitempty"`

	FinalState ReplayFinalState `json:"final_state"`
	// Invariants lists end-state invariant violations (empty on a healthy
	// run; the crash tests assert it stays empty).
	Invariants []string `json:"invariants,omitempty"`
}

// replayWorld is everything that outlives a control-plane "process": the
// cluster, topology model, agents, transports, journal chain, and the
// shared saga event log. A crash kills only the Service; a fresh boot()
// over the same world recovers from the journal.
type replayWorld struct {
	cfg      ReplayConfig
	cluster  *core.Cluster
	model    *controlplane.Model
	inner    *controlplane.DirectTransport
	faulty   *controlplane.FaultyTransport
	counting *controlplane.CountingJournal
	crash    *controlplane.CrashableJournal
	elog     *trace.EventLog
	clock    trace.WallClock
	hosts    []string

	// HA mode (cfg.HANodes > 1): the counting/crash chain bottoms out in
	// swap, which routes to the current leader's ReplicatedJournal and is
	// re-pointed on failover; leader is the node sagas currently run on and
	// haDown the killed node awaiting restart (at most one down at a time).
	rs     *controlplane.ReplicaSet
	swap   *switchJournal
	leader string
	haDown string
}

// switchJournal routes Journal calls to a swappable inner journal so the
// counting/crash wrappers above it — whose inner is fixed at construction —
// survive a leader failover: the driver re-points it at the new leader's
// ReplicatedJournal without rebuilding the chain.
type switchJournal struct {
	mu    sync.Mutex
	inner controlplane.Journal
}

func (s *switchJournal) SetInner(j controlplane.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner = j
}

func (s *switchJournal) Append(e controlplane.JournalEntry) error {
	s.mu.Lock()
	j := s.inner
	s.mu.Unlock()
	return j.Append(e)
}

func (s *switchJournal) Entries() ([]controlplane.JournalEntry, error) {
	s.mu.Lock()
	j := s.inner
	s.mu.Unlock()
	return j.Entries()
}

func buildReplayWorld(cfg ReplayConfig) (*replayWorld, error) {
	cluster := core.NewCluster()
	hosts := make([]string, cfg.Hosts)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("replay%02d", i)
	}
	for _, n := range hosts {
		hc := core.DefaultHostConfig(n)
		hc.Sockets = 1
		hc.CoresPerSocket = 2
		hc.DRAMPerSocket = 1 << 30
		hc.SectionSize = 1 << 20
		hc.RMMUSections = 512
		if _, err := cluster.AddHost(hc); err != nil {
			return nil, fmt.Errorf("replay: add host %s: %w", n, err)
		}
	}
	model := controlplane.NewModel()
	for _, n := range hosts {
		if err := model.AddHost(n, cfg.TransceiversPerEP); err != nil {
			return nil, fmt.Errorf("replay: model host %s: %w", n, err)
		}
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			ca := model.Transceivers(a, controlplane.LabelComputeEP)
			mb := model.Transceivers(b, controlplane.LabelMemoryEP)
			for i := range ca {
				if i < len(mb) {
					if err := model.Cable(ca[i], mb[i]); err != nil {
						return nil, fmt.Errorf("replay: cable %s-%s: %w", a, b, err)
					}
				}
			}
		}
	}
	inner := controlplane.NewDirectTransport()
	for _, n := range hosts {
		inner.Register(agent.New(n, replayToken))
	}
	faults := controlplane.TransportFaults{Seed: cfg.Seed}
	if !cfg.NoFaults {
		faults.DropProb = 0.02
		faults.DupProb = 0.04
		faults.AmbiguousProb = 0.04
	}

	// Size the saga event log for the expected traffic (~56 events per
	// saga), clamped to [16Ki, 512Ki]; overflow drops deterministically
	// and is reported.
	expected := int(float64(cfg.Minutes)*cfg.RatePerMinute*2.5) * 56
	capEvents := 1 << 14
	for capEvents < expected && capEvents < 1<<19 {
		capEvents <<= 1
	}

	w := &replayWorld{
		cfg:     cfg,
		cluster: cluster,
		model:   model,
		inner:   inner,
		faulty:  controlplane.NewFaultyTransport(inner, faults),
		elog:    trace.NewEventLog(capEvents),
		clock:   trace.StepClock(0, 25),
		hosts:   hosts,
	}
	if cfg.HANodes > 1 {
		ids := make([]string, cfg.HANodes)
		for i := range ids {
			ids[i] = fmt.Sprintf("cp-%02d", i)
		}
		rs, err := controlplane.NewReplicaSet(ids, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("replay: replica set: %w", err)
		}
		leader, err := rs.ElectLeader(800)
		if err != nil {
			return nil, fmt.Errorf("replay: initial election: %w", err)
		}
		w.rs, w.leader = rs, leader
		w.swap = &switchJournal{inner: rs.Journal(leader)}
		w.counting = controlplane.NewCountingJournal(w.swap)
	} else {
		w.counting = controlplane.NewCountingJournal(controlplane.NewMemJournal())
	}
	return w, nil
}

// boot starts a control-plane "process" over the shared world. Transport
// must be set before tracing so SetSagaTracing can wire the agents, and
// tracing continues trace/span sequences past the shared log's high-water
// mark so incarnations never collide.
func (w *replayWorld) boot() *controlplane.Service {
	svc := controlplane.NewService(w.model, controlplane.ClusterExecutor{Cluster: w.cluster}, replayToken)
	svc.SetJournal(w.crash)
	svc.SetTransport(w.faulty)
	svc.SetRetryPolicy(controlplane.RetryPolicy{MaxAttempts: 6})
	svc.SetMaxInflightSagas(w.cfg.MaxInflightSagas)
	svc.SetSagaTracing(w.elog, w.clock)
	if w.rs != nil {
		id := w.leader
		svc.SetLeaderGate(w.rs.Gate(id))
		svc.SetRaftStatus(func() controlplane.RaftStatus { return w.rs.StatusFor(id) })
	}
	return svc
}

// failover handles a leader crash in HA mode: restart the previously
// killed node (at most one replica stays down), stop the current leader,
// and re-point the journal chain at a freshly elected successor. boot()
// afterwards binds the new Service to that leader.
func (w *replayWorld) failover() error {
	if w.haDown != "" {
		if err := w.rs.Restart(w.haDown); err != nil {
			return fmt.Errorf("replay: restart %s: %w", w.haDown, err)
		}
	}
	w.rs.Stop(w.leader)
	w.haDown = w.leader
	next, err := w.rs.ElectLeader(800)
	if err != nil {
		return fmt.Errorf("replay: failover election: %w", err)
	}
	w.leader = next
	w.swap.SetInner(w.rs.Journal(next))
	return nil
}

// replayInspector feeds the autoscaler a synthetic per-host memory view:
// fixed local DRAM minus the pressure random walk's demand, with overflow
// demand spilling into whatever remote memory is currently attached.
type replayInspector struct {
	d *replayDriver
}

func (ri *replayInspector) HostMemory() []controlplane.HostMemory {
	d := ri.d
	remote := make(map[string]int64)
	for _, rec := range d.svc.Attachments() {
		remote[rec.ComputeHost] += rec.Bytes
	}
	out := make([]controlplane.HostMemory, 0, len(d.w.hosts))
	for i, h := range d.w.hosts {
		local := d.cfg.LocalBytes
		demand := d.demand[i]
		hm := controlplane.HostMemory{
			Name:           h,
			LocalCapacity:  local,
			LocalFree:      max64(0, local-demand),
			RemoteAttached: remote[h],
		}
		hm.RemoteFree = max64(0, hm.RemoteAttached-max64(0, demand-local))
		out = append(out, hm)
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// replayDriver walks the churn trace, translating events into real
// control-plane calls and recovering from injected crashes.
type replayDriver struct {
	w      *replayWorld
	cfg    ReplayConfig
	svc    *controlplane.Service
	scaler *controlplane.Autoscaler

	demand     []int64        // per-host pressure walk
	live       map[int]string // churn attach seq -> executor attachment ID
	known      map[string]bool
	crashQueue []int
	banked     controlplane.SagaCounters
	rep        *ReplayReport

	// Concurrent-driver state (Workers > 1 only): mu guards live/known/rep
	// against the issuer pool, pending counts submitted-but-unfinished
	// events so the dispatcher can barrier before global actions.
	mu      sync.Mutex
	pending sync.WaitGroup
}

func (d *replayDriver) bank() {
	c := d.svc.Counters()
	d.banked.SagaRetries += c.SagaRetries
	d.banked.SagaCompensations += c.SagaCompensations
	d.banked.RecoveryReplays += c.RecoveryReplays
	d.banked.ReconcileRepairs += c.ReconcileRepairs
	d.banked.DetachAgentFailures += c.DetachAgentFailures
	d.banked.SagasParked += c.SagasParked
	d.banked.SagasRejected += c.SagasRejected
}

// reboot replaces a crashed control plane: bank the dead incarnation's
// counters, arm the next scripted crash point (or disarm), boot a fresh
// Service over the same world, replay the journal, and reconcile until the
// recovered state is clean.
func (d *replayDriver) reboot() {
	d.rep.Crashes++
	d.bank()
	if len(d.crashQueue) > 0 {
		d.w.crash.FailAfter(d.crashQueue[0])
		d.crashQueue = d.crashQueue[1:]
	} else {
		d.w.crash.FailAfter(-1)
	}
	if d.w.rs != nil {
		// In HA mode a crash is a leader kill: the successor recovers from
		// the replicated journal, not the dead node's local state.
		if err := d.w.failover(); err != nil {
			d.rep.Invariants = append(d.rep.Invariants, err.Error())
		}
	}
	d.svc = d.w.boot()
	if d.scaler != nil {
		d.scaler = controlplane.NewAutoscaler(d.svc, &replayInspector{d: d}, d.scalePolicy())
	}
	d.svc.Recover() //nolint:errcheck // recovery over a live journal cannot fail here
	d.svc.ReconcileUntilClean(8)
}

func (d *replayDriver) scalePolicy() controlplane.AutoscalePolicy {
	return controlplane.AutoscalePolicy{
		LowWatermark:          0.15,
		HighWatermark:         0.60,
		StepBytes:             4 << 20,
		DonorReserve:          0.25,
		MaxAttachmentsPerHost: 24,
	}
}

// handle applies one churn event, rebooting and re-issuing through crashes.
func (d *replayDriver) handle(ev dctrace.ChurnEvent) {
	for attempt := 0; attempt < 4; attempt++ {
		err := d.apply(ev)
		if err == nil || !controlplane.IsCrash(err) {
			return
		}
		d.reboot()
		switch ev.Kind {
		case dctrace.ChurnAttach:
			// Recovery may have rolled the crashed attach forward under its
			// original executor ID; adopt it instead of re-issuing.
			if d.adoptAttach(ev) {
				return
			}
		case dctrace.ChurnDepart:
			// Rolled-forward detach: the attachment is gone, nothing to redo.
			id := d.live[ev.Ref]
			if _, ok := d.svc.Attachment(id); !ok {
				delete(d.live, ev.Ref)
				delete(d.known, id)
				d.rep.DetachesOK++
				return
			}
		case dctrace.ChurnScale:
			// Absorb whatever the crashed evaluation attached before dying;
			// the next scale event re-evaluates from live state anyway.
			for _, rec := range d.svc.Attachments() {
				if !d.known[rec.ID] {
					d.known[rec.ID] = true
					d.rep.ScaleAttaches++
				}
			}
			return
		default:
			return
		}
	}
}

// adoptAttach looks for an attachment the recovery rolled forward matching
// the crashed churn attach and claims it.
func (d *replayDriver) adoptAttach(ev dctrace.ChurnEvent) bool {
	for _, rec := range d.svc.Attachments() {
		if d.known[rec.ID] {
			continue
		}
		if rec.ComputeHost == d.w.hosts[ev.Compute] && rec.DonorHost == d.w.hosts[ev.Donor] && rec.Bytes == ev.Bytes {
			d.known[rec.ID] = true
			d.live[ev.Seq] = rec.ID
			d.rep.AttachesOK++
			return true
		}
	}
	return false
}

// apply performs one event against the live control plane. Only crash
// errors propagate; everything else is tallied.
func (d *replayDriver) apply(ev dctrace.ChurnEvent) error {
	switch ev.Kind {
	case dctrace.ChurnAttach:
		rec, err := d.svc.Attach(controlplane.AttachRequest{
			ComputeHost: d.w.hosts[ev.Compute], DonorHost: d.w.hosts[ev.Donor],
			Bytes: ev.Bytes, Channels: 1,
		})
		if err != nil {
			if controlplane.IsCrash(err) {
				return err
			}
			d.rep.AttachErrors++
			return nil
		}
		d.live[ev.Seq] = rec.ID
		d.known[rec.ID] = true
		d.rep.AttachesOK++

	case dctrace.ChurnDepart:
		id, ok := d.live[ev.Ref]
		if !ok {
			d.rep.DepartsSkipped++ // its attach failed or was shed
			return nil
		}
		if _, alive := d.svc.Attachment(id); !alive {
			// The autoscaler shrank it away first.
			delete(d.live, ev.Ref)
			delete(d.known, id)
			d.rep.DepartsSkipped++
			return nil
		}
		if err := d.svc.Detach(id); err != nil {
			if controlplane.IsCrash(err) {
				return err
			}
			d.rep.DetachErrors++
			return nil
		}
		delete(d.live, ev.Ref)
		delete(d.known, id)
		d.rep.DetachesOK++

	case dctrace.ChurnFlap:
		d.w.faulty.CrashAgent(d.w.hosts[ev.Host]) //nolint:errcheck // host is always registered
		if ev.StormEnd {
			passes, _ := d.svc.ReconcileUntilClean(8)
			d.rep.Reconciler.StormReconciles++
			d.rep.Reconciler.StormPassesTotal += passes
			if passes > d.rep.Reconciler.StormPassesMax {
				d.rep.Reconciler.StormPassesMax = passes
			}
		}

	case dctrace.ChurnPressure:
		i := ev.Host
		d.demand[i] += ev.Bytes
		if d.demand[i] < 0 {
			d.demand[i] = 0
		}
		if limit := 2 * d.cfg.LocalBytes; d.demand[i] > limit {
			d.demand[i] = limit
		}

	case dctrace.ChurnScale:
		if d.scaler == nil {
			return nil
		}
		actions, err := d.scaler.Evaluate()
		for _, a := range actions {
			if a.Kind == "attach" {
				d.known[a.AttachmentID] = true
				d.rep.ScaleAttaches++
			} else {
				delete(d.known, a.AttachmentID)
				d.rep.ScaleDetaches++
			}
		}
		if err != nil {
			if controlplane.IsCrash(err) {
				return err
			}
			d.rep.ScaleErrors++
		}
	}
	return nil
}

// applyConcurrent performs one attach/depart event from a pool issuer. The
// saga call itself runs outside the driver lock — admission and execution
// are the service's concern, and racing issuers against SetMaxInflightSagas
// is exactly what this mode exists for — while driver bookkeeping happens
// under d.mu. Crash errors cannot occur here (runConcurrent refuses crash
// points), so every failure is a tally.
func (d *replayDriver) applyConcurrent(ev dctrace.ChurnEvent) {
	switch ev.Kind {
	case dctrace.ChurnAttach:
		rec, err := d.svc.Attach(controlplane.AttachRequest{
			ComputeHost: d.w.hosts[ev.Compute], DonorHost: d.w.hosts[ev.Donor],
			Bytes: ev.Bytes, Channels: 1,
		})
		d.mu.Lock()
		defer d.mu.Unlock()
		if err != nil {
			d.rep.AttachErrors++
			return
		}
		d.live[ev.Seq] = rec.ID
		d.known[rec.ID] = true
		d.rep.AttachesOK++

	case dctrace.ChurnDepart:
		d.mu.Lock()
		id, ok := d.live[ev.Ref]
		d.mu.Unlock()
		if !ok {
			d.mu.Lock()
			d.rep.DepartsSkipped++ // its attach failed or was shed
			d.mu.Unlock()
			return
		}
		if _, alive := d.svc.Attachment(id); !alive {
			// The autoscaler shrank it away first.
			d.mu.Lock()
			delete(d.live, ev.Ref)
			delete(d.known, id)
			d.rep.DepartsSkipped++
			d.mu.Unlock()
			return
		}
		err := d.svc.Detach(id)
		d.mu.Lock()
		defer d.mu.Unlock()
		if err != nil {
			d.rep.DetachErrors++
			return
		}
		delete(d.live, ev.Ref)
		delete(d.known, id)
		d.rep.DetachesOK++
	}
}

// runConcurrent walks the trace with cfg.Workers goroutines issuing the
// attach/depart sagas against the admission-controlled service. Events are
// routed by attachment sequence, so each attachment's attach and depart
// stay ordered on one issuer; everything that acts on global state — flap
// storms, autoscaler evaluations, periodic reconciles — runs inline on the
// dispatcher after draining the pool.
func (d *replayDriver) runConcurrent(events []dctrace.ChurnEvent, reconcileEvery float64) {
	queues := make([]chan dctrace.ChurnEvent, d.cfg.Workers)
	var issuers sync.WaitGroup
	for i := range queues {
		queues[i] = make(chan dctrace.ChurnEvent, 64)
		issuers.Add(1)
		go func(ch chan dctrace.ChurnEvent) {
			defer issuers.Done()
			for ev := range ch {
				d.applyConcurrent(ev)
				d.pending.Done()
			}
		}(queues[i])
	}
	barrier := func() { d.pending.Wait() }
	submit := func(ev dctrace.ChurnEvent, key int) {
		d.pending.Add(1)
		queues[key%len(queues)] <- ev
	}

	nextReconcile := reconcileEvery
	for _, ev := range events {
		for ev.At >= nextReconcile {
			barrier()
			d.svc.Reconcile()
			d.rep.Reconciler.PeriodicSweeps++
			nextReconcile += reconcileEvery
		}
		switch ev.Kind {
		case dctrace.ChurnAttach:
			submit(ev, ev.Seq)
		case dctrace.ChurnDepart:
			submit(ev, ev.Ref)
		case dctrace.ChurnPressure:
			// Demand is dispatcher-local (the inspector only reads it at
			// scale barriers), so no drain needed.
			d.apply(ev) //nolint:errcheck // cannot crash: no crash points armed
		default: // flap, scale
			barrier()
			d.apply(ev) //nolint:errcheck // cannot crash: no crash points armed
		}
	}
	barrier()
	for _, ch := range queues {
		close(ch)
	}
	issuers.Wait()
}

// finalState builds the ID-free converged-state summary and checks the
// end-state invariants.
func (d *replayDriver) finalState() {
	recs := d.svc.Attachments()
	type key struct {
		compute, donor string
		bytes          int64
	}
	counts := make(map[key]int)
	var order []key
	pathVertices := 0
	recBySaga := make(map[string]*controlplane.AttachmentRecord)
	for _, rec := range recs {
		k := key{rec.ComputeHost, rec.DonorHost, rec.Bytes}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
		d.rep.FinalState.TotalBytes += rec.Bytes
		for _, n := range rec.PathLen {
			pathVertices += n
		}
		recBySaga[rec.SagaID] = rec
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.compute != b.compute {
			return a.compute < b.compute
		}
		if a.donor != b.donor {
			return a.donor < b.donor
		}
		return a.bytes < b.bytes
	})
	for _, k := range order {
		d.rep.FinalState.Attachments = append(d.rep.FinalState.Attachments, ReplayAttachment{
			Compute: k.compute, Donor: k.donor, Bytes: k.bytes, Count: counts[k],
		})
	}
	d.rep.FinalState.Count = len(recs)
	d.rep.FinalState.ReservedVertices = len(d.w.model.ReservedIDs())
	d.rep.FinalState.ParkedSagas = len(d.svc.ParkedSagas())

	bad := func(format string, args ...interface{}) {
		d.rep.Invariants = append(d.rep.Invariants, fmt.Sprintf(format, args...))
	}

	// Executor ground truth == records (no orphan datapaths, no dangling
	// records).
	clusterIDs := make(map[string]bool)
	for _, a := range d.w.cluster.Attachments() {
		clusterIDs[a.ID] = true
	}
	if len(clusterIDs) != len(recs) {
		bad("executor holds %d attachments, records hold %d", len(clusterIDs), len(recs))
	}
	for _, rec := range recs {
		if !clusterIDs[rec.ID] {
			bad("record %s has no datapath attachment", rec.ID)
		}
	}

	// Fabric reservations == union of record paths (no leaked vertices).
	if d.rep.FinalState.ReservedVertices != pathVertices {
		bad("%d vertices reserved, records imply %d", d.rep.FinalState.ReservedVertices, pathVertices)
	}

	// Agent ground truth: every held attachment belongs to a record on that
	// host (no orphaned donor memory), every record is fully configured.
	for _, h := range d.w.hosts {
		a, _ := d.w.inner.Agent(h)
		for _, att := range a.Status().Attachments {
			d.rep.FinalState.AgentHeld++
			rec, ok := recBySaga[att.ID]
			if !ok {
				bad("agent %s holds orphaned attachment %s", h, att.ID)
				continue
			}
			switch h {
			case rec.ComputeHost:
				if !att.ComputeAttached {
					bad("agent %s half-configured (compute) for %s", h, att.ID)
				}
			case rec.DonorHost:
				if att.StolenBytes == 0 {
					bad("agent %s half-configured (donor) for %s", h, att.ID)
				}
			default:
				bad("agent %s holds %s but is neither side", h, att.ID)
			}
		}
	}
	for _, rec := range recs {
		for _, h := range []string{rec.ComputeHost, rec.DonorHost} {
			a, _ := d.w.inner.Agent(h)
			if _, ok := a.Holds(rec.SagaID); !ok {
				bad("agent %s missing desired attachment %s", h, rec.SagaID)
			}
		}
	}

	if d.rep.FinalState.ParkedSagas != 0 {
		bad("%d sagas still parked after final reconcile", d.rep.FinalState.ParkedSagas)
	}
	if n := d.svc.InflightSagas(); n != 0 {
		bad("%d sagas still admitted at end of trace", n)
	}
}

// haFinal restarts any still-killed replica, ticks the replica set until
// every running member has caught up to the leader's log, verifies the
// committed journal is byte-identical on all replicas (zero committed-saga
// loss across every failover), and fills the Raft report section.
func (d *replayDriver) haFinal() {
	w := d.w
	bad := func(format string, args ...interface{}) {
		d.rep.Invariants = append(d.rep.Invariants, fmt.Sprintf(format, args...))
	}
	if w.haDown != "" {
		if err := w.rs.Restart(w.haDown); err != nil {
			bad("restart %s: %v", w.haDown, err)
		}
		w.haDown = ""
	}
	caughtUp := func() bool {
		lead := w.rs.Leader()
		if lead == "" {
			return false
		}
		st := w.rs.StatusFor(lead)
		if st.CommitIndex != st.LastIndex {
			return false
		}
		for _, m := range w.rs.Members() {
			if m.Stopped {
				continue
			}
			if m.Commit != st.CommitIndex || m.LastIndex != st.LastIndex {
				return false
			}
		}
		return true
	}
	for i := 0; i < 800 && !caughtUp(); i++ {
		if err := w.rs.Tick(1); err != nil {
			bad("raft settle tick: %v", err)
			break
		}
	}
	if !caughtUp() {
		bad("replicas never caught up to the leader's log")
	}
	if lead := w.rs.Leader(); lead != "" {
		w.leader = lead
	}
	st := w.rs.StatusFor(w.leader)
	summary := &ReplayRaft{
		Nodes:           d.cfg.HANodes,
		FinalLeader:     w.leader,
		FinalTerm:       st.Term,
		FinalCommit:     st.CommitIndex,
		LeaderChanges:   w.rs.LeaderChanges(),
		DroppedMessages: w.rs.DroppedMessages(),
		Converged:       true,
	}
	want, err := w.rs.CommittedEntries(w.leader)
	if err != nil {
		bad("leader committed entries: %v", err)
		summary.Converged = false
	}
	wantJSON, _ := json.Marshal(want)
	for _, id := range w.rs.IDs() {
		if id == w.leader {
			continue
		}
		got, err := w.rs.CommittedEntries(id)
		if err != nil {
			bad("replica %s committed entries: %v", id, err)
			summary.Converged = false
			continue
		}
		if gotJSON, _ := json.Marshal(got); !bytes.Equal(gotJSON, wantJSON) {
			bad("replica %s committed journal diverges from leader %s (%d vs %d entries)",
				id, w.leader, len(got), len(want))
			summary.Converged = false
		}
	}
	d.rep.Raft = summary
}

// Replay runs the churn replay experiment and prints a summary table.
func Replay(w io.Writer, cfg ReplayConfig) (ReplayReport, error) {
	cfg.defaults()
	if cfg.Workers > 1 && len(cfg.crashPoints) > 0 {
		return ReplayReport{}, fmt.Errorf("replay: crash points require the sequential driver (workers=1), got workers=%d", cfg.Workers)
	}
	if cfg.HANodes > 1 && cfg.Workers > 1 {
		return ReplayReport{}, fmt.Errorf("replay: the replicated journal requires the sequential driver (workers=1), got workers=%d", cfg.Workers)
	}
	if cfg.LeaderKills > 0 && cfg.HANodes <= 1 {
		return ReplayReport{}, fmt.Errorf("replay: leader kills require a replica set (ha nodes > 1)")
	}
	for i := 0; i < cfg.LeaderKills; i++ {
		// Fixed append offsets (43, 136, 229, ...) keep the kill schedule —
		// and with it the whole report — a pure function of the seed. The
		// offsets are deliberately off the ~10-entry per-saga journal stride
		// so kills land mid-saga, exercising in-flight recovery on the
		// successor, not just journal hand-off.
		cfg.crashPoints = append(cfg.crashPoints, 43+93*i)
	}
	world, err := buildReplayWorld(cfg)
	if err != nil {
		return ReplayReport{}, err
	}
	world.crash = controlplane.NewCrashableJournal(world.counting)
	if len(cfg.crashPoints) > 0 {
		world.crash.FailAfter(cfg.crashPoints[0])
	}

	rep := ReplayReport{
		Experiment:       "replay",
		Seed:             cfg.Seed,
		Minutes:          cfg.Minutes,
		RatePerMinute:    cfg.RatePerMinute,
		Hosts:            cfg.Hosts,
		FaultsEnabled:    !cfg.NoFaults,
		AutoscaleEnabled: !cfg.NoAutoscale,
		MaxInflightSagas: cfg.MaxInflightSagas,
		Workers:          cfg.Workers,
		HANodes:          cfg.HANodes,
		LeaderKills:      cfg.LeaderKills,
	}

	d := &replayDriver{
		w:      world,
		cfg:    cfg,
		svc:    world.boot(),
		demand: make([]int64, cfg.Hosts),
		live:   make(map[int]string),
		known:  make(map[string]bool),
		rep:    &rep,
	}
	if len(cfg.crashPoints) > 1 {
		d.crashQueue = cfg.crashPoints[1:]
	}
	if !cfg.NoAutoscale {
		d.scaler = controlplane.NewAutoscaler(d.svc, &replayInspector{d: d}, d.scalePolicy())
	}

	ch := dctrace.DefaultChurnConfig()
	ch.Seed = cfg.Seed
	ch.Minutes = cfg.Minutes
	ch.Hosts = cfg.Hosts
	ch.AttachPerMinute = cfg.RatePerMinute
	ch.FlapStorms = cfg.Minutes // one flap storm per simulated minute
	trace_ := dctrace.GenerateChurn(ch)
	rep.Trace = dctrace.MixOf(trace_)

	if cfg.Workers > 1 {
		d.runConcurrent(trace_, cfg.ReconcileEverySec)
	} else {
		nextReconcile := cfg.ReconcileEverySec
		for _, ev := range trace_ {
			for ev.At >= nextReconcile {
				d.svc.Reconcile()
				rep.Reconciler.PeriodicSweeps++
				nextReconcile += cfg.ReconcileEverySec
			}
			d.handle(ev)
		}
	}

	// Settle: sweep until clean, then snapshot the converged state.
	rep.Reconciler.FinalPasses, rep.Reconciler.FinalClean = d.svc.ReconcileUntilClean(8)
	d.finalState()
	if world.rs != nil {
		d.haFinal()
	}

	d.bank()
	rep.Counters = d.banked
	rep.Transport = world.faulty.Stats()
	rep.Journal.Entries, rep.Journal.Bytes = world.counting.Stats()
	rep.EventsRecorded = world.elog.Recorded()
	rep.EventsDropped = world.elog.Dropped()

	rep.SagasCommitted = rep.AttachesOK + rep.DetachesOK + rep.ScaleAttaches + rep.ScaleDetaches
	rep.SagasPerSimMinute = float64(rep.SagasCommitted) / float64(cfg.Minutes)
	rep.SagasPerSimSecond = rep.SagasPerSimMinute / 60

	for _, p := range trace.ProfileSagas(trace.BuildSagaTraces(world.elog.Snapshot())) {
		if p.Op == "attach" || p.Op == "detach" {
			rep.Profiles = append(rep.Profiles, p)
		}
	}

	printReplay(w, &rep)
	return rep, nil
}

func printReplay(w io.Writer, rep *ReplayReport) {
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	fmt.Fprintf(w, "Replay: churn trace vs the real control plane (seed %d)\n", rep.Seed)
	fmt.Fprintf(w, "  %d sim-minutes, %d hosts, %.0f attach/min, %d issuer(s), faults %s, autoscale %s\n",
		rep.Minutes, rep.Hosts, rep.RatePerMinute, rep.Workers,
		onOff(rep.FaultsEnabled), onOff(rep.AutoscaleEnabled))
	fmt.Fprintf(w, "  trace events       %d attach / %d depart / %d flap (%d storms) / %d pressure / %d scale\n",
		rep.Trace.Attaches, rep.Trace.Departs, rep.Trace.Flaps, rep.Trace.FlapStorms,
		rep.Trace.Pressure, rep.Trace.ScaleEvals)
	fmt.Fprintf(w, "  attaches           %d ok, %d failed\n", rep.AttachesOK, rep.AttachErrors)
	fmt.Fprintf(w, "  departs            %d ok, %d skipped, %d failed\n",
		rep.DetachesOK, rep.DepartsSkipped, rep.DetachErrors)
	fmt.Fprintf(w, "  autoscaler         %d attaches, %d detaches, %d errors\n",
		rep.ScaleAttaches, rep.ScaleDetaches, rep.ScaleErrors)
	fmt.Fprintf(w, "  crashes            %d\n", rep.Crashes)
	if rep.Raft != nil {
		fmt.Fprintf(w, "  raft               %d nodes, leader %s, term %d, commit %d; %d leader changes, %d dropped msgs, converged=%v\n",
			rep.Raft.Nodes, rep.Raft.FinalLeader, rep.Raft.FinalTerm, rep.Raft.FinalCommit,
			rep.Raft.LeaderChanges, rep.Raft.DroppedMessages, rep.Raft.Converged)
	}
	fmt.Fprintf(w, "  sagas committed    %d (%.1f per sim-minute, %.2f per sim-second)\n",
		rep.SagasCommitted, rep.SagasPerSimMinute, rep.SagasPerSimSecond)
	for _, p := range rep.Profiles {
		fmt.Fprintf(w, "  %-7s p50/p99    %d / %d ns (virtual, %d sagas)\n",
			p.Op, p.P50NS, p.P99NS, p.Count)
	}
	fmt.Fprintf(w, "  reconciler         %d periodic sweeps; %d storms, %d passes total (max %d); final clean=%v in %d\n",
		rep.Reconciler.PeriodicSweeps, rep.Reconciler.StormReconciles,
		rep.Reconciler.StormPassesTotal, rep.Reconciler.StormPassesMax,
		rep.Reconciler.FinalClean, rep.Reconciler.FinalPasses)
	fmt.Fprintf(w, "  journal            %d entries, %d bytes\n", rep.Journal.Entries, rep.Journal.Bytes)
	fmt.Fprintf(w, "  transport          %d sends, %d drops, %d dups, %d ambiguous\n",
		rep.Transport.Sends, rep.Transport.Drops, rep.Transport.Dups, rep.Transport.Ambiguous)
	fmt.Fprintf(w, "  saga counters      %d retries, %d compensations, %d parked, %d rejected\n",
		rep.Counters.SagaRetries, rep.Counters.SagaCompensations,
		rep.Counters.SagasParked, rep.Counters.SagasRejected)
	fmt.Fprintf(w, "  trace events       %d recorded, %d dropped\n", rep.EventsRecorded, rep.EventsDropped)
	fmt.Fprintf(w, "  final state        %d attachments, %d bytes, %d vertices reserved, %d agent-held, %d parked\n",
		rep.FinalState.Count, rep.FinalState.TotalBytes,
		rep.FinalState.ReservedVertices, rep.FinalState.AgentHeld, rep.FinalState.ParkedSagas)
	for _, v := range rep.Invariants {
		fmt.Fprintf(w, "  INVARIANT VIOLATED %s\n", v)
	}
}

// RegisterReplayMetrics publishes the replay_* instruments into the
// registry (and from there the Prometheus exposition): throughput, latency
// percentiles, journal growth, reconciler convergence, and the fault/
// compensation tallies.
func RegisterReplayMetrics(reg *metrics.Registry, rep *ReplayReport) {
	set := func(name string, v int64) {
		ctr := reg.Counter(name)
		ctr.Reset()
		ctr.Add(v)
	}
	set("replay.sagas_committed", int64(rep.SagasCommitted))
	set("replay.attaches_ok", int64(rep.AttachesOK))
	set("replay.attach_errors", int64(rep.AttachErrors))
	set("replay.detaches_ok", int64(rep.DetachesOK))
	set("replay.detach_errors", int64(rep.DetachErrors))
	set("replay.scale_attaches", int64(rep.ScaleAttaches))
	set("replay.scale_detaches", int64(rep.ScaleDetaches))
	set("replay.crashes", int64(rep.Crashes))
	set("replay.flaps", int64(rep.Trace.Flaps))
	set("replay.journal_entries", rep.Journal.Entries)
	set("replay.journal_bytes", rep.Journal.Bytes)
	set("replay.reconcile_periodic_sweeps", int64(rep.Reconciler.PeriodicSweeps))
	set("replay.reconcile_storm_passes", int64(rep.Reconciler.StormPassesTotal))
	set("replay.saga_retries", rep.Counters.SagaRetries)
	set("replay.saga_compensations", rep.Counters.SagaCompensations)
	set("replay.sagas_parked", rep.Counters.SagasParked)
	set("replay.sagas_rejected", rep.Counters.SagasRejected)
	set("replay.transport_drops", rep.Transport.Drops)

	if rep.Raft != nil {
		set("replay.raft_nodes", int64(rep.Raft.Nodes))
		set("replay.raft_leader_changes", int64(rep.Raft.LeaderChanges))
		set("replay.raft_commit_index", int64(rep.Raft.FinalCommit))
		set("replay.raft_dropped_messages", int64(rep.Raft.DroppedMessages))
	}

	reg.Gauge("replay.sagas_per_sim_minute").Set(rep.SagasPerSimMinute)
	reg.Gauge("replay.final_attachments").Set(float64(rep.FinalState.Count))
	for _, p := range rep.Profiles {
		reg.Gauge("replay." + p.Op + "_p50_ns").Set(float64(p.P50NS))
		reg.Gauge("replay." + p.Op + "_p99_ns").Set(float64(p.P99NS))
	}
}
