package bench

import (
	"fmt"
	"io"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/core"
	"thymesisflow/internal/endpoint"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// AblationReplay measures the cost of the LLC replay protocol under
// injected frame loss: goodput and replay counts for loss rates from 0 to
// 1e-3 on the transaction datapath.
func AblationReplay(w io.Writer) {
	fmt.Fprintf(w, "Ablation A1 — LLC replay under frame loss (1000 loads of 128B)\n")
	fmt.Fprintf(w, "  %-10s %12s %12s %12s\n", "loss", "avg load", "replays", "crc errors")
	for _, loss := range []float64{0, 1e-5, 1e-4, 1e-3, 1e-2} {
		k := sim.NewKernel()
		ce, err := endpoint.NewCompute(k, "c", 4, 1<<20)
		if err != nil {
			panic(err)
		}
		me := endpoint.NewMemory(k, "m", 90*sim.Nanosecond)
		link := phy.NewLink(k, "wire", phy.LanesPerChannel, phy.SerdesCrossing,
			phy.FaultConfig{DropProb: loss, CorruptProb: loss, Seed: 42})
		cp, mp := llc.NewPair(k, "llc", link, llc.DefaultConfig())
		ce.AttachPort(cp)
		me.AttachPort(mp)
		reg, err := me.Steal("bench", 0x10000000, 1<<20, false)
		if err != nil {
			panic(err)
		}
		if err := ce.RMMU().Map(0, reg.Base, 1, false); err != nil {
			panic(err)
		}
		if err := ce.Router().AddFlow(1, cp); err != nil {
			panic(err)
		}
		const loads = 1000
		var total sim.Time
		k.Go("probe", func(p *sim.Proc) {
			for i := 0; i < loads; i++ {
				start := p.Now()
				if _, err := ce.Load(p, uint64(i%8000)*capi.Cacheline, capi.Cacheline); err != nil {
					panic(err)
				}
				total += p.Now() - start
			}
		})
		k.RunUntil(10 * sim.Second)
		st := cp.Stats()
		fmt.Fprintf(w, "  %-10.0e %12v %12d %12d\n",
			loss, total/loads, st.TxReplayed+mp.Stats().TxReplayed, cp.Stats().RxCRCErrors+mp.Stats().RxCRCErrors)
	}
}

// AblationBonding compares round-robin bonding against single-channel
// pinning for streaming bandwidth and for demand-access latency, showing
// the trade the paper's Memcached and STREAM results straddle: bonding buys
// bandwidth but costs response-reordering latency.
func AblationBonding(w io.Writer) {
	fmt.Fprintf(w, "Ablation A2 — channel bonding policy\n")
	for _, channels := range []int{1, 2} {
		k := sim.NewKernel()
		// Streaming: a long transfer fully utilizes the bonded channels.
		bStream := endpoint.NewRemoteBackend(k, "tf-stream", channels, nil, 90*sim.Nanosecond)
		done := bStream.ReserveStream(1 << 30)
		gibps := float64(1<<30) / done.Seconds() / (1 << 30)
		// Demand access: one cacheline on an idle datapath.
		bIdle := endpoint.NewRemoteBackend(k, "tf-idle", channels, nil, 90*sim.Nanosecond)
		lat := bIdle.Access(capi.Cacheline, false)
		fmt.Fprintf(w, "  channels=%d  stream=%6.2f GiB/s  demand-load=%v\n", channels, gibps, lat)
	}
	fmt.Fprintf(w, "  (bonding raises stream bandwidth toward the 16 GiB/s C1 ceiling\n")
	fmt.Fprintf(w, "   but adds %v of response-reordering latency per demand access)\n",
		endpoint.BondReorderPenalty)
}

// AblationMigration quantifies AutoNUMA-style page migration for the
// interleaved configuration: hot pages pulled local convert remote demand
// misses into local ones.
func AblationMigration(w io.Writer) {
	fmt.Fprintf(w, "Ablation A3 — NUMA page migration on the interleaved configuration\n")
	for _, migrate := range []bool{false, true} {
		tb, err := core.NewTestbed(core.ConfigInterleaved, 1<<30)
		if err != nil {
			panic(err)
		}
		k := tb.Cluster.K
		buf, err := tb.Server.Mem.Alloc(64<<20, tb.Placer())
		if err != nil {
			panic(err)
		}
		bal := numa.NewBalancer(tb.Server.Mem, tb.Server.LocalNode(0), 100*sim.Microsecond)
		th := tb.Server.NewThread(0)
		// A skewed access pattern: 90% of accesses to 10% of pages.
		pages := buf.Size / tb.Server.Mem.PageSize
		var elapsed sim.Time
		k.Go("app", func(p *sim.Proc) {
			rngState := uint64(99)
			start := p.Now()
			for i := 0; i < 20000; i++ {
				rngState = rngState*6364136223846793005 + 1
				var pg int64
				if rngState%10 < 9 {
					pg = int64(rngState/16) % (pages / 10)
				} else {
					pg = int64(rngState/16) % pages
				}
				addr := buf.Addr(pg * tb.Server.Mem.PageSize)
				th.Access(p, addr, 64, false)
				if migrate {
					bal.RecordAccess(addr)
					if cost := bal.MaybeScan(p.Now()); cost > 0 {
						p.Sleep(cost)
					}
				}
			}
			elapsed = p.Now() - start
		})
		k.Run()
		migrated, _ := bal.Stats()
		fmt.Fprintf(w, "  migration=%-5v  runtime=%v  pages-migrated=%d\n", migrate, elapsed, migrated)
	}
}
