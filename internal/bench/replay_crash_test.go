package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// TestReplayCrashPointEquality kills and recovers the orchestrator
// mid-replay at randomized journal offsets across 4 seeds and asserts that,
// after reconciliation settles, the crashed run's converged final state is
// byte-identical to an uncrashed run of the same seed — no donor-memory
// leak, no orphan attachments, no divergence.
//
// These runs disable transport faults and the autoscaler: recovery and
// re-issued sagas consume extra sends, so with faults enabled the crashed
// run's fault RNG stream diverges from the uncrashed run's and exact state
// equality is unattainable by construction. The attach/depart/flap churn
// still flows through the full saga + journal + reconciler machinery; the
// faults-enabled crash coverage lives in TestReplayCrashUnderFaults below.
func TestReplayCrashPointEquality(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := ReplayConfig{
				Seed: seed, Minutes: 1, RatePerMinute: 400,
				NoFaults: true, NoAutoscale: true,
			}
			ref, _, _ := runReplayOnce(t, base)
			if len(ref.Invariants) != 0 {
				t.Fatalf("reference run violated invariants: %v", ref.Invariants)
			}
			refState, err := json.MarshalIndent(ref.FinalState, "", "  ")
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 3; k++ {
				// A random journal offset strictly inside the uncrashed run's
				// append count always fires mid-replay.
				cp := 1 + rng.Intn(int(ref.Journal.Entries)-1)
				t.Run(fmt.Sprintf("crash%d", cp), func(t *testing.T) {
					cfg := base
					cfg.crashPoints = []int{cp}
					rep, _, _ := runReplayOnce(t, cfg)
					if rep.Crashes < 1 {
						t.Fatalf("crash point %d never fired", cp)
					}
					if len(rep.Invariants) != 0 {
						t.Fatalf("crashed run violated invariants: %v", rep.Invariants)
					}
					if !rep.Reconciler.FinalClean {
						t.Fatal("crashed run did not reconcile clean")
					}
					if rep.Counters.RecoveryReplays == 0 {
						t.Fatal("recovery never replayed the journal")
					}
					state, err := json.MarshalIndent(rep.FinalState, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(state, refState) {
						t.Fatalf("crashed run diverged from uncrashed run:\n--- uncrashed\n%s\n--- crashed at %d\n%s",
							refState, cp, state)
					}
				})
			}
		})
	}
}

// TestReplayCrashUnderFaults crashes the orchestrator mid-replay (twice per
// run, at randomized journal offsets) with transport faults and the
// autoscaler ENABLED, and asserts the hard invariants: the recovered
// control plane converges to a clean reconcile and the end state has no
// leaked reservations, no orphan datapaths, no half-configured agents, and
// no parked sagas.
func TestReplayCrashUnderFaults(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(400 + seed))
			cfg := ReplayConfig{
				Seed: seed, Minutes: 1, RatePerMinute: 400,
				crashPoints: []int{
					200 + rng.Intn(1500),
					200 + rng.Intn(1500),
				},
			}
			rep, _, _ := runReplayOnce(t, cfg)
			if rep.Crashes < 2 {
				t.Fatalf("only %d crashes fired, want 2", rep.Crashes)
			}
			if !rep.Reconciler.FinalClean {
				t.Fatal("crashed run did not reconcile clean")
			}
			if len(rep.Invariants) != 0 {
				t.Fatalf("invariant violations after crash recovery: %v", rep.Invariants)
			}
			if rep.SagasPerSimMinute < 500 {
				t.Fatalf("throughput collapsed to %.1f sagas/sim-minute", rep.SagasPerSimMinute)
			}
		})
	}
}
