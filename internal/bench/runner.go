package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"thymesisflow/internal/metrics"
	"thymesisflow/internal/trace"
)

// Runner executes the independent cells of an experiment — one (config,
// thread-count, workload) tuple each — across a bounded worker pool.
//
// Parallelism cannot perturb results: every cell builds its own
// sim.Kernel (its own virtual clock, event queue and seeded PRNGs), so a
// cell computes bit-identical results no matter which OS thread runs it
// or in what order cells complete. Each figure then formats its table
// from the completed cell slice in cell order, which makes the printed
// output byte-identical to a sequential run. See EXPERIMENTS.md §"Parallel
// runner".
type Runner struct {
	workers int

	// Tracer, when non-nil, is attached to each cell's kernel, recording
	// cross-layer spans into one shared sink (trace.Ring is safe for
	// concurrent cells). Traced cells additionally run a short functional
	// datapath probe so llc/capi/rmmu/phy activity appears in the trace even
	// for workloads priced through the analytic backend. Leave nil for
	// byte-identical untraced results.
	Tracer trace.Tracer
	// Metrics, when non-nil, receives per-cell cluster telemetry
	// (registered under a per-cell prefix; see Cluster.RegisterMetrics).
	Metrics *metrics.Registry
}

// NewRunner returns a runner with the given worker count; workers <= 0
// selects GOMAXPROCS (all available cores). NewRunner(1) is the
// sequential reference path.
func NewRunner(workers int) *Runner {
	return &Runner{workers: workers}
}

// seqRunner backs the package-level figure functions, preserving their
// original sequential behaviour.
var seqRunner = NewRunner(1)

// Workers reports the effective worker count for a job of n cells.
func (r *Runner) Workers(n int) int {
	w := r.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// run executes fn(0..n-1), each call exactly once, across the pool and
// returns when all calls have completed. With one worker the cells run
// in index order on the calling goroutine. A panic inside a cell is
// re-raised on the caller — the lowest-index panic wins, so failure
// behaviour is deterministic too.
func (r *Runner) run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := r.Workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	panics := make([]any, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							panics[i] = p
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
