package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"thymesisflow/internal/core"
	"thymesisflow/internal/trace"
)

// TestProbeDatapathCoversTransactionLayers builds a small traced testbed,
// runs the datapath probe, and checks every layer of the transaction path
// shows up in the recorded trace — the coverage a traced fig5 run relies on,
// since STREAM itself is priced through the analytic backend.
func TestProbeDatapathCoversTransactionLayers(t *testing.T) {
	tb, err := core.NewTestbed(core.ConfigSingleDisaggregated, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(1 << 16)
	tb.Cluster.K.SetTracer(ring)
	probeDatapath(tb)

	layers := make(map[string]int)
	for _, e := range ring.Snapshot() {
		layers[e.Layer]++
	}
	for _, want := range []string{
		trace.LayerSim, trace.LayerLLC, trace.LayerCAPI, trace.LayerRMMU, trace.LayerPhy,
	} {
		if layers[want] == 0 {
			t.Fatalf("layer %q absent from probe trace (got %v)", want, layers)
		}
	}

	// The export must be loadable Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := ring.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(layers) {
		t.Fatalf("exported %d events for %d layers", len(doc.TraceEvents), len(layers))
	}
}

// TestProbeDatapathNoAttachment checks the probe is a no-op for
// configurations without an attachment (local, scale-out).
func TestProbeDatapathNoAttachment(t *testing.T) {
	tb, err := core.NewTestbed(core.ConfigLocal, 0)
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(64)
	tb.Cluster.K.SetTracer(ring)
	probeDatapath(tb)
	if n := ring.Len(); n != 0 {
		t.Fatalf("probe on attachment-less testbed recorded %d events", n)
	}
}
