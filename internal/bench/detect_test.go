package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

func detectJSON(t *testing.T, cfg DetectConfig) []byte {
	t.Helper()
	rep, err := Detect(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The shard count is the one field allowed to differ across runs being
	// compared; everything else must be byte-stable.
	rep.Shards = 0
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDetectShardCountInvariant is the closed-loop determinism property:
// the whole scorecard — series counts, anomaly events with their virtual
// timestamps, per-class scores, latency histogram — is byte-identical
// whether the chaos scenarios ran on one kernel or on a sharded group.
func TestDetectShardCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalogue x 3 shard counts")
	}
	base := detectJSON(t, DetectConfig{Seed: 42, Shards: 1})
	for _, shards := range []int{2, 3} {
		got := detectJSON(t, DetectConfig{Seed: 42, Shards: shards})
		if !bytes.Equal(base, got) {
			t.Fatalf("detect report differs between 1 and %d shards", shards)
		}
	}
}

func TestDetectRepeatRunByteIdentical(t *testing.T) {
	cfg := DetectConfig{Seed: 7, Shards: 1, Scenario: "crc-burst"}
	a := detectJSON(t, cfg)
	b := detectJSON(t, cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed detect runs differ")
	}
}

// TestDetectScorecardGates runs the full catalogue on the default seed and
// asserts the acceptance gates hold: every scenario's own invariants pass
// under recording, and every anomaly class clears precision 0.8 / recall
// 0.9 against the chaos ground truth.
func TestDetectScorecardGates(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalogue")
	}
	rep, err := Detect(io.Discard, DetectConfig{Seed: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatal("scorecard failed")
	}
	if len(rep.Scenarios) < 14 {
		t.Fatalf("only %d scenarios scored", len(rep.Scenarios))
	}
	for _, s := range rep.Scenarios {
		if !s.ScenarioPassed {
			t.Errorf("scenario %s failed under recording", s.Name)
		}
	}
	for _, c := range rep.Classes {
		if c.Precision < detectMinPrecision || c.Recall < detectMinRecall {
			t.Errorf("class %s: precision %.3f recall %.3f below gates", c.Class, c.Precision, c.Recall)
		}
	}
	if rep.Latency.Count == 0 {
		t.Error("no detection latencies measured")
	}
}

func TestDetectScenarioFilter(t *testing.T) {
	rep, err := Detect(io.Discard, DetectConfig{Seed: 1, Scenario: "cp-duplicate-command-storm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Domain != "controlplane" {
		t.Fatalf("scenarios = %+v", rep.Scenarios)
	}
	if _, err := Detect(io.Discard, DetectConfig{Scenario: "no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
