package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// TestReplayHAHealth drives the churn replay against a 3-node replicated
// control plane with two scripted leader kills, under the default lossy
// transport. Every kill must fail over to a freshly elected leader, the
// run must converge with zero invariant violations, and the committed
// journal must be identical on all replicas at the end.
func TestReplayHAHealth(t *testing.T) {
	rep, _, _ := runReplayOnce(t, ReplayConfig{
		Seed: 3, Minutes: 1, RatePerMinute: 400, HANodes: 3, LeaderKills: 2,
	})
	if rep.Crashes < 2 {
		t.Fatalf("scheduled 2 leader kills, observed %d crashes", rep.Crashes)
	}
	if rep.Raft == nil {
		t.Fatal("HA run produced no raft report section")
	}
	if rep.Raft.LeaderChanges < 2 {
		t.Fatalf("2 leader kills but only %d leader changes", rep.Raft.LeaderChanges)
	}
	if !rep.Raft.Converged {
		t.Fatal("replicas did not converge on an identical committed journal")
	}
	if rep.Raft.FinalLeader == "" || rep.Raft.FinalCommit == 0 {
		t.Fatalf("raft summary not filled: %+v", rep.Raft)
	}
	if len(rep.Invariants) != 0 {
		t.Fatalf("invariant violations: %v", rep.Invariants)
	}
	if !rep.Reconciler.FinalClean {
		t.Fatal("HA run did not reconcile clean")
	}
	if rep.AttachesOK == 0 || rep.SagasCommitted == 0 {
		t.Fatalf("HA run committed no work: %+v", rep)
	}
	if rep.Counters.RecoveryReplays == 0 {
		t.Fatal("failover never replayed the replicated journal")
	}
}

// TestReplayHADeterminism: the HA replay — elections, failovers, and all —
// is still a pure function of the seed.
func TestReplayHADeterminism(t *testing.T) {
	cfg := ReplayConfig{Seed: 5, Minutes: 1, RatePerMinute: 400, HANodes: 3, LeaderKills: 1}
	_, json1, out1 := runReplayOnce(t, cfg)
	_, json2, out2 := runReplayOnce(t, cfg)
	if !bytes.Equal(json1, json2) {
		t.Fatalf("same seed produced different HA report JSON:\n--- run1\n%s\n--- run2\n%s", json1, json2)
	}
	if out1 != out2 {
		t.Fatal("same seed produced different HA stdout")
	}
}

// TestReplayHACrashEquality is the zero-committed-saga-loss property at
// replay scale: a 3-node run that kills the leader twice mid-trace must
// converge to a final state byte-identical to an unkilled single-node run
// of the same seed — the replicated journal hands the successor exactly
// the committed prefix a local journal would have handed a rebooted
// orchestrator. Faults and the autoscaler are off for the same RNG-stream
// reason as TestReplayCrashPointEquality.
func TestReplayHACrashEquality(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := ReplayConfig{
				Seed: seed, Minutes: 1, RatePerMinute: 400,
				NoFaults: true, NoAutoscale: true,
			}
			ref, _, _ := runReplayOnce(t, base)
			if len(ref.Invariants) != 0 {
				t.Fatalf("reference run violated invariants: %v", ref.Invariants)
			}
			refState, err := json.MarshalIndent(ref.FinalState, "", "  ")
			if err != nil {
				t.Fatal(err)
			}

			ha := base
			ha.HANodes = 3
			ha.LeaderKills = 2
			rep, _, _ := runReplayOnce(t, ha)
			if rep.Crashes < 2 {
				t.Fatalf("leader kills never fired: crashes=%d", rep.Crashes)
			}
			if len(rep.Invariants) != 0 {
				t.Fatalf("HA run violated invariants: %v", rep.Invariants)
			}
			state, err := json.MarshalIndent(rep.FinalState, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refState, state) {
				t.Fatalf("HA final state diverged from single-node reference:\n--- reference\n%s\n--- ha\n%s", refState, state)
			}
		})
	}
}

// TestReplayHAConfigValidation: leader kills require a replica set, and
// the replicated journal requires the sequential driver.
func TestReplayHAConfigValidation(t *testing.T) {
	var out bytes.Buffer
	if _, err := Replay(&out, ReplayConfig{Seed: 1, LeaderKills: 1}); err == nil {
		t.Fatal("leader kills without a replica set should be rejected")
	}
	if _, err := Replay(&out, ReplayConfig{Seed: 1, HANodes: 3, Workers: 4}); err == nil {
		t.Fatal("HA mode with a concurrent driver should be rejected")
	}
}
