package bench

import (
	"bytes"
	"io"
	"testing"
)

// TestReplayWorkersDefaultIsSequential pins the workers=1 contract: the
// explicit value and the zero-value default take the same deterministic
// sequential driver, so their reports and stdout are byte-identical.
func TestReplayWorkersDefaultIsSequential(t *testing.T) {
	_, jsonDefault, outDefault := runReplayOnce(t, ReplayConfig{Seed: 9, Minutes: 1})
	rep, jsonOne, outOne := runReplayOnce(t, ReplayConfig{Seed: 9, Minutes: 1, Workers: 1})
	if rep.Workers != 1 {
		t.Fatalf("report workers = %d, want 1", rep.Workers)
	}
	if !bytes.Equal(jsonDefault, jsonOne) || outDefault != outOne {
		t.Fatal("workers=1 report differs from the default sequential driver")
	}
}

// TestReplayConcurrentAdmissionSheds is the satellite property: with many
// issuers racing a tight SetMaxInflightSagas limit, the service must shed
// load at admission (SagasRejected > 0) while the surviving state stays
// fully consistent — every end-state invariant holds.
func TestReplayConcurrentAdmissionSheds(t *testing.T) {
	rep, _, _ := runReplayOnce(t, ReplayConfig{
		Seed: 1, Minutes: 1, Workers: 8, MaxInflightSagas: 1,
		NoFaults: true, NoAutoscale: true,
	})
	if rep.Counters.SagasRejected == 0 {
		t.Fatal("8 issuers against MaxInflightSagas=1 shed nothing — admission control not exercised")
	}
	if rep.AttachesOK == 0 {
		t.Fatal("no attaches survived admission")
	}
	if len(rep.Invariants) != 0 {
		t.Fatalf("invariant violations after concurrent shedding: %v", rep.Invariants)
	}
}

// TestReplayConcurrentConverges drives the full churn mix — faults,
// autoscaler, flap storms — through a concurrent pool with headroom and
// asserts the run converges: every trace event is accounted for and the
// end-state invariants hold.
func TestReplayConcurrentConverges(t *testing.T) {
	rep, _, _ := runReplayOnce(t, ReplayConfig{Seed: 3, Minutes: 1, Workers: 4})
	if got := rep.AttachesOK + rep.AttachErrors; got != rep.Trace.Attaches {
		t.Fatalf("attach events lost: %d issued of %d in trace", got, rep.Trace.Attaches)
	}
	if got := rep.DetachesOK + rep.DepartsSkipped + rep.DetachErrors; got != rep.Trace.Departs {
		t.Fatalf("depart events lost: %d issued of %d in trace", got, rep.Trace.Departs)
	}
	if len(rep.Invariants) != 0 {
		t.Fatalf("invariant violations: %v", rep.Invariants)
	}
	if !rep.Reconciler.FinalClean {
		t.Fatalf("final reconcile not clean after %d passes", rep.Reconciler.FinalPasses)
	}
}

// TestReplayConcurrentRefusesCrashPoints: the crash-recovery machinery is
// sequential by construction (reboot swaps the live Service under the
// driver), so arming crash points with a pool must fail loudly instead of
// racing.
func TestReplayConcurrentRefusesCrashPoints(t *testing.T) {
	_, err := Replay(io.Discard, ReplayConfig{
		Seed: 1, Minutes: 1, Workers: 2, crashPoints: []int{25},
	})
	if err == nil {
		t.Fatal("crash points with workers>1 accepted")
	}
}
