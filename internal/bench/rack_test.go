package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestRackShardedMatchesSequential pins the rack scenario's determinism: a
// small seeded rack must emit a byte-identical summary (and report) at any
// shard count.
func TestRackShardedMatchesSequential(t *testing.T) {
	run := func(shards int) (string, RackReport) {
		var buf bytes.Buffer
		rep, err := Rack(&buf, RackConfig{
			Hosts: 6, Attachments: 10, WorkersPerAttachment: 2,
			OpsPerWorker: 6, Shards: shards, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), rep
	}
	seqOut, seqRep := run(1)
	if seqRep.ShardHealth != nil {
		t.Fatal("sequential run reported shard health")
	}
	for _, shards := range []int{2, 6} {
		out, rep := run(shards)
		if rep.ShardHealth == nil {
			t.Fatalf("run at %d shards reported no shard health", shards)
		}
		if rep.ShardHealth.Windows == 0 || len(rep.ShardHealth.Shards) != shards {
			t.Fatalf("degenerate shard health at %d shards: %+v", shards, *rep.ShardHealth)
		}
		// Shards and ShardHealth describe the runtime, not the simulation:
		// normalize them away, then require everything else identical.
		rep.Shards = seqRep.Shards
		rep.ShardHealth = nil
		if rep != seqRep {
			t.Fatalf("report at %d shards diverges:\nseq:     %+v\nsharded: %+v", shards, seqRep, rep)
		}
		_ = out // summaries embed shard health; cross-shard-count identity is report-only
	}
	if seqOut == "" {
		t.Fatal("empty summary")
	}
}

// TestRackShardHealthDeterministic pins the shard-health acceptance bar:
// repeated runs at the same seed and shard count must emit byte-identical
// summaries — shard-health section included — and identical health snapshots.
func TestRackShardHealthDeterministic(t *testing.T) {
	run := func() (string, RackReport) {
		var buf bytes.Buffer
		rep, err := Rack(&buf, RackConfig{
			Hosts: 6, Attachments: 10, WorkersPerAttachment: 2,
			OpsPerWorker: 6, Shards: 3, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), rep
	}
	out1, rep1 := run()
	out2, rep2 := run()
	if out1 != out2 {
		t.Fatalf("summary differs across identical runs:\n1:\n%s\n2:\n%s", out1, out2)
	}
	if !strings.Contains(out1, "Shard health") {
		t.Fatalf("sharded summary missing shard-health section:\n%s", out1)
	}
	if rep1.ShardHealth == nil || rep2.ShardHealth == nil {
		t.Fatal("missing shard health")
	}
	if !reflect.DeepEqual(*rep1.ShardHealth, *rep2.ShardHealth) {
		t.Fatalf("shard health diverges across identical runs:\n1: %+v\n2: %+v",
			*rep1.ShardHealth, *rep2.ShardHealth)
	}
}

// TestRackDefaultsMeetAcceptanceFloor: the default configuration must be a
// genuine rack (>= 16 hosts, >= 100 attachments).
func TestRackDefaultsMeetAcceptanceFloor(t *testing.T) {
	var cfg RackConfig
	cfg.defaults()
	if cfg.Hosts < 16 || cfg.Attachments < 100 {
		t.Fatalf("default rack too small: %d hosts, %d attachments", cfg.Hosts, cfg.Attachments)
	}
}
