package bench

import (
	"bytes"
	"testing"
)

// TestRackShardedMatchesSequential pins the rack scenario's determinism: a
// small seeded rack must emit a byte-identical summary (and report) at any
// shard count.
func TestRackShardedMatchesSequential(t *testing.T) {
	run := func(shards int) (string, RackReport) {
		var buf bytes.Buffer
		rep, err := Rack(&buf, RackConfig{
			Hosts: 6, Attachments: 10, WorkersPerAttachment: 2,
			OpsPerWorker: 6, Shards: shards, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), rep
	}
	seqOut, seqRep := run(1)
	for _, shards := range []int{2, 6} {
		out, rep := run(shards)
		rep.Shards = seqRep.Shards
		if rep != seqRep {
			t.Fatalf("report at %d shards diverges:\nseq:     %+v\nsharded: %+v", shards, seqRep, rep)
		}
		_ = out // summaries embed the shard count; the report comparison is the invariant
	}
	if seqOut == "" {
		t.Fatal("empty summary")
	}
}

// TestRackDefaultsMeetAcceptanceFloor: the default configuration must be a
// genuine rack (>= 16 hosts, >= 100 attachments).
func TestRackDefaultsMeetAcceptanceFloor(t *testing.T) {
	var cfg RackConfig
	cfg.defaults()
	if cfg.Hosts < 16 || cfg.Attachments < 100 {
		t.Fatalf("default rack too small: %d hosts, %d attachments", cfg.Hosts, cfg.Attachments)
	}
}
