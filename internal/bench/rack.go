package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"thymesisflow/internal/core"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/sim/shard"
)

// RackConfig sizes the rack-scale scenario: a full rack of hosts,
// disaggregation attachments spread across every host pair, and seeded
// load/store flows on every attachment. This is the workload the sharded
// runtime exists for — far past what one kernel advances at tolerable
// wall-clock.
type RackConfig struct {
	Hosts                int   // rack size (default 24)
	Attachments          int   // attachments spread across host pairs (default 120)
	WorkersPerAttachment int   // concurrent flows per attachment (default 2)
	OpsPerWorker         int   // synchronous load/store round trips per flow (default 24)
	Shards               int   // simulation shards; 0 = min(NumCPU, Hosts), 1 = sequential
	Seed                 int64 // topology and flow-schedule seed
}

func (cfg *RackConfig) defaults() {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 24
	}
	if cfg.Attachments <= 0 {
		cfg.Attachments = 120
	}
	if cfg.WorkersPerAttachment <= 0 {
		cfg.WorkersPerAttachment = 2
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 24
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.NumCPU()
	}
	if cfg.Shards > cfg.Hosts {
		cfg.Shards = cfg.Hosts
	}
}

// RackReport carries the deterministic results of one rack run. Every field
// derives from virtual time and seeded counters — no wall-clock — so a
// seeded report is byte-identical at any shard count.
type RackReport struct {
	Hosts       int    `json:"hosts"`
	Attachments int    `json:"attachments"`
	Flows       int    `json:"flows"`
	Shards      int    `json:"shards"`
	OpsOK       int    `json:"ops_ok"`
	OpsFailed   int    `json:"ops_failed"`
	TxFrames    int64  `json:"tx_frames"`
	TxTxns      int64  `json:"tx_transactions"`
	RxTxns      int64  `json:"rx_transactions"`
	EndNS       int64  `json:"end_ns"`
	Seed        int64  `json:"seed"`
	Events      uint64 `json:"events"`

	// ShardHealth describes the parallel runtime's execution shape — windows,
	// per-shard events, barrier stall, flush depth, imbalance; nil for
	// sequential (shards=1) runs. Unlike every other field it legitimately
	// varies with the shard count, but stays byte-identical per (seed, shard
	// count): all counters derive from virtual time.
	ShardHealth *shard.Health `json:"shard_health,omitempty"`
}

// Rack builds and runs the rack-scale scenario, writing a deterministic
// summary table to w.
func Rack(w io.Writer, cfg RackConfig) (RackReport, error) {
	cfg.defaults()
	rep := RackReport{
		Hosts:       cfg.Hosts,
		Attachments: cfg.Attachments,
		Shards:      cfg.Shards,
		Seed:        cfg.Seed,
	}

	c := core.NewClusterShards(cfg.Shards)
	hosts := make([]*core.Host, cfg.Hosts)
	for i := range hosts {
		hc := core.DefaultHostConfig(fmt.Sprintf("rack%02d", i))
		hc.Sockets = 1
		hc.CoresPerSocket = 4
		hc.DRAMPerSocket = 1 << 30
		hc.SectionSize = 1 << 20
		hc.RMMUSections = 256
		h, err := c.AddHost(hc)
		if err != nil {
			return rep, err
		}
		hosts[i] = h
	}

	// The topology and every flow's op schedule come from one seeded PRNG
	// at setup, so the virtual run is a pure function of the seed.
	rng := rand.New(rand.NewSource(cfg.Seed))
	type flow struct {
		att    *core.Attachment
		host   *core.Host
		sleeps []sim.Time
		isLoad []bool
		offs   []int64
	}
	var flows []flow
	atts := make([]*core.Attachment, 0, cfg.Attachments)
	for a := 0; a < cfg.Attachments; a++ {
		ci := rng.Intn(cfg.Hosts)
		di := (ci + 1 + rng.Intn(cfg.Hosts-1)) % cfg.Hosts
		att, err := c.Attach(core.AttachSpec{
			ComputeHost: hosts[ci].Name,
			DonorHost:   hosts[di].Name,
			Bytes:       1 << 20,
			Channels:    1,
		})
		if err != nil {
			return rep, err
		}
		atts = append(atts, att)
		for wi := 0; wi < cfg.WorkersPerAttachment; wi++ {
			f := flow{att: att, host: hosts[ci]}
			for o := 0; o < cfg.OpsPerWorker; o++ {
				f.sleeps = append(f.sleeps, sim.Time(rng.Intn(4000))*sim.Nanosecond)
				f.isLoad = append(f.isLoad, rng.Intn(2) == 0)
				f.offs = append(f.offs, int64(rng.Intn(1<<12))*128)
			}
			flows = append(flows, f)
		}
	}
	rep.Flows = len(flows)

	// Per-flow result slots: each worker writes only its own index, so
	// flows on different shard kernels never share a word.
	ok := make([]int, len(flows))
	failed := make([]int, len(flows))
	for i, f := range flows {
		i, f := i, f
		f.host.K.Go(fmt.Sprintf("rack-f%d", i), func(p *sim.Proc) {
			buf := []byte{byte(i), byte(i >> 8), 1, 2, 3, 4, 5, 6}
			for o := range f.sleeps {
				p.Sleep(f.sleeps[o])
				var err error
				if f.isLoad[o] {
					_, err = c.Load(p, f.att, f.offs[o], 64)
				} else {
					err = c.Store(p, f.att, f.offs[o], buf)
				}
				if err != nil {
					failed[i]++
					return
				}
				ok[i]++
			}
		})
	}

	end := c.Run()
	rep.EndNS = int64(end / sim.Nanosecond)
	for i := range flows {
		rep.OpsOK += ok[i]
		rep.OpsFailed += failed[i]
	}
	for _, att := range atts {
		for _, p := range att.Ports() {
			st := p.Stats()
			rep.TxFrames += st.TxFrames
			rep.TxTxns += st.TxTransactions
			rep.RxTxns += st.RxTransactions
			if peer := p.Peer(); peer != nil {
				pst := peer.Stats()
				rep.TxFrames += pst.TxFrames
				rep.TxTxns += pst.TxTransactions
				rep.RxTxns += pst.RxTransactions
			}
		}
	}
	for _, k := range c.Kernels() {
		rep.Events += k.Scheduled()
	}

	// The shard count is runtime configuration, not simulation output: keep
	// it out of the main table so that part is byte-identical at every
	// -shards value (tfbench reports shards + wall clock on stderr). The
	// shard-health section below is the deliberate exception — it describes
	// the runtime itself, prints only for sharded runs, and is still
	// byte-identical per (seed, shard count).
	fmt.Fprintf(w, "Rack-scale scenario — %d hosts, %d attachments, %d flows\n",
		rep.Hosts, rep.Attachments, rep.Flows)
	fmt.Fprintf(w, "  %-18s %12d\n", "ops ok", rep.OpsOK)
	fmt.Fprintf(w, "  %-18s %12d\n", "ops failed", rep.OpsFailed)
	fmt.Fprintf(w, "  %-18s %12d\n", "tx frames", rep.TxFrames)
	fmt.Fprintf(w, "  %-18s %12d\n", "tx transactions", rep.TxTxns)
	fmt.Fprintf(w, "  %-18s %12d\n", "rx transactions", rep.RxTxns)
	fmt.Fprintf(w, "  %-18s %12d\n", "events scheduled", rep.Events)
	fmt.Fprintf(w, "  %-18s %12d\n", "virtual end (ns)", rep.EndNS)
	if h, ok := c.ShardHealth(); ok {
		rep.ShardHealth = &h
		fmt.Fprintf(w, "Shard health — %d shards, %d windows, %.2f events/window, imbalance %.3f\n",
			len(h.Shards), h.Windows, h.EventsPerWindow, h.Imbalance)
		fmt.Fprintf(w, "  %-18s %12d\n", "flushed messages", h.Flushed)
		fmt.Fprintf(w, "  %-18s %12d\n", "max flush depth", h.MaxFlushDepth)
		for _, st := range h.Shards {
			fmt.Fprintf(w, "  shard %-11d %12d events %14d stall-ns\n",
				st.Shard, st.Events, st.StallPS/1e3)
		}
	}
	if rep.OpsFailed > 0 {
		return rep, fmt.Errorf("bench: rack scenario failed %d ops", rep.OpsFailed)
	}
	if rep.TxTxns != rep.RxTxns {
		return rep, fmt.Errorf("bench: rack transaction conservation: %d sent vs %d delivered",
			rep.TxTxns, rep.RxTxns)
	}
	return rep, nil
}
