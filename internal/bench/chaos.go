package bench

import "thymesisflow/internal/chaos"

// Chaos runs a fault-injection campaign across the worker pool, one
// scenario per cell. Every scenario builds its own sim.Kernel and derives
// its PRNG seeds from (campaign seed, scenario name), so the assembled
// report is byte-identical to a sequential run regardless of worker count
// or completion order — the same guarantee the figure runners give.
func (r *Runner) Chaos(scenarios []chaos.Scenario, seed int64) chaos.Report {
	return r.ChaosShards(scenarios, seed, 1)
}

// ChaosShards is Chaos with each scenario's cluster partitioned into the
// given number of simulation shards (stacking intra-scenario parallelism on
// top of the scenario-level worker pool).
func (r *Runner) ChaosShards(scenarios []chaos.Scenario, seed int64, shards int) chaos.Report {
	rep := chaos.Report{Seed: seed, Passed: true}
	rep.Scenarios = make([]chaos.ScenarioReport, len(scenarios))
	r.run(len(scenarios), func(i int) {
		rep.Scenarios[i] = chaos.RunSharded(scenarios[i], seed, shards)
	})
	for _, sr := range rep.Scenarios {
		if !sr.Passed {
			rep.Passed = false
		}
	}
	return rep
}
