package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestLatencyAttrReconciles is the acceptance gate of the attribution
// pipeline: the per-stage means must sum to the measured end-to-end latency
// (within 1%, zero skewed records) and the fixed crossing stages must
// reconstruct the paper-calibrated ~950 ns flit RTT.
func TestLatencyAttrReconciles(t *testing.T) {
	b, err := MeasureLatencyAttr()
	if err != nil {
		t.Fatal(err)
	}
	if err := checkBreakdown(b); err != nil {
		t.Fatal(err)
	}
	// On an uncontended single-disaggregated link the crossings are exact,
	// not just within tolerance.
	if b.CrossingsMeanNS != 950.0 {
		t.Fatalf("crossing stages sum %.3f ns, want exactly 950 on a quiet link", b.CrossingsMeanNS)
	}
}

func TestLatencyAttrOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := LatencyAttr(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"capi_cross", "c1_service", "end_to_end", "950"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown table missing %q:\n%s", want, out)
		}
	}
}

// TestLatencyAttrShardedMatchesSequential: the attribution breakdown must be
// byte-identical whether the testbed runs on one kernel or one per host.
func TestLatencyAttrShardedMatchesSequential(t *testing.T) {
	seq, err := MeasureLatencyAttrShards(1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := MeasureLatencyAttrShards(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, sharded) {
		t.Fatalf("sharded breakdown diverges from sequential:\nseq:     %+v\nsharded: %+v", seq, sharded)
	}
}
