// Package bench is the experiment harness: one function per table/figure of
// the paper's evaluation, each regenerating the corresponding rows/series.
// cmd/tfbench and the repository-root benchmarks both drive it.
//
// Absolute values come from a simulator, not the authors' POWER9 testbed;
// the quantities to compare against the paper are the *shapes*: who wins,
// by roughly what factor, and where the crossovers fall (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/core"
	"thymesisflow/internal/dcsim"
	"thymesisflow/internal/dctrace"
	"thymesisflow/internal/endpoint"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/workloads/imdb"
	"thymesisflow/internal/workloads/kvcache"
	"thymesisflow/internal/workloads/search"
	"thymesisflow/internal/workloads/stream"
	"thymesisflow/internal/workloads/ycsb"
)

// Scale selects experiment sizing.
type Scale int

// Sizing presets.
const (
	// Quick shrinks workloads for CI-style runs (seconds).
	Quick Scale = iota
	// Full runs the calibrated defaults (minutes).
	Full
)

// Fig1 reproduces Figure 1: fragmentation index and switch-off potential
// for the fixed vs disaggregated data-centre models.
func Fig1(w io.Writer, scale Scale) dcsim.Study {
	cfg := dctrace.DefaultConfig()
	servers := dcsim.DefaultServers
	if scale == Quick {
		cfg.Tasks = 12000
		servers = 800
		// Keep steady-state demand at ~85% of the smaller infrastructure.
		cfg.ArrivalRate = cfg.ArrivalRate * float64(servers) / dcsim.DefaultServers
	}
	study := dcsim.RunStudy(cfg, servers, dcsim.DefaultLinksPerModule)
	fmt.Fprintf(w, "Figure 1 — data-centre utilization (%d servers / %d+%d modules, %d tasks)\n",
		servers, servers, servers, cfg.Tasks)
	fmt.Fprintf(w, "  memory/CPU demand-ratio spread: %.1f orders of magnitude\n", study.RatioOrders)
	fmt.Fprintf(w, "  %-14s %-10s %-10s %-10s %-10s\n", "model", "fragCPU%", "fragMEM%", "offCPU%", "offMEM%")
	fmt.Fprintf(w, "  %-14s %-10.2f %-10.2f %-10.2f %-10.2f\n", "fixed",
		100*study.Fixed.FragmentationCPU, 100*study.Fixed.FragmentationMem,
		100*study.Fixed.OffCPU, 100*study.Fixed.OffMem)
	fmt.Fprintf(w, "  %-14s %-10.2f %-10.2f %-10.2f %-10.2f\n", "disaggregated",
		100*study.Disagg.FragmentationCPU, 100*study.Disagg.FragmentationMem,
		100*study.Disagg.OffCPU, 100*study.Disagg.OffMem)
	fmt.Fprintf(w, "  paper:      fixed 16 / 29.5 / ~1 / ~1 ; disaggregated 3.86 / 9.2 / 8 / 27\n")
	return study
}

// RTT reproduces the Section V headline: the ~950 ns hardware datapath flit
// round trip, measured through the full transaction path (RMMU ->
// routing -> LLC framing -> phy -> memory endpoint and back).
func RTT(w io.Writer) sim.Time {
	tb, err := core.NewTestbed(core.ConfigSingleDisaggregated, 64<<20)
	if err != nil {
		panic(err)
	}
	att := tb.Att
	k := tb.Cluster.K
	const probes = 100
	var total sim.Time
	k.Go("rtt-probe", func(p *sim.Proc) {
		for i := 0; i < probes; i++ {
			start := p.Now()
			if _, err := tb.Cluster.Load(p, att, int64(i)*128, 128); err != nil {
				panic(err)
			}
			total += p.Now() - start
		}
	})
	k.Run()
	avg := total / probes
	fmt.Fprintf(w, "Section V — datapath round trip: measured %v per 128B load "+
		"(paper: ~950ns flit RTT + donor DRAM)\n", avg)
	fmt.Fprintf(w, "  budget: 4 FPGA-stack crossings + 6 serDES crossings = %v\n",
		endpoint.DatapathRTT)
	return avg
}

// Fig5Stream reproduces Figure 5: STREAM bandwidth for every kernel, thread
// count and ThymesisFlow configuration. It runs sequentially; use
// Runner.Fig5Stream to spread the cells across cores.
func Fig5Stream(w io.Writer, scale Scale) map[string]float64 {
	return seqRunner.Fig5Stream(w, scale)
}

// Fig5Stream is the parallel-cell form of the package-level function: one
// cell per (thread count, configuration) pair.
func (r *Runner) Fig5Stream(w io.Writer, scale Scale) map[string]float64 {
	configs := []core.MemoryConfig{
		core.ConfigSingleDisaggregated, core.ConfigBondingDisaggregated, core.ConfigInterleaved,
	}
	threadCounts := []int{4, 8, 16}
	type cell struct {
		threads int
		cfg     core.MemoryConfig
		res     []stream.Result
	}
	cells := make([]cell, 0, len(threadCounts)*len(configs))
	for _, threads := range threadCounts {
		for _, cfg := range configs {
			cells = append(cells, cell{threads: threads, cfg: cfg})
		}
	}
	r.run(len(cells), func(i int) {
		c := &cells[i]
		tb, err := core.NewTestbed(c.cfg, 4<<30)
		if err != nil {
			panic(err)
		}
		if r.Tracer != nil {
			tb.Cluster.K.SetTracer(r.Tracer)
			probeDatapath(tb)
		}
		if r.Metrics != nil {
			tb.Cluster.RegisterMetrics(r.Metrics, fmt.Sprintf("fig5.%s.%d.", c.cfg, c.threads))
		}
		sc := stream.DefaultConfig(c.threads)
		if scale == Quick {
			sc.Elements = 20_000_000
			sc.Iterations = 1
		}
		res, err := stream.Run(tb.Server, tb.Placer(), sc)
		if err != nil {
			panic(err)
		}
		c.res = res
	})
	out := make(map[string]float64)
	fmt.Fprintf(w, "Figure 5 — STREAM sustained bandwidth (GiB/s); theoretical channel max 12.5\n")
	fmt.Fprintf(w, "  %-22s %-8s %8s %8s %8s %8s\n", "config", "threads", "copy", "scale", "add", "triad")
	for _, c := range cells {
		row := make(map[stream.Kernel]float64)
		for _, res := range c.res {
			row[res.Kernel] = res.GiBps
			out[fmt.Sprintf("%v/%d/%v", c.cfg, c.threads, res.Kernel)] = res.GiBps
		}
		fmt.Fprintf(w, "  %-22s %-8d %8.2f %8.2f %8.2f %8.2f\n", c.cfg, c.threads,
			row[stream.Copy], row[stream.Scale], row[stream.Add], row[stream.Triad])
	}
	return out
}

// probeDatapath issues a short burst of functional loads through the full
// transaction datapath (RMMU -> routing -> LLC -> phy -> donor C1 and
// back). STREAM itself is priced through the analytic backend, which never
// emits llc/capi frames — so a traced run starts with this probe to put the
// transaction layers on the record. It runs to completion before the
// workload starts and only executes when a tracer is attached, leaving
// untraced results untouched.
func probeDatapath(tb *core.Testbed) {
	if tb.Att == nil {
		return
	}
	k := tb.Cluster.K
	k.Go("trace-probe", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			if _, err := tb.Cluster.Load(p, tb.Att, int64(i)*capi.Cacheline, capi.Cacheline); err != nil {
				panic(err)
			}
		}
	})
	k.Run()
}

// Fig6Profile reproduces Figure 6: VoltDB package IPC and utilized cores
// across YCSB workloads and partition counts, local vs single-disaggregated,
// plus the Section VI-D backend-stall fractions.
func Fig6Profile(w io.Writer, scale Scale) {
	workloads := ycsb.Workloads()
	partitions := []int{4, 16, 32, 64}
	if scale == Quick {
		workloads = []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC}
		partitions = []int{4, 16, 32}
	}
	fmt.Fprintf(w, "Figure 6 — VoltDB profiling (IPC = package IPC, UCC = utilized cores)\n")
	fmt.Fprintf(w, "  %-3s %-5s | %-24s | %-24s\n", "wl", "parts", "local IPC/UCC/stall%", "single-disagg IPC/UCC/stall%")
	for _, wl := range workloads {
		for _, parts := range partitions {
			row := make(map[core.MemoryConfig]*imdb.Result)
			for _, cfg := range []core.MemoryConfig{core.ConfigLocal, core.ConfigSingleDisaggregated} {
				rc := imdb.DefaultRunConfig(wl, parts)
				if scale == Quick {
					rc.Clients = 100
					rc.OpsPerClient = 25
				}
				res, err := imdb.Run(cfg, rc)
				if err != nil {
					panic(err)
				}
				row[cfg] = res
			}
			l, s := row[core.ConfigLocal].Perf, row[core.ConfigSingleDisaggregated].Perf
			fmt.Fprintf(w, "  %-3v %-5d | %6.2f %6.2f %6.1f%%    | %6.2f %6.2f %6.1f%%\n",
				wl, parts,
				l.PackageIPC(), l.UtilizedCores(), 100*l.BackendStallFraction(),
				s.PackageIPC(), s.UtilizedCores(), 100*s.BackendStallFraction())
		}
	}
	fmt.Fprintf(w, "  paper stall fractions: local 55.5%%, single-disaggregated 80.9%%\n")
}

// Fig7Throughput reproduces Figure 7: YCSB A and E throughput for 4 and 32
// partitions under all five configurations. It runs sequentially; use
// Runner.Fig7Throughput to spread the cells across cores.
func Fig7Throughput(w io.Writer, scale Scale) map[string]float64 {
	return seqRunner.Fig7Throughput(w, scale)
}

// Fig7Throughput is the parallel-cell form of the package-level function:
// one cell per (workload, partitions, configuration) tuple.
func (r *Runner) Fig7Throughput(w io.Writer, scale Scale) map[string]float64 {
	configs := core.AllConfigs()
	type cell struct {
		wl         ycsb.Workload
		parts      int
		cfg        core.MemoryConfig
		throughput float64
	}
	var cells []cell
	for _, wl := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadE} {
		for _, parts := range []int{4, 32} {
			for _, cfg := range configs {
				cells = append(cells, cell{wl: wl, parts: parts, cfg: cfg})
			}
		}
	}
	r.run(len(cells), func(i int) {
		c := &cells[i]
		rc := imdb.DefaultRunConfig(c.wl, c.parts)
		if scale == Quick {
			rc.Clients = 120
			rc.OpsPerClient = 20
		}
		if c.wl == ycsb.WorkloadE {
			rc.Clients = 60
			rc.OpsPerClient = 12
		}
		res, err := imdb.Run(c.cfg, rc)
		if err != nil {
			panic(err)
		}
		c.throughput = res.Throughput
	})
	out := make(map[string]float64)
	fmt.Fprintf(w, "Figure 7 — YCSB throughput (ops/sec)\n")
	for i, c := range cells {
		if i%len(configs) == 0 {
			fmt.Fprintf(w, "  %v p=%-3d:", c.wl, c.parts)
		}
		out[fmt.Sprintf("%v/%d/%v", c.wl, c.parts, c.cfg)] = c.throughput
		fmt.Fprintf(w, " %s=%.0f", c.cfg, c.throughput)
		if i%len(configs) == len(configs)-1 {
			fmt.Fprintln(w)
		}
	}
	return out
}

// Fig8Memcached reproduces Figure 8: the Memcached GET latency CDF per
// configuration (reported as avg/p50/p90/p99 plus CDF points). It runs
// sequentially; use Runner.Fig8Memcached to spread the cells across cores.
func Fig8Memcached(w io.Writer, scale Scale) map[core.MemoryConfig]*kvcache.Result {
	return seqRunner.Fig8Memcached(w, scale)
}

// Fig8Memcached is the parallel-cell form of the package-level function:
// one cell per configuration.
func (r *Runner) Fig8Memcached(w io.Writer, scale Scale) map[core.MemoryConfig]*kvcache.Result {
	configs := core.AllConfigs()
	results := make([]*kvcache.Result, len(configs))
	r.run(len(configs), func(i int) {
		rc := kvcache.DefaultRunConfig()
		if scale == Quick {
			rc.Threads = 32
			rc.RequestsPerThread = 800
			rc.CacheBytes = 64 << 20
			rc.Keys = 2_000_000
		}
		res, err := kvcache.Run(configs[i], rc)
		if err != nil {
			panic(err)
		}
		results[i] = res
	})
	out := make(map[core.MemoryConfig]*kvcache.Result)
	fmt.Fprintf(w, "Figure 8 — Memcached GET latency (microseconds)\n")
	fmt.Fprintf(w, "  %-22s %8s %8s %8s %8s %8s %8s\n",
		"config", "avg", "p50", "p90", "p99", "hit%", "ops/s")
	for i, cfg := range configs {
		res := results[i]
		out[cfg] = res
		h := res.GetLatency
		fmt.Fprintf(w, "  %-22s %8.0f %8.0f %8.0f %8.0f %7.1f%% %8.0f\n",
			cfg, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99),
			100*res.HitRatio, res.Throughput)
	}
	fmt.Fprintf(w, "  paper avgs: local 600, interleaved 614, single 635, bonding 650, scale-out 713; hit ~81%%\n")
	return out
}

// Fig9Search reproduces Figure 9: ESRally "nested" track throughput across
// challenges, shard counts and configurations. It runs sequentially; use
// Runner.Fig9Search to spread the cells across cores.
func Fig9Search(w io.Writer, scale Scale) map[string]float64 {
	return seqRunner.Fig9Search(w, scale)
}

// Fig9Search is the parallel-cell form of the package-level function: one
// cell per (challenge, shards, configuration) tuple.
func (r *Runner) Fig9Search(w io.Writer, scale Scale) map[string]float64 {
	configs := core.AllConfigs()
	type cell struct {
		ch         search.Challenge
		shards     int
		cfg        core.MemoryConfig
		throughput float64
	}
	var cells []cell
	for _, ch := range search.Challenges() {
		for _, shards := range []int{5, 32} {
			for _, cfg := range configs {
				cells = append(cells, cell{ch: ch, shards: shards, cfg: cfg})
			}
		}
	}
	r.run(len(cells), func(i int) {
		c := &cells[i]
		rc := search.DefaultRunConfig(c.ch, c.shards)
		if scale == Quick {
			rc.Clients = 32
			rc.OpsPerClient = 2
			rc.Corpus.Docs = 120_000
			if c.ch == search.MA {
				rc.OpsPerClient = 10
			}
		}
		res, err := search.Run(c.cfg, rc)
		if err != nil {
			panic(err)
		}
		c.throughput = res.Throughput
	})
	out := make(map[string]float64)
	fmt.Fprintf(w, "Figure 9 — ESRally \"nested\" track throughput (ops/sec)\n")
	for i, c := range cells {
		if i%len(configs) == 0 {
			fmt.Fprintf(w, "  %-8v sh=%-3d:", c.ch, c.shards)
		}
		out[fmt.Sprintf("%v/%d/%v", c.ch, c.shards, c.cfg)] = c.throughput
		fmt.Fprintf(w, " %s=%.0f", c.cfg, c.throughput)
		if i%len(configs) == len(configs)-1 {
			fmt.Fprintln(w)
		}
	}
	return out
}
