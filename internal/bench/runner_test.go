package bench

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunnerExecutesEveryCellOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 100
		var counts [n]atomic.Int32
		NewRunner(workers).run(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunnerWorkerClamping(t *testing.T) {
	if got := NewRunner(0).Workers(1000); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0-valued runner) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewRunner(8).Workers(3); got != 3 {
		t.Fatalf("Workers clamp to cell count: got %d, want 3", got)
	}
	if got := NewRunner(5).Workers(100); got != 5 {
		t.Fatalf("Workers = %d, want 5", got)
	}
}

func TestRunnerPropagatesLowestIndexPanic(t *testing.T) {
	defer func() {
		p := recover()
		if p != "cell 3 failed" {
			t.Fatalf("recovered %v, want the lowest-index panic", p)
		}
	}()
	NewRunner(4).run(16, func(i int) {
		if i == 3 || i == 11 {
			panic("cell " + string(rune('0'+i%10)) + " failed")
		}
	})
	t.Fatal("run did not propagate the panic")
}

// TestParallelOutputByteIdentical is the determinism contract of the
// parallel experiment engine: the merged output of a many-worker run must
// be byte-for-byte the output of the sequential path. Fig5Stream(Quick)
// exercises nine kernels, the heaviest shared workload (STREAM), and the
// merge of both table rows and returned metrics.
func TestParallelOutputByteIdentical(t *testing.T) {
	var seq, par bytes.Buffer
	seqRes := NewRunner(1).Fig5Stream(&seq, Quick)
	parRes := NewRunner(0).Fig5Stream(&par, Quick)
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel Fig5Stream output diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq.String(), par.String())
	}
	if len(seqRes) != len(parRes) {
		t.Fatalf("result cardinality diverged: %d vs %d", len(seqRes), len(parRes))
	}
	for k, v := range seqRes {
		if parRes[k] != v {
			t.Fatalf("metric %q diverged: sequential %v, parallel %v", k, v, parRes[k])
		}
	}
}

// TestParallelFig7ByteIdentical covers the multi-cells-per-row merge path
// (rows are assembled from five cells each).
func TestParallelFig7ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig7 comparison in -short mode")
	}
	var seq, par bytes.Buffer
	NewRunner(1).Fig7Throughput(&seq, Quick)
	NewRunner(0).Fig7Throughput(&par, Quick)
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel Fig7Throughput output diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq.String(), par.String())
	}
}
