package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"thymesisflow/internal/chaos"
	"thymesisflow/internal/core"
	"thymesisflow/internal/timeseries"
	"thymesisflow/internal/timeseries/detect"
)

// Detect is the closed-loop detector validation experiment: every chaos
// scenario (datapath catalogue plus the control-plane catalogue) runs with
// the flight recorder enabled, the online detector analyzes the recorded
// series, and the emitted anomaly events are scored against the ground-truth
// labels the scenario's own fault script exports. The scorecard — per-class
// precision/recall plus a detection-latency histogram — is a pure function
// of the seed: series timestamps are virtual (datapath) or step-clock
// (control plane), the non-deterministic shard.* runtime series are filtered
// out before analysis, and every table sorts deterministically.

// Acceptance thresholds for the scorecard.
const (
	detectMinPrecision = 0.8
	detectMinRecall    = 0.9
)

// detectPadPS is the datapath match tolerance: an event may onset up to one
// replay-timeout-ish tail after its label window closes (replays of frames
// lost at the window edge land late) and still count as that label's
// detection.
const detectPadPS = 50_000_000 // 50 us

// detectCapacity holds a full 2x50 ms chaos observation at the ~5 us tick
// (20k points) without evicting the fault windows at the front of the run.
const detectCapacity = 1 << 15

// DetectConfig parameterizes the detect experiment.
type DetectConfig struct {
	Seed   int64
	Shards int
	// Scenario, when non-empty, restricts the run to one catalogue scenario
	// (datapath or control-plane) — the CI smoke target.
	Scenario string
	// SnapshotOut, when non-nil, receives the scenario's recorded series in
	// the binary TFTS form tfmon reads. Requires Scenario: one run, one
	// snapshot.
	SnapshotOut io.Writer
}

// DetectScenarioScore is one scenario's slice of the scorecard.
type DetectScenarioScore struct {
	Name           string              `json:"name"`
	Domain         string              `json:"domain"` // datapath | controlplane
	Seed           int64               `json:"seed"`
	ScenarioPassed bool                `json:"scenario_passed"`
	Series         int                 `json:"series"`
	Labels         []detect.Label      `json:"labels,omitempty"`
	Events         []detect.Event      `json:"events,omitempty"`
	Classes        []detect.ClassScore `json:"classes,omitempty"`
}

// DetectLatencyBucket is one cumulative histogram bucket (le == -1 is +Inf).
type DetectLatencyBucket struct {
	LeNS  int64 `json:"le_ns"`
	Count int   `json:"count"`
}

// DetectLatency is the detection-latency histogram over every detected
// label, in nanoseconds (datapath latencies convert from picoseconds).
type DetectLatency struct {
	Buckets []DetectLatencyBucket `json:"buckets"`
	Count   int                   `json:"count"`
	MeanNS  int64                 `json:"mean_ns"`
	MaxNS   int64                 `json:"max_ns"`
}

// DetectReport is the full scorecard.
type DetectReport struct {
	Seed      int64                 `json:"seed"`
	Shards    int                   `json:"shards"`
	PadPS     int64                 `json:"pad_ps"`
	Scenarios []DetectScenarioScore `json:"scenarios"`
	Classes   []detect.ClassScore   `json:"classes"`
	Latency   DetectLatency         `json:"latency"`
	Passed    bool                  `json:"passed"`
}

// detectLatencyEdges are the histogram bucket upper bounds in ns.
var detectLatencyEdges = []int64{
	10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
}

// Detect runs the experiment and writes the deterministic scorecard to w.
func Detect(w io.Writer, cfg DetectConfig) (DetectReport, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.SnapshotOut != nil && cfg.Scenario == "" {
		return DetectReport{}, fmt.Errorf("snapshot export needs a single scenario (-detect-scenario)")
	}
	rep := DetectReport{Seed: cfg.Seed, Shards: cfg.Shards, PadPS: detectPadPS}

	cat := chaos.Catalogue()
	cpCat := chaos.CPCatalogue()
	if cfg.Scenario != "" {
		if s, ok := chaos.Find(cfg.Scenario); ok {
			cat, cpCat = []chaos.Scenario{s}, nil
		} else if cs, ok := chaos.FindCP(cfg.Scenario); ok {
			cat, cpCat = nil, []chaos.CPScenario{cs}
		} else {
			return rep, fmt.Errorf("unknown chaos scenario %q", cfg.Scenario)
		}
	}

	var latencies []int64 // ns
	for _, s := range cat {
		srep, snap := chaos.RunRecorded(s, cfg.Seed, cfg.Shards, core.FlightOptions{
			Capacity: detectCapacity,
		})
		// The shard.* series measure the parallel runtime's wall-clock
		// barrier stalls — real telemetry, but not reproducible input.
		snap = snap.Filter(func(name string) bool {
			return !strings.HasPrefix(name, "shard.")
		})
		if cfg.SnapshotOut != nil {
			if _, err := cfg.SnapshotOut.Write(timeseries.EncodeSnapshot(snap)); err != nil {
				return rep, fmt.Errorf("snapshot export: %w", err)
			}
		}
		events := detect.Analyze(snap, detect.DatapathRules())
		labels := chaos.GroundTruth(s)
		classes, lats := detect.Score(labels, events, detectPadPS)
		for i := range classes {
			classes[i].Finalize()
		}
		for _, l := range lats {
			latencies = append(latencies, l/1000) // ps -> ns
		}
		rep.Scenarios = append(rep.Scenarios, DetectScenarioScore{
			Name: s.Name, Domain: "datapath", Seed: srep.Seed,
			ScenarioPassed: srep.Passed, Series: len(snap.Series),
			Labels: labels, Events: events, Classes: classes,
		})
	}
	for _, s := range cpCat {
		srep, snap := chaos.RunCPRecorded(s, cfg.Seed, 0)
		if cfg.SnapshotOut != nil {
			if _, err := cfg.SnapshotOut.Write(timeseries.EncodeSnapshot(snap)); err != nil {
				return rep, fmt.Errorf("snapshot export: %w", err)
			}
		}
		events := detect.Analyze(snap, detect.ControlPlaneRules())
		labels := chaos.CPGroundTruth(s)
		classes, lats := detect.Score(labels, events, 0)
		for i := range classes {
			classes[i].Finalize()
		}
		latencies = append(latencies, lats...) // already ns
		rep.Scenarios = append(rep.Scenarios, DetectScenarioScore{
			Name: s.Name, Domain: "controlplane", Seed: srep.Seed,
			ScenarioPassed: srep.Passed, Series: len(snap.Series),
			Labels: labels, Events: events, Classes: classes,
		})
	}

	rep.Classes = aggregateClasses(rep.Scenarios)
	rep.Latency = latencyHist(latencies)
	rep.Passed = true
	for _, c := range rep.Classes {
		if c.Precision < detectMinPrecision || c.Recall < detectMinRecall {
			rep.Passed = false
		}
	}
	for _, s := range rep.Scenarios {
		if !s.ScenarioPassed {
			rep.Passed = false
		}
	}

	printDetect(w, &rep)
	return rep, nil
}

// aggregateClasses sums per-scenario confusion counts per class, then
// finalizes precision/recall over the whole campaign.
func aggregateClasses(scenarios []DetectScenarioScore) []detect.ClassScore {
	byClass := make(map[string]*detect.ClassScore)
	for _, s := range scenarios {
		for _, c := range s.Classes {
			t := byClass[c.Class]
			if t == nil {
				t = &detect.ClassScore{Class: c.Class}
				byClass[c.Class] = t
			}
			t.Labels += c.Labels
			t.LabelsDetected += c.LabelsDetected
			t.Events += c.Events
			t.EventsMatched += c.EventsMatched
		}
	}
	out := make([]detect.ClassScore, 0, len(byClass))
	for _, c := range byClass {
		c.Finalize()
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

func latencyHist(latencies []int64) DetectLatency {
	h := DetectLatency{Count: len(latencies)}
	h.Buckets = make([]DetectLatencyBucket, len(detectLatencyEdges)+1)
	for i, le := range detectLatencyEdges {
		h.Buckets[i].LeNS = le
	}
	h.Buckets[len(detectLatencyEdges)].LeNS = -1 // +Inf
	var sum int64
	for _, l := range latencies {
		sum += l
		if l > h.MaxNS {
			h.MaxNS = l
		}
		for i, le := range detectLatencyEdges {
			if l <= le {
				h.Buckets[i].Count++
			}
		}
		h.Buckets[len(detectLatencyEdges)].Count++
	}
	if h.Count > 0 {
		h.MeanNS = sum / int64(h.Count)
	}
	return h
}

func printDetect(w io.Writer, rep *DetectReport) {
	fmt.Fprintf(w, "# Anomaly detection scorecard (seed %d, %d shards)\n", rep.Seed, rep.Shards)
	fmt.Fprintf(w, "# detector scored against chaos ground truth; pad %d us on datapath windows\n\n",
		rep.PadPS/1_000_000)
	fmt.Fprintf(w, "%-28s %-12s %7s %7s %7s %7s\n",
		"scenario", "domain", "labels", "events", "hit", "ok")
	for _, s := range rep.Scenarios {
		hits := 0
		for _, c := range s.Classes {
			hits += c.LabelsDetected
		}
		ok := "yes"
		if !s.ScenarioPassed {
			ok = "NO"
		}
		fmt.Fprintf(w, "%-28s %-12s %7d %7d %7d %7s\n",
			s.Name, s.Domain, len(s.Labels), len(s.Events), hits, ok)
	}
	fmt.Fprintf(w, "\n%-20s %7s %9s %7s %9s %10s %8s\n",
		"class", "labels", "detected", "events", "matched", "precision", "recall")
	for _, c := range rep.Classes {
		fmt.Fprintf(w, "%-20s %7d %9d %7d %9d %10.3f %8.3f\n",
			c.Class, c.Labels, c.LabelsDetected, c.Events, c.EventsMatched,
			c.Precision, c.Recall)
	}
	fmt.Fprintf(w, "\ndetection latency: %d detections, mean %d ns, max %d ns\n",
		rep.Latency.Count, rep.Latency.MeanNS, rep.Latency.MaxNS)
	for _, b := range rep.Latency.Buckets {
		le := fmt.Sprintf("%d", b.LeNS)
		if b.LeNS < 0 {
			le = "+Inf"
		}
		fmt.Fprintf(w, "  le %8s ns: %d\n", le, b.Count)
	}
	verdict := "PASS"
	if !rep.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "\nscorecard: %s (precision >= %.1f, recall >= %.1f per class)\n",
		verdict, detectMinPrecision, detectMinRecall)
}
