package bench

import (
	"bytes"
	"testing"

	"thymesisflow/internal/chaos"
)

// TestChaosGoldenAcrossParallelism is the golden determinism check: the
// same campaign seed must produce a byte-identical campaign report JSON
// whether the scenarios run sequentially or across four workers.
func TestChaosGoldenAcrossParallelism(t *testing.T) {
	const seed = 20260806
	cat := chaos.Catalogue()

	serial, err := NewRunner(1).Chaos(cat, seed).JSON()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(4).Chaos(cat, seed).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel campaign report differs from serial run for the same seed")
	}

	// The parallel path must agree with the chaos package's own serial
	// campaign runner too.
	direct, err := chaos.RunCampaign(cat, seed).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, direct) {
		t.Fatal("bench campaign report differs from chaos.RunCampaign")
	}
}
