package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"thymesisflow/internal/metrics"
)

// runReplayOnce executes one replay over a fresh world and returns the
// report, its JSON encoding, and the stdout table.
func runReplayOnce(t *testing.T, cfg ReplayConfig) (ReplayReport, []byte, string) {
	t.Helper()
	var out bytes.Buffer
	rep, err := Replay(&out, cfg)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return rep, data, out.String()
}

// TestReplayReportByteIdentity is the golden byte-identity discipline the
// chaos and rack reports follow: a fixed seed yields byte-identical report
// JSON and stdout across runs, and a different seed yields a different
// report.
func TestReplayReportByteIdentity(t *testing.T) {
	cfg := ReplayConfig{Seed: 7, Minutes: 1}
	_, json1, out1 := runReplayOnce(t, cfg)
	_, json2, out2 := runReplayOnce(t, cfg)
	if !bytes.Equal(json1, json2) {
		t.Fatalf("same seed produced different report JSON:\n--- run1\n%s\n--- run2\n%s", json1, json2)
	}
	if out1 != out2 {
		t.Fatalf("same seed produced different stdout:\n--- run1\n%s\n--- run2\n%s", out1, out2)
	}
	_, json3, _ := runReplayOnce(t, ReplayConfig{Seed: 8, Minutes: 1})
	if bytes.Equal(json1, json3) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestReplayThroughputAndHealth asserts the acceptance floor across seeds:
// >= 1000 committed sagas per simulated minute against the real saga
// engine with transport faults demonstrably enabled, converged final state,
// and zero invariant violations.
func TestReplayThroughputAndHealth(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep, _, _ := runReplayOnce(t, ReplayConfig{Seed: seed, Minutes: 1})
			if rep.SagasPerSimMinute < 1000 {
				t.Fatalf("throughput %.1f sagas/sim-minute, want >= 1000", rep.SagasPerSimMinute)
			}
			if !rep.FaultsEnabled || rep.Transport.Drops == 0 || rep.Transport.Dups == 0 {
				t.Fatalf("fault injection not exercised: %+v", rep.Transport)
			}
			if rep.Counters.SagaRetries == 0 {
				t.Fatal("no saga retries under a lossy transport — faults not reaching the engine")
			}
			if !rep.Reconciler.FinalClean {
				t.Fatalf("final reconcile not clean after %d passes", rep.Reconciler.FinalPasses)
			}
			if rep.Reconciler.StormReconciles == 0 {
				t.Fatal("no flap-storm reconciles recorded")
			}
			if len(rep.Invariants) != 0 {
				t.Fatalf("invariant violations: %v", rep.Invariants)
			}
			if rep.Journal.Entries == 0 || rep.Journal.Bytes == 0 {
				t.Fatal("journal growth not recorded")
			}
			// The stage profiles must cover both ops with percentiles.
			ops := map[string]bool{}
			for _, p := range rep.Profiles {
				ops[p.Op] = true
				if p.Count == 0 || p.P99NS < p.P50NS {
					t.Fatalf("degenerate profile %+v", p)
				}
			}
			if !ops["attach"] || !ops["detach"] {
				t.Fatalf("profiles missing ops: %v", ops)
			}
		})
	}
}

// TestReplayPrometheusGolden locks the replay_* exposition: the exact
// instrument set, and byte-stable output across scrapes (same discipline
// as the cp_*/shard_* Prometheus golden tests).
func TestReplayPrometheusGolden(t *testing.T) {
	rep, _, _ := runReplayOnce(t, ReplayConfig{Seed: 1, Minutes: 1})
	reg := metrics.NewRegistry()
	RegisterReplayMetrics(reg, &rep)

	var a, b bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Prometheus exposition not byte-stable across scrapes")
	}

	var names []string
	for _, line := range strings.Split(a.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, strings.Fields(line)[0])
	}
	want := []string{
		"replay_attach_errors",
		"replay_attach_p50_ns",
		"replay_attach_p99_ns",
		"replay_attaches_ok",
		"replay_crashes",
		"replay_detach_errors",
		"replay_detach_p50_ns",
		"replay_detach_p99_ns",
		"replay_detaches_ok",
		"replay_final_attachments",
		"replay_flaps",
		"replay_journal_bytes",
		"replay_journal_entries",
		"replay_reconcile_periodic_sweeps",
		"replay_reconcile_storm_passes",
		"replay_saga_compensations",
		"replay_saga_retries",
		"replay_sagas_committed",
		"replay_sagas_parked",
		"replay_sagas_per_sim_minute",
		"replay_sagas_rejected",
		"replay_scale_attaches",
		"replay_scale_detaches",
		"replay_transport_drops",
	}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("instrument set drifted:\n got %v\nwant %v", names, want)
	}

	// Spot-check exact series against the report.
	for _, line := range []string{
		fmt.Sprintf("replay_sagas_committed %d\n", rep.SagasCommitted),
		fmt.Sprintf("replay_journal_entries %d\n", rep.Journal.Entries),
		fmt.Sprintf("# TYPE replay_sagas_per_sim_minute gauge\n"),
		fmt.Sprintf("# TYPE replay_sagas_committed counter\n"),
	} {
		if !strings.Contains(a.String(), line) {
			t.Fatalf("exposition missing %q:\n%s", line, a.String())
		}
	}
}
