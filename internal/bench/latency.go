package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"thymesisflow/internal/core"
	"thymesisflow/internal/endpoint"
	"thymesisflow/internal/latency"
	"thymesisflow/internal/sim"
)

// latencyAttrProbes is the number of loads (and stores) the attribution
// experiment drives through the datapath.
const latencyAttrProbes = 200

// LatencyAttr reproduces the paper's Section V latency budget as a measured
// per-stage breakdown: it drives cacheline loads and stores through a
// single-disaggregated testbed with attribution enabled and prints the
// stage-by-stage RTT decomposition, checking that (a) the stage sum
// reconciles with the measured end-to-end latency and (b) the fixed crossing
// stages reconstruct the ~950 ns flit RTT. jsonOut, when non-empty, also
// writes the breakdown as JSON. The returned error is non-nil when a
// reconciliation check fails.
func LatencyAttr(w io.Writer, jsonOut string) error {
	return LatencyAttrShards(w, jsonOut, 1)
}

// LatencyAttrShards is LatencyAttr on a cluster partitioned into the given
// number of simulation shards. Attribution records complete on the compute
// host's kernel in virtual-time order, so the breakdown is byte-identical at
// every shard count.
func LatencyAttrShards(w io.Writer, jsonOut string, shards int) error {
	b, err := MeasureLatencyAttrShards(shards)
	if err != nil {
		return err
	}
	printBreakdown(w, b)
	if jsonOut != "" {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "  breakdown -> %s\n", jsonOut)
	}
	return checkBreakdown(b)
}

// MeasureLatencyAttr runs the attribution experiment and returns the raw
// breakdown (shared by the CLI path and the tests).
func MeasureLatencyAttr() (latency.Breakdown, error) {
	return MeasureLatencyAttrShards(1)
}

// MeasureLatencyAttrShards is MeasureLatencyAttr with the testbed cluster
// partitioned into the given number of simulation shards.
func MeasureLatencyAttrShards(shards int) (latency.Breakdown, error) {
	tb, err := core.NewTestbedSpec(core.TestbedSpec{
		Config: core.ConfigSingleDisaggregated, RemoteBytes: 64 << 20, Shards: shards,
	})
	if err != nil {
		return latency.Breakdown{}, err
	}
	sink := tb.Cluster.EnableLatency()
	att := tb.Att
	k := tb.Cluster.K
	buf := make([]byte, 128)
	k.Go("latency-attr", func(p *sim.Proc) {
		for i := 0; i < latencyAttrProbes; i++ {
			off := int64(i%256) * 128
			if _, err := tb.Cluster.Load(p, att, off, 128); err != nil {
				panic(err)
			}
			if err := tb.Cluster.Store(p, att, off, buf); err != nil {
				panic(err)
			}
		}
	})
	tb.Cluster.Run()
	return sink.Snapshot(), nil
}

// printBreakdown renders the paper-style RTT decomposition table.
func printBreakdown(w io.Writer, b latency.Breakdown) {
	fmt.Fprintf(w, "Latency attribution — per-stage decomposition of %d round trips\n", b.Count)
	fmt.Fprintf(w, "  %-14s %10s %10s %10s %10s %8s\n",
		"stage", "mean(ns)", "p50(ns)", "p99(ns)", "p999(ns)", "share%")
	for _, s := range b.Stages {
		if s.Count == 0 || (s.MeanNS == 0 && s.MaxNS == 0) {
			continue // stage never contributed; keep the table readable
		}
		marker := ""
		if latencyStageIsCrossing(s.Stage) {
			marker = " *"
		}
		fmt.Fprintf(w, "  %-14s %10.1f %10.1f %10.1f %10.1f %8.2f%s\n",
			s.Stage, s.MeanNS, s.P50NS, s.P99NS, s.P999NS, s.SharePct, marker)
	}
	fmt.Fprintf(w, "  %-14s %10.1f %10.1f %10.1f %10.1f %8.2f\n",
		"end_to_end", b.EndToEnd.MeanNS, b.EndToEnd.P50NS, b.EndToEnd.P99NS,
		b.EndToEnd.P999NS, 100.0)
	fmt.Fprintf(w, "  stage sum %.1f ns vs end-to-end %.1f ns (reconcile err %.3f%%, %d skewed)\n",
		b.StageSumMeanNS, b.EndToEnd.MeanNS, b.ReconcileErrPct, b.Skewed)
	fmt.Fprintf(w, "  * crossings sum %.1f ns — paper budget %v flit RTT "+
		"(4 FPGA-stack + 6 serDES crossings)\n",
		b.CrossingsMeanNS, endpoint.DatapathRTT)
}

func latencyStageIsCrossing(name string) bool {
	for _, st := range latency.Stages() {
		if st.String() == name {
			return st.IsCrossing()
		}
	}
	return false
}

// checkBreakdown enforces the acceptance criteria of the attribution
// pipeline: exact per-record tiling (no skew), stage-sum/end-to-end
// reconciliation within 1%, and the crossing stages matching the paper's
// flit RTT within ±10 ns.
func checkBreakdown(b latency.Breakdown) error {
	if b.Count == 0 {
		return fmt.Errorf("bench: latency attribution recorded no round trips")
	}
	if b.Skewed != 0 {
		return fmt.Errorf("bench: %d records failed to tile their round trip", b.Skewed)
	}
	if b.ReconcileErrPct > 1.0 {
		return fmt.Errorf("bench: stage sum %.2f ns deviates %.2f%% from end-to-end %.2f ns",
			b.StageSumMeanNS, b.ReconcileErrPct, b.EndToEnd.MeanNS)
	}
	budgetNS := float64(endpoint.DatapathRTT) / float64(sim.Nanosecond)
	if diff := b.CrossingsMeanNS - budgetNS; diff < -10 || diff > 10 {
		return fmt.Errorf("bench: crossing stages sum %.1f ns, want %.1f ns ±10",
			b.CrossingsMeanNS, budgetNS)
	}
	return nil
}
