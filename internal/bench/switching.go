package bench

import (
	"fmt"
	"io"

	"thymesisflow/internal/endpoint"
	"thymesisflow/internal/fabric"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// ProjectionSwitching compares the direct-attached prototype against
// one-switch rack fabrics (Section VII: "only rack-scale disaggregation
// seems a feasible solution (i.e. at most one switching layer)"), for both
// an optical circuit switch and an electrical packet switch.
func ProjectionSwitching(w io.Writer) {
	fmt.Fprintf(w, "Projection P3 — rack fabric: direct vs one switching layer\n")
	fmt.Fprintf(w, "  %-28s %12s\n", "fabric", "128B load")
	cc := fabric.DefaultCircuitConfig()
	pc := fabric.DefaultPacketConfig()
	for _, c := range []struct {
		name string
		cfg  *fabric.Config
	}{
		{"direct-attached (paper)", nil},
		{"optical circuit switch", &cc},
		{"electrical packet switch", &pc},
	} {
		fmt.Fprintf(w, "  %-28s %12v\n", c.name, measureSwitchedLoad(c.cfg))
	}
}

// fabricCircuit and fabricPacket expose the default switch configurations
// to tests.
func fabricCircuit() fabric.Config { return fabric.DefaultCircuitConfig() }
func fabricPacket() fabric.Config  { return fabric.DefaultPacketConfig() }

// measureSwitchedLoad builds a compute/memory endpoint pair, optionally
// through one switch, and measures a single cacheline load.
func measureSwitchedLoad(swCfg *fabric.Config) sim.Time {
	k := sim.NewKernel()
	ce, err := endpoint.NewCompute(k, "c", 4, 1<<20)
	if err != nil {
		panic(err)
	}
	me := endpoint.NewMemory(k, "m", 90*sim.Nanosecond)
	var cp, mp *llc.Port
	if swCfg == nil {
		link := phy.NewLink(k, "direct", phy.LanesPerChannel, phy.SerdesCrossing, phy.FaultConfig{})
		cp, mp = llc.NewPair(k, "llc", link, llc.DefaultConfig())
	} else {
		sw := fabric.NewSwitch(k, "sw", *swCfg)
		la := phy.NewLink(k, "a-sw", phy.LanesPerChannel, phy.SerdesCrossing, phy.FaultConfig{})
		lb := phy.NewLink(k, "sw-b", phy.LanesPerChannel, phy.SerdesCrossing, phy.FaultConfig{})
		cp, mp = llc.NewPair(k, "llc", &phy.Link{AtoB: la.AtoB, BtoA: lb.BtoA}, llc.DefaultConfig())
		if err := sw.Connect(la.AtoB, lb.AtoB); err != nil {
			panic(err)
		}
		if err := sw.Connect(lb.BtoA, la.BtoA); err != nil {
			panic(err)
		}
		lb.AtoB.OnDeliver(mp.Deliver)
		la.BtoA.OnDeliver(cp.Deliver)
	}
	ce.AttachPort(cp)
	me.AttachPort(mp)
	reg, err := me.Steal("bench", 0x10000000, 1<<20, false)
	if err != nil {
		panic(err)
	}
	if err := ce.RMMU().Map(0, reg.Base, 1, false); err != nil {
		panic(err)
	}
	if err := ce.Router().AddFlow(1, cp); err != nil {
		panic(err)
	}
	var lat sim.Time
	k.Go("probe", func(p *sim.Proc) {
		start := p.Now()
		if _, err := ce.Load(p, 0, 128); err != nil {
			panic(err)
		}
		lat = p.Now() - start
	})
	k.RunUntil(sim.Second)
	return lat
}
