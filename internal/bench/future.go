package bench

import (
	"fmt"
	"io"

	"thymesisflow/internal/core"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/workloads/kvcache"
	"thymesisflow/internal/workloads/stream"
)

// AblationHBM evaluates the Section VII proposal of an HBM caching layer at
// the compute endpoint: the Memcached experiment on single-disaggregated
// memory, with and without a 4 GiB HBM cache in front of the network. It
// runs sequentially; use Runner.AblationHBM to spread the cells across
// cores.
func AblationHBM(w io.Writer, scale Scale) {
	seqRunner.AblationHBM(w, scale)
}

// AblationHBM is the parallel-cell form of the package-level function: one
// cell per HBM sizing.
func (r *Runner) AblationHBM(w io.Writer, scale Scale) {
	rc := kvcache.DefaultRunConfig()
	if scale == Quick {
		rc.Threads = 32
		rc.RequestsPerThread = 800
		rc.CacheBytes = 64 << 20
		rc.Keys = 2_000_000
	}
	sizes := []int64{0, 4 << 30}
	type cell struct {
		res     *kvcache.Result
		hitRate float64
	}
	cells := make([]cell, len(sizes))
	r.run(len(sizes), func(i int) {
		hbm := sizes[i]
		tb, err := core.NewTestbedSpec(core.TestbedSpec{
			Config:      core.ConfigSingleDisaggregated,
			RemoteBytes: rc.CacheBytes * 2,
			HostMutate:  func(hc *core.HostConfig) { hc.LLCSizePerSocket = 24 << 20 },
			AttachMutate: func(as *core.AttachSpec) {
				as.HBMCacheBytes = hbm
			},
		})
		if err != nil {
			panic(err)
		}
		res, err := kvcache.RunOn(tb, rc)
		if err != nil {
			panic(err)
		}
		cells[i].res = res
		hits, misses := tb.Att.Backend.HBMStats()
		if hits+misses > 0 {
			cells[i].hitRate = float64(hits) / float64(hits+misses)
		}
	})
	fmt.Fprintf(w, "Ablation A4 — HBM caching layer (Section VII future work)\n")
	for i, hbm := range sizes {
		res := cells[i].res
		fmt.Fprintf(w, "  hbm=%-6v avg=%4.0fus p90=%4.0fus p99=%4.0fus hbm-hit=%4.1f%%\n",
			hbm > 0, res.GetLatency.Mean(), res.GetLatency.Quantile(0.9),
			res.GetLatency.Quantile(0.99), 100*cells[i].hitRate)
	}
}

// integrationLevel is one hardware-integration scenario of Section VII.
type integrationLevel struct {
	name string
	// serdes/stack crossing counts and per-crossing latencies.
	serdes, stacks      int
	serdesLat, stackLat sim.Time
}

// ProjectionIntegration quantifies the latency headroom the paper
// identifies (Section VII): driving the SoC transceivers directly saves
// four serDES crossings, and an ASIC implementation shrinks the PCS cost.
func ProjectionIntegration(w io.Writer) {
	levels := []integrationLevel{
		{"FPGA prototype (paper)", 6, 4, phy.SerdesCrossing, phy.FPGAStackCrossing},
		{"SoC-integrated (saves 4 serDES)", 2, 4, phy.SerdesCrossing, phy.FPGAStackCrossing},
		{"ASIC (+ cheap PCS, faster logic)", 2, 2, 20 * sim.Nanosecond, 80 * sim.Nanosecond},
	}
	fmt.Fprintf(w, "Projection P1 — hardware integration levels (Section VII)\n")
	fmt.Fprintf(w, "  %-34s %10s %14s\n", "design point", "flit RTT", "vs prototype")
	base := sim.Time(0)
	for i, l := range levels {
		rtt := sim.Time(l.serdes)*l.serdesLat + sim.Time(l.stacks)*l.stackLat
		if i == 0 {
			base = rtt
		}
		fmt.Fprintf(w, "  %-34s %10v %13.0f%%\n", l.name, rtt, 100*float64(rtt)/float64(base))
	}
}

// ProjectionMultiStack sweeps the channel count toward the platform limit
// the paper cites (Section VII: a POWER9 carries four OpenCAPI stacks,
// 800 Gbit/s per processor) using one donor per pair of channels so the
// per-donor C1 ceiling does not mask fabric scaling.
// It runs sequentially; use Runner.ProjectionMultiStack to spread the
// cells across cores.
func ProjectionMultiStack(w io.Writer, scale Scale) {
	seqRunner.ProjectionMultiStack(w, scale)
}

// ProjectionMultiStack is the parallel-cell form of the package-level
// function: one cell per donor count.
func (r *Runner) ProjectionMultiStack(w io.Writer, scale Scale) {
	donorCounts := []int{1, 2, 4}
	gibps := make([]float64, len(donorCounts))
	r.run(len(donorCounts), func(i int) {
		donors := donorCounts[i]
		cluster := core.NewCluster()
		server, err := cluster.AddHost(core.DefaultHostConfig("server0"))
		if err != nil {
			panic(err)
		}
		// One attachment (2 bonded channels) per donor; application pages
		// interleave across all of them — the pooled-memory form of
		// disaggregation.
		nodes := make([]mem.NodeID, 0, donors)
		for d := 0; d < donors; d++ {
			donorName := fmt.Sprintf("donor%d", d)
			if _, err := cluster.AddHost(core.DefaultHostConfig(donorName)); err != nil {
				panic(err)
			}
			att, err := cluster.Attach(core.AttachSpec{
				ComputeHost: "server0", DonorHost: donorName,
				Bytes: 6 << 30, Channels: 2,
			})
			if err != nil {
				panic(err)
			}
			nodes = append(nodes, att.Node)
		}
		sc := stream.DefaultConfig(16)
		sc.Iterations = 1
		if scale == Quick {
			sc.Elements = 20_000_000
		}
		res, err := stream.Run(server, numa.Interleave(nodes...), sc)
		if err != nil {
			panic(err)
		}
		gibps[i] = res[0].GiBps
	})
	fmt.Fprintf(w, "Projection P2 — multi-channel / multi-donor scaling (STREAM copy, 16 threads)\n")
	fmt.Fprintf(w, "  %-10s %-8s %12s\n", "channels", "donors", "copy GiB/s")
	for i, donors := range donorCounts {
		fmt.Fprintf(w, "  %-10d %-8d %12.2f\n", donors*2, donors, gibps[i])
	}
	fmt.Fprintf(w, "  (each donor contributes its own C1 interface, so pooling from\n")
	fmt.Fprintf(w, "   multiple donors scales past the single-donor 16 GiB/s ceiling)\n")
}
