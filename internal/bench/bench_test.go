package bench

import (
	"io"
	"strings"
	"testing"

	"thymesisflow/internal/core"
	"thymesisflow/internal/endpoint"
	"thymesisflow/internal/sim"
)

func TestRTTWithinBudget(t *testing.T) {
	avg := RTT(io.Discard)
	// The measured load includes the 950ns datapath RTT plus donor DRAM
	// and framing/serialization; it must sit just above the budget.
	if avg < endpoint.DatapathRTT {
		t.Fatalf("measured RTT %v below the hardware budget %v", avg, endpoint.DatapathRTT)
	}
	if avg > endpoint.DatapathRTT+400*sim.Nanosecond {
		t.Fatalf("measured RTT %v too far above the 950ns budget", avg)
	}
}

func TestFig1Shape(t *testing.T) {
	study := Fig1(io.Discard, Quick)
	if study.Disagg.FragmentationCPU >= study.Fixed.FragmentationCPU ||
		study.Disagg.FragmentationMem >= study.Fixed.FragmentationMem {
		t.Fatalf("disaggregation did not reduce fragmentation: %+v", study)
	}
	if study.Disagg.OffMem <= study.Fixed.OffMem {
		t.Fatalf("disaggregation did not free memory modules: %+v", study)
	}
	// Fixed model: memory strands more than CPU, as in the Google trace.
	if study.Fixed.FragmentationMem <= study.Fixed.FragmentationCPU {
		t.Fatalf("fixed model: memory should strand more than CPU: %+v", study)
	}
}

func TestFig5Shape(t *testing.T) {
	var sb strings.Builder
	res := Fig5Stream(&sb, Quick)
	single8 := res["single-disaggregated/8/copy"]
	bonded8 := res["bonding-disaggregated/8/copy"]
	inter8 := res["interleaved/8/copy"]
	single16 := res["single-disaggregated/16/copy"]
	if single8 < 10 || single8 > 12.6 {
		t.Fatalf("single@8 copy = %.2f, want near the 12.5 channel max", single8)
	}
	gain := bonded8/single8 - 1
	if gain < 0.15 || gain > 0.55 {
		t.Fatalf("bonding gain = %.0f%%, want ~30%%", gain*100)
	}
	if inter8 <= bonded8 {
		t.Fatalf("interleaved (%.2f) must outperform bonding (%.2f)", inter8, bonded8)
	}
	if single16 >= single8 {
		t.Fatalf("16 threads (%.2f) must fall below 8 (%.2f): saturation", single16, single8)
	}
	if !strings.Contains(sb.String(), "Figure 5") {
		t.Fatal("harness did not print the table")
	}
}

func TestFig7Shape(t *testing.T) {
	res := Fig7Throughput(io.Discard, Quick)
	local4 := res["A/4/local"]
	single4 := res["A/4/single-disaggregated"]
	local32 := res["A/32/local"]
	single32 := res["A/32/single-disaggregated"]
	if single4 >= local4*0.97 {
		t.Fatalf("A@4p: single %.0f not clearly below local %.0f", single4, local4)
	}
	if single32 < local32*0.85 {
		t.Fatalf("A@32p: single %.0f too far below local %.0f", single32, local32)
	}
	eLocal := res["E/4/local"]
	eSingle := res["E/4/single-disaggregated"]
	if eSingle < eLocal*0.9 {
		t.Fatalf("E: single %.0f vs local %.0f should be similar", eSingle, eLocal)
	}
}

func TestFig8Shape(t *testing.T) {
	res := Fig8Memcached(io.Discard, Quick)
	local := res[core.ConfigLocal].GetLatency.Mean()
	single := res[core.ConfigSingleDisaggregated].GetLatency.Mean()
	bonding := res[core.ConfigBondingDisaggregated].GetLatency.Mean()
	inter := res[core.ConfigInterleaved].GetLatency.Mean()
	scale := res[core.ConfigScaleOut].GetLatency.Mean()
	// Paper ordering: local < interleaved < single < bonding < scale-out.
	if !(local < inter && inter < single && single < bonding && bonding < scale) {
		t.Fatalf("latency ordering violated: %0.f %0.f %0.f %0.f %0.f",
			local, inter, single, bonding, scale)
	}
	if single/local > 1.15 {
		t.Fatalf("single-disaggregated %.0f more than 15%% over local %.0f", single, local)
	}
}

func TestFig6ProfileOutput(t *testing.T) {
	var sb strings.Builder
	Fig6Profile(&sb, Quick)
	out := sb.String()
	for _, want := range []string{"Figure 6", "paper stall fractions", "A", "C"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig6 output missing %q", want)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res := Fig9Search(io.Discard, Quick)
	// RTQ: scale-out beats local; single-disaggregated is the worst.
	if res["RTQ/32/scale-out"] <= res["RTQ/32/local"] {
		t.Fatalf("RTQ@32: scale-out %.0f <= local %.0f",
			res["RTQ/32/scale-out"], res["RTQ/32/local"])
	}
	if res["RTQ/32/single-disaggregated"] >= res["RTQ/32/interleaved"] {
		t.Fatal("RTQ@32: single should trail interleaved")
	}
	// MA at 5 shards: all five configurations within 10%.
	base := res["MA/5/local"]
	for _, cfg := range []string{"single-disaggregated", "bonding-disaggregated", "interleaved", "scale-out"} {
		v := res["MA/5/"+cfg]
		if v < base*0.9 || v > base*1.1 {
			t.Fatalf("MA@5: %s %.0f not within 10%% of local %.0f", cfg, v, base)
		}
	}
	// Nested challenges degrade with shard count.
	if res["RNQIHBS/32/local"] >= res["RNQIHBS/5/local"] {
		t.Fatal("RNQIHBS did not degrade with shards")
	}
}

func TestProjectionSwitchingOrdering(t *testing.T) {
	direct := measureSwitchedLoad(nil)
	cc := fabricCircuit()
	pc := fabricPacket()
	circuit := measureSwitchedLoad(&cc)
	packet := measureSwitchedLoad(&pc)
	if !(direct < circuit && circuit < packet) {
		t.Fatalf("fabric ordering violated: direct=%v circuit=%v packet=%v", direct, circuit, packet)
	}
}

func TestAblationsRun(t *testing.T) {
	var sb strings.Builder
	AblationReplay(&sb)
	AblationBonding(&sb)
	AblationMigration(&sb)
	out := sb.String()
	for _, want := range []string{"A1", "A2", "A3", "pages-migrated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}
