package timeseries

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func sampleSnapshot() Snapshot {
	return Snapshot{Series: []SeriesSnapshot{
		{Name: "llc.att-0.p0.credits", Kind: "gauge", Points: []Point{{5_000_000, 256}, {10_000_000, 250.5}}},
		{Name: "phy.att-0.c0.fwd.dropped", Kind: "counter", Points: []Point{{5_000_000, 0}, {10_000_000, 3}}},
		{Name: "empty", Kind: "gauge", Points: []Point{}},
	}}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeSnapshotAnySniffs(t *testing.T) {
	want := sampleSnapshot()
	if got, err := DecodeSnapshotAny(EncodeSnapshot(want)); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("binary sniff: %v", err)
	}
	js, _ := json.Marshal(want)
	got, err := DecodeSnapshotAny(js)
	if err != nil {
		t.Fatalf("json sniff: %v", err)
	}
	// JSON round trip loses the empty-vs-nil points distinction only.
	if len(got.Series) != len(want.Series) || got.Series[0].Name != want.Series[0].Name {
		t.Fatalf("json decode = %+v", got)
	}
	if _, err := DecodeSnapshotAny([]byte("not json")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

func TestDecodeSnapshotRejectsCorrupt(t *testing.T) {
	enc := EncodeSnapshot(sampleSnapshot())
	cases := map[string][]byte{
		"empty":        {},
		"short header": enc[:5],
		"bad magic":    append([]byte("XXXX"), enc[4:]...),
		"bad version":  append([]byte("TFTS\xff"), enc[5:]...),
		"truncated":    enc[:len(enc)-3],
		"trailing":     append(append([]byte{}, enc...), 0),
	}
	// Hostile claimed counts must fail before allocating.
	huge := append([]byte{}, enc...)
	huge[5], huge[6], huge[7], huge[8] = 0xff, 0xff, 0xff, 0xff
	cases["huge series count"] = huge
	for name, data := range cases {
		if _, err := DecodeSnapshot(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func FuzzSeriesDecode(f *testing.F) {
	f.Add(EncodeSnapshot(sampleSnapshot()))
	f.Add(EncodeSnapshot(Snapshot{}))
	f.Add([]byte("TFTS"))
	f.Add([]byte(`{"series":[{"name":"x","kind":"gauge","points":[{"ts":1,"v":2}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to the identical bytes: the wire
		// format has exactly one representation per snapshot.
		if enc := EncodeSnapshot(s); !bytes.Equal(enc, data) {
			t.Fatalf("re-encode mismatch: %d bytes in, %d out", len(data), len(enc))
		}
	})
}
