// Package detect is the online anomaly detector over flight-recorder
// series: an EWMA baseline per (rule, series) pair plus threshold rules
// with onset/clear hysteresis, emitting typed anomaly events. The detector
// is deliberately rules-based and allocation-light — it runs inline in tfd
// and inside seeded chaos scoring, where every emitted event (class, onset,
// clear, evidence) must be a pure function of the input points.
package detect

import (
	"sort"
	"strings"
	"sync"

	"thymesisflow/internal/timeseries"
)

// Anomaly classes.
const (
	CreditStarvation  = "CreditStarvation"
	ReplayStorm       = "ReplayStorm"
	LinkDegraded      = "LinkDegraded"
	LinkDead          = "LinkDead"
	SagaRetryStorm    = "SagaRetryStorm"
	ReconcilerBacklog = "ReconcilerBacklog"
)

// Classes lists every anomaly class in stable (sorted) order — consumers
// that emit a fixed metric or report shape per class iterate this instead
// of a map.
func Classes() []string {
	return []string{
		CreditStarvation, LinkDead, LinkDegraded,
		ReconcilerBacklog, ReplayStorm, SagaRetryStorm,
	}
}

// Rule fires one anomaly class from one family of series. A rule matches
// every series whose name ends in Suffix, keeping independent state per
// matched series (one flapping link must not mask another).
type Rule struct {
	Class  string
	Suffix string

	// Delta diffs consecutive points before thresholding — the reading for
	// cumulative counter series. Gauge series threshold the raw value.
	Delta bool

	// Threshold is the absolute trigger level (after delta).
	Threshold float64
	// EWMAFactor, when > 0, additionally requires the reading to exceed
	// EWMAFactor times the EWMA baseline of previous readings, so a level
	// that is merely "normal-high" for the series does not trigger.
	EWMAFactor float64
	// Alpha is the EWMA smoothing factor (0 selects 0.2).
	Alpha float64

	// OnsetCount triggering readings in a row open an event (0 selects 1);
	// ClearCount quiet readings in a row close it (0 selects 3). Latch
	// suppresses clearing entirely — terminal states like link death.
	OnsetCount int
	ClearCount int
	Latch      bool
}

// Event is one detected anomaly: a typed class, the series evidence that
// fired it, and the onset/clear timestamps in that series' tick domain.
// ClearTS == 0 means the anomaly was still active at the end of the data.
type Event struct {
	Class   string  `json:"class"`
	Series  string  `json:"series"`
	OnsetTS int64   `json:"onset_ts"`
	ClearTS int64   `json:"clear_ts,omitempty"`
	Peak    float64 `json:"peak"`
	Ticks   int     `json:"ticks"` // triggering readings inside the event
}

// ruleState is the per-(rule, series) online state machine.
type ruleState struct {
	rule   *Rule
	series string

	havePrev bool
	prev     float64 // previous raw value (delta rules)
	ewma     float64
	haveEwma bool

	hot   int // consecutive triggering readings
	quiet int // consecutive quiet readings while open

	open       bool
	onsetTS    int64
	pendingTS  int64 // timestamp of the first reading of the current hot run
	clearCand  int64 // timestamp of the first quiet reading while open
	peak       float64
	ticksInEvt int
}

// Detector evaluates a rule set online. Feed points per series in
// timestamp order (Observe), or replay a whole snapshot (Analyze). Safe
// for concurrent use.
type Detector struct {
	rules []Rule

	mu     sync.Mutex
	states map[string]*ruleState // key: rule index + series name
	events []Event
	total  map[string]uint64 // per-class event count, incl. open
}

// New returns a detector over the given rule set.
func New(rules []Rule) *Detector {
	return &Detector{
		rules:  rules,
		states: make(map[string]*ruleState),
		total:  make(map[string]uint64),
	}
}

// Observe feeds one sample of the named series through every matching rule.
func (d *Detector) Observe(series string, ts int64, v float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.rules {
		r := &d.rules[i]
		if !strings.HasSuffix(series, r.Suffix) {
			continue
		}
		key := string(rune('0'+i)) + "|" + series
		st := d.states[key]
		if st == nil {
			st = &ruleState{rule: r, series: series}
			d.states[key] = st
		}
		d.step(st, series, ts, v)
	}
}

// step advances one state machine by one reading.
func (d *Detector) step(st *ruleState, series string, ts int64, v float64) {
	r := st.rule
	reading := v
	if r.Delta {
		if !st.havePrev {
			st.havePrev = true
			st.prev = v
			return
		}
		reading = v - st.prev
		st.prev = v
		if reading < 0 {
			reading = 0 // counter reset (process restart)
		}
	}

	trigger := reading >= r.Threshold
	if trigger && r.EWMAFactor > 0 && st.haveEwma {
		trigger = reading > r.EWMAFactor*st.ewma
	}

	// Baseline tracks quiet readings only, so a long anomaly does not
	// teach the detector that the anomaly is normal.
	alpha := r.Alpha
	if alpha <= 0 {
		alpha = 0.2
	}
	if !trigger {
		if !st.haveEwma {
			st.ewma, st.haveEwma = reading, true
		} else {
			st.ewma += alpha * (reading - st.ewma)
		}
	}

	onsetNeed := r.OnsetCount
	if onsetNeed <= 0 {
		onsetNeed = 1
	}
	clearNeed := r.ClearCount
	if clearNeed <= 0 {
		clearNeed = 3
	}

	if trigger {
		if st.hot == 0 {
			st.pendingTS = ts
		}
		st.hot++
		st.quiet = 0
		if st.open {
			st.ticksInEvt++
			if reading > st.peak {
				st.peak = reading
			}
			return
		}
		if st.hot >= onsetNeed {
			st.open = true
			st.onsetTS = st.pendingTS
			st.peak = reading
			st.ticksInEvt = st.hot
			d.total[r.Class]++
		}
		return
	}

	st.hot = 0
	if !st.open || r.Latch {
		return
	}
	if st.quiet == 0 {
		st.clearCand = ts
	}
	st.quiet++
	if st.quiet >= clearNeed {
		d.events = append(d.events, Event{
			Class: r.Class, Series: series,
			OnsetTS: st.onsetTS, ClearTS: st.clearCand,
			Peak: st.peak, Ticks: st.ticksInEvt,
		})
		st.open = false
		st.quiet = 0
		st.ticksInEvt = 0
	}
}

// Events returns all events — closed ones plus a snapshot of every still-
// open anomaly (ClearTS == 0) — sorted by (onset, class, series).
func (d *Detector) Events() []Event {
	d.mu.Lock()
	out := append([]Event(nil), d.events...)
	// Open anomalies surface too: a dead link never "clears".
	keys := make([]string, 0, len(d.states))
	for k := range d.states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := d.states[k]
		if st.open {
			out = append(out, Event{
				Class: st.rule.Class, Series: st.series,
				OnsetTS: st.onsetTS, Peak: st.peak, Ticks: st.ticksInEvt,
			})
		}
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.OnsetTS != b.OnsetTS {
			return a.OnsetTS < b.OnsetTS
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Series < b.Series
	})
	return out
}

// Totals returns per-class cumulative event counts (including open ones),
// for the anomaly_* metrics exposition.
func (d *Detector) Totals() map[string]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]uint64, len(d.total))
	for k, v := range d.total {
		out[k] = v
	}
	return out
}

// Active returns the number of currently open anomalies.
func (d *Detector) Active() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, st := range d.states {
		if st.open {
			n++
		}
	}
	return n
}

// Analyze replays a frozen snapshot through a fresh detector and returns
// the sorted events. Points within a series are replayed oldest-first;
// series are replayed in name order — fully deterministic for a
// deterministic snapshot.
func Analyze(snap timeseries.Snapshot, rules []Rule) []Event {
	d := New(rules)
	for _, ss := range snap.Series {
		for _, p := range ss.Points {
			d.Observe(ss.Name, p.TS, p.V)
		}
	}
	return d.Events()
}
