package detect

// Default rule catalogues. Series-name suffixes bind rules to the flight
// recorder's schema (docs/OBSERVABILITY.md): datapath series are sampled on
// the virtual ~5 us tick, control-plane series on the wall/step clock.
//
// Thresholds are calibrated against the chaos catalogue: each rule must
// fire inside its scenario's fault windows (recall) while staying quiet on
// the clean baseline, detach scenarios, and the faintest sustained-loss
// sweep point (precision). The `tfbench -experiment detect` scorecard is
// the regression harness for these numbers.

// DatapathRules detects datapath anomalies from llc/phy series.
func DatapathRules() []Rule {
	return []Rule{
		// Credit starvation: the sender exhausted its credit window and had
		// to park. Any stall activity sustained across two ticks counts —
		// correctly-sized windows never stall at all.
		{
			Class: CreditStarvation, Suffix: ".credit_stalls",
			Delta: true, Threshold: 1, OnsetCount: 2, ClearCount: 8,
		},
		// Replay storm, amplitude signal: the retransmission buffer stays
		// deep — many frames outstanding past their ack deadline at once.
		// Onset needs 25 us of sustained depth: faint background loss bounces
		// off the threshold for a tick or two but never holds it.
		{
			Class: ReplayStorm, Suffix: ".replay_depth",
			Threshold: 4, OnsetCount: 5, ClearCount: 8,
		},
		// Replay storm, rate signal: frames are actually being retransmitted
		// every tick for 15 us straight. A healthy link replays nothing, so
		// this catches sustained moderate loss whose shallow pipeline never
		// builds amplitude (the depth signal saturates at the worker count).
		{
			Class: ReplayStorm, Suffix: ".tx_replayed",
			Delta: true, Threshold: 1, OnsetCount: 3, ClearCount: 8,
		},
		// Link degraded: the channel is actively dropping or corrupting
		// frames. Clearing is generous (12 quiet ticks) so sparse sustained
		// loss reads as one degradation, not hundreds.
		{
			Class: LinkDegraded, Suffix: ".dropped",
			Delta: true, Threshold: 1, OnsetCount: 1, ClearCount: 12,
		},
		{
			Class: LinkDegraded, Suffix: ".corrupted",
			Delta: true, Threshold: 1, OnsetCount: 1, ClearCount: 12,
		},
		// Link dead: the port latched its fenced state. Terminal: latched,
		// never clears.
		{
			Class: LinkDead, Suffix: ".down",
			Threshold: 1, OnsetCount: 1, Latch: true,
		},
	}
}

// ControlPlaneRules detects control-plane anomalies from cp.* series.
func ControlPlaneRules() []Rule {
	return []Rule{
		// Saga retry storm: command retries accumulate between samples —
		// the transport is eating messages or acks.
		{
			Class: SagaRetryStorm, Suffix: "cp.saga_retries",
			Delta: true, Threshold: 1, OnsetCount: 1, ClearCount: 6,
		},
		// Reconciler backlog: reconcile sweeps are finding and repairing
		// drift — agents lost state the records still own.
		{
			Class: ReconcilerBacklog, Suffix: "cp.reconcile_repairs",
			Delta: true, Threshold: 1, OnsetCount: 1, ClearCount: 6,
		},
	}
}
