package detect

import "sort"

// Label is one ground-truth anomaly window: the chaos engine knows exactly
// when and how it hurt the fabric (phy.FaultSchedule windows, FaultyTransport
// scripts), and exports that knowledge as labels the detector is scored
// against. From/To are in the same tick domain as the series the class is
// detected from (virtual picoseconds for datapath classes, step-clock
// nanoseconds for control-plane classes).
type Label struct {
	Class string `json:"class"`
	From  int64  `json:"from"`
	To    int64  `json:"to"`
	// Optional marks a window where the anomaly is plausible but not
	// guaranteed — faint sustained loss that may or may not build a replay
	// storm on a given seed. Events overlapping an optional window are not
	// false positives, but missing one costs no recall: optional labels are
	// excluded from the recall denominator and the latency histogram.
	Optional bool `json:"optional,omitempty"`
}

// ClassScore is the per-anomaly-class confusion summary. Precision counts
// detected events that overlap a same-class label; recall counts labels
// touched by at least one same-class event.
type ClassScore struct {
	Class          string  `json:"class"`
	Labels         int     `json:"labels"`
	LabelsDetected int     `json:"labels_detected"`
	Events         int     `json:"events"`
	EventsMatched  int     `json:"events_matched"`
	Precision      float64 `json:"precision"`
	Recall         float64 `json:"recall"`
}

// Finalize computes precision/recall from the counts. Empty denominators
// score 1.0: a class with no labels and no events is perfectly detected.
func (c *ClassScore) Finalize() {
	c.Precision, c.Recall = 1, 1
	if c.Events > 0 {
		c.Precision = float64(c.EventsMatched) / float64(c.Events)
	}
	if c.Labels > 0 {
		c.Recall = float64(c.LabelsDetected) / float64(c.Labels)
	}
}

// overlaps reports whether [a0,a1] and [b0,b1] intersect.
func overlaps(a0, a1, b0, b1 int64) bool { return a0 <= b1 && b0 <= a1 }

// Score matches events against labels with a tolerance pad on both window
// edges and returns per-class counts plus the detection latencies (one per
// detected required label: the earliest matching event's onset minus the
// label start, clamped at zero) in the labels' tick domain. Optional labels
// absorb matching events for precision but add nothing to recall. Classes
// are returned sorted by name; callers aggregate counts across scenarios
// before finalizing precision/recall.
func Score(labels []Label, events []Event, pad int64) ([]ClassScore, []int64) {
	byClass := make(map[string]*ClassScore)
	class := func(name string) *ClassScore {
		c := byClass[name]
		if c == nil {
			c = &ClassScore{Class: name}
			byClass[name] = c
		}
		return c
	}
	var latencies []int64
	const open = int64(1) << 62
	for _, l := range labels {
		if l.Optional {
			continue
		}
		c := class(l.Class)
		c.Labels++
		best := int64(-1)
		for _, e := range events {
			if e.Class != l.Class {
				continue
			}
			end := e.ClearTS
			if end == 0 {
				end = open
			}
			if !overlaps(e.OnsetTS, end, l.From-pad, l.To+pad) {
				continue
			}
			lat := e.OnsetTS - l.From
			if lat < 0 {
				lat = 0
			}
			if best < 0 || lat < best {
				best = lat
			}
		}
		if best >= 0 {
			c.LabelsDetected++
			latencies = append(latencies, best)
		}
	}
	for _, e := range events {
		c := class(e.Class)
		c.Events++
		end := e.ClearTS
		if end == 0 {
			end = open
		}
		for _, l := range labels {
			if l.Class == e.Class && overlaps(e.OnsetTS, end, l.From-pad, l.To+pad) {
				c.EventsMatched++
				break
			}
		}
	}
	out := make([]ClassScore, 0, len(byClass))
	for _, c := range byClass {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out, latencies
}
