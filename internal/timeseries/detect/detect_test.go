package detect

import (
	"reflect"
	"testing"

	"thymesisflow/internal/timeseries"
)

func gaugeRule(onset, clear int) []Rule {
	return []Rule{{
		Class: ReplayStorm, Suffix: ".depth",
		Threshold: 4, OnsetCount: onset, ClearCount: clear,
	}}
}

func feed(d *Detector, series string, vals ...float64) {
	for i, v := range vals {
		d.Observe(series, int64(i+1)*10, v)
	}
}

func TestOnsetClearHysteresis(t *testing.T) {
	d := New(gaugeRule(2, 2))
	// One hot reading is not an onset; two in a row are, and the onset
	// timestamp backdates to the first hot reading of the run.
	feed(d, "a.depth", 0, 5, 0, 5, 6, 7, 5, 0, 0, 0)
	events := d.Events()
	if len(events) != 1 {
		t.Fatalf("events = %+v, want 1", events)
	}
	e := events[0]
	if e.OnsetTS != 40 || e.ClearTS != 80 {
		t.Fatalf("onset/clear = %d/%d, want 40/80", e.OnsetTS, e.ClearTS)
	}
	if e.Peak != 7 || e.Ticks != 4 {
		t.Fatalf("peak/ticks = %.0f/%d, want 7/4", e.Peak, e.Ticks)
	}
}

func TestQuietBlipDoesNotClear(t *testing.T) {
	d := New(gaugeRule(1, 3))
	// A single quiet reading inside the storm must not split the event.
	feed(d, "a.depth", 5, 5, 0, 5, 5, 0, 0, 0)
	events := d.Events()
	if len(events) != 1 {
		t.Fatalf("events = %+v, want 1 merged event", events)
	}
	if events[0].OnsetTS != 10 || events[0].ClearTS != 60 {
		t.Fatalf("onset/clear = %d/%d, want 10/60", events[0].OnsetTS, events[0].ClearTS)
	}
}

func TestOpenEventSurfacesAndLatch(t *testing.T) {
	d := New([]Rule{{
		Class: LinkDead, Suffix: ".down",
		Threshold: 1, OnsetCount: 1, Latch: true,
	}})
	feed(d, "p.down", 0, 1, 0, 0, 0, 0, 0, 0, 0, 0)
	events := d.Events()
	if len(events) != 1 || events[0].ClearTS != 0 {
		t.Fatalf("latched event = %+v, want one open event", events)
	}
	if d.Active() != 1 {
		t.Fatalf("Active = %d, want 1", d.Active())
	}
	if d.Totals()[LinkDead] != 1 {
		t.Fatalf("Totals = %v", d.Totals())
	}
}

func TestDeltaRuleAndCounterReset(t *testing.T) {
	d := New([]Rule{{
		Class: LinkDegraded, Suffix: ".dropped",
		Delta: true, Threshold: 1, OnsetCount: 1, ClearCount: 2,
	}})
	// Cumulative counter: flat, then +3, flat, then a reset to zero (which
	// must clamp to quiet, not trigger on a huge negative delta).
	feed(d, "c.dropped", 10, 10, 13, 13, 0, 0, 0)
	events := d.Events()
	if len(events) != 1 {
		t.Fatalf("events = %+v, want 1", events)
	}
	if events[0].OnsetTS != 30 || events[0].Peak != 3 {
		t.Fatalf("onset/peak = %d/%.0f, want 30/3", events[0].OnsetTS, events[0].Peak)
	}
}

func TestEWMAGateSuppressesNormalHigh(t *testing.T) {
	rules := []Rule{{
		Class: CreditStarvation, Suffix: ".stalls",
		Threshold: 1, EWMAFactor: 3, OnsetCount: 1, ClearCount: 2,
	}}
	d := New(rules)
	// Quiet readings teach a baseline of ~0.5; a reading of 1.2 crosses the
	// absolute threshold but not 3x the baseline, so no event fires.
	feed(d, "s.stalls", 0.5, 0.5, 0.5, 0.5, 1.2, 1.2, 0.5, 0.5)
	if events := d.Events(); len(events) != 0 {
		t.Fatalf("events = %+v, want none (EWMA-gated)", events)
	}
	// A 10x excursion over the learned baseline fires.
	d2 := New(rules)
	feed(d2, "s.stalls", 0.5, 0.5, 0.5, 0.5, 5, 5, 0.5, 0.5)
	if events := d2.Events(); len(events) != 1 {
		t.Fatalf("events = %+v, want 1", events)
	}
}

func TestPerSeriesIndependentState(t *testing.T) {
	d := New(gaugeRule(2, 2))
	// Interleaved series: a storms, b stays quiet; b must not dilute a's
	// hot run.
	for i := 0; i < 6; i++ {
		d.Observe("a.depth", int64(i+1)*10, 9)
		d.Observe("b.depth", int64(i+1)*10, 0)
	}
	events := d.Events()
	if len(events) != 1 || events[0].Series != "a.depth" {
		t.Fatalf("events = %+v, want one open event on a.depth", events)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	snap := timeseries.Snapshot{Series: []timeseries.SeriesSnapshot{
		{Name: "x.depth", Kind: "gauge", Points: []timeseries.Point{
			{TS: 10, V: 0}, {TS: 20, V: 6}, {TS: 30, V: 6},
			{TS: 40, V: 0}, {TS: 50, V: 0}, {TS: 60, V: 0},
		}},
	}}
	a := Analyze(snap, gaugeRule(2, 2))
	b := Analyze(snap, gaugeRule(2, 2))
	if !reflect.DeepEqual(a, b) || len(a) != 1 {
		t.Fatalf("Analyze not deterministic: %+v vs %+v", a, b)
	}
}

func TestScoreOptionalLabels(t *testing.T) {
	events := []Event{
		{Class: ReplayStorm, Series: "a", OnsetTS: 100, ClearTS: 200},
		{Class: ReplayStorm, Series: "b", OnsetTS: 900, ClearTS: 950},
	}
	labels := []Label{
		{Class: ReplayStorm, From: 50, To: 250},
		{Class: ReplayStorm, From: 800, To: 1000, Optional: true},
	}
	classes, lats := Score(labels, events, 0)
	if len(classes) != 1 {
		t.Fatalf("classes = %+v", classes)
	}
	c := classes[0]
	c.Finalize()
	// The optional label absorbs event b for precision but adds no recall
	// denominator and no latency sample.
	if c.Labels != 1 || c.LabelsDetected != 1 || c.Events != 2 || c.EventsMatched != 2 {
		t.Fatalf("score = %+v", c)
	}
	if c.Precision != 1 || c.Recall != 1 {
		t.Fatalf("precision/recall = %v/%v", c.Precision, c.Recall)
	}
	if len(lats) != 1 || lats[0] != 50 {
		t.Fatalf("latencies = %v, want [50]", lats)
	}
}

func TestScorePadAndMisses(t *testing.T) {
	events := []Event{
		{Class: LinkDegraded, Series: "a", OnsetTS: 320, ClearTS: 340}, // inside pad
		{Class: LinkDegraded, Series: "b", OnsetTS: 700, ClearTS: 710}, // unmatched
	}
	labels := []Label{
		{Class: LinkDegraded, From: 100, To: 300},
		{Class: LinkDead, From: 0, To: 400}, // never detected
	}
	classes, _ := Score(labels, events, 50)
	byClass := map[string]ClassScore{}
	for _, c := range classes {
		c.Finalize()
		byClass[c.Class] = c
	}
	deg := byClass[LinkDegraded]
	if deg.LabelsDetected != 1 || deg.EventsMatched != 1 || deg.Events != 2 {
		t.Fatalf("degraded = %+v", deg)
	}
	if deg.Precision != 0.5 {
		t.Fatalf("degraded precision = %v, want 0.5", deg.Precision)
	}
	dead := byClass[LinkDead]
	if dead.Recall != 0 {
		t.Fatalf("dead recall = %v, want 0", dead.Recall)
	}
}
