package timeseries

import (
	"reflect"
	"testing"
)

func TestSeriesRingWraps(t *testing.T) {
	r := NewRecorder(4)
	s := r.Series("x", Gauge)
	for i := 0; i < 10; i++ {
		s.Record(int64(i), float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", s.Recorded())
	}
	want := []Point{{6, 6}, {7, 7}, {8, 8}, {9, 9}}
	if got := s.Points(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Points = %v, want %v", got, want)
	}
	_, points, dropped := r.Stats()
	if points != 10 || dropped != 6 {
		t.Fatalf("Stats points=%d dropped=%d, want 10/6", points, dropped)
	}
}

func TestRecorderSeriesIdempotent(t *testing.T) {
	r := NewRecorder(0)
	a := r.Series("a", Counter)
	if r.Series("a", Gauge) != a {
		t.Fatal("second Series call returned a different handle")
	}
	if r.Lookup("a") != a || r.Lookup("missing") != nil {
		t.Fatal("Lookup mismatch")
	}
	if a.Kind() != Counter || a.Name() != "a" {
		t.Fatalf("kind/name = %v/%q", a.Kind(), a.Name())
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(64)
	s := r.Series("x", Gauge)
	ts := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		ts++
		s.Record(ts, 1.0)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

func TestSnapshotSortedAndFiltered(t *testing.T) {
	r := NewRecorder(8)
	r.Series("b.two", Gauge).Record(1, 2)
	r.Series("a.one", Counter).Record(1, 1)
	r.Series("c.three", Gauge).Record(1, 3)
	snap := r.Snapshot()
	var names []string
	for _, ss := range snap.Series {
		names = append(names, ss.Name)
	}
	want := []string{"a.one", "b.two", "c.three"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}
	sub := snap.Filter(func(name string) bool { return name != "b.two" })
	if len(sub.Series) != 2 || sub.Series[0].Name != "a.one" || sub.Series[1].Name != "c.three" {
		t.Fatalf("filtered snapshot = %+v", sub.Series)
	}
}

func TestClockSamplerCadence(t *testing.T) {
	var got []int64
	cs := &ClockSampler{Every: 4, Sample: func(ts int64) { got = append(got, ts) }}
	var n int64
	clock := cs.Wrap(func() int64 { n += 10; return n })
	for i := 0; i < 12; i++ {
		clock()
	}
	want := []int64{40, 80, 120}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sampled at %v, want %v", got, want)
	}
}
