// Package timeseries is the fabric flight recorder: fixed-capacity
// ring-buffer time series sampled from the live telemetry surfaces of the
// stack (phy channel counters, llc credit/replay state, capi in-flight
// depth, control-plane saga counters, shard runtime health) on a periodic
// tick. Two tick domains exist side by side: datapath series are sampled at
// a fixed grid of virtual (simulated) instants while the cluster steps
// between conservative windows, and control-plane series are sampled on a
// trace.WallClock (deterministic StepClock in seeded harnesses, monotonic
// in tfd).
//
// Like the tracer, the recorder follows the zero-overhead-when-disabled
// idiom: a cluster that never calls EnableFlightRecorder schedules nothing
// and allocates nothing; sampling itself never allocates after a series'
// ring is created (points overwrite the oldest slot once full).
package timeseries

import (
	"sort"
	"sync"
)

// DefaultCapacity is the per-series ring capacity: enough for a multi-
// millisecond chaos horizon at a ~5 us tick, small enough that a hundred
// series stay a few MiB.
const DefaultCapacity = 1 << 13

// Point is one sample: a timestamp in the series' tick domain (virtual
// picoseconds for datapath series, wall/step nanoseconds for control-plane
// series) and the sampled value.
type Point struct {
	TS int64   `json:"ts"`
	V  float64 `json:"v"`
}

// Kind tags how a series should be read: a Gauge point is an instantaneous
// level, a Counter point is a monotonic cumulative total (detectors diff
// consecutive points to recover per-tick rates).
type Kind uint8

// Series kinds.
const (
	Gauge Kind = iota
	Counter
)

func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Series is one named fixed-capacity ring of points. A series is written by
// exactly one sampler but may be snapshotted concurrently, so writes and
// reads synchronize on a per-series mutex (sampling is periodic and far off
// any hot path).
type Series struct {
	name string
	kind Kind

	mu      sync.Mutex
	buf     []Point // len == cap once full; oldest overwritten
	seq     uint64  // total points ever recorded
	dropped uint64  // points that overwrote an unread slot
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Kind returns the series kind.
func (s *Series) Kind() Kind { return s.kind }

// Record appends one sample, overwriting the oldest once the ring is full.
// It never allocates: the ring's backing array is preallocated at creation.
func (s *Series) Record(ts int64, v float64) {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, Point{TS: ts, V: v})
	} else {
		s.buf[s.seq%uint64(cap(s.buf))] = Point{TS: ts, V: v}
		s.dropped++
	}
	s.seq++
	s.mu.Unlock()
}

// Len returns the number of points currently held.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Recorded returns the total number of points ever recorded.
func (s *Series) Recorded() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Points returns the held points oldest-first.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.buf))
	if len(s.buf) < cap(s.buf) {
		copy(out, s.buf)
		return out
	}
	head := int(s.seq % uint64(cap(s.buf)))
	n := copy(out, s.buf[head:])
	copy(out[n:], s.buf[:head])
	return out
}

// Recorder owns a set of named series. Series creation is rare (attachment
// setup); recording is lock-free against the registry (each series carries
// its own lock).
type Recorder struct {
	mu       sync.RWMutex
	capacity int
	series   map[string]*Series
	order    []string // sorted lazily at snapshot
}

// NewRecorder returns an empty recorder whose series hold up to capacity
// points each (<=0 selects DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{capacity: capacity, series: make(map[string]*Series)}
}

// Series returns the named series, creating it on first use.
func (r *Recorder) Series(name string, kind Kind) *Series {
	r.mu.RLock()
	s := r.series[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[name]; s != nil {
		return s
	}
	s = &Series{name: name, kind: kind, buf: make([]Point, 0, r.capacity)}
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Lookup returns the named series or nil.
func (r *Recorder) Lookup(name string) *Series {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.series[name]
}

// Stats summarizes the recorder for the metrics exposition.
func (r *Recorder) Stats() (series int, points, dropped uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, s := range r.series {
		s.mu.Lock()
		points += s.seq
		dropped += s.dropped
		s.mu.Unlock()
	}
	return len(r.series), points, dropped
}

// SeriesSnapshot is one series' frozen contents.
type SeriesSnapshot struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// Snapshot is a frozen, name-sorted copy of every series — the unit the
// REST endpoint serves, tfmon renders, and detectors analyze. Byte-stable:
// series sort by name, points are oldest-first.
type Snapshot struct {
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot freezes every series, sorted by name.
func (r *Recorder) Snapshot() Snapshot {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	sort.Strings(names)
	snap := Snapshot{Series: make([]SeriesSnapshot, 0, len(names))}
	for _, name := range names {
		s := r.Lookup(name)
		if s == nil {
			continue
		}
		snap.Series = append(snap.Series, SeriesSnapshot{
			Name: s.name, Kind: s.kind.String(), Points: s.Points(),
		})
	}
	return snap
}

// Filter returns a sub-snapshot holding only series accepted by keep.
// Detect harnesses use it to strip the non-deterministic shard.* runtime
// series before scoring.
func (s Snapshot) Filter(keep func(name string) bool) Snapshot {
	out := Snapshot{}
	for _, ss := range s.Series {
		if keep(ss.Name) {
			out.Series = append(out.Series, ss)
		}
	}
	return out
}

// ClockSampler drives wall-domain sampling deterministically: it wraps a
// trace.WallClock-shaped function and invokes the sample callback every
// Every readings, passing the freshly read timestamp. Seeded control-plane
// harnesses hand their StepClock through a ClockSampler so samples land at
// deterministic points of the saga event stream.
type ClockSampler struct {
	Every  int64 // sample every N clock readings (<=0: every 16)
	Sample func(ts int64)

	n int64
}

// Wrap returns a clock that ticks inner and samples on cadence.
func (cs *ClockSampler) Wrap(inner func() int64) func() int64 {
	every := cs.Every
	if every <= 0 {
		every = 16
	}
	return func() int64 {
		ts := inner()
		cs.n++
		if cs.n%every == 0 && cs.Sample != nil {
			cs.Sample(ts)
		}
		return ts
	}
}
