package timeseries

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Snapshot wire format (little-endian):
//
//	magic "TFTS" | u8 version | u32 nseries
//	per series: u16 namelen | name | u8 kind | u32 npoints | npoints × (i64 ts, f64 v)
//
// The binary form is what tfd persists and tfmon reads; DecodeSnapshot is
// defensive (fuzzed by FuzzSeriesDecode): corrupt input yields an error,
// never a panic, and claimed counts are validated against the remaining
// byte budget before any allocation so hostile headers cannot balloon
// memory.

var snapshotMagic = [4]byte{'T', 'F', 'T', 'S'}

const snapshotVersion = 1

// ErrCorruptSnapshot reports undecodable snapshot bytes.
var ErrCorruptSnapshot = errors.New("timeseries: corrupt snapshot")

// EncodeSnapshot serializes a snapshot to the binary wire format.
func EncodeSnapshot(s Snapshot) []byte {
	size := 4 + 1 + 4
	for _, ss := range s.Series {
		size += 2 + len(ss.Name) + 1 + 4 + 16*len(ss.Points)
	}
	out := make([]byte, 0, size)
	out = append(out, snapshotMagic[:]...)
	out = append(out, snapshotVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Series)))
	for _, ss := range s.Series {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(ss.Name)))
		out = append(out, ss.Name...)
		var k byte
		if ss.Kind == Counter.String() {
			k = 1
		}
		out = append(out, k)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(ss.Points)))
		for _, p := range ss.Points {
			out = binary.LittleEndian.AppendUint64(out, uint64(p.TS))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.V))
		}
	}
	return out
}

// DecodeSnapshot parses the binary wire format. Corrupt or truncated input
// returns ErrCorruptSnapshot (wrapped with detail); it never panics.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if len(data) < 9 {
		return s, fmt.Errorf("%w: short header (%d bytes)", ErrCorruptSnapshot, len(data))
	}
	if [4]byte(data[:4]) != snapshotMagic {
		return s, fmt.Errorf("%w: bad magic", ErrCorruptSnapshot)
	}
	if data[4] != snapshotVersion {
		return s, fmt.Errorf("%w: unknown version %d", ErrCorruptSnapshot, data[4])
	}
	nseries := binary.LittleEndian.Uint32(data[5:9])
	off := 9
	// Each series costs at least 7 bytes on the wire; reject counts the
	// remaining bytes cannot possibly hold before allocating.
	if uint64(nseries)*7 > uint64(len(data)-off) {
		return s, fmt.Errorf("%w: %d series claimed in %d bytes", ErrCorruptSnapshot, nseries, len(data)-off)
	}
	s.Series = make([]SeriesSnapshot, 0, nseries)
	for i := uint32(0); i < nseries; i++ {
		if off+2 > len(data) {
			return Snapshot{}, fmt.Errorf("%w: truncated series header", ErrCorruptSnapshot)
		}
		nameLen := int(binary.LittleEndian.Uint16(data[off : off+2]))
		off += 2
		if off+nameLen+5 > len(data) {
			return Snapshot{}, fmt.Errorf("%w: truncated series %d", ErrCorruptSnapshot, i)
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		kind := Gauge
		if data[off] == 1 {
			kind = Counter
		} else if data[off] != 0 {
			return Snapshot{}, fmt.Errorf("%w: bad kind %d", ErrCorruptSnapshot, data[off])
		}
		off++
		npoints := binary.LittleEndian.Uint32(data[off : off+4])
		off += 4
		if uint64(npoints)*16 > uint64(len(data)-off) {
			return Snapshot{}, fmt.Errorf("%w: %d points claimed in %d bytes", ErrCorruptSnapshot, npoints, len(data)-off)
		}
		points := make([]Point, npoints)
		for j := range points {
			points[j].TS = int64(binary.LittleEndian.Uint64(data[off : off+8]))
			points[j].V = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8 : off+16]))
			off += 16
		}
		s.Series = append(s.Series, SeriesSnapshot{Name: name, Kind: kind.String(), Points: points})
	}
	if off != len(data) {
		return Snapshot{}, fmt.Errorf("%w: %d trailing bytes", ErrCorruptSnapshot, len(data)-off)
	}
	return s, nil
}

// DecodeSnapshotAny sniffs the payload: binary wire format when the magic
// matches, JSON otherwise. This is what tfmon feeds files through.
func DecodeSnapshotAny(data []byte) (Snapshot, error) {
	if len(data) >= 4 && [4]byte(data[:4]) == snapshotMagic {
		return DecodeSnapshot(data)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	return s, nil
}
