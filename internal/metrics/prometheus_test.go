package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("llc.tx-frames").Add(42)
	r.Gauge("cluster.attachments").Set(3)
	h := r.Histogram("capi.latency.rtt_ns")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE llc_tx_frames counter\n",
		"llc_tx_frames 42\n",
		"# TYPE cluster_attachments gauge\n",
		"cluster_attachments 3\n",
		"# TYPE capi_latency_rtt_ns summary\n",
		"capi_latency_rtt_ns{quantile=\"0.5\"}",
		"capi_latency_rtt_ns{quantile=\"0.999\"}",
		"capi_latency_rtt_ns_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// _sum is reconstructed from mean*count: 1+2+...+100 = 5050.
	if !strings.Contains(out, "capi_latency_rtt_ns_sum 5050\n") {
		t.Fatalf("summary _sum not reconstructed:\n%s", out)
	}
}

func TestWritePrometheusByteStable(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(n).Inc()
	}
	r.Gauge("g").Set(1.5)

	var a, b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("idle registry scrapes differ:\n%s\n---\n%s", a.String(), b.String())
	}
	// Series are sorted by sanitized name.
	first := strings.Index(a.String(), "a_first")
	last := strings.Index(a.String(), "z_last")
	if first < 0 || last < 0 || first > last {
		t.Fatalf("series not sorted:\n%s", a.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"llc.tx-frames":    "llc_tx_frames",
		"9lives":           "_lives", // digit invalid at position 0
		"ok_name:subsys":   "ok_name:subsys",
		"sp ace/and+stuff": "sp_ace_and_stuff",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromFloat(t *testing.T) {
	cases := map[float64]string{
		42:     "42",
		1.5:    "1.5",
		-3:     "-3",
		212.5:  "212.5",
		1e18:   "1e+18", // too large for integer rendering
		0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := promFloat(in); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
