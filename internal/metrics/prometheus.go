package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Counters become `# TYPE <name> counter` series,
// gauges become gauges, and histogram summaries become Prometheus summaries:
// quantile-labelled series (0.5, 0.9, 0.99, 0.999) plus `_sum` and `_count`.
// Metric names are sanitized to the Prometheus charset (dots and dashes
// become underscores), and series are emitted in sorted order so scrapes of
// an idle registry are byte-stable.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type series struct{ name, body string }
	var out []series

	for name, v := range s.Counters {
		n := promName(name)
		out = append(out, series{n, fmt.Sprintf("# TYPE %s counter\n%s %d\n", n, n, v)})
	}
	for name, v := range s.Gauges {
		n := promName(name)
		out = append(out, series{n, fmt.Sprintf("# TYPE %s gauge\n%s %s\n", n, n, promFloat(v))})
	}
	for name, h := range s.Histograms {
		n := promName(name)
		var b strings.Builder
		fmt.Fprintf(&b, "# TYPE %s summary\n", n)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", n, promFloat(h.P50))
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %s\n", n, promFloat(h.P90))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", n, promFloat(h.P99))
		fmt.Fprintf(&b, "%s{quantile=\"0.999\"} %s\n", n, promFloat(h.P999))
		// The summary keeps the mean, not the sum; reconstruct the sum so
		// rate(_sum)/rate(_count) works as usual.
		fmt.Fprintf(&b, "%s_sum %s\n", n, promFloat(h.Mean*float64(h.Count)))
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
		out = append(out, series{n, b.String()})
	}

	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, s := range out {
		if _, err := io.WriteString(w, s.body); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name onto the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (no exponent for
// integral values of reasonable size, %g otherwise).
func promFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
