package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Gauge is an instantaneous value (queue depth, live attachment count).
// Like Counter, updates and reads are atomic.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry aggregates named counters, gauges, and histograms behind one
// snapshot interface, replacing per-component ad-hoc stat structs as the way
// telemetry leaves the simulation. Components either hold instruments
// obtained from Counter/Gauge/Histogram and update them inline, or register
// a collector (AddCollector) that pulls their internal counters into the
// registry at snapshot time — the adapter pattern used for llc.Stats via
// Stats.Sub deltas.
//
// Registry is safe for concurrent use. Snapshot consistency is per
// instrument, not global: a snapshot taken while the simulation runs sees
// each counter at some recent value.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFns   map[string]func() float64
	hists      map[string]*Histogram
	histFns    map[string]func() HistogramSummary
	collectors []func(*Registry)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
		histFns:  make(map[string]func() HistogramSummary),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at snapshot time
// (e.g. the kernel's pending-event count). Re-registering a name replaces
// the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
// Histogram itself is not synchronized: observe from one goroutine (one
// simulation kernel), or merge per-worker histograms with Merge.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// HistogramFunc registers a histogram whose summary is computed at snapshot
// time — the adapter for components that keep their own synchronized
// distributions (e.g. a latency.Sink) rather than observing into a registry
// histogram. Like collectors, the function runs outside the registry lock.
// Re-registering a name replaces the function.
func (r *Registry) HistogramFunc(name string, fn func() HistogramSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.histFns[name] = fn
}

// AddCollector registers a pull hook run at the start of every Snapshot.
// Collectors convert component-internal stats into registry instruments;
// they run outside the registry lock and may freely call Counter/Gauge/etc.
func (r *Registry) AddCollector(fn func(*Registry)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// HistogramSummary is the snapshot form of a histogram.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// Snapshot runs the registered collectors, then captures every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	cols := append([]func(*Registry){}, r.collectors...)
	hfns := make(map[string]func() HistogramSummary, len(r.histFns))
	for name, fn := range r.histFns {
		hfns[name] = fn
	}
	r.mu.Unlock()
	for _, fn := range cols {
		fn(r)
	}
	// Histogram functions also run outside the lock: they may synchronize on
	// component-internal state (a latency.Sink mutex) that must not nest
	// inside r.mu.
	hsums := make(map[string]HistogramSummary, len(hfns))
	for name, fn := range hfns {
		hsums[name] = fn()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]HistogramSummary, len(r.hists)+len(hsums)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSummary{
			Count: h.Count(), Mean: h.Mean(),
			P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
			P999: h.Quantile(0.999), Max: h.Max(),
		}
	}
	for name, sum := range hsums {
		s.Histograms[name] = sum
	}
	return s
}

// Delta returns the change from prev to s: counters are subtracted
// (counters absent from prev pass through); gauges and histogram summaries
// are instantaneous, so the current values are kept as-is.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     s.Gauges,
		Histograms: s.Histograms,
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	return out
}

// WriteJSON writes an indented snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
