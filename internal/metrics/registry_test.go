package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(3)
	r.Counter("ops").Inc() // same instrument by name
	r.Gauge("depth").Set(7.5)
	r.GaugeFunc("live", func() float64 { return 2 })
	r.Histogram("lat").Observe(10)
	r.Histogram("lat").Observe(20)

	s := r.Snapshot()
	if s.Counters["ops"] != 4 {
		t.Fatalf("ops = %d, want 4", s.Counters["ops"])
	}
	if s.Gauges["depth"] != 7.5 || s.Gauges["live"] != 2 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	h := s.Histograms["lat"]
	if h.Count != 2 || math.Abs(h.Mean-15) > 1e-9 {
		t.Fatalf("lat summary = %+v", h)
	}
}

func TestRegistryCollector(t *testing.T) {
	r := NewRegistry()
	// A collector mimicking the llc adapter: pulls a component-internal
	// counter into the registry as an increment on every snapshot.
	internal := int64(0)
	prev := int64(0)
	r.AddCollector(func(reg *Registry) {
		reg.Counter("pulled").Add(internal - prev)
		prev = internal
	})

	internal = 5
	if s := r.Snapshot(); s.Counters["pulled"] != 5 {
		t.Fatalf("first snapshot pulled = %d, want 5", s.Counters["pulled"])
	}
	internal = 8
	if s := r.Snapshot(); s.Counters["pulled"] != 8 {
		t.Fatalf("second snapshot pulled = %d, want 8 (cumulative)", s.Counters["pulled"])
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(10)
	r.Gauge("g").Set(1)
	a := r.Snapshot()
	r.Counter("x").Add(5)
	r.Gauge("g").Set(2)
	b := r.Snapshot()
	d := b.Delta(a)
	if d.Counters["x"] != 5 {
		t.Fatalf("delta x = %d, want 5", d.Counters["x"])
	}
	if d.Gauges["g"] != 2 {
		t.Fatalf("delta gauge = %v, want instantaneous 2", d.Gauges["g"])
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["c"] != 1 || s.Gauges["g"] != 3 {
		t.Fatalf("round-tripped snapshot = %+v", s)
	}
}

// TestRegistrySnapshotUnderParallelWriters exercises the control-plane
// pattern: writers mutate counters, gauges, and function-backed instruments
// while another goroutine takes Snapshot and Delta continuously. Run under
// -race this is the regression test for snapshot-vs-write synchronization;
// the monotonicity check catches torn counter reads.
func TestRegistrySnapshotUnderParallelWriters(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn.gauge", func() float64 { return 1 })
	r.HistogramFunc("fn.hist", func() HistogramSummary {
		return HistogramSummary{Count: 1, Mean: 2}
	})

	const writers = 4
	const iters = 2000
	stop := make(chan struct{})
	done := make(chan struct{})
	for i := 0; i < writers; i++ {
		i := i
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < iters; j++ {
				r.Counter("ops").Inc()
				r.Gauge("depth").Set(float64(j))
				// Instrument creation races with snapshotting too.
				r.Counter("w" + string(rune('a'+i))).Inc()
			}
		}()
	}

	snaps := make(chan struct{})
	go func() {
		defer close(snaps)
		prev := r.Snapshot()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			d := s.Delta(prev)
			if d.Counters["ops"] < 0 {
				t.Errorf("counter went backwards: delta %d", d.Counters["ops"])
				return
			}
			if s.Histograms["fn.hist"].Count != 1 || s.Gauges["fn.gauge"] != 1 {
				t.Errorf("function-backed instruments missing from snapshot: %+v", s)
				return
			}
			prev = s
		}
	}()

	for i := 0; i < writers; i++ {
		<-done
	}
	close(stop)
	<-snaps

	s := r.Snapshot()
	if s.Counters["ops"] != writers*iters {
		t.Fatalf("ops = %d, want %d", s.Counters["ops"], writers*iters)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("depth").Set(float64(j))
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := r.Snapshot().Counters["shared"]; got != 4000 {
		t.Fatalf("shared = %d, want 4000", got)
	}
}
