package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", h.Min(), h.Max())
	}
	if p50 := h.Quantile(0.5); p50 < 45 || p50 > 56 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 94 || p99 > 100 {
		t.Fatalf("p99 = %v, want ~99", p99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.CDF() != nil {
		t.Fatal("empty histogram should report zeros and nil CDF")
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(5)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Fatalf("min = %v, want 0", h.Min())
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		h.Observe(math.Exp(rng.NormFloat64())) // lognormal
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, cdf[i-1], cdf[i])
		}
	}
	last := cdf[len(cdf)-1]
	if math.Abs(last.Fraction-1.0) > 1e-12 {
		t.Fatalf("CDF does not reach 1.0: %v", last.Fraction)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 50; i++ {
		a.Observe(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	if a.Min() != 1 || a.Max() != 100 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if m := a.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("merged mean = %v", m)
	}
}

// Property: merging two histograms is indistinguishable from observing the
// whole dataset sequentially — for any values and any split point, Count,
// Min, Max, Mean and the quantiles of merge(h(left), h(right)) equal those
// of h(left ++ right). Exact equality holds because Merge adds raw buckets
// and sums rather than resampling.
func TestQuickMergeMatchesSequential(t *testing.T) {
	f := func(raw []uint32, split uint8) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r % 1000000) // includes 0: the <=0 bucket
		}
		cut := 0
		if len(vals) > 0 {
			cut = int(split) % (len(vals) + 1)
		}
		left, right, seq := NewHistogram(), NewHistogram(), NewHistogram()
		for _, v := range vals[:cut] {
			left.Observe(v)
		}
		for _, v := range vals[cut:] {
			right.Observe(v)
		}
		for _, v := range vals {
			seq.Observe(v)
		}
		left.Merge(right)
		if left.Count() != seq.Count() || left.Min() != seq.Min() || left.Max() != seq.Max() {
			return false
		}
		if math.Abs(left.Mean()-seq.Mean()) > 1e-9*math.Max(1, math.Abs(seq.Mean())) {
			return false
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			if left.Quantile(q) != seq.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile approximation error is within the bucket resolution
// (1%) plus bucketing slack for any positive dataset.
func TestQuickQuantileAccuracy(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := make([]float64, 0, len(raw))
		h := NewHistogram()
		for _, r := range raw {
			v := float64(r%1000000) + 1
			vals = append(vals, v)
			h.Observe(v)
		}
		if len(vals) == 0 {
			return true
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			idx := int(math.Ceil(q*float64(len(vals)))) - 1
			if idx < 0 {
				idx = 0
			}
			exact := vals[idx]
			approx := h.Quantile(q)
			if exact == 0 {
				continue
			}
			if math.Abs(approx-exact)/exact > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPerfSampleDerived(t *testing.T) {
	s := PerfSample{
		Instructions:  1000,
		Cycles:        2000,
		StallBackend:  1110,
		StallFrontend: 200,
		TaskClockPS:   5_000_000,
		WindowPS:      10_000_000,
	}
	if ipc := s.ThreadIPC(); math.Abs(ipc-0.5) > 1e-12 {
		t.Fatalf("thread IPC = %v, want 0.5", ipc)
	}
	if ucc := s.UtilizedCores(); math.Abs(ucc-0.5) > 1e-12 {
		t.Fatalf("UCC = %v, want 0.5", ucc)
	}
	if pkg := s.PackageIPC(); math.Abs(pkg-0.25) > 1e-12 {
		t.Fatalf("package IPC = %v, want 0.25", pkg)
	}
	if bs := s.BackendStallFraction(); math.Abs(bs-0.555) > 1e-12 {
		t.Fatalf("backend stall = %v, want 0.555", bs)
	}
}

func TestPerfSampleAdd(t *testing.T) {
	var total PerfSample
	total.Add(PerfSample{Instructions: 10, Cycles: 20, TaskClockPS: 100, WindowPS: 1000})
	total.Add(PerfSample{Instructions: 30, Cycles: 40, TaskClockPS: 300, WindowPS: 2000})
	if total.Instructions != 40 || total.Cycles != 60 || total.TaskClockPS != 400 {
		t.Fatalf("bad accumulation: %+v", total)
	}
	if total.WindowPS != 2000 {
		t.Fatalf("window should take max: %d", total.WindowPS)
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter(0)
	m.Add(500, 5e11)  // 500 ops by 0.5s
	m.Add(500, 10e11) // 1000 ops by 1.0s
	if r := m.RatePerSec(); math.Abs(r-1000) > 1e-6 {
		t.Fatalf("rate = %v, want 1000", r)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}
