package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counter is a monotonic event counter. Updates and reads are atomic, so a
// counter registered in a Registry may be scraped (e.g. by the control
// plane's /v1/metrics endpoint) while the simulation mutates it.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("metrics: Counter.Add negative delta")
	}
	c.n.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// PerfSample mirrors the Linux perf events the paper collects for the VoltDB
// profiling campaign (Section VI-D): instructions, cycles, task-clock,
// frontend and backend stall cycles. All values are accumulated over a
// measurement window; derived metrics follow perf's definitions.
type PerfSample struct {
	Instructions  int64 // retired instructions
	Cycles        int64 // CPU cycles consumed (busy cycles)
	StallFrontend int64 // cycles stalled in the frontend
	StallBackend  int64 // cycles stalled in the backend (memory, long ops)
	TaskClockPS   int64 // total on-CPU time across all threads, picoseconds
	WindowPS      int64 // measurement window wall time, picoseconds
}

// Add accumulates another sample into s.
func (s *PerfSample) Add(o PerfSample) {
	s.Instructions += o.Instructions
	s.Cycles += o.Cycles
	s.StallFrontend += o.StallFrontend
	s.StallBackend += o.StallBackend
	s.TaskClockPS += o.TaskClockPS
	if o.WindowPS > s.WindowPS {
		s.WindowPS = o.WindowPS
	}
}

// ThreadIPC returns retired instructions per busy cycle (single-thread IPC).
func (s *PerfSample) ThreadIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// UtilizedCores returns the average number of CPU cores occupied during the
// window (perf's task-clock / wall-clock), the paper's "UCC" metric.
func (s *PerfSample) UtilizedCores() float64 {
	if s.WindowPS == 0 {
		return 0
	}
	return float64(s.TaskClockPS) / float64(s.WindowPS)
}

// PackageIPC returns the paper's "average IPC across the whole CPU package":
// single-thread IPC multiplied by the average utilized cores.
func (s *PerfSample) PackageIPC() float64 {
	return s.ThreadIPC() * s.UtilizedCores()
}

// BackendStallFraction returns the fraction of busy cycles that were
// backend stalls (waiting for memory or long-latency instructions).
func (s *PerfSample) BackendStallFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.StallBackend) / float64(s.Cycles)
}

// FrontendStallFraction returns the fraction of busy cycles stalled in the
// frontend.
func (s *PerfSample) FrontendStallFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.StallFrontend) / float64(s.Cycles)
}

// String renders the derived metrics.
func (s *PerfSample) String() string {
	return fmt.Sprintf("IPC(thread)=%.2f IPC(pkg)=%.2f UCC=%.2f backend-stall=%.1f%%",
		s.ThreadIPC(), s.PackageIPC(), s.UtilizedCores(), 100*s.BackendStallFraction())
}

// Meter tracks a quantity over a time window to report a rate (for
// throughput in ops/sec or bytes/sec).
type Meter struct {
	total   float64
	startPS int64
	nowPS   int64
}

// NewMeter returns a meter whose window starts at startPS picoseconds.
func NewMeter(startPS int64) *Meter { return &Meter{startPS: startPS, nowPS: startPS} }

// Add records d units at time nowPS picoseconds.
func (m *Meter) Add(d float64, nowPS int64) {
	m.total += d
	if nowPS > m.nowPS {
		m.nowPS = nowPS
	}
}

// Total returns the accumulated quantity.
func (m *Meter) Total() float64 { return m.total }

// RatePerSec returns units per second over the observed window.
func (m *Meter) RatePerSec() float64 {
	window := m.nowPS - m.startPS
	if window <= 0 {
		return 0
	}
	return m.total / (float64(window) / 1e12)
}
