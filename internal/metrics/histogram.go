// Package metrics provides the measurement primitives used across the
// simulation: streaming histograms (for latency CDFs), counters, rate
// meters, and the perf-style derived metrics (IPC, utilized cores,
// backend-stall fraction) reported in the paper's evaluation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a log-bucketed streaming histogram suitable for latency
// distributions spanning many orders of magnitude. Values are float64 in an
// arbitrary unit chosen by the caller (this repo uses microseconds for
// request latencies). Relative bucket error is bounded by the growth factor
// (~1%).
type Histogram struct {
	buckets map[int]int64
	count   int64
	sum     float64
	min     float64
	max     float64
}

// growth is the per-bucket geometric growth factor: 1% relative resolution.
const growth = 1.01

var logGrowth = math.Log(growth)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int64), min: math.Inf(1), max: math.Inf(-1)}
}

func bucketOf(v float64) int {
	if v <= 0 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log(v) / logGrowth))
}

func bucketValue(b int) float64 {
	if b == math.MinInt32 {
		return 0
	}
	// Midpoint of the bucket in linear space.
	lo := math.Exp(float64(b) * logGrowth)
	return lo * (1 + growth) / 2
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of all observations (0 if empty).
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean of observations (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the approximate q-quantile (q in [0,1]).
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	keys := h.sortedBuckets()
	var seen int64
	for _, b := range keys {
		seen += h.buckets[b]
		if seen >= target {
			v := bucketValue(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

func (h *Histogram) sortedBuckets() []int {
	keys := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	return keys
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value    float64 // observation value (caller's unit)
	Fraction float64 // cumulative fraction in (0, 1]
}

// CDF returns the full cumulative distribution, one point per occupied
// bucket, in increasing value order.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	keys := h.sortedBuckets()
	out := make([]CDFPoint, 0, len(keys))
	var seen int64
	for _, b := range keys {
		seen += h.buckets[b]
		v := bucketValue(b)
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		out = append(out, CDFPoint{Value: v, Fraction: float64(seen) / float64(h.count)})
	}
	return out
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, c := range other.buckets {
		h.buckets[b] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram(empty)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
	return sb.String()
}
