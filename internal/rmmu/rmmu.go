// Package rmmu implements the ThymesisFlow Remote Memory Management Unit
// (Section IV-A1): the section-indexed translation table integrated into the
// compute endpoint.
//
// Address pipeline (Figure 3 of the paper):
//
//	effective addr --CPU MMU--> real addr --OpenCAPI--> device-internal addr
//	  --RMMU--> remote effective addr (+ network ID for the routing layer)
//
// The device-internal address space always starts at 0. It is divided into
// fixed-size, aligned sections matching the Linux sparse-memory-model
// section size, so one RMMU entry corresponds to exactly one hotpluggable
// memory section. Each entry carries (a) the offset converting the
// device-internal address into the memory-stealing side's effective address
// and (b) the network identifier of the active thymesisflow, used by the
// routing layer.
package rmmu

import (
	"fmt"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/latency"
	"thymesisflow/internal/trace"
)

// DefaultSectionSize is the Linux sparse memory model section size on the
// simulated hosts (256 MiB, the ppc64 default).
const DefaultSectionSize = 256 * 1024 * 1024

// Entry is one section-table entry.
type Entry struct {
	Valid bool
	// Offset converts a device-internal address within this section into
	// the memory-stealing endpoint's effective address:
	//   remoteEA = deviceAddr - sectionBase + Offset
	Offset uint64
	// NetworkID identifies the active thymesisflow the section belongs to;
	// the routing layer forwards on it.
	NetworkID uint16
	// Bonded requests round-robin channel bonding for this flow.
	Bonded bool
}

// RMMU is the remote memory management unit: a section table indexed by the
// high bits of the device-internal address.
type RMMU struct {
	sectionSize uint64
	table       []Entry

	// src, when set by Instrument, supplies the virtual clock and a
	// late-bound tracer for per-translation instants.
	src trace.Source
}

// Instrument attaches a trace source (normally the owning endpoint's
// *sim.Kernel). The tracer is looked up through the source on every
// translation, so attaching a tracer to the kernel after construction still
// takes effect; a nil source or tracer keeps translation at zero overhead.
func (m *RMMU) Instrument(src trace.Source) { m.src = src }

// New builds an RMMU covering `sections` sections of the given size (0 size
// selects DefaultSectionSize). Section size must be a power of two and a
// multiple of the cacheline size.
func New(sections int, sectionSize int64) (*RMMU, error) {
	if sectionSize == 0 {
		sectionSize = DefaultSectionSize
	}
	if sections <= 0 {
		return nil, fmt.Errorf("rmmu: need at least one section, got %d", sections)
	}
	if sectionSize&(sectionSize-1) != 0 {
		return nil, fmt.Errorf("rmmu: section size %d not a power of two", sectionSize)
	}
	if sectionSize%capi.Cacheline != 0 {
		return nil, fmt.Errorf("rmmu: section size %d not cacheline aligned", sectionSize)
	}
	return &RMMU{sectionSize: uint64(sectionSize), table: make([]Entry, sections)}, nil
}

// SectionSize returns the configured section size in bytes.
func (m *RMMU) SectionSize() int64 { return int64(m.sectionSize) }

// Sections returns the number of table entries.
func (m *RMMU) Sections() int { return len(m.table) }

// Capacity returns the total device-internal address space covered.
func (m *RMMU) Capacity() int64 { return int64(m.sectionSize) * int64(len(m.table)) }

// sectionOf returns the section index of a device-internal address.
func (m *RMMU) sectionOf(deviceAddr uint64) int { return int(deviceAddr / m.sectionSize) }

// Map installs a section-table entry. The remote base must be aligned such
// that a whole section maps to a consecutive remote effective range (the
// architecture requires each section to be associated with a consecutive
// effective address space of the same size on the memory-stealing side).
func (m *RMMU) Map(section int, remoteBase uint64, networkID uint16, bonded bool) error {
	if section < 0 || section >= len(m.table) {
		return fmt.Errorf("rmmu: section %d outside table of %d", section, len(m.table))
	}
	if m.table[section].Valid {
		return fmt.Errorf("rmmu: section %d already mapped", section)
	}
	m.table[section] = Entry{Valid: true, Offset: remoteBase, NetworkID: networkID, Bonded: bonded}
	return nil
}

// Unmap invalidates a section-table entry.
func (m *RMMU) Unmap(section int) error {
	if section < 0 || section >= len(m.table) {
		return fmt.Errorf("rmmu: section %d outside table of %d", section, len(m.table))
	}
	if !m.table[section].Valid {
		return fmt.Errorf("rmmu: section %d not mapped", section)
	}
	m.table[section] = Entry{}
	return nil
}

// Entry returns a copy of the section's table entry.
func (m *RMMU) Entry(section int) (Entry, error) {
	if section < 0 || section >= len(m.table) {
		return Entry{}, fmt.Errorf("rmmu: section %d outside table of %d", section, len(m.table))
	}
	return m.table[section], nil
}

// Translate rewrites a request transaction in place from the
// device-internal representation to the remote effective representation,
// stamping the routing information. Transactions that cross a section
// boundary or hit an unmapped section fail — the control plane guarantees
// only legal destinations are configured (Section IV-C), so a failure here
// is surfaced as an error rather than forwarded.
func (m *RMMU) Translate(t *capi.Transaction) error {
	sec := m.sectionOf(t.Addr)
	if sec >= len(m.table) {
		return fmt.Errorf("rmmu: address %#x beyond device address space", t.Addr)
	}
	end := t.Addr + uint64(t.Size) - 1
	if t.Size > 0 && m.sectionOf(end) != sec {
		return fmt.Errorf("rmmu: transaction %#x+%d crosses section boundary", t.Addr, t.Size)
	}
	e := m.table[sec]
	if !e.Valid {
		if m.src != nil {
			if tr := m.src.Tracer(); tr != nil {
				tr.Instant(trace.LayerRMMU, "translate_fault", m.src.NowPS())
			}
		}
		return fmt.Errorf("rmmu: section %d not mapped (addr %#x)", sec, t.Addr)
	}
	inSection := t.Addr - uint64(sec)*m.sectionSize
	t.Addr = e.Offset + inSection
	t.NetworkID = e.NetworkID
	t.Bonded = e.Bonded
	if m.src != nil {
		if tr := m.src.Tracer(); tr != nil {
			tr.Instant(trace.LayerRMMU, "translate", m.src.NowPS())
		}
		if t.Lat != nil {
			// The section lookup is combinational in the prototype FPGA — it
			// adds no virtual time — but the stamp closes the translate stage
			// so any future pipelined-RMMU model is attributed automatically.
			t.Lat.MarkTo(latency.StageTranslate, m.src.NowPS())
		}
	}
	return nil
}

// MappedSections returns the indices of valid sections in ascending order.
func (m *RMMU) MappedSections() []int {
	var out []int
	for i, e := range m.table {
		if e.Valid {
			out = append(out, i)
		}
	}
	return out
}
