package rmmu_test

import (
	"fmt"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/rmmu"
)

// Example walks one transaction through the Figure 3 address pipeline: a
// device-internal address is rewritten to the donor's effective address
// and stamped with the flow's network identifier.
func Example() {
	m, err := rmmu.New(4, 256<<20) // 4 sections of 256 MiB
	if err != nil {
		panic(err)
	}
	// The control plane maps section 1 to donor effective address
	// 0x7f0000000000, flow 7, bonded.
	if err := m.Map(1, 0x7f0000000000, 7, true); err != nil {
		panic(err)
	}
	txn := &capi.Transaction{
		Op:   capi.OpReadReq,
		Addr: 256<<20 + 0x1000, // device-internal: section 1 + 4 KiB
		Size: capi.Cacheline,
	}
	if err := m.Translate(txn); err != nil {
		panic(err)
	}
	fmt.Printf("remote EA=%#x flow=%d bonded=%v\n", txn.Addr, txn.NetworkID, txn.Bonded)
	// Output:
	// remote EA=0x7f0000001000 flow=7 bonded=true
}
