package rmmu

import (
	"math/rand"
	"testing"

	"thymesisflow/internal/capi"
)

// TestTranslatePropertyRandomLayouts is a property test over random section
// layouts: for each trial it builds an RMMU with a random geometry, maps a
// random subset of sections to random remote bases, and checks
//
//   - every address inside a mapped section translates, the translation
//     round-trips back to the original device address, and the routing
//     stamps (NetworkID, Bonded) match the entry;
//   - every address inside an unmapped section faults — and only those:
//     the fault boundary lies exactly on the section edges;
//   - transactions crossing a section boundary fault even when both
//     neighbouring sections are mapped;
//   - addresses beyond the device address space fault.
func TestTranslatePropertyRandomLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 200; trial++ {
		sections := 1 + rng.Intn(24)
		// Random power-of-two section size, cacheline..1 MiB.
		sectionSize := int64(capi.Cacheline) << rng.Intn(14)
		m, err := New(sections, sectionSize)
		if err != nil {
			t.Fatalf("trial %d: New(%d, %d): %v", trial, sections, sectionSize, err)
		}

		type mapping struct {
			base   uint64
			netID  uint16
			bonded bool
		}
		mapped := map[int]mapping{}
		for sec := 0; sec < sections; sec++ {
			if rng.Intn(2) == 0 {
				continue
			}
			mp := mapping{
				// Section-aligned remote base, as the control plane hands out.
				base:   uint64(rng.Intn(64)) * uint64(sectionSize),
				netID:  uint16(rng.Intn(1 << 16)),
				bonded: rng.Intn(2) == 0,
			}
			if err := m.Map(sec, mp.base, mp.netID, mp.bonded); err != nil {
				t.Fatalf("trial %d: Map(%d): %v", trial, sec, err)
			}
			mapped[sec] = mp
		}

		// Probe every section at its first line, its last line, and a few
		// random interior lines, so the mapped/unmapped boundary is checked
		// exactly at the section edges.
		linesPerSection := uint64(sectionSize) / capi.Cacheline
		for sec := 0; sec < sections; sec++ {
			offsets := []uint64{0, (linesPerSection - 1) * capi.Cacheline}
			for i := 0; i < 3; i++ {
				offsets = append(offsets, uint64(rng.Int63n(int64(linesPerSection)))*capi.Cacheline)
			}
			for _, off := range offsets {
				deviceAddr := uint64(sec)*uint64(sectionSize) + off
				tx := capi.Transaction{Op: capi.OpReadReq, Addr: deviceAddr, Size: capi.Cacheline}
				err := m.Translate(&tx)
				mp, isMapped := mapped[sec]
				if !isMapped {
					if err == nil {
						t.Fatalf("trial %d: unmapped section %d addr %#x translated", trial, sec, deviceAddr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("trial %d: mapped section %d addr %#x faulted: %v", trial, sec, deviceAddr, err)
				}
				if want := mp.base + off; tx.Addr != want {
					t.Fatalf("trial %d: addr %#x -> %#x, want %#x", trial, deviceAddr, tx.Addr, want)
				}
				if tx.NetworkID != mp.netID || tx.Bonded != mp.bonded {
					t.Fatalf("trial %d: routing stamp (%d,%v), want (%d,%v)",
						trial, tx.NetworkID, tx.Bonded, mp.netID, mp.bonded)
				}
				// Round trip: invert the translation and recover the original
				// device address.
				back := tx.Addr - mp.base + uint64(sec)*uint64(sectionSize)
				if back != deviceAddr {
					t.Fatalf("trial %d: round trip %#x -> %#x -> %#x", trial, deviceAddr, tx.Addr, back)
				}
			}
		}

		// A transaction straddling any internal section edge must fault, even
		// between two mapped sections.
		for sec := 1; sec < sections; sec++ {
			edge := uint64(sec) * uint64(sectionSize)
			tx := capi.Transaction{Op: capi.OpReadReq, Addr: edge - capi.Cacheline/2, Size: capi.Cacheline}
			if err := m.Translate(&tx); err == nil {
				t.Fatalf("trial %d: boundary-crossing transaction at %#x translated", trial, edge)
			}
		}

		// Just past the end of the device address space must fault.
		tx := capi.Transaction{Op: capi.OpReadReq, Addr: uint64(m.Capacity()), Size: capi.Cacheline}
		if err := m.Translate(&tx); err == nil {
			t.Fatalf("trial %d: address beyond capacity translated", trial)
		}
	}
}
