package rmmu

import (
	"testing"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/trace"
)

// fakeSource is a trace.Source with a settable clock, standing in for
// *sim.Kernel.
type fakeSource struct {
	now int64
	tr  trace.Tracer
}

func (f *fakeSource) NowPS() int64         { return f.now }
func (f *fakeSource) Tracer() trace.Tracer { return f.tr }

func TestTranslateEmitsInstants(t *testing.T) {
	m := mustNew(t, 2, 1<<20)
	if err := m.Map(0, 0x1000000, 1, false); err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(16)
	src := &fakeSource{now: 42_000, tr: ring}
	m.Instrument(src)

	ok := &capi.Transaction{Op: capi.OpReadReq, Addr: 0, Size: capi.Cacheline}
	if err := m.Translate(ok); err != nil {
		t.Fatal(err)
	}
	src.now = 43_000
	fault := &capi.Transaction{Op: capi.OpReadReq, Addr: 1 << 20, Size: capi.Cacheline}
	if err := m.Translate(fault); err == nil {
		t.Fatal("translate through unmapped section succeeded")
	}

	evs := ring.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("recorded %d events, want 2", len(evs))
	}
	if evs[0].Layer != trace.LayerRMMU || evs[0].Name != "translate" || evs[0].TS != 42_000 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Name != "translate_fault" || evs[1].TS != 43_000 {
		t.Fatalf("second event = %+v", evs[1])
	}
}

// TestTranslateUninstrumented checks the nil-source and nil-tracer paths
// stay silent no-ops (the zero-overhead contract).
func TestTranslateUninstrumented(t *testing.T) {
	m := mustNew(t, 1, 1<<20)
	if err := m.Map(0, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	txn := func() *capi.Transaction {
		return &capi.Transaction{Op: capi.OpReadReq, Addr: 0, Size: capi.Cacheline}
	}
	if err := m.Translate(txn()); err != nil { // no source at all
		t.Fatal(err)
	}
	m.Instrument(&fakeSource{}) // source with nil tracer
	if err := m.Translate(txn()); err != nil {
		t.Fatal(err)
	}
}
