package rmmu

import (
	"testing"
	"testing/quick"

	"thymesisflow/internal/capi"
)

func mustNew(t *testing.T, sections int, size int64) *RMMU {
	t.Helper()
	m, err := New(sections, size)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTranslateAppliesOffsetAndNetworkID(t *testing.T) {
	m := mustNew(t, 4, 1<<20) // 4 x 1MiB sections
	if err := m.Map(1, 0xAB00000, 7, true); err != nil {
		t.Fatal(err)
	}
	txn := &capi.Transaction{Op: capi.OpReadReq, Addr: 1<<20 + 0x340, Size: 128}
	if err := m.Translate(txn); err != nil {
		t.Fatal(err)
	}
	if txn.Addr != 0xAB00000+0x340 {
		t.Fatalf("addr = %#x, want %#x", txn.Addr, 0xAB00000+0x340)
	}
	if txn.NetworkID != 7 || !txn.Bonded {
		t.Fatalf("routing info not stamped: %+v", txn)
	}
}

func TestTranslateUnmappedSectionFails(t *testing.T) {
	m := mustNew(t, 4, 1<<20)
	txn := &capi.Transaction{Op: capi.OpReadReq, Addr: 3 << 20, Size: 128}
	if err := m.Translate(txn); err == nil {
		t.Fatal("translate through unmapped section succeeded")
	}
}

func TestTranslateBeyondAddressSpaceFails(t *testing.T) {
	m := mustNew(t, 2, 1<<20)
	txn := &capi.Transaction{Op: capi.OpReadReq, Addr: 5 << 20, Size: 128}
	if err := m.Translate(txn); err == nil {
		t.Fatal("translate beyond device address space succeeded")
	}
}

func TestTranslateSectionCrossingFails(t *testing.T) {
	m := mustNew(t, 2, 1<<20)
	if err := m.Map(0, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(1, 1<<20, 1, false); err != nil {
		t.Fatal(err)
	}
	txn := &capi.Transaction{Op: capi.OpReadReq, Addr: 1<<20 - 64, Size: 128}
	if err := m.Translate(txn); err == nil {
		t.Fatal("section-crossing transaction accepted")
	}
}

func TestDoubleMapFails(t *testing.T) {
	m := mustNew(t, 2, 1<<20)
	if err := m.Map(0, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(0, 1<<20, 2, false); err == nil {
		t.Fatal("double map succeeded")
	}
}

func TestUnmap(t *testing.T) {
	m := mustNew(t, 2, 1<<20)
	if err := m.Map(0, 0x100000, 3, false); err != nil {
		t.Fatal(err)
	}
	if got := m.MappedSections(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("mapped sections = %v", got)
	}
	if err := m.Unmap(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(0); err == nil {
		t.Fatal("double unmap succeeded")
	}
	txn := &capi.Transaction{Op: capi.OpReadReq, Addr: 0x40, Size: 64}
	if err := m.Translate(txn); err == nil {
		t.Fatal("translate through unmapped section succeeded")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(0, 1<<20); err == nil {
		t.Fatal("zero sections accepted")
	}
	if _, err := New(4, 3<<19); err == nil {
		t.Fatal("non-power-of-two section size accepted")
	}
	if _, err := New(4, 64); err == nil {
		t.Fatal("sub-cacheline section accepted")
	}
}

func TestDefaultSectionSize(t *testing.T) {
	m := mustNew(t, 2, 0)
	if m.SectionSize() != DefaultSectionSize {
		t.Fatalf("section size = %d, want %d", m.SectionSize(), DefaultSectionSize)
	}
	if m.Capacity() != 2*DefaultSectionSize {
		t.Fatalf("capacity = %d", m.Capacity())
	}
}

// Property: for any mapped section and any in-section, non-crossing offset,
// translation preserves the offset within the section and never produces an
// address outside [remoteBase, remoteBase+sectionSize).
func TestQuickTranslationPreservesOffset(t *testing.T) {
	const secSize = 1 << 20
	m, err := New(8, secSize)
	if err != nil {
		t.Fatal(err)
	}
	bases := []uint64{0x10000000, 0x20000000, 0x30000000, 0x40000000,
		0x50000000, 0x60000000, 0x70000000, 0x80000000}
	for i, b := range bases {
		if err := m.Map(i, b, uint16(i+1), i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	f := func(sec uint8, off uint32) bool {
		s := int(sec) % 8
		o := uint64(off) % (secSize - capi.Cacheline)
		o &^= capi.Cacheline - 1 // align
		txn := &capi.Transaction{Op: capi.OpReadReq, Addr: uint64(s)*secSize + o, Size: capi.Cacheline}
		if err := m.Translate(txn); err != nil {
			return false
		}
		if txn.Addr != bases[s]+o {
			return false
		}
		if txn.NetworkID != uint16(s+1) {
			return false
		}
		return txn.Bonded == (s%2 == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
