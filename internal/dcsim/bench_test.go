package dcsim

import (
	"testing"

	"thymesisflow/internal/dctrace"
)

// BenchmarkDcsimPlace measures raw placement throughput at full Figure 1
// scale: place/release cycles against both models with 12,555 units, the
// regime where the free-capacity index replaces the linear best-fit scan.
func BenchmarkDcsimPlace(b *testing.B) {
	cfg := dctrace.DefaultConfig()
	cfg.Tasks = 20_000
	tasks := dctrace.Generate(cfg)

	b.Run("fixed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewFixedModel(DefaultServers, 1)
			for _, t := range tasks {
				if m.place(t) {
					m.release(t)
				}
			}
		}
	})
	b.Run("disagg", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewDisaggModel(DefaultServers, DefaultServers, DefaultLinksPerModule, 1)
			for _, t := range tasks {
				if m.place(t) {
					m.release(t)
				}
			}
		}
	})
}

// BenchmarkDcsimStudy measures the end-to-end motivation study at the
// Quick (Fig1) scale used by CI.
func BenchmarkDcsimStudy(b *testing.B) {
	cfg := dctrace.DefaultConfig()
	cfg.Seed = 42
	cfg.Tasks = 12_000
	cfg.ArrivalRate = cfg.ArrivalRate * 800 / DefaultServers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunStudy(cfg, 800, DefaultLinksPerModule)
	}
}
