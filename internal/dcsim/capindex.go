package dcsim

// capIndex is a bucketed free-list over units keyed by free capacity. It
// replaces the O(n) linear/sampled best-fit scan: a placement query walks
// buckets upward from the demanded capacity and returns a near-best-fit
// unit in O(buckets + candidates) — effectively O(1) amortized at Figure 1
// scale — while release/update re-files a unit in O(1).
//
// Quantization makes "best fit" approximate: within one bucket, member
// capacities differ by at most the bucket width (maxCap/buckets), so the
// leftover of the returned unit is within one bucket width of the true
// minimum. That is tighter than the seed implementation's 96-sample
// randomized policy, and — with no RNG — placement is deterministic by
// construction.
type capIndex struct {
	buckets [][]int32 // bucket -> member unit ids, unordered
	pos     []int32   // unit -> index within its bucket slice
	bucket  []int32   // unit -> bucket id, -1 when not indexed
	scale   float64   // buckets per unit of capacity
	nb      int
}

// capBuckets trades index granularity against walk length. 256 buckets on
// a [0,1] capacity range bounds the best-fit error at ~0.4% of a unit.
const capBuckets = 256

// newCapIndex builds an index for n units with capacities in [0, maxCap].
// Units start unindexed; call update to insert them.
func newCapIndex(n int, maxCap float64) *capIndex {
	x := &capIndex{
		buckets: make([][]int32, capBuckets),
		pos:     make([]int32, n),
		bucket:  make([]int32, n),
		scale:   float64(capBuckets) / maxCap,
		nb:      capBuckets,
	}
	for i := range x.bucket {
		x.bucket[i] = -1
	}
	return x
}

func (x *capIndex) bucketOf(c float64) int {
	b := int(c * x.scale)
	if b < 0 {
		b = 0
	}
	if b >= x.nb {
		b = x.nb - 1
	}
	return b
}

// update files unit u under capacity c, inserting it if absent.
func (x *capIndex) update(u int, c float64) {
	b := int32(x.bucketOf(c))
	if x.bucket[u] == b {
		return
	}
	if x.bucket[u] >= 0 {
		x.removeFromBucket(u)
	}
	x.buckets[b] = append(x.buckets[b], int32(u))
	x.bucket[u] = b
	x.pos[u] = int32(len(x.buckets[b]) - 1)
}

// remove unindexes unit u (e.g. its link budget is exhausted); a later
// update re-inserts it.
func (x *capIndex) remove(u int) {
	if x.bucket[u] < 0 {
		return
	}
	x.removeFromBucket(u)
	x.bucket[u] = -1
}

func (x *capIndex) removeFromBucket(u int) {
	b := x.bucket[u]
	members := x.buckets[b]
	i := x.pos[u]
	last := members[len(members)-1]
	members[i] = last
	x.pos[last] = i
	x.buckets[b] = members[:len(members)-1]
}

// searchCandidates bounds how many fitting units a query examines inside
// the first feasible bucket before committing to the best seen. Members of
// one bucket differ by at most a bucket width, so a small sample already
// pins the leftover near the bucket minimum.
const searchCandidates = 8

// search returns a unit with capacity >= need minimizing leftover() among
// the examined candidates, or -1 if no indexed unit satisfies fits. fits
// must imply capacity >= need is necessary but may add further constraints
// (second dimension, link budget); leftover orders candidates within the
// winning bucket.
func (x *capIndex) search(need float64, fits func(int) bool, leftover func(int) float64) int {
	for b := x.bucketOf(need); b < x.nb; b++ {
		best := -1
		bestLeft := 0.0
		found := 0
		for _, m := range x.buckets[b] {
			u := int(m)
			if !fits(u) {
				continue
			}
			if l := leftover(u); best == -1 || l < bestLeft {
				best, bestLeft = u, l
			}
			if found++; found >= searchCandidates {
				break
			}
		}
		if best >= 0 {
			// Any fit in this bucket beats every fit in a higher bucket by
			// construction (capacity, hence leftover, grows with bucket id).
			return best
		}
	}
	return -1
}
