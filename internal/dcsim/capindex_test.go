package dcsim

import (
	"math/rand"
	"testing"

	"thymesisflow/internal/dctrace"
)

func TestCapIndexSearchFindsSmallestFeasibleBucket(t *testing.T) {
	caps := []float64{0.1, 0.35, 0.5, 0.9, 1.0}
	x := newCapIndex(len(caps), 1.0)
	for i, c := range caps {
		x.update(i, c)
	}
	got := x.search(0.4,
		func(i int) bool { return caps[i] >= 0.4 },
		func(i int) float64 { return caps[i] - 0.4 },
	)
	if got != 2 {
		t.Fatalf("search(0.4) = unit %d (cap %.2f), want unit 2 (cap 0.50)", got, caps[got])
	}
	if got := x.search(1.5, func(int) bool { return false }, func(int) float64 { return 0 }); got != -1 {
		t.Fatalf("infeasible search returned %d, want -1", got)
	}
}

func TestCapIndexRemoveAndReinsert(t *testing.T) {
	caps := []float64{0.8, 0.8, 0.8}
	x := newCapIndex(3, 1.0)
	for i, c := range caps {
		x.update(i, c)
	}
	fits := func(i int) bool { return caps[i] >= 0.5 }
	left := func(i int) float64 { return caps[i] - 0.5 }
	x.remove(1)
	x.remove(0)
	if got := x.search(0.5, fits, left); got != 2 {
		t.Fatalf("search after removes = %d, want 2", got)
	}
	x.remove(2)
	if got := x.search(0.5, fits, left); got != -1 {
		t.Fatalf("search on empty index = %d, want -1", got)
	}
	x.update(1, 0.8)
	if got := x.search(0.5, fits, left); got != 1 {
		t.Fatalf("search after reinsert = %d, want 1", got)
	}
	// Idempotent operations must not corrupt bucket membership.
	x.remove(0)
	x.update(1, 0.8)
	if got := x.search(0.5, fits, left); got != 1 {
		t.Fatalf("search after idempotent ops = %d, want 1", got)
	}
}

// TestCapIndexAgainstLinearScan cross-checks the index against a brute
// force scan across a randomized workload of updates, removals and
// queries: the index must return a unit whose leftover is within one
// bucket width of the true best fit, and must agree exactly on
// feasibility.
func TestCapIndexAgainstLinearScan(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(9))
	caps := make([]float64, n)
	indexed := make([]bool, n)
	x := newCapIndex(n, 1.0)
	for i := range caps {
		caps[i] = rng.Float64()
		x.update(i, caps[i])
		indexed[i] = true
	}
	bucketWidth := 1.0 / capBuckets
	for iter := 0; iter < 5000; iter++ {
		switch rng.Intn(4) {
		case 0: // re-capacity a unit
			i := rng.Intn(n)
			caps[i] = rng.Float64()
			x.update(i, caps[i])
			indexed[i] = true
		case 1: // unindex a unit
			i := rng.Intn(n)
			x.remove(i)
			indexed[i] = false
		default: // query
			need := rng.Float64()
			fits := func(i int) bool { return caps[i] >= need }
			left := func(i int) float64 { return caps[i] - need }
			got := x.search(need, fits, left)
			// Brute-force best over indexed units.
			best := -1
			bestLeft := 0.0
			for i := 0; i < n; i++ {
				if !indexed[i] || !fits(i) {
					continue
				}
				if l := left(i); best == -1 || l < bestLeft {
					best, bestLeft = i, l
				}
			}
			if (got == -1) != (best == -1) {
				t.Fatalf("iter %d: feasibility mismatch: index=%d brute=%d (need %.4f)", iter, got, best, need)
			}
			if got >= 0 {
				if !fits(got) {
					t.Fatalf("iter %d: index returned non-fitting unit %d", iter, got)
				}
				if left(got) > bestLeft+bucketWidth+1e-12 {
					t.Fatalf("iter %d: leftover %.5f exceeds best %.5f + bucket width %.5f",
						iter, left(got), bestLeft, bucketWidth)
				}
			}
		}
	}
}

func TestPlacementDeterministicWithoutSampling(t *testing.T) {
	// Two models built with different seeds must now behave identically:
	// the indexed policy has no randomized component.
	a := NewFixedModel(50, 1)
	b := NewFixedModel(50, 999)
	rng := rand.New(rand.NewSource(4))
	for id := 0; id < 500; id++ {
		task := dctrace.Task{ID: id, CPU: 0.05 + 0.4*rng.Float64(), Mem: 0.05 + 0.4*rng.Float64()}
		pa, pb := a.place(task), b.place(task)
		if pa != pb {
			t.Fatalf("task %d: placement diverged across seeds (%v vs %v)", id, pa, pb)
		}
	}
}
