// Package dcsim implements the data-centre allocation simulator behind the
// paper's motivation study (Section II, Figure 1): it replays an allocation
// trace against two infrastructure models — a conventional ("fixed")
// data-centre of whole servers and a disaggregated one of separate compute
// and memory modules joined by a fully connected fabric — and measures the
// resource fragmentation index and the share of hardware that could be
// powered off.
//
// Both models use an online best-fit allocation policy without resource
// overcommitment, matching the paper's setup.
package dcsim

import (
	"container/heap"

	"thymesisflow/internal/dctrace"
)

// DefaultServers matches the Google trace configuration the paper cites:
// 12555 servers for the fixed model, 12555 compute plus 12555 memory
// modules for the disaggregated one.
const DefaultServers = 12555

// DefaultLinksPerModule is the transceiver count the paper models per
// disaggregated module.
const DefaultLinksPerModule = 16

// Result aggregates the study's metrics for one model, time-averaged over
// the run.
type Result struct {
	// FragmentationCPU/Mem: fraction of the powered-on pool's resource that
	// is stranded (powered on but unused). Lower is better.
	FragmentationCPU float64
	FragmentationMem float64
	// OffCPU/OffMem: fraction of compute/memory units that are completely
	// unused and could be switched off. Higher is better. For the fixed
	// model both equal the fraction of idle whole servers.
	OffCPU float64
	OffMem float64
	// Rejected counts allocation requests that could not be placed.
	Rejected int
	Placed   int
}

// event is an arrival or departure in the replay.
type event struct {
	at      float64
	isEnd   bool
	taskID  int
	retries int
}

// retryDelay is how long an unplaceable request waits before the scheduler
// retries it (requests queue rather than vanish; the trace's tasks
// eventually run).
const retryDelay = 120.0

// maxRetries bounds the retry queue so a pathological task cannot stall the
// replay forever.
const maxRetries = 200

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	// Process departures before arrivals at the same instant.
	return h[i].isEnd && !h[j].isEnd
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Model places and releases tasks.
type model interface {
	place(t dctrace.Task) bool
	release(t dctrace.Task)
	// snapshot returns (strandedCPU, totalOnCPU, strandedMem, totalOnMem,
	// offCPUUnits, offMemUnits, totalCPUUnits, totalMemUnits).
	snapshot() (sCPU, onCPU, sMem, onMem float64, offC, offM, totC, totM int)
}

// Run replays the trace against the model and returns metrics
// time-averaged over the steady-state window: from the 30th percentile of
// arrivals (warm-up excluded) to the last arrival (drain excluded).
func run(tasks []dctrace.Task, m model) Result {
	var events eventHeap
	byID := make(map[int]dctrace.Task, len(tasks))
	for _, t := range tasks {
		byID[t.ID] = t
		heap.Push(&events, event{at: t.Arrive, taskID: t.ID})
	}
	warmStart, measureEnd := 0.0, 0.0
	if len(tasks) > 0 {
		// The pool only reaches steady state after about one mean task
		// lifetime of arrivals; measure from whichever is later, the 30th
		// arrival percentile or one mean duration in.
		var durSum float64
		for _, t := range tasks {
			durSum += t.End - t.Arrive
		}
		meanDur := durSum / float64(len(tasks))
		warmStart = tasks[len(tasks)*3/10].Arrive
		if w := tasks[0].Arrive + 1.25*meanDur; w > warmStart {
			warmStart = w
		}
		measureEnd = tasks[len(tasks)-1].Arrive
		if measureEnd <= warmStart {
			// Degenerate short traces: fall back to the full span.
			warmStart = tasks[0].Arrive
			measureEnd = tasks[len(tasks)-1].End
		}
	}
	placed := make(map[int]bool)
	var res Result
	var lastT float64
	var wFragC, wFragM, wOffC, wOffM, wTotal float64
	for events.Len() > 0 {
		e := heap.Pop(&events).(event)
		// Clip the accounting segment [lastT, e.at] to the window.
		lo, hi := lastT, e.at
		if lo < warmStart {
			lo = warmStart
		}
		if hi > measureEnd {
			hi = measureEnd
		}
		if dt := hi - lo; dt > 0 {
			sCPU, onCPU, sMem, onMem, offC, offM, totC, totM := m.snapshot()
			if onCPU > 0 {
				wFragC += dt * sCPU / float64(totC)
			}
			if onMem > 0 {
				wFragM += dt * sMem / float64(totM)
			}
			wOffC += dt * float64(offC) / float64(totC)
			wOffM += dt * float64(offM) / float64(totM)
			wTotal += dt
		}
		lastT = e.at
		t := byID[e.taskID]
		if e.isEnd {
			if placed[t.ID] {
				m.release(t)
				placed[t.ID] = false
			}
			continue
		}
		if m.place(t) {
			placed[t.ID] = true
			res.Placed++
			dur := t.End - t.Arrive
			heap.Push(&events, event{at: e.at + dur, isEnd: true, taskID: t.ID})
		} else if e.retries < maxRetries {
			heap.Push(&events, event{at: e.at + retryDelay, taskID: t.ID, retries: e.retries + 1})
		} else {
			res.Rejected++
		}
	}
	if wTotal > 0 {
		res.FragmentationCPU = wFragC / wTotal
		res.FragmentationMem = wFragM / wTotal
		res.OffCPU = wOffC / wTotal
		res.OffMem = wOffM / wTotal
	}
	return res
}
