package dcsim

import (
	"testing"

	"thymesisflow/internal/dctrace"
)

func smallTrace(seed int64) dctrace.Config {
	cfg := dctrace.DefaultConfig()
	cfg.Seed = seed
	cfg.Tasks = 8000
	cfg.ArrivalRate = 20
	return cfg
}

func TestFixedModelPlaceRelease(t *testing.T) {
	m := NewFixedModel(4, 1)
	task := dctrace.Task{ID: 1, CPU: 0.5, Mem: 0.5}
	if !m.place(task) {
		t.Fatal("placement failed on empty model")
	}
	if _, on, _, _, offC, _, totC, _ := m.snapshot(); on != 1 || offC != 3 || totC != 4 {
		t.Fatalf("snapshot on=%v offC=%d", on, offC)
	}
	m.release(task)
	if _, on, _, _, offC, _, _, _ := m.snapshot(); on != 0 || offC != 4 {
		t.Fatalf("snapshot after release on=%v offC=%d", on, offC)
	}
}

func TestFixedModelRejectsOversize(t *testing.T) {
	m := NewFixedModel(2, 1)
	if !m.place(dctrace.Task{ID: 1, CPU: 0.9, Mem: 0.9}) ||
		!m.place(dctrace.Task{ID: 2, CPU: 0.9, Mem: 0.9}) {
		t.Fatal("initial placements failed")
	}
	if m.place(dctrace.Task{ID: 3, CPU: 0.5, Mem: 0.5}) {
		t.Fatal("placed task beyond capacity")
	}
}

func TestDisaggModelSplitsDimensions(t *testing.T) {
	// A task too big for one fixed server in combination — 0.9 CPU + 0.9
	// memory twice — still fits when CPU and memory come from different
	// modules at full utilization.
	m := NewDisaggModel(1, 2, 16, 1)
	if !m.place(dctrace.Task{ID: 1, CPU: 0.5, Mem: 1.0}) {
		t.Fatal("place 1 failed")
	}
	if !m.place(dctrace.Task{ID: 2, CPU: 0.5, Mem: 1.0}) {
		t.Fatal("place 2 failed: memory should come from second module")
	}
	sCPU, onC, _, onM, _, _, _, _ := m.snapshot()
	if onC != 1 || onM != 2 {
		t.Fatalf("on compute=%v memory=%v", onC, onM)
	}
	if sCPU != 0 {
		t.Fatalf("stranded CPU = %v, want 0 (fully packed)", sCPU)
	}
}

func TestDisaggModelLinkLimit(t *testing.T) {
	m := NewDisaggModel(1, 1, 2, 1)
	if !m.place(dctrace.Task{ID: 1, CPU: 0.1, Mem: 0.1}) ||
		!m.place(dctrace.Task{ID: 2, CPU: 0.1, Mem: 0.1}) {
		t.Fatal("placements under link budget failed")
	}
	if m.place(dctrace.Task{ID: 3, CPU: 0.1, Mem: 0.1}) {
		t.Fatal("placement beyond link budget accepted")
	}
	m.release(dctrace.Task{ID: 1})
	if !m.place(dctrace.Task{ID: 4, CPU: 0.1, Mem: 0.1}) {
		t.Fatal("link not released")
	}
}

func TestStudyDisaggregationReducesFragmentation(t *testing.T) {
	s := RunStudy(smallTrace(7), 400, DefaultLinksPerModule)
	if s.Fixed.Placed == 0 || s.Disagg.Placed == 0 {
		t.Fatal("no tasks placed")
	}
	// The headline result of Figure 1: the disaggregated model strands far
	// fewer resources than the fixed model, for both CPU and memory.
	if s.Disagg.FragmentationCPU >= s.Fixed.FragmentationCPU {
		t.Fatalf("CPU fragmentation: disagg %.3f >= fixed %.3f",
			s.Disagg.FragmentationCPU, s.Fixed.FragmentationCPU)
	}
	if s.Disagg.FragmentationMem >= s.Fixed.FragmentationMem {
		t.Fatalf("memory fragmentation: disagg %.3f >= fixed %.3f",
			s.Disagg.FragmentationMem, s.Fixed.FragmentationMem)
	}
	// And more modules can be switched off than whole servers.
	if s.Disagg.OffMem <= s.Fixed.OffMem {
		t.Fatalf("off memory: disagg %.3f <= fixed %.3f", s.Disagg.OffMem, s.Fixed.OffMem)
	}
	// The trace spans about three orders of magnitude of memory/CPU ratio.
	if s.RatioOrders < 2.0 {
		t.Fatalf("ratio spread = %.1f orders, want >= 2", s.RatioOrders)
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := RunStudy(smallTrace(3), 200, 16)
	b := RunStudy(smallTrace(3), 200, 16)
	if a != b {
		t.Fatalf("nondeterministic study: %+v vs %+v", a, b)
	}
}

func TestTraceShape(t *testing.T) {
	tasks := dctrace.Generate(smallTrace(11))
	if len(tasks) != 8000 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i].Arrive < tasks[i-1].Arrive {
			t.Fatal("trace not sorted by arrival")
		}
	}
	for _, task := range tasks {
		if task.CPU <= 0 || task.CPU > 1 || task.Mem <= 0 || task.Mem > 1 {
			t.Fatalf("demand out of range: %+v", task)
		}
		if task.End <= task.Arrive {
			t.Fatalf("non-positive duration: %+v", task)
		}
	}
}

// recountFixed re-derives FixedModel's snapshot aggregates by scanning, the
// way snapshot() worked before the O(1) incremental form.
func recountFixed(m *FixedModel) (on int, sCPU, sMem float64) {
	for i := range m.cpuFree {
		if m.tasks[i] == 0 {
			continue
		}
		on++
		sCPU += m.cpuFree[i]
		sMem += m.memFree[i]
	}
	return
}

func recountDisagg(m *DisaggModel) (onC, onM int, sC, sM float64) {
	for i := range m.cpuFree {
		if m.cpuTasks[i] != 0 {
			onC++
			sC += m.cpuFree[i]
		}
	}
	for i := range m.memFree {
		if m.memTasks[i] != 0 {
			onM++
			sM += m.memFree[i]
		}
	}
	return
}

func relClose(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if b > scale {
		scale = b
	}
	return diff <= 1e-6*scale
}

// TestIncrementalAggregatesAgree drives both models through a seeded replay
// and checks the O(1) running aggregates against a full O(n) recount at the
// end: the powered-on counts must match exactly, the stranded-capacity sums
// within 1e-6 relative (float accumulation order differs).
func TestIncrementalAggregatesAgree(t *testing.T) {
	cfg := dctrace.DefaultConfig()
	cfg.Tasks = 8000
	tasks := dctrace.Generate(cfg)

	fm := NewFixedModel(600, 1)
	run(tasks, fm)
	on, sCPU, sMem := recountFixed(fm)
	if fm.on != on {
		t.Fatalf("fixed powered-on drifted: incremental %d, recount %d", fm.on, on)
	}
	if !relClose(fm.sCPU, sCPU) || !relClose(fm.sMem, sMem) {
		t.Fatalf("fixed stranded sums drifted: incremental (%g, %g), recount (%g, %g)",
			fm.sCPU, fm.sMem, sCPU, sMem)
	}

	dm := NewDisaggModel(600, 600, DefaultLinksPerModule, 2)
	run(tasks, dm)
	onC, onM, sC, sM := recountDisagg(dm)
	if dm.onC != onC || dm.onM != onM {
		t.Fatalf("disagg powered-on drifted: incremental (%d, %d), recount (%d, %d)",
			dm.onC, dm.onM, onC, onM)
	}
	if !relClose(dm.sC, sC) || !relClose(dm.sM, sM) {
		t.Fatalf("disagg stranded sums drifted: incremental (%g, %g), recount (%g, %g)",
			dm.sC, dm.sM, sC, sM)
	}
}
