package dcsim

import (
	"testing"

	"thymesisflow/internal/dctrace"
)

func smallTrace(seed int64) dctrace.Config {
	cfg := dctrace.DefaultConfig()
	cfg.Seed = seed
	cfg.Tasks = 8000
	cfg.ArrivalRate = 20
	return cfg
}

func TestFixedModelPlaceRelease(t *testing.T) {
	m := NewFixedModel(4, 1)
	task := dctrace.Task{ID: 1, CPU: 0.5, Mem: 0.5}
	if !m.place(task) {
		t.Fatal("placement failed on empty model")
	}
	if _, on, _, _, offC, _, totC, _ := m.snapshot(); on != 1 || offC != 3 || totC != 4 {
		t.Fatalf("snapshot on=%v offC=%d", on, offC)
	}
	m.release(task)
	if _, on, _, _, offC, _, _, _ := m.snapshot(); on != 0 || offC != 4 {
		t.Fatalf("snapshot after release on=%v offC=%d", on, offC)
	}
}

func TestFixedModelRejectsOversize(t *testing.T) {
	m := NewFixedModel(2, 1)
	if !m.place(dctrace.Task{ID: 1, CPU: 0.9, Mem: 0.9}) ||
		!m.place(dctrace.Task{ID: 2, CPU: 0.9, Mem: 0.9}) {
		t.Fatal("initial placements failed")
	}
	if m.place(dctrace.Task{ID: 3, CPU: 0.5, Mem: 0.5}) {
		t.Fatal("placed task beyond capacity")
	}
}

func TestDisaggModelSplitsDimensions(t *testing.T) {
	// A task too big for one fixed server in combination — 0.9 CPU + 0.9
	// memory twice — still fits when CPU and memory come from different
	// modules at full utilization.
	m := NewDisaggModel(1, 2, 16, 1)
	if !m.place(dctrace.Task{ID: 1, CPU: 0.5, Mem: 1.0}) {
		t.Fatal("place 1 failed")
	}
	if !m.place(dctrace.Task{ID: 2, CPU: 0.5, Mem: 1.0}) {
		t.Fatal("place 2 failed: memory should come from second module")
	}
	sCPU, onC, _, onM, _, _, _, _ := m.snapshot()
	if onC != 1 || onM != 2 {
		t.Fatalf("on compute=%v memory=%v", onC, onM)
	}
	if sCPU != 0 {
		t.Fatalf("stranded CPU = %v, want 0 (fully packed)", sCPU)
	}
}

func TestDisaggModelLinkLimit(t *testing.T) {
	m := NewDisaggModel(1, 1, 2, 1)
	if !m.place(dctrace.Task{ID: 1, CPU: 0.1, Mem: 0.1}) ||
		!m.place(dctrace.Task{ID: 2, CPU: 0.1, Mem: 0.1}) {
		t.Fatal("placements under link budget failed")
	}
	if m.place(dctrace.Task{ID: 3, CPU: 0.1, Mem: 0.1}) {
		t.Fatal("placement beyond link budget accepted")
	}
	m.release(dctrace.Task{ID: 1})
	if !m.place(dctrace.Task{ID: 4, CPU: 0.1, Mem: 0.1}) {
		t.Fatal("link not released")
	}
}

func TestStudyDisaggregationReducesFragmentation(t *testing.T) {
	s := RunStudy(smallTrace(7), 400, DefaultLinksPerModule)
	if s.Fixed.Placed == 0 || s.Disagg.Placed == 0 {
		t.Fatal("no tasks placed")
	}
	// The headline result of Figure 1: the disaggregated model strands far
	// fewer resources than the fixed model, for both CPU and memory.
	if s.Disagg.FragmentationCPU >= s.Fixed.FragmentationCPU {
		t.Fatalf("CPU fragmentation: disagg %.3f >= fixed %.3f",
			s.Disagg.FragmentationCPU, s.Fixed.FragmentationCPU)
	}
	if s.Disagg.FragmentationMem >= s.Fixed.FragmentationMem {
		t.Fatalf("memory fragmentation: disagg %.3f >= fixed %.3f",
			s.Disagg.FragmentationMem, s.Fixed.FragmentationMem)
	}
	// And more modules can be switched off than whole servers.
	if s.Disagg.OffMem <= s.Fixed.OffMem {
		t.Fatalf("off memory: disagg %.3f <= fixed %.3f", s.Disagg.OffMem, s.Fixed.OffMem)
	}
	// The trace spans about three orders of magnitude of memory/CPU ratio.
	if s.RatioOrders < 2.0 {
		t.Fatalf("ratio spread = %.1f orders, want >= 2", s.RatioOrders)
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := RunStudy(smallTrace(3), 200, 16)
	b := RunStudy(smallTrace(3), 200, 16)
	if a != b {
		t.Fatalf("nondeterministic study: %+v vs %+v", a, b)
	}
}

func TestTraceShape(t *testing.T) {
	tasks := dctrace.Generate(smallTrace(11))
	if len(tasks) != 8000 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i].Arrive < tasks[i-1].Arrive {
			t.Fatal("trace not sorted by arrival")
		}
	}
	for _, task := range tasks {
		if task.CPU <= 0 || task.CPU > 1 || task.Mem <= 0 || task.Mem > 1 {
			t.Fatalf("demand out of range: %+v", task)
		}
		if task.End <= task.Arrive {
			t.Fatalf("non-positive duration: %+v", task)
		}
	}
}
