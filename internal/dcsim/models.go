package dcsim

import (
	"math/rand"

	"thymesisflow/internal/dctrace"
)

// FixedModel is the conventional data-centre: whole servers with fixed
// CPU/memory proportions; a task must fit both dimensions on one server.
type FixedModel struct {
	rng     *rand.Rand
	cpuFree []float64
	memFree []float64
	tasks   []int // active tasks per server
	where   map[int]int
}

// NewFixedModel builds a fixed data-centre of n servers.
func NewFixedModel(n int, seed int64) *FixedModel {
	m := &FixedModel{
		rng:     rand.New(rand.NewSource(seed)),
		cpuFree: make([]float64, n),
		memFree: make([]float64, n),
		tasks:   make([]int, n),
		where:   make(map[int]int),
	}
	for i := range m.cpuFree {
		m.cpuFree[i] = 1.0
		m.memFree[i] = 1.0
	}
	return m
}

func (m *FixedModel) place(t dctrace.Task) bool {
	i := bestFit(m.rng, len(m.cpuFree),
		func(i int) bool { return m.cpuFree[i] >= t.CPU && m.memFree[i] >= t.Mem },
		func(i int) float64 { return (m.cpuFree[i] - t.CPU) + (m.memFree[i] - t.Mem) },
	)
	if i < 0 {
		return false
	}
	m.cpuFree[i] -= t.CPU
	m.memFree[i] -= t.Mem
	m.tasks[i]++
	m.where[t.ID] = i
	return true
}

func (m *FixedModel) release(t dctrace.Task) {
	i := m.where[t.ID]
	m.cpuFree[i] += t.CPU
	m.memFree[i] += t.Mem
	m.tasks[i]--
	delete(m.where, t.ID)
}

func (m *FixedModel) snapshot() (sCPU, onCPU, sMem, onMem float64, offC, offM, totC, totM int) {
	totC, totM = len(m.cpuFree), len(m.memFree)
	for i := range m.cpuFree {
		if m.tasks[i] == 0 {
			offC++
			offM++
			continue
		}
		onCPU++
		onMem++
		sCPU += m.cpuFree[i]
		sMem += m.memFree[i]
	}
	return
}

// DisaggModel is the disaggregated data-centre: separate compute and memory
// modules; a task takes CPU from one compute module and memory from one
// memory module, consuming one fabric link on each side of the pairing.
// The fabric is fully connected, so any compute module can reach any memory
// module while links remain (Section II: 16 links per module).
type DisaggModel struct {
	rng *rand.Rand

	cpuFree  []float64
	cpuTasks []int
	cpuLinks []int

	memFree  []float64
	memTasks []int
	memLinks []int

	where map[int][2]int
}

// NewDisaggModel builds nCompute compute and nMemory memory modules with
// the given link budget per module.
func NewDisaggModel(nCompute, nMemory, links int, seed int64) *DisaggModel {
	m := &DisaggModel{
		rng:      rand.New(rand.NewSource(seed)),
		cpuFree:  make([]float64, nCompute),
		cpuTasks: make([]int, nCompute),
		cpuLinks: make([]int, nCompute),
		memFree:  make([]float64, nMemory),
		memTasks: make([]int, nMemory),
		memLinks: make([]int, nMemory),
		where:    make(map[int][2]int),
	}
	for i := range m.cpuFree {
		m.cpuFree[i] = 1.0
		m.cpuLinks[i] = links
	}
	for i := range m.memFree {
		m.memFree[i] = 1.0
		m.memLinks[i] = links
	}
	return m
}

func (m *DisaggModel) place(t dctrace.Task) bool {
	ci := bestFit(m.rng, len(m.cpuFree),
		func(i int) bool { return m.cpuFree[i] >= t.CPU && m.cpuLinks[i] > 0 },
		func(i int) float64 { return m.cpuFree[i] - t.CPU },
	)
	if ci < 0 {
		return false
	}
	mi := bestFit(m.rng, len(m.memFree),
		func(i int) bool { return m.memFree[i] >= t.Mem && m.memLinks[i] > 0 },
		func(i int) float64 { return m.memFree[i] - t.Mem },
	)
	if mi < 0 {
		return false
	}
	m.cpuFree[ci] -= t.CPU
	m.cpuTasks[ci]++
	m.cpuLinks[ci]--
	m.memFree[mi] -= t.Mem
	m.memTasks[mi]++
	m.memLinks[mi]--
	m.where[t.ID] = [2]int{ci, mi}
	return true
}

func (m *DisaggModel) release(t dctrace.Task) {
	w := m.where[t.ID]
	ci, mi := w[0], w[1]
	m.cpuFree[ci] += t.CPU
	m.cpuTasks[ci]--
	m.cpuLinks[ci]++
	m.memFree[mi] += t.Mem
	m.memTasks[mi]--
	m.memLinks[mi]++
	delete(m.where, t.ID)
}

func (m *DisaggModel) snapshot() (sCPU, onCPU, sMem, onMem float64, offC, offM, totC, totM int) {
	totC, totM = len(m.cpuFree), len(m.memFree)
	for i := range m.cpuFree {
		if m.cpuTasks[i] == 0 {
			offC++
			continue
		}
		onCPU++
		sCPU += m.cpuFree[i]
	}
	for i := range m.memFree {
		if m.memTasks[i] == 0 {
			offM++
			continue
		}
		onMem++
		sMem += m.memFree[i]
	}
	return
}

// Study runs the Figure 1 comparison: the same trace against both models.
type Study struct {
	Fixed  Result
	Disagg Result
	// RatioOrders is the log10 spread of memory/CPU ratios in the trace.
	RatioOrders float64
}

// RunStudy executes the motivation study with the given trace configuration
// and infrastructure size.
func RunStudy(traceCfg dctrace.Config, servers, links int) Study {
	tasks := dctrace.Generate(traceCfg)
	fixed := run(tasks, NewFixedModel(servers, traceCfg.Seed+100))
	disagg := run(tasks, NewDisaggModel(servers, servers, links, traceCfg.Seed+200))
	return Study{
		Fixed:       fixed,
		Disagg:      disagg,
		RatioOrders: dctrace.RatioSpreadOrders(tasks),
	}
}
