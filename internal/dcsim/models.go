package dcsim

import (
	"sync"

	"thymesisflow/internal/dctrace"
)

// FixedModel is the conventional data-centre: whole servers with fixed
// CPU/memory proportions; a task must fit both dimensions on one server.
//
// Placement is near-best-fit on combined free capacity (CPU + memory, the
// seed policy's leftover metric) served from a capIndex, so a placement
// costs O(1) amortized instead of a linear scan over 12,555 servers.
type FixedModel struct {
	cpuFree []float64
	memFree []float64
	tasks   []int // active tasks per server
	where   map[int]int
	idx     *capIndex // keyed on cpuFree+memFree

	// Running snapshot aggregates, maintained incrementally on every
	// place/release so the replay's per-event snapshot costs O(1) instead
	// of a scan over all servers (the scan dominated the full-scale Fig1
	// study: ~2 events per task, 12555 servers each).
	on         int     // servers with at least one task
	sCPU, sMem float64 // free capacity summed over powered-on servers
}

// NewFixedModel builds a fixed data-centre of n servers. The seed argument
// is retained for call-site compatibility: the indexed policy is
// deterministic and no longer samples candidates randomly.
func NewFixedModel(n int, seed int64) *FixedModel {
	_ = seed
	m := &FixedModel{
		cpuFree: make([]float64, n),
		memFree: make([]float64, n),
		tasks:   make([]int, n),
		where:   make(map[int]int),
		idx:     newCapIndex(n, 2.0),
	}
	for i := range m.cpuFree {
		m.cpuFree[i] = 1.0
		m.memFree[i] = 1.0
		m.idx.update(i, 2.0)
	}
	return m
}

func (m *FixedModel) place(t dctrace.Task) bool {
	i := m.idx.search(t.CPU+t.Mem,
		func(i int) bool { return m.cpuFree[i] >= t.CPU && m.memFree[i] >= t.Mem },
		func(i int) float64 { return (m.cpuFree[i] - t.CPU) + (m.memFree[i] - t.Mem) },
	)
	if i < 0 {
		return false
	}
	m.cpuFree[i] -= t.CPU
	m.memFree[i] -= t.Mem
	if m.tasks[i] == 0 {
		// Server powers on: its remaining free capacity joins the
		// stranded pool.
		m.on++
		m.sCPU += m.cpuFree[i]
		m.sMem += m.memFree[i]
	} else {
		m.sCPU -= t.CPU
		m.sMem -= t.Mem
	}
	m.tasks[i]++
	m.where[t.ID] = i
	m.idx.update(i, m.cpuFree[i]+m.memFree[i])
	return true
}

func (m *FixedModel) release(t dctrace.Task) {
	i := m.where[t.ID]
	if m.tasks[i] == 1 {
		// Server powers off: the free capacity it contributed while on
		// (pre-release, excluding the departing task's share) leaves the
		// pool.
		m.on--
		m.sCPU -= m.cpuFree[i]
		m.sMem -= m.memFree[i]
	} else {
		m.sCPU += t.CPU
		m.sMem += t.Mem
	}
	m.cpuFree[i] += t.CPU
	m.memFree[i] += t.Mem
	m.tasks[i]--
	delete(m.where, t.ID)
	m.idx.update(i, m.cpuFree[i]+m.memFree[i])
}

// clampPos guards the incremental float aggregates: a fully-packed pool's
// stranded sum is analytically zero but may come out as a tiny negative
// after a long chain of additions and subtractions.
func clampPos(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func (m *FixedModel) snapshot() (sCPU, onCPU, sMem, onMem float64, offC, offM, totC, totM int) {
	totC, totM = len(m.cpuFree), len(m.memFree)
	onCPU, onMem = float64(m.on), float64(m.on)
	sCPU, sMem = clampPos(m.sCPU), clampPos(m.sMem)
	offC, offM = totC-m.on, totM-m.on
	return
}

// DisaggModel is the disaggregated data-centre: separate compute and memory
// modules; a task takes CPU from one compute module and memory from one
// memory module, consuming one fabric link on each side of the pairing.
// The fabric is fully connected, so any compute module can reach any memory
// module while links remain (Section II: 16 links per module).
//
// Each side keeps its own capIndex on free capacity; modules whose link
// budget is exhausted are unindexed until a link frees up, so the link
// constraint costs nothing at query time.
type DisaggModel struct {
	cpuFree  []float64
	cpuTasks []int
	cpuLinks []int
	cpuIdx   *capIndex

	memFree  []float64
	memTasks []int
	memLinks []int
	memIdx   *capIndex

	where map[int][2]int

	// Running snapshot aggregates per side (see FixedModel).
	onC, onM int
	sC, sM   float64
}

// NewDisaggModel builds nCompute compute and nMemory memory modules with
// the given link budget per module. The seed argument is retained for
// call-site compatibility; placement is deterministic.
func NewDisaggModel(nCompute, nMemory, links int, seed int64) *DisaggModel {
	_ = seed
	m := &DisaggModel{
		cpuFree:  make([]float64, nCompute),
		cpuTasks: make([]int, nCompute),
		cpuLinks: make([]int, nCompute),
		cpuIdx:   newCapIndex(nCompute, 1.0),
		memFree:  make([]float64, nMemory),
		memTasks: make([]int, nMemory),
		memLinks: make([]int, nMemory),
		memIdx:   newCapIndex(nMemory, 1.0),
		where:    make(map[int][2]int),
	}
	for i := range m.cpuFree {
		m.cpuFree[i] = 1.0
		m.cpuLinks[i] = links
		if links > 0 {
			m.cpuIdx.update(i, 1.0)
		}
	}
	for i := range m.memFree {
		m.memFree[i] = 1.0
		m.memLinks[i] = links
		if links > 0 {
			m.memIdx.update(i, 1.0)
		}
	}
	return m
}

// refile re-indexes one side's module after a capacity or link change.
func refile(idx *capIndex, unit int, free float64, links int) {
	if links <= 0 {
		idx.remove(unit)
		return
	}
	idx.update(unit, free)
}

func (m *DisaggModel) place(t dctrace.Task) bool {
	ci := m.cpuIdx.search(t.CPU,
		func(i int) bool { return m.cpuFree[i] >= t.CPU },
		func(i int) float64 { return m.cpuFree[i] - t.CPU },
	)
	if ci < 0 {
		return false
	}
	mi := m.memIdx.search(t.Mem,
		func(i int) bool { return m.memFree[i] >= t.Mem },
		func(i int) float64 { return m.memFree[i] - t.Mem },
	)
	if mi < 0 {
		return false
	}
	m.cpuFree[ci] -= t.CPU
	if m.cpuTasks[ci] == 0 {
		m.onC++
		m.sC += m.cpuFree[ci]
	} else {
		m.sC -= t.CPU
	}
	m.cpuTasks[ci]++
	m.cpuLinks[ci]--
	refile(m.cpuIdx, ci, m.cpuFree[ci], m.cpuLinks[ci])
	m.memFree[mi] -= t.Mem
	if m.memTasks[mi] == 0 {
		m.onM++
		m.sM += m.memFree[mi]
	} else {
		m.sM -= t.Mem
	}
	m.memTasks[mi]++
	m.memLinks[mi]--
	refile(m.memIdx, mi, m.memFree[mi], m.memLinks[mi])
	m.where[t.ID] = [2]int{ci, mi}
	return true
}

func (m *DisaggModel) release(t dctrace.Task) {
	w := m.where[t.ID]
	ci, mi := w[0], w[1]
	if m.cpuTasks[ci] == 1 {
		m.onC--
		m.sC -= m.cpuFree[ci] // pre-release contribution (see FixedModel)
	} else {
		m.sC += t.CPU
	}
	m.cpuFree[ci] += t.CPU
	m.cpuTasks[ci]--
	m.cpuLinks[ci]++
	refile(m.cpuIdx, ci, m.cpuFree[ci], m.cpuLinks[ci])
	if m.memTasks[mi] == 1 {
		m.onM--
		m.sM -= m.memFree[mi]
	} else {
		m.sM += t.Mem
	}
	m.memFree[mi] += t.Mem
	m.memTasks[mi]--
	m.memLinks[mi]++
	refile(m.memIdx, mi, m.memFree[mi], m.memLinks[mi])
	delete(m.where, t.ID)
}

func (m *DisaggModel) snapshot() (sCPU, onCPU, sMem, onMem float64, offC, offM, totC, totM int) {
	totC, totM = len(m.cpuFree), len(m.memFree)
	onCPU, onMem = float64(m.onC), float64(m.onM)
	sCPU, sMem = clampPos(m.sC), clampPos(m.sM)
	offC, offM = totC-m.onC, totM-m.onM
	return
}

// Study runs the Figure 1 comparison: the same trace against both models.
type Study struct {
	Fixed  Result
	Disagg Result
	// RatioOrders is the log10 spread of memory/CPU ratios in the trace.
	RatioOrders float64
}

// RunStudy executes the motivation study with the given trace configuration
// and infrastructure size. The two model replays are independent (each owns
// its event heap and placement state; the generated trace is shared
// read-only), so they run concurrently — the results are deterministic
// either way.
func RunStudy(traceCfg dctrace.Config, servers, links int) Study {
	tasks := dctrace.Generate(traceCfg)
	var fixed, disagg Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fixed = run(tasks, NewFixedModel(servers, traceCfg.Seed+100))
	}()
	disagg = run(tasks, NewDisaggModel(servers, servers, links, traceCfg.Seed+200))
	wg.Wait()
	return Study{
		Fixed:       fixed,
		Disagg:      disagg,
		RatioOrders: dctrace.RatioSpreadOrders(tasks),
	}
}
