// Package phy models the physical network layer of the ThymesisFlow
// prototype (Section V): GTY transceivers at 25 Gbit/s, bonded in groups of
// four to form 100 Gbit/s network-facing channels, with serDES crossing
// latencies and optional frame corruption/loss injection used to exercise
// the LLC replay protocol.
//
// The prototype's Aurora-based network pipelines are point-to-point over
// direct-attached copper; a Channel here is likewise a unidirectional
// point-to-point medium. Bidirectional links pair two Channels.
package phy

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"thymesisflow/internal/sim"
	"thymesisflow/internal/trace"
)

// LaneGbps is the line rate of one GTY transceiver lane.
const LaneGbps = 25.0

// LanesPerChannel is the datalink-layer bonding factor of the prototype:
// four lanes per network-facing channel (4 x 25 = 100 Gbit/s).
const LanesPerChannel = 4

// GiB is 2^30 bytes, the unit the paper reports bandwidth in.
const GiB = 1 << 30

// ChannelBytesPerSec is the theoretical maximum of one channel. The paper
// plots this as "ThymesisFlow theoretical maximum (12.5 GiB/s)".
const ChannelBytesPerSec = 12.5 * GiB

// SerdesCrossing is the latency of one serDES crossing. The prototype's
// ~950 ns flit RTT comprises four FPGA-stack crossings and six serDES
// crossings (Section V); see FPGAStackCrossing.
const SerdesCrossing = 50 * sim.Nanosecond

// FPGAStackCrossing is the latency of one crossing of the OpenCAPI FPGA
// stack. 4*162.5ns + 6*50ns = 950 ns, the published datapath flit RTT.
const FPGAStackCrossing = sim.Time(162.5 * float64(sim.Nanosecond))

// FaultConfig controls error injection on a channel.
type FaultConfig struct {
	// CorruptProb is the probability that a delivered frame arrives with a
	// CRC error (triggering an LLC replay).
	CorruptProb float64
	// DropProb is the probability that a frame is lost entirely (triggering
	// a sequence-gap replay at the receiver).
	DropProb float64
	// Seed seeds the channel's private PRNG.
	Seed int64
}

// Window activates a fault regime during [From, To) of virtual time. Outside
// every window the schedule's base configuration applies. Windows model
// transient events — CRC bursts from a marginal transceiver, link flaps
// (DropProb 1 for the flap duration), or stepped loss sweeps.
type Window struct {
	From, To    sim.Time
	CorruptProb float64
	DropProb    float64
}

// FaultSchedule lays time-windowed fault regimes over a base configuration.
// The schedule is evaluated at each frame's transmit instant, so campaigns
// can script "clean -> burst -> clean -> flap" timelines on a live channel
// without touching it mid-run. The channel's PRNG is seeded once from
// Base.Seed; window boundaries change probabilities, never the random
// stream, which keeps a scheduled run reproducible from its seed alone.
type FaultSchedule struct {
	Base    FaultConfig
	Windows []Window
}

// At returns the fault regime in force at virtual time t. Overlapping
// windows resolve to the first match in slice order.
func (s FaultSchedule) At(t sim.Time) FaultConfig {
	for _, w := range s.Windows {
		if t >= w.From && t < w.To {
			return FaultConfig{CorruptProb: w.CorruptProb, DropProb: w.DropProb, Seed: s.Base.Seed}
		}
	}
	return s.Base
}

// Delivery describes one frame arriving at the far end of a channel.
type Delivery struct {
	Payload   any
	Bytes     int
	Corrupted bool
	// Aux rides along with the frame for sender-side metadata the receiver
	// needs when the two ends live on different simulation kernels (the LLC
	// carries latency-attribution records here on split links). Nil on
	// same-kernel channels.
	Aux any
}

// Injector carries a delivery across a kernel boundary: the shard runtime's
// Conduit implements it. Send stages fn to run at absolute virtual time
// `at` on the receiving kernel, ordered as if both ends shared one kernel.
type Injector interface {
	Send(at sim.Time, fn func())
}

// Channel is a unidirectional, serialized transmission medium running at
// the bonded-lane rate. Frames are delivered in transmission order after
// serialization plus crossing latency. Lost frames are simply never
// delivered (the receiver detects the sequence gap).
type Channel struct {
	k        *sim.Kernel
	name     string
	pipe     *sim.Pipe
	lanes    int
	oneWay   sim.Time
	faults   FaultConfig
	schedule *FaultSchedule
	rng      *rand.Rand
	deliver  func(Delivery)
	remote   Injector // non-nil when the receiver lives on another kernel

	// Counters are atomic: the simulation mutates them from the kernel
	// goroutine while traced/parallel runs may snapshot Stats concurrently
	// from a collector goroutine.
	sent      atomic.Int64
	dropped   atomic.Int64
	corrupted atomic.Int64
}

// NewChannel creates a channel with the given number of bonded lanes. The
// one-way latency covers the serDES crossings the frame experiences on this
// hop (transmit + receive side).
func NewChannel(k *sim.Kernel, name string, lanes int, oneWay sim.Time, faults FaultConfig) *Channel {
	if lanes <= 0 {
		lanes = LanesPerChannel
	}
	rate := float64(lanes) / LanesPerChannel * ChannelBytesPerSec
	return &Channel{
		k:      k,
		name:   name,
		pipe:   sim.NewPipe(k, rate),
		lanes:  lanes,
		oneWay: oneWay,
		faults: faults,
		rng:    rand.New(rand.NewSource(faults.Seed)),
	}
}

// Name returns the channel name.
func (c *Channel) Name() string { return c.name }

// Rate returns the channel's line rate in bytes/sec.
func (c *Channel) Rate() float64 { return c.pipe.Rate() }

// Pipe exposes the serialization pipe (shared with the analytic bulk model
// so both transaction-level and bulk traffic contend for the same capacity).
func (c *Channel) Pipe() *sim.Pipe { return c.pipe }

// OneWayLatency returns the configured crossing latency.
func (c *Channel) OneWayLatency() sim.Time { return c.oneWay }

// CrossingPS returns the crossing latency in picoseconds — the flight
// portion the latency-attribution layer splits out of a frame's wire time
// (the remainder is serialization and queueing).
func (c *Channel) CrossingPS() int64 { return int64(c.oneWay) }

// OnDeliver installs the receive handler (the far end's LLC Rx).
func (c *Channel) OnDeliver(fn func(Delivery)) { c.deliver = fn }

// SetRemote marks the channel as a shard boundary: deliveries are handed to
// the injector (which must route to the receiver's kernel) instead of being
// scheduled locally. The channel's own kernel must be the transmit side's.
func (c *Channel) SetRemote(inj Injector) { c.remote = inj }

// Transmit serializes a frame of n bytes onto the channel and schedules its
// delivery. Error injection may corrupt or drop it.
func (c *Channel) Transmit(payload any, n int) {
	c.TransmitAux(payload, n, nil)
}

// TransmitAux is Transmit with sender-side metadata attached to the
// delivery (see Delivery.Aux).
func (c *Channel) TransmitAux(payload any, n int, aux any) {
	if c.deliver == nil {
		panic(fmt.Sprintf("phy: channel %s has no receiver", c.name))
	}
	c.sent.Add(1)
	faults := c.faults
	if c.schedule != nil {
		faults = c.schedule.At(c.k.Now())
	}
	_, done := c.pipe.Reserve(int64(n))
	tr := c.k.Tracer()
	if faults.DropProb > 0 && c.rng.Float64() < faults.DropProb {
		c.dropped.Add(1)
		if tr != nil {
			tr.Instant(trace.LayerPhy, "drop", c.k.NowPS())
		}
		return
	}
	corrupt := faults.CorruptProb > 0 && c.rng.Float64() < faults.CorruptProb
	if corrupt {
		c.corrupted.Add(1)
		if tr != nil {
			tr.Instant(trace.LayerPhy, "corrupt", c.k.NowPS())
		}
	}
	if tr != nil {
		// The frame's time on the wire: serialization queueing plus the
		// crossing latency, ending at the delivery instant.
		tr.Span(trace.LayerPhy, "xmit", c.k.NowPS(), int64(done+c.oneWay))
	}
	d := Delivery{Payload: payload, Bytes: n, Corrupted: corrupt, Aux: aux}
	if c.remote != nil {
		c.remote.Send(done+c.oneWay, func() { c.deliver(d) })
		return
	}
	c.k.ScheduleAt(done+c.oneWay, func() { c.deliver(d) })
}

// Stats reports frames sent, dropped, and corrupted since creation. The
// counters are read atomically, so a metrics collector may snapshot a
// channel while its simulation goroutine is still transmitting.
func (c *Channel) Stats() (sent, dropped, corrupted int64) {
	return c.sent.Load(), c.dropped.Load(), c.corrupted.Load()
}

// SetFaults replaces the fault configuration (used by ablation benches to
// sweep loss rates mid-run). It clears any installed schedule.
func (c *Channel) SetFaults(f FaultConfig) {
	c.faults = f
	c.schedule = nil
	c.rng = rand.New(rand.NewSource(f.Seed))
}

// SetSchedule installs a time-windowed fault schedule, replacing the static
// configuration. The PRNG is reseeded from the schedule's base seed so a
// campaign is reproducible regardless of traffic sent before installation.
func (c *Channel) SetSchedule(s FaultSchedule) {
	c.schedule = &s
	c.faults = s.Base
	c.rng = rand.New(rand.NewSource(s.Base.Seed))
}

// Link is a bidirectional point-to-point connection: one channel per
// direction.
type Link struct {
	AtoB *Channel
	BtoA *Channel
}

// NewLink builds a bidirectional link from two symmetric channels.
func NewLink(k *sim.Kernel, name string, lanes int, oneWay sim.Time, faults FaultConfig) *Link {
	return NewLinkSplit(k, k, name, lanes, oneWay, faults)
}

// NewLinkSplit builds a link whose two ends live on different kernels: the
// A-side transmit channel (AtoB) runs on kA, the B-side transmit channel
// (BtoA) on kB. Each channel's clock, serialization pipe, fault PRNG, and
// tracer belong to its transmit side, so seeded fault streams are drawn in
// local transmit order exactly as on a shared kernel. Callers must install
// an Injector (SetRemote) on both channels before traffic flows, or
// deliveries would be scheduled on the transmitter's kernel. With kA == kB
// this is NewLink.
func NewLinkSplit(kA, kB *sim.Kernel, name string, lanes int, oneWay sim.Time, faults FaultConfig) *Link {
	f2 := faults
	f2.Seed = faults.Seed + 1
	return &Link{
		AtoB: NewChannel(kA, name+".fwd", lanes, oneWay, faults),
		BtoA: NewChannel(kB, name+".rev", lanes, oneWay, f2),
	}
}
