// Package phy models the physical network layer of the ThymesisFlow
// prototype (Section V): GTY transceivers at 25 Gbit/s, bonded in groups of
// four to form 100 Gbit/s network-facing channels, with serDES crossing
// latencies and optional frame corruption/loss injection used to exercise
// the LLC replay protocol.
//
// The prototype's Aurora-based network pipelines are point-to-point over
// direct-attached copper; a Channel here is likewise a unidirectional
// point-to-point medium. Bidirectional links pair two Channels.
package phy

import (
	"fmt"
	"math/rand"

	"thymesisflow/internal/sim"
	"thymesisflow/internal/trace"
)

// LaneGbps is the line rate of one GTY transceiver lane.
const LaneGbps = 25.0

// LanesPerChannel is the datalink-layer bonding factor of the prototype:
// four lanes per network-facing channel (4 x 25 = 100 Gbit/s).
const LanesPerChannel = 4

// GiB is 2^30 bytes, the unit the paper reports bandwidth in.
const GiB = 1 << 30

// ChannelBytesPerSec is the theoretical maximum of one channel. The paper
// plots this as "ThymesisFlow theoretical maximum (12.5 GiB/s)".
const ChannelBytesPerSec = 12.5 * GiB

// SerdesCrossing is the latency of one serDES crossing. The prototype's
// ~950 ns flit RTT comprises four FPGA-stack crossings and six serDES
// crossings (Section V); see FPGAStackCrossing.
const SerdesCrossing = 50 * sim.Nanosecond

// FPGAStackCrossing is the latency of one crossing of the OpenCAPI FPGA
// stack. 4*162.5ns + 6*50ns = 950 ns, the published datapath flit RTT.
const FPGAStackCrossing = sim.Time(162.5 * float64(sim.Nanosecond))

// FaultConfig controls error injection on a channel.
type FaultConfig struct {
	// CorruptProb is the probability that a delivered frame arrives with a
	// CRC error (triggering an LLC replay).
	CorruptProb float64
	// DropProb is the probability that a frame is lost entirely (triggering
	// a sequence-gap replay at the receiver).
	DropProb float64
	// Seed seeds the channel's private PRNG.
	Seed int64
}

// Delivery describes one frame arriving at the far end of a channel.
type Delivery struct {
	Payload   any
	Bytes     int
	Corrupted bool
}

// Channel is a unidirectional, serialized transmission medium running at
// the bonded-lane rate. Frames are delivered in transmission order after
// serialization plus crossing latency. Lost frames are simply never
// delivered (the receiver detects the sequence gap).
type Channel struct {
	k       *sim.Kernel
	name    string
	pipe    *sim.Pipe
	lanes   int
	oneWay  sim.Time
	faults  FaultConfig
	rng     *rand.Rand
	deliver func(Delivery)

	sent      int64
	dropped   int64
	corrupted int64
}

// NewChannel creates a channel with the given number of bonded lanes. The
// one-way latency covers the serDES crossings the frame experiences on this
// hop (transmit + receive side).
func NewChannel(k *sim.Kernel, name string, lanes int, oneWay sim.Time, faults FaultConfig) *Channel {
	if lanes <= 0 {
		lanes = LanesPerChannel
	}
	rate := float64(lanes) / LanesPerChannel * ChannelBytesPerSec
	return &Channel{
		k:      k,
		name:   name,
		pipe:   sim.NewPipe(k, rate),
		lanes:  lanes,
		oneWay: oneWay,
		faults: faults,
		rng:    rand.New(rand.NewSource(faults.Seed)),
	}
}

// Name returns the channel name.
func (c *Channel) Name() string { return c.name }

// Rate returns the channel's line rate in bytes/sec.
func (c *Channel) Rate() float64 { return c.pipe.Rate() }

// Pipe exposes the serialization pipe (shared with the analytic bulk model
// so both transaction-level and bulk traffic contend for the same capacity).
func (c *Channel) Pipe() *sim.Pipe { return c.pipe }

// OneWayLatency returns the configured crossing latency.
func (c *Channel) OneWayLatency() sim.Time { return c.oneWay }

// OnDeliver installs the receive handler (the far end's LLC Rx).
func (c *Channel) OnDeliver(fn func(Delivery)) { c.deliver = fn }

// Transmit serializes a frame of n bytes onto the channel and schedules its
// delivery. Error injection may corrupt or drop it.
func (c *Channel) Transmit(payload any, n int) {
	if c.deliver == nil {
		panic(fmt.Sprintf("phy: channel %s has no receiver", c.name))
	}
	c.sent++
	_, done := c.pipe.Reserve(int64(n))
	tr := c.k.Tracer()
	if c.faults.DropProb > 0 && c.rng.Float64() < c.faults.DropProb {
		c.dropped++
		if tr != nil {
			tr.Instant(trace.LayerPhy, "drop", c.k.NowPS())
		}
		return
	}
	corrupt := c.faults.CorruptProb > 0 && c.rng.Float64() < c.faults.CorruptProb
	if corrupt {
		c.corrupted++
		if tr != nil {
			tr.Instant(trace.LayerPhy, "corrupt", c.k.NowPS())
		}
	}
	if tr != nil {
		// The frame's time on the wire: serialization queueing plus the
		// crossing latency, ending at the delivery instant.
		tr.Span(trace.LayerPhy, "xmit", c.k.NowPS(), int64(done+c.oneWay))
	}
	d := Delivery{Payload: payload, Bytes: n, Corrupted: corrupt}
	c.k.ScheduleAt(done+c.oneWay, func() { c.deliver(d) })
}

// Stats reports frames sent, dropped, and corrupted since creation.
func (c *Channel) Stats() (sent, dropped, corrupted int64) {
	return c.sent, c.dropped, c.corrupted
}

// SetFaults replaces the fault configuration (used by ablation benches to
// sweep loss rates mid-run).
func (c *Channel) SetFaults(f FaultConfig) {
	c.faults = f
	c.rng = rand.New(rand.NewSource(f.Seed))
}

// Link is a bidirectional point-to-point connection: one channel per
// direction.
type Link struct {
	AtoB *Channel
	BtoA *Channel
}

// NewLink builds a bidirectional link from two symmetric channels.
func NewLink(k *sim.Kernel, name string, lanes int, oneWay sim.Time, faults FaultConfig) *Link {
	f2 := faults
	f2.Seed = faults.Seed + 1
	return &Link{
		AtoB: NewChannel(k, name+".fwd", lanes, oneWay, faults),
		BtoA: NewChannel(k, name+".rev", lanes, oneWay, f2),
	}
}
