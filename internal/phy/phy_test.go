package phy

import (
	"testing"

	"thymesisflow/internal/sim"
)

func TestChannelRate(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "c", LanesPerChannel, 0, FaultConfig{})
	if c.Rate() != ChannelBytesPerSec {
		t.Fatalf("4-lane rate = %v, want %v", c.Rate(), float64(ChannelBytesPerSec))
	}
	c8 := NewChannel(k, "c8", 8, 0, FaultConfig{})
	if c8.Rate() != 2*ChannelBytesPerSec {
		t.Fatalf("8-lane rate = %v, want %v", c8.Rate(), 2*float64(ChannelBytesPerSec))
	}
}

func TestChannelDeliveryLatency(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "c", LanesPerChannel, 2*SerdesCrossing, FaultConfig{})
	var at sim.Time
	c.OnDeliver(func(d Delivery) { at = k.Now() })
	c.Transmit("x", 512)
	k.Run()
	ser := sim.DurationForBytes(512, ChannelBytesPerSec)
	want := ser + 2*SerdesCrossing
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestChannelSerializes(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "c", LanesPerChannel, 0, FaultConfig{})
	var times []sim.Time
	c.OnDeliver(func(d Delivery) { times = append(times, k.Now()) })
	c.Transmit(1, 1024)
	c.Transmit(2, 1024)
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[1] != 2*times[0] {
		t.Fatalf("no serialization: %v", times)
	}
}

func TestChannelDropAndCorrupt(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "c", LanesPerChannel, 0, FaultConfig{DropProb: 0.3, CorruptProb: 0.3, Seed: 5})
	delivered, corrupted := 0, 0
	c.OnDeliver(func(d Delivery) {
		delivered++
		if d.Corrupted {
			corrupted++
		}
	})
	const n = 1000
	for i := 0; i < n; i++ {
		c.Transmit(i, 64)
	}
	k.Run()
	sent, dropped, corr := c.Stats()
	if sent != n {
		t.Fatalf("sent = %d", sent)
	}
	if delivered+int(dropped) != n {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, dropped, n)
	}
	if dropped < 200 || dropped > 400 {
		t.Fatalf("dropped = %d, want ~300", dropped)
	}
	if corrupted != int(corr) || corrupted == 0 {
		t.Fatalf("corrupted = %d (stat %d)", corrupted, corr)
	}
}

// TestFaultScheduleWindows injects losses only inside a scripted window:
// traffic before and after the window must pass untouched.
func TestFaultScheduleWindows(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "c", LanesPerChannel, 0, FaultConfig{})
	c.SetSchedule(FaultSchedule{
		Base: FaultConfig{Seed: 9},
		Windows: []Window{
			{From: 10 * sim.Microsecond, To: 20 * sim.Microsecond, DropProb: 1},
		},
	})
	delivered := 0
	c.OnDeliver(func(d Delivery) { delivered++ })
	// One frame per microsecond for 30 us; serialization of 64B is negligible.
	for i := 0; i < 30; i++ {
		k.Schedule(sim.Time(i)*sim.Microsecond, func() { c.Transmit("f", 64) })
	}
	k.Run()
	sent, dropped, _ := c.Stats()
	if sent != 30 {
		t.Fatalf("sent = %d", sent)
	}
	if dropped != 10 {
		t.Fatalf("dropped = %d, want exactly the 10 in-window frames", dropped)
	}
	if delivered != 20 {
		t.Fatalf("delivered = %d, want 20", delivered)
	}
}

// TestFaultScheduleDeterministic replays the same schedule twice and
// requires identical per-frame outcomes.
func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() []bool {
		k := sim.NewKernel()
		c := NewChannel(k, "c", LanesPerChannel, 0, FaultConfig{})
		c.SetSchedule(FaultSchedule{
			Base: FaultConfig{DropProb: 0.1, CorruptProb: 0.1, Seed: 42},
			Windows: []Window{
				{From: 5 * sim.Microsecond, To: 15 * sim.Microsecond, DropProb: 0.5, CorruptProb: 0.3},
			},
		})
		var outcomes []bool
		c.OnDeliver(func(d Delivery) { outcomes = append(outcomes, d.Corrupted) })
		for i := 0; i < 200; i++ {
			k.Schedule(sim.Time(i)*100*sim.Nanosecond, func() { c.Transmit("f", 64) })
		}
		k.Run()
		return outcomes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs between identical runs", i)
		}
	}
}

// TestScheduleAtPicksFirstMatch documents overlapping-window resolution.
func TestScheduleAtPicksFirstMatch(t *testing.T) {
	s := FaultSchedule{
		Base: FaultConfig{DropProb: 0.01},
		Windows: []Window{
			{From: 0, To: 10, DropProb: 0.5},
			{From: 5, To: 20, DropProb: 0.9},
		},
	}
	if got := s.At(7).DropProb; got != 0.5 {
		t.Fatalf("At(7).DropProb = %v, want first window's 0.5", got)
	}
	if got := s.At(15).DropProb; got != 0.9 {
		t.Fatalf("At(15).DropProb = %v", got)
	}
	if got := s.At(25).DropProb; got != 0.01 {
		t.Fatalf("At(25).DropProb = %v, want base", got)
	}
}

func TestTransmitWithoutReceiverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k := sim.NewKernel()
	NewChannel(k, "c", 4, 0, FaultConfig{}).Transmit(1, 64)
}

func TestLatencyBudgetMatchesPaper(t *testing.T) {
	// 4 FPGA-stack crossings + 6 serDES crossings = 950 ns (Section V).
	total := 4*FPGAStackCrossing + 6*SerdesCrossing
	if total != 950*sim.Nanosecond {
		t.Fatalf("latency budget = %v, want 950ns", total)
	}
}
