package graphdb

import (
	"testing"
	"testing/quick"
)

func TestVertexEdgeBasics(t *testing.T) {
	g := New()
	a := g.AddVertex("compute", map[string]any{"host": "node0"})
	b := g.AddVertex("memory", map[string]any{"host": "node1"})
	e, err := g.AddEdge("link", a, b, map[string]any{"gbps": 100})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := g.Vertex(a)
	if !ok || v.Label != "compute" || v.Props["host"] != "node0" {
		t.Fatalf("vertex = %+v", v)
	}
	ed, ok := g.Edge(e)
	if !ok || ed.A != a || ed.B != b || ed.Props["gbps"] != 100 {
		t.Fatalf("edge = %+v", ed)
	}
	if _, ok := g.EdgeBetween(a, b); !ok {
		t.Fatal("EdgeBetween missed")
	}
	if _, ok := g.EdgeBetween(b, a); !ok {
		t.Fatal("EdgeBetween not symmetric")
	}
	if ns := g.Neighbors(a); len(ns) != 1 || ns[0] != b {
		t.Fatalf("neighbors = %v", ns)
	}
}

func TestEdgeValidation(t *testing.T) {
	g := New()
	a := g.AddVertex("x", nil)
	b := g.AddVertex("x", nil)
	if _, err := g.AddEdge("l", a, 999, nil); err == nil {
		t.Fatal("edge to missing vertex accepted")
	}
	if _, err := g.AddEdge("l", a, a, nil); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddEdge("l", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("l", b, a, nil); err == nil {
		t.Fatal("duplicate (undirected) edge accepted")
	}
}

func TestRemoveVertexCascades(t *testing.T) {
	g := New()
	a := g.AddVertex("x", nil)
	b := g.AddVertex("x", nil)
	c := g.AddVertex("x", nil)
	g.AddEdge("l", a, b, nil)
	g.AddEdge("l", b, c, nil)
	if err := g.RemoveVertex(b); err != nil {
		t.Fatal(err)
	}
	if vs, es := g.Counts(); vs != 2 || es != 0 {
		t.Fatalf("counts = %d/%d, want 2/0", vs, es)
	}
	if ns := g.Neighbors(a); len(ns) != 0 {
		t.Fatalf("dangling adjacency: %v", ns)
	}
	if ids := g.VerticesByLabel("x"); len(ids) != 2 {
		t.Fatalf("label index stale: %v", ids)
	}
}

func TestFindVertex(t *testing.T) {
	g := New()
	g.AddVertex("host", map[string]any{"name": "a"})
	want := g.AddVertex("host", map[string]any{"name": "b"})
	v, ok := g.FindVertex("host", "name", "b")
	if !ok || v.ID != want {
		t.Fatalf("find = %+v, %v", v, ok)
	}
	if _, ok := g.FindVertex("host", "name", "zzz"); ok {
		t.Fatal("found nonexistent vertex")
	}
}

func TestShortestPath(t *testing.T) {
	g := New()
	// a - b - c - d  plus shortcut a - x - d
	a := g.AddVertex("v", nil)
	b := g.AddVertex("v", nil)
	c := g.AddVertex("v", nil)
	d := g.AddVertex("v", nil)
	x := g.AddVertex("v", nil)
	g.AddEdge("l", a, b, nil)
	g.AddEdge("l", b, c, nil)
	g.AddEdge("l", c, d, nil)
	g.AddEdge("l", a, x, nil)
	g.AddEdge("l", x, d, nil)
	path, ok := g.ShortestPath(a, d, nil)
	if !ok || len(path) != 3 || path[1] != x {
		t.Fatalf("path = %v", path)
	}
	// Filter out the shortcut: must take the long way.
	path, ok = g.ShortestPath(a, d, func(e Edge) bool { return !(e.A == x || e.B == x) })
	if !ok || len(path) != 4 {
		t.Fatalf("filtered path = %v", path)
	}
	// No path when everything is filtered.
	if _, ok := g.ShortestPath(a, d, func(Edge) bool { return false }); ok {
		t.Fatal("found path through fully filtered graph")
	}
	// Self path.
	if p, ok := g.ShortestPath(a, a, nil); !ok || len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestTxCommit(t *testing.T) {
	g := New()
	tx := g.Begin()
	a := tx.AddVertex("v", nil)
	b := tx.AddVertex("v", nil)
	if _, err := tx.AddEdge("l", a, b, map[string]any{"reserved": false}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if vs, es := g.Counts(); vs != 2 || es != 1 {
		t.Fatalf("counts after commit = %d/%d", vs, es)
	}
}

func TestTxRollback(t *testing.T) {
	g := New()
	base := g.AddVertex("v", map[string]any{"state": "free"})
	tx := g.Begin()
	a := tx.AddVertex("v", nil)
	if _, err := tx.AddEdge("l", base, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetVertexProp(base, "state", "reserved"); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if vs, es := g.Counts(); vs != 1 || es != 0 {
		t.Fatalf("counts after rollback = %d/%d, want 1/0", vs, es)
	}
	v, _ := g.Vertex(base)
	if v.Props["state"] != "free" {
		t.Fatalf("prop not restored: %v", v.Props["state"])
	}
	if ns := g.Neighbors(base); len(ns) != 0 {
		t.Fatalf("adjacency not restored: %v", ns)
	}
}

func TestTxUseAfterFinishPanics(t *testing.T) {
	g := New()
	tx := g.Begin()
	tx.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on finished tx")
		}
	}()
	tx.AddVertex("v", nil)
}

func TestPropertyIsolationFromCaller(t *testing.T) {
	g := New()
	props := map[string]any{"k": 1}
	id := g.AddVertex("v", props)
	props["k"] = 2 // mutate caller's map
	v, _ := g.Vertex(id)
	if v.Props["k"] != 1 {
		t.Fatal("graph aliases caller's property map")
	}
	v.Props["k"] = 3 // mutate returned copy
	v2, _ := g.Vertex(id)
	if v2.Props["k"] != 1 {
		t.Fatal("returned vertex aliases stored properties")
	}
}

// Property: rollback always restores exact vertex/edge counts.
func TestQuickRollbackRestoresCounts(t *testing.T) {
	f := func(ops []uint8) bool {
		g := New()
		seed := []ID{g.AddVertex("v", nil), g.AddVertex("v", nil), g.AddVertex("v", nil)}
		g.AddEdge("l", seed[0], seed[1], nil)
		v0, e0 := g.Counts()
		tx := g.Begin()
		verts := append([]ID(nil), seed...)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				verts = append(verts, tx.AddVertex("v", nil))
			case 1:
				if len(verts) >= 2 {
					tx.AddEdge("l", verts[len(verts)-1], verts[0], nil)
				}
			case 2:
				tx.SetVertexProp(verts[int(op)%len(verts)], "p", int(op))
			}
		}
		tx.Rollback()
		v1, e1 := g.Counts()
		return v0 == v1 && e0 == e1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
