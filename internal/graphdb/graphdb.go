// Package graphdb is a small in-memory transactional property graph, the
// stand-in for the Janusgraph backend the paper's control plane uses
// (Section IV-C). The control plane models system state as an undirected
// graph whose vertices are compute/memory endpoints, transceivers and
// switch ports, and whose edges are possible physical links.
//
// The store supports labeled vertices and edges with string-keyed
// properties, undo-log transactions, and label/property indexes sufficient
// for the control plane's path searches and reservations.
package graphdb

import (
	"fmt"
	"sort"
	"sync"
)

// ID identifies a vertex or edge.
type ID int64

// Vertex is a labeled node with properties.
type Vertex struct {
	ID    ID
	Label string
	Props map[string]any
}

// Edge is an undirected labeled connection between two vertices.
type Edge struct {
	ID    ID
	Label string
	A, B  ID
	Props map[string]any
}

// Graph is the store. All exported methods are safe for concurrent use.
type Graph struct {
	mu       sync.RWMutex
	nextID   ID
	vertices map[ID]*Vertex
	edges    map[ID]*Edge
	adjacent map[ID]map[ID]ID // vertex -> neighbor vertex -> edge id
	byLabel  map[string]map[ID]struct{}
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nextID:   1,
		vertices: make(map[ID]*Vertex),
		edges:    make(map[ID]*Edge),
		adjacent: make(map[ID]map[ID]ID),
		byLabel:  make(map[string]map[ID]struct{}),
	}
}

// AddVertex inserts a vertex and returns its ID.
func (g *Graph) AddVertex(label string, props map[string]any) ID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addVertexLocked(label, props)
}

func (g *Graph) addVertexLocked(label string, props map[string]any) ID {
	id := g.nextID
	g.nextID++
	g.vertices[id] = &Vertex{ID: id, Label: label, Props: cloneProps(props)}
	g.adjacent[id] = make(map[ID]ID)
	if g.byLabel[label] == nil {
		g.byLabel[label] = make(map[ID]struct{})
	}
	g.byLabel[label][id] = struct{}{}
	return id
}

// AddEdge connects two existing vertices and returns the edge ID.
func (g *Graph) AddEdge(label string, a, b ID, props map[string]any) (ID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addEdgeLocked(label, a, b, props)
}

func (g *Graph) addEdgeLocked(label string, a, b ID, props map[string]any) (ID, error) {
	if _, ok := g.vertices[a]; !ok {
		return 0, fmt.Errorf("graphdb: vertex %d not found", a)
	}
	if _, ok := g.vertices[b]; !ok {
		return 0, fmt.Errorf("graphdb: vertex %d not found", b)
	}
	if a == b {
		return 0, fmt.Errorf("graphdb: self-loop on vertex %d", a)
	}
	if _, dup := g.adjacent[a][b]; dup {
		return 0, fmt.Errorf("graphdb: edge %d-%d already exists", a, b)
	}
	id := g.nextID
	g.nextID++
	g.edges[id] = &Edge{ID: id, Label: label, A: a, B: b, Props: cloneProps(props)}
	g.adjacent[a][b] = id
	g.adjacent[b][a] = id
	return id, nil
}

// Vertex returns a copy of the vertex.
func (g *Graph) Vertex(id ID) (Vertex, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.vertices[id]
	if !ok {
		return Vertex{}, false
	}
	return Vertex{ID: v.ID, Label: v.Label, Props: cloneProps(v.Props)}, true
}

// Edge returns a copy of the edge.
func (g *Graph) Edge(id ID) (Edge, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.edges[id]
	if !ok {
		return Edge{}, false
	}
	return Edge{ID: e.ID, Label: e.Label, A: e.A, B: e.B, Props: cloneProps(e.Props)}, true
}

// EdgeBetween returns the edge connecting a and b, if any.
func (g *Graph) EdgeBetween(a, b ID) (Edge, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	eid, ok := g.adjacent[a][b]
	if !ok {
		return Edge{}, false
	}
	e := g.edges[eid]
	return Edge{ID: e.ID, Label: e.Label, A: e.A, B: e.B, Props: cloneProps(e.Props)}, true
}

// Neighbors returns the vertex IDs adjacent to id, sorted for determinism.
func (g *Graph) Neighbors(id ID) []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]ID, 0, len(g.adjacent[id]))
	for n := range g.adjacent[id] {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VerticesByLabel returns the IDs of all vertices with the label, sorted.
func (g *Graph) VerticesByLabel(label string) []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]ID, 0, len(g.byLabel[label]))
	for id := range g.byLabel[label] {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindVertex returns the first vertex (by ID order) with the label whose
// property key equals value.
func (g *Graph) FindVertex(label, key string, value any) (Vertex, bool) {
	for _, id := range g.VerticesByLabel(label) {
		v, _ := g.Vertex(id)
		if v.Props[key] == value {
			return v, true
		}
	}
	return Vertex{}, false
}

// SetVertexProp updates one vertex property.
func (g *Graph) SetVertexProp(id ID, key string, value any) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.vertices[id]
	if !ok {
		return fmt.Errorf("graphdb: vertex %d not found", id)
	}
	if v.Props == nil {
		v.Props = make(map[string]any)
	}
	v.Props[key] = value
	return nil
}

// SetEdgeProp updates one edge property.
func (g *Graph) SetEdgeProp(id ID, key string, value any) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("graphdb: edge %d not found", id)
	}
	if e.Props == nil {
		e.Props = make(map[string]any)
	}
	e.Props[key] = value
	return nil
}

// RemoveEdge deletes an edge.
func (g *Graph) RemoveEdge(id ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("graphdb: edge %d not found", id)
	}
	delete(g.adjacent[e.A], e.B)
	delete(g.adjacent[e.B], e.A)
	delete(g.edges, id)
	return nil
}

// RemoveVertex deletes a vertex and all incident edges.
func (g *Graph) RemoveVertex(id ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.vertices[id]
	if !ok {
		return fmt.Errorf("graphdb: vertex %d not found", id)
	}
	for n, eid := range g.adjacent[id] {
		delete(g.adjacent[n], id)
		delete(g.edges, eid)
	}
	delete(g.adjacent, id)
	delete(g.byLabel[v.Label], id)
	delete(g.vertices, id)
	return nil
}

// Counts returns (vertices, edges).
func (g *Graph) Counts() (int, int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.vertices), len(g.edges)
}

// ShortestPath returns the minimum-hop path between two vertices,
// considering only edges accepted by the filter (nil accepts all). The
// returned slice includes both endpoints; ok is false when no path exists.
// Ties are broken toward lower vertex IDs, keeping results deterministic.
func (g *Graph) ShortestPath(from, to ID, filter func(Edge) bool) (path []ID, ok bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, found := g.vertices[from]; !found {
		return nil, false
	}
	if from == to {
		return []ID{from}, true
	}
	prev := map[ID]ID{from: from}
	queue := []ID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Deterministic neighbor order.
		ns := make([]ID, 0, len(g.adjacent[cur]))
		for n := range g.adjacent[cur] {
			ns = append(ns, n)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		for _, n := range ns {
			if _, seen := prev[n]; seen {
				continue
			}
			e := g.edges[g.adjacent[cur][n]]
			if filter != nil && !filter(*e) {
				continue
			}
			prev[n] = cur
			if n == to {
				var rev []ID
				for at := to; at != from; at = prev[at] {
					rev = append(rev, at)
				}
				rev = append(rev, from)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev, true
			}
			queue = append(queue, n)
		}
	}
	return nil, false
}

func cloneProps(p map[string]any) map[string]any {
	if p == nil {
		return nil
	}
	out := make(map[string]any, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}
