package graphdb

import (
	"bytes"
	"strings"
	"testing"
)

func buildSample() *Graph {
	g := New()
	a := g.AddVertex("host", map[string]any{"name": "node0"})
	b := g.AddVertex("host", map[string]any{"name": "node1"})
	c := g.AddVertex("transceiver", map[string]any{"reserved": true})
	g.AddEdge("link", a, b, map[string]any{"cable": true}) //nolint:errcheck
	g.AddEdge("has", a, c, nil)                            //nolint:errcheck
	return g
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	g := buildSample()
	var buf bytes.Buffer
	if err := g.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := New()
	if err := g2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	v1, e1 := g.Counts()
	v2, e2 := g2.Counts()
	if v1 != v2 || e1 != e2 {
		t.Fatalf("counts: %d/%d vs %d/%d", v1, e1, v2, e2)
	}
	// Properties and adjacency survive.
	v, ok := g2.FindVertex("host", "name", "node0")
	if !ok {
		t.Fatal("vertex lost")
	}
	if len(g2.Neighbors(v.ID)) != 2 {
		t.Fatalf("adjacency lost: %v", g2.Neighbors(v.ID))
	}
	// New IDs continue past the snapshot's high-water mark.
	fresh := g2.AddVertex("host", nil)
	if _, exists := g.Vertex(fresh); exists {
		t.Fatalf("restored graph reused ID %d", fresh)
	}
	// Label index restored.
	if got := g2.VerticesByLabel("transceiver"); len(got) != 1 {
		t.Fatalf("label index = %v", got)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	g := buildSample()
	var a, b bytes.Buffer
	if err := g.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("snapshots differ across calls")
	}
}

func TestRestoreIntoNonEmptyFails(t *testing.T) {
	g := buildSample()
	var buf bytes.Buffer
	g.Snapshot(&buf) //nolint:errcheck
	if err := g.Restore(&buf); err == nil {
		t.Fatal("restore into populated graph succeeded")
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	cases := []string{
		`not json`,
		`{"version":99}`,
		`{"version":1,"edges":[{"id":9,"a":1,"b":2}]}`, // dangling edge
		`{"version":1,"vertices":[{"id":1},{"id":1}]}`, // duplicate vertex
	}
	for i, c := range cases {
		g := New()
		if err := g.Restore(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: corrupt snapshot accepted", i)
		}
	}
}

func TestRestoredGraphSupportsTransactions(t *testing.T) {
	g := buildSample()
	var buf bytes.Buffer
	g.Snapshot(&buf) //nolint:errcheck
	g2 := New()
	if err := g2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	hosts := g2.VerticesByLabel("host")
	tx := g2.Begin()
	if err := tx.SetVertexProp(hosts[0], "state", "draining"); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	v, _ := g2.Vertex(hosts[0])
	if _, has := v.Props["state"]; has {
		t.Fatal("rollback failed on restored graph")
	}
}
