package graphdb

import "fmt"

// Tx is a write transaction: mutations apply to the graph immediately but
// are journaled so Rollback restores the pre-transaction state. Writers are
// serialized (single-writer), mirroring the control plane's use of its
// backing store for reservations.
type Tx struct {
	g    *Graph
	undo []func()
	done bool
}

// Begin starts a write transaction, blocking other writers until Commit or
// Rollback.
func (g *Graph) Begin() *Tx {
	g.mu.Lock()
	return &Tx{g: g}
}

// AddVertex inserts a vertex within the transaction.
func (t *Tx) AddVertex(label string, props map[string]any) ID {
	t.check()
	id := t.g.addVertexLocked(label, props)
	t.undo = append(t.undo, func() {
		delete(t.g.adjacent, id)
		delete(t.g.byLabel[label], id)
		delete(t.g.vertices, id)
	})
	return id
}

// AddEdge inserts an edge within the transaction.
func (t *Tx) AddEdge(label string, a, b ID, props map[string]any) (ID, error) {
	t.check()
	id, err := t.g.addEdgeLocked(label, a, b, props)
	if err != nil {
		return 0, err
	}
	t.undo = append(t.undo, func() {
		delete(t.g.adjacent[a], b)
		delete(t.g.adjacent[b], a)
		delete(t.g.edges, id)
	})
	return id, nil
}

// SetVertexProp updates a vertex property within the transaction.
func (t *Tx) SetVertexProp(id ID, key string, value any) error {
	t.check()
	v, ok := t.g.vertices[id]
	if !ok {
		return fmt.Errorf("graphdb: vertex %d not found", id)
	}
	old, had := v.Props[key]
	if v.Props == nil {
		v.Props = make(map[string]any)
	}
	v.Props[key] = value
	t.undo = append(t.undo, func() {
		if had {
			v.Props[key] = old
		} else {
			delete(v.Props, key)
		}
	})
	return nil
}

// SetEdgeProp updates an edge property within the transaction.
func (t *Tx) SetEdgeProp(id ID, key string, value any) error {
	t.check()
	e, ok := t.g.edges[id]
	if !ok {
		return fmt.Errorf("graphdb: edge %d not found", id)
	}
	old, had := e.Props[key]
	if e.Props == nil {
		e.Props = make(map[string]any)
	}
	e.Props[key] = value
	t.undo = append(t.undo, func() {
		if had {
			e.Props[key] = old
		} else {
			delete(e.Props, key)
		}
	})
	return nil
}

// VertexProp reads a property through the transaction's view.
func (t *Tx) VertexProp(id ID, key string) (any, bool) {
	t.check()
	v, ok := t.g.vertices[id]
	if !ok {
		return nil, false
	}
	val, ok := v.Props[key]
	return val, ok
}

// EdgeProp reads an edge property through the transaction's view.
func (t *Tx) EdgeProp(id ID, key string) (any, bool) {
	t.check()
	e, ok := t.g.edges[id]
	if !ok {
		return nil, false
	}
	val, ok := e.Props[key]
	return val, ok
}

// Commit makes the transaction's mutations permanent.
func (t *Tx) Commit() {
	t.check()
	t.done = true
	t.undo = nil
	t.g.mu.Unlock()
}

// Rollback undoes every mutation in reverse order.
func (t *Tx) Rollback() {
	t.check()
	t.done = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.undo = nil
	t.g.mu.Unlock()
}

func (t *Tx) check() {
	if t.done {
		panic("graphdb: use of finished transaction")
	}
}
