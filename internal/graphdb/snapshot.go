package graphdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot support: the paper's control plane keeps system state in a
// durable graph store (Janusgraph). Snapshot/Restore give this in-memory
// substitute the same property — the control plane can persist its topology
// and reservations across restarts.

// snapshotDoc is the serialized form.
type snapshotDoc struct {
	Version  int              `json:"version"`
	NextID   ID               `json:"next_id"`
	Vertices []snapshotVertex `json:"vertices"`
	Edges    []snapshotEdge   `json:"edges"`
}

type snapshotVertex struct {
	ID    ID             `json:"id"`
	Label string         `json:"label"`
	Props map[string]any `json:"props,omitempty"`
}

type snapshotEdge struct {
	ID    ID             `json:"id"`
	Label string         `json:"label"`
	A     ID             `json:"a"`
	B     ID             `json:"b"`
	Props map[string]any `json:"props,omitempty"`
}

// Snapshot serializes the graph to JSON. The output is deterministic
// (sorted by ID) so snapshots diff cleanly.
func (g *Graph) Snapshot(w io.Writer) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	doc := snapshotDoc{Version: 1, NextID: g.nextID}
	for _, v := range g.vertices {
		doc.Vertices = append(doc.Vertices, snapshotVertex{ID: v.ID, Label: v.Label, Props: v.Props})
	}
	sort.Slice(doc.Vertices, func(i, j int) bool { return doc.Vertices[i].ID < doc.Vertices[j].ID })
	for _, e := range g.edges {
		doc.Edges = append(doc.Edges, snapshotEdge{ID: e.ID, Label: e.Label, A: e.A, B: e.B, Props: e.Props})
	}
	sort.Slice(doc.Edges, func(i, j int) bool { return doc.Edges[i].ID < doc.Edges[j].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Restore loads a snapshot into an empty graph. Restoring into a non-empty
// graph is an error (state would silently merge).
func (g *Graph) Restore(r io.Reader) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.vertices) != 0 || len(g.edges) != 0 {
		return fmt.Errorf("graphdb: restore into non-empty graph")
	}
	var doc snapshotDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("graphdb: restore: %w", err)
	}
	if doc.Version != 1 {
		return fmt.Errorf("graphdb: unsupported snapshot version %d", doc.Version)
	}
	for _, v := range doc.Vertices {
		if _, dup := g.vertices[v.ID]; dup {
			return fmt.Errorf("graphdb: duplicate vertex %d in snapshot", v.ID)
		}
		g.vertices[v.ID] = &Vertex{ID: v.ID, Label: v.Label, Props: cloneProps(v.Props)}
		g.adjacent[v.ID] = make(map[ID]ID)
		if g.byLabel[v.Label] == nil {
			g.byLabel[v.Label] = make(map[ID]struct{})
		}
		g.byLabel[v.Label][v.ID] = struct{}{}
	}
	for _, e := range doc.Edges {
		if _, ok := g.vertices[e.A]; !ok {
			return fmt.Errorf("graphdb: edge %d references missing vertex %d", e.ID, e.A)
		}
		if _, ok := g.vertices[e.B]; !ok {
			return fmt.Errorf("graphdb: edge %d references missing vertex %d", e.ID, e.B)
		}
		if _, dup := g.adjacent[e.A][e.B]; dup {
			return fmt.Errorf("graphdb: duplicate edge %d-%d in snapshot", e.A, e.B)
		}
		g.edges[e.ID] = &Edge{ID: e.ID, Label: e.Label, A: e.A, B: e.B, Props: cloneProps(e.Props)}
		g.adjacent[e.A][e.B] = e.ID
		g.adjacent[e.B][e.A] = e.ID
	}
	if doc.NextID > g.nextID {
		g.nextID = doc.NextID
	}
	return nil
}
