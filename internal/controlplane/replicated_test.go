package controlplane

import (
	"errors"
	"net/http"
	"testing"

	"thymesisflow/internal/agent"
)

func newTestReplicaSet(t *testing.T, seed int64) (*ReplicaSet, string) {
	t.Helper()
	rs, err := NewReplicaSet([]string{"cp-a", "cp-b", "cp-c"}, seed)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := rs.ElectLeader(400)
	if err != nil {
		t.Fatal(err)
	}
	return rs, leader
}

func TestReplicatedJournalQuorumAppend(t *testing.T) {
	rs, leader := newTestReplicaSet(t, 1)
	j := rs.Journal(leader)
	for i := uint64(1); i <= 5; i++ {
		if err := j.Append(JournalEntry{Seq: i, SagaID: "saga-1", Op: OpAttach, Event: EvIntent}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got, err := j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Seq != 1 || got[4].Seq != 5 {
		t.Fatalf("leader entries = %+v", got)
	}
	// Commit index propagates with the next heartbeats; then every replica
	// sees the identical committed journal.
	if err := rs.Tick(10); err != nil {
		t.Fatal(err)
	}
	for _, id := range rs.IDs() {
		ents, err := rs.CommittedEntries(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 5 {
			t.Fatalf("replica %s sees %d committed entries, want 5", id, len(ents))
		}
	}
}

func TestReplicatedJournalRejectsFollower(t *testing.T) {
	rs, leader := newTestReplicaSet(t, 2)
	for _, id := range rs.IDs() {
		if id == leader {
			continue
		}
		err := rs.Journal(id).Append(JournalEntry{Seq: 1, SagaID: "saga-1", Op: OpAttach, Event: EvBegin})
		if !errors.Is(err, ErrNotLeader) {
			t.Fatalf("follower %s append: %v, want ErrNotLeader", id, err)
		}
		var nl *NotLeaderError
		if !errors.As(err, &nl) || nl.Leader != leader {
			t.Fatalf("follower %s leader hint: %v", id, err)
		}
	}
}

func TestReplicatedJournalQuorumLostIsCrash(t *testing.T) {
	rs, leader := newTestReplicaSet(t, 3)
	j := rs.Journal(leader)
	if err := j.Append(JournalEntry{Seq: 1, SagaID: "saga-1", Op: OpAttach, Event: EvBegin}); err != nil {
		t.Fatal(err)
	}
	// Fence the leader: isolated from both peers, its proposals can never
	// commit — the append must fail with ErrQuorumLost, which the saga
	// engine escalates to a crash (stale-leader fencing).
	rs.Isolate(leader)
	err := j.Append(JournalEntry{Seq: 2, SagaID: "saga-1", Op: OpAttach, Event: EvIntent})
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("fenced append: %v, want ErrQuorumLost", err)
	}
}

// TestAsymmetricPartitionLostAppendNotAcked is the regression test for the
// overwritten-proposal ack bug: with the leader's outbound links cut but
// inbound links open, its proposal can never replicate, yet the peers'
// replacement leader replicates INTO it — truncating the proposed entry,
// writing its own no-op at the same index, and advancing the old node's
// commit index past that index. Acking on commit index alone would report
// durable success for a journal write that was lost; Append must instead
// detect the term mismatch at the proposed index and fail.
func TestAsymmetricPartitionLostAppendNotAcked(t *testing.T) {
	rs, leader := newTestReplicaSet(t, 7)
	j := rs.Journal(leader)
	if err := j.Append(JournalEntry{Seq: 1, SagaID: "saga-1", Op: OpAttach, Event: EvBegin}); err != nil {
		t.Fatal(err)
	}
	lastBefore := rs.StatusFor(leader).LastIndex
	for _, id := range rs.IDs() {
		if id != leader {
			rs.PartitionOneWay(leader, id)
		}
	}
	err := j.Append(JournalEntry{Seq: 2, SagaID: "saga-1", Op: OpAttach, Event: EvIntent})
	if err == nil {
		t.Fatalf("append acked durable success for an entry overwritten by the new leader")
	}
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("append: %v, want ErrNotLeader (deposed mid-pump)", err)
	}
	// Prove the dangerous path actually ran: the old node's commit index
	// advanced past the doomed entry's index via incoming AppendEntries,
	// which is exactly the state where a commit-index-only check acks.
	doomed := lastBefore + 1
	if st := rs.StatusFor(leader); st.CommitIndex < doomed {
		t.Fatalf("commit index %d never passed doomed index %d — scenario did not exercise the overwrite", st.CommitIndex, doomed)
	}
	// The lost entry must not appear in any replica's committed journal.
	for _, id := range rs.IDs() {
		ents, err := rs.CommittedEntries(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.Seq == 2 {
				t.Fatalf("replica %s committed the lost entry %+v", id, e)
			}
		}
	}
}

// TestLeaderGateShedsBeforeSaga: a follower-bound service rejects mutations
// with ErrNotLeader before any saga (or journal entry) is created, exactly
// like the admission limiter.
func TestLeaderGateShedsBeforeSaga(t *testing.T) {
	rs, leader := newTestReplicaSet(t, 4)
	var follower string
	for _, id := range rs.IDs() {
		if id != leader {
			follower = id
			break
		}
	}
	svc, _ := testService(t)
	svc.SetJournal(rs.Journal(follower))
	svc.SetLeaderGate(rs.Gate(follower))
	svc.SetRaftStatus(func() RaftStatus { return rs.StatusFor(follower) })

	_, err := svc.Attach(AttachRequest{ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1})
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("attach on follower: %v, want ErrNotLeader", err)
	}
	var nl *NotLeaderError
	if !errors.As(err, &nl) || nl.Leader != leader {
		t.Fatalf("leader hint: %v", err)
	}
	if err := svc.Detach("whatever"); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("detach on follower: %v, want ErrNotLeader", err)
	}
	if n := len(svc.Sagas()); n != 0 {
		t.Fatalf("%d sagas created on follower", n)
	}
	if got := svc.NotLeaderRejects(); got != 2 {
		t.Fatalf("NotLeaderRejects = %d, want 2", got)
	}
	st, ok := svc.RaftStatusReport()
	if !ok || st.Role != "follower" || st.NotLeaderRejects != 2 || st.Leader != leader {
		t.Fatalf("RaftStatusReport = %+v ok=%v", st, ok)
	}
}

// TestLeaderBoundServiceCommitsThroughQuorum drives a full attach/detach
// through a leader-bound service with a replicated journal and confirms
// every replica converges on the same committed journal.
func TestLeaderBoundServiceCommitsThroughQuorum(t *testing.T) {
	rs, leader := newTestReplicaSet(t, 5)
	svc, _ := testService(t)
	svc.SetJournal(rs.Journal(leader))
	svc.SetLeaderGate(rs.Gate(leader))

	rec, err := svc.Attach(AttachRequest{ComputeHost: "node0", DonorHost: "node1", Bytes: 2 << 20, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Detach(rec.ID); err != nil {
		t.Fatal(err)
	}
	if err := rs.Tick(10); err != nil {
		t.Fatal(err)
	}
	want, err := rs.CommittedEntries(leader)
	if err != nil {
		t.Fatal(err)
	}
	// Attach and detach each journal begin + (intent,done) per step +
	// committed — a healthy run writes well past a dozen records.
	if len(want) < 10 {
		t.Fatalf("committed journal has only %d entries", len(want))
	}
	if last := want[len(want)-1]; last.Event != EvCommitted || last.Op != OpDetach {
		t.Fatalf("journal tail = %+v", last)
	}
	for _, id := range rs.IDs() {
		got, err := rs.CommittedEntries(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("replica %s has %d entries, leader %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i].Seq != want[i].Seq || got[i].Event != want[i].Event {
				t.Fatalf("replica %s diverges at %d: %+v vs %+v", id, i, got[i], want[i])
			}
		}
	}
}

// TestFailoverRecoverOnNewLeader: commit an attach through the leader, kill
// it, elect a successor, and Recover() on the successor — the committed
// attachment must be rebuilt from the replicated journal alone.
func TestFailoverRecoverOnNewLeader(t *testing.T) {
	rs, leader := newTestReplicaSet(t, 6)
	svc, cluster := testService(t)
	svc.SetJournal(rs.Journal(leader))
	svc.SetLeaderGate(rs.Gate(leader))
	rec, err := svc.Attach(AttachRequest{ComputeHost: "node0", DonorHost: "node1", Bytes: 2 << 20, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}

	rs.Stop(leader)
	next, err := rs.ElectLeader(800)
	if err != nil {
		t.Fatal(err)
	}
	if next == leader {
		t.Fatal("dead leader re-elected")
	}
	// Failover: a fresh Service instance bound to the new leader's replica
	// of the journal (same model/cluster — the shared world state).
	svc2 := NewService(svc.Model(), ClusterExecutor{Cluster: cluster}, testToken)
	svc2.SetJournal(rs.Journal(next))
	svc2.SetLeaderGate(rs.Gate(next))
	for _, n := range []string{"node0", "node1", "node2"} {
		svc2.RegisterAgent(agent.New(n, testToken))
	}
	rep, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 1 {
		t.Fatalf("recovery restored %d attachments, want 1: %+v", rep.Restored, rep)
	}
	got, ok := svc2.Attachment(rec.ID)
	if !ok || got.ComputeHost != "node0" || got.DonorHost != "node1" {
		t.Fatalf("attachment not restored on new leader: %+v ok=%v", got, ok)
	}
	// And the new leader accepts writes.
	if err := svc2.Detach(rec.ID); err != nil {
		t.Fatal(err)
	}
}

// TestReadyzReportsRoleAndQuorum: the readiness payload carries the Raft
// role and quorum reachability, and quorum loss flips Ready off.
func TestReadyzReportsRoleAndQuorum(t *testing.T) {
	rs, leader := newTestReplicaSet(t, 7)
	api, svc := restAPI(t)
	svc.SetRaftStatus(func() RaftStatus { return rs.StatusFor(leader) })

	code, rd := readyz(t, api, "reader-tok")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d %+v", code, rd)
	}
	if rd.Role != "leader" || rd.Quorum != "reachable" {
		t.Fatalf("readiness role/quorum = %q/%q", rd.Role, rd.Quorum)
	}

	rs.Isolate(leader)
	code, rd = readyz(t, api, "reader-tok")
	if code != http.StatusServiceUnavailable || rd.Quorum != "lost" || rd.Ready {
		t.Fatalf("readyz under isolation = %d %+v", code, rd)
	}
}

// TestRESTNotLeaderRedirect: POST/DELETE against a follower answer 421 with
// the leader hint in X-Raft-Leader, and /v1/raft/status serves the member
// table.
func TestRESTNotLeaderRedirect(t *testing.T) {
	rs, leader := newTestReplicaSet(t, 8)
	var follower string
	for _, id := range rs.IDs() {
		if id != leader {
			follower = id
			break
		}
	}
	api, svc := restAPI(t)
	svc.SetLeaderGate(rs.Gate(follower))
	svc.SetRaftStatus(func() RaftStatus { return rs.StatusFor(follower) })

	w := doReq(t, api, http.MethodPost, "/v1/attachments", "admin-tok", AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if w.Code != http.StatusMisdirectedRequest {
		t.Fatalf("follower POST = %d body=%s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Raft-Leader"); got != leader {
		t.Fatalf("X-Raft-Leader = %q, want %q", got, leader)
	}
	if w := doReq(t, api, http.MethodDelete, "/v1/attachments/att-1", "admin-tok", nil); w.Code != http.StatusMisdirectedRequest {
		t.Fatalf("follower DELETE = %d", w.Code)
	}

	w = doReq(t, api, http.MethodGet, "/v1/raft/status", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("raft status = %d body=%s", w.Code, w.Body.String())
	}
}

// TestRaftStatusUnboundIs404: a single-node control plane has no raft
// surface.
func TestRaftStatusUnboundIs404(t *testing.T) {
	api, _ := restAPI(t)
	if w := doReq(t, api, http.MethodGet, "/v1/raft/status", "reader-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unbound raft status = %d", w.Code)
	}
}

// TestFaultyTransportPartitions: per-peer-pair symmetric and asymmetric
// cuts, with source identity through WithSource.
func TestFaultyTransportPartitions(t *testing.T) {
	inner := NewDirectTransport()
	for _, n := range []string{"node0", "node1"} {
		inner.Register(agent.New(n, testToken))
	}
	ft := NewFaultyTransport(inner, TransportFaults{Seed: 1})

	// Symmetric cut between the default source and node0.
	ft.Partition(DefaultSource, "node0")
	if _, err := ft.Query("node0"); !IsTransient(err) {
		t.Fatalf("partitioned query: %v, want transient", err)
	}
	if _, err := ft.Query("node1"); err != nil {
		t.Fatalf("unrelated query: %v", err)
	}
	ft.HealPartition(DefaultSource, "node0")
	if _, err := ft.Query("node0"); err != nil {
		t.Fatalf("healed query: %v", err)
	}

	// Source-scoped one-way cut: cp-b is severed from node1, cp-a is not.
	cpA, cpB := ft.WithSource("cp-a"), ft.WithSource("cp-b")
	ft.PartitionOneWay("cp-b", "node1")
	if _, err := cpB.Query("node1"); !IsTransient(err) {
		t.Fatalf("cp-b query across cut: %v, want transient", err)
	}
	if _, err := cpA.Query("node1"); err != nil {
		t.Fatalf("cp-a query: %v", err)
	}
	st := ft.Stats()
	if st.PartitionDrops != 2 {
		t.Fatalf("PartitionDrops = %d, want 2", st.PartitionDrops)
	}
	ft.HealAllPartitions()
	if _, err := cpB.Query("node1"); err != nil {
		t.Fatalf("after HealAllPartitions: %v", err)
	}
}
