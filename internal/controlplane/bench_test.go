package controlplane

import (
	"fmt"
	"testing"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/mem"
)

// benchExec is an executor stub that succeeds instantly, so the benchmark
// measures the saga engine (journal, steps, transport) rather than the
// simulated datapath.
type benchExec struct{ n int }

func (b *benchExec) Attach(_, _ string, _ int64, _ int) (string, mem.NodeID, error) {
	b.n++
	return fmt.Sprintf("att-%d", b.n), 0, nil
}

func (b *benchExec) Detach(string) error { return nil }

func newBenchService(tb testing.TB) *Service {
	tb.Helper()
	m := NewModel()
	for _, h := range []string{"c0", "d0"} {
		if err := m.AddHost(h, 2); err != nil {
			tb.Fatal(err)
		}
	}
	ct := m.Transceivers("c0", LabelComputeEP)
	mt := m.Transceivers("d0", LabelMemoryEP)
	for i := 0; i < len(ct) && i < len(mt); i++ {
		if err := m.Cable(ct[i], mt[i]); err != nil {
			tb.Fatal(err)
		}
	}
	svc := NewService(m, &benchExec{}, "bench-token")
	svc.RegisterAgent(agent.New("c0", "bench-token"))
	svc.RegisterAgent(agent.New("d0", "bench-token"))
	return svc
}

// runSagaPair runs one attach+detach saga pair — the control-plane hot path
// the event-log/tracing guards must not burden when tracing is disabled.
func runSagaPair(b *testing.B, svc *Service) {
	rec, err := svc.Attach(AttachRequest{ComputeHost: "c0", DonorHost: "d0", Bytes: 1 << 20, Channels: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Detach(rec.ID); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSagaAttachDetach measures the saga engine with tracing disabled
// (the production default). BENCH_PR7.json snapshots allocs/op; the
// disabled-tracing path must not regress when instrumentation changes.
func BenchmarkSagaAttachDetach(b *testing.B) {
	svc := newBenchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSagaPair(b, svc)
	}
}

// BenchmarkSagaAttachDetachTraced measures the same path with the event log
// enabled, quantifying the cost of span tracing when an operator turns it on.
func BenchmarkSagaAttachDetachTraced(b *testing.B) {
	svc := newBenchService(b)
	svc.EnableSagaTracing(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSagaPair(b, svc)
	}
}
