package controlplane

import "net/http"

// Reconciler liveness states tracked in Service.reconState.
const (
	reconDisabled int32 = iota
	reconRunning
	reconStopped
)

// Readiness is the JSON shape of GET /v1/readyz: the dependency checks a
// load balancer or orchestrator gates traffic on. The daemon is ready when
// the journal accepted its last append, the reconciler (if ever started) is
// still running, and every registered agent answers a status query.
type Readiness struct {
	Ready             bool     `json:"ready"`
	Journal           string   `json:"journal"`    // "ok" or the last append error
	Reconciler        string   `json:"reconciler"` // running | disabled | stopped
	AgentsTotal       int      `json:"agents_total"`
	AgentsUnreachable []string `json:"agents_unreachable,omitempty"`
	// HA fields, set only when this node runs under a ReplicaSet
	// (SetRaftStatus): the Raft role so load balancers route writes to the
	// leader, and quorum reachability — a node cut off from a majority
	// cannot commit and reports not ready.
	Role   string `json:"role,omitempty"`   // leader | follower | candidate
	Quorum string `json:"quorum,omitempty"` // reachable | lost
}

// Readiness evaluates the dependency checks. Agent queries run outside the
// service lock: the transport serializes against the agents itself, and a
// slow agent must not block the saga engine.
func (s *Service) Readiness() Readiness {
	s.mu.Lock()
	journalErr := s.lastJournalErr
	transport := s.transport
	s.mu.Unlock()

	r := Readiness{Ready: true, Journal: "ok"}
	if journalErr != "" {
		r.Journal = journalErr
		r.Ready = false
	}
	switch s.reconState.Load() {
	case reconRunning:
		r.Reconciler = "running"
	case reconStopped:
		r.Reconciler = "stopped"
		r.Ready = false
	default:
		// Never started: a valid configuration (tfd without
		// -reconcile-interval), not a failure.
		r.Reconciler = "disabled"
	}
	hosts := transport.Hosts()
	r.AgentsTotal = len(hosts)
	for _, h := range hosts {
		if _, err := transport.Query(h); err != nil {
			r.AgentsUnreachable = append(r.AgentsUnreachable, h)
		}
	}
	if len(r.AgentsUnreachable) > 0 {
		r.Ready = false
	}
	if st, ok := s.RaftStatusReport(); ok {
		r.Role = st.Role
		if st.QuorumReachable {
			r.Quorum = "reachable"
		} else {
			// Severed from the majority: this node can neither commit (if a
			// stale leader) nor serve fresh reads safely.
			r.Quorum = "lost"
			r.Ready = false
		}
	}
	return r
}

// handleHealthz is the unauthenticated liveness probe: it answers 200 as
// long as the process serves HTTP. No state is revealed, so no auth — load
// balancers and init systems probe it without credentials.
func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the reader-gated readiness probe: 200 with the check
// detail when every dependency is healthy, 503 otherwise.
func (a *API) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	rd := a.svc.Readiness()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}
