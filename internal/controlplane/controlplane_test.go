package controlplane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/core"
)

const testToken = "cp-secret"

// testService wires a 3-node simulated cluster behind a control plane with
// a fully cabled point-to-point fabric (2 channels between each pair).
func testService(t *testing.T) (*Service, *core.Cluster) {
	return testServiceWith(t, nil)
}

func testServiceWith(t *testing.T, mutate func(*core.HostConfig)) (*Service, *core.Cluster) {
	t.Helper()
	c := core.NewCluster()
	names := []string{"node0", "node1", "node2"}
	for _, n := range names {
		cfg := core.DefaultHostConfig(n)
		cfg.SectionSize = 1 << 20
		cfg.RMMUSections = 64
		if mutate != nil {
			mutate(&cfg)
		}
		if _, err := c.AddHost(cfg); err != nil {
			t.Fatal(err)
		}
	}
	m := NewModel()
	for _, n := range names {
		if err := m.AddHost(n, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Direct-attach cabling: compute transceiver i of each host to memory
	// transceiver i of each other host.
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			ca := m.Transceivers(a, LabelComputeEP)
			mb := m.Transceivers(b, LabelMemoryEP)
			for i := range ca {
				if i < len(mb) {
					if err := m.Cable(ca[i], mb[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	svc := NewService(m, ClusterExecutor{Cluster: c}, testToken)
	for _, n := range names {
		svc.RegisterAgent(agent.New(n, testToken))
	}
	return svc, c
}

func TestAttachDetachLifecycle(t *testing.T) {
	svc, cluster := testService(t)
	rec, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 4 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.NUMANode == 0 {
		t.Fatal("attachment did not produce a new NUMA node")
	}
	if len(rec.PathLen) != 1 {
		t.Fatalf("paths = %v", rec.PathLen)
	}
	if _, ok := cluster.Attachment(rec.ID); !ok {
		t.Fatal("cluster has no matching attachment")
	}
	// One compute transceiver reserved.
	if free := svc.Model().FreeTransceivers("node0", LabelComputeEP); free != 1 {
		t.Fatalf("free compute transceivers = %d, want 1", free)
	}
	if err := svc.Detach(rec.ID); err != nil {
		t.Fatal(err)
	}
	if free := svc.Model().FreeTransceivers("node0", LabelComputeEP); free != 2 {
		t.Fatalf("free compute transceivers after detach = %d, want 2", free)
	}
	if len(cluster.Attachments()) != 0 {
		t.Fatal("cluster attachment not removed")
	}
}

func TestPlanExhaustsTransceivers(t *testing.T) {
	svc, _ := testService(t)
	// Two channels consume both of node0's compute transceivers.
	if _, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node2", Bytes: 1 << 20, Channels: 1,
	}); err == nil {
		t.Fatal("attach with exhausted transceivers succeeded")
	}
}

func TestFailedExecutorRollsBackReservations(t *testing.T) {
	svc, _ := testService(t)
	// Donor cannot satisfy this much memory: executor fails, reservations
	// must be released.
	if _, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 50, Channels: 1,
	}); err == nil {
		t.Fatal("impossible attach succeeded")
	}
	if free := svc.Model().FreeTransceivers("node0", LabelComputeEP); free != 2 {
		t.Fatalf("reservations leaked after failed attach: free = %d", free)
	}
}

func TestAgentRejectsUntrustedPush(t *testing.T) {
	a := agent.New("node0", "good-token")
	err := a.Apply("evil-token", agent.Command{Kind: agent.CmdStealMemory, Bytes: 1 << 20})
	if err == nil {
		t.Fatal("untrusted configuration accepted")
	}
	if a.Rejected() != 1 || len(a.Applied()) != 0 {
		t.Fatalf("rejected=%d applied=%d", a.Rejected(), len(a.Applied()))
	}
	if err := a.Apply("good-token", agent.Command{Kind: agent.CmdStealMemory, Bytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if len(a.Applied()) != 1 {
		t.Fatal("trusted command not applied")
	}
}

func TestSwitchTopologyPathing(t *testing.T) {
	m := NewModel()
	if err := m.AddHost("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddHost("b", 1); err != nil {
		t.Fatal(err)
	}
	ports, err := m.AddSwitch("sw0", 4)
	if err != nil {
		t.Fatal(err)
	}
	// a.compute[0] -- sw port0; sw port1 -- b.memory[0]
	if err := m.Cable(m.Transceivers("a", LabelComputeEP)[0], ports[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Cable(ports[1], m.Transceivers("b", LabelMemoryEP)[0]); err != nil {
		t.Fatal(err)
	}
	paths, err := m.PlanChannels("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[0].Vertices) != 4 {
		t.Fatalf("switched path length = %d, want 4 (txcvr, 2 ports, txcvr)", len(paths[0].Vertices))
	}
	// The switch ports are now reserved; a second channel must fail.
	if _, err := m.PlanChannels("a", "b", 1); err == nil {
		t.Fatal("second channel through exhausted fabric succeeded")
	}
	m.ReleasePaths(paths)
	if _, err := m.PlanChannels("a", "b", 1); err != nil {
		t.Fatalf("re-plan after release: %v", err)
	}
}

// REST tests.

func restAPI(t *testing.T) (*API, *Service) {
	svc, _ := testService(t)
	api := NewAPI(svc, AuthConfig{
		AdminTokens:  []string{"admin-tok"},
		ReaderTokens: []string{"reader-tok"},
	})
	return api, svc
}

func doReq(t *testing.T, api *API, method, path, token string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, _ := json.Marshal(body)
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	api.ServeHTTP(w, req)
	return w
}

func TestRESTAttachFlow(t *testing.T) {
	api, _ := restAPI(t)
	w := doReq(t, api, http.MethodPost, "/v1/attachments", "admin-tok", AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 2 << 20, Channels: 2,
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("POST status = %d body=%s", w.Code, w.Body.String())
	}
	var rec AttachmentRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Channels != 2 || rec.ID == "" {
		t.Fatalf("record = %+v", rec)
	}

	w = doReq(t, api, http.MethodGet, "/v1/attachments", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET list status = %d", w.Code)
	}
	var list []AttachmentRecord
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != rec.ID {
		t.Fatalf("list = %+v", list)
	}

	w = doReq(t, api, http.MethodGet, "/v1/attachments/"+rec.ID, "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET one status = %d", w.Code)
	}

	w = doReq(t, api, http.MethodDelete, "/v1/attachments/"+rec.ID, "admin-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE status = %d body=%s", w.Code, w.Body.String())
	}
	w = doReq(t, api, http.MethodGet, "/v1/attachments/"+rec.ID, "reader-tok", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("GET deleted status = %d", w.Code)
	}
}

func TestRESTAccessControl(t *testing.T) {
	api, _ := restAPI(t)
	// No token: 401.
	if w := doReq(t, api, http.MethodGet, "/v1/attachments", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("no token status = %d", w.Code)
	}
	// Reader cannot write: 403.
	if w := doReq(t, api, http.MethodPost, "/v1/attachments", "reader-tok", AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20,
	}); w.Code != http.StatusForbidden {
		t.Fatalf("reader write status = %d", w.Code)
	}
	// Unknown token: 401.
	if w := doReq(t, api, http.MethodGet, "/v1/attachments", "bogus", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("bogus token status = %d", w.Code)
	}
	// Reader can read topology.
	if w := doReq(t, api, http.MethodGet, "/v1/topology", "reader-tok", nil); w.Code != http.StatusOK {
		t.Fatalf("topology status = %d", w.Code)
	}
}

func TestRESTTopologyShape(t *testing.T) {
	api, _ := restAPI(t)
	w := doReq(t, api, http.MethodGet, "/v1/topology", "admin-tok", nil)
	var view topologyView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	// 3 hosts x (1 host + 2 endpoints + 4 transceivers) = 21 vertices.
	if len(view.Vertices) != 21 {
		t.Fatalf("vertices = %d, want 21", len(view.Vertices))
	}
	if len(view.Edges) == 0 {
		t.Fatal("no edges in topology")
	}
}

func TestRESTBadBody(t *testing.T) {
	api, _ := restAPI(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/attachments", bytes.NewReader([]byte("{not json")))
	req.Header.Set("Authorization", "Bearer admin-tok")
	w := httptest.NewRecorder()
	api.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", w.Code)
	}
}

func TestRESTAttachmentStats(t *testing.T) {
	api, _ := restAPI(t)
	w := doReq(t, api, http.MethodPost, "/v1/attachments", "admin-tok", AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("POST status = %d", w.Code)
	}
	var rec AttachmentRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	w = doReq(t, api, http.MethodGet, "/v1/attachments/"+rec.ID+"/stats", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats status = %d body=%s", w.Code, w.Body.String())
	}
	var ts map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &ts); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tx_transactions", "backend_bytes", "hbm_hits"} {
		if _, ok := ts[key]; !ok {
			t.Fatalf("stats missing %q: %v", key, ts)
		}
	}
	// Unknown attachment -> 404; no token -> 401.
	if w := doReq(t, api, http.MethodGet, "/v1/attachments/nope/stats", "reader-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown stats status = %d", w.Code)
	}
	if w := doReq(t, api, http.MethodGet, "/v1/attachments/"+rec.ID+"/stats", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("unauthorized stats status = %d", w.Code)
	}
}

func TestRESTAttachmentState(t *testing.T) {
	api, svc := restAPI(t)
	w := doReq(t, api, http.MethodPost, "/v1/attachments", "admin-tok", AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("POST status = %d", w.Code)
	}
	var rec AttachmentRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	w = doReq(t, api, http.MethodGet, "/v1/attachments/"+rec.ID+"/state", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("state status = %d body=%s", w.Code, w.Body.String())
	}
	var st map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st["state"] != "active" {
		t.Fatalf("state = %q, want active", st["state"])
	}
	if got, ok := svc.AttachmentState(rec.ID); !ok || got != "active" {
		t.Fatalf("service state = %q ok=%v", got, ok)
	}
	if w := doReq(t, api, http.MethodGet, "/v1/attachments/nope/state", "reader-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown state status = %d", w.Code)
	}
	if w := doReq(t, api, http.MethodGet, "/v1/attachments/"+rec.ID+"/state", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("unauthorized state status = %d", w.Code)
	}
}
