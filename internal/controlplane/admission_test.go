package controlplane

import (
	"errors"
	"testing"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/mem"
)

// gateExecutor blocks inside the executor step until released, keeping one
// saga in flight for as long as the test needs.
type gateExecutor struct {
	entered chan struct{}
	release chan struct{}
}

func (g *gateExecutor) Attach(compute, donor string, bytes int64, channels int) (string, mem.NodeID, error) {
	g.entered <- struct{}{}
	<-g.release
	return "att-gated", 1, nil
}

func (g *gateExecutor) Detach(id string) error { return nil }

// TestSagaAdmissionLimit verifies SetMaxInflightSagas: while one saga is
// executing, further requests are rejected with ErrOverloaded *before*
// queueing on the saga mutex, the rejection counts as SagasRejected, and
// the limit frees up as soon as the in-flight saga returns.
func TestSagaAdmissionLimit(t *testing.T) {
	m := NewModel()
	for _, n := range []string{"node0", "node1"} {
		if err := m.AddHost(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	ca := m.Transceivers("node0", LabelComputeEP)
	mb := m.Transceivers("node1", LabelMemoryEP)
	if err := m.Cable(ca[0], mb[0]); err != nil {
		t.Fatal(err)
	}
	gate := &gateExecutor{entered: make(chan struct{}), release: make(chan struct{})}
	svc := NewService(m, gate, testToken)
	for _, n := range []string{"node0", "node1"} {
		svc.RegisterAgent(agent.New(n, testToken))
	}
	svc.SetMaxInflightSagas(1)

	req := AttachRequest{ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1}
	done := make(chan error, 1)
	go func() {
		_, err := svc.Attach(req)
		done <- err
	}()
	<-gate.entered // first saga is mid-executor-step, holding the saga mutex

	if _, err := svc.Attach(req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second attach got %v, want ErrOverloaded", err)
	}
	if err := svc.Detach("whatever"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("detach during overload got %v, want ErrOverloaded", err)
	}
	if n := svc.InflightSagas(); n != 1 {
		t.Fatalf("inflight = %d, want 1", n)
	}

	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("gated attach failed: %v", err)
	}

	// The slot freed up: a detach of the committed attachment is admitted
	// (executor detach is a no-op stub; the saga commits normally).
	if err := svc.Detach("att-gated"); err != nil {
		t.Fatalf("detach after release: %v", err)
	}
	if c := svc.Counters(); c.SagasRejected != 2 {
		t.Fatalf("SagasRejected = %d, want 2", c.SagasRejected)
	}
	if n := svc.InflightSagas(); n != 0 {
		t.Fatalf("inflight after drain = %d, want 0", n)
	}

	// n <= 0 removes the bound.
	svc.SetMaxInflightSagas(0)
	if _, err := svc.Attach(AttachRequest{ComputeHost: "node0", DonorHost: "node1", Bytes: -1}); errors.Is(err, ErrOverloaded) {
		t.Fatal("unlimited admission still rejecting")
	}
}
