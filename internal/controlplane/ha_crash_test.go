package controlplane

import (
	"fmt"
	"testing"
)

// journalPrefix asserts that every entry committed before the leader died
// is still present, in order, in the new leader's committed journal — the
// "no committed saga progress is ever lost to failover" half of the HA
// crash-point property.
func journalPrefix(t *testing.T, before, after []JournalEntry) {
	t.Helper()
	if len(after) < len(before) {
		t.Fatalf("new leader lost committed entries: %d before kill, %d after failover", len(before), len(after))
	}
	for i := range before {
		b, a := before[i], after[i]
		if b.Seq != a.Seq || b.SagaID != a.SagaID || b.Event != a.Event || b.Step != a.Step {
			t.Fatalf("committed entry %d rewritten by failover: %+v -> %+v", i, b, a)
		}
	}
}

// TestLeaderKillCrashPointRecovery is the HA variant of
// TestCrashPointAttachRecovery: the control plane journals through a
// 3-node replicated journal, and the leader process is killed after every
// quorum-committed append (under a lossy agent transport). A successor is
// elected, a fresh control plane recovers from the successor's replica,
// reconciles, and must converge with zero committed sagas lost and zero
// orphaned donor memory.
func TestLeaderKillCrashPointRecovery(t *testing.T) {
	const seeds = 4
	const maxKillPoint = 12
	for seed := int64(1); seed <= seeds; seed++ {
		for kp := 0; kp <= maxKillPoint; kp++ {
			t.Run(fmt.Sprintf("seed%d/kill%d", seed, kp), func(t *testing.T) {
				env := newCrashEnv(t, 70000+seed*1000+int64(kp))
				rs, leader := newTestReplicaSet(t, seed*100+int64(kp))

				// The first control plane journals through the leader's
				// replica; the crash wrapper kills the "process" after kp
				// accepted (hence quorum-committed) appends.
				env.journal = NewCrashableJournal(rs.Journal(leader))
				svc1 := env.service(env.faulty)
				svc1.SetLeaderGate(rs.Gate(leader))
				env.journal.FailAfter(kp)
				_, attachErr := svc1.Attach(AttachRequest{
					ComputeHost: "node0", DonorHost: "node1", Bytes: 4 << 20, Channels: 1,
				})
				if attachErr != nil && !isCrash(attachErr) && !IsTransient(attachErr) && kp < 10 {
					t.Fatalf("attach failed for a non-crash reason before the kill point: %v", attachErr)
				}

				// Everything the dead leader quorum-committed is ground truth.
				before, err := rs.CommittedEntries(leader)
				if err != nil {
					t.Fatal(err)
				}

				// Kill the leader node itself and fail over.
				rs.Stop(leader)
				next, err := rs.ElectLeader(800)
				if err != nil {
					t.Fatal(err)
				}
				if next == leader {
					t.Fatal("dead leader re-elected")
				}

				// The successor control plane recovers from its own replica
				// of the journal, heals the transport, and reconciles.
				env.journal = NewCrashableJournal(rs.Journal(next))
				svc2 := restartAndHeal(t, env)
				svc2.SetLeaderGate(rs.Gate(next))
				assertConverged(t, env, svc2)

				after, err := rs.CommittedEntries(next)
				if err != nil {
					t.Fatal(err)
				}
				journalPrefix(t, before, after)
			})
		}
	}
}

// TestLeaderKillCrashPointDetach crashes the leader after every
// quorum-committed append of a detach saga. After failover + recovery +
// reconcile the attachment is fully gone (detach rolled forward) or fully
// present (detach never began) — never half-torn-down, never resurrected
// donor memory.
func TestLeaderKillCrashPointDetach(t *testing.T) {
	const seeds = 4
	const maxKillPoint = 12
	for seed := int64(1); seed <= seeds; seed++ {
		for kp := 0; kp <= maxKillPoint; kp++ {
			t.Run(fmt.Sprintf("seed%d/kill%d", seed, kp), func(t *testing.T) {
				env := newCrashEnv(t, 80000+seed*1000+int64(kp))
				rs, leader := newTestReplicaSet(t, 500+seed*100+int64(kp))

				// Setup attach over the reliable transport, fully committed.
				env.journal = NewCrashableJournal(rs.Journal(leader))
				setup := env.service(env.inner)
				setup.SetLeaderGate(rs.Gate(leader))
				rec, err := setup.Attach(AttachRequest{
					ComputeHost: "node0", DonorHost: "node1", Bytes: 4 << 20, Channels: 1,
				})
				if err != nil {
					t.Fatal(err)
				}

				// Detach under the lossy transport, leader killed after kp
				// further appends.
				env.journal.FailAfter(kp)
				detachErr := setup.Detach(rec.ID)

				before, err := rs.CommittedEntries(leader)
				if err != nil {
					t.Fatal(err)
				}
				rs.Stop(leader)
				next, err := rs.ElectLeader(800)
				if err != nil {
					t.Fatal(err)
				}

				env.journal = NewCrashableJournal(rs.Journal(next))
				svc2 := restartAndHeal(t, env)
				assertConverged(t, env, svc2)

				after, err := rs.CommittedEntries(next)
				if err != nil {
					t.Fatal(err)
				}
				journalPrefix(t, before, after)

				// Once the detach begin is quorum-committed (kp >= 1) or the
				// detach finished cleanly, recovery rolls it forward.
				if kp >= 1 || detachErr == nil {
					if _, ok := svc2.Attachment(rec.ID); ok {
						t.Fatal("detached attachment resurrected after failover")
					}
					if _, ok := env.cluster.Attachment(rec.ID); ok {
						t.Fatal("datapath attachment survived rolled-forward detach")
					}
				}
			})
		}
	}
}
