package controlplane

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"thymesisflow/internal/agent"
)

// TestHealthzUnauthenticated: the liveness probe answers without credentials
// (load balancers and init systems probe it token-less) and rejects non-GET.
func TestHealthzUnauthenticated(t *testing.T) {
	api, _ := restAPI(t)
	w := doReq(t, api, http.MethodGet, "/v1/healthz", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status = %d body=%s", w.Code, w.Body.String())
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body = %v", body)
	}
	if w := doReq(t, api, http.MethodPost, "/v1/healthz", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("healthz POST status = %d", w.Code)
	}
}

func readyz(t *testing.T, api *API, token string) (int, Readiness) {
	t.Helper()
	w := doReq(t, api, http.MethodGet, "/v1/readyz", token, nil)
	var rd Readiness
	if w.Code == http.StatusOK || w.Code == http.StatusServiceUnavailable {
		if err := json.Unmarshal(w.Body.Bytes(), &rd); err != nil {
			t.Fatal(err)
		}
	}
	return w.Code, rd
}

func TestReadyzHealthyService(t *testing.T) {
	api, _ := restAPI(t)
	// Readiness reveals dependency state, so it is reader-gated.
	if code, _ := readyz(t, api, ""); code != http.StatusUnauthorized {
		t.Fatalf("readyz without token status = %d", code)
	}
	code, rd := readyz(t, api, "reader-tok")
	if code != http.StatusOK || !rd.Ready {
		t.Fatalf("readyz = %d %+v", code, rd)
	}
	if rd.Journal != "ok" || rd.Reconciler != "disabled" || rd.AgentsTotal != 3 {
		t.Fatalf("readiness detail = %+v", rd)
	}
}

func TestReadyzJournalFailure(t *testing.T) {
	api, svc := restAPI(t)
	cj := NewCrashableJournal(NewMemJournal())
	svc.SetJournal(cj)
	cj.FailAfter(0)
	if _, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	}); !IsCrash(err) {
		t.Fatalf("err = %v, want crash", err)
	}
	code, rd := readyz(t, api, "reader-tok")
	if code != http.StatusServiceUnavailable || rd.Ready {
		t.Fatalf("readyz after journal failure = %d %+v", code, rd)
	}
	if rd.Journal == "ok" {
		t.Fatalf("journal check = %q, want the append error", rd.Journal)
	}
	// Journal heals: the next successful append clears the sticky error.
	cj.FailAfter(-1)
	if _, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if code, rd := readyz(t, api, "reader-tok"); code != http.StatusOK || rd.Journal != "ok" {
		t.Fatalf("readyz after heal = %d %+v", code, rd)
	}
}

func TestReadyzReconcilerLifecycle(t *testing.T) {
	api, svc := restAPI(t)
	stop := svc.StartReconciler(time.Hour)
	if code, rd := readyz(t, api, "reader-tok"); code != http.StatusOK || rd.Reconciler != "running" {
		t.Fatalf("readyz with reconciler = %d %+v", code, rd)
	}
	stop()
	code, rd := readyz(t, api, "reader-tok")
	if code != http.StatusServiceUnavailable || rd.Reconciler != "stopped" {
		t.Fatalf("readyz after stop = %d %+v", code, rd)
	}
}

// deadQueryTransport fails every status query, simulating unreachable agent
// daemons while commands still flow.
type deadQueryTransport struct{ Transport }

func (d deadQueryTransport) Query(string) (agent.Status, error) {
	return agent.Status{}, errors.New("agent daemon unreachable")
}

func TestReadyzUnreachableAgents(t *testing.T) {
	svc, _ := testService(t)
	svc.SetTransport(deadQueryTransport{svc.transport})
	api := NewAPI(svc, AuthConfig{ReaderTokens: []string{"reader-tok"}})
	code, rd := readyz(t, api, "reader-tok")
	if code != http.StatusServiceUnavailable || rd.Ready {
		t.Fatalf("readyz with dead agents = %d %+v", code, rd)
	}
	if len(rd.AgentsUnreachable) != 3 {
		t.Fatalf("unreachable = %v, want all 3", rd.AgentsUnreachable)
	}
}
