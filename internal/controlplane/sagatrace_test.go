package controlplane

import (
	"encoding/json"
	"net/http"
	"testing"

	"thymesisflow/internal/trace"
)

// tracedFaultService is testFaultService plus saga tracing on a deterministic
// step clock, so event timelines are byte-stable.
func tracedFaultService(t *testing.T, faults TransportFaults) (*Service, *FaultyTransport, *trace.EventLog) {
	t.Helper()
	svc, _, ft := testFaultService(t, faults)
	elog := trace.NewEventLog(0)
	svc.SetSagaTracing(elog, trace.StepClock(1_000, 10))
	return svc, ft, elog
}

// TestSagaTraceStagesSumToWallTime is the tentpole acceptance check: a saga
// run through a lossy transport (forcing retries and backoff) produces a
// trace whose per-stage spans sum exactly to the end-to-end wall time.
func TestSagaTraceStagesSumToWallTime(t *testing.T) {
	svc, ft, _ := tracedFaultService(t, TransportFaults{})
	ft.FailNext("node1", 2) // donor: first two steal deliveries dropped

	rec, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 2 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	st, events, ok := svc.SagaTraceByID(rec.SagaID)
	if !ok {
		t.Fatal("no trace for committed saga")
	}
	if st.State != "committed" {
		t.Fatalf("trace state = %q, want committed", st.State)
	}
	if st.TotalNS <= 0 {
		t.Fatalf("total = %d, want > 0", st.TotalNS)
	}
	var sum int64
	byName := make(map[string]int64)
	for _, sp := range st.Stages {
		sum += sp.DurNS
		byName[sp.Name] = sp.DurNS
	}
	if sum != st.TotalNS {
		t.Fatalf("stage sum %d != total %d (stages %+v)", sum, st.TotalNS, st.Stages)
	}
	// The scripted drops forced retries, so backoff wait must be attributed.
	if byName["backoff"] <= 0 {
		t.Fatalf("no backoff stage despite retries: %+v", st.Stages)
	}
	if byName["journal"] <= 0 || byName["agent"] <= 0 {
		t.Fatalf("missing journal/agent stages: %+v", st.Stages)
	}

	// Agent-side handling joined the same trace via the propagated span
	// context on agent.Command.
	var agentEvents, dedupes int
	for _, e := range events {
		if e.Trace != st.Trace {
			t.Fatalf("event outside saga trace: %+v", e)
		}
		if e.Source == "agent" {
			agentEvents++
			if e.Kind == trace.KindAgentDedupe {
				dedupes++
			}
			if e.Span == 0 {
				t.Fatalf("agent event without span: %+v", e)
			}
		}
	}
	if agentEvents < 2 {
		t.Fatalf("agent events = %d, want >= 2 (steal + attach)", agentEvents)
	}

	// Timestamps on the deterministic step clock strictly increase.
	for i := 1; i < len(events); i++ {
		if events[i].WallNS <= events[i-1].WallNS {
			t.Fatalf("timeline not monotonic at %d: %+v", i, events[i])
		}
	}
	_ = dedupes // drops never delivered, so no dedupe is expected here
}

// TestSagaTraceDuplicateDeliveryRecordsDedupe drives an ambiguous send (the
// command lands, the ack is lost) and asserts the agent-side replay
// suppression is visible in the trace.
func TestSagaTraceDuplicateDeliveryRecordsDedupe(t *testing.T) {
	svc, _, elog := tracedFaultService(t, TransportFaults{AmbiguousProb: 1, Seed: 7})
	// Every send reports a transient failure after delivering, so the saga
	// retries until MaxAttempts and the agent dedupes the replays; with
	// AmbiguousProb 1 the step finally fails and the saga compensates.
	_, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if err == nil {
		t.Fatal("attach over fully-ambiguous transport succeeded")
	}
	var dedupes, retries int
	for _, e := range elog.Snapshot() {
		switch e.Kind {
		case trace.KindAgentDedupe:
			dedupes++
		case trace.KindCmdRetry:
			retries++
		}
	}
	if dedupes == 0 {
		t.Fatal("no agent_dedupe events despite replayed deliveries")
	}
	if retries == 0 {
		t.Fatal("no cmd_retry events despite ambiguous sends")
	}
}

// TestSagaTraceRecoveryAndReconcileEvents asserts journal replay and
// reconciliation sweeps land in the event log with their own traces.
func TestSagaTraceRecoveryAndReconcileEvents(t *testing.T) {
	svc, _, ft := testFaultService(t, TransportFaults{})
	cj := NewCrashableJournal(NewMemJournal())
	svc.SetJournal(cj)
	elog := trace.NewEventLog(0)
	svc.SetSagaTracing(elog, trace.StepClock(0, 5))

	// Crash mid-attach: after the begin + first intent entries.
	cj.FailAfter(2)
	if _, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	}); !IsCrash(err) {
		t.Fatalf("err = %v, want crash", err)
	}
	cj.FailAfter(-1)

	// Restart: a fresh service over the same journal and agents.
	svc2 := NewService(svc.Model(), svc.exec, testToken)
	svc2.SetJournal(cj)
	svc2.SetTransport(ft)
	elog2 := trace.NewEventLog(0)
	svc2.SetSagaTracing(elog2, trace.StepClock(0, 5))
	if _, err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	svc2.Reconcile()

	kinds := make(map[string]int)
	for _, e := range elog2.Snapshot() {
		kinds[e.Kind]++
	}
	for _, k := range []string{
		trace.KindRecoveryBegin, trace.KindRecoverySaga, trace.KindRecoveryEnd,
		trace.KindReconcileBegin, trace.KindReconcileEnd,
	} {
		if kinds[k] == 0 {
			t.Fatalf("no %s event; kinds = %v", k, kinds)
		}
	}
}

// TestSagaTraceRESTEndpoints exercises GET /v1/events and
// GET /v1/sagas/{id}/trace through the REST frontend.
func TestSagaTraceRESTEndpoints(t *testing.T) {
	api, svc := restAPI(t)

	// Tracing off: the event log is not configured.
	if w := doReq(t, api, http.MethodGet, "/v1/events", "reader-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("events without tracing status = %d", w.Code)
	}

	svc.SetSagaTracing(trace.NewEventLog(0), trace.StepClock(0, 3))
	w := doReq(t, api, http.MethodPost, "/v1/attachments", "admin-tok", AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("POST status = %d body=%s", w.Code, w.Body.String())
	}

	// Auth: events and traces are reader-gated.
	if w := doReq(t, api, http.MethodGet, "/v1/events", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("events without token status = %d", w.Code)
	}

	w = doReq(t, api, http.MethodGet, "/v1/events", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("events status = %d body=%s", w.Code, w.Body.String())
	}
	var ev eventsView
	if err := json.Unmarshal(w.Body.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Recorded == 0 || len(ev.Events) == 0 {
		t.Fatalf("empty event log after attach: %+v", ev)
	}

	// ?n=K limits to the most recent K.
	w = doReq(t, api, http.MethodGet, "/v1/events?n=2", "reader-tok", nil)
	var tail eventsView
	if err := json.Unmarshal(w.Body.Bytes(), &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) != 2 || tail.Events[1].Seq != ev.Events[len(ev.Events)-1].Seq {
		t.Fatalf("tail = %+v", tail.Events)
	}
	if w := doReq(t, api, http.MethodGet, "/v1/events?n=x", "reader-tok", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad n status = %d", w.Code)
	}

	// Per-saga timeline.
	w = doReq(t, api, http.MethodGet, "/v1/sagas/saga-1/trace", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("saga trace status = %d body=%s", w.Code, w.Body.String())
	}
	var tv sagaTraceView
	if err := json.Unmarshal(w.Body.Bytes(), &tv); err != nil {
		t.Fatal(err)
	}
	if tv.Trace.Saga != "saga-1" || len(tv.Events) == 0 || len(tv.Trace.Stages) == 0 {
		t.Fatalf("trace view = %+v", tv.Trace)
	}
	var sum int64
	for _, sp := range tv.Trace.Stages {
		sum += sp.DurNS
	}
	if sum != tv.Trace.TotalNS {
		t.Fatalf("REST stage sum %d != total %d", sum, tv.Trace.TotalNS)
	}

	if w := doReq(t, api, http.MethodGet, "/v1/sagas/nope/trace", "reader-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown saga trace status = %d", w.Code)
	}
	if w := doReq(t, api, http.MethodGet, "/v1/sagas/saga-1/bogus", "reader-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("bogus saga subresource status = %d", w.Code)
	}
}

// TestSagaStatusCarriesTraceID asserts GET /v1/sagas exposes the trace ID so
// operators can jump from saga status to its timeline.
func TestSagaStatusCarriesTraceID(t *testing.T) {
	svc, _, _ := tracedFaultService(t, TransportFaults{})
	rec, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range svc.Sagas() {
		if st.ID == rec.SagaID && st.Trace == 0 {
			t.Fatalf("saga status has no trace: %+v", st)
		}
	}
}
