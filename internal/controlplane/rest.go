package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Role is an API access level.
type Role int

// Access levels.
const (
	RoleNone Role = iota
	RoleReader
	RoleAdmin
)

// AuthConfig maps bearer tokens to roles.
type AuthConfig struct {
	AdminTokens  []string
	ReaderTokens []string
}

func (a AuthConfig) roleOf(token string) Role {
	for _, t := range a.AdminTokens {
		if token == t && t != "" {
			return RoleAdmin
		}
	}
	for _, t := range a.ReaderTokens {
		if token == t && t != "" {
			return RoleReader
		}
	}
	return RoleNone
}

// API is the REST frontend of the control plane. The various remote memory
// allocation/deallocation interactions occur via this API; an access
// control system ensures only users with enough privileges can act on the
// system status (Section IV-C).
type API struct {
	svc  *Service
	auth AuthConfig
	mux  *http.ServeMux
}

// NewAPI builds the REST frontend.
func NewAPI(svc *Service, auth AuthConfig) *API {
	a := &API{svc: svc, auth: auth, mux: http.NewServeMux()}
	a.mux.HandleFunc("/v1/attachments", a.handleAttachments)
	a.mux.HandleFunc("/v1/attachments/", a.handleAttachment)
	a.mux.HandleFunc("/v1/topology", a.handleTopology)
	a.mux.HandleFunc("/v1/metrics", a.handleMetrics)
	a.mux.HandleFunc("/v1/sagas", a.handleSagas)
	a.mux.HandleFunc("/v1/sagas/", a.handleSagaSub)
	a.mux.HandleFunc("/v1/latency", a.handleLatency)
	a.mux.HandleFunc("/v1/trace/snapshot", a.handleTraceSnapshot)
	a.mux.HandleFunc("/v1/events", a.handleEvents)
	a.mux.HandleFunc("/v1/timeseries", a.handleTimeseries)
	a.mux.HandleFunc("/v1/anomalies", a.handleAnomalies)
	a.mux.HandleFunc("/v1/healthz", a.handleHealthz)
	a.mux.HandleFunc("/v1/readyz", a.handleReadyz)
	a.mux.HandleFunc("/v1/raft/status", a.handleRaftStatus)
	return a
}

// handleRaftStatus serves this replica's Raft state (role, term,
// commit/applied indices, member table). 404 on a single-node control
// plane with no replication bound.
func (a *API) handleRaftStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	st, ok := a.svc.RaftStatusReport()
	if !ok {
		writeErr(w, http.StatusNotFound, "control plane is not raft-replicated")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// writeNotLeader maps ErrNotLeader to a 421 Misdirected Request with the
// leader hint in both the X-Raft-Leader header and the body, so clients
// (and tfctl) can re-aim writes at the leader.
func writeNotLeader(w http.ResponseWriter, err error) {
	var nl *NotLeaderError
	leader := ""
	if errors.As(err, &nl) {
		leader = nl.Leader
	}
	if leader != "" {
		w.Header().Set("X-Raft-Leader", leader)
	}
	writeJSON(w, http.StatusMisdirectedRequest, map[string]string{"error": err.Error(), "leader": leader})
}

// handleSagaSub routes /v1/sagas/{id}/trace.
func (a *API) handleSagaSub(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/sagas/")
	if rest, found := strings.CutSuffix(id, "/trace"); found && rest != "" {
		a.handleSagaTrace(w, r, rest)
		return
	}
	writeErr(w, http.StatusNotFound, "unknown saga resource")
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

func (a *API) authorize(w http.ResponseWriter, r *http.Request, need Role) bool {
	h := r.Header.Get("Authorization")
	token := strings.TrimPrefix(h, "Bearer ")
	role := a.auth.roleOf(token)
	if role >= need {
		return true
	}
	status := http.StatusForbidden
	if role == RoleNone {
		status = http.StatusUnauthorized
	}
	writeErr(w, status, "insufficient privileges")
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (a *API) handleAttachments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		if !a.authorize(w, r, RoleReader) {
			return
		}
		writeJSON(w, http.StatusOK, a.svc.Attachments())
	case http.MethodPost:
		if !a.authorize(w, r, RoleAdmin) {
			return
		}
		var req AttachRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		rec, err := a.svc.Attach(req)
		if err != nil {
			if errors.Is(err, ErrNotLeader) {
				writeNotLeader(w, err)
				return
			}
			writeErr(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, rec)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

func (a *API) handleAttachment(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/attachments/")
	if id == "" {
		writeErr(w, http.StatusNotFound, "missing attachment id")
		return
	}
	if rest, found := strings.CutSuffix(id, "/state"); found {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		if !a.authorize(w, r, RoleReader) {
			return
		}
		st, ok := a.svc.AttachmentState(rest)
		if !ok {
			writeErr(w, http.StatusNotFound, "no state for attachment")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": rest, "state": st})
		return
	}
	if rest, found := strings.CutSuffix(id, "/stats"); found {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		if !a.authorize(w, r, RoleReader) {
			return
		}
		ts, ok := a.svc.Traffic(rest)
		if !ok {
			writeErr(w, http.StatusNotFound, "no stats for attachment")
			return
		}
		writeJSON(w, http.StatusOK, ts)
		return
	}
	switch r.Method {
	case http.MethodGet:
		if !a.authorize(w, r, RoleReader) {
			return
		}
		rec, ok := a.svc.Attachment(id)
		if !ok {
			writeErr(w, http.StatusNotFound, "no such attachment")
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case http.MethodDelete:
		if !a.authorize(w, r, RoleAdmin) {
			return
		}
		if err := a.svc.Detach(id); err != nil {
			if errors.Is(err, ErrNotLeader) {
				writeNotLeader(w, err)
				return
			}
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "detached"})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// sagasView is the JSON shape of GET /v1/sagas: saga progress plus the
// fault-handling counters, so operators can watch retries, compensations,
// and parked sagas without scraping metrics.
type sagasView struct {
	Sagas    []SagaStatus `json:"sagas"`
	Parked   []string     `json:"parked,omitempty"`
	Counters SagaCounters `json:"counters"`
}

func (a *API) handleSagas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	writeJSON(w, http.StatusOK, sagasView{
		Sagas:    a.svc.Sagas(),
		Parked:   a.svc.ParkedSagas(),
		Counters: a.svc.Counters(),
	})
}

// topologyView is the JSON shape of GET /v1/topology.
type topologyView struct {
	Vertices []topologyVertex `json:"vertices"`
	Edges    []topologyEdge   `json:"edges"`
}

type topologyVertex struct {
	ID    int64          `json:"id"`
	Label string         `json:"label"`
	Props map[string]any `json:"props,omitempty"`
}

type topologyEdge struct {
	A int64 `json:"a"`
	B int64 `json:"b"`
}

func (a *API) handleTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	g := a.svc.Model().Graph()
	var view topologyView
	for _, label := range []string{LabelHost, LabelComputeEP, LabelMemoryEP, LabelTransceiver, LabelSwitchPort} {
		for _, id := range g.VerticesByLabel(label) {
			v, _ := g.Vertex(id)
			view.Vertices = append(view.Vertices, topologyVertex{
				ID: int64(v.ID), Label: v.Label, Props: v.Props,
			})
			for _, n := range g.Neighbors(id) {
				if n > id {
					view.Edges = append(view.Edges, topologyEdge{A: int64(id), B: int64(n)})
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, view)
}
