package controlplane

import (
	"sort"
	"time"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/graphdb"
	"thymesisflow/internal/trace"
)

// ReconcileReport summarizes one reconciliation sweep: what the diff of
// control-plane records against executor, agent, and fabric ground truth
// found, and how much of it was repaired.
type ReconcileReport struct {
	// ParkedDrained counts parked sagas whose pending agent detaches were
	// finally confirmed.
	ParkedDrained int `json:"parked_drained"`
	// OrphanExecDetached counts executor attachments with no control-plane
	// record that were torn down.
	OrphanExecDetached int `json:"orphan_exec_detached"`
	// RecordsTornDown counts records whose executor attachment vanished
	// underneath the control plane (cleaned up: agents detached, paths
	// released, record dropped).
	RecordsTornDown int `json:"records_torn_down"`
	// AgentRepushed counts desired agent configurations re-pushed to agents
	// that lost them (crash-restarted incarnations).
	AgentRepushed int `json:"agent_repushed"`
	// AgentDetached counts undesired agent configurations detached (stale
	// state on resurrected or bypassed agents).
	AgentDetached int `json:"agent_detached"`
	// ReservationsReleased / ReservationsReasserted count fabric vertices
	// whose reserved flag disagreed with the record set.
	ReservationsReleased   int `json:"reservations_released"`
	ReservationsReasserted int `json:"reservations_reasserted"`
	// Unrepaired counts repairs that failed (agent unreachable after
	// retries); they stay pending for the next sweep.
	Unrepaired int `json:"unrepaired"`
}

// Repairs is the total number of successful repairs in the sweep.
func (r ReconcileReport) Repairs() int {
	return r.ParkedDrained + r.OrphanExecDetached + r.RecordsTornDown +
		r.AgentRepushed + r.AgentDetached +
		r.ReservationsReleased + r.ReservationsReasserted
}

// Reconcile runs one reconciliation sweep, diffing the control plane's
// records against executor, agent, and fabric-reservation ground truth and
// repairing every divergence it can:
//
//   - parked sagas: re-send the pending idempotent detaches until agents
//     confirm;
//   - executor diff: orphaned datapath attachments (no record) are
//     detached, records whose datapath vanished are fully torn down;
//   - agent diff: attachment state an agent holds but no record wants is
//     detached; desired configuration an agent lost (crash-restart) is
//     re-pushed with fresh epochs;
//   - reservation diff: reserved fabric vertices outside the union of all
//     record paths are released, record paths that lost their reservation
//     are re-asserted.
//
// Every successful repair increments the reconcile_repairs counter.
func (s *Service) Reconcile() ReconcileReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep ReconcileReport
	if s.elog != nil {
		s.cur = s.newTraceCtx()
		s.emit(trace.LogEvent{Source: "reconcile", Kind: trace.KindReconcileBegin})
	}
	s.drainParked(&rep)
	s.reconcileExecutor(&rep)
	s.reconcileAgents(&rep)
	s.reconcileReservations(&rep)
	s.ctrReconcileFixes.Add(int64(rep.Repairs()))
	if s.elog != nil {
		s.emit(trace.LogEvent{Source: "reconcile", Kind: trace.KindReconcileEnd, Attempt: rep.Repairs()})
		s.cur = trace.SpanContext{}
	}
	return rep
}

// repaired emits one reconcile_repair event when tracing is on.
func (s *Service) repaired(what, saga, host string) {
	if s.elog != nil {
		s.emit(trace.LogEvent{Source: "reconcile", Kind: trace.KindReconcileRepair, Step: what, Saga: saga, Host: host})
	}
}

// ReconcileUntilClean sweeps until a pass finds nothing to repair and
// nothing unrepaired, or maxPasses is exhausted. It returns the number of
// passes run and whether the final pass was clean — the "convergence time
// after a flap storm" number the replay report and the reconciler
// convergence property test measure.
func (s *Service) ReconcileUntilClean(maxPasses int) (passes int, clean bool) {
	for passes < maxPasses {
		rep := s.Reconcile()
		passes++
		if rep.Repairs() == 0 && rep.Unrepaired == 0 {
			return passes, true
		}
	}
	return passes, false
}

// StartReconciler runs Reconcile every interval until the returned stop
// function is called. The running/stopped state feeds GET /v1/readyz.
func (s *Service) StartReconciler(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	s.reconState.Store(reconRunning)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Reconcile()
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			s.reconState.Store(reconStopped)
			close(done)
		}
	}
}

// drainParked retries the pending agent detaches of parked sagas. A step
// is confirmed done either by a successful send or by the agent's status
// no longer holding the attachment.
func (s *Service) drainParked(rep *ReconcileReport) {
	ids := make([]string, 0, len(s.parked))
	for id := range s.parked {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := s.parked[id]
		// Sorted step order: retry sends draw from the (seeded) faulty
		// transport's RNG, so map-order iteration here would make replay
		// runs diverge between executions of the same seed.
		steps := make([]string, 0, len(p.pending))
		for step := range p.pending {
			steps = append(steps, step)
		}
		sort.Strings(steps)
		for _, step := range steps {
			host := p.pending[step]
			if !s.agentMayHold(host, p.attID) {
				delete(p.pending, step)
				continue
			}
			err := s.retry(func() error {
				return s.send(host, agent.Command{
					Kind: agent.CmdDetach, AttachmentID: p.attID, Epoch: s.nextEpoch(),
				})
			})
			if err != nil {
				rep.Unrepaired++
				continue
			}
			delete(p.pending, step)
		}
		if len(p.pending) == 0 {
			delete(s.parked, id)
			s.ctrParked.Add(-1)
			rep.ParkedDrained++
			s.repaired("parked-drained", p.sagaID, "")
			s.append(JournalEntry{SagaID: p.sagaID, Op: p.op, Event: EvCommitted, AttID: p.attID, Err: "reconciled"}) //nolint:errcheck
			if st, ok := s.sagas[p.sagaID]; ok {
				st.State = "committed"
				st.Err = ""
			}
		}
	}
}

// reconcileExecutor diffs datapath attachments against records.
func (s *Service) reconcileExecutor(rep *ReconcileReport) {
	lister, ok := s.exec.(ExecLister)
	if !ok {
		return
	}
	live := make(map[string]bool)
	for _, id := range lister.AttachmentIDs() {
		live[id] = true
		if _, recorded := s.attachments[id]; !recorded {
			// Orphaned datapath attachment: an attach that crashed between
			// the executor call and its journal entry. Tear it down.
			if err := s.exec.Detach(id); err == nil {
				rep.OrphanExecDetached++
				s.repaired("orphan-exec-detached", id, "")
			} else {
				rep.Unrepaired++
			}
		}
	}
	ids := make([]string, 0, len(s.attachments))
	for id := range s.attachments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if live[id] {
			continue
		}
		// The datapath vanished underneath the record (e.g. torn down by a
		// lower layer): finish the teardown the record still implies.
		rec := s.attachments[id]
		for _, host := range []string{rec.ComputeHost, rec.DonorHost} {
			if !s.agentMayHold(host, rec.SagaID) {
				continue
			}
			s.retry(func() error { //nolint:errcheck // next sweep retries
				return s.send(host, agent.Command{
					Kind: agent.CmdDetach, AttachmentID: rec.SagaID, Epoch: s.nextEpoch(),
				})
			})
		}
		s.model.ReleasePaths(rec.paths)
		delete(s.attachments, id)
		rep.RecordsTornDown++
		s.repaired("record-torn-down", rec.SagaID, "")
	}
}

// reconcileAgents diffs agent-held attachment state against records:
// undesired state is detached, missing desired state is re-pushed.
func (s *Service) reconcileAgents(rep *ReconcileReport) {
	// Desired state per host, keyed by agent-side correlation ID.
	type want struct {
		rec     *AttachmentRecord
		compute bool // this host is the compute side (else donor)
	}
	desired := make(map[string]map[string]want)
	for _, rec := range s.attachments {
		if desired[rec.ComputeHost] == nil {
			desired[rec.ComputeHost] = make(map[string]want)
		}
		desired[rec.ComputeHost][rec.SagaID] = want{rec: rec, compute: true}
		if desired[rec.DonorHost] == nil {
			desired[rec.DonorHost] = make(map[string]want)
		}
		desired[rec.DonorHost][rec.SagaID] = want{rec: rec, compute: false}
	}

	for _, host := range s.transport.Hosts() {
		st, err := s.transport.Query(host)
		if err != nil {
			rep.Unrepaired++
			continue
		}
		held := make(map[string]agent.AttachmentStatus, len(st.Attachments))
		for _, a := range st.Attachments {
			held[a.ID] = a
		}
		// Stale state: held but not desired (includes resurrected agents
		// that somehow kept state, or sagas compensated while unreachable).
		for _, a := range st.Attachments {
			if _, ok := desired[host][a.ID]; ok {
				continue
			}
			err := s.retry(func() error {
				return s.send(host, agent.Command{
					Kind: agent.CmdDetach, AttachmentID: a.ID, Epoch: s.nextEpoch(),
				})
			})
			if err != nil {
				rep.Unrepaired++
				continue
			}
			rep.AgentDetached++
			s.repaired("agent-detached", a.ID, host)
		}
		// Lost state: desired but not held (crash-restarted agent lost its
		// volatile configuration). Re-push from the record.
		wantIDs := make([]string, 0, len(desired[host]))
		for id := range desired[host] {
			wantIDs = append(wantIDs, id)
		}
		sort.Strings(wantIDs)
		for _, id := range wantIDs {
			w := desired[host][id]
			h, ok := held[id]
			if ok && (w.compute && h.ComputeAttached || !w.compute && h.StolenBytes > 0) {
				continue
			}
			cmd := agent.Command{
				AttachmentID: id, Epoch: s.nextEpoch(),
				Bytes: w.rec.Bytes, NetworkID: w.rec.NetID,
			}
			if w.compute {
				cmd.Kind = agent.CmdAttachCompute
				cmd.Channels = w.rec.Channels
			} else {
				cmd.Kind = agent.CmdStealMemory
			}
			err := s.retry(func() error { return s.send(host, cmd) })
			if err != nil {
				rep.Unrepaired++
				continue
			}
			rep.AgentRepushed++
			s.repaired("agent-repushed", id, host)
		}
	}
}

// reconcileReservations diffs the fabric's reserved flags against the
// union of all record paths.
func (s *Service) reconcileReservations(rep *ReconcileReport) {
	want := make(map[graphdb.ID]bool)
	for _, rec := range s.attachments {
		for _, p := range rec.paths {
			for _, v := range p.Vertices {
				want[v] = true
			}
		}
	}
	have := make(map[graphdb.ID]bool)
	for _, id := range s.model.ReservedIDs() {
		have[id] = true
		if !want[id] {
			// Orphaned reservation (e.g. a crashed plan step that never
			// reached its saga's compensation).
			s.model.ReleasePaths([]Path{{Vertices: []graphdb.ID{id}}})
			rep.ReservationsReleased++
		}
	}
	missing := make([]graphdb.ID, 0)
	for id := range want {
		if !have[id] {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		s.model.ReservePaths([]Path{{Vertices: missing}})
		rep.ReservationsReasserted += len(missing)
	}
}
