package controlplane

import (
	"fmt"
	"sort"

	"thymesisflow/internal/core"
)

// HostMemory is one host's memory occupancy as seen by the orchestrator.
type HostMemory struct {
	Name string
	// LocalFree/LocalCapacity describe the host's own DRAM (donated memory
	// already excluded from capacity).
	LocalFree     int64
	LocalCapacity int64
	// RemoteAttached is disaggregated memory currently attached to this
	// host; RemoteFree the unallocated part of it.
	RemoteAttached int64
	RemoteFree     int64
}

// Inspector reports cluster memory state to the autoscaler.
type Inspector interface {
	HostMemory() []HostMemory
}

// ClusterInspector adapts core.Cluster.
type ClusterInspector struct {
	Cluster *core.Cluster
}

// HostMemory implements Inspector.
func (ci ClusterInspector) HostMemory() []HostMemory {
	var out []HostMemory
	for _, h := range ci.Cluster.Hosts() {
		hm := HostMemory{Name: h.Name}
		for _, n := range h.Mem.Nodes() {
			if n.CPULess {
				hm.RemoteAttached += n.Capacity
				hm.RemoteFree += n.Capacity - n.Used
			} else {
				hm.LocalCapacity += n.Capacity
				hm.LocalFree += n.Capacity - n.Used
			}
		}
		out = append(out, hm)
	}
	return out
}

// AutoscalePolicy tunes the orchestrator. The paper frames this layer as
// future integration with cloud orchestrators (Section IV-C): transparent
// resource allocation based on incoming placement demand.
type AutoscalePolicy struct {
	// LowWatermark: grow a host whose local+remote free fraction falls
	// below this.
	LowWatermark float64
	// HighWatermark: shrink (detach) when an attachment is entirely free
	// and overall free fraction exceeds this.
	HighWatermark float64
	// StepBytes is the attachment size per grow action.
	StepBytes int64
	// DonorReserve is the local free fraction a donor must retain.
	DonorReserve float64
	// MaxAttachmentsPerHost bounds fan-in.
	MaxAttachmentsPerHost int
}

// DefaultAutoscalePolicy returns conservative watermarks.
func DefaultAutoscalePolicy() AutoscalePolicy {
	return AutoscalePolicy{
		LowWatermark:          0.10,
		HighWatermark:         0.60,
		StepBytes:             1 << 30,
		DonorReserve:          0.30,
		MaxAttachmentsPerHost: 4,
	}
}

// Action describes one orchestration decision.
type Action struct {
	Kind         string // "attach" or "detach"
	ComputeHost  string
	DonorHost    string
	Bytes        int64
	AttachmentID string
}

// Autoscaler grows and shrinks hosts' memory through the control plane.
type Autoscaler struct {
	svc    *Service
	insp   Inspector
	policy AutoscalePolicy
}

// NewAutoscaler builds an orchestrator over the control-plane service.
func NewAutoscaler(svc *Service, insp Inspector, policy AutoscalePolicy) *Autoscaler {
	return &Autoscaler{svc: svc, insp: insp, policy: policy}
}

// Evaluate inspects the cluster once and executes the resulting actions.
// It returns what it did.
func (a *Autoscaler) Evaluate() ([]Action, error) {
	hosts := a.insp.HostMemory()
	byName := make(map[string]HostMemory, len(hosts))
	for _, h := range hosts {
		byName[h.Name] = h
	}
	attachments := a.svc.Attachments()
	perHost := make(map[string]int)
	for _, rec := range attachments {
		perHost[rec.ComputeHost]++
	}

	var actions []Action

	// Shrink pass first: release fully-free attachments on comfortable
	// hosts so their capacity is available to the grow pass.
	for _, rec := range attachments {
		hm, ok := byName[rec.ComputeHost]
		if !ok {
			continue
		}
		total := hm.LocalCapacity + hm.RemoteAttached
		free := hm.LocalFree + hm.RemoteFree
		if total == 0 {
			continue
		}
		// Only detach when the attachment itself is unused (drain would be
		// a no-op) and the host is comfortably free.
		if hm.RemoteFree >= rec.Bytes && float64(free)/float64(total) > a.policy.HighWatermark {
			if err := a.svc.Detach(rec.ID); err != nil {
				return actions, fmt.Errorf("controlplane: autoscale detach %s: %w", rec.ID, err)
			}
			actions = append(actions, Action{
				Kind: "detach", ComputeHost: rec.ComputeHost,
				DonorHost: rec.DonorHost, Bytes: rec.Bytes, AttachmentID: rec.ID,
			})
			hm.RemoteAttached -= rec.Bytes
			hm.RemoteFree -= rec.Bytes
			byName[rec.ComputeHost] = hm
			perHost[rec.ComputeHost]--
		}
	}

	// Grow pass: find starving hosts, pick the freest viable donor.
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		hm := byName[name]
		total := hm.LocalCapacity + hm.RemoteAttached
		if total == 0 {
			continue
		}
		free := hm.LocalFree + hm.RemoteFree
		if float64(free)/float64(total) >= a.policy.LowWatermark {
			continue
		}
		if perHost[name] >= a.policy.MaxAttachmentsPerHost {
			continue
		}
		donor := a.pickDonor(byName, name)
		if donor == "" {
			continue // nobody can donate right now
		}
		rec, err := a.svc.Attach(AttachRequest{
			ComputeHost: name, DonorHost: donor,
			Bytes: a.policy.StepBytes, Channels: 1,
		})
		if err != nil {
			// Path or capacity contention is not fatal; report what ran.
			continue
		}
		actions = append(actions, Action{
			Kind: "attach", ComputeHost: name, DonorHost: donor,
			Bytes: rec.Bytes, AttachmentID: rec.ID,
		})
		dm := byName[donor]
		dm.LocalFree -= rec.Bytes
		dm.LocalCapacity -= rec.Bytes
		byName[donor] = dm
		perHost[name]++
	}
	return actions, nil
}

// pickDonor returns the host with the most spare local memory that can
// donate a step while keeping its reserve, or "".
func (a *Autoscaler) pickDonor(hosts map[string]HostMemory, exclude string) string {
	best := ""
	var bestFree int64 = -1
	names := make([]string, 0, len(hosts))
	for n := range hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if n == exclude {
			continue
		}
		hm := hosts[n]
		if hm.LocalCapacity == 0 {
			continue
		}
		afterFree := hm.LocalFree - a.policy.StepBytes
		if afterFree < int64(a.policy.DonorReserve*float64(hm.LocalCapacity)) {
			continue
		}
		if hm.LocalFree > bestFree {
			best, bestFree = n, hm.LocalFree
		}
	}
	return best
}
