package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"thymesisflow/internal/raft"
)

// ErrNotLeader rejects a mutating control-plane request on a node that is
// not the Raft leader. Like ErrOverloaded it fires before the saga mutex;
// clients should retry against the leader hint (REST maps it to a
// 421-style redirect with an X-Raft-Leader header).
var ErrNotLeader = errors.New("controlplane: not the leader")

// NotLeaderError carries the last known leader as a redirect hint.
type NotLeaderError struct{ Leader string }

// Error implements error.
func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "controlplane: not the leader (no leader elected)"
	}
	return fmt.Sprintf("controlplane: not the leader (leader is %s)", e.Leader)
}

// Is makes errors.Is(err, ErrNotLeader) match.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// ErrQuorumLost is returned by ReplicatedJournal.Append when an entry
// cannot reach a commit quorum within the replication budget (partitioned
// leader, too many dead peers). The saga engine treats any journal append
// failure as a control-plane crash, so a fenced stale leader halts
// mid-saga exactly like a process kill — and the new leader's Recover()
// finishes or compensates the saga. That is the fencing mechanism: a
// leader that lost quorum can never commit (and therefore never acks) new
// work.
var ErrQuorumLost = errors.New("controlplane: journal append lost quorum")

// RaftStatus is the control-plane view of one replica's Raft state, served
// by /v1/raft/status and printed by tfctl raft.
type RaftStatus struct {
	ID               string              `json:"id"`
	Role             string              `json:"role"`
	Term             uint64              `json:"term"`
	Leader           string              `json:"leader,omitempty"`
	CommitIndex      uint64              `json:"commit_index"`
	AppliedIndex     uint64              `json:"applied_index"`
	LastIndex        uint64              `json:"last_index"`
	QuorumReachable  bool                `json:"quorum_reachable"`
	LeaderChanges    uint64              `json:"leader_changes"`
	NotLeaderRejects int64               `json:"not_leader_rejects"`
	Members          []raft.MemberStatus `json:"members"`
}

// ReplicaSet runs an embedded Raft cluster whose replicated log carries
// the saga write-ahead journal across 3/5 control-plane nodes. Each node
// exposes a ReplicatedJournal (Journal interface) whose appends commit
// only after quorum ack; the Service bound to the current leader executes
// sagas, followers replicate, and after a leader kill the next leader runs
// the existing Recover() path over the committed log.
//
// The set advances virtual time only inside Append calls and explicit
// Tick/ElectLeader calls, so a chaos scenario driven from one goroutine
// reproduces byte-identically from its seed.
type ReplicaSet struct {
	cluster *raft.Cluster
	ids     []string

	mu       sync.Mutex
	journals map[string]*ReplicatedJournal

	// appendBudget bounds how many ticks one Append may pump waiting for
	// quorum before reporting ErrQuorumLost.
	appendBudget int
}

// NewReplicaSet builds a replica set over in-memory Raft storage.
func NewReplicaSet(ids []string, seed int64) (*ReplicaSet, error) {
	return NewReplicaSetWithStorage(ids, seed, nil)
}

// NewReplicaSetWithStorage builds a replica set with per-node storage from
// storageFn (nil yields fresh in-memory storage per node).
func NewReplicaSetWithStorage(ids []string, seed int64, storageFn func(id string) raft.Storage) (*ReplicaSet, error) {
	cluster, err := raft.NewCluster(ids, raft.DefaultConfig(), seed, storageFn)
	if err != nil {
		return nil, err
	}
	return &ReplicaSet{
		cluster:      cluster,
		ids:          cluster.IDs(),
		journals:     make(map[string]*ReplicatedJournal),
		appendBudget: 200,
	}, nil
}

// IDs returns the member IDs in sorted order.
func (rs *ReplicaSet) IDs() []string { return append([]string(nil), rs.ids...) }

// ElectLeader ticks the cluster until a leader exists AND its commit index
// covers its whole log (the election no-op has committed, so every entry
// inherited from prior terms is quorum-committed and visible to
// Recover()). It returns the leader ID.
func (rs *ReplicaSet) ElectLeader(maxTicks int) (string, error) {
	for i := 0; i < maxTicks; i++ {
		if id := rs.cluster.Leader(); id != "" {
			st := rs.cluster.Status(id)
			if st.Commit == st.LastIndex {
				return id, nil
			}
		}
		if err := rs.cluster.Tick(); err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("controlplane: no leader with full committed log after %d ticks", maxTicks)
}

// Leader returns the current leader ID, or "" if none.
func (rs *ReplicaSet) Leader() string { return rs.cluster.Leader() }

// Journal returns node id's ReplicatedJournal view (one per node, cached —
// its applied cursor survives re-binding a Service after failover).
func (rs *ReplicaSet) Journal(id string) *ReplicatedJournal {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	j, ok := rs.journals[id]
	if !ok {
		j = &ReplicatedJournal{rs: rs, id: id}
		rs.journals[id] = j
	}
	return j
}

// Gate returns the leader gate for node id: nil when id currently leads,
// *NotLeaderError with the leader hint otherwise. Service.SetLeaderGate
// installs it ahead of the admission check, mirroring SetMaxInflightSagas.
func (rs *ReplicaSet) Gate(id string) func() error {
	return func() error {
		st := rs.cluster.Status(id)
		if st.Role == "leader" && !st.Stopped {
			return nil
		}
		hint := st.Leader
		if hint == id {
			hint = ""
		}
		return &NotLeaderError{Leader: hint}
	}
}

// StatusFor returns node id's RaftStatus (NotLeaderRejects is filled in by
// the Service owning the counter).
func (rs *ReplicaSet) StatusFor(id string) RaftStatus {
	st := rs.cluster.Status(id)
	return RaftStatus{
		ID:              st.ID,
		Role:            st.Role,
		Term:            st.Term,
		Leader:          st.Leader,
		CommitIndex:     st.Commit,
		AppliedIndex:    st.Applied,
		LastIndex:       st.LastIndex,
		QuorumReachable: rs.cluster.QuorumReachable(id),
		LeaderChanges:   rs.cluster.LeaderChanges(),
		Members:         rs.cluster.Members(),
	}
}

// Tick advances the cluster n virtual ticks (heartbeats, elections,
// catch-up replication happen only inside ticks).
func (rs *ReplicaSet) Tick(n int) error { return rs.cluster.TickN(n) }

// Stop crashes node id (storage retained for Restart).
func (rs *ReplicaSet) Stop(id string) { rs.cluster.Stop(id) }

// Restart revives node id from its persistent storage.
func (rs *ReplicaSet) Restart(id string) error { return rs.cluster.Restart(id) }

// KillLeader stops the current leader and returns its ID ("" if none).
func (rs *ReplicaSet) KillLeader() string {
	id := rs.cluster.Leader()
	if id != "" {
		rs.cluster.Stop(id)
	}
	return id
}

// Partition cuts the Raft link between members a and b symmetrically.
func (rs *ReplicaSet) Partition(a, b string) { rs.cluster.Partition(a, b) }

// PartitionOneWay cuts only Raft messages flowing from -> to.
func (rs *ReplicaSet) PartitionOneWay(from, to string) { rs.cluster.PartitionOneWay(from, to) }

// Isolate cuts member id off from every peer.
func (rs *ReplicaSet) Isolate(id string) { rs.cluster.Isolate(id) }

// Heal removes cuts between a and b.
func (rs *ReplicaSet) Heal(a, b string) { rs.cluster.Heal(a, b) }

// HealAll removes every Raft partition cut.
func (rs *ReplicaSet) HealAll() { rs.cluster.HealAll() }

// Members returns every member's Raft status in ID order.
func (rs *ReplicaSet) Members() []raft.MemberStatus { return rs.cluster.Members() }

// LeaderChanges counts observed leader transitions.
func (rs *ReplicaSet) LeaderChanges() uint64 { return rs.cluster.LeaderChanges() }

// DroppedMessages counts Raft messages lost to partitions and crashes.
func (rs *ReplicaSet) DroppedMessages() uint64 { return rs.cluster.DroppedMessages() }

// CommittedEntries decodes node id's quorum-committed journal prefix
// without moving its applied cursor — the chaos scenarios use it to assert
// log convergence across replicas after healing.
func (rs *ReplicaSet) CommittedEntries(id string) ([]JournalEntry, error) {
	raw := rs.cluster.Entries(id)
	out := make([]JournalEntry, 0, len(raw))
	for _, e := range raw {
		if len(e.Data) == 0 {
			continue // leader no-op
		}
		var je JournalEntry
		if err := json.Unmarshal(e.Data, &je); err != nil {
			return nil, fmt.Errorf("controlplane: decode replicated entry %d: %w", e.Index, err)
		}
		out = append(out, je)
	}
	return out, nil
}

// ReplicatedJournal is one node's Journal view over the replica set's
// Raft log. Append proposes the entry through this node and pumps the
// cluster until the entry is quorum-committed (or the budget runs out —
// ErrQuorumLost, which the saga engine treats as a crash). Entries returns
// the node's committed, decoded journal history for Recover().
type ReplicatedJournal struct {
	rs *ReplicaSet
	id string

	mu      sync.Mutex
	cache   []JournalEntry
	through uint64 // highest raft index folded into cache
}

// NodeID returns the replica this view belongs to.
func (r *ReplicatedJournal) NodeID() string { return r.id }

// Append implements Journal: marshal, propose, pump until quorum commit.
// Success requires more than CommitIndex >= idx: under an asymmetric
// partition (outbound cut, inbound open) the proposing leader can be
// deposed mid-pump, its entry truncated and replaced by the new leader's
// entry at the same index, and its commit index then advances past idx via
// incoming AppendEntries. Acking on commit index alone would report
// durable success for a write that was lost, so Append re-checks that the
// entry at idx still carries the term Propose assigned before returning
// nil; on mismatch it reports the deposition as NotLeaderError.
func (r *ReplicatedJournal) Append(e JournalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	idx, term, err := r.rs.cluster.Propose(r.id, data)
	if err != nil {
		var nl *raft.NotLeaderError
		if errors.As(err, &nl) {
			return &NotLeaderError{Leader: nl.Leader}
		}
		return err
	}
	for i := 0; i < r.rs.appendBudget; i++ {
		if r.rs.cluster.CommitIndex(r.id) >= idx {
			if at, ok := r.rs.cluster.TermAt(r.id, idx); ok && at == term {
				return nil
			}
			// A newer leader overwrote index idx: the proposal is gone.
			hint := r.rs.cluster.Status(r.id).Leader
			if hint == r.id {
				hint = ""
			}
			return &NotLeaderError{Leader: hint}
		}
		if err := r.rs.cluster.Tick(); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w (entry %d uncommitted after %d ticks)", ErrQuorumLost, idx, r.rs.appendBudget)
}

// Entries implements Journal: the node's committed journal prefix, decoded
// in log order. Only quorum-committed entries are ever returned, so a new
// leader's Recover() sees exactly the history every replica agrees on.
func (r *ReplicatedJournal) Entries() ([]JournalEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.rs.cluster.TakeCommitted(r.id) {
		if e.Index <= r.through {
			continue // already folded (node restarted, cursor reset)
		}
		r.through = e.Index
		if len(e.Data) == 0 {
			continue // leader no-op
		}
		var je JournalEntry
		if err := json.Unmarshal(e.Data, &je); err != nil {
			return nil, fmt.Errorf("controlplane: decode replicated entry %d: %w", e.Index, err)
		}
		r.cache = append(r.cache, je)
	}
	return append([]JournalEntry(nil), r.cache...), nil
}
