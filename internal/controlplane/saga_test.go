package controlplane

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/core"
	"thymesisflow/internal/metrics"
)

// testFaultService wires the standard 3-node cluster behind a lossy
// transport (no probabilistic faults unless asked; scripted drops via
// FailNext) and a zero-backoff retry policy so tests run instantly.
func testFaultService(t *testing.T, faults TransportFaults) (*Service, *core.Cluster, *FaultyTransport) {
	t.Helper()
	svc, cluster := testService(t)
	ft := NewFaultyTransport(NewDirectTransport(), faults)
	for _, n := range []string{"node0", "node1", "node2"} {
		ft.Register(agent.New(n, testToken))
	}
	svc.SetTransport(ft)
	svc.SetRetryPolicy(RetryPolicy{MaxAttempts: 4})
	return svc, cluster, ft
}

func agentOf(t *testing.T, ft *FaultyTransport, host string) *agent.Agent {
	t.Helper()
	a, ok := ft.inner.Agent(host)
	if !ok {
		t.Fatalf("no agent for %s", host)
	}
	return a
}

// balancedLog asserts an agent's effective log pairs every steal/attach
// with a detach (no leaked donor memory or compute mappings).
func balancedLog(t *testing.T, a *agent.Agent) {
	t.Helper()
	open := make(map[string]int)
	for _, cmd := range a.Applied() {
		switch cmd.Kind {
		case agent.CmdStealMemory, agent.CmdAttachCompute:
			open[cmd.AttachmentID]++
		case agent.CmdDetach:
			open[cmd.AttachmentID] = 0
		}
	}
	for id, n := range open {
		if n != 0 {
			t.Fatalf("agent %s: attachment %s left %d unbalanced commands: %+v",
				a.Host(), id, n, a.Applied())
		}
	}
}

func TestAttachRetriesTransientDrops(t *testing.T) {
	svc, cluster, ft := testFaultService(t, TransportFaults{})
	ft.FailNext("node1", 2) // donor: first two steal deliveries dropped
	rec, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 2 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cluster.Attachment(rec.ID); !ok {
		t.Fatal("attachment missing from cluster")
	}
	if c := svc.Counters(); c.SagaRetries < 2 {
		t.Fatalf("saga_retries = %d, want >= 2", c.SagaRetries)
	}
	donor := agentOf(t, ft, "node1")
	if st, ok := donor.Holds(rec.SagaID); !ok || st.StolenBytes != 2<<20 {
		t.Fatalf("donor state = %+v ok=%v", st, ok)
	}
}

// TestDonorRollbackOnComputeFailure is the donor-memory-leak regression
// test: when the compute-side push fails after the donor-side steal
// applied, the rollback must issue a compensating donor detach — the donor
// agent's applied log ends balanced and no reservation leaks.
func TestDonorRollbackOnComputeFailure(t *testing.T) {
	svc, cluster, ft := testFaultService(t, TransportFaults{})
	// All sends to the compute host fail: the attach-compute step exhausts
	// its 4 attempts and the compensating compute detach exhausts 4 more.
	ft.FailNext("node0", 100)
	_, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if err == nil {
		t.Fatal("attach through dead compute link succeeded")
	}
	donor := agentOf(t, ft, "node1")
	balancedLog(t, donor)
	if _, ok := donor.Holds("saga-1"); ok {
		t.Fatal("donor memory leaked after failed attach")
	}
	if free := svc.Model().FreeTransceivers("node0", LabelComputeEP); free != 2 {
		t.Fatalf("reservations leaked: free = %d", free)
	}
	if len(cluster.Attachments()) != 0 {
		t.Fatal("cluster attachment leaked")
	}
	c := svc.Counters()
	if c.SagaCompensations != 1 {
		t.Fatalf("saga_compensations = %d, want 1", c.SagaCompensations)
	}
	// The compute-side compensating detach could not be confirmed: the saga
	// parks for the reconciler rather than silently dropping it.
	if parked := svc.ParkedSagas(); len(parked) != 1 {
		t.Fatalf("parked = %v, want 1 saga", parked)
	}
	// Link heals; the reconciler confirms the compute agent never held the
	// attachment and drains the parked saga.
	ft.FailNext("node0", 0)
	rep := svc.Reconcile()
	if rep.ParkedDrained != 1 {
		t.Fatalf("reconcile report = %+v, want 1 parked drained", rep)
	}
	if parked := svc.ParkedSagas(); len(parked) != 0 {
		t.Fatalf("parked after reconcile = %v", parked)
	}
	if c := svc.Counters(); c.ReconcileRepairs < 1 {
		t.Fatalf("reconcile_repairs = %d", c.ReconcileRepairs)
	}
}

// TestExecutorFailureCompensatesAgents: a datapath failure after both
// agent pushes rolls both agents back (the pre-existing reservation
// rollback plus the new compensating detaches).
func TestExecutorFailureCompensatesAgents(t *testing.T) {
	svc, _, ft := testFaultService(t, TransportFaults{})
	if _, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 50, Channels: 1,
	}); err == nil {
		t.Fatal("impossible attach succeeded")
	}
	balancedLog(t, agentOf(t, ft, "node0"))
	balancedLog(t, agentOf(t, ft, "node1"))
	if free := svc.Model().FreeTransceivers("node0", LabelComputeEP); free != 2 {
		t.Fatalf("reservations leaked: free = %d", free)
	}
	if parked := svc.ParkedSagas(); len(parked) != 0 {
		t.Fatalf("parked = %v", parked)
	}
}

// TestDetachAgentFailureParksAndReconciles: agent failures during detach
// are no longer swallowed — they are counted, the saga parks, and the
// reconciler finishes the teardown once the agent is reachable.
func TestDetachAgentFailureParksAndReconciles(t *testing.T) {
	svc, cluster, ft := testFaultService(t, TransportFaults{})
	rec, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ft.FailNext("node1", 100) // donor unreachable for the detach
	if err := svc.Detach(rec.ID); err != nil {
		t.Fatalf("detach should succeed datapath-side: %v", err)
	}
	if len(cluster.Attachments()) != 0 {
		t.Fatal("datapath attachment survived detach")
	}
	c := svc.Counters()
	if c.DetachAgentFailures != 1 {
		t.Fatalf("detach_agent_failures = %d, want 1", c.DetachAgentFailures)
	}
	if parked := svc.ParkedSagas(); len(parked) != 1 {
		t.Fatalf("parked = %v", parked)
	}
	donor := agentOf(t, ft, "node1")
	if _, ok := donor.Holds(rec.SagaID); !ok {
		t.Fatal("donor should still hold the un-detached attachment")
	}
	ft.FailNext("node1", 0)
	rep := svc.Reconcile()
	if rep.ParkedDrained != 1 {
		t.Fatalf("reconcile report = %+v", rep)
	}
	if _, ok := donor.Holds(rec.SagaID); ok {
		t.Fatal("donor still holds attachment after reconcile")
	}
	balancedLog(t, donor)
	if parked := svc.ParkedSagas(); len(parked) != 0 {
		t.Fatalf("parked after reconcile = %v", parked)
	}
}

// TestDuplicateDeliveryIsIdempotent: with every command delivered twice,
// the agents' effective logs still record each configuration change once.
func TestDuplicateDeliveryIsIdempotent(t *testing.T) {
	svc, _, ft := testFaultService(t, TransportFaults{DupProb: 1.0, Seed: 42})
	rec, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	donor, compute := agentOf(t, ft, "node1"), agentOf(t, ft, "node0")
	if got := len(donor.Applied()); got != 1 {
		t.Fatalf("donor applied %d commands, want 1", got)
	}
	if got := len(compute.Applied()); got != 1 {
		t.Fatalf("compute applied %d commands, want 1", got)
	}
	if donor.Deduped() == 0 || compute.Deduped() == 0 {
		t.Fatal("duplicates were not deduplicated")
	}
	if err := svc.Detach(rec.ID); err != nil {
		t.Fatal(err)
	}
	balancedLog(t, donor)
	balancedLog(t, compute)
}

// TestReconcileRepairsAgentFlap: a crash-restarted agent loses its
// volatile configuration; the reconciler detects the divergence and
// re-pushes the attachment state from the control-plane record.
func TestReconcileRepairsAgentFlap(t *testing.T) {
	svc, _, ft := testFaultService(t, TransportFaults{})
	rec, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 3 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	donor := agentOf(t, ft, "node1")
	if err := ft.CrashAgent("node1"); err != nil {
		t.Fatal(err)
	}
	if donor.Incarnation() != 1 {
		t.Fatalf("incarnation = %d", donor.Incarnation())
	}
	if _, ok := donor.Holds(rec.SagaID); ok {
		t.Fatal("restart kept volatile state")
	}
	rep := svc.Reconcile()
	if rep.AgentRepushed != 1 {
		t.Fatalf("reconcile report = %+v, want 1 re-push", rep)
	}
	st, ok := donor.Holds(rec.SagaID)
	if !ok || st.StolenBytes != 3<<20 || st.NetworkID != rec.NetID {
		t.Fatalf("re-pushed state = %+v ok=%v", st, ok)
	}
	// A second sweep is a no-op.
	if rep := svc.Reconcile(); rep.Repairs() != 0 {
		t.Fatalf("second sweep repaired: %+v", rep)
	}
}

// TestReconcileDetachesOrphanExec: a datapath attachment with no
// control-plane record (attach crashed before journaling the exec ID) is
// torn down by the executor diff.
func TestReconcileDetachesOrphanExec(t *testing.T) {
	svc, cluster, _ := testFaultService(t, TransportFaults{})
	if _, err := cluster.Attach(core.AttachSpec{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	}); err != nil {
		t.Fatal(err)
	}
	rep := svc.Reconcile()
	if rep.OrphanExecDetached != 1 {
		t.Fatalf("reconcile report = %+v, want 1 orphan detached", rep)
	}
	if len(cluster.Attachments()) != 0 {
		t.Fatal("orphan exec attachment survived reconcile")
	}
}

// TestRecoverRestoresCommittedState: a fresh Service over the old journal
// rebuilds records, reservations, and counters, and new sagas do not
// collide with recovered ones.
func TestRecoverRestoresCommittedState(t *testing.T) {
	svc, cluster := testService(t)
	journal := NewMemJournal()
	svc.SetJournal(journal)
	rec1, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := svc.Attach(AttachRequest{
		ComputeHost: "node2", DonorHost: "node1", Bytes: 2 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Detach(rec1.ID); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh Service over the same model/cluster and journal.
	svc2 := NewService(svc.Model(), ClusterExecutor{Cluster: cluster}, testToken)
	svc2.SetJournal(journal)
	for _, n := range []string{"node0", "node1", "node2"} {
		svc2.RegisterAgent(agent.New(n, testToken))
	}
	rep, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SagasSeen != 3 || rep.Restored != 1 {
		t.Fatalf("recovery report = %+v", rep)
	}
	recs := svc2.Attachments()
	if len(recs) != 1 || recs[0].ID != rec2.ID || recs[0].Bytes != 2<<20 {
		t.Fatalf("recovered records = %+v", recs)
	}
	if recs[0].NetID != rec2.NetID || recs[0].SagaID != rec2.SagaID {
		t.Fatalf("recovered record lost identity: %+v vs %+v", recs[0], rec2)
	}
	// The surviving attachment's reservations are intact: node0's detach
	// freed its transceivers, node2's attach still holds one.
	if free := svc2.Model().FreeTransceivers("node2", LabelComputeEP); free != 1 {
		t.Fatalf("free node2 compute transceivers = %d, want 1", free)
	}
	// New sagas continue the sequence past recovered ones.
	rec3, err := svc2.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node2", Bytes: 1 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec3.SagaID == rec1.SagaID || rec3.SagaID == rec2.SagaID {
		t.Fatalf("saga ID collision after recovery: %s", rec3.SagaID)
	}
	if err := svc2.Detach(rec2.ID); err != nil {
		t.Fatal(err)
	}
	if err := svc2.Detach(rec3.ID); err != nil {
		t.Fatal(err)
	}
	if n := len(cluster.Attachments()); n != 0 {
		t.Fatalf("cluster attachments after full teardown = %d", n)
	}
}

func TestFileJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "saga.journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []JournalEntry{
		{Seq: 1, SagaID: "saga-1", Op: OpAttach, Event: EvBegin, Compute: "a", Donor: "b", Bytes: 42},
		{Seq: 2, SagaID: "saga-1", Op: OpAttach, Event: EvDone, Step: StepPlanPaths, NetID: 7, Paths: [][]int64{{1, 2}}},
	}
	for _, e := range want {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn final line (crash mid-write) is dropped, not fatal.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"saga_id":"sa`); err != nil {
		t.Fatal(err)
	}
	f.Close() //nolint:errcheck

	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close() //nolint:errcheck
	got, err := j2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("entries = %d, want 2 (torn tail dropped)", len(got))
	}
	if got[0].Compute != "a" || got[1].NetID != 7 || len(got[1].Paths) != 1 {
		t.Fatalf("round trip mangled entries: %+v", got)
	}
}

// TestFileJournalServiceRecovery: the durable-journal path end to end —
// attach over a file journal, reopen it in a fresh service, recover, and
// detach the recovered attachment.
func TestFileJournalServiceRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tfd.journal")
	svc, cluster := testService(t)
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetJournal(j)
	rec, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close() //nolint:errcheck
	svc2 := NewService(svc.Model(), ClusterExecutor{Cluster: cluster}, testToken)
	svc2.SetJournal(j2)
	for _, n := range []string{"node0", "node1", "node2"} {
		svc2.RegisterAgent(agent.New(n, testToken))
	}
	if _, err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc2.Attachment(rec.ID); !ok {
		t.Fatal("attachment not recovered from file journal")
	}
	if err := svc2.Detach(rec.ID); err != nil {
		t.Fatal(err)
	}
}

func TestSagaCountersInMetrics(t *testing.T) {
	svc, _, ft := testFaultService(t, TransportFaults{})
	reg := metrics.NewRegistry()
	svc.SetTelemetry(reg, nil)
	ft.FailNext("node1", 1)
	if _, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	}); err != nil {
		t.Fatal(err)
	}
	snap, ok := svc.MetricsSnapshot()
	if !ok {
		t.Fatal("no metrics snapshot")
	}
	for _, name := range []string{"saga_retries", "saga_compensations", "recovery_replays", "reconcile_repairs"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("metrics missing %q: %v", name, snap.Counters)
		}
	}
	if snap.Counters["saga_retries"] < 1 {
		t.Fatalf("saga_retries = %d", snap.Counters["saga_retries"])
	}
}

func TestRESTSagas(t *testing.T) {
	api, svc := restAPI(t)
	if _, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	}); err != nil {
		t.Fatal(err)
	}
	w := doReq(t, api, http.MethodGet, "/v1/sagas", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("sagas status = %d body=%s", w.Code, w.Body.String())
	}
	var view sagasView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Sagas) != 1 || view.Sagas[0].State != "committed" || view.Sagas[0].Op != OpAttach {
		t.Fatalf("sagas = %+v", view.Sagas)
	}
	if w := doReq(t, api, http.MethodGet, "/v1/sagas", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("unauthorized sagas status = %d", w.Code)
	}
}
