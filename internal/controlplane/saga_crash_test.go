package controlplane

import (
	"fmt"
	"sort"
	"testing"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/core"
	"thymesisflow/internal/graphdb"
)

// crashEnv is the shared world a control plane can crash and restart over:
// the cluster, topology model, agents, lossy transport, and journal all
// survive a Service "process death".
type crashEnv struct {
	cluster *core.Cluster
	model   *Model
	inner   *DirectTransport
	faulty  *FaultyTransport
	journal *CrashableJournal
	hosts   []string
}

func newCrashEnv(t *testing.T, seed int64) *crashEnv {
	t.Helper()
	c := core.NewCluster()
	hosts := []string{"node0", "node1", "node2"}
	for _, n := range hosts {
		cfg := core.DefaultHostConfig(n)
		cfg.SectionSize = 1 << 20
		cfg.RMMUSections = 64
		if _, err := c.AddHost(cfg); err != nil {
			t.Fatal(err)
		}
	}
	m := NewModel()
	for _, n := range hosts {
		if err := m.AddHost(n, 2); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			ca := m.Transceivers(a, LabelComputeEP)
			mb := m.Transceivers(b, LabelMemoryEP)
			for i := range ca {
				if i < len(mb) {
					if err := m.Cable(ca[i], mb[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	inner := NewDirectTransport()
	for _, n := range hosts {
		inner.Register(agent.New(n, testToken))
	}
	faulty := NewFaultyTransport(inner, TransportFaults{
		DropProb: 0.10, DupProb: 0.15, AmbiguousProb: 0.15, Seed: seed,
	})
	return &crashEnv{
		cluster: c,
		model:   m,
		inner:   inner,
		faulty:  faulty,
		journal: NewCrashableJournal(NewMemJournal()),
		hosts:   hosts,
	}
}

// service boots a control plane "process" over the shared world.
func (e *crashEnv) service(tr Transport) *Service {
	svc := NewService(e.model, ClusterExecutor{Cluster: e.cluster}, testToken)
	svc.SetJournal(e.journal)
	svc.SetTransport(tr)
	svc.SetRetryPolicy(RetryPolicy{MaxAttempts: 6})
	return svc
}

// assertConverged checks the end-state invariants of the crash-point
// property: no leaked fabric reservations, no orphaned datapath
// attachments, no half-configured or stale agents, no parked sagas.
func assertConverged(t *testing.T, e *crashEnv, svc *Service) {
	t.Helper()
	recs := svc.Attachments()

	// Executor ground truth == control-plane records.
	var clusterIDs, recIDs []string
	for _, a := range e.cluster.Attachments() {
		clusterIDs = append(clusterIDs, a.ID)
	}
	for _, r := range recs {
		recIDs = append(recIDs, r.ID)
	}
	sort.Strings(clusterIDs)
	sort.Strings(recIDs)
	if fmt.Sprint(clusterIDs) != fmt.Sprint(recIDs) {
		t.Fatalf("executor/record divergence: cluster=%v records=%v", clusterIDs, recIDs)
	}

	// Fabric reservations == union of record paths (no leaked paths).
	want := make(map[graphdb.ID]bool)
	for _, r := range recs {
		for _, p := range r.paths {
			for _, v := range p.Vertices {
				want[v] = true
			}
		}
	}
	reserved := e.model.ReservedIDs()
	if len(reserved) != len(want) {
		t.Fatalf("reservation divergence: %d reserved, %d wanted (%v)", len(reserved), len(want), reserved)
	}
	for _, id := range reserved {
		if !want[id] {
			t.Fatalf("leaked reservation on vertex %d", id)
		}
	}

	// Agent ground truth == records (no orphaned donor memory, no
	// half-configured agents).
	type side struct{ compute, donor bool }
	desired := make(map[string]map[string]side) // host -> sagaID -> sides
	for _, r := range recs {
		if desired[r.ComputeHost] == nil {
			desired[r.ComputeHost] = make(map[string]side)
		}
		s := desired[r.ComputeHost][r.SagaID]
		s.compute = true
		desired[r.ComputeHost][r.SagaID] = s
		if desired[r.DonorHost] == nil {
			desired[r.DonorHost] = make(map[string]side)
		}
		s = desired[r.DonorHost][r.SagaID]
		s.donor = true
		desired[r.DonorHost][r.SagaID] = s
	}
	for _, h := range e.hosts {
		a, _ := e.inner.Agent(h)
		st := a.Status()
		for _, att := range st.Attachments {
			d, ok := desired[h][att.ID]
			if !ok {
				t.Fatalf("agent %s holds orphaned attachment %s: %+v", h, att.ID, att)
			}
			if d.compute && !att.ComputeAttached || d.donor && att.StolenBytes == 0 {
				t.Fatalf("agent %s half-configured for %s: %+v (want %+v)", h, att.ID, att, d)
			}
		}
		for id, d := range desired[h] {
			found := false
			for _, att := range st.Attachments {
				if att.ID == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("agent %s missing desired attachment %s (%+v)", h, id, d)
			}
		}
	}

	if parked := svc.ParkedSagas(); len(parked) != 0 {
		t.Fatalf("parked sagas after heal+reconcile: %v", parked)
	}
}

// restartAndHeal boots a fresh control plane over the healed (reliable)
// transport, replays the journal, and runs reconciliation sweeps until
// quiescent.
func restartAndHeal(t *testing.T, e *crashEnv) *Service {
	t.Helper()
	e.journal.FailAfter(-1)
	svc := e.service(e.inner)
	if _, err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if rep := svc.Reconcile(); rep.Repairs() == 0 && rep.Unrepaired == 0 {
			break
		}
	}
	return svc
}

// TestCrashPointAttachRecovery kills the control plane after every journal
// append of an attach saga (under a lossy transport), restarts it from the
// journal, heals the transport, reconciles, and asserts convergence. A
// clean attach writes begin + 4*(intent+done) + committed = 10 entries;
// crash points beyond the actual count degenerate to the no-crash case.
func TestCrashPointAttachRecovery(t *testing.T) {
	const seeds = 8
	const maxCrashPoint = 12
	for seed := int64(1); seed <= seeds; seed++ {
		for cp := 0; cp <= maxCrashPoint; cp++ {
			t.Run(fmt.Sprintf("seed%d/crash%d", seed, cp), func(t *testing.T) {
				env := newCrashEnv(t, seed*1000+int64(cp))
				svc1 := env.service(env.faulty)
				env.journal.FailAfter(cp)
				rec, err := svc1.Attach(AttachRequest{
					ComputeHost: "node0", DonorHost: "node1", Bytes: 4 << 20, Channels: 1,
				})
				crashed := err != nil && isCrash(err)
				if cp >= 10 && !crashed && err != nil && !IsTransient(err) {
					// Permanent failure without a crash is allowed (retry
					// budget exhausted under the lossy transport); the saga
					// compensated inline.
					_ = rec
				}
				svc2 := restartAndHeal(t, env)
				assertConverged(t, env, svc2)
			})
		}
	}
}

// TestCrashPointDetachRecovery crashes the control plane after every
// journal append of a detach saga. The setup attach runs over the reliable
// transport; the detach runs over the lossy one. After restart + heal +
// reconcile, the attachment must be fully gone everywhere (detach rolls
// forward) or fully present (detach never began) — never half-torn-down.
func TestCrashPointDetachRecovery(t *testing.T) {
	const seeds = 8
	const maxCrashPoint = 12
	for seed := int64(1); seed <= seeds; seed++ {
		for cp := 0; cp <= maxCrashPoint; cp++ {
			t.Run(fmt.Sprintf("seed%d/crash%d", seed, cp), func(t *testing.T) {
				env := newCrashEnv(t, 9000+seed*1000+int64(cp))
				setup := env.service(env.inner)
				rec, err := setup.Attach(AttachRequest{
					ComputeHost: "node0", DonorHost: "node1", Bytes: 4 << 20, Channels: 1,
				})
				if err != nil {
					t.Fatal(err)
				}

				// The detach runs in a "second process": recover the record
				// from the journal, then crash mid-detach.
				svc1 := env.service(env.faulty)
				if _, err := svc1.Recover(); err != nil {
					t.Fatal(err)
				}
				// FailAfter counts from arm time: cp appends into the detach.
				env.journal.FailAfter(cp)
				detachErr := svc1.Detach(rec.ID)

				svc2 := restartAndHeal(t, env)
				assertConverged(t, env, svc2)

				// The detach begin entry survived iff cp >= 1; once the
				// intent is journaled, recovery rolls the detach forward, so
				// the attachment must be gone.
				if cp >= 1 || detachErr == nil {
					if _, ok := svc2.Attachment(rec.ID); ok {
						t.Fatal("detached attachment resurrected")
					}
					if _, ok := env.cluster.Attachment(rec.ID); ok {
						t.Fatal("datapath attachment survived rolled-forward detach")
					}
				}
			})
		}
	}
}
