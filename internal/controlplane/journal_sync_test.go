package controlplane

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func syncTestEntry(i int) JournalEntry {
	return JournalEntry{
		Seq: uint64(i + 1), SagaID: fmt.Sprintf("saga-%03d", i), Op: OpAttach,
		Event: EvIntent, Step: StepStealMemory, Compute: "c0", Donor: "d0",
		Bytes: 1 << 20, Channels: 2,
	}
}

// TestFileJournalGroupCommitCommittedPrefix is the crash-point sweep for
// fsync batching: for every (SyncEvery, crash-after-N-appends) pair, a
// journal abandoned without Close — the unflushed batch dies with the
// "process" — must leave on disk an exact prefix of the append sequence,
// no shorter than the last group-commit boundary, with every surviving
// record byte-intact. That is the committed-prefix invariant recovery
// depends on: group commit may cost the tail, never the middle.
func TestFileJournalGroupCommitCommittedPrefix(t *testing.T) {
	for _, every := range []int{1, 3, 4, 7} {
		for crashAt := 0; crashAt <= 11; crashAt++ {
			name := fmt.Sprintf("every%d_crash%d", every, crashAt)
			t.Run(name, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "journal")
				j, err := OpenFileJournal(path)
				if err != nil {
					t.Fatal(err)
				}
				j.SetSyncEvery(every, 0)
				var want []JournalEntry
				for i := 0; i < crashAt; i++ {
					e := syncTestEntry(i)
					if err := j.Append(e); err != nil {
						t.Fatal(err)
					}
					want = append(want, e)
				}
				// Crash: abandon j. Nothing still in the batch buffer
				// reaches the file.
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				_, got := journalValidPrefix(data)
				if len(got) > crashAt {
					t.Fatalf("disk holds %d records, only %d were appended", len(got), crashAt)
				}
				if floor := (crashAt / every) * every; len(got) < floor {
					t.Fatalf("disk holds %d records, group commit promised at least %d", len(got), floor)
				}
				for i := range got {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("record %d corrupted:\n got %+v\nwant %+v", i, got[i], want[i])
					}
				}

				// Recovery over the survivor: reopen, append, and the new
				// record lands cleanly after the committed prefix.
				j2, err := OpenFileJournal(path)
				if err != nil {
					t.Fatal(err)
				}
				extra := syncTestEntry(crashAt)
				if err := j2.Append(extra); err != nil {
					t.Fatal(err)
				}
				after, err := j2.Entries()
				if err != nil {
					t.Fatal(err)
				}
				if len(after) != len(got)+1 || !reflect.DeepEqual(after[len(after)-1], extra) {
					t.Fatalf("post-recovery journal = %d records, want committed prefix %d + 1", len(after), len(got))
				}
				if err := j2.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFileJournalSyncEveryAmortizes asserts group commit actually batches:
// 64 appends at SyncEvery 8 cost at most 64/8 fsyncs (plus the one Close
// commit), and Close makes every record durable.
func TestFileJournalSyncEveryAmortizes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSyncEvery(8, 0)
	for i := 0; i < 64; i++ {
		if err := j.Append(syncTestEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	appends, syncs := j.SyncStats()
	if appends != 64 || syncs != 8 {
		t.Fatalf("SyncStats = %d appends / %d syncs, want 64/8", appends, syncs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, got := journalValidPrefix(data); len(got) != 64 {
		t.Fatalf("after Close disk holds %d records, want 64", len(got))
	}
}

// TestFileJournalSyncForcesBatch: an explicit Sync commits a partial batch.
func TestFileJournalSyncForcesBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSyncEvery(100, 0)
	for i := 0; i < 3; i++ {
		if err := j.Append(syncTestEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, got := journalValidPrefix(data); len(got) != 3 {
		t.Fatalf("after Sync disk holds %d records, want 3", len(got))
	}
}

// benchJournalAppend measures the per-record append cost at a given group-
// commit threshold — the benchsnap "journal_append" section. SyncEvery 1
// is the write-through baseline paying one fsync per record.
func benchJournalAppend(b *testing.B, every int) {
	path := filepath.Join(b.TempDir(), "journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		b.Fatal(err)
	}
	j.SetSyncEvery(every, 0)
	e := syncTestEntry(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seq = uint64(i + 1)
		if err := j.Append(e); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkJournalAppendSyncEvery1(b *testing.B)  { benchJournalAppend(b, 1) }
func BenchmarkJournalAppendSyncEvery8(b *testing.B)  { benchJournalAppend(b, 8) }
func BenchmarkJournalAppendSyncEvery64(b *testing.B) { benchJournalAppend(b, 64) }
