package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"thymesisflow/internal/metrics"
	"thymesisflow/internal/trace"
)

// restAPIWithTelemetry is restAPI plus a configured registry and trace ring.
func restAPIWithTelemetry(t *testing.T) (*API, *metrics.Registry, *trace.Ring) {
	t.Helper()
	api, svc := restAPI(t)
	reg := metrics.NewRegistry()
	ring := trace.NewRing(1 << 10)
	svc.SetTelemetry(reg, ring)
	return api, reg, ring
}

func TestMetricsEndpointAuth(t *testing.T) {
	api, reg, _ := restAPIWithTelemetry(t)
	reg.Counter("attach_total").Add(3)

	// Reader can read aggregate metrics.
	w := doReq(t, api, http.MethodGet, "/v1/metrics", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("reader GET /v1/metrics = %d body=%s", w.Code, w.Body.String())
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["attach_total"] != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// No token: 401.
	if w := doReq(t, api, http.MethodGet, "/v1/metrics", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("anonymous GET /v1/metrics = %d", w.Code)
	}
	// Wrong method: 405.
	if w := doReq(t, api, http.MethodPost, "/v1/metrics", "admin-tok", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/metrics = %d", w.Code)
	}
}

func TestTraceSnapshotEndpointAuth(t *testing.T) {
	api, _, ring := restAPIWithTelemetry(t)
	ring.Span(trace.LayerSim, "dispatch", 0, 1_000_000)
	ring.Instant(trace.LayerLLC, "tx_frame", 2_000_000)

	// The trace is admin-only: readers get 403, anonymous 401.
	if w := doReq(t, api, http.MethodGet, "/v1/trace/snapshot", "reader-tok", nil); w.Code != http.StatusForbidden {
		t.Fatalf("reader GET /v1/trace/snapshot = %d", w.Code)
	}
	if w := doReq(t, api, http.MethodGet, "/v1/trace/snapshot", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("anonymous GET /v1/trace/snapshot = %d", w.Code)
	}

	w := doReq(t, api, http.MethodGet, "/v1/trace/snapshot", "admin-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("admin GET /v1/trace/snapshot = %d body=%s", w.Code, w.Body.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace snapshot is not valid JSON: %v", err)
	}
	// 2 recorded events + per-layer thread_name metadata.
	if len(doc.TraceEvents) < 2 {
		t.Fatalf("traceEvents = %d, want >= 2", len(doc.TraceEvents))
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	api, reg, _ := restAPIWithTelemetry(t)
	reg.Counter("attach_total").Add(3)
	reg.Histogram("rtt_ns").Observe(950)

	w := doReq(t, api, http.MethodGet, "/v1/metrics?format=prometheus", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET ?format=prometheus = %d body=%s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE attach_total counter\nattach_total 3\n",
		"# TYPE rtt_ns summary\n",
		"rtt_ns_count 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// Explicit json format still serves the snapshot document.
	w = doReq(t, api, http.MethodGet, "/v1/metrics?format=json", "reader-tok", nil)
	var snap metrics.Snapshot
	if w.Code != http.StatusOK || json.Unmarshal(w.Body.Bytes(), &snap) != nil {
		t.Fatalf("GET ?format=json = %d body=%s", w.Code, w.Body.String())
	}
	// Unknown formats are a client error, and the format switch does not
	// bypass auth.
	if w := doReq(t, api, http.MethodGet, "/v1/metrics?format=xml", "reader-tok", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("GET ?format=xml = %d", w.Code)
	}
	if w := doReq(t, api, http.MethodGet, "/v1/metrics?format=prometheus", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("anonymous prometheus scrape = %d", w.Code)
	}
}

// TestPrometheusSagaTraceInstruments pins the event-log instruments: with
// saga tracing on, cp_events_recorded / cp_events_dropped surface in the
// Prometheus exposition, track the log exactly, and scrape byte-stable at
// quiescence.
func TestPrometheusSagaTraceInstruments(t *testing.T) {
	svc, _ := testService(t)
	reg := metrics.NewRegistry()
	svc.SetTelemetry(reg, nil)
	// A tiny log: one attach+detach records far more than 8 events, so the
	// dropped counter is exercised too.
	elog := trace.NewEventLog(8)
	svc.SetSagaTracing(elog, trace.StepClock(0, 10))

	rec, err := svc.Attach(AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Detach(rec.ID); err != nil {
		t.Fatal(err)
	}
	if elog.Dropped() == 0 {
		t.Fatal("tiny log never evicted; dropped counter untested")
	}

	snap, ok := svc.MetricsSnapshot()
	if !ok {
		t.Fatal("telemetry configured but MetricsSnapshot not ok")
	}
	var a bytes.Buffer
	if err := snap.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE cp_events_recorded gauge\n",
		fmt.Sprintf("cp_events_recorded %d\n", elog.Recorded()),
		"# TYPE cp_events_dropped gauge\n",
		fmt.Sprintf("cp_events_dropped %d\n", elog.Dropped()),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Quiescent service: a second scrape must be byte-identical.
	snap2, _ := svc.MetricsSnapshot()
	var b bytes.Buffer
	if err := snap2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if out != b.String() {
		t.Fatalf("quiescent scrapes differ:\n%s\n---\n%s", out, b.String())
	}
}

func TestLatencyEndpointAuth(t *testing.T) {
	svc, c := testService(t)
	api := NewAPI(svc, AuthConfig{
		AdminTokens:  []string{"admin-tok"},
		ReaderTokens: []string{"reader-tok"},
	})

	// Not configured: 404 (auth still checked first).
	if w := doReq(t, api, http.MethodGet, "/v1/latency", "reader-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unconfigured GET /v1/latency = %d", w.Code)
	}

	c.EnableLatency()
	svc.SetLatency(c)

	if w := doReq(t, api, http.MethodGet, "/v1/latency", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("anonymous GET /v1/latency = %d", w.Code)
	}
	if w := doReq(t, api, http.MethodPost, "/v1/latency", "admin-tok", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/latency = %d", w.Code)
	}

	// Reader-visible, like the aggregate metrics.
	w := doReq(t, api, http.MethodGet, "/v1/latency", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("reader GET /v1/latency = %d body=%s", w.Code, w.Body.String())
	}
	var rep struct {
		Enabled bool `json:"enabled"`
		Overall struct {
			Count int64 `json:"count"`
		} `json:"overall"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || rep.Overall.Count != 0 {
		t.Fatalf("report = %+v (idle cluster, attribution enabled)", rep)
	}
}

func TestTelemetryNotConfigured(t *testing.T) {
	api, _ := restAPI(t) // no SetTelemetry
	if w := doReq(t, api, http.MethodGet, "/v1/metrics", "reader-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unconfigured GET /v1/metrics = %d", w.Code)
	}
	if w := doReq(t, api, http.MethodGet, "/v1/trace/snapshot", "admin-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unconfigured GET /v1/trace/snapshot = %d", w.Code)
	}
}

func TestPprofAdminGated(t *testing.T) {
	api, _, _ := restAPIWithTelemetry(t)
	// Not mounted until EnablePprof: the mux falls through to 404.
	if w := doReq(t, api, http.MethodGet, "/debug/pprof/cmdline", "admin-tok", nil); w.Code != http.StatusNotFound {
		t.Fatalf("pprof before EnablePprof = %d, want 404", w.Code)
	}
	api.EnablePprof()
	if w := doReq(t, api, http.MethodGet, "/debug/pprof/cmdline", "reader-tok", nil); w.Code != http.StatusForbidden {
		t.Fatalf("reader pprof = %d, want 403", w.Code)
	}
	if w := doReq(t, api, http.MethodGet, "/debug/pprof/cmdline", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("anonymous pprof = %d, want 401", w.Code)
	}
	if w := doReq(t, api, http.MethodGet, "/debug/pprof/cmdline", "admin-tok", nil); w.Code != http.StatusOK {
		t.Fatalf("admin pprof = %d, want 200", w.Code)
	}
}
