package controlplane

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/graphdb"
	"thymesisflow/internal/trace"
)

// saga is the in-memory execution state of one attach/detach state
// machine. The journal is the durable twin; intents/dones mirror what has
// been logged so compensation knows which side effects may exist.
type saga struct {
	id      string
	op      string
	intents map[string]bool
	dones   map[string]bool
	ctx     trace.SpanContext // root span; zero when tracing is off
	// rng drives this saga's backoff jitter, seeded from the saga ID so
	// the jitter sequence is a function of the saga alone — the same saga
	// replayed on another replica (or re-run by a crash-point test) sleeps
	// identically regardless of how other sagas interleave. Lazily created
	// on the first backoff so the retry-free happy path allocates nothing.
	rng *rand.Rand
}

// sagaJitterSeed hashes a saga ID to its jitter seed (inline FNV-1a, no
// allocation).
func sagaJitterSeed(id string) int64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int64(h)
}

// jitterRNG returns the saga's lazily-created backoff RNG.
func (sg *saga) jitterRNG() *rand.Rand {
	if sg.rng == nil {
		sg.rng = rand.New(rand.NewSource(sagaJitterSeed(sg.id)))
	}
	return sg.rng
}

// newSaga allocates the next saga ID and registers its status.
func (s *Service) newSaga(op string) *saga {
	s.sagaSeq++
	sg := &saga{
		id:      fmt.Sprintf("saga-%d", s.sagaSeq),
		op:      op,
		intents: make(map[string]bool),
		dones:   make(map[string]bool),
	}
	st := &SagaStatus{ID: sg.id, Op: op, State: "running"}
	s.sagas[sg.id] = st
	s.sagaOrder = append(s.sagaOrder, sg.id)
	if s.elog != nil {
		sg.ctx = s.newTraceCtx()
		s.cur = sg.ctx
		st.Trace = sg.ctx.Trace
		s.emit(trace.LogEvent{Source: "saga", Kind: trace.KindSagaBegin, Saga: sg.id, Op: op})
	}
	return sg
}

// append stamps the global sequence number and writes one journal entry.
// Any journal failure is treated as a control-plane crash by the callers.
// With tracing on, the append (including a FileJournal's fsync) is recorded
// as a journal event so fsync cost shows up in saga stage breakdowns; the
// sticky lastJournalErr feeds GET /v1/readyz.
func (s *Service) append(e JournalEntry) error {
	var t0 int64
	if s.elog != nil {
		t0 = s.wall()
	}
	e.Seq = s.jseq + 1
	err := s.journal.Append(e)
	if s.elog != nil {
		ev := trace.LogEvent{
			Source: "journal", Kind: trace.KindJournalAppend,
			Saga: e.SagaID, Op: e.Op, Step: e.Event, DurNS: s.wall() - t0,
		}
		if err != nil {
			ev.Err = err.Error()
		}
		s.emit(ev)
	}
	if err != nil {
		s.lastJournalErr = err.Error()
		return fmt.Errorf("%w: %v", errCrashed, err)
	}
	s.lastJournalErr = ""
	s.jseq++
	return nil
}

// errCrashed marks a saga halted by journal unavailability: the process is
// considered dead mid-saga and must not run further steps or compensation
// (recovery owns the cleanup on restart).
var errCrashed = errors.New("controlplane: crashed mid-saga")

func isCrash(err error) bool { return errors.Is(err, errCrashed) }

// IsCrash reports whether err is a control-plane crash (journal
// unavailable mid-saga): the process must restart and Recover before
// accepting further operations.
func IsCrash(err error) bool { return isCrash(err) }

// crash records the crashed status and surfaces the error.
func (s *Service) crash(sg *saga, err error) error {
	if st, ok := s.sagas[sg.id]; ok {
		st.State = "crashed"
		st.Err = err.Error()
	}
	if s.elog != nil {
		s.emit(trace.LogEvent{Source: "saga", Kind: trace.KindSagaCrash, Saga: sg.id, Op: sg.op, Err: err.Error()})
		s.cur = trace.SpanContext{}
	}
	if isCrash(err) {
		return err
	}
	return fmt.Errorf("%w: %v", errCrashed, err)
}

// step executes one saga step write-ahead: intent entry, bounded retries of
// fn on transient failures, done entry (optionally decorated with a step
// payload for recovery). A journal failure at any point aborts with a
// crash error.
func (s *Service) step(sg *saga, step string, epoch uint64, fn func() error, payload func(*JournalEntry)) error {
	if s.elog != nil {
		s.cur = s.childSpan(sg.ctx)
		s.emit(trace.LogEvent{Source: "saga", Kind: trace.KindStepStart, Saga: sg.id, Op: sg.op, Step: step})
		defer func() { s.cur = sg.ctx }()
	}
	if err := s.append(JournalEntry{SagaID: sg.id, Op: sg.op, Event: EvIntent, Step: step, Epoch: epoch}); err != nil {
		return err
	}
	sg.intents[step] = true
	var runT0 int64
	if s.elog != nil {
		runT0 = s.wall()
	}
	if err := s.retrySaga(sg, fn); err != nil {
		if s.elog != nil {
			s.emit(trace.LogEvent{Source: "saga", Kind: trace.KindStepFail, Saga: sg.id, Op: sg.op, Step: step, Err: err.Error()})
		}
		s.append(JournalEntry{SagaID: sg.id, Op: sg.op, Event: EvFailed, Step: step, Err: err.Error()}) //nolint:errcheck // best-effort: the failure is re-derivable
		return err
	}
	if s.elog != nil {
		s.emit(trace.LogEvent{Source: "saga", Kind: trace.KindStepRun, Saga: sg.id, Op: sg.op, Step: step, DurNS: s.wall() - runT0})
	}
	done := JournalEntry{SagaID: sg.id, Op: sg.op, Event: EvDone, Step: step, Epoch: epoch}
	if payload != nil {
		payload(&done)
	}
	if err := s.append(done); err != nil {
		return err
	}
	sg.dones[step] = true
	if s.elog != nil {
		s.emit(trace.LogEvent{Source: "saga", Kind: trace.KindStepDone, Saga: sg.id, Op: sg.op, Step: step})
	}
	return nil
}

// retry runs fn under the service retry policy: transient failures are
// retried with exponential backoff plus +/-50% jitter, permanent failures
// return immediately. Jitter draws from the given RNG; saga-scoped work
// must go through retrySaga so the jitter sequence is a pure function of
// the saga ID (byte-reproducible across replicas and crash-point replays),
// while service-scoped sweeps (the reconciler) use the service RNG.
func (s *Service) retry(fn func() error) error { return s.retryWith(s.jitter, nil, fn) }

// retrySaga retries fn with backoff jitter from the saga's seeded RNG.
func (s *Service) retrySaga(sg *saga, fn func() error) error {
	return s.retryWith(nil, sg, fn)
}

// retryWith implements the retry loop. When a saga is supplied (rng nil)
// its RNG is created lazily on the first backoff, so a saga that never
// retries never allocates one.
func (s *Service) retryWith(rng *rand.Rand, sg *saga, fn func() error) error {
	backoff := s.policy.BaseBackoff
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= s.policy.MaxAttempts {
			return err
		}
		s.ctrRetries.Add(1)
		var slept time.Duration
		if backoff > 0 {
			r := rng
			if r == nil {
				r = sg.jitterRNG()
			}
			slept = backoff/2 + time.Duration(r.Int63n(int64(backoff)))
			s.sleep(slept)
		}
		if s.elog != nil {
			// Recorded after the sleep so the backoff wait tiles into the
			// "backoff" stage of the saga timeline.
			s.emit(trace.LogEvent{Source: "transport", Kind: trace.KindCmdRetry, Attempt: attempt + 1, DurNS: int64(slept)})
		}
		backoff *= 2
		if s.policy.MaxBackoff > 0 && backoff > s.policy.MaxBackoff {
			backoff = s.policy.MaxBackoff
		}
	}
}

// nextEpoch returns the next monotonic command epoch.
func (s *Service) nextEpoch() uint64 {
	s.epoch++
	return s.epoch
}

// logCompensated best-effort journals one compensated step.
func (s *Service) logCompensated(sg *saga, step, host string) {
	if s.elog != nil {
		s.emit(trace.LogEvent{Source: "saga", Kind: trace.KindCompensate, Saga: sg.id, Op: sg.op, Step: step, Host: host})
	}
	s.append(JournalEntry{SagaID: sg.id, Op: sg.op, Event: EvCompensated, Step: step, Compute: host}) //nolint:errcheck
}

// park records a saga whose remaining agent detaches could not be
// confirmed; the reconciliation loop drains it.
func (s *Service) park(sg *saga, attID string, pending map[string]string) {
	p := &parkedSaga{sagaID: sg.id, op: sg.op, attID: attID, pending: pending}
	s.parked[sg.id] = p
	s.ctrParked.Add(1)
	steps := make([]string, 0, len(pending))
	for st, host := range pending {
		steps = append(steps, st+"@"+host)
	}
	sort.Strings(steps)
	s.append(JournalEntry{SagaID: sg.id, Op: sg.op, Event: EvParked, AttID: attID, Parked: steps}) //nolint:errcheck
	if st, ok := s.sagas[sg.id]; ok {
		st.State = "parked"
	}
	if s.elog != nil {
		s.emit(trace.LogEvent{Source: "saga", Kind: trace.KindSagaPark, Saga: sg.id, Op: sg.op})
		s.cur = trace.SpanContext{}
	}
}

// finishSaga records a terminal status.
func (s *Service) finishSaga(sg *saga, state, execID, errMsg string) {
	if st, ok := s.sagas[sg.id]; ok {
		st.State = state
		st.ExecID = execID
		st.Err = errMsg
	}
	if s.elog != nil {
		kind := trace.KindSagaCommit
		if state == "aborted" {
			kind = trace.KindSagaAbort
		}
		s.emit(trace.LogEvent{Source: "saga", Kind: kind, Saga: sg.id, Op: sg.op, Err: errMsg})
		s.cur = trace.SpanContext{}
	}
}

// trackRecovered registers a saga status discovered during journal replay.
func (s *Service) trackRecovered(id, op, state, execID, errMsg string) {
	if _, seen := s.sagas[id]; !seen {
		s.sagaOrder = append(s.sagaOrder, id)
	}
	s.sagas[id] = &SagaStatus{ID: id, Op: op, State: state, ExecID: execID, Err: errMsg}
}

// pathsToWire flattens reserved paths for the journal.
func pathsToWire(paths []Path) [][]int64 {
	if len(paths) == 0 {
		return nil
	}
	out := make([][]int64, len(paths))
	for i, p := range paths {
		vs := make([]int64, len(p.Vertices))
		for j, v := range p.Vertices {
			vs[j] = int64(v)
		}
		out[i] = vs
	}
	return out
}

// wireToPaths rebuilds paths from a journal entry.
func wireToPaths(wire [][]int64) []Path {
	if len(wire) == 0 {
		return nil
	}
	out := make([]Path, len(wire))
	for i, vs := range wire {
		p := Path{Vertices: make([]graphdb.ID, len(vs))}
		for j, v := range vs {
			p.Vertices[j] = graphdb.ID(v)
		}
		out[i] = p
	}
	return out
}

// RecoveryReport summarizes one journal replay.
type RecoveryReport struct {
	SagasSeen     int `json:"sagas_seen"`
	Restored      int `json:"restored"`       // committed attachments rebuilt
	RolledForward int `json:"rolled_forward"` // in-flight sagas completed
	Compensated   int `json:"compensated"`    // in-flight sagas rolled back
	Reparked      int `json:"reparked"`       // parked sagas handed to the reconciler
}

// sagaLog is one saga's journal slice, reassembled in append order.
type sagaLog struct {
	id      string
	entries []JournalEntry
}

// Recover replays the write-ahead journal after a control-plane restart:
// committed attachments are rebuilt (and their fabric reservations
// re-asserted), parked sagas are re-parked for the reconciler, and every
// in-flight saga is resolved — rolled forward when the executor confirms
// the datapath attach completed, compensated otherwise, querying agents
// for ground truth so compensating detaches are only sent where
// configuration may actually exist. Run Reconcile afterwards to repair
// anything recovery could not correlate (e.g. a datapath attach whose ID
// never reached the journal).
func (s *Service) Recover() (RecoveryReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep RecoveryReport
	var rctx trace.SpanContext
	if s.elog != nil {
		rctx = s.newTraceCtx()
		s.cur = rctx
		s.emit(trace.LogEvent{Source: "recovery", Kind: trace.KindRecoveryBegin})
		defer func() {
			s.cur = rctx
			s.emit(trace.LogEvent{Source: "recovery", Kind: trace.KindRecoveryEnd})
			s.cur = trace.SpanContext{}
		}()
	}
	entries, err := s.journal.Entries()
	if err != nil {
		return rep, err
	}

	// Reassemble per-saga logs in first-seen order and restore the
	// monotonic counters (saga sequence, command epoch, network ID, journal
	// sequence) past everything the journal has seen.
	var logs []*sagaLog
	byID := make(map[string]*sagaLog)
	for _, e := range entries {
		if e.Seq > s.jseq {
			s.jseq = e.Seq
		}
		if e.Epoch > s.epoch {
			s.epoch = e.Epoch
		}
		if e.NetID >= s.nextNetID {
			s.nextNetID = e.NetID + 1
		}
		if n, ok := sagaSeq(e.SagaID); ok && n > s.sagaSeq {
			s.sagaSeq = n
		}
		l, ok := byID[e.SagaID]
		if !ok {
			l = &sagaLog{id: e.SagaID}
			byID[e.SagaID] = l
			logs = append(logs, l)
		}
		l.entries = append(l.entries, e)
	}

	for _, l := range logs {
		rep.SagasSeen++
		s.recoverSaga(l, &rep)
	}
	return rep, nil
}

// sagaSeq parses the numeric suffix of a saga ID.
func sagaSeq(id string) (uint64, bool) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(id[i+1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recoverSaga resolves one saga's journal slice.
func (s *Service) recoverSaga(l *sagaLog, rep *RecoveryReport) {
	var begin *JournalEntry
	var terminal string
	var parkedEntry *JournalEntry
	intents := make(map[string]JournalEntry)
	dones := make(map[string]JournalEntry)
	for i := range l.entries {
		e := l.entries[i]
		switch e.Event {
		case EvBegin:
			begin = &l.entries[i]
		case EvIntent:
			intents[e.Step] = e
		case EvDone:
			dones[e.Step] = e
		case EvCommitted, EvAborted:
			terminal = e.Event
			if e.Event == EvCommitted {
				s.applyCommitted(l.id, begin, e, rep)
			}
		case EvParked:
			terminal = EvParked
			parkedEntry = &l.entries[i]
		}
	}
	if begin == nil {
		return
	}

	switch terminal {
	case EvCommitted:
		s.trackRecovered(l.id, begin.Op, "committed", committedExecID(l.entries), "")
		return
	case EvAborted:
		s.trackRecovered(l.id, begin.Op, "aborted", "", "")
		return
	case EvParked:
		// The saga's datapath work finished; only agent confirmations are
		// owed. Re-park for the reconciler. A parked detach already removed
		// its record and reservations in the live run, so undo what the
		// attach saga's committed entry restored above.
		if begin.Op == OpDetach {
			if rec, ok := s.attachments[parkedDetachExecID(l.entries)]; ok {
				s.model.ReleasePaths(rec.paths)
				delete(s.attachments, rec.ID)
			}
		}
		pending := make(map[string]string)
		for _, sh := range parkedEntry.Parked {
			if step, host, ok := strings.Cut(sh, "@"); ok {
				pending[step] = host
			}
		}
		if len(pending) > 0 {
			s.parked[l.id] = &parkedSaga{sagaID: l.id, op: begin.Op, attID: parkedEntry.AttID, pending: pending}
			s.ctrParked.Add(1)
			rep.Reparked++
		}
		s.trackRecovered(l.id, begin.Op, "parked", "", "")
		return
	}

	// In-flight saga: the control plane died mid-execution. Each replayed
	// saga gets its own trace so its compensation or roll-forward commands
	// reconstruct as one timeline.
	s.ctrRecoveryReplays.Add(1)
	var ctx trace.SpanContext
	if s.elog != nil {
		ctx = s.newTraceCtx()
		s.cur = ctx
		s.emit(trace.LogEvent{Source: "recovery", Kind: trace.KindRecoverySaga, Saga: l.id, Op: begin.Op})
	}
	switch begin.Op {
	case OpAttach:
		s.recoverAttach(l.id, begin, intents, dones, rep)
	case OpDetach:
		s.recoverDetach(l.id, begin, rep)
	}
	if s.elog != nil {
		if st, ok := s.sagas[l.id]; ok {
			st.Trace = ctx.Trace
		}
	}
}

// parkedDetachExecID extracts the exec ID of a parked detach saga from its
// begin entry.
func parkedDetachExecID(entries []JournalEntry) string {
	for _, e := range entries {
		if e.Event == EvBegin {
			return e.ExecID
		}
	}
	return ""
}

// committedExecID extracts the exec ID of a committed saga.
func committedExecID(entries []JournalEntry) string {
	for _, e := range entries {
		if e.Event == EvCommitted {
			return e.ExecID
		}
	}
	return ""
}

// applyCommitted replays a terminal committed entry: attach restores the
// attachment record (and re-asserts its reservations), detach removes it.
func (s *Service) applyCommitted(sagaID string, begin *JournalEntry, e JournalEntry, rep *RecoveryReport) {
	switch e.Op {
	case OpAttach:
		if begin == nil {
			return
		}
		paths := wireToPaths(e.Paths)
		rec := &AttachmentRecord{
			ID:          e.ExecID,
			SagaID:      sagaID,
			ComputeHost: e.Compute,
			DonorHost:   e.Donor,
			Bytes:       e.Bytes,
			Channels:    e.Channels,
			NUMANode:    e.NUMA,
			NetID:       e.NetID,
			paths:       paths,
		}
		for _, p := range paths {
			rec.PathLen = append(rec.PathLen, len(p.Vertices))
		}
		s.attachments[e.ExecID] = rec
		s.model.ReservePaths(paths)
		rep.Restored++
	case OpDetach:
		// A committed detach entry follows its attach's committed entry in
		// the journal, so the record (restored above) is removed again.
		if rec, ok := s.attachments[e.ExecID]; ok {
			s.model.ReleasePaths(rec.paths)
			delete(s.attachments, e.ExecID)
			rep.Restored--
		}
	}
}

// recoverAttach resolves an in-flight attach saga: roll forward when the
// executor confirms the datapath attach survived, compensate otherwise.
func (s *Service) recoverAttach(sagaID string, begin *JournalEntry, intents, dones map[string]JournalEntry, rep *RecoveryReport) {
	planDone, planned := dones[StepPlanPaths]
	paths := wireToPaths(planDone.Paths)
	execDone, execCompleted := dones[StepExecAttach]

	if execCompleted && s.execHas(execDone.ExecID) {
		// The datapath attach completed and survived: roll the saga
		// forward to committed.
		rec := &AttachmentRecord{
			ID:          execDone.ExecID,
			SagaID:      sagaID,
			ComputeHost: begin.Compute,
			DonorHost:   begin.Donor,
			Bytes:       begin.Bytes,
			Channels:    begin.Channels,
			NUMANode:    execDone.NUMA,
			NetID:       planDone.NetID,
			paths:       paths,
		}
		for _, p := range paths {
			rec.PathLen = append(rec.PathLen, len(p.Vertices))
		}
		s.attachments[execDone.ExecID] = rec
		s.model.ReservePaths(paths)
		s.append(JournalEntry{ //nolint:errcheck
			SagaID: sagaID, Op: OpAttach, Event: EvCommitted,
			Compute: begin.Compute, Donor: begin.Donor,
			Bytes: begin.Bytes, Channels: begin.Channels,
			NetID: planDone.NetID, Paths: planDone.Paths,
			ExecID: execDone.ExecID, NUMA: execDone.NUMA,
		})
		s.trackRecovered(sagaID, OpAttach, "committed", execDone.ExecID, "")
		rep.RolledForward++
		return
	}

	// Compensate. Agent ground truth decides where a detach is owed: an
	// intent whose command never arrived needs nothing, but we cannot tell
	// from the journal alone, so query and fall back to an idempotent
	// detach when in doubt.
	sg := &saga{id: sagaID, op: OpAttach, intents: map[string]bool{}, dones: map[string]bool{}}
	pending := make(map[string]string)
	if execCompleted && execDone.ExecID != "" {
		if err := s.exec.Detach(execDone.ExecID); err == nil {
			s.logCompensated(sg, StepExecAttach, "")
		}
	}
	if _, ok := intents[StepAttachCompute]; ok {
		if s.agentMayHold(begin.Compute, sagaID) {
			s.compensateAgent(sg, StepAttachCompute, begin.Compute, pending)
		}
	}
	if _, ok := intents[StepStealMemory]; ok {
		if s.agentMayHold(begin.Donor, sagaID) {
			s.compensateAgent(sg, StepStealMemory, begin.Donor, pending)
		}
	}
	if planned {
		s.model.ReleasePaths(paths)
		s.logCompensated(sg, StepPlanPaths, "")
	}
	s.ctrCompensations.Add(1)
	if len(pending) > 0 {
		s.park(sg, sagaID, pending)
		s.trackRecovered(sagaID, OpAttach, "parked", "", "")
	} else {
		s.append(JournalEntry{SagaID: sagaID, Op: OpAttach, Event: EvAborted, Err: "recovered: compensated after crash"}) //nolint:errcheck
		s.trackRecovered(sagaID, OpAttach, "aborted", "", "recovered: compensated after crash")
	}
	rep.Compensated++
}

// recoverDetach rolls an in-flight detach saga forward: the operator asked
// for the attachment to go away, so recovery finishes the job.
func (s *Service) recoverDetach(sagaID string, begin *JournalEntry, rep *RecoveryReport) {
	if s.execHas(begin.ExecID) {
		s.exec.Detach(begin.ExecID) //nolint:errcheck // unknown-ID means already gone
	}
	sg := &saga{id: sagaID, op: OpDetach}
	pending := make(map[string]string)
	for _, st := range []struct{ step, host string }{
		{StepDetachCompute, begin.Compute},
		{StepDetachDonor, begin.Donor},
	} {
		if !s.agentMayHold(st.host, begin.AttID) {
			continue
		}
		err := s.retrySaga(sg, func() error {
			return s.send(st.host, agent.Command{
				Kind: agent.CmdDetach, AttachmentID: begin.AttID, Epoch: s.nextEpoch(),
			})
		})
		if err != nil {
			pending[st.step] = st.host
		}
	}
	s.model.ReleasePaths(wireToPaths(begin.Paths))
	delete(s.attachments, begin.ExecID)
	if len(pending) > 0 {
		s.parked[sagaID] = &parkedSaga{sagaID: sagaID, op: OpDetach, attID: begin.AttID, pending: pending}
		s.ctrParked.Add(1)
		s.trackRecovered(sagaID, OpDetach, "parked", begin.ExecID, "")
	} else {
		s.append(JournalEntry{SagaID: sagaID, Op: OpDetach, Event: EvCommitted, ExecID: begin.ExecID}) //nolint:errcheck
		s.trackRecovered(sagaID, OpDetach, "committed", begin.ExecID, "")
	}
	rep.RolledForward++
}

// execHas queries the executor for attachment liveness (true when the
// executor cannot be inspected — the conservative roll-forward default).
func (s *Service) execHas(id string) bool {
	if id == "" {
		return false
	}
	insp, ok := s.exec.(ExecInspector)
	if !ok {
		return true
	}
	return insp.HasAttachment(id)
}

// agentMayHold queries an agent for attachment configuration; true when
// the query fails (when in doubt, send the idempotent detach).
func (s *Service) agentMayHold(host, attID string) bool {
	st, err := s.transport.Query(host)
	if err != nil {
		return true
	}
	for _, a := range st.Attachments {
		if a.ID == attID {
			return true
		}
	}
	return false
}
