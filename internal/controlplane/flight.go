package controlplane

import (
	"net/http"
	"strings"

	"thymesisflow/internal/timeseries"
	"thymesisflow/internal/timeseries/detect"
)

// SetFlightRecorder attaches the time-series flight recorder and online
// anomaly detector served read-only under GET /v1/timeseries and
// GET /v1/anomalies. Either may be nil; unconfigured endpoints answer 404.
// Recorder and detector are internally synchronized, so the pointers are
// kept in atomics and never touch the service lock — samplers tick them
// from their own goroutine (tfd) or clock tap (seeded harnesses) while the
// REST layer reads.
func (s *Service) SetFlightRecorder(rec *timeseries.Recorder, det *detect.Detector) {
	s.flightRec.Store(rec)
	s.flightDet.Store(det)
}

// FlightRecorder returns the attached recorder (nil when unconfigured).
func (s *Service) FlightRecorder() *timeseries.Recorder { return s.flightRec.Load() }

// FlightDetector returns the attached detector (nil when unconfigured).
func (s *Service) FlightDetector() *detect.Detector { return s.flightDet.Load() }

// FlightSampler records the service's saga counters into the cp.* flight-
// recorder series schema (docs/OBSERVABILITY.md) and streams every sample
// through the anomaly detector — the wall-clock tick-domain counterpart of
// the datapath grid sampler. It reads only atomic counters, so it is safe
// to call from a timer goroutine while sagas execute.
type FlightSampler struct {
	svc *Service
	det *detect.Detector

	retries, repairs, parked, rejected, inflight *timeseries.Series

	// cp.raft.* series, created only by ObserveRaft so single-node
	// recordings keep their pre-HA series set byte-identical.
	rec                              *timeseries.Recorder
	raftTerm, raftCommit, raftElects *timeseries.Series
}

// NewFlightSampler builds a sampler over svc recording into rec and
// feeding det (det may be nil for record-only operation).
func NewFlightSampler(svc *Service, rec *timeseries.Recorder, det *detect.Detector) *FlightSampler {
	return &FlightSampler{
		svc:      svc,
		det:      det,
		rec:      rec,
		retries:  rec.Series("cp.saga_retries", timeseries.Counter),
		repairs:  rec.Series("cp.reconcile_repairs", timeseries.Counter),
		parked:   rec.Series("cp.sagas_parked", timeseries.Counter),
		rejected: rec.Series("cp.sagas_rejected", timeseries.Counter),
		inflight: rec.Series("cp.saga_inflight", timeseries.Gauge),
	}
}

// ObserveRaft adds the cp.raft.* series (term, quorum-committed index,
// leader changes) to the recording. Call it only on HA deployments — the
// series are created here, not in the constructor, so existing single-node
// snapshots stay unchanged.
func (fs *FlightSampler) ObserveRaft() {
	fs.raftTerm = fs.rec.Series("cp.raft.term", timeseries.Gauge)
	fs.raftCommit = fs.rec.Series("cp.raft.commit_index", timeseries.Counter)
	fs.raftElects = fs.rec.Series("cp.raft.leader_changes", timeseries.Counter)
}

// Sample records one reading of every cp.* series at ts (nanoseconds in
// the caller's wall domain).
func (fs *FlightSampler) Sample(ts int64) {
	c := fs.svc.Counters()
	fs.record(fs.retries, ts, float64(c.SagaRetries))
	fs.record(fs.repairs, ts, float64(c.ReconcileRepairs))
	fs.record(fs.parked, ts, float64(c.SagasParked))
	fs.record(fs.rejected, ts, float64(c.SagasRejected))
	fs.record(fs.inflight, ts, float64(fs.svc.InflightSagas()))
	if fs.raftTerm != nil {
		if st, ok := fs.svc.RaftStatusReport(); ok {
			fs.record(fs.raftTerm, ts, float64(st.Term))
			fs.record(fs.raftCommit, ts, float64(st.CommitIndex))
			fs.record(fs.raftElects, ts, float64(st.LeaderChanges))
		}
	}
}

func (fs *FlightSampler) record(s *timeseries.Series, ts int64, v float64) {
	s.Record(ts, v)
	if fs.det != nil {
		fs.det.Observe(s.Name(), ts, v)
	}
}

// handleTimeseries serves a frozen snapshot of the flight-recorder series.
// Reader-visible like the aggregate metrics. ?format=binary streams the
// TFTS wire format (what tfmon decodes); ?prefix=llc. filters to one
// series family.
func (a *API) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	rec := a.svc.FlightRecorder()
	if rec == nil {
		writeErr(w, http.StatusNotFound, "flight recorder not configured")
		return
	}
	snap := rec.Snapshot()
	if prefix := r.URL.Query().Get("prefix"); prefix != "" {
		snap = snap.Filter(func(name string) bool { return strings.HasPrefix(name, prefix) })
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, snap)
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(timeseries.EncodeSnapshot(snap)) //nolint:errcheck
	default:
		writeErr(w, http.StatusBadRequest, "unknown format "+format)
	}
}

// anomaliesView is the JSON shape of GET /v1/anomalies.
type anomaliesView struct {
	Active int               `json:"active"`
	Totals map[string]uint64 `json:"totals"`
	Events []detect.Event    `json:"events"`
}

// handleAnomalies serves the detector's event list (closed and still-open
// anomalies) plus the active/total tallies the anomaly_* metrics export.
func (a *API) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	det := a.svc.FlightDetector()
	if det == nil {
		writeErr(w, http.StatusNotFound, "anomaly detection not configured")
		return
	}
	writeJSON(w, http.StatusOK, anomaliesView{
		Active: det.Active(),
		Totals: det.Totals(),
		Events: det.Events(),
	})
}
