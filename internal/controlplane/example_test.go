package controlplane_test

import (
	"fmt"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/controlplane"
	"thymesisflow/internal/core"
)

// Example drives the software-defined flow: model the rack topology, plan
// and reserve a path, push configuration to trusted agents, and execute the
// attachment on the datapath.
func Example() {
	// Physical rack.
	cluster := core.NewCluster()
	cluster.AddHost(core.DefaultHostConfig("node0")) //nolint:errcheck
	cluster.AddHost(core.DefaultHostConfig("node1")) //nolint:errcheck

	// Control-plane state graph: hosts, endpoints, transceivers, cables.
	model := controlplane.NewModel()
	model.AddHost("node0", 2) //nolint:errcheck
	model.AddHost("node1", 2) //nolint:errcheck
	ct := model.Transceivers("node0", controlplane.LabelComputeEP)
	mt := model.Transceivers("node1", controlplane.LabelMemoryEP)
	model.Cable(ct[0], mt[0]) //nolint:errcheck
	model.Cable(ct[1], mt[1]) //nolint:errcheck

	const token = "trusted"
	svc := controlplane.NewService(model, controlplane.ClusterExecutor{Cluster: cluster}, token)
	svc.RegisterAgent(agent.New("node0", token))
	svc.RegisterAgent(agent.New("node1", token))

	rec, err := svc.Attach(controlplane.AttachRequest{
		ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 30, Channels: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("attachment %s: %d channels, paths of %v hops\n", rec.ID, rec.Channels, rec.PathLen)
	fmt.Printf("free compute transceivers on node0: %d\n",
		model.FreeTransceivers("node0", controlplane.LabelComputeEP))

	if err := svc.Detach(rec.ID); err != nil {
		panic(err)
	}
	fmt.Printf("after detach: %d\n", model.FreeTransceivers("node0", controlplane.LabelComputeEP))
	// Output:
	// attachment att-0: 2 channels, paths of [2 2] hops
	// free compute transceivers on node0: 0
	// after detach: 2
}
