package controlplane

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/core"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/timeseries"
	"thymesisflow/internal/timeseries/detect"
	"thymesisflow/internal/trace"
)

// Executor carries out planned attachments on the physical (simulated)
// cluster. *core.Cluster satisfies it through ClusterExecutor.
type Executor interface {
	Attach(computeHost, donorHost string, bytes int64, channels int) (id string, node mem.NodeID, err error)
	Detach(id string) error
}

// ClusterExecutor adapts core.Cluster to the Executor interface.
type ClusterExecutor struct {
	Cluster *core.Cluster
}

// Attach implements Executor.
func (ce ClusterExecutor) Attach(computeHost, donorHost string, bytes int64, channels int) (string, mem.NodeID, error) {
	att, err := ce.Cluster.Attach(core.AttachSpec{
		ComputeHost: computeHost,
		DonorHost:   donorHost,
		Bytes:       bytes,
		Channels:    channels,
	})
	if err != nil {
		return "", 0, err
	}
	return att.ID, att.Node, nil
}

// Detach implements Executor.
func (ce ClusterExecutor) Detach(id string) error { return ce.Cluster.Detach(id) }

// ExecInspector is optionally implemented by executors that can report
// whether an attachment is still live — the ground-truth query crash
// recovery uses to decide between rolling a saga forward and compensating.
type ExecInspector interface {
	HasAttachment(id string) bool
}

// HasAttachment implements ExecInspector.
func (ce ClusterExecutor) HasAttachment(id string) bool {
	_, ok := ce.Cluster.Attachment(id)
	return ok
}

// ExecLister is optionally implemented by executors that can enumerate
// live attachments; the reconciliation loop diffs the list against the
// control plane's records to find orphans (e.g. an attach that crashed
// between the executor call and its journal record).
type ExecLister interface {
	AttachmentIDs() []string
}

// AttachmentIDs implements ExecLister, sorted for deterministic sweeps.
func (ce ClusterExecutor) AttachmentIDs() []string {
	atts := ce.Cluster.Attachments()
	out := make([]string, 0, len(atts))
	for _, a := range atts {
		out = append(out, a.ID)
	}
	sort.Strings(out)
	return out
}

// TrafficReporter is optionally implemented by executors that can report
// per-attachment datapath counters; the REST layer exposes them under
// GET /v1/attachments/{id}/stats.
type TrafficReporter interface {
	Traffic(id string) (core.TrafficStats, bool)
}

// Traffic implements TrafficReporter.
func (ce ClusterExecutor) Traffic(id string) (core.TrafficStats, bool) {
	att, ok := ce.Cluster.Attachment(id)
	if !ok {
		return core.TrafficStats{}, false
	}
	return att.Traffic(), true
}

// StateReporter is optionally implemented by executors that can report an
// attachment's lifecycle state (active / draining / link-down); the REST
// layer exposes it under GET /v1/attachments/{id}/state so operators can
// observe degraded-mode recovery and detach-under-load progress.
type StateReporter interface {
	AttachmentState(id string) (string, bool)
}

// AttachmentState implements StateReporter.
func (ce ClusterExecutor) AttachmentState(id string) (string, bool) {
	att, ok := ce.Cluster.Attachment(id)
	if !ok {
		return "", false
	}
	return att.State().String(), true
}

// AttachmentState returns the lifecycle state of an attachment when the
// executor supports state reporting. Attachments the control plane knows
// about but the executor no longer holds (torn down underneath it) read as
// detached.
func (s *Service) AttachmentState(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, known := s.attachments[id]; !known {
		return "", false
	}
	sr, ok := s.exec.(StateReporter)
	if !ok {
		return "", false
	}
	if st, ok := sr.AttachmentState(id); ok {
		return st, true
	}
	return core.StateDetached.String(), true
}

// Traffic returns datapath counters for an attachment when the executor
// supports reporting.
func (s *Service) Traffic(id string) (core.TrafficStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, known := s.attachments[id]; !known {
		return core.TrafficStats{}, false
	}
	tr, ok := s.exec.(TrafficReporter)
	if !ok {
		return core.TrafficStats{}, false
	}
	return tr.Traffic(id)
}

// AttachmentRecord is the control plane's book-keeping for one attachment.
type AttachmentRecord struct {
	ID          string `json:"id"`
	SagaID      string `json:"saga_id"` // agent-side correlation ID
	ComputeHost string `json:"compute_host"`
	DonorHost   string `json:"donor_host"`
	Bytes       int64  `json:"bytes"`
	Channels    int    `json:"channels"`
	NUMANode    int    `json:"numa_node"`
	NetID       uint16 `json:"network_id"`
	PathLen     []int  `json:"path_len"`
	paths       []Path
}

// RetryPolicy bounds the per-step retries of a saga. Transient transport
// failures are retried with exponential backoff plus jitter; permanent
// failures (agent rejections, executor errors) fail the step immediately.
type RetryPolicy struct {
	// MaxAttempts is the per-step attempt budget (the step deadline):
	// attempts beyond it fail the step and trigger compensation or
	// parking. Minimum 1.
	MaxAttempts int
	// BaseBackoff is the delay after the first failed attempt; it doubles
	// per attempt up to MaxBackoff, with +/-50% jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy is the production policy: four attempts per step,
// 5ms..80ms backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
}

// SagaCounters is a snapshot of the control plane's fault-handling
// counters (also exported through the metrics registry under the same
// names, and from there via GET /v1/metrics).
type SagaCounters struct {
	SagaRetries         int64 `json:"saga_retries"`
	SagaCompensations   int64 `json:"saga_compensations"`
	RecoveryReplays     int64 `json:"recovery_replays"`
	ReconcileRepairs    int64 `json:"reconcile_repairs"`
	DetachAgentFailures int64 `json:"detach_agent_failures"`
	SagasParked         int64 `json:"sagas_parked"`
	SagasRejected       int64 `json:"sagas_rejected"`
}

// SagaStatus is the externally visible progress of one saga, served under
// GET /v1/sagas.
type SagaStatus struct {
	ID     string        `json:"id"`
	Op     string        `json:"op"`
	State  string        `json:"state"` // running | committed | aborted | parked | crashed
	ExecID string        `json:"exec_id,omitempty"`
	Err    string        `json:"err,omitempty"`
	Trace  trace.TraceID `json:"trace,omitempty"` // saga trace ID when tracing is on
}

// Service is the control plane: topology model, agent transport, executor,
// write-ahead saga journal, and attachment state.
type Service struct {
	mu        sync.Mutex
	model     *Model
	exec      Executor
	transport Transport
	journal   Journal
	policy    RetryPolicy
	sleep     func(time.Duration)
	jitter    *rand.Rand
	token     string // the control plane's trusted token

	attachments map[string]*AttachmentRecord
	parked      map[string]*parkedSaga
	sagas       map[string]*SagaStatus
	sagaOrder   []string
	nextNetID   uint16
	sagaSeq     uint64
	epoch       uint64
	jseq        uint64

	ctrRetries         atomic.Int64
	ctrCompensations   atomic.Int64
	ctrRecoveryReplays atomic.Int64
	ctrReconcileFixes  atomic.Int64
	ctrDetachFailures  atomic.Int64
	ctrParked          atomic.Int64
	ctrRejected        atomic.Int64

	// Saga admission control (SetMaxInflightSagas). maxInflight == 0 means
	// unlimited; inflight counts Attach/Detach sagas between admission and
	// return. Checked before s.mu so overload rejection is immediate even
	// while a saga holds the lock.
	maxInflight atomic.Int64
	inflight    atomic.Int64

	// metrics and ring back the read-only telemetry endpoints; nil until
	// SetTelemetry is called.
	metrics *metrics.Registry
	ring    *trace.Ring
	latRep  LatencyReporter

	// Saga tracing (sagatrace.go). elog == nil means disabled — the
	// production default, and every emission site is nil-guarded so the
	// disabled saga hot path stays allocation-free. cur is the span context
	// of the work currently executing under s.mu.
	elog     *trace.EventLog
	wall     trace.WallClock
	cur      trace.SpanContext
	traceSeq uint64
	spanSeq  uint64
	// elogShared mirrors elog for readers that must not take s.mu (the
	// metrics collector runs inside Registry.Snapshot, which MetricsSnapshot
	// already calls under the lock).
	elogShared atomic.Pointer[trace.EventLog]

	// Readiness state (health.go): sticky last journal append error and
	// reconciler liveness (0 disabled, 1 running, 2 stopped).
	lastJournalErr string
	reconState     atomic.Int32

	// Flight-recorder telemetry (flight.go): nil until SetFlightRecorder.
	// Atomics, not s.mu — samplers tick these from clock taps and timer
	// goroutines that must never contend with the saga engine.
	flightRec atomic.Pointer[timeseries.Recorder]
	flightDet atomic.Pointer[detect.Detector]

	// HA replication (replicated.go): leaderGate rejects mutations on
	// non-leader replicas before the saga mutex (mirroring admit), and
	// raftStatus backs /v1/raft/status and the readyz role/quorum fields.
	// Both nil on a single-node control plane.
	leaderGate   atomic.Pointer[func() error]
	raftStatus   atomic.Pointer[func() RaftStatus]
	ctrNotLeader atomic.Int64
}

// parkedSaga is a saga whose datapath work is finished but whose agent
// acknowledgements could not be confirmed; the reconciliation loop keeps
// retrying the pending steps until the agents confirm.
type parkedSaga struct {
	sagaID  string
	op      string
	attID   string            // agent-side correlation ID
	pending map[string]string // step -> host still owing a detach
}

// NewService builds a control plane over the given model and executor with
// a reliable in-process transport and an in-memory journal. The token
// authenticates the control plane toward node agents. Use SetTransport /
// SetJournal / SetRetryPolicy before serving traffic to swap in a lossy
// transport, a durable journal, or a different retry budget.
func NewService(model *Model, exec Executor, token string) *Service {
	return &Service{
		model:       model,
		exec:        exec,
		transport:   NewDirectTransport(),
		journal:     NewMemJournal(),
		policy:      DefaultRetryPolicy(),
		sleep:       time.Sleep,
		jitter:      rand.New(rand.NewSource(1)),
		token:       token,
		attachments: make(map[string]*AttachmentRecord),
		parked:      make(map[string]*parkedSaga),
		sagas:       make(map[string]*SagaStatus),
		nextNetID:   1,
	}
}

// SetTransport replaces the agent transport (e.g. with a FaultyTransport
// for chaos campaigns). Agents already registered on the old transport are
// not migrated.
func (s *Service) SetTransport(t Transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transport = t
}

// SetJournal replaces the saga journal. Call before any saga runs (or
// right before Recover when restarting over a durable journal).
func (s *Service) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// SetRetryPolicy replaces the per-step retry budget.
func (s *Service) SetRetryPolicy(p RetryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	s.policy = p
}

// ErrOverloaded is returned by Attach/Detach when the in-flight saga limit
// set by SetMaxInflightSagas is reached. The request had no effect; callers
// shed or retry later.
var ErrOverloaded = errors.New("controlplane: saga admission limit reached")

// SetMaxInflightSagas bounds the number of concurrently executing
// Attach/Detach sagas; further requests fail fast with ErrOverloaded and
// count as SagasRejected. n <= 0 removes the bound (the default). This is
// the concurrency-limit knob sustained replay load exposed: without it, a
// burst of arrivals queues on the saga mutex and every request pays the
// full queue's latency instead of the overload being visible at admission.
func (s *Service) SetMaxInflightSagas(n int) {
	if n < 0 {
		n = 0
	}
	s.maxInflight.Store(int64(n))
}

// InflightSagas returns the number of currently admitted sagas.
func (s *Service) InflightSagas() int { return int(s.inflight.Load()) }

// admit reserves an in-flight saga slot, or rejects with ErrOverloaded.
func (s *Service) admit() error {
	max := s.maxInflight.Load()
	n := s.inflight.Add(1)
	if max > 0 && n > max {
		s.inflight.Add(-1)
		s.ctrRejected.Add(1)
		return ErrOverloaded
	}
	return nil
}

// release frees an admitted slot.
func (s *Service) release() { s.inflight.Add(-1) }

// SetLeaderGate installs the HA leader gate: a func returning nil when
// this replica may accept mutations and *NotLeaderError otherwise
// (ReplicaSet.Gate builds one). Like the admission limit it is checked
// before s.mu, so followers shed misdirected writes immediately even while
// the leader gate-keeps a long saga. nil removes the gate.
func (s *Service) SetLeaderGate(gate func() error) {
	if gate == nil {
		s.leaderGate.Store(nil)
		return
	}
	s.leaderGate.Store(&gate)
}

// checkLeader applies the leader gate (nil when unset or leading).
func (s *Service) checkLeader() error {
	g := s.leaderGate.Load()
	if g == nil {
		return nil
	}
	if err := (*g)(); err != nil {
		s.ctrNotLeader.Add(1)
		return err
	}
	return nil
}

// SetRaftStatus installs the replica-status source backing
// /v1/raft/status and the readyz role/quorum fields (ReplicaSet.StatusFor
// wrapped for this node). nil removes it.
func (s *Service) SetRaftStatus(fn func() RaftStatus) {
	if fn == nil {
		s.raftStatus.Store(nil)
		return
	}
	s.raftStatus.Store(&fn)
}

// RaftStatusReport returns this replica's Raft status with the service's
// not-leader rejection counter folded in; ok is false on a single-node
// control plane with no replication bound.
func (s *Service) RaftStatusReport() (RaftStatus, bool) {
	fn := s.raftStatus.Load()
	if fn == nil {
		return RaftStatus{}, false
	}
	st := (*fn)()
	st.NotLeaderRejects = s.ctrNotLeader.Load()
	return st, true
}

// NotLeaderRejects counts mutations shed by the leader gate.
func (s *Service) NotLeaderRejects() int64 { return s.ctrNotLeader.Load() }

// RegisterAgent attaches a node agent for a host (delegating to the
// transport's registry when it has one).
func (s *Service) RegisterAgent(a *agent.Agent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg, ok := s.transport.(interface{ Register(*agent.Agent) }); ok {
		reg.Register(a)
	}
	if s.elog != nil {
		a.SetEventLog(s.elog, s.wall)
	}
}

// Model returns the topology model.
func (s *Service) Model() *Model { return s.model }

// Counters snapshots the fault-handling counters.
func (s *Service) Counters() SagaCounters {
	return SagaCounters{
		SagaRetries:         s.ctrRetries.Load(),
		SagaCompensations:   s.ctrCompensations.Load(),
		RecoveryReplays:     s.ctrRecoveryReplays.Load(),
		ReconcileRepairs:    s.ctrReconcileFixes.Load(),
		DetachAgentFailures: s.ctrDetachFailures.Load(),
		SagasParked:         s.ctrParked.Load(),
		SagasRejected:       s.ctrRejected.Load(),
	}
}

// Sagas lists saga statuses in start order.
func (s *Service) Sagas() []SagaStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SagaStatus, 0, len(s.sagaOrder))
	for _, id := range s.sagaOrder {
		if st, ok := s.sagas[id]; ok {
			out = append(out, *st)
		}
	}
	return out
}

// ParkedSagas returns the IDs of sagas awaiting reconciliation.
func (s *Service) ParkedSagas() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.parked))
	for id := range s.parked {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AttachRequest is the external API request body.
type AttachRequest struct {
	ComputeHost string `json:"compute_host"`
	DonorHost   string `json:"donor_host"`
	Bytes       int64  `json:"bytes"`
	Channels    int    `json:"channels"`
}

// Attach plans, reserves, configures, and executes one attachment as an
// idempotent saga: every step is journaled write-ahead, agent commands
// carry (AttachmentID, Epoch) so retries deduplicate, transient transport
// failures are retried with backoff, and a failed step triggers
// *compensating* rollback — a failed compute-side push issues a donor-side
// detach (not just a path release), so no donor memory leaks.
func (s *Service) Attach(req AttachRequest) (*AttachmentRecord, error) {
	if err := s.checkLeader(); err != nil {
		return nil, err
	}
	if err := s.admit(); err != nil {
		return nil, err
	}
	defer s.release()
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Channels <= 0 {
		req.Channels = 1
	}
	if req.Bytes <= 0 {
		return nil, fmt.Errorf("controlplane: attach of %d bytes", req.Bytes)
	}
	for _, h := range []string{req.ComputeHost, req.DonorHost} {
		if _, err := s.transport.Query(h); err != nil {
			return nil, fmt.Errorf("controlplane: no agent registered for host %q", h)
		}
	}

	sg := s.newSaga(OpAttach)
	if err := s.append(JournalEntry{
		SagaID: sg.id, Op: OpAttach, Event: EvBegin,
		Compute: req.ComputeHost, Donor: req.DonorHost,
		Bytes: req.Bytes, Channels: req.Channels,
	}); err != nil {
		return nil, s.crash(sg, err)
	}

	// 1. Find and reserve fabric paths.
	var paths []Path
	var netID uint16
	err := s.step(sg, StepPlanPaths, 0, func() error {
		p, err := s.model.PlanChannels(req.ComputeHost, req.DonorHost, req.Channels)
		if err != nil {
			return err
		}
		paths = p
		netID = s.nextNetID
		s.nextNetID++
		return nil
	}, func(e *JournalEntry) {
		e.NetID = netID
		e.Paths = pathsToWire(paths)
	})
	if err != nil {
		return nil, s.failAttach(sg, req, paths, netID, "", err)
	}

	// 2. Push configuration to the agents (donor first: memory must be
	// pinned before the compute side can forward to it).
	stealEpoch := s.nextEpoch()
	err = s.step(sg, StepStealMemory, stealEpoch, func() error {
		return s.send(req.DonorHost, agent.Command{
			Kind: agent.CmdStealMemory, AttachmentID: sg.id, Epoch: stealEpoch,
			Bytes: req.Bytes, NetworkID: netID,
		})
	}, nil)
	if err != nil {
		return nil, s.failAttach(sg, req, paths, netID, "", err)
	}

	attachEpoch := s.nextEpoch()
	err = s.step(sg, StepAttachCompute, attachEpoch, func() error {
		return s.send(req.ComputeHost, agent.Command{
			Kind: agent.CmdAttachCompute, AttachmentID: sg.id, Epoch: attachEpoch,
			Bytes: req.Bytes, Channels: req.Channels, NetworkID: netID,
		})
	}, nil)
	if err != nil {
		return nil, s.failAttach(sg, req, paths, netID, "", err)
	}

	// 3. Execute on the datapath.
	var execID string
	var node mem.NodeID
	err = s.step(sg, StepExecAttach, 0, func() error {
		id, n, err := s.exec.Attach(req.ComputeHost, req.DonorHost, req.Bytes, req.Channels)
		if err != nil {
			return err
		}
		execID, node = id, n
		return nil
	}, func(e *JournalEntry) {
		e.ExecID = execID
		e.NUMA = int(node)
	})
	if err != nil {
		return nil, s.failAttach(sg, req, paths, netID, execID, err)
	}

	// 4. Commit: the committed entry carries the whole record, so a
	// restarted control plane rebuilds it from the journal alone.
	rec := &AttachmentRecord{
		ID:          execID,
		SagaID:      sg.id,
		ComputeHost: req.ComputeHost,
		DonorHost:   req.DonorHost,
		Bytes:       req.Bytes,
		Channels:    req.Channels,
		NUMANode:    int(node),
		NetID:       netID,
		paths:       paths,
	}
	for _, p := range paths {
		rec.PathLen = append(rec.PathLen, len(p.Vertices))
	}
	if err := s.append(JournalEntry{
		SagaID: sg.id, Op: OpAttach, Event: EvCommitted,
		Compute: req.ComputeHost, Donor: req.DonorHost,
		Bytes: req.Bytes, Channels: req.Channels,
		NetID: netID, Paths: pathsToWire(paths), ExecID: execID, NUMA: int(node),
	}); err != nil {
		// Crash after the datapath attach succeeded: the attachment is
		// live but unrecorded. Recovery rolls this saga forward from the
		// exec-attach done entry.
		return nil, s.crash(sg, err)
	}
	s.attachments[execID] = rec
	s.finishSaga(sg, "committed", execID, "")
	return rec, nil
}

// failAttach compensates a failed attach saga in reverse step order:
// datapath detach if the executor ran, compensating agent detaches for
// every step whose command may have reached an agent (intent written), and
// path release. Un-confirmable agent detaches park the saga for the
// reconciliation loop.
func (s *Service) failAttach(sg *saga, req AttachRequest, paths []Path, netID uint16, execID string, cause error) error {
	if isCrash(cause) {
		return s.crash(sg, cause)
	}
	s.ctrCompensations.Add(1)
	pending := make(map[string]string)

	if execID != "" {
		if err := s.exec.Detach(execID); err == nil {
			s.logCompensated(sg, StepExecAttach, "")
		}
	}
	// Compensating detaches cover intents, not just completed steps: an
	// ambiguous transport failure may have applied the command, and the
	// agent-side detach is idempotent either way.
	if sg.intents[StepAttachCompute] {
		s.compensateAgent(sg, StepAttachCompute, req.ComputeHost, pending)
	}
	if sg.intents[StepStealMemory] {
		s.compensateAgent(sg, StepStealMemory, req.DonorHost, pending)
	}
	if sg.dones[StepPlanPaths] {
		s.model.ReleasePaths(paths)
		s.logCompensated(sg, StepPlanPaths, "")
	}

	if len(pending) > 0 {
		s.park(sg, sg.id, pending)
	} else {
		s.append(JournalEntry{SagaID: sg.id, Op: sg.op, Event: EvAborted, Err: cause.Error()}) //nolint:errcheck // best-effort terminal entry
		s.finishSaga(sg, "aborted", execID, cause.Error())
	}
	return cause
}

// compensateAgent sends an idempotent detach for a (possibly) applied
// command; exhausted retries land the step in pending for the reconciler.
func (s *Service) compensateAgent(sg *saga, step, host string, pending map[string]string) {
	err := s.retrySaga(sg, func() error {
		return s.send(host, agent.Command{
			Kind: agent.CmdDetach, AttachmentID: sg.id, Epoch: s.nextEpoch(),
		})
	})
	if err != nil {
		pending[compensationStep(step)] = host
		return
	}
	s.logCompensated(sg, step, host)
}

// compensationStep maps an attach step to the detach step the reconciler
// must finish.
func compensationStep(step string) string {
	if step == StepStealMemory {
		return StepDetachDonor
	}
	return StepDetachCompute
}

// Detach tears an attachment down as a saga: datapath first, then
// compensable agent detaches, then path release. Agent failures are no
// longer swallowed: transient failures are retried, and un-confirmable
// detaches are parked for the reconciliation loop (counted in
// detach_agent_failures) instead of silently dropped.
func (s *Service) Detach(id string) error {
	if err := s.checkLeader(); err != nil {
		return err
	}
	if err := s.admit(); err != nil {
		return err
	}
	defer s.release()
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.attachments[id]
	if !ok {
		return fmt.Errorf("controlplane: unknown attachment %q", id)
	}

	sg := s.newSaga(OpDetach)
	if err := s.append(JournalEntry{
		SagaID: sg.id, Op: OpDetach, Event: EvBegin,
		AttID: rec.SagaID, ExecID: rec.ID,
		Compute: rec.ComputeHost, Donor: rec.DonorHost,
		Paths: pathsToWire(rec.paths),
	}); err != nil {
		return s.crash(sg, err)
	}

	// 1. Tear down the datapath. A failure here aborts the saga with the
	// attachment intact (nothing to compensate yet).
	err := s.step(sg, StepExecDetach, 0, func() error {
		return s.exec.Detach(id)
	}, nil)
	if err != nil {
		if isCrash(err) {
			return s.crash(sg, err)
		}
		s.append(JournalEntry{SagaID: sg.id, Op: sg.op, Event: EvAborted, Err: err.Error()}) //nolint:errcheck
		s.finishSaga(sg, "aborted", id, err.Error())
		return err
	}

	// 2+3. Agent-side detaches. The datapath is already gone, so these
	// must eventually happen; failures park the saga for the reconciler
	// rather than failing the API call.
	pending := make(map[string]string)
	for _, st := range []struct{ step, host string }{
		{StepDetachCompute, rec.ComputeHost},
		{StepDetachDonor, rec.DonorHost},
	} {
		st := st
		epoch := s.nextEpoch()
		err := s.step(sg, st.step, epoch, func() error {
			return s.send(st.host, agent.Command{
				Kind: agent.CmdDetach, AttachmentID: rec.SagaID, Epoch: epoch,
			})
		}, nil)
		if err != nil {
			if isCrash(err) {
				return s.crash(sg, err)
			}
			s.ctrDetachFailures.Add(1)
			pending[st.step] = st.host
		}
	}

	// 4. Release fabric reservations and drop the record.
	err = s.step(sg, StepReleasePaths, 0, func() error {
		s.model.ReleasePaths(rec.paths)
		return nil
	}, nil)
	if err != nil {
		return s.crash(sg, err)
	}
	delete(s.attachments, id)

	if len(pending) > 0 {
		s.park(sg, rec.SagaID, pending)
		return nil
	}
	if err := s.append(JournalEntry{SagaID: sg.id, Op: OpDetach, Event: EvCommitted, ExecID: id}); err != nil {
		return s.crash(sg, err)
	}
	s.finishSaga(sg, "committed", id, "")
	return nil
}

// Attachments lists records sorted by ID.
func (s *Service) Attachments() []*AttachmentRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*AttachmentRecord, 0, len(s.attachments))
	for _, r := range s.attachments {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Attachment returns one record.
func (s *Service) Attachment(id string) (*AttachmentRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.attachments[id]
	return r, ok
}
