package controlplane

import (
	"fmt"
	"sort"
	"sync"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/core"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/trace"
)

// Executor carries out planned attachments on the physical (simulated)
// cluster. *core.Cluster satisfies it through ClusterExecutor.
type Executor interface {
	Attach(computeHost, donorHost string, bytes int64, channels int) (id string, node mem.NodeID, err error)
	Detach(id string) error
}

// ClusterExecutor adapts core.Cluster to the Executor interface.
type ClusterExecutor struct {
	Cluster *core.Cluster
}

// Attach implements Executor.
func (ce ClusterExecutor) Attach(computeHost, donorHost string, bytes int64, channels int) (string, mem.NodeID, error) {
	att, err := ce.Cluster.Attach(core.AttachSpec{
		ComputeHost: computeHost,
		DonorHost:   donorHost,
		Bytes:       bytes,
		Channels:    channels,
	})
	if err != nil {
		return "", 0, err
	}
	return att.ID, att.Node, nil
}

// Detach implements Executor.
func (ce ClusterExecutor) Detach(id string) error { return ce.Cluster.Detach(id) }

// TrafficReporter is optionally implemented by executors that can report
// per-attachment datapath counters; the REST layer exposes them under
// GET /v1/attachments/{id}/stats.
type TrafficReporter interface {
	Traffic(id string) (core.TrafficStats, bool)
}

// Traffic implements TrafficReporter.
func (ce ClusterExecutor) Traffic(id string) (core.TrafficStats, bool) {
	att, ok := ce.Cluster.Attachment(id)
	if !ok {
		return core.TrafficStats{}, false
	}
	return att.Traffic(), true
}

// StateReporter is optionally implemented by executors that can report an
// attachment's lifecycle state (active / draining / link-down); the REST
// layer exposes it under GET /v1/attachments/{id}/state so operators can
// observe degraded-mode recovery and detach-under-load progress.
type StateReporter interface {
	AttachmentState(id string) (string, bool)
}

// AttachmentState implements StateReporter.
func (ce ClusterExecutor) AttachmentState(id string) (string, bool) {
	att, ok := ce.Cluster.Attachment(id)
	if !ok {
		return "", false
	}
	return att.State().String(), true
}

// AttachmentState returns the lifecycle state of an attachment when the
// executor supports state reporting. Attachments the control plane knows
// about but the executor no longer holds (torn down underneath it) read as
// detached.
func (s *Service) AttachmentState(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, known := s.attachments[id]; !known {
		return "", false
	}
	sr, ok := s.exec.(StateReporter)
	if !ok {
		return "", false
	}
	if st, ok := sr.AttachmentState(id); ok {
		return st, true
	}
	return core.StateDetached.String(), true
}

// Traffic returns datapath counters for an attachment when the executor
// supports reporting.
func (s *Service) Traffic(id string) (core.TrafficStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, known := s.attachments[id]; !known {
		return core.TrafficStats{}, false
	}
	tr, ok := s.exec.(TrafficReporter)
	if !ok {
		return core.TrafficStats{}, false
	}
	return tr.Traffic(id)
}

// AttachmentRecord is the control plane's book-keeping for one attachment.
type AttachmentRecord struct {
	ID          string `json:"id"`
	ComputeHost string `json:"compute_host"`
	DonorHost   string `json:"donor_host"`
	Bytes       int64  `json:"bytes"`
	Channels    int    `json:"channels"`
	NUMANode    int    `json:"numa_node"`
	PathLen     []int  `json:"path_len"`
	paths       []Path
}

// Service is the control plane: topology model, agents, executor, and
// attachment state.
type Service struct {
	mu     sync.Mutex
	model  *Model
	exec   Executor
	agents map[string]*agent.Agent
	token  string // the control plane's trusted token

	attachments map[string]*AttachmentRecord
	nextNetID   uint16

	// metrics and ring back the read-only telemetry endpoints; nil until
	// SetTelemetry is called.
	metrics *metrics.Registry
	ring    *trace.Ring
	latRep  LatencyReporter
}

// NewService builds a control plane over the given model and executor. The
// token authenticates the control plane toward node agents.
func NewService(model *Model, exec Executor, token string) *Service {
	return &Service{
		model:       model,
		exec:        exec,
		agents:      make(map[string]*agent.Agent),
		token:       token,
		attachments: make(map[string]*AttachmentRecord),
		nextNetID:   1,
	}
}

// RegisterAgent attaches a node agent for a host.
func (s *Service) RegisterAgent(a *agent.Agent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.agents[a.Host()] = a
}

// Model returns the topology model.
func (s *Service) Model() *Model { return s.model }

// AttachRequest is the external API request body.
type AttachRequest struct {
	ComputeHost string `json:"compute_host"`
	DonorHost   string `json:"donor_host"`
	Bytes       int64  `json:"bytes"`
	Channels    int    `json:"channels"`
}

// Attach plans, reserves, configures, and executes one attachment.
func (s *Service) Attach(req AttachRequest) (*AttachmentRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Channels <= 0 {
		req.Channels = 1
	}
	if req.Bytes <= 0 {
		return nil, fmt.Errorf("controlplane: attach of %d bytes", req.Bytes)
	}
	computeAgent, ok := s.agents[req.ComputeHost]
	if !ok {
		return nil, fmt.Errorf("controlplane: no agent registered for host %q", req.ComputeHost)
	}
	donorAgent, ok := s.agents[req.DonorHost]
	if !ok {
		return nil, fmt.Errorf("controlplane: no agent registered for host %q", req.DonorHost)
	}

	// 1. Find and reserve fabric paths.
	paths, err := s.model.PlanChannels(req.ComputeHost, req.DonorHost, req.Channels)
	if err != nil {
		return nil, err
	}
	netID := s.nextNetID
	s.nextNetID++

	rollback := func() { s.model.ReleasePaths(paths) }

	// 2. Push configuration to the agents (donor first: memory must be
	// pinned before the compute side can forward to it).
	if err := donorAgent.Apply(s.token, agent.Command{
		Kind: agent.CmdStealMemory, Bytes: req.Bytes, NetworkID: netID,
	}); err != nil {
		rollback()
		return nil, err
	}
	if err := computeAgent.Apply(s.token, agent.Command{
		Kind: agent.CmdAttachCompute, Bytes: req.Bytes,
		Channels: req.Channels, NetworkID: netID,
	}); err != nil {
		rollback()
		return nil, err
	}

	// 3. Execute on the datapath.
	id, node, err := s.exec.Attach(req.ComputeHost, req.DonorHost, req.Bytes, req.Channels)
	if err != nil {
		rollback()
		return nil, err
	}
	rec := &AttachmentRecord{
		ID:          id,
		ComputeHost: req.ComputeHost,
		DonorHost:   req.DonorHost,
		Bytes:       req.Bytes,
		Channels:    req.Channels,
		NUMANode:    int(node),
		paths:       paths,
	}
	for _, p := range paths {
		rec.PathLen = append(rec.PathLen, len(p.Vertices))
	}
	s.attachments[id] = rec
	return rec, nil
}

// Detach tears an attachment down and releases its fabric reservations.
func (s *Service) Detach(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.attachments[id]
	if !ok {
		return fmt.Errorf("controlplane: unknown attachment %q", id)
	}
	if err := s.exec.Detach(id); err != nil {
		return err
	}
	if a, ok := s.agents[rec.ComputeHost]; ok {
		a.Apply(s.token, agent.Command{Kind: agent.CmdDetach, AttachmentID: id}) //nolint:errcheck
	}
	if a, ok := s.agents[rec.DonorHost]; ok {
		a.Apply(s.token, agent.Command{Kind: agent.CmdDetach, AttachmentID: id}) //nolint:errcheck
	}
	s.model.ReleasePaths(rec.paths)
	delete(s.attachments, id)
	return nil
}

// Attachments lists records sorted by ID.
func (s *Service) Attachments() []*AttachmentRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*AttachmentRecord, 0, len(s.attachments))
	for _, r := range s.attachments {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Attachment returns one record.
func (s *Service) Attachment(id string) (*AttachmentRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.attachments[id]
	return r, ok
}
