package controlplane

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"thymesisflow/internal/agent"
)

// Transport carries configuration commands and ground-truth queries from
// the control plane to the per-host agents. Sends can fail transiently
// (the wire between orchestrator and agent is lossy); the saga engine
// retries transient failures with the same command epoch, so agents can
// deduplicate the replays.
type Transport interface {
	// Send delivers one command to the named host's agent.
	Send(host, token string, cmd agent.Command) error
	// Query returns the agent's ground-truth status (incarnation and
	// materialized configuration).
	Query(host string) (agent.Status, error)
	// Hosts lists the reachable agent hosts, sorted.
	Hosts() []string
}

// ErrAgentUnknown is returned for sends/queries to hosts with no agent.
var ErrAgentUnknown = errors.New("controlplane: no agent registered for host")

// errTransient marks a transport failure as retryable: the command may or
// may not have reached the agent, and re-sending it (same epoch) is safe.
type errTransient struct{ err error }

func (e errTransient) Error() string { return e.err.Error() }
func (e errTransient) Unwrap() error { return e.err }

// Transient wraps err as a retryable transport failure.
func Transient(err error) error { return errTransient{err: err} }

// IsTransient reports whether err is a retryable transport failure (as
// opposed to a permanent rejection by the agent or executor).
func IsTransient(err error) bool {
	var t errTransient
	return errors.As(err, &t)
}

// DirectTransport is the in-process, reliable transport: a registry of
// agents reached by direct call. It is the default transport of a Service
// and the inner transport a FaultyTransport wraps.
type DirectTransport struct {
	mu     sync.Mutex
	agents map[string]*agent.Agent
}

// NewDirectTransport returns an empty agent registry.
func NewDirectTransport() *DirectTransport {
	return &DirectTransport{agents: make(map[string]*agent.Agent)}
}

// Register adds an agent to the registry.
func (d *DirectTransport) Register(a *agent.Agent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.agents[a.Host()] = a
}

// Agent returns the registered agent for a host.
func (d *DirectTransport) Agent(host string) (*agent.Agent, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.agents[host]
	return a, ok
}

// Send implements Transport.
func (d *DirectTransport) Send(host, token string, cmd agent.Command) error {
	a, ok := d.Agent(host)
	if !ok {
		return fmt.Errorf("%w %q", ErrAgentUnknown, host)
	}
	return a.Apply(token, cmd)
}

// Query implements Transport.
func (d *DirectTransport) Query(host string) (agent.Status, error) {
	a, ok := d.Agent(host)
	if !ok {
		return agent.Status{}, fmt.Errorf("%w %q", ErrAgentUnknown, host)
	}
	return a.Status(), nil
}

// Hosts implements Transport.
func (d *DirectTransport) Hosts() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.agents))
	for h := range d.agents {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// AgentList returns the registered agents in host order, so the service can
// wire cross-cutting concerns (the saga event log) into every agent.
func (d *DirectTransport) AgentList() []*agent.Agent {
	out := make([]*agent.Agent, 0)
	for _, h := range d.Hosts() {
		if a, ok := d.Agent(h); ok {
			out = append(out, a)
		}
	}
	return out
}

// TransportFaults configures the seeded fault injection of a
// FaultyTransport, in the style of phy.FaultConfig: per-send
// probabilities, drawn from one private PRNG so a campaign reproduces
// from its seed alone.
type TransportFaults struct {
	// DropProb loses the command entirely: the agent never sees it and
	// the sender gets a transient timeout.
	DropProb float64
	// DupProb delivers the command twice (the duplicate models a network
	// replay the agent must deduplicate).
	DupProb float64
	// AmbiguousProb delivers the command but reports a transient failure
	// to the sender — the classic "did my write land?" ambiguity that
	// forces idempotent retries.
	AmbiguousProb float64
	// CrashProb crash-restarts the destination agent *before* delivery,
	// losing its volatile state (the command then applies to the fresh
	// incarnation).
	CrashProb float64
	// Seed seeds the transport's private PRNG.
	Seed int64
}

// TransportStats counts what a FaultyTransport actually did.
// PartitionDrops is omitempty so reports from scenarios that never
// partition stay byte-identical to earlier PRs.
type TransportStats struct {
	Sends          int64 `json:"sends"`
	Drops          int64 `json:"drops"`
	Dups           int64 `json:"dups"`
	Ambiguous      int64 `json:"ambiguous"`
	Crashes        int64 `json:"crashes"`
	PartitionDrops int64 `json:"partition_drops,omitempty"`
}

// FaultyTransport wraps a DirectTransport with seeded fault injection:
// dropped, duplicated, and ambiguously-failed commands, plus agent
// crash-restarts. It is the control-plane twin of phy.FaultSchedule —
// deterministic from its seed, so chaos campaign reports are
// byte-identical per seed. Queries are reliable (the reconciliation loop
// needs ground truth; a lossy query channel would only add retries, not
// change the invariants).
type FaultyTransport struct {
	inner  *DirectTransport
	faults TransportFaults

	mu  sync.Mutex
	rng *rand.Rand
	// failNext scripts deterministic failures: the next n sends to a host
	// are dropped regardless of probabilities (for targeted tests).
	failNext map[string]int
	// cuts holds directed [source, destination] partition cuts. The base
	// transport sends with source DefaultSource; WithSource derives a view
	// carrying another identity, so a chaos scenario can sever one
	// control-plane node from one agent while its peers still get through.
	cuts map[[2]string]bool

	sends          atomic.Int64
	drops          atomic.Int64
	dups           atomic.Int64
	ambiguous      atomic.Int64
	crashes        atomic.Int64
	partitionDrops atomic.Int64
}

// DefaultSource is the source identity of sends through the base
// FaultyTransport (views made with WithSource carry their own).
const DefaultSource = "cp"

// ErrTransportDrop is the transient failure a dropped or ambiguous send
// surfaces to the saga engine.
var ErrTransportDrop = errors.New("controlplane: transport timeout (command may not have been delivered)")

// NewFaultyTransport wraps a direct transport with seeded fault injection.
func NewFaultyTransport(inner *DirectTransport, faults TransportFaults) *FaultyTransport {
	return &FaultyTransport{
		inner:    inner,
		faults:   faults,
		rng:      rand.New(rand.NewSource(faults.Seed)),
		failNext: make(map[string]int),
		cuts:     make(map[[2]string]bool),
	}
}

// Partition cuts the link between a and b symmetrically: sends and queries
// in both directions fail as transient partition drops until healed.
// Either endpoint may be a source identity (a control-plane node) or a
// destination host (an agent).
func (f *FaultyTransport) Partition(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts[[2]string{a, b}] = true
	f.cuts[[2]string{b, a}] = true
}

// PartitionOneWay cuts only traffic flowing from -> to (asymmetric
// partition: replies and reverse traffic still pass).
func (f *FaultyTransport) PartitionOneWay(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts[[2]string{from, to}] = true
}

// HealPartition removes cuts between a and b in both directions.
func (f *FaultyTransport) HealPartition(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cuts, [2]string{a, b})
	delete(f.cuts, [2]string{b, a})
}

// HealAllPartitions removes every cut.
func (f *FaultyTransport) HealAllPartitions() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts = make(map[[2]string]bool)
}

func (f *FaultyTransport) partitioned(src, dst string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cuts[[2]string{src, dst}]
}

// WithSource returns a Transport view whose sends and queries carry the
// given source identity for partition matching. Fault probabilities,
// counters, and the PRNG are shared with the base transport.
func (f *FaultyTransport) WithSource(src string) Transport {
	return &sourcedTransport{f: f, src: src}
}

// sourcedTransport is a FaultyTransport view with a fixed source identity.
type sourcedTransport struct {
	f   *FaultyTransport
	src string
}

func (s *sourcedTransport) Send(host, token string, cmd agent.Command) error {
	return s.f.sendFrom(s.src, host, token, cmd)
}
func (s *sourcedTransport) Query(host string) (agent.Status, error) {
	return s.f.queryFrom(s.src, host)
}
func (s *sourcedTransport) Hosts() []string { return s.f.Hosts() }

// Register delegates to the inner registry so Service.RegisterAgent works
// transparently through a faulty transport.
func (f *FaultyTransport) Register(a *agent.Agent) { f.inner.Register(a) }

// FailNext scripts the next n sends to host to be dropped (transient
// failure, command not delivered), ahead of any probabilistic faults.
func (f *FaultyTransport) FailNext(host string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNext[host] = n
}

// CrashAgent crash-restarts the named agent immediately, losing its
// volatile state.
func (f *FaultyTransport) CrashAgent(host string) error {
	a, ok := f.inner.Agent(host)
	if !ok {
		return fmt.Errorf("%w %q", ErrAgentUnknown, host)
	}
	a.Restart()
	f.crashes.Add(1)
	return nil
}

// Send implements Transport with fault injection, using DefaultSource as
// the partition-matching source identity.
func (f *FaultyTransport) Send(host, token string, cmd agent.Command) error {
	return f.sendFrom(DefaultSource, host, token, cmd)
}

func (f *FaultyTransport) sendFrom(src, host, token string, cmd agent.Command) error {
	f.sends.Add(1)
	if f.partitioned(src, host) {
		f.drops.Add(1)
		f.partitionDrops.Add(1)
		return Transient(fmt.Errorf("%w (partitioned, %s -> %s)", ErrTransportDrop, src, host))
	}
	f.mu.Lock()
	if n := f.failNext[host]; n > 0 {
		f.failNext[host] = n - 1
		f.mu.Unlock()
		f.drops.Add(1)
		return Transient(fmt.Errorf("%w (scripted, host %s)", ErrTransportDrop, host))
	}
	drop := f.faults.DropProb > 0 && f.rng.Float64() < f.faults.DropProb
	dup := f.faults.DupProb > 0 && f.rng.Float64() < f.faults.DupProb
	ambig := f.faults.AmbiguousProb > 0 && f.rng.Float64() < f.faults.AmbiguousProb
	crash := f.faults.CrashProb > 0 && f.rng.Float64() < f.faults.CrashProb
	f.mu.Unlock()

	if crash {
		if a, ok := f.inner.Agent(host); ok {
			a.Restart()
			f.crashes.Add(1)
		}
	}
	if drop {
		f.drops.Add(1)
		return Transient(fmt.Errorf("%w (host %s)", ErrTransportDrop, host))
	}
	err := f.inner.Send(host, token, cmd)
	if err != nil {
		return err // permanent agent rejection passes through unwrapped
	}
	if dup {
		f.dups.Add(1)
		f.inner.Send(host, token, cmd) //nolint:errcheck // duplicate delivery; agent dedupes
	}
	if ambig {
		f.ambiguous.Add(1)
		return Transient(fmt.Errorf("%w (delivered, ack lost, host %s)", ErrTransportDrop, host))
	}
	return nil
}

// Query implements Transport (reliable except across a partition cut — a
// severed control-plane node cannot see ground truth either).
func (f *FaultyTransport) Query(host string) (agent.Status, error) {
	return f.queryFrom(DefaultSource, host)
}

func (f *FaultyTransport) queryFrom(src, host string) (agent.Status, error) {
	if f.partitioned(src, host) {
		f.partitionDrops.Add(1)
		return agent.Status{}, Transient(fmt.Errorf("%w (partitioned, %s -> %s)", ErrTransportDrop, src, host))
	}
	return f.inner.Query(host)
}

// Hosts implements Transport.
func (f *FaultyTransport) Hosts() []string { return f.inner.Hosts() }

// AgentList delegates to the inner registry.
func (f *FaultyTransport) AgentList() []*agent.Agent { return f.inner.AgentList() }

// Stats returns the injection counters.
func (f *FaultyTransport) Stats() TransportStats {
	return TransportStats{
		Sends:          f.sends.Load(),
		Drops:          f.drops.Load(),
		Dups:           f.dups.Load(),
		Ambiguous:      f.ambiguous.Load(),
		Crashes:        f.crashes.Load(),
		PartitionDrops: f.partitionDrops.Load(),
	}
}
