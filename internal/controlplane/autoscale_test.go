package controlplane

import (
	"testing"

	"thymesisflow/internal/core"
	"thymesisflow/internal/numa"
)

// autoscaleService builds the 3-node service on small hosts (8 GiB each,
// 16 MiB sections) so the 512 MiB autoscale steps fit the RMMU table.
func autoscaleService(t *testing.T) (*Service, *core.Cluster) {
	t.Helper()
	return testServiceWith(t, func(cfg *core.HostConfig) {
		cfg.DRAMPerSocket = 4 << 30
		cfg.SectionSize = 16 << 20
		cfg.RMMUSections = 256
	})
}

// autoscaleRig builds the 3-node service plus an autoscaler over the real
// cluster with small steps.
func autoscaleRig(t *testing.T) (*Autoscaler, *Service, func(host string, bytes int64)) {
	t.Helper()
	svc, cluster := autoscaleService(t)
	policy := DefaultAutoscalePolicy()
	policy.StepBytes = 512 << 20
	a := NewAutoscaler(svc, ClusterInspector{Cluster: cluster}, policy)
	// fill allocates bytes of local memory on a host.
	fill := func(host string, bytes int64) {
		h, err := cluster.Host(host)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Mem.Alloc(bytes, numa.Preferred(h.Mem, h.LocalNode(0), h.LocalNode(1))); err != nil {
			t.Fatal(err)
		}
	}
	return a, svc, fill
}

func TestAutoscalerIdleDoesNothing(t *testing.T) {
	a, svc, _ := autoscaleRig(t)
	actions, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 || len(svc.Attachments()) != 0 {
		t.Fatalf("idle cluster produced actions: %+v", actions)
	}
}

func TestAutoscalerGrowsStarvingHost(t *testing.T) {
	a, svc, fill := autoscaleRig(t)
	// node0: 8 GiB total (testService uses 4 GiB/socket); fill > 90%.
	fill("node0", 7*1<<30+1<<29)
	actions, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Kind != "attach" || actions[0].ComputeHost != "node0" {
		t.Fatalf("actions = %+v", actions)
	}
	if len(svc.Attachments()) != 1 {
		t.Fatal("no attachment created")
	}
	// Second evaluation: the fresh attachment lifted free fraction above
	// the watermark, so no further growth.
	actions, err = a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for _, act := range actions {
		if act.Kind == "attach" {
			t.Fatalf("grew again while satisfied: %+v", actions)
		}
	}
}

func TestAutoscalerShrinksComfortableHost(t *testing.T) {
	// A host with an existing, completely unused attachment and plenty of
	// free local memory (the workload exited): the next evaluation
	// detaches and returns the memory to the donor.
	svc, cluster := autoscaleService(t)
	policy := DefaultAutoscalePolicy()
	policy.StepBytes = 512 << 20
	a := NewAutoscaler(svc, ClusterInspector{Cluster: cluster}, policy)
	if _, err := svc.Attach(AttachRequest{ComputeHost: "node0", DonorHost: "node1", Bytes: 512 << 20}); err != nil {
		t.Fatal(err)
	}
	actions, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Kind != "detach" {
		t.Fatalf("actions = %+v, want one detach", actions)
	}
	if len(svc.Attachments()) != 0 {
		t.Fatal("attachment not removed")
	}
}

func TestAutoscalerRespectsDonorReserve(t *testing.T) {
	a, _, fill := autoscaleRig(t)
	// Starve node0 AND consume the donors so no one can give a step while
	// keeping 30% reserve.
	fill("node0", 7*1<<30+1<<29)
	fill("node1", 6<<30)
	fill("node2", 6<<30)
	actions, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for _, act := range actions {
		if act.Kind == "attach" {
			t.Fatalf("attached despite exhausted donors: %+v", act)
		}
	}
}

func TestAutoscalerMaxAttachments(t *testing.T) {
	svc, cluster := autoscaleService(t)
	policy := DefaultAutoscalePolicy()
	policy.StepBytes = 64 << 20
	policy.MaxAttachmentsPerHost = 1
	a := NewAutoscaler(svc, ClusterInspector{Cluster: cluster}, policy)
	h, _ := cluster.Host("node0")
	if _, err := h.Mem.Alloc(7*1<<30+1<<29, numa.Preferred(h.Mem, h.LocalNode(0), h.LocalNode(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Evaluate(); err != nil {
		t.Fatal(err)
	}
	// Still starving (64 MiB step is tiny), but capped at 1 attachment.
	actions, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for _, act := range actions {
		if act.Kind == "attach" {
			t.Fatalf("exceeded MaxAttachmentsPerHost: %+v", act)
		}
	}
	if len(svc.Attachments()) != 1 {
		t.Fatalf("attachments = %d, want 1", len(svc.Attachments()))
	}
}
