// Package controlplane implements the software-defined control plane of
// ThymesisFlow (Section IV-C): system state kept as an undirected graph
// whose vertices are compute/memory endpoints, transceivers and switch
// ports, and whose edges are physical links; best-path search over that
// graph with resource reservation; a REST API with token-based access
// control; and configuration push to the per-host agents.
package controlplane

import (
	"fmt"
	"sort"

	"thymesisflow/internal/graphdb"
)

// Vertex labels in the state graph.
const (
	LabelHost        = "host"
	LabelComputeEP   = "compute-endpoint"
	LabelMemoryEP    = "memory-endpoint"
	LabelTransceiver = "transceiver"
	LabelSwitchPort  = "switch-port"
)

// Edge labels.
const (
	EdgeHas  = "has"  // host -> endpoint, endpoint -> transceiver
	EdgeLink = "link" // transceiver <-> transceiver or switch port
)

// Model is the control plane's view of the physical system.
type Model struct {
	g     *graphdb.Graph
	hosts map[string]graphdb.ID
}

// NewModel returns an empty topology model.
func NewModel() *Model {
	return &Model{g: graphdb.New(), hosts: make(map[string]graphdb.ID)}
}

// Graph exposes the underlying store (read-mostly use by the REST layer).
func (m *Model) Graph() *graphdb.Graph { return m.g }

// AddHost registers a host with one compute endpoint, one memory endpoint,
// and n transceivers per endpoint. It returns an error on duplicates.
func (m *Model) AddHost(name string, transceiversPerEndpoint int) error {
	if _, dup := m.hosts[name]; dup {
		return fmt.Errorf("controlplane: host %q already registered", name)
	}
	tx := m.g.Begin()
	h := tx.AddVertex(LabelHost, map[string]any{"name": name})
	for _, role := range []string{LabelComputeEP, LabelMemoryEP} {
		ep := tx.AddVertex(role, map[string]any{"host": name})
		if _, err := tx.AddEdge(EdgeHas, h, ep, nil); err != nil {
			tx.Rollback()
			return err
		}
		for i := 0; i < transceiversPerEndpoint; i++ {
			t := tx.AddVertex(LabelTransceiver, map[string]any{
				"host": name, "role": role, "index": i, "reserved": false,
			})
			if _, err := tx.AddEdge(EdgeHas, ep, t, nil); err != nil {
				tx.Rollback()
				return err
			}
		}
	}
	tx.Commit()
	m.hosts[name] = h
	return nil
}

// AddSwitch registers a switch with the given number of ports and returns
// its port vertex IDs.
func (m *Model) AddSwitch(name string, ports int) ([]graphdb.ID, error) {
	if _, dup := m.hosts[name]; dup {
		return nil, fmt.Errorf("controlplane: name %q already registered", name)
	}
	tx := m.g.Begin()
	out := make([]graphdb.ID, ports)
	for i := range out {
		out[i] = tx.AddVertex(LabelSwitchPort, map[string]any{
			"switch": name, "index": i, "reserved": false,
		})
	}
	// Ports of one switch are mutually connected through the crossbar.
	for i := 0; i < ports; i++ {
		for j := i + 1; j < ports; j++ {
			if _, err := tx.AddEdge(EdgeLink, out[i], out[j],
				map[string]any{"fabric": name}); err != nil {
				tx.Rollback()
				return nil, err
			}
		}
	}
	tx.Commit()
	m.hosts[name] = graphdb.ID(-1) // reserve the name
	return out, nil
}

// Cable links two transceiver/switch-port vertices with a physical cable.
func (m *Model) Cable(a, b graphdb.ID) error {
	_, err := m.g.AddEdge(EdgeLink, a, b, map[string]any{"cable": true})
	return err
}

// Transceivers returns the transceiver vertex IDs of a host endpoint role.
func (m *Model) Transceivers(host, role string) []graphdb.ID {
	var out []graphdb.ID
	for _, id := range m.g.VerticesByLabel(LabelTransceiver) {
		v, _ := m.g.Vertex(id)
		if v.Props["host"] == host && v.Props["role"] == role {
			out = append(out, id)
		}
	}
	return out
}

// Path is one reserved channel through the fabric.
type Path struct {
	Vertices []graphdb.ID
}

// PlanChannels finds and reserves `channels` disjoint paths from the
// compute host's free transceivers to the donor host's free memory-side
// transceivers, traversing only unreserved elements. On success all path
// vertices are atomically marked reserved; on failure nothing is reserved.
func (m *Model) PlanChannels(computeHost, donorHost string, channels int) ([]Path, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("controlplane: %d channels requested", channels)
	}
	reservedNow := make(map[graphdb.ID]bool)
	var paths []Path
	for c := 0; c < channels; c++ {
		path, err := m.findPath(computeHost, donorHost, reservedNow)
		if err != nil {
			return nil, fmt.Errorf("controlplane: channel %d of %d: %w", c+1, channels, err)
		}
		for _, id := range path.Vertices {
			reservedNow[id] = true
		}
		paths = append(paths, path)
	}
	// Commit all reservations atomically.
	tx := m.g.Begin()
	for _, p := range paths {
		for _, id := range p.Vertices {
			if err := tx.SetVertexProp(id, "reserved", true); err != nil {
				tx.Rollback()
				return nil, err
			}
		}
	}
	tx.Commit()
	return paths, nil
}

// findPath locates one unreserved transceiver-to-transceiver path.
func (m *Model) findPath(computeHost, donorHost string, tentative map[graphdb.ID]bool) (Path, error) {
	free := func(id graphdb.ID) bool {
		if tentative[id] {
			return false
		}
		v, ok := m.g.Vertex(id)
		if !ok {
			return false
		}
		r, _ := v.Props["reserved"].(bool)
		return !r
	}
	for _, src := range m.Transceivers(computeHost, LabelComputeEP) {
		if !free(src) {
			continue
		}
		for _, dst := range m.Transceivers(donorHost, LabelMemoryEP) {
			if !free(dst) {
				continue
			}
			path, ok := m.g.ShortestPath(src, dst, func(e graphdb.Edge) bool {
				if e.Label != EdgeLink {
					return false
				}
				// Intermediate elements must be free too.
				return free(e.A) && free(e.B)
			})
			if ok {
				return Path{Vertices: path}, nil
			}
		}
	}
	return Path{}, fmt.Errorf("no available path %s -> %s", computeHost, donorHost)
}

// ReleasePaths frees the reservations of previously planned paths.
func (m *Model) ReleasePaths(paths []Path) {
	tx := m.g.Begin()
	for _, p := range paths {
		for _, id := range p.Vertices {
			tx.SetVertexProp(id, "reserved", false) //nolint:errcheck
		}
	}
	tx.Commit()
}

// ReservePaths re-asserts the reservations of paths (used by crash
// recovery when rebuilding attachment records from the journal).
func (m *Model) ReservePaths(paths []Path) {
	tx := m.g.Begin()
	for _, p := range paths {
		for _, id := range p.Vertices {
			tx.SetVertexProp(id, "reserved", true) //nolint:errcheck
		}
	}
	tx.Commit()
}

// ReservedIDs returns the sorted vertex IDs currently marked reserved
// (transceivers and switch ports); the reconciliation loop diffs this
// against the union of all attachment records' paths to find orphaned or
// missing reservations.
func (m *Model) ReservedIDs() []graphdb.ID {
	var out []graphdb.ID
	for _, label := range []string{LabelTransceiver, LabelSwitchPort} {
		for _, id := range m.g.VerticesByLabel(label) {
			v, _ := m.g.Vertex(id)
			if r, _ := v.Props["reserved"].(bool); r {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FreeTransceivers counts unreserved transceivers on a host endpoint role.
func (m *Model) FreeTransceivers(host, role string) int {
	n := 0
	for _, id := range m.Transceivers(host, role) {
		v, _ := m.g.Vertex(id)
		if r, _ := v.Props["reserved"].(bool); !r {
			n++
		}
	}
	return n
}
