package controlplane

import (
	"net/http"
	"net/http/pprof"

	"thymesisflow/internal/metrics"
	"thymesisflow/internal/trace"
)

// SetTelemetry attaches the live metrics registry and trace ring the REST
// layer serves under GET /v1/metrics and GET /v1/trace/snapshot. Either may
// be nil; unconfigured telemetry endpoints answer 404.
func (s *Service) SetTelemetry(reg *metrics.Registry, ring *trace.Ring) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = reg
	s.ring = ring
}

// MetricsSnapshot captures the registry under the service lock, so the
// collector pass is serialized against concurrent Attach/Detach mutating the
// cluster the collectors read from. ok is false when no registry is
// configured.
func (s *Service) MetricsSnapshot() (metrics.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.metrics == nil {
		return metrics.Snapshot{}, false
	}
	return s.metrics.Snapshot(), true
}

// TraceRing returns the configured trace recorder (nil when tracing is not
// configured).
func (s *Service) TraceRing() *trace.Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	snap, ok := a.svc.MetricsSnapshot()
	if !ok {
		writeErr(w, http.StatusNotFound, "telemetry not configured")
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleTraceSnapshot streams the retained trace as Chrome trace-event JSON.
// The trace exposes the fine-grained activity of every tenant's traffic, so
// it is admin-only where the aggregate metrics are reader-visible.
func (a *API) handleTraceSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleAdmin) {
		return
	}
	ring := a.svc.TraceRing()
	if ring == nil {
		writeErr(w, http.StatusNotFound, "telemetry not configured")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	ring.WriteChromeTrace(w) //nolint:errcheck
}

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/,
// admin-gated with the same bearer-token scheme as the rest of the API.
// Off by default: profiling endpoints can stall the process and leak
// internals, so the operator opts in (tfd -pprof).
func (a *API) EnablePprof() {
	admin := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if !a.authorize(w, r, RoleAdmin) {
				return
			}
			h(w, r)
		}
	}
	a.mux.HandleFunc("/debug/pprof/", admin(pprof.Index))
	a.mux.HandleFunc("/debug/pprof/cmdline", admin(pprof.Cmdline))
	a.mux.HandleFunc("/debug/pprof/profile", admin(pprof.Profile))
	a.mux.HandleFunc("/debug/pprof/symbol", admin(pprof.Symbol))
	a.mux.HandleFunc("/debug/pprof/trace", admin(pprof.Trace))
}
