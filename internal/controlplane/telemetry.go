package controlplane

import (
	"net/http"
	"net/http/pprof"
	"strings"

	"thymesisflow/internal/core"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/timeseries/detect"
	"thymesisflow/internal/trace"
)

// LatencyReporter supplies cluster latency-attribution breakdowns;
// *core.Cluster implements it.
type LatencyReporter interface {
	LatencyReport() core.LatencyReport
}

// SetTelemetry attaches the live metrics registry and trace ring the REST
// layer serves under GET /v1/metrics and GET /v1/trace/snapshot. Either may
// be nil; unconfigured telemetry endpoints answer 404.
func (s *Service) SetTelemetry(reg *metrics.Registry, ring *trace.Ring) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = reg
	s.ring = ring
	if reg != nil {
		reg.AddCollector(s.collectSagaCounters)
	}
}

// collectSagaCounters pulls the fault-handling counters into the registry at
// snapshot time, so saga_retries, saga_compensations, recovery_replays,
// reconcile_repairs (and friends) appear under GET /v1/metrics alongside the
// datapath instruments.
func (s *Service) collectSagaCounters(reg *metrics.Registry) {
	c := s.Counters()
	for name, v := range map[string]int64{
		"saga_retries":          c.SagaRetries,
		"saga_compensations":    c.SagaCompensations,
		"recovery_replays":      c.RecoveryReplays,
		"reconcile_repairs":     c.ReconcileRepairs,
		"detach_agent_failures": c.DetachAgentFailures,
		"sagas_parked":          c.SagasParked,
		"sagas_rejected":        c.SagasRejected,
	} {
		ctr := reg.Counter(name)
		ctr.Reset()
		ctr.Add(v)
	}
	// Event-log health: how much of the saga timeline the bounded log still
	// holds. A growing dropped count means the capacity is too small for the
	// saga rate.
	if elog := s.elogShared.Load(); elog != nil {
		reg.Gauge("cp.events_recorded").Set(float64(elog.Recorded()))
		reg.Gauge("cp.events_dropped").Set(float64(elog.Dropped()))
	}
	// Flight-recorder health (timeseries_*) and anomaly tallies (anomaly_*).
	// Every class appears even at zero, so the exposition's instrument set is
	// stable from the first scrape.
	if rec := s.flightRec.Load(); rec != nil {
		series, points, dropped := rec.Stats()
		reg.Gauge("timeseries.series").Set(float64(series))
		reg.Gauge("timeseries.points").Set(float64(points))
		reg.Gauge("timeseries.dropped").Set(float64(dropped))
	}
	if det := s.flightDet.Load(); det != nil {
		reg.Gauge("anomaly.active").Set(float64(det.Active()))
		totals := det.Totals()
		for _, class := range detect.Classes() {
			ctr := reg.Counter("anomaly.total." + snakeClass(class))
			ctr.Reset()
			ctr.Add(int64(totals[class])) //nolint:gosec // event counts, far below int64
		}
	}
	// HA replication state (absent on single-node deployments, so the
	// instrument set only grows when raft is actually bound).
	if st, ok := s.RaftStatusReport(); ok {
		reg.Gauge("raft.term").Set(float64(st.Term))
		reg.Gauge("raft.commit_index").Set(float64(st.CommitIndex))
		reg.Gauge("raft.leader_changes").Set(float64(st.LeaderChanges))
		isLeader := 0.0
		if st.Role == "leader" {
			isLeader = 1
		}
		reg.Gauge("raft.is_leader").Set(isLeader)
		ctr := reg.Counter("raft.not_leader_rejects")
		ctr.Reset()
		ctr.Add(st.NotLeaderRejects)
	}
}

// snakeClass maps a CamelCase anomaly class to its snake_case metric
// suffix (ReplayStorm -> replay_storm).
func snakeClass(class string) string {
	var b strings.Builder
	b.Grow(len(class) + 4)
	for i, r := range class {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// SetLatency attaches the latency-attribution source served under
// GET /v1/latency. A nil reporter leaves the endpoint answering 404.
func (s *Service) SetLatency(rep LatencyReporter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latRep = rep
}

// LatencyReport captures the attribution report under the service lock, so
// the attachment walk is serialized against concurrent Attach/Detach. ok is
// false when no reporter is configured.
func (s *Service) LatencyReport() (core.LatencyReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latRep == nil {
		return core.LatencyReport{}, false
	}
	return s.latRep.LatencyReport(), true
}

// MetricsSnapshot captures the registry under the service lock, so the
// collector pass is serialized against concurrent Attach/Detach mutating the
// cluster the collectors read from. ok is false when no registry is
// configured.
func (s *Service) MetricsSnapshot() (metrics.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.metrics == nil {
		return metrics.Snapshot{}, false
	}
	return s.metrics.Snapshot(), true
}

// TraceRing returns the configured trace recorder (nil when tracing is not
// configured).
func (s *Service) TraceRing() *trace.Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	snap, ok := a.svc.MetricsSnapshot()
	if !ok {
		writeErr(w, http.StatusNotFound, "telemetry not configured")
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, snap)
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		snap.WritePrometheus(w) //nolint:errcheck
	default:
		writeErr(w, http.StatusBadRequest, "unknown format "+format)
	}
}

// handleLatency serves the per-attachment latency-attribution breakdowns.
// Reader-visible, like the aggregate metrics the stages roll up into.
func (a *API) handleLatency(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	rep, ok := a.svc.LatencyReport()
	if !ok {
		writeErr(w, http.StatusNotFound, "latency attribution not configured")
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleTraceSnapshot streams the retained trace as Chrome trace-event JSON.
// The trace exposes the fine-grained activity of every tenant's traffic, so
// it is admin-only where the aggregate metrics are reader-visible.
func (a *API) handleTraceSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleAdmin) {
		return
	}
	ring := a.svc.TraceRing()
	if ring == nil {
		writeErr(w, http.StatusNotFound, "telemetry not configured")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	ring.WriteChromeTrace(w) //nolint:errcheck
}

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/,
// admin-gated with the same bearer-token scheme as the rest of the API.
// Off by default: profiling endpoints can stall the process and leak
// internals, so the operator opts in (tfd -pprof).
func (a *API) EnablePprof() {
	admin := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if !a.authorize(w, r, RoleAdmin) {
				return
			}
			h(w, r)
		}
	}
	a.mux.HandleFunc("/debug/pprof/", admin(pprof.Index))
	a.mux.HandleFunc("/debug/pprof/cmdline", admin(pprof.Cmdline))
	a.mux.HandleFunc("/debug/pprof/profile", admin(pprof.Profile))
	a.mux.HandleFunc("/debug/pprof/symbol", admin(pprof.Symbol))
	a.mux.HandleFunc("/debug/pprof/trace", admin(pprof.Trace))
}
