package controlplane

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"thymesisflow/internal/metrics"
	"thymesisflow/internal/timeseries"
	"thymesisflow/internal/timeseries/detect"
)

func TestFlightEndpointsNotConfigured(t *testing.T) {
	api, _ := restAPI(t)
	for _, path := range []string{"/v1/timeseries", "/v1/anomalies"} {
		if w := doReq(t, api, http.MethodGet, path, "reader-tok", nil); w.Code != http.StatusNotFound {
			t.Fatalf("unconfigured GET %s = %d", path, w.Code)
		}
	}
}

func TestTimeseriesEndpoint(t *testing.T) {
	api, svc := restAPI(t)
	rec := timeseries.NewRecorder(64)
	svc.SetFlightRecorder(rec, detect.New(detect.ControlPlaneRules()))
	rec.Series("cp.saga_retries", timeseries.Counter).Record(10, 1)
	rec.Series("cp.saga_inflight", timeseries.Gauge).Record(10, 2)
	rec.Series("llc.att-0.p0.credits", timeseries.Gauge).Record(10, 256)

	// Reader-gated: anonymous 401, reader OK.
	if w := doReq(t, api, http.MethodGet, "/v1/timeseries", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("anonymous GET /v1/timeseries = %d", w.Code)
	}
	w := doReq(t, api, http.MethodGet, "/v1/timeseries", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("reader GET /v1/timeseries = %d body=%s", w.Code, w.Body.String())
	}
	var snap timeseries.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Series) != 3 || snap.Series[0].Name != "cp.saga_inflight" {
		t.Fatalf("snapshot series = %+v", snap.Series)
	}

	// prefix= filters to one family.
	w = doReq(t, api, http.MethodGet, "/v1/timeseries?prefix=llc.", "reader-tok", nil)
	var filtered timeseries.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Series) != 1 || filtered.Series[0].Name != "llc.att-0.p0.credits" {
		t.Fatalf("filtered series = %+v", filtered.Series)
	}

	// format=binary serves the TFTS wire format, decodable round trip.
	w = doReq(t, api, http.MethodGet, "/v1/timeseries?format=binary", "reader-tok", nil)
	if ct := w.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("binary Content-Type = %q", ct)
	}
	decoded, err := timeseries.DecodeSnapshot(w.Body.Bytes())
	if err != nil {
		t.Fatalf("binary snapshot does not decode: %v", err)
	}
	if len(decoded.Series) != 3 {
		t.Fatalf("binary snapshot = %d series, want 3", len(decoded.Series))
	}

	if w := doReq(t, api, http.MethodGet, "/v1/timeseries?format=xml", "reader-tok", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown format = %d", w.Code)
	}
}

func TestAnomaliesEndpoint(t *testing.T) {
	api, svc := restAPI(t)
	det := detect.New(detect.ControlPlaneRules())
	svc.SetFlightRecorder(timeseries.NewRecorder(64), det)

	// A retry burst between samples opens (and later clears) a
	// SagaRetryStorm.
	for i, v := range []float64{0, 0, 5, 9, 9, 9, 9, 9, 9, 9, 9} {
		det.Observe("cp.saga_retries", int64(i+1)*100, v)
	}

	if w := doReq(t, api, http.MethodGet, "/v1/anomalies", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("anonymous GET /v1/anomalies = %d", w.Code)
	}
	w := doReq(t, api, http.MethodGet, "/v1/anomalies", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("reader GET /v1/anomalies = %d body=%s", w.Code, w.Body.String())
	}
	var view anomaliesView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Totals[detect.SagaRetryStorm] != 1 || len(view.Events) != 1 {
		t.Fatalf("anomalies view = %+v", view)
	}
	if view.Events[0].Class != detect.SagaRetryStorm || view.Events[0].OnsetTS != 300 {
		t.Fatalf("event = %+v", view.Events[0])
	}

	if w := doReq(t, api, http.MethodPost, "/v1/anomalies", "admin-tok", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/anomalies = %d", w.Code)
	}
}

// TestFlightPrometheusExposition: with a recorder and detector attached,
// the metrics scrape gains timeseries_* health gauges and one
// anomaly_total_* counter per class (all six, even at zero), plus
// anomaly_active.
func TestFlightPrometheusExposition(t *testing.T) {
	api, svc := restAPI(t)
	svc.SetTelemetry(metrics.NewRegistry(), nil)
	rec := timeseries.NewRecorder(64)
	det := detect.New(detect.ControlPlaneRules())
	svc.SetFlightRecorder(rec, det)
	rec.Series("cp.saga_retries", timeseries.Counter).Record(10, 0)
	for i, v := range []float64{0, 7, 14} {
		det.Observe("cp.saga_retries", int64(i+1)*100, v)
	}

	w := doReq(t, api, http.MethodGet, "/v1/metrics?format=prometheus", "reader-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"timeseries_series 1\n",
		"timeseries_points 1\n",
		"timeseries_dropped 0\n",
		"anomaly_active 1\n",
		"anomaly_total_saga_retry_storm 1\n",
		"anomaly_total_credit_starvation 0\n",
		"anomaly_total_replay_storm 0\n",
		"anomaly_total_link_degraded 0\n",
		"anomaly_total_link_dead 0\n",
		"anomaly_total_reconciler_backlog 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestFlightSamplerRecordsCounters drives a real attach through the saga
// engine and asserts the sampler lands the cp.* schema in the recorder.
func TestFlightSamplerRecordsCounters(t *testing.T) {
	svc, _ := testService(t)
	rec := timeseries.NewRecorder(64)
	det := detect.New(detect.ControlPlaneRules())
	fs := NewFlightSampler(svc, rec, det)

	fs.Sample(100)
	if _, err := svc.Attach(AttachRequest{ComputeHost: "node0", DonorHost: "node1", Bytes: 1 << 20, Channels: 1}); err != nil {
		t.Fatal(err)
	}
	fs.Sample(200)

	want := []string{
		"cp.reconcile_repairs", "cp.saga_inflight", "cp.saga_retries",
		"cp.sagas_parked", "cp.sagas_rejected",
	}
	snap := rec.Snapshot()
	if len(snap.Series) != len(want) {
		t.Fatalf("series = %+v", snap.Series)
	}
	for i, name := range want {
		if snap.Series[i].Name != name {
			t.Fatalf("series[%d] = %s, want %s", i, snap.Series[i].Name, name)
		}
		if len(snap.Series[i].Points) != 2 {
			t.Fatalf("series %s has %d points, want 2", name, len(snap.Series[i].Points))
		}
	}
	// A healthy attach produces no anomalies.
	if det.Active() != 0 || len(det.Events()) != 0 {
		t.Fatalf("healthy run produced anomalies: %+v", det.Events())
	}
}
