package controlplane

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Journal event names. A saga's lifetime in the journal is:
//
//	begin -> (intent -> done|failed)* -> committed | aborted | parked
//
// Intents are written *before* the step executes (write-ahead), so after a
// crash an intent without a matching done marks a step whose side effects
// are unknown — recovery resolves the ambiguity by querying the agents and
// the executor for ground truth.
const (
	EvBegin       = "begin"
	EvIntent      = "intent"
	EvDone        = "done"
	EvFailed      = "failed"
	EvCompensated = "compensated"
	EvCommitted   = "committed"
	EvAborted     = "aborted"
	EvParked      = "parked"
)

// Saga operations.
const (
	OpAttach = "attach"
	OpDetach = "detach"
)

// Attach saga steps (in execution order).
const (
	StepPlanPaths     = "plan-paths"
	StepStealMemory   = "steal-memory"
	StepAttachCompute = "attach-compute"
	StepExecAttach    = "exec-attach"
)

// Detach saga steps (in execution order).
const (
	StepExecDetach    = "exec-detach"
	StepDetachCompute = "detach-compute"
	StepDetachDonor   = "detach-donor"
	StepReleasePaths  = "release-paths"
)

// JournalEntry is one append-only record of saga progress. Entries carry
// enough payload for a restarted control plane to rebuild its records and
// finish or compensate every in-flight saga without the crashed process's
// memory.
type JournalEntry struct {
	Seq    uint64 `json:"seq"`
	SagaID string `json:"saga_id"`
	Op     string `json:"op"`              // attach | detach
	Event  string `json:"event"`           // begin | intent | done | ...
	Step   string `json:"step,omitempty"`  // step name for intent/done/failed/compensated
	Epoch  uint64 `json:"epoch,omitempty"` // command epoch for agent steps

	// Attach payload (begin), detach payload (begin: AttID+ExecID+hosts).
	Compute  string `json:"compute,omitempty"`
	Donor    string `json:"donor,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	Channels int    `json:"channels,omitempty"`

	// Step payloads.
	NetID  uint16    `json:"net_id,omitempty"`  // plan-paths done
	Paths  [][]int64 `json:"paths,omitempty"`   // plan-paths done / detach begin
	ExecID string    `json:"exec_id,omitempty"` // exec-attach done / detach begin
	NUMA   int       `json:"numa,omitempty"`    // exec-attach done
	AttID  string    `json:"att_id,omitempty"`  // detach begin: agent correlation ID
	Err    string    `json:"err,omitempty"`     // failed/aborted/parked reason
	Parked []string  `json:"pending,omitempty"` // parked: steps still owed
}

// Journal is the saga write-ahead log. Implementations must make Append
// durable before returning (to the extent their backend can) and replay
// entries in append order.
type Journal interface {
	Append(e JournalEntry) error
	Entries() ([]JournalEntry, error)
}

// MemJournal is the in-memory journal backend: durable across a Service
// restart within one process (the unit tests' crash model), lost with the
// process.
type MemJournal struct {
	mu      sync.Mutex
	entries []JournalEntry
}

// NewMemJournal returns an empty in-memory journal.
func NewMemJournal() *MemJournal { return &MemJournal{} }

// Append implements Journal.
func (m *MemJournal) Append(e JournalEntry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, e)
	return nil
}

// Entries implements Journal.
func (m *MemJournal) Entries() ([]JournalEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]JournalEntry(nil), m.entries...), nil
}

// FileJournal is the durable journal backend: JSON lines appended to a
// file, synced per record (or group-committed, SetSyncEvery), replayable
// across process restarts (tfd -journal).
type FileJournal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer

	// Group commit (SetSyncEvery): records accumulate in the buffer and one
	// fsync commits the batch. syncEvery <= 1 is per-record write-through.
	syncEvery int
	maxDelay  time.Duration
	unsynced  int
	lastSync  time.Time
	appends   int64
	syncs     int64
}

// OpenFileJournal opens (creating if needed) an append-only journal file.
// If the file ends in a torn or corrupt tail (crash mid-write, bit rot),
// the tail past the last intact record is truncated away so subsequent
// appends land on a clean record boundary instead of gluing onto garbage.
func OpenFileJournal(path string) (*FileJournal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("controlplane: open journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close() //nolint:errcheck
		return nil, fmt.Errorf("controlplane: read journal: %w", err)
	}
	if prefix, _ := journalValidPrefix(data); prefix < len(data) {
		if err := f.Truncate(int64(prefix)); err != nil {
			f.Close() //nolint:errcheck
			return nil, fmt.Errorf("controlplane: truncate torn journal tail: %w", err)
		}
	}
	return &FileJournal{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// journalValidPrefix scans JSON-lines data and returns the byte length of
// the longest prefix of intact, newline-terminated records along with the
// decoded entries. Everything past the prefix — a record without its
// newline (torn write) or a line that is not valid JSON (bit flip) — is the
// uncommitted tail.
func journalValidPrefix(data []byte) (int, []JournalEntry) {
	var entries []JournalEntry
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: record never got its newline
		}
		var e JournalEntry
		if err := json.Unmarshal(data[off:off+nl], &e); err != nil {
			break // corrupt line: stop at the committed prefix
		}
		entries = append(entries, e)
		off += nl + 1
	}
	return off, entries
}

// SetSyncEvery enables fsync group commit: Append syncs once per n records
// instead of after every one, with maxDelay capping how long a record may
// ride in an uncommitted batch (0 = count-only). n <= 1 restores the
// default per-record write-through. Batching trades the journal's tail —
// at most n-1 records past the last group commit are lost to a crash — for
// an n-fold cut in fsyncs; what does reach disk is always an intact
// record-boundary prefix of the append sequence (journalValidPrefix), so
// recovery semantics are unchanged.
func (j *FileJournal) SetSyncEvery(n int, maxDelay time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncEvery = n
	j.maxDelay = maxDelay
}

// SyncStats reports accepted appends and the fsyncs that committed them —
// the group-commit amortization ratio.
func (j *FileJournal) SyncStats() (appends, syncs int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends, j.syncs
}

// Sync forces the current batch to stable storage regardless of the
// group-commit threshold.
func (j *FileJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Append implements Journal: one JSON line per entry, synced to stable
// storage before returning (write-through default) or committed with the
// batch (SetSyncEvery) so a completed step is never silently reordered or
// torn — only, under group commit, knowingly traded off the tail.
func (j *FileJournal) Append(e JournalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	j.appends++
	j.unsynced++
	if j.unsynced < j.syncEvery && (j.maxDelay <= 0 || time.Since(j.lastSync) < j.maxDelay) {
		return nil // group commit: this record rides with the batch
	}
	return j.syncLocked()
}

// syncLocked flushes the buffered batch and fsyncs. Callers hold j.mu.
func (j *FileJournal) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.unsynced = 0
	j.syncs++
	j.lastSync = time.Now()
	return nil
}

// Entries implements Journal by re-reading the file and decoding the valid
// committed prefix: a torn final line (crash mid-write) or a corrupted line
// (bit flip) ends the replay there — never a panic, never garbage records.
func (j *FileJournal) Entries() ([]JournalEntry, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, err
	}
	_, out := journalValidPrefix(data)
	return out, nil
}

// Close commits any open batch and closes the backing file.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.syncLocked(); err != nil {
		return err
	}
	return j.f.Close()
}

// ErrJournalCrash is the failure a CrashableJournal injects; the saga
// engine treats any journal append failure as a control-plane crash and
// halts mid-saga without compensating (the process is "dead" — recovery
// happens on the next start).
var ErrJournalCrash = errors.New("controlplane: injected crash (journal unavailable)")

// CrashableJournal wraps a journal and fails every append once the scripted
// crash point is reached — the fault-injection hook the crash-point
// recovery tests and the orchestrator-crash chaos scenario use to kill the
// control plane after an exact number of journal writes.
type CrashableJournal struct {
	mu        sync.Mutex
	inner     Journal
	appends   int
	failAfter int // fail the (failAfter+1)-th and later appends; <0 = never
}

// NewCrashableJournal wraps inner with crash injection disabled.
func NewCrashableJournal(inner Journal) *CrashableJournal {
	return &CrashableJournal{inner: inner, failAfter: -1}
}

// FailAfter arms the crash: the first n appends succeed, every later one
// fails with ErrJournalCrash. n = 0 fails the next append; n < 0 disarms.
func (c *CrashableJournal) FailAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appends = 0
	c.failAfter = n
}

// Appends returns how many appends have been accepted since the last arm.
func (c *CrashableJournal) Appends() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appends
}

// Append implements Journal with crash injection.
func (c *CrashableJournal) Append(e JournalEntry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failAfter >= 0 && c.appends >= c.failAfter {
		return ErrJournalCrash
	}
	c.appends++
	return c.inner.Append(e)
}

// Entries implements Journal (reads are served even while "crashed": the
// restarted control plane replays from the same backend).
func (c *CrashableJournal) Entries() ([]JournalEntry, error) { return c.inner.Entries() }

// CountingJournal wraps a journal and tallies accepted appends and their
// encoded size (JSON line + newline, the FileJournal wire format), so load
// harnesses can report journal growth without a file backend. Failed
// appends are not counted.
type CountingJournal struct {
	mu      sync.Mutex
	inner   Journal
	entries int64
	bytes   int64
}

// NewCountingJournal wraps inner.
func NewCountingJournal(inner Journal) *CountingJournal {
	return &CountingJournal{inner: inner}
}

// Append implements Journal, counting only appends the inner journal
// accepted.
func (c *CountingJournal) Append(e JournalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if err := c.inner.Append(e); err != nil {
		return err
	}
	c.mu.Lock()
	c.entries++
	c.bytes += int64(len(data)) + 1
	c.mu.Unlock()
	return nil
}

// Entries implements Journal.
func (c *CountingJournal) Entries() ([]JournalEntry, error) { return c.inner.Entries() }

// Stats returns accepted appends and their encoded byte size.
func (c *CountingJournal) Stats() (entries, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries, c.bytes
}
