package controlplane

import (
	"net/http"
	"strconv"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/trace"
)

// Saga tracing: span-based distributed tracing through the control plane.
// Every saga gets a TraceID; every step, journal append, command send/ack/
// retry, compensation, recovery replay, and reconcile repair lands in a
// bounded structured event log as a typed LogEvent carrying that trace, and
// the agent-side handling of commands joins the same trace via the
// (Trace, Span) fields propagated on agent.Command.
//
// Tracing is off by default and the disabled path is allocation-free on the
// saga hot path: every emission site is guarded by a nil check on s.elog
// (benchmarked by BenchmarkSagaAttachDetach, snapshotted in BENCH_PR7.json).
// The event timestamps are monotonic wall-clock nanoseconds from an
// injectable clock — trace.Monotonic in production, trace.StepClock in
// tests and seeded chaos runs so timelines are byte-stable.

// EnableSagaTracing switches saga tracing on with a bounded event log of the
// given capacity (trace.DefaultEventLogCapacity if <= 0) on the production
// monotonic clock, and returns the log. Call before RegisterAgent so agents
// join the same log.
func (s *Service) EnableSagaTracing(capacity int) *trace.EventLog {
	log := trace.NewEventLog(capacity)
	s.SetSagaTracing(log, trace.Monotonic())
	return log
}

// SetSagaTracing installs an event log and wall clock (nil log disables).
// Tests and chaos runs pass trace.StepClock for deterministic timelines.
//
// The log may already hold events from a previous Service incarnation (chaos
// crash-restart scenarios share one world-scoped log across orchestrator
// processes); the new Service continues the trace/span ID sequence past the
// log's high-water mark so restarted processes never reuse a live trace ID.
func (s *Service) SetSagaTracing(log *trace.EventLog, clock trace.WallClock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.elog = log
	s.elogShared.Store(log)
	s.wall = clock
	if log != nil && clock == nil {
		s.wall = trace.Monotonic()
	}
	if log != nil {
		// IDs grow monotonically, so the high-water mark survives ring
		// eviction: it is always among the retained tail.
		for _, e := range log.Snapshot() {
			if uint64(e.Trace) > s.traceSeq {
				s.traceSeq = uint64(e.Trace)
			}
			for _, id := range []trace.SpanID{e.Span, e.Parent} {
				if uint64(id) > s.spanSeq {
					s.spanSeq = uint64(id)
				}
			}
		}
	}
	if reg, ok := s.transport.(interface{ AgentList() []*agent.Agent }); ok && log != nil {
		for _, a := range reg.AgentList() {
			a.SetEventLog(log, s.wall)
		}
	}
}

// EventLog returns the configured saga event log (nil when tracing is off).
func (s *Service) EventLog() *trace.EventLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.elog
}

// newTraceCtx allocates a fresh root span context (caller holds s.mu).
func (s *Service) newTraceCtx() trace.SpanContext {
	s.traceSeq++
	s.spanSeq++
	return trace.SpanContext{Trace: trace.TraceID(s.traceSeq), Span: trace.SpanID(s.spanSeq)}
}

// childSpan allocates a child span of parent (caller holds s.mu).
func (s *Service) childSpan(parent trace.SpanContext) trace.SpanContext {
	s.spanSeq++
	return trace.SpanContext{Trace: parent.Trace, Span: trace.SpanID(s.spanSeq), Parent: parent.Span}
}

// emit stamps the current span context and wall clock onto e and appends it.
// Callers must have checked s.elog != nil (the guard keeps the disabled path
// allocation-free; emit itself is only reached when tracing is on).
func (s *Service) emit(e trace.LogEvent) {
	e.Trace = s.cur.Trace
	e.Span = s.cur.Span
	e.Parent = s.cur.Parent
	if e.WallNS == 0 {
		e.WallNS = s.wall()
	}
	s.elog.Append(e)
}

// send delivers one agent command over the transport. With tracing on, the
// command is stamped with the current span context — so the agent-side
// handling joins the saga's trace — and send/ack/fail events are recorded.
// With tracing off this is exactly s.transport.Send (no allocations).
func (s *Service) send(host string, cmd agent.Command) error {
	if s.elog == nil {
		return s.transport.Send(host, s.token, cmd)
	}
	cmd.Trace = s.cur.Trace
	cmd.Span = s.cur.Span
	s.emit(trace.LogEvent{Source: "transport", Kind: trace.KindCmdSend, Host: host, Step: string(cmd.Kind), Saga: cmd.AttachmentID})
	t0 := s.wall()
	err := s.transport.Send(host, s.token, cmd)
	ev := trace.LogEvent{Source: "transport", Kind: trace.KindCmdAck, Host: host, Step: string(cmd.Kind), Saga: cmd.AttachmentID, DurNS: s.wall() - t0}
	if err != nil {
		ev.Kind = trace.KindCmdFail
		ev.Err = err.Error()
	}
	s.emit(ev)
	return err
}

// SagaTraceByID reconstructs the timeline of one saga from the event log.
// ok is false when tracing is off, the saga is unknown, or its trace has no
// retained events.
func (s *Service) SagaTraceByID(id string) (trace.SagaTrace, []trace.LogEvent, bool) {
	s.mu.Lock()
	elog := s.elog
	var tid trace.TraceID
	if st, found := s.sagas[id]; found {
		tid = st.Trace
	}
	s.mu.Unlock()
	if elog == nil || tid == 0 {
		return trace.SagaTrace{}, nil, false
	}
	events := elog.SnapshotTrace(tid)
	if len(events) == 0 {
		return trace.SagaTrace{}, nil, false
	}
	return trace.BuildSagaTrace(events), events, true
}

// eventsView is the JSON shape of GET /v1/events.
type eventsView struct {
	Recorded uint64           `json:"recorded"`
	Dropped  uint64           `json:"dropped"`
	Events   []trace.LogEvent `json:"events"`
}

// handleEvents serves the structured control-plane event log. Reader-gated,
// like /v1/sagas: the events expose saga lifecycle, not tenant payloads.
// ?n=K returns only the most recent K events.
func (a *API) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	elog := a.svc.EventLog()
	if elog == nil {
		writeErr(w, http.StatusNotFound, "saga tracing not configured")
		return
	}
	events := elog.Snapshot()
	if ns := r.URL.Query().Get("n"); ns != "" {
		n, err := strconv.Atoi(ns)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad n parameter")
			return
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	writeJSON(w, http.StatusOK, eventsView{
		Recorded: elog.Recorded(),
		Dropped:  elog.Dropped(),
		Events:   events,
	})
}

// sagaTraceView is the JSON shape of GET /v1/sagas/{id}/trace: the
// reconstructed timeline plus the raw events behind it.
type sagaTraceView struct {
	Trace  trace.SagaTrace  `json:"trace"`
	Events []trace.LogEvent `json:"events"`
}

// handleSagaTrace serves one saga's reconstructed timeline.
func (a *API) handleSagaTrace(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !a.authorize(w, r, RoleReader) {
		return
	}
	st, events, ok := a.svc.SagaTraceByID(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no trace for saga (tracing off, unknown saga, or events evicted)")
		return
	}
	writeJSON(w, http.StatusOK, sagaTraceView{Trace: st, Events: events})
}
