package controlplane

import (
	"fmt"
	"math/rand"
	"testing"

	"thymesisflow/internal/agent"
	"thymesisflow/internal/graphdb"
)

// TestReconcileConvergenceProperty injects N random divergences between the
// control plane's records and ground truth — agent flaps (lost volatile
// state), orphaned datapath attachments, stale fabric reservations, ghost
// agent state, and datapaths torn down underneath a record — then asserts
// that ReconcileUntilClean converges within a small bounded number of
// passes, that a further pass is idempotent (zero repairs), and that the
// converged state satisfies the full no-leak/no-orphan invariants.
func TestReconcileConvergenceProperty(t *testing.T) {
	const seeds = 6
	const injections = 12
	for seed := int64(1); seed <= seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			env := newCrashEnv(t, 50000+seed)
			svc := env.service(env.inner)

			// Base state: four attachments across distinct host pairs.
			pairs := [][2]string{
				{"node0", "node1"}, {"node1", "node2"},
				{"node2", "node0"}, {"node0", "node2"},
			}
			for _, p := range pairs {
				if _, err := svc.Attach(AttachRequest{
					ComputeHost: p[0], DonorHost: p[1], Bytes: 2 << 20, Channels: 1,
				}); err != nil {
					t.Fatalf("setup attach %v: %v", p, err)
				}
			}

			rng := rand.New(rand.NewSource(seed))
			exec := ClusterExecutor{Cluster: env.cluster}
			recs := svc.Attachments()
			for i := 0; i < injections; i++ {
				switch rng.Intn(5) {
				case 0: // agent flap: restart loses all volatile config
					a, _ := env.inner.Agent(env.hosts[rng.Intn(len(env.hosts))])
					a.Restart()
				case 1: // orphan datapath attachment with no record
					c := env.hosts[rng.Intn(len(env.hosts))]
					d := env.hosts[(rng.Intn(len(env.hosts)-1)+1)%len(env.hosts)]
					if c == d {
						d = env.hosts[(rng.Intn(2)+1)%len(env.hosts)]
					}
					if c != d {
						exec.Attach(c, d, 1<<20, 1) //nolint:errcheck // capacity may be gone; fine
					}
				case 2: // stale fabric reservation on a free transceiver
					host := env.hosts[rng.Intn(len(env.hosts))]
					reserved := make(map[graphdb.ID]bool)
					for _, id := range env.model.ReservedIDs() {
						reserved[id] = true
					}
					for _, id := range env.model.Transceivers(host, LabelComputeEP) {
						if !reserved[id] {
							env.model.ReservePaths([]Path{{Vertices: []graphdb.ID{id}}})
							break
						}
					}
				case 3: // ghost agent state no record wants
					host := env.hosts[rng.Intn(len(env.hosts))]
					a, _ := env.inner.Agent(host)
					a.Apply(testToken, agent.Command{ //nolint:errcheck
						Kind: agent.CmdStealMemory, AttachmentID: fmt.Sprintf("ghost-%d-%d", seed, i),
						Epoch: 100000 + uint64(i), Bytes: 1 << 20, NetworkID: 900 + uint16(i),
					})
				case 4: // datapath vanishes underneath a live record
					if len(recs) > 0 {
						rec := recs[rng.Intn(len(recs))]
						if _, ok := env.cluster.Attachment(rec.ID); ok {
							if err := exec.Detach(rec.ID); err != nil {
								t.Fatalf("inject datapath teardown: %v", err)
							}
						}
					}
				}
			}

			// Convergence: bounded passes over a reliable transport. One
			// pass repairs every divergence it sees, the next proves clean.
			passes, clean := svc.ReconcileUntilClean(8)
			if !clean {
				t.Fatalf("reconciler did not converge in %d passes", passes)
			}
			if passes > 4 {
				t.Fatalf("convergence took %d passes, want <= 4", passes)
			}

			// Idempotency: a further sweep finds nothing at all.
			if rep := svc.Reconcile(); rep.Repairs() != 0 || rep.Unrepaired != 0 {
				t.Fatalf("reconcile not idempotent after convergence: %+v", rep)
			}

			assertConverged(t, env, svc)
		})
	}
}
