package controlplane

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzJournalImage encodes a few representative entries the way FileJournal
// writes them: one JSON object per newline-terminated line.
func fuzzJournalImage(t testing.TB) []byte {
	t.Helper()
	entries := []JournalEntry{
		{Seq: 1, SagaID: "saga-1", Op: OpAttach, Event: EvBegin,
			Compute: "node0", Donor: "node1", Bytes: 1 << 20, Channels: 1},
		{Seq: 2, SagaID: "saga-1", Op: OpAttach, Event: EvIntent, Step: StepPlanPaths},
		{Seq: 3, SagaID: "saga-1", Op: OpAttach, Event: EvDone, Step: StepPlanPaths,
			NetID: 7, Paths: [][]int64{{1, 2, 3}, {4, 5}}},
		{Seq: 4, SagaID: "saga-1", Op: OpAttach, Event: EvCommitted, ExecID: "att-1"},
	}
	var out []byte
	for _, e := range entries {
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		out = append(out, data...)
		out = append(out, '\n')
	}
	return out
}

// FuzzFileJournalEntries feeds arbitrary (truncated, torn, bit-flipped)
// journal images through OpenFileJournal + Entries. The journal must never
// panic, must recover exactly the valid committed prefix, and — because
// open truncates the corrupt tail — an append after recovery must extend
// that prefix cleanly.
func FuzzFileJournalEntries(f *testing.F) {
	valid := fuzzJournalImage(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])          // torn tail: record lost its end
	f.Add(valid[:len(valid)/2])          // truncated mid-stream
	f.Add(append([]byte(nil), valid...)) // pristine copy for mutation corpus
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-9] ^= 0x40 // bit flip inside the last record
	f.Add(flipped)
	f.Add([]byte("{}\n"))
	f.Add([]byte("garbage\n"))
	f.Add([]byte("{\"seq\":1}\ngarbage\n{\"seq\":2}\n"))
	f.Add([]byte{})
	f.Add([]byte("\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "journal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		j, err := OpenFileJournal(path)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer j.Close()

		got, err := j.Entries()
		if err != nil {
			t.Fatalf("entries: %v", err)
		}
		_, want := journalValidPrefix(data)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("recovered %d entries, want the %d-entry valid prefix", len(got), len(want))
		}

		// The open must have truncated any corrupt tail, so a fresh append
		// extends the committed prefix by exactly one well-formed record.
		sentinel := JournalEntry{Seq: 999999, SagaID: "sentinel", Op: OpAttach, Event: EvCommitted}
		if err := j.Append(sentinel); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		again, err := j.Entries()
		if err != nil {
			t.Fatalf("entries after append: %v", err)
		}
		if len(again) != len(want)+1 {
			t.Fatalf("after append got %d entries, want %d", len(again), len(want)+1)
		}
		if last := again[len(again)-1]; last.SagaID != "sentinel" || last.Seq != 999999 {
			t.Fatalf("appended record corrupted: %+v", last)
		}
	})
}
