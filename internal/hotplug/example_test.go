package hotplug_test

import (
	"fmt"

	"thymesisflow/internal/hotplug"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/sim"
)

// Example walks a section through its lifecycle: probe -> online (capacity
// grows) -> offline -> remove, exactly the flow the ThymesisFlow agent
// drives when attaching and detaching disaggregated memory.
func Example() {
	k := sim.NewKernel()
	sys := mem.NewSystem(k, 0)
	remote := sys.AddNode(&mem.Node{
		Name: "tf-remote", CPULess: true, Capacity: 0, Distance: 115,
		Backend: mem.NewDRAMBackend(k, "far", 950*sim.Nanosecond, 12.5e9),
	})
	mgr := hotplug.NewManager(sys, 256<<20)

	if _, err := mgr.Probe(0, remote); err != nil {
		panic(err)
	}
	if err := mgr.Online(0); err != nil {
		panic(err)
	}
	fmt.Printf("after online: %d MiB attachable\n", sys.Node(remote).Capacity>>20)

	if err := mgr.Offline(0); err != nil {
		panic(err)
	}
	if err := mgr.Remove(0); err != nil {
		panic(err)
	}
	fmt.Printf("after remove: %d MiB attachable, %d sections\n",
		sys.Node(remote).Capacity>>20, len(mgr.Sections()))
	// Output:
	// after online: 256 MiB attachable
	// after remove: 0 MiB attachable, 0 sections
}
