// Package hotplug models the Linux memory-hotplug machinery ThymesisFlow
// uses to attach disaggregated memory to a running kernel (Section IV-B).
//
// The kernel's sparse memory model divides the physical address space into
// fixed-size, aligned sections, each independently hotpluggable. The
// ThymesisFlow user-space agent probes a new section at the physical address
// where the compute endpoint is mapped and onlines it; the section's pages
// land on a CPU-less NUMA node whose distance reflects the compute-to-donor
// transaction RTT.
package hotplug

import (
	"fmt"
	"sort"

	"thymesisflow/internal/mem"
)

// State is the lifecycle state of a memory section.
type State int

// Section lifecycle: Absent -> Probed -> Online <-> Offline -> Absent.
const (
	StateAbsent State = iota
	StateProbed
	StateOnline
	StateOffline
)

var stateNames = [...]string{"absent", "probed", "online", "offline"}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Section is one sparse-memory-model section of the host physical address
// space.
type Section struct {
	Base  uint64
	Size  int64
	State State
	// Node is the NUMA node whose capacity this section contributes to.
	Node mem.NodeID
}

// Manager tracks hotpluggable sections for one host and keeps the host's
// mem.System node capacities in sync with section state.
type Manager struct {
	sys         *mem.System
	sectionSize int64
	sections    map[uint64]*Section
}

// NewManager returns a manager with the given section size (0 selects the
// 256 MiB ppc64 default).
func NewManager(sys *mem.System, sectionSize int64) *Manager {
	if sectionSize == 0 {
		sectionSize = 256 * 1024 * 1024
	}
	return &Manager{sys: sys, sectionSize: sectionSize, sections: make(map[uint64]*Section)}
}

// SectionSize returns the section granularity.
func (m *Manager) SectionSize() int64 { return m.sectionSize }

// Probe registers a new section at the given physical base address,
// contributing (once onlined) to the given NUMA node. The base must be
// section-aligned and not already probed.
func (m *Manager) Probe(base uint64, node mem.NodeID) (*Section, error) {
	if base%uint64(m.sectionSize) != 0 {
		return nil, fmt.Errorf("hotplug: base %#x not aligned to %d", base, m.sectionSize)
	}
	if _, dup := m.sections[base]; dup {
		return nil, fmt.Errorf("hotplug: section %#x already present", base)
	}
	if m.sys.Node(node) == nil {
		return nil, fmt.Errorf("hotplug: probe onto unknown node %d", node)
	}
	s := &Section{Base: base, Size: m.sectionSize, State: StateProbed, Node: node}
	m.sections[base] = s
	return s, nil
}

// Online brings a probed or offline section online, adding its capacity to
// the owning NUMA node so the allocator can place pages there.
func (m *Manager) Online(base uint64) error {
	s, ok := m.sections[base]
	if !ok {
		return fmt.Errorf("hotplug: online of absent section %#x", base)
	}
	if s.State == StateOnline {
		return fmt.Errorf("hotplug: section %#x already online", base)
	}
	m.sys.Node(s.Node).Capacity += s.Size
	s.State = StateOnline
	return nil
}

// Offline takes an online section offline. It fails with EBUSY semantics if
// the owning node cannot give up a section's worth of capacity without
// stranding allocated pages — the caller must migrate pages away first
// (see numa.Drain).
func (m *Manager) Offline(base uint64) error {
	s, ok := m.sections[base]
	if !ok {
		return fmt.Errorf("hotplug: offline of absent section %#x", base)
	}
	if s.State != StateOnline {
		return fmt.Errorf("hotplug: section %#x is %v, not online", base, s.State)
	}
	n := m.sys.Node(s.Node)
	if n.Used > n.Capacity-s.Size {
		return fmt.Errorf("hotplug: section %#x busy: node %d has %d bytes allocated over remaining capacity",
			base, s.Node, n.Used-(n.Capacity-s.Size))
	}
	n.Capacity -= s.Size
	s.State = StateOffline
	return nil
}

// Remove deletes an offline or probed section entirely (the physical
// detach).
func (m *Manager) Remove(base uint64) error {
	s, ok := m.sections[base]
	if !ok {
		return fmt.Errorf("hotplug: remove of absent section %#x", base)
	}
	if s.State == StateOnline {
		return fmt.Errorf("hotplug: remove of online section %#x", base)
	}
	delete(m.sections, base)
	return nil
}

// Section returns the section at base, if present.
func (m *Manager) Section(base uint64) (*Section, bool) {
	s, ok := m.sections[base]
	return s, ok
}

// Sections returns all sections sorted by base address.
func (m *Manager) Sections() []*Section {
	out := make([]*Section, 0, len(m.sections))
	for _, s := range m.sections {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// OnlineBytes returns the total capacity currently online via hotplug.
func (m *Manager) OnlineBytes() int64 {
	var total int64
	for _, s := range m.sections {
		if s.State == StateOnline {
			total += s.Size
		}
	}
	return total
}
