package hotplug

import (
	"testing"

	"thymesisflow/internal/mem"
	"thymesisflow/internal/sim"
)

func newHost(t *testing.T) (*mem.System, mem.NodeID, *Manager) {
	t.Helper()
	k := sim.NewKernel()
	sys := mem.NewSystem(k, 0)
	// The CPU-less node starts with zero capacity; hotplug onlining grows it.
	remote := sys.AddNode(&mem.Node{
		Name: "tf-remote", CPULess: true, Capacity: 0, Distance: 80,
		Backend: mem.NewDRAMBackend(k, "far", 950*sim.Nanosecond, 12.5e9),
	})
	return sys, remote, NewManager(sys, 0)
}

func TestProbeOnlineGrowsNode(t *testing.T) {
	sys, remote, m := newHost(t)
	sec := m.SectionSize()
	if _, err := m.Probe(0, remote); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Probe(uint64(sec), remote); err != nil {
		t.Fatal(err)
	}
	if err := m.Online(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Online(uint64(sec)); err != nil {
		t.Fatal(err)
	}
	if got := sys.Node(remote).Capacity; got != 2*sec {
		t.Fatalf("node capacity = %d, want %d", got, 2*sec)
	}
	if m.OnlineBytes() != 2*sec {
		t.Fatalf("online bytes = %d", m.OnlineBytes())
	}
	// Allocation on the hotplugged node now succeeds.
	if _, err := sys.Alloc(sec, func(int) mem.NodeID { return remote }); err != nil {
		t.Fatalf("alloc on hotplugged node: %v", err)
	}
}

func TestProbeValidation(t *testing.T) {
	_, remote, m := newHost(t)
	if _, err := m.Probe(12345, remote); err == nil {
		t.Fatal("unaligned probe accepted")
	}
	if _, err := m.Probe(0, remote); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Probe(0, remote); err == nil {
		t.Fatal("duplicate probe accepted")
	}
	if _, err := m.Probe(uint64(m.SectionSize()), mem.NodeID(99)); err == nil {
		t.Fatal("probe onto unknown node accepted")
	}
}

func TestOfflineBusySection(t *testing.T) {
	sys, remote, m := newHost(t)
	if _, err := m.Probe(0, remote); err != nil {
		t.Fatal(err)
	}
	if err := m.Online(0); err != nil {
		t.Fatal(err)
	}
	// Fill the section with pages; offline must then fail.
	if _, err := sys.Alloc(m.SectionSize(), func(int) mem.NodeID { return remote }); err != nil {
		t.Fatal(err)
	}
	if err := m.Offline(0); err == nil {
		t.Fatal("offline of busy section succeeded")
	}
	s, _ := m.Section(0)
	if s.State != StateOnline {
		t.Fatalf("state = %v after failed offline", s.State)
	}
}

func TestOfflineRemoveLifecycle(t *testing.T) {
	sys, remote, m := newHost(t)
	if _, err := m.Probe(0, remote); err != nil {
		t.Fatal(err)
	}
	if err := m.Online(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Online(0); err == nil {
		t.Fatal("double online accepted")
	}
	if err := m.Offline(0); err != nil {
		t.Fatal(err)
	}
	if got := sys.Node(remote).Capacity; got != 0 {
		t.Fatalf("capacity after offline = %d", got)
	}
	// Re-online then offline then remove.
	if err := m.Online(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(0); err == nil {
		t.Fatal("remove of online section accepted")
	}
	if err := m.Offline(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Section(0); ok {
		t.Fatal("section still present after remove")
	}
	if err := m.Online(0); err == nil {
		t.Fatal("online of removed section accepted")
	}
}

func TestSectionsSorted(t *testing.T) {
	_, remote, m := newHost(t)
	sec := uint64(m.SectionSize())
	for _, base := range []uint64{3 * sec, sec, 2 * sec, 0} {
		if _, err := m.Probe(base, remote); err != nil {
			t.Fatal(err)
		}
	}
	ss := m.Sections()
	for i := 1; i < len(ss); i++ {
		if ss[i].Base <= ss[i-1].Base {
			t.Fatalf("sections unsorted: %#x after %#x", ss[i].Base, ss[i-1].Base)
		}
	}
}
