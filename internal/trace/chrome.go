package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export. The format is the JSON object form of the
// Trace Event Format understood by chrome://tracing and Perfetto
// (ui.perfetto.dev): a "traceEvents" array of phase-tagged records with
// microsecond timestamps. One process (pid 1) represents the simulation;
// each layer becomes its own named thread row so the timeline shows a
// transaction descending phy -> llc -> capi -> rmmu lanes.
//
// Virtual picosecond timestamps are exported as fractional microseconds,
// preserving sub-nanosecond placement (both viewers accept float ts).

// chromeEvent is one record of the trace-event array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`    // instant scope: "t" = thread
	Args  map[string]any `json:"args,omitempty"` // counter values, metadata
}

const chromePID = 1

func psToUS(ps int64) float64 { return float64(ps) / 1e6 }

// WriteChromeTrace writes the ring's retained events as Chrome trace-event
// JSON. The output is a complete JSON object; load it in chrome://tracing
// or https://ui.perfetto.dev.
func (r *Ring) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Snapshot())
}

// WriteChromeTrace writes events (oldest-first, as returned by
// Ring.Snapshot) as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	// Assign one thread row per layer, in first-appearance order.
	tids := make(map[string]int)
	var layers []string
	for _, e := range events {
		if _, ok := tids[e.Layer]; !ok {
			tids[e.Layer] = len(layers) + 1
			layers = append(layers, e.Layer)
		}
	}

	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder appends a newline after each value, giving one event per
		// line — handy for grepping a trace without a viewer.
		return enc.Encode(ce)
	}

	for _, layer := range layers {
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: tids[layer],
			Args: map[string]any{"name": layer},
		}); err != nil {
			return err
		}
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Layer, PID: chromePID, TID: tids[e.Layer],
			TS: psToUS(e.TS),
		}
		switch e.Ph {
		case PhaseSpan:
			ce.Ph = "X"
			if e.Dur > 0 {
				ce.Dur = psToUS(e.Dur)
			}
		case PhaseInstant:
			ce.Ph = "i"
			ce.Scope = "t"
		case PhaseCounter:
			ce.Ph = "C"
			ce.Args = map[string]any{"value": e.Value}
		default:
			return fmt.Errorf("trace: unknown phase %q in event %+v", e.Ph, e)
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
