package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRingRecordAndSnapshot(t *testing.T) {
	r := NewRing(16)
	tok := r.Begin(LayerLLC, "replay", 100)
	r.Instant(LayerRMMU, "translate", 150)
	r.Counter(LayerSim, "queue_depth", 200, 7)
	r.End(tok, 400)
	r.Span(LayerPhy, "xmit", 50, 90)

	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(evs))
	}
	if evs[0].Name != "replay" || evs[0].Ph != PhaseSpan || evs[0].Dur != 300 {
		t.Fatalf("span not closed correctly: %+v", evs[0])
	}
	if evs[1].Ph != PhaseInstant || evs[1].Layer != LayerRMMU {
		t.Fatalf("bad instant: %+v", evs[1])
	}
	if evs[2].Ph != PhaseCounter || evs[2].Value != 7 {
		t.Fatalf("bad counter: %+v", evs[2])
	}
	if evs[3].TS != 50 || evs[3].Dur != 40 {
		t.Fatalf("bad complete span: %+v", evs[3])
	}
}

func TestRingWraparound(t *testing.T) {
	const capacity = 8
	r := NewRing(capacity)
	for i := 0; i < 20; i++ {
		r.Instant(LayerSim, "e", int64(i))
	}
	if r.Len() != capacity {
		t.Fatalf("len = %d, want %d", r.Len(), capacity)
	}
	if r.Recorded() != 20 || r.Dropped() != 20-capacity {
		t.Fatalf("recorded/dropped = %d/%d", r.Recorded(), r.Dropped())
	}
	evs := r.Snapshot()
	for i, e := range evs {
		if want := int64(12 + i); e.TS != want {
			t.Fatalf("event %d has ts %d, want %d (oldest-first order broken)", i, e.TS, want)
		}
	}
}

func TestRingEndAfterEviction(t *testing.T) {
	r := NewRing(4)
	tok := r.Begin(LayerLLC, "stall", 0)
	for i := 0; i < 10; i++ {
		r.Instant(LayerSim, "e", int64(i))
	}
	r.End(tok, 500) // must not panic or corrupt a reused slot
	for _, e := range r.Snapshot() {
		if e.Name == "stall" {
			t.Fatalf("evicted span resurrected: %+v", e)
		}
		if e.Ph == PhaseInstant && e.Dur != 0 {
			t.Fatalf("stale End corrupted a reused slot: %+v", e)
		}
	}
	// Zero tokens are inert.
	r.End(0, 600)
	// Negative durations are clamped: End before Begin leaves the span open.
	tok = r.Begin(LayerLLC, "backwards", 1000)
	r.End(tok, 900)
	evs := r.Snapshot()
	last := evs[len(evs)-1]
	if last.Dur != -1 {
		t.Fatalf("backwards End should leave span open, got %+v", last)
	}
}

func TestRingConcurrentRecording(t *testing.T) {
	r := NewRing(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tok := r.Begin(LayerLLC, "s", int64(i))
				r.End(tok, int64(i)+10)
				r.Instant(LayerPhy, "p", int64(i))
			}
		}()
	}
	wg.Wait()
	if r.Recorded() != 8*500*2 {
		t.Fatalf("recorded %d events, want %d", r.Recorded(), 8*500*2)
	}
}

// chromeTrace is the JSON shape the exporter must produce.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRing(64)
	tok := r.Begin(LayerCAPI, "read_req", 1_000_000) // 1 us
	r.Instant(LayerRMMU, "translate", 1_100_000)
	r.End(tok, 3_000_000)
	r.Counter(LayerSim, "queue_depth", 2_000_000, 3)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, buf.String())
	}

	var metas, spans, instants, counters int
	layers := make(map[string]bool)
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
			layers[e.Args["name"].(string)] = true
		case "X":
			spans++
			if e.TS != 1.0 || e.Dur != 2.0 {
				t.Fatalf("span ts/dur = %v/%v us, want 1/2", e.TS, e.Dur)
			}
			if e.Cat != LayerCAPI {
				t.Fatalf("span category = %q", e.Cat)
			}
		case "i":
			instants++
		case "C":
			counters++
			if e.Args["value"].(float64) != 3 {
				t.Fatalf("counter args = %v", e.Args)
			}
		}
	}
	if metas != 3 || spans != 1 || instants != 1 || counters != 1 {
		t.Fatalf("event mix = %d meta / %d span / %d instant / %d counter",
			metas, spans, instants, counters)
	}
	for _, l := range []string{LayerCAPI, LayerRMMU, LayerSim} {
		if !layers[l] {
			t.Fatalf("missing thread_name metadata for layer %q", l)
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRing(4).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("empty trace is invalid JSON: %v", err)
	}
	if len(ct.TraceEvents) != 0 {
		t.Fatalf("empty ring exported %d events", len(ct.TraceEvents))
	}
}
