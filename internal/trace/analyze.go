package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Chrome-trace analysis: the post-processing engine behind cmd/tftrace. It
// re-ingests the Chrome trace-event JSON this package exports (or any trace
// in that shape), turning the recorder from a viewer artifact into an
// analysis tool: per-layer span statistics, critical-path extraction for the
// slowest transactions, and stall attribution.

// ParsedEvent is one event re-ingested from a Chrome trace-event export.
// Times are virtual picoseconds (the export's fractional microseconds,
// converted back).
type ParsedEvent struct {
	Layer string
	Name  string
	Ph    string // "X" span, "i" instant, "C" counter
	TS    int64  // picoseconds
	Dur   int64  // picoseconds, spans only
}

// End returns the event's end time (TS for non-spans).
func (e ParsedEvent) End() int64 { return e.TS + e.Dur }

// chromeDoc mirrors the exported JSON object shape.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

// ParseChromeTrace re-ingests a Chrome trace-event JSON document. Metadata
// records (thread names) are dropped; span, instant, and counter events are
// returned in timestamp order.
func ParseChromeTrace(r io.Reader) ([]ParsedEvent, error) {
	var doc chromeDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: parse chrome trace: %w", err)
	}
	out := make([]ParsedEvent, 0, len(doc.TraceEvents))
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X", "i", "C":
		default:
			continue // metadata and unknown phases
		}
		out = append(out, ParsedEvent{
			Layer: e.Cat,
			Name:  e.Name,
			Ph:    e.Ph,
			TS:    int64(e.TS * 1e6), // µs -> ps
			Dur:   int64(e.Dur * 1e6),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out, nil
}

// SpanSummary aggregates the spans (or instants) sharing one (layer, name).
type SpanSummary struct {
	Layer   string  `json:"layer"`
	Name    string  `json:"name"`
	Kind    string  `json:"kind"` // "span" or "instant"
	Count   int     `json:"count"`
	TotalNS float64 `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
	P99NS   float64 `json:"p99_ns"`
	MaxNS   float64 `json:"max_ns"`
}

// Summarize groups span and instant events by (layer, name) and returns the
// groups sorted by descending total time (instants, which have no duration,
// sort by count among themselves at the tail).
func Summarize(events []ParsedEvent) []SpanSummary {
	type key struct{ layer, name, kind string }
	durs := make(map[key][]int64)
	for _, e := range events {
		switch e.Ph {
		case "X":
			durs[key{e.Layer, e.Name, "span"}] = append(durs[key{e.Layer, e.Name, "span"}], e.Dur)
		case "i":
			durs[key{e.Layer, e.Name, "instant"}] = append(durs[key{e.Layer, e.Name, "instant"}], 0)
		}
	}
	out := make([]SpanSummary, 0, len(durs))
	for k, ds := range durs {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total int64
		for _, d := range ds {
			total += d
		}
		idx := (len(ds)*99 + 99) / 100
		if idx >= len(ds) {
			idx = len(ds) - 1
		}
		s := SpanSummary{
			Layer: k.layer, Name: k.name, Kind: k.kind, Count: len(ds),
			TotalNS: float64(total) / 1e3,
			MeanNS:  float64(total) / float64(len(ds)) / 1e3,
			P99NS:   float64(ds[idx]) / 1e3,
			MaxNS:   float64(ds[len(ds)-1]) / 1e3,
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TotalNS != b.TotalNS {
			return a.TotalNS > b.TotalNS
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		return a.Name < b.Name
	})
	return out
}

// CriticalPath is the reconstruction of one slow transaction: the capi
// round-trip span plus every event overlapping it, chronologically, with a
// per-layer time rollup.
type CriticalPath struct {
	Root   ParsedEvent   `json:"root"`
	RootNS float64       `json:"root_ns"`
	Events []ParsedEvent `json:"events"`
	// ByLayer maps layer -> nanoseconds of span time overlapping the window.
	ByLayer map[string]float64 `json:"by_layer"`
}

// isRoundTrip reports whether the span is a compute-side capi round trip —
// the root event critical-path extraction ranks.
func isRoundTrip(e ParsedEvent) bool {
	return e.Ph == "X" && e.Layer == LayerCAPI && strings.HasSuffix(e.Name, "_req")
}

// CriticalPaths extracts the slowest-k capi round trips and, for each, the
// chronological set of events overlapping the round trip's window — the
// activity a latency investigation walks through. The per-layer rollup sums
// overlapped span time (clipped to the window), attributing the window
// across the layers below the transaction.
func CriticalPaths(events []ParsedEvent, k int) []CriticalPath {
	var roots []ParsedEvent
	for _, e := range events {
		if isRoundTrip(e) {
			roots = append(roots, e)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].Dur > roots[j].Dur })
	if k > 0 && len(roots) > k {
		roots = roots[:k]
	}
	out := make([]CriticalPath, 0, len(roots))
	for _, root := range roots {
		cp := CriticalPath{Root: root, RootNS: float64(root.Dur) / 1e3, ByLayer: map[string]float64{}}
		for _, e := range events {
			if e == root || e.End() <= root.TS || e.TS >= root.End() {
				continue
			}
			cp.Events = append(cp.Events, e)
			if e.Ph == "X" {
				lo, hi := e.TS, e.End()
				if lo < root.TS {
					lo = root.TS
				}
				if hi > root.End() {
					hi = root.End()
				}
				cp.ByLayer[e.Layer] += float64(hi-lo) / 1e3
			}
		}
		out = append(out, cp)
	}
	return out
}

// StallAttribution quantifies how much of the total capi round-trip time was
// spent inside LLC stall machinery: credit stalls and replay windows.
type StallAttribution struct {
	RoundTrips    int     `json:"round_trips"`
	RoundTripNS   float64 `json:"round_trip_total_ns"`
	CreditStallNS float64 `json:"credit_stall_ns"`
	CreditPct     float64 `json:"credit_stall_pct"`
	ReplayNS      float64 `json:"replay_ns"`
	ReplayPct     float64 `json:"replay_pct"`
}

// AttributeStalls sums capi round-trip time against the LLC credit_stall and
// replay span time overlapping those round trips, expressing each as a
// fraction of the total. This is the trace-side counterpart of the
// credit_stall stage in the attribution pipeline: it works on any recorded
// trace, with no instrumentation beyond PR 2's spans.
func AttributeStalls(events []ParsedEvent) StallAttribution {
	var att StallAttribution
	var windows []ParsedEvent
	for _, e := range events {
		if isRoundTrip(e) {
			windows = append(windows, e)
			att.RoundTrips++
			att.RoundTripNS += float64(e.Dur) / 1e3
		}
	}
	overlap := func(e ParsedEvent) float64 {
		var total int64
		for _, w := range windows {
			lo, hi := e.TS, e.End()
			if lo < w.TS {
				lo = w.TS
			}
			if hi > w.End() {
				hi = w.End()
			}
			if hi > lo {
				total += hi - lo
			}
		}
		return float64(total) / 1e3
	}
	for _, e := range events {
		if e.Ph != "X" || e.Layer != LayerLLC {
			continue
		}
		switch e.Name {
		case "credit_stall":
			att.CreditStallNS += overlap(e)
		case "replay":
			att.ReplayNS += overlap(e)
		}
	}
	if att.RoundTripNS > 0 {
		att.CreditPct = 100 * att.CreditStallNS / att.RoundTripNS
		att.ReplayPct = 100 * att.ReplayNS / att.RoundTripNS
	}
	return att
}
