package trace

import (
	"bytes"
	"testing"
)

// buildTrace records a synthetic two-transaction trace and round-trips it
// through the Chrome export, so the analysis path is tested against the real
// wire format.
func buildTrace(t *testing.T) []ParsedEvent {
	t.Helper()
	r := NewRing(256)
	// Transaction 1: 1000 ns round trip with a 300 ns credit stall inside.
	r.Span(LayerCAPI, "read_req", 0, 1_000_000)
	r.Span(LayerLLC, "credit_stall", 100_000, 400_000)
	r.Span(LayerPhy, "xmit", 450_000, 500_000)
	r.Instant(LayerRMMU, "translate", 50_000)
	// Transaction 2: 400 ns round trip, no stalls.
	r.Span(LayerCAPI, "write_req", 2_000_000, 2_400_000)
	r.Span(LayerPhy, "xmit", 2_050_000, 2_100_000)
	// Replay window straddling neither round trip.
	r.Span(LayerLLC, "replay", 5_000_000, 5_200_000)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestParseChromeTraceRoundTrip(t *testing.T) {
	events := buildTrace(t)
	if len(events) != 7 {
		t.Fatalf("parsed %d events, want 7 (metadata dropped)", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("events not sorted by timestamp")
		}
	}
	first := events[0]
	if first.Layer != LayerCAPI || first.Name != "read_req" || first.Dur != 1_000_000 {
		t.Fatalf("first event mangled: %+v", first)
	}
}

func TestSummarize(t *testing.T) {
	sums := Summarize(buildTrace(t))
	byKey := map[string]SpanSummary{}
	for _, s := range sums {
		byKey[s.Layer+"/"+s.Name] = s
	}
	rt := byKey[LayerCAPI+"/read_req"]
	if rt.Count != 1 || rt.MeanNS != 1000 {
		t.Fatalf("read_req summary = %+v", rt)
	}
	xmit := byKey[LayerPhy+"/xmit"]
	if xmit.Count != 2 || xmit.TotalNS != 100 || xmit.MaxNS != 50 {
		t.Fatalf("xmit summary = %+v", xmit)
	}
	if tr := byKey[LayerRMMU+"/translate"]; tr.Kind != "instant" || tr.Count != 1 {
		t.Fatalf("translate summary = %+v", tr)
	}
	// Sorted by descending total time: the 1000 ns round trip leads.
	if sums[0].Name != "read_req" {
		t.Fatalf("summaries not sorted by total time: first is %s", sums[0].Name)
	}
}

func TestCriticalPaths(t *testing.T) {
	events := buildTrace(t)
	paths := CriticalPaths(events, 1)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	cp := paths[0]
	if cp.Root.Name != "read_req" || cp.RootNS != 1000 {
		t.Fatalf("slowest root = %+v", cp.Root)
	}
	// The window overlaps the credit stall, the first xmit, and the
	// translate instant — not transaction 2's events or the late replay.
	if len(cp.Events) != 3 {
		t.Fatalf("path has %d overlapping events, want 3: %+v", len(cp.Events), cp.Events)
	}
	if cp.ByLayer[LayerLLC] != 300 || cp.ByLayer[LayerPhy] != 50 {
		t.Fatalf("per-layer rollup = %+v", cp.ByLayer)
	}

	if got := CriticalPaths(events, 10); len(got) != 2 {
		t.Fatalf("k beyond population returned %d paths, want 2", len(got))
	}
}

func TestAttributeStalls(t *testing.T) {
	att := AttributeStalls(buildTrace(t))
	if att.RoundTrips != 2 || att.RoundTripNS != 1400 {
		t.Fatalf("round trips = %+v", att)
	}
	if att.CreditStallNS != 300 {
		t.Fatalf("credit stall overlap = %v ns, want 300", att.CreditStallNS)
	}
	// The replay window lies outside both round trips: no attribution.
	if att.ReplayNS != 0 {
		t.Fatalf("replay overlap = %v ns, want 0", att.ReplayNS)
	}
	wantPct := 100 * 300.0 / 1400.0
	if diff := att.CreditPct - wantPct; diff < -0.01 || diff > 0.01 {
		t.Fatalf("credit pct = %v, want %v", att.CreditPct, wantPct)
	}
}

func TestParseChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseChromeTrace(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage input parsed without error")
	}
}
