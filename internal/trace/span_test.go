package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestEventLogAppendAndSnapshot(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 5; i++ {
		l.Append(LogEvent{WallNS: int64(i), Kind: KindStepStart})
	}
	if l.Len() != 5 || l.Recorded() != 5 || l.Dropped() != 0 {
		t.Fatalf("len=%d recorded=%d dropped=%d", l.Len(), l.Recorded(), l.Dropped())
	}
	snap := l.Snapshot()
	for i, e := range snap {
		if e.Seq != uint64(i) || e.WallNS != int64(i) {
			t.Fatalf("event %d: seq=%d wall=%d", i, e.Seq, e.WallNS)
		}
	}
}

func TestEventLogEviction(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 11; i++ {
		l.Append(LogEvent{WallNS: int64(i)})
	}
	if l.Len() != 4 || l.Recorded() != 11 || l.Dropped() != 7 {
		t.Fatalf("len=%d recorded=%d dropped=%d", l.Len(), l.Recorded(), l.Dropped())
	}
	snap := l.Snapshot()
	want := []int64{7, 8, 9, 10}
	for i, e := range snap {
		if e.WallNS != want[i] || e.Seq != uint64(want[i]) {
			t.Fatalf("snapshot[%d] = seq %d wall %d, want %d", i, e.Seq, e.WallNS, want[i])
		}
	}
}

func TestEventLogSnapshotTrace(t *testing.T) {
	l := NewEventLog(16)
	for i := 0; i < 9; i++ {
		l.Append(LogEvent{Trace: TraceID(1 + i%3), WallNS: int64(i)})
	}
	got := l.SnapshotTrace(2)
	if len(got) != 3 {
		t.Fatalf("trace 2: %d events, want 3", len(got))
	}
	for _, e := range got {
		if e.Trace != 2 {
			t.Fatalf("foreign trace %d in snapshot", e.Trace)
		}
	}
}

// TestEventLogSnapshotUnderParallelWriters is the race test for the
// event-log ring: snapshots taken while many goroutines append must stay
// internally consistent (run under -race via `make race`).
func TestEventLogSnapshotUnderParallelWriters(t *testing.T) {
	l := NewEventLog(256)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Append(LogEvent{Trace: TraceID(w + 1), WallNS: int64(i), Kind: KindCmdSend})
			}
		}(w)
	}
	var readers sync.WaitGroup
	readers.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := l.Snapshot()
				for i := 1; i < len(snap); i++ {
					if snap[i].Seq != snap[i-1].Seq+1 {
						t.Errorf("snapshot not contiguous: %d then %d", snap[i-1].Seq, snap[i].Seq)
						return
					}
				}
				_ = l.SnapshotTrace(3)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := l.Recorded(); got != writers*perWriter {
		t.Fatalf("recorded %d, want %d", got, writers*perWriter)
	}
}

func TestStepClockDeterministic(t *testing.T) {
	a, b := StepClock(100, 7), StepClock(100, 7)
	for i := 0; i < 5; i++ {
		x, y := a(), b()
		if x != y {
			t.Fatalf("step clocks diverged: %d vs %d", x, y)
		}
		if want := int64(100 + 7*i); x != want {
			t.Fatalf("reading %d = %d, want %d", i, x, want)
		}
	}
}

func TestMonotonicClockAdvances(t *testing.T) {
	c := Monotonic()
	prev := c()
	for i := 0; i < 100; i++ {
		now := c()
		if now < prev {
			t.Fatalf("clock went backwards: %d after %d", now, prev)
		}
		prev = now
	}
}

// sagaEvents builds a synthetic but realistic attach timeline.
func sagaEvents(trace TraceID, saga string, start int64) []LogEvent {
	t := start
	at := func(d int64) int64 { t += d; return t }
	return []LogEvent{
		{Trace: trace, Saga: saga, Op: "attach", Source: "saga", Kind: KindSagaBegin, WallNS: at(0)},
		{Trace: trace, Saga: saga, Source: "journal", Kind: KindJournalAppend, WallNS: at(40)},
		{Trace: trace, Saga: saga, Step: "steal-memory", Source: "saga", Kind: KindStepStart, WallNS: at(1)},
		{Trace: trace, Saga: saga, Step: "steal-memory", Source: "journal", Kind: KindJournalAppend, WallNS: at(35)},
		{Trace: trace, Saga: saga, Step: "steal-memory", Source: "transport", Kind: KindCmdSend, Host: "d0", WallNS: at(2)},
		{Trace: trace, Saga: saga, Step: "steal-memory", Source: "transport", Kind: KindCmdFail, Host: "d0", Err: "dropped", WallNS: at(10)},
		{Trace: trace, Saga: saga, Step: "steal-memory", Source: "transport", Kind: KindCmdRetry, Host: "d0", Attempt: 2, WallNS: at(50)},
		{Trace: trace, Saga: saga, Step: "steal-memory", Source: "transport", Kind: KindCmdAck, Host: "d0", WallNS: at(12)},
		{Trace: trace, Saga: saga, Step: "steal-memory", Source: "saga", Kind: KindStepRun, WallNS: at(1)},
		{Trace: trace, Saga: saga, Step: "steal-memory", Source: "journal", Kind: KindJournalAppend, WallNS: at(30)},
		{Trace: trace, Saga: saga, Step: "steal-memory", Source: "saga", Kind: KindStepDone, WallNS: at(1)},
		{Trace: trace, Saga: saga, Source: "journal", Kind: KindJournalAppend, WallNS: at(38)},
		{Trace: trace, Saga: saga, Source: "saga", Kind: KindSagaCommit, WallNS: at(1)},
	}
}

func TestBuildSagaTraceStagesTileTotal(t *testing.T) {
	events := sagaEvents(7, "saga-1", 1000)
	st := BuildSagaTrace(events)
	if st.Saga != "saga-1" || st.Op != "attach" || st.State != "committed" {
		t.Fatalf("trace header: %+v", st)
	}
	if st.TotalNS != events[len(events)-1].WallNS-events[0].WallNS {
		t.Fatalf("total %d", st.TotalNS)
	}
	var sum int64
	var pct float64
	for _, s := range st.Stages {
		sum += s.DurNS
		pct += s.Pct
	}
	if sum != st.TotalNS {
		t.Fatalf("stages sum %d != total %d", sum, st.TotalNS)
	}
	if pct < 99.999 || pct > 100.001 {
		t.Fatalf("stage pct sum %v", pct)
	}
	// The retry backoff (50 ns) must be charged to "backoff", journal
	// appends (40+35+30+38) to "journal".
	byName := map[string]int64{}
	for _, s := range st.Stages {
		byName[s.Name] = s.DurNS
	}
	if byName["backoff"] != 50 {
		t.Fatalf("backoff stage = %d, want 50", byName["backoff"])
	}
	if byName["journal"] != 40+35+30+38 {
		t.Fatalf("journal stage = %d, want 143", byName["journal"])
	}
	if byName["agent"] != 10+12 {
		t.Fatalf("agent stage = %d, want 22", byName["agent"])
	}
}

func TestBuildSagaTracesGroupsAndProfiles(t *testing.T) {
	var events []LogEvent
	for i := 0; i < 4; i++ {
		events = append(events, sagaEvents(TraceID(i+1), fmt.Sprintf("saga-%d", i+1), int64(1000*i))...)
	}
	traces := BuildSagaTraces(events)
	if len(traces) != 4 {
		t.Fatalf("%d traces, want 4", len(traces))
	}
	profs := ProfileSagas(traces)
	if len(profs) != 1 || profs[0].Op != "attach" || profs[0].Count != 4 {
		t.Fatalf("profiles: %+v", profs)
	}
	var sum int64
	for _, s := range profs[0].Stages {
		sum += s.DurNS
	}
	if sum != profs[0].TotalNS {
		t.Fatalf("profile stages sum %d != total %d", sum, profs[0].TotalNS)
	}
	if profs[0].P99NS != profs[0].MaxNS {
		t.Fatalf("p99 %d vs max %d over 4 identical sagas", profs[0].P99NS, profs[0].MaxNS)
	}
}

func TestParseEventLogShapes(t *testing.T) {
	arr := `[{"seq":1,"wall_ns":5,"kind":"saga_begin"},{"seq":0,"wall_ns":1,"kind":"saga_begin"}]`
	events, err := ParseEventLog(strings.NewReader(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Seq != 0 {
		t.Fatalf("array parse: %+v", events)
	}
	obj := `{"recorded":2,"events":[{"seq":0,"kind":"saga_begin"},{"seq":1,"kind":"saga_commit"}]}`
	events, err = ParseEventLog(strings.NewReader(obj))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Kind != KindSagaCommit {
		t.Fatalf("object parse: %+v", events)
	}
	if _, err := ParseEventLog(strings.NewReader("not json")); err == nil {
		t.Fatal("want error on garbage input")
	}
}
