package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Control-plane trace analysis: reconstructs saga timelines from the typed
// event log and aggregates them into per-operation critical-path profiles
// ("attach p99 = journal 40% + agent retry 55%"). This is the engine behind
// GET /v1/sagas/{id}/trace and `tftrace -cp`.

// Typed lifecycle kinds recorded by the control plane. The emitting sites
// live in internal/controlplane and internal/agent; the names are part of
// the event-log schema (docs/OBSERVABILITY.md).
const (
	KindSagaBegin  = "saga_begin"
	KindSagaCommit = "saga_commit"
	KindSagaAbort  = "saga_abort"
	KindSagaPark   = "saga_park"
	KindSagaCrash  = "saga_crash"

	KindStepStart = "step_start"
	KindStepRun   = "step_run" // step body finished (local/executor work)
	KindStepDone  = "step_done"
	KindStepFail  = "step_fail"

	KindJournalAppend = "journal_append"

	KindCmdSend  = "cmd_send"
	KindCmdAck   = "cmd_ack"
	KindCmdFail  = "cmd_fail"
	KindCmdRetry = "cmd_retry" // emitted after the backoff sleep

	KindCompensate = "compensate"

	KindRecoveryBegin = "recovery_begin"
	KindRecoverySaga  = "recovery_saga"
	KindRecoveryEnd   = "recovery_end"

	KindReconcileBegin  = "reconcile_begin"
	KindReconcileRepair = "reconcile_repair"
	KindReconcileEnd    = "reconcile_end"

	KindAgentApply  = "agent_apply"
	KindAgentDedupe = "agent_dedupe"
	KindAgentReject = "agent_reject"
)

// StageCategory buckets an event kind into the stage its preceding interval
// is charged to. The timeline is tiled: the time between two consecutive
// events of a trace belongs to whatever completed at the second event, so
// the stage durations of a saga sum exactly to its end-to-end wall time.
func StageCategory(kind string) string {
	switch kind {
	case KindJournalAppend:
		return "journal"
	case KindCmdAck, KindCmdFail, KindAgentApply, KindAgentDedupe, KindAgentReject:
		return "agent"
	case KindCmdRetry:
		return "backoff"
	case KindStepRun:
		return "run"
	default:
		return "engine"
	}
}

// StageSpan is one aggregated stage of a saga (or of an operation profile).
type StageSpan struct {
	Name  string  `json:"name"`
	DurNS int64   `json:"dur_ns"`
	Pct   float64 `json:"pct"`
}

// SagaTrace is the reconstructed timeline of one saga.
type SagaTrace struct {
	Saga    string      `json:"saga"`
	Trace   TraceID     `json:"trace"`
	Op      string      `json:"op,omitempty"`
	State   string      `json:"state"` // committed | aborted | parked | running
	StartNS int64       `json:"start_ns"`
	EndNS   int64       `json:"end_ns"`
	TotalNS int64       `json:"total_ns"`
	Events  int         `json:"events"`
	Stages  []StageSpan `json:"stages"` // sorted by descending duration, then name; sums to TotalNS
}

// BuildSagaTrace reconstructs one saga's timeline from the events of a
// single trace (as returned by EventLog.SnapshotTrace). Events must be in
// append order. The stage durations tile [StartNS, EndNS] exactly:
// sum(Stages[i].DurNS) == TotalNS.
func BuildSagaTrace(events []LogEvent) SagaTrace {
	var st SagaTrace
	if len(events) == 0 {
		return st
	}
	st.Trace = events[0].Trace
	st.StartNS = events[0].WallNS
	st.EndNS = events[len(events)-1].WallNS
	st.TotalNS = st.EndNS - st.StartNS
	st.Events = len(events)
	st.State = "running"
	byCat := map[string]int64{}
	for i, e := range events {
		if st.Saga == "" && e.Saga != "" {
			st.Saga = e.Saga
		}
		if st.Op == "" && e.Op != "" {
			st.Op = e.Op
		}
		switch e.Kind {
		case KindSagaCommit:
			st.State = "committed"
		case KindSagaAbort:
			st.State = "aborted"
		case KindSagaPark:
			st.State = "parked"
		case KindSagaCrash:
			st.State = "crashed"
		}
		if i == 0 {
			continue
		}
		byCat[StageCategory(e.Kind)] += e.WallNS - events[i-1].WallNS
	}
	st.Stages = make([]StageSpan, 0, len(byCat))
	for name, dur := range byCat {
		s := StageSpan{Name: name, DurNS: dur}
		if st.TotalNS > 0 {
			s.Pct = 100 * float64(dur) / float64(st.TotalNS)
		}
		st.Stages = append(st.Stages, s)
	}
	sortStages(st.Stages)
	return st
}

// BuildSagaTraces groups a full event-log snapshot by trace ID and
// reconstructs every saga timeline, ordered by first appearance.
func BuildSagaTraces(events []LogEvent) []SagaTrace {
	order := make([]TraceID, 0, 16)
	byTrace := map[TraceID][]LogEvent{}
	for _, e := range events {
		if e.Trace == 0 {
			continue
		}
		if _, ok := byTrace[e.Trace]; !ok {
			order = append(order, e.Trace)
		}
		byTrace[e.Trace] = append(byTrace[e.Trace], e)
	}
	out := make([]SagaTrace, 0, len(order))
	for _, id := range order {
		out = append(out, BuildSagaTrace(byTrace[id]))
	}
	return out
}

// OpProfile aggregates every saga of one operation into a critical-path
// profile: end-to-end latency percentiles plus the stage mix.
type OpProfile struct {
	Op      string      `json:"op"`
	Count   int         `json:"count"`
	TotalNS int64       `json:"total_ns"`
	MeanNS  float64     `json:"mean_ns"`
	P50NS   int64       `json:"p50_ns"`
	P99NS   int64       `json:"p99_ns"`
	MaxNS   int64       `json:"max_ns"`
	Stages  []StageSpan `json:"stages"`
}

// ProfileSagas rolls saga timelines up by operation, sorted by op name.
func ProfileSagas(traces []SagaTrace) []OpProfile {
	byOp := map[string][]SagaTrace{}
	ops := []string{}
	for _, t := range traces {
		op := t.Op
		if op == "" {
			op = "unknown"
		}
		if _, ok := byOp[op]; !ok {
			ops = append(ops, op)
		}
		byOp[op] = append(byOp[op], t)
	}
	sort.Strings(ops)
	out := make([]OpProfile, 0, len(ops))
	for _, op := range ops {
		ts := byOp[op]
		p := OpProfile{Op: op, Count: len(ts)}
		durs := make([]int64, 0, len(ts))
		byCat := map[string]int64{}
		for _, t := range ts {
			p.TotalNS += t.TotalNS
			durs = append(durs, t.TotalNS)
			for _, s := range t.Stages {
				byCat[s.Name] += s.DurNS
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		p.MeanNS = float64(p.TotalNS) / float64(len(durs))
		p.P50NS = durs[len(durs)/2]
		p.P99NS = durs[minInt((len(durs)*99+99)/100, len(durs)-1)]
		p.MaxNS = durs[len(durs)-1]
		p.Stages = make([]StageSpan, 0, len(byCat))
		for name, dur := range byCat {
			s := StageSpan{Name: name, DurNS: dur}
			if p.TotalNS > 0 {
				s.Pct = 100 * float64(dur) / float64(p.TotalNS)
			}
			p.Stages = append(p.Stages, s)
		}
		sortStages(p.Stages)
		out = append(out, p)
	}
	return out
}

func sortStages(ss []StageSpan) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].DurNS != ss[j].DurNS {
			return ss[i].DurNS > ss[j].DurNS
		}
		return ss[i].Name < ss[j].Name
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// eventLogDoc mirrors the GET /v1/events response shape.
type eventLogDoc struct {
	Events []LogEvent `json:"events"`
}

// ParseEventLog re-ingests a control-plane event log: either a bare JSON
// array of events or the /v1/events response object. Events are returned in
// sequence order.
func ParseEventLog(r io.Reader) ([]LogEvent, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read event log: %w", err)
	}
	var events []LogEvent
	if err := json.Unmarshal(data, &events); err != nil {
		var doc eventLogDoc
		if err2 := json.Unmarshal(data, &doc); err2 != nil {
			return nil, fmt.Errorf("trace: parse event log: %w", err)
		}
		events = doc.Events
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return events, nil
}
