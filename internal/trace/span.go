package trace

import (
	"sync"
	"time"
)

// Control-plane span tracing. The datapath tracer above lives on *virtual*
// simulation time; the control plane (sagas, journal, agent transport,
// recovery, reconciler) runs on host wall-clock, so its spans get their own
// domain: a TraceID per saga, a SpanID per unit of work, and monotonic
// wall-clock nanoseconds from an injectable clock. The two domains never mix
// — a Chrome trace timestamp is virtual picoseconds, a LogEvent timestamp is
// wall nanoseconds — and tooling (tftrace) keeps them in separate modes.

// TraceID identifies one causal chain through the control plane — one saga,
// including its retries, compensation, recovery replay, and the agent-side
// handling of its commands. The zero TraceID means "untraced".
type TraceID uint64

// SpanID identifies one unit of work within a trace: a saga step, a journal
// append, one command send attempt. The zero SpanID means "no span".
type SpanID uint64

// SpanContext is the propagation token: it rides on agent commands so work
// executed on the far side of the Transport lands in the same trace.
type SpanContext struct {
	Trace  TraceID `json:"trace"`
	Span   SpanID  `json:"span"`
	Parent SpanID  `json:"parent,omitempty"`
}

// Valid reports whether the context belongs to a live trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// WallClock returns monotonic wall-clock nanoseconds. Injectable so tests
// and seeded chaos runs get deterministic timelines.
type WallClock func() int64

// Monotonic is the production clock: nanoseconds on Go's monotonic clock,
// relative to process start (wall epoch deliberately excluded so timelines
// are diffable across runs).
func Monotonic() WallClock {
	start := time.Now()
	return func() int64 { return int64(time.Since(start)) }
}

// StepClock is a deterministic WallClock for tests and seeded chaos runs:
// every reading advances exactly step nanoseconds past the previous one, so
// a seeded control-plane run produces a byte-identical event timeline.
func StepClock(start, step int64) WallClock {
	now := start - step
	return func() int64 {
		now += step
		return now
	}
}

// LogEvent is one typed control-plane lifecycle event. Events are both the
// span store (an event with DurNS > 0 closes the span that started DurNS
// earlier) and the structured log served at /v1/events.
type LogEvent struct {
	Seq     uint64  `json:"seq"`
	WallNS  int64   `json:"wall_ns"`
	Trace   TraceID `json:"trace,omitempty"`
	Span    SpanID  `json:"span,omitempty"`
	Parent  SpanID  `json:"parent,omitempty"`
	Source  string  `json:"source"`            // saga | journal | transport | agent | recovery | reconcile
	Kind    string  `json:"kind"`              // typed lifecycle kind (see internal/controlplane)
	Saga    string  `json:"saga,omitempty"`    // saga ID ("saga-3")
	Op      string  `json:"op,omitempty"`      // attach | detach
	Step    string  `json:"step,omitempty"`    // saga step or journal event name
	Host    string  `json:"host,omitempty"`    // agent host for transport/agent events
	Attempt int     `json:"attempt,omitempty"` // send attempt number (1-based)
	DurNS   int64   `json:"dur_ns,omitempty"`  // span duration; 0 for instants
	Err     string  `json:"err,omitempty"`
}

// DefaultEventLogCapacity bounds logs created with NewEventLog(0): 16 Ki
// events (~2.5 MiB) holds thousands of saga timelines on a live daemon.
const DefaultEventLogCapacity = 1 << 14

// EventLog is a bounded ring of LogEvents. Like Ring, the buffer is
// allocated up front and appending never allocates; the oldest events are
// silently evicted past capacity. Safe for concurrent use: the saga engine,
// reconciler goroutine, and agents all append to one log.
type EventLog struct {
	mu  sync.Mutex
	buf []LogEvent
	seq uint64 // total events ever appended; next sequence number
}

// NewEventLog returns a log retaining the last `capacity` events
// (DefaultEventLogCapacity if capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogCapacity
	}
	return &EventLog{buf: make([]LogEvent, 0, capacity)}
}

// Append records one event, stamping its sequence number.
func (l *EventLog) Append(e LogEvent) {
	l.mu.Lock()
	e.Seq = l.seq
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.seq%uint64(cap(l.buf))] = e
	}
	l.seq++
	l.mu.Unlock()
}

// Len reports the number of events currently retained.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Recorded reports the total number of events ever appended.
func (l *EventLog) Recorded() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped reports how many events the ring bound has evicted.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - uint64(len(l.buf))
}

// Snapshot returns the retained events oldest-first. The returned slice is a
// copy and safe to use while appending continues.
func (l *EventLog) Snapshot() []LogEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEvent, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		copy(out, l.buf)
		return out
	}
	head := int(l.seq % uint64(cap(l.buf)))
	n := copy(out, l.buf[head:])
	copy(out[n:], l.buf[:head])
	return out
}

// SnapshotTrace returns the retained events of one trace, oldest-first.
func (l *EventLog) SnapshotTrace(id TraceID) []LogEvent {
	all := l.Snapshot()
	out := all[:0]
	for _, e := range all {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}
