// Package trace is the cross-layer tracing subsystem: a zero-overhead-when-
// disabled Tracer interface, a bounded ring-buffer recorder, and a Chrome
// trace-event exporter (chrome://tracing / Perfetto) so a full simulated run
// can be inspected on a timeline.
//
// Every event is keyed by a layer (the component of the disaggregation
// datapath that emitted it: sim, phy, llc, capi, rmmu) and stamped with the
// *virtual* simulation time in picoseconds, so the exported timeline shows
// where simulated time goes inside the stack — flit flight times, credit
// stalls, replay windows, CAPI transaction latencies — not host wall-clock.
//
// Instrumented components hold a Tracer and guard every emission with a nil
// check:
//
//	if tr := k.Tracer(); tr != nil {
//	    tr.Instant(trace.LayerRMMU, "translate", k.NowPS())
//	}
//
// so the disabled path costs one pointer load and compare, and zero
// allocations (verified by TestKernelNilTracerZeroAllocs in internal/sim).
package trace

import "sync"

// Layer names used across the stack. Free-form strings are allowed; these
// constants name the layers of the ThymesisFlow datapath.
const (
	LayerSim  = "sim"  // discrete-event kernel (dispatch latency, queue depth)
	LayerPhy  = "phy"  // physical channels (frame flight, drops, corruption)
	LayerLLC  = "llc"  // low-latency link protocol (frames, replay, credits)
	LayerCAPI = "capi" // cache-coherent transactions (request round trips)
	LayerRMMU = "rmmu" // remote-MMU translations
)

// SpanToken identifies an open span returned by Begin and consumed by End.
// The zero token is invalid; End ignores it, so an untraced Begin/End pair
// degenerates to two no-ops.
type SpanToken uint64

// Tracer records spans and instant events on a virtual timeline. All
// timestamps are virtual simulation time in picoseconds. Implementations
// must be safe for concurrent use: independent simulation kernels (e.g. the
// parallel experiment runner's cells) may share one recorder.
type Tracer interface {
	// Begin opens a span on a layer. The returned token is passed to End
	// when the span closes; spans may stay open across event callbacks.
	Begin(layer, name string, tsPS int64) SpanToken
	// End closes a span opened by Begin. Ending an evicted or zero token is
	// a no-op.
	End(tok SpanToken, tsPS int64)
	// Span records a complete span whose endpoints are both known.
	Span(layer, name string, startPS, endPS int64)
	// Instant records a point event.
	Instant(layer, name string, tsPS int64)
	// Counter records a sample of a named numeric series (rendered as a
	// counter track on the timeline).
	Counter(layer, name string, tsPS int64, value float64)
}

// Source is a virtual clock plus a late-bound tracer lookup. *sim.Kernel
// implements it, letting kernel-less components (the RMMU section table) be
// instrumented once at construction and still honour a tracer attached to
// the kernel afterwards.
type Source interface {
	NowPS() int64
	Tracer() Tracer
}

// Phase distinguishes event kinds, mirroring the Chrome trace-event phases.
type Phase byte

// Event phases.
const (
	PhaseSpan    Phase = 'X' // complete span (TS..TS+Dur)
	PhaseInstant Phase = 'i' // point event
	PhaseCounter Phase = 'C' // counter sample (Value)
)

// Event is one recorded trace event.
type Event struct {
	Seq   uint64 // global record sequence (monotonic, 0-based)
	TS    int64  // virtual time, picoseconds
	Dur   int64  // span duration in picoseconds; -1 while the span is open
	Layer string
	Name  string
	Ph    Phase
	Value float64 // counter sample value (PhaseCounter only)
}

// DefaultRingCapacity bounds recorders created with NewRing(0): 1 Mi events
// (~64 MiB) keeps the tail of even a full-scale experiment without letting
// an unbounded trace eat the host.
const DefaultRingCapacity = 1 << 20

// Ring is a bounded ring-buffer Tracer: it retains the most recent
// `capacity` events and silently evicts the oldest beyond that, so tracing
// can stay attached to a long-lived simulation (or a live tfd daemon)
// without unbounded growth. The buffer is allocated up front; recording
// never allocates.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	seq uint64 // total events ever recorded; next sequence number
}

// NewRing returns a recorder retaining the last `capacity` events
// (DefaultRingCapacity if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// record appends an event and returns its sequence number.
func (r *Ring) record(e Event) uint64 {
	seq := r.seq
	e.Seq = seq
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[seq%uint64(cap(r.buf))] = e
	}
	r.seq++
	return seq
}

// Begin implements Tracer.
func (r *Ring) Begin(layer, name string, tsPS int64) SpanToken {
	r.mu.Lock()
	seq := r.record(Event{TS: tsPS, Dur: -1, Layer: layer, Name: name, Ph: PhaseSpan})
	r.mu.Unlock()
	return SpanToken(seq + 1) // +1 keeps the zero token invalid
}

// End implements Tracer. If the span was evicted from the ring in the
// meantime its completion is silently dropped.
func (r *Ring) End(tok SpanToken, tsPS int64) {
	if tok == 0 {
		return
	}
	seq := uint64(tok - 1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq >= r.seq || r.seq-seq > uint64(cap(r.buf)) {
		return // never recorded, or already evicted
	}
	e := &r.buf[seq%uint64(cap(r.buf))]
	if e.Seq != seq {
		return // slot reused by a newer event
	}
	if d := tsPS - e.TS; d >= 0 {
		e.Dur = d
	}
}

// Span implements Tracer.
func (r *Ring) Span(layer, name string, startPS, endPS int64) {
	dur := endPS - startPS
	if dur < 0 {
		dur = 0
	}
	r.mu.Lock()
	r.record(Event{TS: startPS, Dur: dur, Layer: layer, Name: name, Ph: PhaseSpan})
	r.mu.Unlock()
}

// Instant implements Tracer.
func (r *Ring) Instant(layer, name string, tsPS int64) {
	r.mu.Lock()
	r.record(Event{TS: tsPS, Layer: layer, Name: name, Ph: PhaseInstant})
	r.mu.Unlock()
}

// Counter implements Tracer.
func (r *Ring) Counter(layer, name string, tsPS int64, value float64) {
	r.mu.Lock()
	r.record(Event{TS: tsPS, Layer: layer, Name: name, Ph: PhaseCounter, Value: value})
	r.mu.Unlock()
}

// Len reports the number of events currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Recorded reports the total number of events ever recorded, including
// evicted ones.
func (r *Ring) Recorded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped reports how many events have been evicted by the ring bound.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - uint64(len(r.buf))
}

// Snapshot returns the retained events oldest-first. The returned slice is
// a copy and safe to use while recording continues.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		copy(out, r.buf)
		return out
	}
	head := int(r.seq % uint64(cap(r.buf))) // index of the oldest event
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

var _ Tracer = (*Ring)(nil)
