package core

import (
	"strings"
	"testing"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/timeseries"
)

// driveLoads pushes n synchronous cacheline loads through the testbed's
// datapath and runs the cluster (through the Cluster run path, so a enabled
// flight recorder samples) until it drains.
func driveLoads(t *testing.T, tb *Testbed, n int) sim.Time {
	t.Helper()
	var loadErr error
	tb.Cluster.K.Go("loads", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			off := int64(i%256) * capi.Cacheline
			if _, err := tb.Cluster.Load(p, tb.Att, off, capi.Cacheline); err != nil {
				loadErr = err
				return
			}
		}
	})
	end := tb.Cluster.Run()
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	return end
}

func TestFlightRecorderSamplesOnGrid(t *testing.T) {
	tb, err := NewTestbed(ConfigSingleDisaggregated, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	rec := tb.Cluster.EnableFlightRecorder(FlightOptions{})
	if tb.Cluster.EnableFlightRecorder(FlightOptions{}) != rec {
		t.Fatal("second enable returned a different recorder")
	}
	if tb.Cluster.FlightRecorder() != rec {
		t.Fatal("FlightRecorder() mismatch")
	}
	end := driveLoads(t, tb, 2000)

	snap := rec.Snapshot()
	if len(snap.Series) == 0 {
		t.Fatal("no series recorded")
	}
	prefixes := map[string]bool{}
	for _, ss := range snap.Series {
		dot := strings.IndexByte(ss.Name, '.')
		prefixes[ss.Name[:dot+1]] = true
		if len(ss.Points) == 0 {
			t.Fatalf("series %s recorded no points", ss.Name)
		}
		prev := int64(-1)
		for i, p := range ss.Points {
			if p.TS <= prev {
				t.Fatalf("series %s: non-increasing TS at %d", ss.Name, i)
			}
			prev = p.TS
			// Every instant lies on the tick grid except the final
			// phase-boundary sample at queue drain.
			if p.TS%int64(DefaultFlightTick) != 0 && p.TS != int64(end) {
				t.Fatalf("series %s: off-grid sample at %d (end %d)", ss.Name, p.TS, end)
			}
		}
	}
	for _, want := range []string{"llc.", "phy.", "capi."} {
		if !prefixes[want] {
			t.Fatalf("no %s* series in snapshot (have %v)", want, prefixes)
		}
	}
}

// TestFlightRecorderPreservesTimeline is the no-perturbation guarantee: the
// recorder schedules no simulation events, so a recorded run must drain at
// the exact virtual instant — having moved the exact same traffic — as an
// unrecorded one.
func TestFlightRecorderPreservesTimeline(t *testing.T) {
	run := func(record bool) (sim.Time, llcStats) {
		tb, err := NewTestbed(ConfigSingleDisaggregated, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		if record {
			tb.Cluster.EnableFlightRecorder(FlightOptions{Tick: 777_777})
		}
		end := driveLoads(t, tb, 500)
		p := tb.Att.computePorts[0]
		st := p.Stats()
		return end, llcStats{st.TxFrames, st.RxFrames}
	}
	endOff, statsOff := run(false)
	endOn, statsOn := run(true)
	if endOff != endOn {
		t.Fatalf("recorded run drained at %d, unrecorded at %d", endOn, endOff)
	}
	if statsOff != statsOn {
		t.Fatalf("recorded traffic %+v != unrecorded %+v", statsOn, statsOff)
	}
}

type llcStats struct{ tx, rx int64 }

// TestFlightRecorderDisabledAddsNothing pins the zero-overhead-off idiom at
// the cluster run path: with no recorder, RunUntil falls straight through to
// the kernel and the recorder pointer stays nil.
func TestFlightRecorderDisabledAddsNothing(t *testing.T) {
	tb, err := NewTestbed(ConfigSingleDisaggregated, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	driveLoads(t, tb, 100)
	if tb.Cluster.FlightRecorder() != nil {
		t.Fatal("recorder non-nil without EnableFlightRecorder")
	}
}

func TestFlightRecorderSharded(t *testing.T) {
	// A sharded cluster gets per-shard barrier-stall series and samples all
	// shard-owned targets; series timestamps stay on the same global grid.
	c := NewClusterShards(2)
	rec := c.EnableFlightRecorder(FlightOptions{})
	for _, name := range []string{"compute", "donor"} {
		hc := DefaultHostConfig(name)
		hc.DRAMPerSocket = 1 << 30
		hc.SectionSize = 1 << 20
		hc.RMMUSections = 16
		if _, err := c.AddHost(hc); err != nil {
			t.Fatal(err)
		}
	}
	att, err := c.Attach(AttachSpec{ComputeHost: "compute", DonorHost: "donor", Bytes: 16 << 20, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	var loadErr error
	c.K.Go("loads", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			if _, err := c.Load(p, att, int64(i%64)*capi.Cacheline, capi.Cacheline); err != nil {
				loadErr = err
				return
			}
		}
	})
	c.Run()
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	snap := rec.Snapshot()
	haveStall := false
	for _, ss := range snap.Series {
		if strings.HasPrefix(ss.Name, "shard.") && strings.HasSuffix(ss.Name, ".barrier_stall_ns") {
			haveStall = true
		}
	}
	if !haveStall {
		t.Fatal("sharded cluster recorded no shard.*.barrier_stall_ns series")
	}
	var _ timeseries.Snapshot = snap
}
