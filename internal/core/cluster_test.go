package core

import (
	"bytes"
	"testing"

	"thymesisflow/internal/mem"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

func smallHostConfig(name string) HostConfig {
	cfg := DefaultHostConfig(name)
	cfg.DRAMPerSocket = 4 << 30
	cfg.SectionSize = 1 << 20 // small sections keep tests fast
	cfg.RMMUSections = 64
	return cfg
}

func newTestCluster(t *testing.T) (*Cluster, *Host, *Host) {
	t.Helper()
	c := NewCluster()
	a, err := c.AddHost(smallHostConfig("hostA"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddHost(smallHostConfig("hostB"))
	if err != nil {
		t.Fatal(err)
	}
	return c, a, b
}

func TestAttachCreatesNUMANode(t *testing.T) {
	c, a, b := newTestCluster(t)
	att, err := c.Attach(AttachSpec{ComputeHost: "hostA", DonorHost: "hostB", Bytes: 4 << 20, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	node := a.Mem.Node(att.Node)
	if node == nil || !node.CPULess {
		t.Fatal("attachment did not create a CPU-less NUMA node")
	}
	if node.Capacity != 4<<20 {
		t.Fatalf("node capacity = %d, want %d", node.Capacity, 4<<20)
	}
	if node.Distance <= 10 {
		t.Fatalf("remote node distance = %d, want > local 10", node.Distance)
	}
	if len(att.Sections) != 4 {
		t.Fatalf("sections = %d, want 4", len(att.Sections))
	}
	// Donor capacity shrank by the stolen amount.
	if got := b.Mem.Node(b.LocalNode(0)).Capacity; got != 4<<30-4<<20 {
		t.Fatalf("donor capacity = %d", got)
	}
	// Allocation on the disaggregated node works.
	if _, err := a.Mem.Alloc(1<<20, numa.Local(att.Node)); err != nil {
		t.Fatalf("alloc on disaggregated node: %v", err)
	}
}

func TestAttachRoundsUpToSections(t *testing.T) {
	c, _, _ := newTestCluster(t)
	att, err := c.Attach(AttachSpec{ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1<<20 + 1})
	if err != nil {
		t.Fatal(err)
	}
	if att.Bytes != 2<<20 {
		t.Fatalf("attachment bytes = %d, want 2 MiB", att.Bytes)
	}
}

func TestAttachValidation(t *testing.T) {
	c, _, _ := newTestCluster(t)
	if _, err := c.Attach(AttachSpec{ComputeHost: "hostA", DonorHost: "hostA", Bytes: 1 << 20}); err == nil {
		t.Fatal("self-attach accepted")
	}
	if _, err := c.Attach(AttachSpec{ComputeHost: "hostA", DonorHost: "nope", Bytes: 1 << 20}); err == nil {
		t.Fatal("unknown donor accepted")
	}
	if _, err := c.Attach(AttachSpec{ComputeHost: "hostA", DonorHost: "hostB", Bytes: 0}); err == nil {
		t.Fatal("zero-byte attach accepted")
	}
	if _, err := c.Attach(AttachSpec{ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 40}); err == nil {
		t.Fatal("attach beyond donor capacity accepted")
	}
}

func TestFunctionalLoadStoreThroughDatapath(t *testing.T) {
	c, _, _ := newTestCluster(t)
	att, err := c.Attach(AttachSpec{
		ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 20, Channels: 1, Backing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5A}, 128)
	var got []byte
	c.K.Go("app", func(p *sim.Proc) {
		if err := c.Store(p, att, 4096, want); err != nil {
			t.Error(err)
			return
		}
		data, err := c.Load(p, att, 4096, 128)
		if err != nil {
			t.Error(err)
			return
		}
		got = data
	})
	c.K.RunUntil(sim.Millisecond)
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted through full cluster datapath")
	}
}

func TestBondedAttachmentUsesBothChannels(t *testing.T) {
	c, _, _ := newTestCluster(t)
	att, err := c.Attach(AttachSpec{
		ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 20, Channels: 2, Backing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !att.Bonded {
		t.Fatal("two-channel attachment not marked bonded")
	}
	c.K.Go("app", func(p *sim.Proc) {
		buf := make([]byte, 128)
		for i := int64(0); i < 16; i++ {
			if err := c.Store(p, att, i*128, buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	c.K.RunUntil(sim.Millisecond)
	s0 := att.computePorts[0].Stats().TxTransactions
	s1 := att.computePorts[1].Stats().TxTransactions
	if s0 == 0 || s1 == 0 {
		t.Fatalf("bonding did not spread transactions: %d/%d", s0, s1)
	}
}

func TestDetachRestoresEverything(t *testing.T) {
	c, a, b := newTestCluster(t)
	att, err := c.Attach(AttachSpec{ComputeHost: "hostA", DonorHost: "hostB", Bytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Allocate pages on the remote node so detach has to migrate them.
	if _, err := a.Mem.Alloc(1<<20, numa.Local(att.Node)); err != nil {
		t.Fatal(err)
	}
	if err := c.Detach(att.ID); err != nil {
		t.Fatal(err)
	}
	if a.Mem.Node(att.Node) != nil {
		t.Fatal("NUMA node survives detach")
	}
	if got := b.Mem.Node(b.LocalNode(0)).Capacity; got != 4<<30 {
		t.Fatalf("donor capacity not restored: %d", got)
	}
	// Pages were migrated locally, not lost.
	if pages := a.Mem.PagesOn(a.LocalNode(0)); pages != (1<<20)/a.Mem.PageSize {
		t.Fatalf("migrated pages = %d", pages)
	}
	if len(c.Attachments()) != 0 {
		t.Fatal("attachment list not empty")
	}
	if err := c.Detach(att.ID); err == nil {
		t.Fatal("double detach accepted")
	}
	// The freed RMMU/router state allows a fresh attachment.
	if _, err := c.Attach(AttachSpec{ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 20}); err != nil {
		t.Fatalf("re-attach after detach: %v", err)
	}
}

func TestTestbedConfigs(t *testing.T) {
	for _, cfg := range AllConfigs() {
		tb, err := NewTestbed(cfg, 64<<20)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if got := len(tb.ServerInstances()); (cfg == ConfigScaleOut) != (got == 2) {
			t.Fatalf("%v: %d instances", cfg, got)
		}
		placer := tb.Placer()
		if placer == nil {
			t.Fatalf("%v: nil placer", cfg)
		}
		// Allocate a buffer and check placement matches the configuration.
		buf, err := tb.Server.Mem.Alloc(8*tb.Server.Mem.PageSize, placer)
		if err != nil {
			t.Fatalf("%v: alloc: %v", cfg, err)
		}
		remote := int64(0)
		for pg := int64(0); pg < 8; pg++ {
			id := tb.Server.Mem.NodeOf(buf.Addr(pg * tb.Server.Mem.PageSize))
			if tb.Server.Mem.Node(id).CPULess {
				remote++
			}
		}
		switch cfg {
		case ConfigLocal, ConfigScaleOut:
			if remote != 0 {
				t.Fatalf("%v: %d remote pages", cfg, remote)
			}
		case ConfigSingleDisaggregated, ConfigBondingDisaggregated:
			if remote != 8 {
				t.Fatalf("%v: %d remote pages, want 8", cfg, remote)
			}
		case ConfigInterleaved:
			if remote != 4 {
				t.Fatalf("%v: %d remote pages, want 4", cfg, remote)
			}
		}
	}
}

func TestLatencyOrderingAcrossConfigs(t *testing.T) {
	// A demand miss on the disaggregated node must cost ~RTT more than a
	// local miss, and the bonded attachment must not be slower than single.
	lat := func(cfg MemoryConfig) sim.Time {
		tb, err := NewTestbed(cfg, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := tb.Server.Mem.Alloc(1<<20, tb.Placer())
		if err != nil {
			t.Fatal(err)
		}
		var l sim.Time
		tb.Cluster.K.Go("probe", func(p *sim.Proc) {
			th := tb.Server.NewThread(0)
			l = th.Access(p, buf.Addr(0), 8, false)
		})
		tb.Cluster.K.Run()
		return l
	}
	local := lat(ConfigLocal)
	single := lat(ConfigSingleDisaggregated)
	if single < local+900*sim.Nanosecond {
		t.Fatalf("single (%v) should exceed local (%v) by ~950ns RTT", single, local)
	}
	_ = mem.CachelineSize
}

func TestAppNodesPerConfig(t *testing.T) {
	for _, cfg := range AllConfigs() {
		tb, err := NewTestbed(cfg, 64<<20)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		nodes := tb.AppNodes(tb.Server)
		switch cfg {
		case ConfigInterleaved:
			if len(nodes) != 2 {
				t.Fatalf("%v: nodes = %v, want local+remote", cfg, nodes)
			}
		case ConfigSingleDisaggregated, ConfigBondingDisaggregated:
			if len(nodes) != 1 || !tb.Server.Mem.Node(nodes[0]).CPULess {
				t.Fatalf("%v: nodes = %v, want the disaggregated node", cfg, nodes)
			}
		default:
			if len(nodes) != 1 || tb.Server.Mem.Node(nodes[0]).CPULess {
				t.Fatalf("%v: nodes = %v, want local", cfg, nodes)
			}
		}
		// Scale-out second instance always allocates locally.
		if cfg == ConfigScaleOut {
			n := tb.AppNodes(tb.Donor)
			if len(n) != 1 || tb.Donor.Mem.Node(n[0]).CPULess {
				t.Fatalf("scale-out donor instance nodes = %v", n)
			}
		}
	}
}
