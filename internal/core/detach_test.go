package core

import (
	"testing"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/endpoint"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// TestBeginDetachDrainsOutstanding starts a graceful detach while a worker
// has requests in flight: in-flight requests must complete normally, new
// requests must be rejected, and teardown must finish only after the drain.
func TestBeginDetachDrainsOutstanding(t *testing.T) {
	c, a, _ := newTestCluster(t)
	att, err := c.Attach(AttachSpec{
		ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 20, Backing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var completed, rejected int
	c.K.Go("worker", func(p *sim.Proc) {
		buf := make([]byte, capi.Cacheline)
		for i := 0; i < 200; i++ {
			capi.FillPattern(buf, uint64(i))
			if err := c.Store(p, att, int64(i)*capi.Cacheline, buf); err != nil {
				rejected++
				return
			}
			completed++
		}
	})
	var detachErr error
	detachDone := false
	c.K.Schedule(20*sim.Microsecond, func() {
		if err := c.BeginDetach(att.ID, false, func(e error) {
			detachErr = e
			detachDone = true
		}); err != nil {
			t.Error(err)
		}
		if att.State() != StateDraining {
			t.Errorf("state after BeginDetach = %v", att.State())
		}
	})
	c.K.RunUntil(100 * sim.Millisecond)
	if !detachDone || detachErr != nil {
		t.Fatalf("detach done=%v err=%v", detachDone, detachErr)
	}
	if att.State() != StateDetached {
		t.Fatalf("state = %v, want detached", att.State())
	}
	if completed == 0 || rejected != 1 {
		t.Fatalf("completed=%d rejected=%d; want some completions and exactly one rejection", completed, rejected)
	}
	if _, ok := c.Attachment(att.ID); ok {
		t.Fatal("attachment still registered after detach")
	}
	// Donor capacity fully restored.
	if got := c.hosts["hostB"].Mem.Node(c.hosts["hostB"].LocalNode(0)).Capacity; got != 4<<30 {
		t.Fatalf("donor capacity = %d after detach", got)
	}
	_ = a
}

// TestBeginDetachForceFaultsInFlight forces a detach under load: the
// worker's blocked request must complete with ErrDetaching instead of
// hanging, and teardown must proceed immediately.
func TestBeginDetachForceFaultsInFlight(t *testing.T) {
	c, _, _ := newTestCluster(t)
	att, err := c.Attach(AttachSpec{
		ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 20, Backing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var workerErr error
	c.K.Go("worker", func(p *sim.Proc) {
		for i := 0; i < 10000; i++ {
			if _, err := c.Load(p, att, 0, capi.Cacheline); err != nil {
				workerErr = err
				return
			}
		}
	})
	detachDone := false
	c.K.Schedule(10*sim.Microsecond, func() {
		if err := c.BeginDetach(att.ID, true, func(e error) {
			if e != nil {
				t.Errorf("forced detach failed: %v", e)
			}
			detachDone = true
		}); err != nil {
			t.Error(err)
		}
	})
	c.K.RunUntil(10 * sim.Millisecond)
	if !detachDone {
		t.Fatal("forced detach did not complete")
	}
	if workerErr != ErrDetaching && workerErr != nil {
		// The worker was either mid-flight (faulted with ErrDetaching) or
		// between requests (rejected by the state gate) — both must error.
		t.Logf("worker saw state-gate error: %v", workerErr)
	}
	if workerErr == nil {
		t.Fatal("worker never observed the detach")
	}
	if c.hosts["hostA"].Compute.Outstanding() != 0 {
		t.Fatal("outstanding requests leaked through forced detach")
	}
}

// TestLinkDownEscalationSurfaces kills an attachment's link mid-traffic: the
// LLC must escalate, outstanding requests must fault with ErrLinkDown, and
// the attachment state must read link-down.
func TestLinkDownEscalationSurfaces(t *testing.T) {
	c, _, _ := newTestCluster(t)
	cfg := llc.DefaultConfig()
	cfg.ReplayTimeout = sim.Microsecond
	cfg.MaxReplayAttempts = 8
	att, err := c.Attach(AttachSpec{
		ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 20, Backing: true, LLC: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Clean until 20 us, then the link dies completely.
	c.ApplyFaultSchedule(att, phy.FaultSchedule{
		Windows: []phy.Window{{From: 20 * sim.Microsecond, To: sim.Time(1 << 62), DropProb: 1}},
	})
	var workerErr error
	c.K.Go("worker", func(p *sim.Proc) {
		for i := 0; i < 10000; i++ {
			if _, err := c.Load(p, att, 0, capi.Cacheline); err != nil {
				workerErr = err
				return
			}
		}
	})
	c.K.RunUntil(50 * sim.Millisecond)
	if att.State() != StateLinkDown {
		t.Fatalf("state = %v, want link-down", att.State())
	}
	if workerErr != endpoint.ErrLinkDown {
		t.Fatalf("worker error = %v, want ErrLinkDown", workerErr)
	}
	down := false
	for _, p := range att.Ports() {
		if p.Down() || (p.Peer() != nil && p.Peer().Down()) {
			down = true
		}
	}
	if !down {
		t.Fatal("no LLC port is down despite escalation")
	}
}

// TestApplyFaultScheduleIsReproducible installs the same schedule twice on
// identical clusters and requires identical protocol stats.
func TestApplyFaultScheduleIsReproducible(t *testing.T) {
	run := func() llc.Stats {
		c, _, _ := newTestCluster(t)
		att, err := c.Attach(AttachSpec{
			ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 20, Backing: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.ApplyFaultSchedule(att, phy.FaultSchedule{
			Base: phy.FaultConfig{DropProb: 0.05, CorruptProb: 0.05, Seed: 77},
		})
		c.K.Go("worker", func(p *sim.Proc) {
			buf := make([]byte, capi.Cacheline)
			for i := 0; i < 100; i++ {
				capi.FillPattern(buf, uint64(i))
				if err := c.Store(p, att, int64(i)*capi.Cacheline, buf); err != nil {
					t.Error(err)
					return
				}
			}
		})
		c.K.RunUntil(100 * sim.Millisecond)
		return att.Ports()[0].Stats()
	}
	if run() != run() {
		t.Fatal("scheduled fault runs diverged")
	}
}
