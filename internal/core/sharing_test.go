package core

import (
	"testing"

	"thymesisflow/internal/sim"
)

func sharingCluster(t *testing.T) (*Cluster, *Attachment, *Attachment) {
	t.Helper()
	c, _, _ := newTestCluster(t)
	base, err := c.Attach(AttachSpec{
		ComputeHost: "hostA", DonorHost: "hostB", Bytes: 2 << 20, Backing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := c.Attach(AttachSpec{
		ComputeHost: "hostA", DonorHost: "hostB", Bytes: 2 << 20, Backing: true,
		ShareChannelsWith: base.ID, QoSWeight: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, base, shared
}

func TestSharedChannelsReusePorts(t *testing.T) {
	_, base, shared := sharingCluster(t)
	if len(shared.computePorts) != len(base.computePorts) {
		t.Fatal("shared attachment has its own ports")
	}
	for i := range shared.computePorts {
		if shared.computePorts[i] != base.computePorts[i] {
			t.Fatal("shared attachment not using the base ports")
		}
	}
	// The analytic backends contend on the same pipes.
	if shared.Backend.Channels()[0] != base.Backend.Channels()[0] {
		t.Fatal("shared backend has private channel pipes")
	}
	if base.sharers != 1 {
		t.Fatalf("base sharers = %d", base.sharers)
	}
}

func TestSharedFlowsIsolatedData(t *testing.T) {
	c, base, shared := sharingCluster(t)
	c.K.Go("app", func(p *sim.Proc) {
		if err := c.Store(p, base, 0, fill(128, 0x11)); err != nil {
			t.Error(err)
			return
		}
		if err := c.Store(p, shared, 0, fill(128, 0x22)); err != nil {
			t.Error(err)
			return
		}
		a, err := c.Load(p, base, 0, 128)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := c.Load(p, shared, 0, 128)
		if err != nil {
			t.Error(err)
			return
		}
		if a[0] != 0x11 || b[0] != 0x22 {
			t.Errorf("flow isolation violated over shared channels: %x %x", a[0], b[0])
		}
	})
	c.K.RunUntil(sim.Millisecond)
}

func TestSharedQoSWeights(t *testing.T) {
	_, base, shared := sharingCluster(t)
	q := shared.QoS()
	if q == nil || base.QoS() != q {
		t.Fatal("shared group has no common QoS arbiter")
	}
	if got := q.Share(shared.NetworkID) / q.Share(base.NetworkID); got < 2.9 || got > 3.1 {
		t.Fatalf("weight ratio = %.2f, want 3", got)
	}
}

func TestBaseDetachBlockedWhileShared(t *testing.T) {
	c, base, shared := sharingCluster(t)
	if err := c.Detach(base.ID); err == nil {
		t.Fatal("detached base while channels shared")
	}
	if err := c.Detach(shared.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Detach(base.ID); err != nil {
		t.Fatalf("detach base after sharer gone: %v", err)
	}
}

func TestShareValidation(t *testing.T) {
	c, _, _ := newTestCluster(t)
	if _, err := c.AddHost(smallHostConfig("hostC")); err != nil {
		t.Fatal(err)
	}
	base, err := c.Attach(AttachSpec{ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(AttachSpec{
		ComputeHost: "hostA", DonorHost: "hostB", Bytes: 1 << 20, ShareChannelsWith: "nope",
	}); err == nil {
		t.Fatal("sharing with unknown attachment accepted")
	}
	if _, err := c.Attach(AttachSpec{
		ComputeHost: "hostA", DonorHost: "hostC", Bytes: 1 << 20, ShareChannelsWith: base.ID,
	}); err == nil {
		t.Fatal("sharing across a different host pair accepted")
	}
	// Failed share attempts must not leak donor capacity.
	hb, _ := c.Host("hostB")
	if got := hb.Mem.Node(hb.LocalNode(0)).Capacity; got != 4<<30-1<<20 {
		t.Fatalf("donor capacity leaked: %d", got)
	}
}
