package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"thymesisflow/internal/metrics"
	"thymesisflow/internal/sim"
)

// TestShardHealthPrometheus pins the shard-runtime instruments: a sharded
// cluster publishes the shard.* gauges, the exposition is byte-identical
// across repeated seeded runs, and a sequential cluster publishes none of
// them (the gauges describe the parallel runtime, which doesn't exist at
// shards=1).
func TestShardHealthPrometheus(t *testing.T) {
	run := func(shards int) string {
		c := NewClusterShards(shards)
		hosts := make([]*Host, 3)
		for i := range hosts {
			h, err := c.AddHost(detHostConfig(fmt.Sprintf("m%02d", i)))
			if err != nil {
				t.Fatal(err)
			}
			hosts[i] = h
		}
		att, err := c.Attach(AttachSpec{
			ComputeHost: hosts[0].Name,
			DonorHost:   hosts[1].Name,
			Bytes:       1 << 20,
			Channels:    1,
			Backing:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		hosts[0].K.Go("shard-metrics-w", func(p *sim.Proc) {
			buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
			for o := 0; o < 16; o++ {
				p.Sleep(200 * sim.Nanosecond)
				if err := c.Store(p, att, int64(o)*128, buf); err != nil {
					return
				}
			}
		})
		c.Run()

		reg := metrics.NewRegistry()
		c.RegisterMetrics(reg, "")
		var buf bytes.Buffer
		if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	out := run(3)
	for _, want := range []string{
		"# TYPE shard_windows gauge\n",
		"shard_events_per_window ",
		"shard_flush_max_depth ",
		"shard_flushed_messages ",
		"shard_imbalance ",
		"shard_0_events ",
		"shard_2_barrier_stall_ns ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("sharded exposition missing %q:\n%s", want, out)
		}
	}
	// Golden property: the whole seeded scrape reproduces byte for byte.
	if again := run(3); again != out {
		t.Fatalf("seeded sharded scrape not byte-stable:\n%s\n---\n%s", out, again)
	}
	if seq := run(1); strings.Contains(seq, "shard_windows") {
		t.Fatalf("sequential cluster published shard gauges:\n%s", seq)
	}
}
