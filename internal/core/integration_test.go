package core

import (
	"testing"

	"thymesisflow/internal/mem"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// TestMultiDonorPooling attaches memory from two donors to one compute
// host and interleaves an allocation across both — the rack-scale pooling
// the paper motivates.
func TestMultiDonorPooling(t *testing.T) {
	c := NewCluster()
	if _, err := c.AddHost(smallHostConfig("compute")); err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"donorA", "donorB"} {
		if _, err := c.AddHost(smallHostConfig(d)); err != nil {
			t.Fatal(err)
		}
	}
	attA, err := c.Attach(AttachSpec{ComputeHost: "compute", DonorHost: "donorA", Bytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	attB, err := c.Attach(AttachSpec{ComputeHost: "compute", DonorHost: "donorB", Bytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if attA.NetworkID == attB.NetworkID {
		t.Fatal("attachments share a network ID")
	}
	host, _ := c.Host("compute")
	buf, err := host.Mem.Alloc(2<<20, numa.Interleave(attA.Node, attB.Node))
	if err != nil {
		t.Fatal(err)
	}
	if host.Mem.PagesOn(attA.Node) == 0 || host.Mem.PagesOn(attB.Node) == 0 {
		t.Fatal("interleave did not spread pages over both donors")
	}
	// Accesses route to the right donor backends.
	k := c.K
	k.Go("probe", func(p *sim.Proc) {
		th := host.NewThread(0)
		th.Access(p, buf.Addr(0), 8, false)
		th.Access(p, buf.Addr(host.Mem.PageSize), 8, false)
	})
	k.Run()
	if attA.Backend.Channels()[0].TotalBytes() == 0 {
		t.Fatal("donor A backend saw no traffic")
	}
	if attB.Backend.Channels()[0].TotalBytes() == 0 {
		t.Fatal("donor B backend saw no traffic")
	}
	// Detach both in reverse order.
	if err := c.Detach(attB.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Detach(attA.ID); err != nil {
		t.Fatal(err)
	}
}

// TestDonorServesTwoHosts shares one donor's memory between two compute
// hosts: two stolen regions, two flows, one shared C1 interface.
func TestDonorServesTwoHosts(t *testing.T) {
	c := NewCluster()
	for _, n := range []string{"computeA", "computeB", "donor"} {
		if _, err := c.AddHost(smallHostConfig(n)); err != nil {
			t.Fatal(err)
		}
	}
	attA, err := c.Attach(AttachSpec{ComputeHost: "computeA", DonorHost: "donor", Bytes: 2 << 20, Backing: true})
	if err != nil {
		t.Fatal(err)
	}
	attB, err := c.Attach(AttachSpec{ComputeHost: "computeB", DonorHost: "donor", Bytes: 2 << 20, Backing: true})
	if err != nil {
		t.Fatal(err)
	}
	donor, _ := c.Host("donor")
	if got := len(donor.Memory.Regions()); got != 2 {
		t.Fatalf("donor regions = %d, want 2", got)
	}
	// The two compute hosts write different data to their own regions;
	// isolation must hold.
	k := c.K
	k.Go("appA", func(p *sim.Proc) {
		c.Store(p, attA, 0, fill(128, 0xAA)) //nolint:errcheck
	})
	k.Go("appB", func(p *sim.Proc) {
		c.Store(p, attB, 0, fill(128, 0xBB)) //nolint:errcheck
	})
	k.RunUntil(sim.Millisecond)
	var gotA, gotB []byte
	k.Go("verify", func(p *sim.Proc) {
		gotA, _ = c.Load(p, attA, 0, 128)
		gotB, _ = c.Load(p, attB, 0, 128)
	})
	k.RunUntil(2 * sim.Millisecond)
	if gotA[0] != 0xAA || gotB[0] != 0xBB {
		t.Fatalf("cross-host isolation violated: A=%x B=%x", gotA[0], gotB[0])
	}
	// Both attachments share the donor's C1 pipe.
	if attA.Backend.StreamBandwidth() != attB.Backend.StreamBandwidth() {
		t.Fatal("backends disagree on the shared C1 ceiling")
	}
}

func fill(n int, b byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// TestHBMAttachSpec wires the Section VII HBM cache through the public
// attach path and observes re-access latency dropping.
func TestHBMAttachSpec(t *testing.T) {
	c := NewCluster()
	for _, n := range []string{"compute", "donor"} {
		if _, err := c.AddHost(smallHostConfig(n)); err != nil {
			t.Fatal(err)
		}
	}
	att, err := c.Attach(AttachSpec{
		ComputeHost: "compute", DonorHost: "donor",
		Bytes: 4 << 20, HBMCacheBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold := att.Backend.AccessAt(0x0, mem.CachelineSize, false)
	warm := att.Backend.AccessAt(0x0, mem.CachelineSize, false)
	if warm*3 > cold {
		t.Fatalf("HBM cache ineffective through AttachSpec: cold=%v warm=%v", cold, warm)
	}
}

// TestClusterWorkloadOverLossyLinks runs real loads/stores through a
// cluster whose links drop and corrupt frames: the LLC replay protocol
// must make the datapath lossless.
func TestClusterWorkloadOverLossyLinks(t *testing.T) {
	c := NewCluster()
	c.Faults = phy.FaultConfig{DropProb: 0.02, CorruptProb: 0.02, Seed: 5}
	for _, n := range []string{"compute", "donor"} {
		if _, err := c.AddHost(smallHostConfig(n)); err != nil {
			t.Fatal(err)
		}
	}
	att, err := c.Attach(AttachSpec{
		ComputeHost: "compute", DonorHost: "donor", Bytes: 2 << 20, Channels: 2, Backing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	c.K.Go("app", func(p *sim.Proc) {
		for i := 0; i < 60; i++ {
			data := fill(128, byte(i))
			if err := c.Store(p, att, int64(i)*128, data); err != nil {
				t.Error(err)
				return
			}
			got, err := c.Load(p, att, int64(i)*128, 128)
			if err != nil {
				t.Error(err)
				return
			}
			if got[0] != byte(i) {
				t.Errorf("iteration %d: data corrupted", i)
				return
			}
			completed++
		}
	})
	c.K.RunUntil(sim.Second)
	if completed != 60 {
		t.Fatalf("only %d/60 operations completed over lossy links", completed)
	}
}

// TestAttachManySections exercises a larger attachment (many RMMU sections
// and hotplug operations in one shot).
func TestAttachManySections(t *testing.T) {
	c := NewCluster()
	cfg := smallHostConfig("compute")
	cfg.RMMUSections = 128
	if _, err := c.AddHost(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost(smallHostConfig("donor")); err != nil {
		t.Fatal(err)
	}
	att, err := c.Attach(AttachSpec{ComputeHost: "compute", DonorHost: "donor", Bytes: 100 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(att.Sections) != 100 {
		t.Fatalf("sections = %d, want 100", len(att.Sections))
	}
	host, _ := c.Host("compute")
	if got := host.Hotplug.OnlineBytes(); got != 100<<20 {
		t.Fatalf("online bytes = %d", got)
	}
	if got := len(host.Compute.RMMU().MappedSections()); got != 100 {
		t.Fatalf("mapped sections = %d", got)
	}
	if err := c.Detach(att.ID); err != nil {
		t.Fatal(err)
	}
	if got := len(host.Compute.RMMU().MappedSections()); got != 0 {
		t.Fatalf("sections leaked after detach: %d", got)
	}
}
