package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"thymesisflow/internal/sim"
	"thymesisflow/internal/trace"
)

// The cross-shard determinism property: a seeded scenario must produce a
// byte-identical state digest and merged trace at ANY shard count,
// regardless of GOMAXPROCS — sharded == sequential, event for event. The
// scenario builds a random topology from the seed, drives seeded Load/Store
// flows from every compute host, optionally injects phy faults (exercising
// cross-shard replay), and optionally detaches an attachment mid-run.

type detTopology struct {
	name       string
	hosts      int
	attaches   int
	workers    int // per attachment
	ops        int // per worker
	corruptPct float64
	dropPct    float64
	detachMid  bool
}

var detTopologies = []detTopology{
	{name: "clean-4h", hosts: 4, attaches: 6, workers: 2, ops: 10},
	{name: "faulty-5h", hosts: 5, attaches: 7, workers: 2, ops: 8,
		corruptPct: 0.03, dropPct: 0.02, detachMid: true},
}

func detHostConfig(name string) HostConfig {
	cfg := DefaultHostConfig(name)
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	cfg.DRAMPerSocket = 256 << 20
	cfg.SectionSize = 1 << 20 // keep attach rounding (and donor footprint) small
	cfg.RMMUSections = 64
	return cfg
}

// runDetScenario executes one seeded scenario on the given shard count and
// returns the canonical digest.
func runDetScenario(t *testing.T, topo detTopology, seed int64, shards int) string {
	t.Helper()
	c := NewClusterShards(shards)
	c.Faults.Seed = seed
	c.Faults.CorruptProb = topo.corruptPct
	c.Faults.DropProb = topo.dropPct

	// One trace ring per kernel; LayerSim events are excluded from the
	// merge (queue depth is per-kernel by construction).
	kernels := c.Kernels()
	rings := make([]*trace.Ring, len(kernels))
	for i, k := range kernels {
		rings[i] = trace.NewRing(1 << 18)
		k.SetTracer(rings[i])
	}

	hosts := make([]*Host, topo.hosts)
	for i := range hosts {
		h, err := c.AddHost(detHostConfig(fmt.Sprintf("h%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = h
	}

	// Topology and flow schedules come from a setup-time PRNG, so they are
	// identical for every shard count.
	rng := rand.New(rand.NewSource(seed))
	type flow struct {
		att    *Attachment
		host   *Host
		sleeps []sim.Time
		isLoad []bool
		offs   []int64
	}
	var flows []flow
	atts := make([]*Attachment, 0, topo.attaches)
	for a := 0; a < topo.attaches; a++ {
		ci := rng.Intn(topo.hosts)
		di := (ci + 1 + rng.Intn(topo.hosts-1)) % topo.hosts
		att, err := c.Attach(AttachSpec{
			ComputeHost: hosts[ci].Name,
			DonorHost:   hosts[di].Name,
			Bytes:       1 << 20,
			Channels:    1 + rng.Intn(2),
			Backing:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		atts = append(atts, att)
		for w := 0; w < topo.workers; w++ {
			f := flow{att: att, host: hosts[ci]}
			for o := 0; o < topo.ops; o++ {
				f.sleeps = append(f.sleeps, sim.Time(rng.Intn(2000))*sim.Nanosecond)
				f.isLoad = append(f.isLoad, rng.Intn(2) == 0)
				f.offs = append(f.offs, int64(rng.Intn(1<<12))*128)
			}
			flows = append(flows, f)
		}
	}

	for i, f := range flows {
		f := f
		f.host.K.Go(fmt.Sprintf("det-w%d", i), func(p *sim.Proc) {
			buf := []byte{byte(i), byte(i >> 8), 3, 5, 7, 11, 13, 17}
			for o := range f.sleeps {
				p.Sleep(f.sleeps[o])
				if f.att.State() != StateActive {
					return
				}
				var err error
				if f.isLoad[o] {
					_, err = c.Load(p, f.att, f.offs[o], 64)
				} else {
					err = c.Store(p, f.att, f.offs[o], buf)
				}
				if err != nil && f.att.State() == StateActive {
					p.Kernel().Stop()
					return
				}
			}
		})
	}

	if topo.detachMid {
		// Detach the first attachment mid-run, driven from its compute
		// host's shard (the lifecycle invariant: one shard drives
		// cluster-level mutations at a time).
		victim := atts[0]
		ch := c.hosts[victim.ComputeHost]
		ch.K.Schedule(30*sim.Microsecond, func() {
			_ = c.BeginDetach(victim.ID, false, nil)
		})
	}

	c.Run()

	var b strings.Builder
	c.StateDigest(&b)
	writeMergedTrace(&b, rings)
	return b.String()
}

// writeMergedTrace merges per-kernel trace rings into one canonical stream:
// LayerSim events are dropped (dispatch spans and queue depths are
// per-kernel bookkeeping), the rest sort by every payload field. Ring
// sequence numbers are ignored — they depend on the shard layout.
func writeMergedTrace(b *strings.Builder, rings []*trace.Ring) {
	var evs []trace.Event
	for _, r := range rings {
		for _, e := range r.Snapshot() {
			if e.Layer == trace.LayerSim {
				continue
			}
			evs = append(evs, e)
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		a, c := evs[i], evs[j]
		if a.TS != c.TS {
			return a.TS < c.TS
		}
		if a.Layer != c.Layer {
			return a.Layer < c.Layer
		}
		if a.Name != c.Name {
			return a.Name < c.Name
		}
		if a.Ph != c.Ph {
			return a.Ph < c.Ph
		}
		if a.Dur != c.Dur {
			return a.Dur < c.Dur
		}
		return a.Value < c.Value
	})
	fmt.Fprintf(b, "trace %d events\n", len(evs))
	for _, e := range evs {
		fmt.Fprintf(b, "%d %s %s %c %d %g\n", e.TS, e.Layer, e.Name, e.Ph, e.Dur, e.Value)
	}
}

func TestShardedDeterminism(t *testing.T) {
	seeds := []int64{1, 42, 977, 31337}
	for _, topo := range detTopologies {
		for _, seed := range seeds {
			topo, seed := topo, seed
			t.Run(fmt.Sprintf("%s/seed%d", topo.name, seed), func(t *testing.T) {
				want := runDetScenario(t, topo, seed, 1)
				if !strings.Contains(want, "tx_frame") {
					t.Fatalf("scenario produced no traffic:\n%s", firstLines(want, 10))
				}
				for _, shards := range []int{2, 3, topo.hosts} {
					got := runDetScenario(t, topo, seed, shards)
					if got != want {
						t.Fatalf("digest at %d shards diverges from sequential\n%s",
							shards, digestDiff(want, got))
					}
				}
			})
		}
	}
}

// TestShardedDeterminismRepeated re-runs one sharded scenario several times
// in-process: the merge must not depend on goroutine scheduling.
func TestShardedDeterminismRepeated(t *testing.T) {
	topo := detTopologies[0]
	base := runDetScenario(t, topo, 7, 3)
	for i := 0; i < 3; i++ {
		if got := runDetScenario(t, topo, 7, 3); got != base {
			t.Fatalf("run %d diverged from first sharded run\n%s", i, digestDiff(base, got))
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// digestDiff renders the first few differing lines of two digests.
func digestDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  sequential: %s\n  sharded:    %s\n", i+1, w, g)
		if shown++; shown >= 8 {
			fmt.Fprintf(&b, "  ... (further differences suppressed)\n")
			break
		}
	}
	return b.String()
}
