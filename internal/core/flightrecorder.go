package core

import (
	"fmt"
	"sync"

	"thymesisflow/internal/llc"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/timeseries"
)

// DefaultFlightTick is the default datapath sampling period: 5 us of
// virtual time. Samples are taken at absolute grid multiples of the tick,
// after every event at or before the grid instant has executed, so the
// instants are well-defined regardless of how the run is sharded.
const DefaultFlightTick sim.Time = 5_000_000

// FlightOptions parameterizes EnableFlightRecorder.
type FlightOptions struct {
	// Capacity is the per-series ring capacity (0 = timeseries default).
	Capacity int
	// Tick is the virtual sampling period (0 = DefaultFlightTick).
	Tick sim.Time
}

// portSeries samples one LLC port (credit occupancy, replay depth, fenced
// state, stall/replay counters). Series handles are resolved once at
// registration so the per-tick path is lookup- and allocation-free.
type portSeries struct {
	port                                 *llc.Port
	credits, depth, down, stalls, replay *timeseries.Series
}

// chanSeries samples one phy channel direction (wire counters plus
// utilization derived from pipe byte deltas).
type chanSeries struct {
	ch                             *phy.Channel
	sent, dropped, corrupted, util *timeseries.Series
	prevBytes                      int64
	prevTS                         int64
}

// hostSeries samples one host's compute endpoint in-flight depth.
type hostSeries struct {
	h           *Host
	outstanding *timeseries.Series
}

// shardSampler is the per-shard target set: targets grouped by the shard
// whose kernel owns their state, which keeps the per-shard barrier-stall
// series wired to the right shard and the registration order deterministic.
type shardSampler struct {
	mu    sync.Mutex
	ports []*portSeries
	chans []*chanSeries
	hosts []*hostSeries
	stall *timeseries.Series // shard.<i>.barrier_stall_ns (nil unsharded)
}

// flightRecorder is the cluster-wide recorder state.
type flightRecorder struct {
	rec      *timeseries.Recorder
	tick     sim.Time
	lastTS   int64 // newest sampled instant; dedups phase-boundary samples
	samplers []*shardSampler
}

// EnableFlightRecorder switches on the fabric flight recorder: subsequent
// Cluster.Run/RunUntil calls advance the simulation in opts.Tick grid steps
// and record phy/llc/capi series for every host and attachment (plus a
// per-shard barrier-stall series when sharded) at each grid instant, while
// the shards are parked between conservative windows. Hosts and attachments
// added later are picked up automatically. Subsequent calls return the same
// recorder. A cluster that never calls this samples nothing and stays on
// the zero-overhead datapath — the recorder adds no simulation events
// either way, so a recorded run reproduces the unrecorded timeline exactly.
func (c *Cluster) EnableFlightRecorder(opts FlightOptions) *timeseries.Recorder {
	if c.flight != nil {
		return c.flight.rec
	}
	tick := opts.Tick
	if tick <= 0 {
		tick = DefaultFlightTick
	}
	kernels := c.Kernels()
	fr := &flightRecorder{
		rec:      timeseries.NewRecorder(opts.Capacity),
		tick:     tick,
		samplers: make([]*shardSampler, len(kernels)),
	}
	for si := range fr.samplers {
		fr.samplers[si] = &shardSampler{}
		if c.group != nil {
			fr.samplers[si].stall = fr.rec.Series(
				fmt.Sprintf("shard.%d.barrier_stall_ns", si), timeseries.Counter)
		}
	}
	c.flight = fr
	for _, name := range c.hostOrder {
		fr.addHost(c.ShardOf(name), c.hosts[name])
	}
	for _, id := range c.attachmentIDs() {
		fr.addAttachment(c, c.attachments[id])
	}
	return fr.rec
}

// sampleAll records one instant across every shard's target set. The caller
// (runSampled) guarantees the cluster is quiescent. Instants that do not
// advance past the newest sample are dropped — repeated RunUntil calls on a
// drained cluster would otherwise duplicate the boundary sample.
func (fr *flightRecorder) sampleAll(c *Cluster, now int64) {
	if now <= fr.lastTS {
		return
	}
	fr.lastTS = now
	for si := range fr.samplers {
		fr.sample(c, si, now)
	}
}

// FlightRecorder returns the cluster's recorder (nil when disabled).
func (c *Cluster) FlightRecorder() *timeseries.Recorder {
	if c.flight == nil {
		return nil
	}
	return c.flight.rec
}

func (fr *flightRecorder) addHost(si int, h *Host) {
	s := fr.samplers[si]
	hs := &hostSeries{
		h:           h,
		outstanding: fr.rec.Series("capi."+h.Name+".outstanding", timeseries.Gauge),
	}
	s.mu.Lock()
	s.hosts = append(s.hosts, hs)
	s.mu.Unlock()
}

// addAttachment registers the attachment's ports and channels with the
// shards that own each side: compute-side port state and the forward
// channel live on the compute host's kernel, the peer port and reverse
// channel on the donor's.
func (fr *flightRecorder) addAttachment(c *Cluster, att *Attachment) {
	csi, dsi := c.ShardOf(att.ComputeHost), c.ShardOf(att.DonorHost)
	for i, p := range att.computePorts {
		if p == nil {
			continue
		}
		fr.addPort(csi, p, fmt.Sprintf("llc.%s.p%d", att.ID, i))
		fr.addChan(csi, p.Channel(), fmt.Sprintf("phy.%s.c%d.fwd", att.ID, i))
		if peer := p.Peer(); peer != nil {
			fr.addPort(dsi, peer, fmt.Sprintf("llc.%s.q%d", att.ID, i))
			fr.addChan(dsi, peer.Channel(), fmt.Sprintf("phy.%s.c%d.rev", att.ID, i))
		}
	}
}

func (fr *flightRecorder) addPort(si int, p *llc.Port, prefix string) {
	ps := &portSeries{
		port:    p,
		credits: fr.rec.Series(prefix+".credits", timeseries.Gauge),
		depth:   fr.rec.Series(prefix+".replay_depth", timeseries.Gauge),
		down:    fr.rec.Series(prefix+".down", timeseries.Gauge),
		stalls:  fr.rec.Series(prefix+".credit_stalls", timeseries.Counter),
		replay:  fr.rec.Series(prefix+".tx_replayed", timeseries.Counter),
	}
	s := fr.samplers[si]
	s.mu.Lock()
	s.ports = append(s.ports, ps)
	s.mu.Unlock()
}

func (fr *flightRecorder) addChan(si int, ch *phy.Channel, prefix string) {
	if ch == nil {
		return
	}
	cs := &chanSeries{
		ch:        ch,
		sent:      fr.rec.Series(prefix+".sent", timeseries.Counter),
		dropped:   fr.rec.Series(prefix+".dropped", timeseries.Counter),
		corrupted: fr.rec.Series(prefix+".corrupted", timeseries.Counter),
		util:      fr.rec.Series(prefix+".util", timeseries.Gauge),
	}
	s := fr.samplers[si]
	s.mu.Lock()
	s.chans = append(s.chans, cs)
	s.mu.Unlock()
}

// sample records one grid instant's worth of series for one shard. Targets
// are snapshotted under the registration lock; the reads run while every
// shard is parked at the grid instant, so they observe a globally
// consistent, race-free state.
func (fr *flightRecorder) sample(c *Cluster, si int, now int64) {
	s := fr.samplers[si]
	s.mu.Lock()
	ports, chans, hosts := s.ports, s.chans, s.hosts
	s.mu.Unlock()
	for _, ps := range ports {
		ps.credits.Record(now, float64(ps.port.Credits()))
		ps.depth.Record(now, float64(ps.port.ReplayDepth()))
		down := 0.0
		if ps.port.Down() {
			down = 1
		}
		ps.down.Record(now, down)
		st := ps.port.Stats()
		ps.stalls.Record(now, float64(st.CreditStalls))
		ps.replay.Record(now, float64(st.TxReplayed))
	}
	for _, cs := range chans {
		sent, dropped, corrupted := cs.ch.Stats()
		cs.sent.Record(now, float64(sent))
		cs.dropped.Record(now, float64(dropped))
		cs.corrupted.Record(now, float64(corrupted))
		util := 0.0
		total := cs.ch.Pipe().TotalBytes()
		if dt := float64(now-cs.prevTS) * 1e-12; dt > 0 && cs.ch.Rate() > 0 {
			util = float64(total-cs.prevBytes) / (cs.ch.Rate() * dt)
		}
		cs.util.Record(now, util)
		cs.prevBytes, cs.prevTS = total, now
	}
	for _, hs := range hosts {
		hs.outstanding.Record(now, float64(hs.h.Compute.Outstanding()))
	}
	if s.stall != nil && c.group != nil {
		h := c.group.Health()
		if si < len(h.Shards) {
			s.stall.Record(now, float64(h.Shards[si].StallPS)/1e3)
		}
	}
}
