package core

import (
	"fmt"

	"thymesisflow/internal/ethernet"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/numa"
)

// MemoryConfig enumerates the five experimental configurations of the
// paper's evaluation (Section VI-A, Figure 4).
type MemoryConfig int

// The experimental configurations.
const (
	// ConfigLocal serves all memory from the application host's own DRAM.
	ConfigLocal MemoryConfig = iota
	// ConfigSingleDisaggregated satisfies all application memory from the
	// neighbour node over one 100 Gb/s ThymesisFlow channel.
	ConfigSingleDisaggregated
	// ConfigBondingDisaggregated is like single but bonds both channels
	// (200 Gb/s).
	ConfigBondingDisaggregated
	// ConfigInterleaved round-robins pages 50/50 between local and
	// disaggregated memory.
	ConfigInterleaved
	// ConfigScaleOut runs the application scaled across both server nodes
	// with purely local memory, communicating over 100 Gb/s Ethernet.
	ConfigScaleOut
)

var configNames = [...]string{
	"local", "single-disaggregated", "bonding-disaggregated", "interleaved", "scale-out",
}

// String returns the paper's name for the configuration.
func (c MemoryConfig) String() string {
	if int(c) < len(configNames) {
		return configNames[c]
	}
	return fmt.Sprintf("config(%d)", int(c))
}

// AllConfigs lists every configuration in presentation order.
func AllConfigs() []MemoryConfig {
	return []MemoryConfig{
		ConfigLocal, ConfigSingleDisaggregated, ConfigBondingDisaggregated,
		ConfigInterleaved, ConfigScaleOut,
	}
}

// Testbed is the paper's three-node experimental setup: two AC922 servers
// with ThymesisFlow FPGAs plus one client node (Section VI-A).
type Testbed struct {
	Cluster *Cluster
	// Server runs the application server side; Donor donates memory (and
	// hosts the second application instance under scale-out).
	Server *Host
	Donor  *Host
	Client *Host

	// Config is the active memory configuration.
	Config MemoryConfig
	// Att is the live attachment (nil for local and scale-out).
	Att *Attachment

	// ServerLink is the 100 Gb/s Ethernet between the server nodes
	// (scale-out traffic); ClientLink the 10 Gb/s client connectivity.
	ServerLink *ethernet.Conn
	ClientLink *ethernet.Conn
}

// NewTestbed assembles the three-node setup under one memory configuration.
// remoteBytes sizes the attachment for the disaggregated configurations.
func NewTestbed(cfg MemoryConfig, remoteBytes int64) (*Testbed, error) {
	return NewTestbedWith(cfg, remoteBytes, nil)
}

// NewTestbedWith is NewTestbed with a host-configuration hook applied to
// every node (e.g. to rescale caches alongside a scaled-down working set).
func NewTestbedWith(cfg MemoryConfig, remoteBytes int64, mutate func(*HostConfig)) (*Testbed, error) {
	return NewTestbedSpec(TestbedSpec{Config: cfg, RemoteBytes: remoteBytes, HostMutate: mutate})
}

// TestbedSpec parameterizes testbed construction beyond the common cases:
// per-host configuration and attachment extras (e.g. the HBM caching
// layer).
type TestbedSpec struct {
	Config       MemoryConfig
	RemoteBytes  int64
	HostMutate   func(*HostConfig)
	AttachMutate func(*AttachSpec)
	// Shards partitions the cluster into one simulation kernel per host
	// (conservative lookahead windows); 0 or 1 keeps the sequential kernel.
	// The Ethernet links stay on the cluster's root kernel either way, so
	// scale-out configurations should run sequentially.
	Shards int
}

// NewTestbedSpec assembles the three-node setup from a full specification.
func NewTestbedSpec(spec TestbedSpec) (*Testbed, error) {
	cfg, remoteBytes, mutate := spec.Config, spec.RemoteBytes, spec.HostMutate
	c := NewClusterShards(spec.Shards)
	mkHost := func(name string) (*Host, error) {
		hc := DefaultHostConfig(name)
		if mutate != nil {
			mutate(&hc)
		}
		return c.AddHost(hc)
	}
	server, err := mkHost("server0")
	if err != nil {
		return nil, err
	}
	donor, err := mkHost("server1")
	if err != nil {
		return nil, err
	}
	client, err := mkHost("client")
	if err != nil {
		return nil, err
	}
	tb := &Testbed{
		Cluster:    c,
		Server:     server,
		Donor:      donor,
		Client:     client,
		Config:     cfg,
		ServerLink: ethernet.DefaultServerLink(c.K, "eth100g"),
		ClientLink: ethernet.DefaultClientLink(c.K, "eth10g"),
	}
	attach := func(channels int) (*Attachment, error) {
		as := AttachSpec{
			ComputeHost: server.Name, DonorHost: donor.Name,
			Bytes: remoteBytes, Channels: channels,
		}
		if spec.AttachMutate != nil {
			spec.AttachMutate(&as)
		}
		return c.Attach(as)
	}
	switch cfg {
	case ConfigSingleDisaggregated, ConfigInterleaved:
		tb.Att, err = attach(1)
	case ConfigBondingDisaggregated:
		tb.Att, err = attach(2)
	case ConfigLocal, ConfigScaleOut:
		// No attachment.
	default:
		return nil, fmt.Errorf("core: unknown config %v", cfg)
	}
	if err != nil {
		return nil, err
	}
	return tb, nil
}

// Placer returns the page-placement policy an application buffer uses on
// the Server host under the testbed's configuration. Scale-out instances
// allocate locally on their own host (use numa.Local with that host's
// node).
func (tb *Testbed) Placer() numa.Placer {
	switch tb.Config {
	case ConfigSingleDisaggregated, ConfigBondingDisaggregated:
		return numa.Local(tb.Att.Node)
	case ConfigInterleaved:
		return numa.Interleave(tb.Server.LocalNode(0), tb.Att.Node)
	default:
		return numa.Local(tb.Server.LocalNode(0))
	}
}

// ServerInstances returns how many application-server instances run and on
// which hosts: two for scale-out, one otherwise. Note the paper's caveat:
// under scale-out the application gets twice the CPU cores of the
// disaggregated configurations.
func (tb *Testbed) ServerInstances() []*Host {
	if tb.Config == ConfigScaleOut {
		return []*Host{tb.Server, tb.Donor}
	}
	return []*Host{tb.Server}
}

// AppNodes returns the NUMA nodes an application on the given instance
// should allocate from.
func (tb *Testbed) AppNodes(instance *Host) []mem.NodeID {
	if tb.Config == ConfigInterleaved {
		return []mem.NodeID{instance.LocalNode(0), tb.Att.Node}
	}
	if tb.Att != nil && instance == tb.Server &&
		(tb.Config == ConfigSingleDisaggregated || tb.Config == ConfigBondingDisaggregated) {
		return []mem.NodeID{tb.Att.Node}
	}
	return []mem.NodeID{instance.LocalNode(0)}
}
