package core

import (
	"fmt"
	"io"
	"sort"

	"thymesisflow/internal/endpoint"
	"thymesisflow/internal/latency"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/phy"
	"thymesisflow/internal/route"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/sim/shard"
)

// Cluster is a rack of hosts joined by ThymesisFlow links. It owns the
// attach/detach lifecycle.
type Cluster struct {
	// K is the simulation kernel — with sharding enabled, shard 0's kernel.
	// Components must be driven from the kernel of the host that owns them
	// (Host.K); K remains correct for single-kernel clusters and for
	// processes running on shard-0 hosts.
	K *sim.Kernel

	hosts       map[string]*Host
	hostOrder   []string
	nextNetID   uint16
	nextAttach  int
	attachments map[string]*Attachment

	// Faults configures error injection on newly created links.
	Faults phy.FaultConfig

	// lat is the cluster-wide latency-attribution sink (nil = disabled).
	lat *latency.Sink

	// flight is the fabric flight recorder (nil = disabled).
	flight *flightRecorder

	// Sharded execution (nil group = classic single-kernel cluster; the
	// single-kernel code paths are byte-identical to the pre-sharding ones).
	group     *shard.Group
	hostShard map[string]int            // host name -> shard index
	shardIdx  map[*sim.Kernel]int       // kernel -> shard index
	ctrl      map[[2]int]*shard.Conduit // eager control-plane conduit mesh
	nextShard int
}

// ClusterOpts parameterizes cluster construction.
type ClusterOpts struct {
	// Shards > 1 partitions the cluster across that many simulation
	// kernels, advanced in conservative lookahead windows (see
	// internal/sim/shard and docs/PARALLEL_SIM.md). Hosts are placed
	// round-robin over shards in registration order. 0 or 1 selects the
	// classic single-kernel cluster.
	Shards int
	// Lookahead overrides the conservative window bound. It defaults to
	// phy.SerdesCrossing — the minimum one-way crossing of any link — and
	// must never exceed the smallest cross-shard link latency.
	Lookahead sim.Time
}

// NewCluster returns an empty cluster on a fresh kernel.
func NewCluster() *Cluster {
	return NewClusterOpts(ClusterOpts{})
}

// NewClusterShards returns a cluster partitioned over n simulation kernels
// (n <= 1 is the classic single-kernel cluster).
func NewClusterShards(n int) *Cluster {
	return NewClusterOpts(ClusterOpts{Shards: n})
}

// NewClusterOpts builds a cluster with explicit options.
func NewClusterOpts(opts ClusterOpts) *Cluster {
	c := &Cluster{
		hosts:       make(map[string]*Host),
		attachments: make(map[string]*Attachment),
		nextNetID:   1,
	}
	if opts.Shards > 1 {
		la := opts.Lookahead
		if la <= 0 {
			la = phy.SerdesCrossing
		}
		c.group = shard.NewGroup(opts.Shards, la)
		c.K = c.group.Shard(0).Kernel()
		c.hostShard = make(map[string]int)
		c.shardIdx = make(map[*sim.Kernel]int)
		// Control-plane conduit mesh, created eagerly so conduit IDs (part
		// of the deterministic merge order) don't depend on which lifecycle
		// event happens to cross shards first.
		c.ctrl = make(map[[2]int]*shard.Conduit)
		for i := 0; i < opts.Shards; i++ {
			c.shardIdx[c.group.Shard(i).Kernel()] = i
			for j := 0; j < opts.Shards; j++ {
				if i != j {
					c.ctrl[[2]int{i, j}] = c.group.Connect(c.group.Shard(i), c.group.Shard(j), la)
				}
			}
		}
	} else {
		c.K = sim.NewKernel()
	}
	return c
}

// Shards reports the number of simulation kernels the cluster runs on.
func (c *Cluster) Shards() int {
	if c.group == nil {
		return 1
	}
	return c.group.Len()
}

// ShardOf reports which shard a host lives on (always 0 when unsharded).
func (c *Cluster) ShardOf(host string) int {
	if c.hostShard == nil {
		return 0
	}
	return c.hostShard[host]
}

// Kernels returns the cluster's simulation kernels in shard order (length 1
// when unsharded). Tests attach one trace ring per kernel through this.
func (c *Cluster) Kernels() []*sim.Kernel {
	if c.group == nil {
		return []*sim.Kernel{c.K}
	}
	out := make([]*sim.Kernel, c.group.Len())
	for i := range out {
		out[i] = c.group.Shard(i).Kernel()
	}
	return out
}

// ShardHealth reports the shard runtime's health counters — windows
// executed, per-shard event split, barrier stall, conduit flush depth.
// ok is false when the cluster runs on a single kernel.
func (c *Cluster) ShardHealth() (shard.Health, bool) {
	if c.group == nil {
		return shard.Health{}, false
	}
	return c.group.Health(), true
}

// flightRunLimit bounds a recorded Run(): the sampling grid needs a finite
// limit to step toward, and stepping stops at queue drain exactly like an
// unbounded run would.
const flightRunLimit = sim.Time(1) << 62

// Run advances the cluster until all queues drain, returning the final
// virtual time. Sharded clusters step their kernels in conservative
// windows; unsharded ones run the kernel directly.
func (c *Cluster) Run() sim.Time {
	if c.flight != nil {
		return c.runSampled(flightRunLimit)
	}
	if c.group == nil {
		return c.K.Run()
	}
	return c.group.Run()
}

// RunUntil advances the cluster through virtual time limit (see
// sim.Kernel.RunUntil for clock semantics). With the flight recorder
// enabled the advance is chopped into sampling-grid steps; the event chain
// is identical either way.
func (c *Cluster) RunUntil(limit sim.Time) sim.Time {
	if c.flight != nil {
		return c.runSampled(limit)
	}
	return c.runUntil(limit)
}

func (c *Cluster) runUntil(limit sim.Time) sim.Time {
	if c.group == nil {
		return c.K.RunUntil(limit)
	}
	return c.group.RunUntil(limit)
}

// runSampled advances to limit in flight-recorder tick steps, sampling every
// registered series at each grid instant the run reaches. Sampling happens
// between windows, while all shards are parked at the grid time, so it never
// races the parallel runtime and observes a globally consistent state.
// Because sampling schedules no events, a recorded run executes the exact
// event chain of an unrecorded one — phases that end at queue drain (chaos
// read-back) keep their timing — and because grid instants are absolute
// multiples of the tick, the sample set is independent of shard count.
// Stepping stops at queue drain, matching RunUntil's early return.
func (c *Cluster) runSampled(limit sim.Time) sim.Time {
	fr := c.flight
	now := c.K.Now()
	for {
		next := (now/fr.tick + 1) * fr.tick
		if next > limit {
			now = c.runUntil(limit)
			break
		}
		now = c.runUntil(next)
		if now < next {
			// Drained (or stopped) short of the grid instant.
			break
		}
		fr.sampleAll(c, int64(next))
		if !c.pendingEvents() {
			break
		}
	}
	// One final sample at the phase boundary (queue drain or the limit):
	// off-grid, but the virtual end time is shard-invariant, and it captures
	// terminal transitions — a port fencing itself moments before the run
	// drains — that land after the last grid instant.
	fr.sampleAll(c, int64(now))
	return now
}

// pendingEvents reports whether any shard kernel still has live events
// queued. Only meaningful while the cluster is quiescent.
func (c *Cluster) pendingEvents() bool {
	for _, k := range c.Kernels() {
		if _, ok := k.NextAt(); ok {
			return true
		}
	}
	return false
}

// injectFrom runs fn on shard dst, ordered after the current instant on
// shard src plus the group lookahead — the cross-shard control-plane path
// (link-down fan-out, detach rollback). Same-shard calls run synchronously,
// preserving the single-kernel behavior exactly.
func (c *Cluster) injectFrom(src, dst int, fn func()) {
	if c.group == nil || src == dst {
		fn()
		return
	}
	cd := c.ctrl[[2]int{src, dst}]
	cd.Send(c.group.Shard(src).Kernel().Now()+c.group.Lookahead(), fn)
}

// AddHost creates and registers a host. Sharded clusters place hosts
// round-robin over the shards in registration order; a host's components
// all live on its shard's kernel (Host.K).
func (c *Cluster) AddHost(cfg HostConfig) (*Host, error) {
	if _, dup := c.hosts[cfg.Name]; dup {
		return nil, fmt.Errorf("core: host %q already exists", cfg.Name)
	}
	k := c.K
	si := 0
	if c.group != nil {
		si = c.nextShard % c.group.Len()
		c.nextShard++
		k = c.group.Shard(si).Kernel()
	}
	h, err := NewHost(k, cfg)
	if err != nil {
		return nil, err
	}
	if c.lat != nil {
		h.Compute.SetLatencySink(c.lat)
	}
	c.hosts[cfg.Name] = h
	c.hostOrder = append(c.hostOrder, cfg.Name)
	if c.hostShard != nil {
		c.hostShard[cfg.Name] = si
	}
	if c.flight != nil {
		c.flight.addHost(si, h)
	}
	return h, nil
}

// EnableLatency switches on per-stage latency attribution for every compute
// endpoint in the cluster (current and future hosts) and returns the shared
// sink. Subsequent calls return the same sink. Attribution costs one record
// allocation per transaction while enabled; a cluster that never calls this
// stays on the zero-overhead path.
func (c *Cluster) EnableLatency() *latency.Sink {
	if c.lat == nil {
		c.lat = latency.NewSink()
		for _, h := range c.hosts {
			h.Compute.SetLatencySink(c.lat)
		}
	}
	return c.lat
}

// LatencySink returns the cluster's attribution sink (nil when disabled).
func (c *Cluster) LatencySink() *latency.Sink { return c.lat }

// AttachmentBreakdown pairs one attachment with its latency breakdown.
type AttachmentBreakdown struct {
	Attachment string            `json:"attachment"`
	Compute    string            `json:"compute_host"`
	Donor      string            `json:"donor_host"`
	Breakdown  latency.Breakdown `json:"breakdown"`
}

// LatencyReport is the cluster-wide attribution snapshot the control plane
// serves on /v1/latency.
type LatencyReport struct {
	Enabled     bool                  `json:"enabled"`
	Overall     latency.Breakdown     `json:"overall"`
	Attachments []AttachmentBreakdown `json:"attachments,omitempty"`
}

// LatencyReport joins the sink's per-flow breakdowns with the attachments
// owning those flows (sorted by attachment ID). With attribution disabled it
// returns Enabled=false and empty breakdowns.
func (c *Cluster) LatencyReport() LatencyReport {
	if c.lat == nil {
		return LatencyReport{}
	}
	rep := LatencyReport{Enabled: true, Overall: c.lat.Snapshot()}
	for _, id := range c.attachmentIDs() {
		att := c.attachments[id]
		b, ok := c.lat.FlowSnapshot(att.NetworkID)
		if !ok {
			continue
		}
		rep.Attachments = append(rep.Attachments, AttachmentBreakdown{
			Attachment: att.ID,
			Compute:    att.ComputeHost,
			Donor:      att.DonorHost,
			Breakdown:  b,
		})
	}
	return rep
}

// Host returns a registered host.
func (c *Cluster) Host(name string) (*Host, error) {
	h, ok := c.hosts[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown host %q", name)
	}
	return h, nil
}

// Hosts returns hosts in registration order.
func (c *Cluster) Hosts() []*Host {
	out := make([]*Host, 0, len(c.hostOrder))
	for _, n := range c.hostOrder {
		out = append(out, c.hosts[n])
	}
	return out
}

// AttachState is the lifecycle state of an attachment. State transitions
// are driven entirely in virtual time, so campaigns observing them are
// deterministic.
type AttachState int

// Attachment lifecycle states.
const (
	// StateActive: the datapath is up and serving Load/Store traffic.
	StateActive AttachState = iota
	// StateDraining: a graceful detach has begun; new requests are rejected
	// while outstanding transactions complete.
	StateDraining
	// StateLinkDown: the LLC escalated (replay/probe exhaustion); the
	// datapath is fenced and outstanding transactions were faulted.
	StateLinkDown
	// StateDetached: teardown completed; the attachment no longer exists in
	// the cluster (the state survives on retained pointers for inspection).
	StateDetached
)

var attachStateNames = [...]string{"active", "draining", "link-down", "detached"}

// String returns the lower-case state name used in control-plane payloads.
func (s AttachState) String() string {
	if int(s) < len(attachStateNames) {
		return attachStateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrDetaching is the error outstanding transactions complete with when a
// forced detach fences the datapath underneath them.
var ErrDetaching = fmt.Errorf("core: attachment detaching")

// Attachment is one live disaggregated-memory binding: Bytes of the donor's
// memory appear as the CPU-less NUMA node Node on the compute host.
type Attachment struct {
	ID          string
	ComputeHost string
	DonorHost   string
	Bytes       int64
	Channels    int
	Bonded      bool
	NetworkID   uint16

	// Node is the CPU-less NUMA node on the compute host backed by the
	// donor's memory.
	Node mem.NodeID
	// Backend prices accesses through the ThymesisFlow datapath.
	Backend *endpoint.RemoteBackend
	// Region is the pinned donor memory.
	Region *endpoint.StolenRegion
	// Sections are the hotplug section bases on the compute host.
	Sections []uint64
	// DeviceBase is the first device-internal address of the mapping (for
	// functional Load/Store through the transaction datapath).
	DeviceBase uint64

	computePorts []*llc.Port
	state        AttachState
	// qos shapes this flow when it shares channels with other attachments;
	// sharers counts attachments reusing this one's channels.
	qos        *route.QoS
	sharedBase string
	sharers    int
}

// QoS returns the shaping arbiter of the attachment's channel group (nil
// when the channels are dedicated).
func (a *Attachment) QoS() *route.QoS { return a.qos }

// State returns the attachment's lifecycle state.
func (a *Attachment) State() AttachState { return a.state }

// Ports returns the compute-side LLC ports, one per channel. Campaign
// engines reach through them (Port.Channel, Port.Peer) to install fault
// schedules and read protocol stats.
func (a *Attachment) Ports() []*llc.Port { return a.computePorts }

// TrafficStats aggregates an attachment's observable datapath counters.
type TrafficStats struct {
	// Transaction-path counters (functional Load/Store traffic).
	TxTransactions int64 `json:"tx_transactions"`
	TxFrames       int64 `json:"tx_frames"`
	TxReplayed     int64 `json:"tx_replayed"`
	RxCRCErrors    int64 `json:"rx_crc_errors"`
	CreditStalls   int64 `json:"credit_stalls"`
	// Analytic-path counters (workload traffic priced via the backend).
	BackendBytes int64 `json:"backend_bytes"`
	// HBM cache counters (zero when the layer is disabled).
	HBMHits   int64 `json:"hbm_hits"`
	HBMMisses int64 `json:"hbm_misses"`
}

// Traffic returns the attachment's current counters.
func (a *Attachment) Traffic() TrafficStats {
	var ts TrafficStats
	for _, p := range a.computePorts {
		st := p.Stats()
		ts.TxTransactions += st.TxTransactions
		ts.TxFrames += st.TxFrames
		ts.TxReplayed += st.TxReplayed
		ts.RxCRCErrors += st.RxCRCErrors
		ts.CreditStalls += st.CreditStalls
	}
	for _, pipe := range a.Backend.Channels() {
		ts.BackendBytes += pipe.TotalBytes()
	}
	ts.HBMHits, ts.HBMMisses = a.Backend.HBMStats()
	return ts
}

// AttachSpec parameterizes an attachment.
type AttachSpec struct {
	ComputeHost string
	DonorHost   string
	Bytes       int64 // rounded up to whole sections
	Channels    int   // 1 = single-disaggregated, 2 = bonding-disaggregated
	// Backing allocates a real byte store at the donor so functional
	// Load/Store through the datapath verifies data integrity. Keep false
	// for large timing-only attachments.
	Backing bool
	// HBMCacheBytes, when positive, enables the Section VII hardware
	// caching layer on the compute endpoint: that much on-card HBM caches
	// remote lines in front of the network.
	HBMCacheBytes int64
	// ShareChannelsWith names an existing attachment (same compute and
	// donor hosts) whose physical channels this flow reuses instead of
	// bringing up new links — the channel sharing of Section IV-A3. The
	// two active thymesisflows then contend on the shared wire.
	ShareChannelsWith string
	// QoSWeight assigns this flow's bandwidth weight within the shared
	// channel group (default 1). Only meaningful with sharing.
	QoSWeight int
	// LLC overrides the protocol parameters of newly created links (nil
	// selects llc.DefaultConfig). Campaigns shrink the credit window or the
	// escalation budget to provoke starvation and link-down paths quickly.
	LLC *llc.Config
}

// Attach performs the full software-defined attachment: donor-side steal
// (C1/PASID), per-section RMMU mappings, routing-layer flow with optional
// bonding, LLC/phy channel bring-up, hotplug probe+online, and CPU-less
// NUMA node creation on the compute host.
func (c *Cluster) Attach(spec AttachSpec) (*Attachment, error) {
	if spec.ComputeHost == spec.DonorHost {
		return nil, fmt.Errorf("core: compute and donor host are both %q", spec.ComputeHost)
	}
	ch, err := c.Host(spec.ComputeHost)
	if err != nil {
		return nil, err
	}
	dh, err := c.Host(spec.DonorHost)
	if err != nil {
		return nil, err
	}
	if spec.Channels <= 0 {
		spec.Channels = 1
	}
	if spec.Bytes <= 0 {
		return nil, fmt.Errorf("core: attach of %d bytes", spec.Bytes)
	}
	secSize := ch.Cfg.SectionSize
	sections := int((spec.Bytes + secSize - 1) / secSize)
	bytes := int64(sections) * secSize

	// Donor side: pin memory and register the PASID with the C1 endpoint.
	if free := dh.FreeLocalBytes(); free < bytes {
		return nil, fmt.Errorf("core: donor %q has %d bytes free, need %d", dh.Name, free, bytes)
	}
	donorBase := dh.nextDonorBase
	region, err := dh.Memory.Steal("tf-agent", donorBase, bytes, spec.Backing)
	if err != nil {
		return nil, err
	}
	dh.nextDonorBase += uint64(bytes)
	// Account the pinned memory against the donor's local capacity: stolen
	// memory is no longer available to the donor's own allocator.
	donorNode := dh.Mem.Node(dh.LocalNode(0))
	donorNode.Capacity -= bytes

	id := fmt.Sprintf("att-%d", c.nextAttach)
	c.nextAttach++
	netID := c.nextNetID
	c.nextNetID++
	bonded := spec.Channels > 1

	att := &Attachment{
		ID:          id,
		ComputeHost: ch.Name,
		DonorHost:   dh.Name,
		Bytes:       bytes,
		Channels:    spec.Channels,
		Bonded:      bonded,
		NetworkID:   netID,
		Region:      region,
	}

	var base *Attachment
	if spec.ShareChannelsWith != "" {
		// Channel sharing (Section IV-A3): reuse an existing flow's links.
		base = c.attachments[spec.ShareChannelsWith]
		if base == nil {
			c.rollbackDonor(dh, region, bytes)
			return nil, fmt.Errorf("core: share target %q not found", spec.ShareChannelsWith)
		}
		if base.ComputeHost != ch.Name || base.DonorHost != dh.Name {
			c.rollbackDonor(dh, region, bytes)
			return nil, fmt.Errorf("core: share target %q joins %s->%s, not %s->%s",
				base.ID, base.ComputeHost, base.DonorHost, ch.Name, dh.Name)
		}
		att.computePorts = base.computePorts
		att.Channels = base.Channels
		att.Bonded = base.Bonded
		bonded = base.Bonded
	} else {
		// Network bring-up: one LLC/phy link per channel. When compute and
		// donor live on different shards the link is the shard boundary:
		// each direction's channel runs on its transmit side's kernel and
		// deliveries cross on a dedicated conduit, so the wire latency
		// (>= the group lookahead) hides the synchronization window.
		split := c.group != nil && c.hostShard[ch.Name] != c.hostShard[dh.Name]
		csi, dsi := c.ShardOf(ch.Name), c.ShardOf(dh.Name)
		llcCfg := llc.DefaultConfig()
		if spec.LLC != nil {
			llcCfg = *spec.LLC
		}
		for i := 0; i < spec.Channels; i++ {
			f := c.Faults
			f.Seed += int64(i) * 7919
			name := fmt.Sprintf("%s-%s.ch%d", ch.Name, dh.Name, i)
			var link *phy.Link
			if split {
				link = phy.NewLinkSplit(ch.K, dh.K, name, phy.LanesPerChannel, phy.SerdesCrossing, f)
				link.AtoB.SetRemote(c.group.Connect(c.group.Shard(csi), c.group.Shard(dsi), phy.SerdesCrossing))
				link.BtoA.SetRemote(c.group.Connect(c.group.Shard(dsi), c.group.Shard(csi), phy.SerdesCrossing))
			} else {
				link = phy.NewLink(ch.K, name, phy.LanesPerChannel, phy.SerdesCrossing, f)
			}
			cp, mp := llc.NewPairOn(ch.K, dh.K, fmt.Sprintf("%s.llc%d", id, i), link, llcCfg)
			ch.Compute.AttachPort(cp)
			dh.Memory.AttachPort(mp)
			// Either side escalating fences the whole attachment: outstanding
			// transactions are faulted instead of hanging, and the state is
			// surfaced through the control plane. The donor-side escalation
			// reaches the compute side after one wire crossing — as a
			// timestamped control message when the hosts live on different
			// shards, and as a same-delay scheduled event on one kernel, so
			// the notification instant is identical at every shard count.
			cp.OnLinkDown = func() { c.onLinkDown(ch, cp) }
			mp.OnLinkDown = func() {
				if c.group != nil && dsi != csi {
					c.injectFrom(dsi, csi, func() { c.onLinkDown(ch, cp) })
					return
				}
				dh.K.Schedule(phy.SerdesCrossing, func() { c.onLinkDown(ch, cp) })
			}
			att.computePorts = append(att.computePorts, cp)
		}
	}
	if err := ch.Compute.Router().AddFlow(netID, att.computePorts...); err != nil {
		c.rollbackDonor(dh, region, bytes)
		return nil, err
	}
	if base != nil {
		// Shared channels are arbitrated by a per-group QoS: weights shape
		// each flow's share of the common wire.
		if base.qos == nil {
			var rate float64
			for _, p := range base.Backend.Channels() {
				rate += p.Rate()
			}
			base.qos = route.NewQoS(ch.K, rate)
			base.qos.SetWeight(base.NetworkID, 1) //nolint:errcheck
		}
		weight := spec.QoSWeight
		if weight <= 0 {
			weight = 1
		}
		if err := base.qos.SetWeight(netID, weight); err != nil {
			ch.Compute.Router().RemoveFlow(netID) //nolint:errcheck
			c.rollbackDonor(dh, region, bytes)
			return nil, err
		}
		att.qos = base.qos
		att.sharedBase = base.ID
		base.sharers++
	}

	// Compute side: map one RMMU section per hotplug section.
	firstSection := ch.nextSection
	att.DeviceBase = uint64(firstSection) * uint64(secSize)
	for i := 0; i < sections; i++ {
		sec := firstSection + i
		remoteBase := region.Base + uint64(i)*uint64(secSize)
		if err := ch.Compute.RMMU().Map(sec, remoteBase, netID, bonded); err != nil {
			for j := 0; j < i; j++ {
				ch.Compute.RMMU().Unmap(firstSection + j) //nolint:errcheck
			}
			ch.Compute.Router().RemoveFlow(netID) //nolint:errcheck
			if base != nil {
				base.qos.SetWeight(netID, 0) //nolint:errcheck
				base.sharers--
			}
			c.rollbackDonor(dh, region, bytes)
			return nil, err
		}
	}
	ch.nextSection += sections

	// OS side: CPU-less NUMA node + hotplug probe/online per section. The
	// analytic backend is compute-side bandwidth pricing; it reserves donor
	// C1 capacity synchronously, which is only possible when both hosts
	// share a kernel. Across shards it prices against a private C1 ceiling
	// instead (same rate, no cross-attachment donor contention — see
	// docs/PARALLEL_SIM.md for this modelling divergence).
	donorC1 := dh.Memory.C1Pipe()
	if c.group != nil && c.ShardOf(ch.Name) != c.ShardOf(dh.Name) {
		donorC1 = nil
	}
	if base != nil {
		// The analytic backend contends on the base flow's channel pipes,
		// exactly as the flows contend on the shared wire.
		att.Backend = endpoint.NewRemoteBackendWithPipes(ch.K, id+".backend",
			base.Backend.Channels(), donorC1, dh.Cfg.DRAMLatency)
	} else {
		att.Backend = endpoint.NewRemoteBackend(ch.K, id+".backend", spec.Channels,
			donorC1, dh.Cfg.DRAMLatency)
	}
	if spec.HBMCacheBytes > 0 {
		hc := endpoint.DefaultHBMConfig()
		hc.SizeBytes = spec.HBMCacheBytes
		att.Backend.EnableHBMCache(hc)
	}
	dist := int(10 * att.Backend.BaseLatency() / ch.Cfg.DRAMLatency)
	if dist > 250 {
		dist = 250
	}
	att.Node = ch.Mem.AddNode(&mem.Node{
		Name:     id + ".numa",
		Socket:   0,
		CPULess:  true,
		Capacity: 0, // grows as sections come online
		Backend:  att.Backend,
		Distance: dist,
	})
	for i := 0; i < sections; i++ {
		secBase := att.DeviceBase + uint64(i)*uint64(secSize)
		if _, err := ch.Hotplug.Probe(secBase, att.Node); err != nil {
			return nil, fmt.Errorf("core: hotplug probe: %w", err)
		}
		if err := ch.Hotplug.Online(secBase); err != nil {
			return nil, fmt.Errorf("core: hotplug online: %w", err)
		}
		att.Sections = append(att.Sections, secBase)
	}

	c.attachments[id] = att
	if c.flight != nil {
		c.flight.addAttachment(c, att)
	}
	return att, nil
}

func (c *Cluster) rollbackDonor(dh *Host, region *endpoint.StolenRegion, bytes int64) {
	dh.Memory.Release(region) //nolint:errcheck
	dh.Mem.Node(dh.LocalNode(0)).Capacity += bytes
}

// onLinkDown handles an LLC escalation on one of host ch's ports: every
// attachment routed over that port is fenced and the endpoint's outstanding
// transactions are faulted so blocked issuers wake with ErrLinkDown.
func (c *Cluster) onLinkDown(ch *Host, port *llc.Port) {
	for _, id := range c.attachmentIDs() {
		att := c.attachments[id]
		if att.ComputeHost != ch.Name {
			continue
		}
		for _, p := range att.computePorts {
			if p == port && att.state != StateDetached {
				att.state = StateLinkDown
			}
		}
	}
	ch.Compute.SetLinkDown()
	ch.Compute.FaultOutstanding(endpoint.ErrLinkDown)
}

// attachmentIDs returns live attachment IDs in sorted order so every
// cluster-wide walk is deterministic.
func (c *Cluster) attachmentIDs() []string {
	ids := make([]string, 0, len(c.attachments))
	for id := range c.attachments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ApplyFaultSchedule installs sched on every channel of the attachment, both
// directions, with per-channel derived seeds so multi-channel attachments
// draw independent but reproducible fault streams.
func (c *Cluster) ApplyFaultSchedule(att *Attachment, sched phy.FaultSchedule) {
	for i, p := range att.computePorts {
		fwd := sched
		fwd.Base.Seed = sched.Base.Seed + int64(i)*7919
		p.Channel().SetSchedule(fwd)
		if p.Peer() != nil {
			rev := sched
			rev.Base.Seed = sched.Base.Seed + int64(i)*7919 + 1
			p.Peer().Channel().SetSchedule(rev)
		}
	}
}

// drainPollInterval is how often a graceful detach re-checks the endpoint's
// outstanding-transaction count in virtual time.
const drainPollInterval = sim.Microsecond

// BeginDetach starts detaching an attachment while traffic may still be in
// flight. New Load/Store requests are rejected immediately (StateDraining).
// With force=false the detach completes once every outstanding transaction
// has drained; with force=true outstanding transactions are faulted with
// ErrDetaching and teardown proceeds at once. done (optional) is called in
// virtual time with the final teardown result.
func (c *Cluster) BeginDetach(id string, force bool, done func(error)) error {
	att, ok := c.attachments[id]
	if !ok {
		return fmt.Errorf("core: unknown attachment %q", id)
	}
	if att.state == StateDraining {
		return fmt.Errorf("core: attachment %q already draining", id)
	}
	ch := c.hosts[att.ComputeHost]
	att.state = StateDraining
	finish := func() {
		err := c.Detach(id)
		if err == nil {
			att.state = StateDetached
		}
		if done != nil {
			done(err)
		}
	}
	if force {
		ch.Compute.FaultOutstanding(ErrDetaching)
		ch.K.Schedule(0, finish)
		return nil
	}
	var poll func()
	poll = func() {
		if ch.Compute.Outstanding() == 0 {
			finish()
			return
		}
		ch.K.Schedule(drainPollInterval, poll)
	}
	ch.K.Schedule(0, poll)
	return nil
}

// Detach tears an attachment down. Pages still on the disaggregated node
// are migrated to the compute host's local node first (the OS-level path a
// planned removal takes); detach fails if local memory cannot absorb them.
func (c *Cluster) Detach(id string) error {
	att, ok := c.attachments[id]
	if !ok {
		return fmt.Errorf("core: unknown attachment %q", id)
	}
	if att.sharers > 0 {
		return fmt.Errorf("core: attachment %q still shares its channels with %d flows", id, att.sharers)
	}
	ch := c.hosts[att.ComputeHost]
	dh := c.hosts[att.DonorHost]

	if _, err := numa.Drain(ch.Mem, att.Node, ch.LocalNode(0)); err != nil {
		return fmt.Errorf("core: detach %s: %w", id, err)
	}
	for _, base := range att.Sections {
		if err := ch.Hotplug.Offline(base); err != nil {
			return err
		}
		if err := ch.Hotplug.Remove(base); err != nil {
			return err
		}
	}
	ch.Mem.RemoveNode(att.Node)
	secSize := ch.Cfg.SectionSize
	firstSection := int(att.DeviceBase / uint64(secSize))
	for i := range att.Sections {
		if err := ch.Compute.RMMU().Unmap(firstSection + i); err != nil {
			return err
		}
	}
	if err := ch.Compute.Router().RemoveFlow(att.NetworkID); err != nil {
		return err
	}
	if att.sharedBase != "" {
		att.qos.SetWeight(att.NetworkID, 0) //nolint:errcheck
		if b, ok := c.attachments[att.sharedBase]; ok {
			b.sharers--
		}
	}
	if csi, dsi := c.ShardOf(att.ComputeHost), c.ShardOf(att.DonorHost); csi != dsi {
		// The donor lives on another shard: release its pinned memory there,
		// one lookahead later, instead of reaching into its state mid-window.
		region, bytes := att.Region, att.Bytes
		c.injectFrom(csi, dsi, func() { c.rollbackDonor(dh, region, bytes) })
	} else {
		c.rollbackDonor(dh, att.Region, att.Bytes)
	}
	delete(c.attachments, id)
	att.state = StateDetached
	return nil
}

// Attachment returns a live attachment by ID.
func (c *Cluster) Attachment(id string) (*Attachment, bool) {
	a, ok := c.attachments[id]
	return a, ok
}

// Attachments lists live attachments sorted by ID.
func (c *Cluster) Attachments() []*Attachment {
	out := make([]*Attachment, 0, len(c.attachments))
	for _, a := range c.attachments {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// StateDigest writes a canonical plain-text dump of the cluster's
// deterministic end state: per-host endpoint counters and per-attachment
// LLC/phy/router statistics, in registration and sorted-ID order. The
// determinism tests compare the digest of a sharded run byte-for-byte
// against the sequential run's. Kernel clocks and the latency sink are
// deliberately excluded: per-shard clocks legitimately stop at different
// instants, and the sink's float sums depend on merge order.
func (c *Cluster) StateDigest(w io.Writer) {
	for _, name := range c.hostOrder {
		h := c.hosts[name]
		loads, stores := h.Compute.Stats()
		served, rejected := h.Memory.Stats()
		fwd, drop := h.Compute.Router().Stats()
		fmt.Fprintf(w, "host %s loads=%d stores=%d outstanding=%d faulted=%d served=%d rejected=%d fwd=%d drop=%d free=%d\n",
			name, loads, stores, h.Compute.Outstanding(), h.Compute.Faulted(), served, rejected, fwd, drop, h.FreeLocalBytes())
	}
	for _, id := range c.attachmentIDs() {
		att := c.attachments[id]
		fmt.Fprintf(w, "attachment %s state=%s traffic=%+v\n", id, att.state, att.Traffic())
		for i, p := range att.computePorts {
			fmt.Fprintf(w, "  port %d credits=%d stats=%+v\n", i, p.Credits(), p.Stats())
			if peer := p.Peer(); peer != nil {
				fmt.Fprintf(w, "  peer %d credits=%d stats=%+v\n", i, peer.Credits(), peer.Stats())
				s, d, cr := peer.Channel().Stats()
				fmt.Fprintf(w, "  rev-chan %d sent=%d dropped=%d corrupted=%d\n", i, s, d, cr)
			}
			s, d, cr := p.Channel().Stats()
			fmt.Fprintf(w, "  fwd-chan %d sent=%d dropped=%d corrupted=%d\n", i, s, d, cr)
		}
	}
}

// Load reads through the full transaction datapath (CPU -> RMMU -> routing
// -> LLC -> phy -> donor C1 -> back). off is a byte offset within the
// attachment.
func (c *Cluster) Load(p *sim.Proc, att *Attachment, off int64, size int32) ([]byte, error) {
	if att.state != StateActive {
		return nil, fmt.Errorf("core: load on attachment %s in state %s", att.ID, att.state)
	}
	if off < 0 || off+int64(size) > att.Bytes {
		return nil, fmt.Errorf("core: load offset %d+%d outside attachment of %d", off, size, att.Bytes)
	}
	if att.qos != nil {
		att.qos.Admit(p, att.NetworkID, int64(size))
	}
	ch := c.hosts[att.ComputeHost]
	return ch.Compute.Load(p, att.DeviceBase+uint64(off), size)
}

// Store writes through the full transaction datapath.
func (c *Cluster) Store(p *sim.Proc, att *Attachment, off int64, data []byte) error {
	if att.state != StateActive {
		return fmt.Errorf("core: store on attachment %s in state %s", att.ID, att.state)
	}
	if off < 0 || off+int64(len(data)) > att.Bytes {
		return fmt.Errorf("core: store offset %d+%d outside attachment of %d", off, len(data), att.Bytes)
	}
	if att.qos != nil {
		att.qos.Admit(p, att.NetworkID, int64(len(data)))
	}
	ch := c.hosts[att.ComputeHost]
	return ch.Compute.Store(p, att.DeviceBase+uint64(off), data)
}
