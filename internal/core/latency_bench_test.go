package core

import (
	"testing"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/sim"
)

// benchClusterLoads drives b.N synchronous cacheline loads through the full
// datapath (capi -> rmmu -> llc -> phy -> donor and back) inside one kernel
// process. With attrOn the latency-attribution sink is enabled, so the
// Off/On pair measures exactly what attribution costs per transaction — and
// documents that the disabled path stays on the pre-attribution allocation
// count (the nil-check discipline shared with internal/trace).
func benchClusterLoads(b *testing.B, attrOn bool) {
	tb, err := NewTestbed(ConfigSingleDisaggregated, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	if attrOn {
		tb.Cluster.EnableLatency()
	}
	c, att := tb.Cluster, tb.Att

	var loadErr error
	b.ReportAllocs()
	b.ResetTimer()
	c.K.Go("bench-loads", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			off := int64(i%256) * capi.Cacheline
			if _, err := c.Load(p, att, off, capi.Cacheline); err != nil {
				loadErr = err
				return
			}
		}
	})
	c.K.Run()
	b.StopTimer()
	if loadErr != nil {
		b.Fatal(loadErr)
	}
	if attrOn {
		if sink := c.LatencySink(); sink.Count() != int64(b.N) {
			b.Fatalf("sink observed %d round trips, want %d", sink.Count(), b.N)
		}
	}
}

func BenchmarkClusterLoadAttrOff(b *testing.B) { benchClusterLoads(b, false) }
func BenchmarkClusterLoadAttrOn(b *testing.B)  { benchClusterLoads(b, true) }

// BenchmarkClusterLoadRecorderOn measures the same load loop with the
// flight recorder sampling on the default grid (driven through Cluster.Run,
// the pump path). The delta against AttrOff is the whole recording cost;
// with the recorder off the run never touches the recorder code at all, so
// AttrOff doubles as the recorder-disabled allocation guard.
func BenchmarkClusterLoadRecorderOn(b *testing.B) {
	tb, err := NewTestbed(ConfigSingleDisaggregated, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	c, att := tb.Cluster, tb.Att
	c.EnableFlightRecorder(FlightOptions{})

	var loadErr error
	b.ReportAllocs()
	b.ResetTimer()
	c.K.Go("bench-loads", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			off := int64(i%256) * capi.Cacheline
			if _, err := c.Load(p, att, off, capi.Cacheline); err != nil {
				loadErr = err
				return
			}
		}
	})
	c.Run()
	b.StopTimer()
	if loadErr != nil {
		b.Fatal(loadErr)
	}
	if rec := c.FlightRecorder(); rec != nil {
		if _, points, _ := rec.Stats(); points == 0 {
			b.Fatal("recorder sampled nothing")
		}
	}
}
