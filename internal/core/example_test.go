package core_test

import (
	"fmt"

	"thymesisflow/internal/core"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

// Example shows the minimal attach-and-use flow: steal memory from a
// neighbour, get a CPU-less NUMA node, and allocate application pages on
// it.
func Example() {
	cluster := core.NewCluster()
	cluster.AddHost(core.DefaultHostConfig("compute")) //nolint:errcheck
	cluster.AddHost(core.DefaultHostConfig("donor"))   //nolint:errcheck

	att, err := cluster.Attach(core.AttachSpec{
		ComputeHost: "compute",
		DonorHost:   "donor",
		Bytes:       1 << 30,
		Channels:    2, // bonding-disaggregated
	})
	if err != nil {
		panic(err)
	}
	host, _ := cluster.Host("compute")
	node := host.Mem.Node(att.Node)
	fmt.Printf("CPU-less=%v bonded=%v capacity=%dGiB\n", node.CPULess, att.Bonded, node.Capacity>>30)

	buf, err := host.Mem.Alloc(256<<20, numa.Local(att.Node))
	if err != nil {
		panic(err)
	}
	fmt.Printf("allocated %d MiB of disaggregated memory\n", buf.Size>>20)

	// A demand miss pays the datapath round trip.
	cluster.K.Go("probe", func(p *sim.Proc) {
		th := host.NewThread(0)
		lat := th.Access(p, buf.Addr(0), 8, false)
		fmt.Printf("first-touch latency beyond 1us: %v\n", lat > sim.Microsecond)
	})
	cluster.K.Run()

	// Output:
	// CPU-less=true bonded=true capacity=1GiB
	// allocated 256 MiB of disaggregated memory
	// first-touch latency beyond 1us: true
}

// ExampleTestbed builds the paper's three-node experimental setup in one
// call and reports which placement policy the configuration implies.
func ExampleTestbed() {
	tb, err := core.NewTestbed(core.ConfigInterleaved, 1<<30)
	if err != nil {
		panic(err)
	}
	buf, err := tb.Server.Mem.Alloc(4*tb.Server.Mem.PageSize, tb.Placer())
	if err != nil {
		panic(err)
	}
	remote := 0
	for pg := int64(0); pg < 4; pg++ {
		id := tb.Server.Mem.NodeOf(buf.Addr(pg * tb.Server.Mem.PageSize))
		if tb.Server.Mem.Node(id).CPULess {
			remote++
		}
	}
	fmt.Printf("config=%v instances=%d remote-pages=%d/4\n",
		tb.Config, len(tb.ServerInstances()), remote)
	// Output:
	// config=interleaved instances=1 remote-pages=2/4
}
