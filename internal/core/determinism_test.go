package core

import (
	"fmt"
	"testing"

	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

// TestDeterministicClusterRuns exercises the repository's core guarantee:
// the same seeds produce bit-identical simulations, even over lossy links
// with replay and bonding in play.
func TestDeterministicClusterRuns(t *testing.T) {
	run := func() string {
		c := NewCluster()
		c.Faults = phy.FaultConfig{DropProb: 0.03, CorruptProb: 0.03, Seed: 77}
		for _, n := range []string{"a", "b"} {
			if _, err := c.AddHost(smallHostConfig(n)); err != nil {
				t.Fatal(err)
			}
		}
		att, err := c.Attach(AttachSpec{
			ComputeHost: "a", DonorHost: "b", Bytes: 2 << 20, Channels: 2, Backing: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		host, _ := c.Host("a")
		var stamps []sim.Time
		c.K.Go("app", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				if err := c.Store(p, att, int64(i)*128, fill(128, byte(i))); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Load(p, att, int64(i)*128, 128); err != nil {
					t.Error(err)
					return
				}
				stamps = append(stamps, p.Now())
			}
		})
		c.K.RunUntil(sim.Second)
		loads, stores := host.Compute.Stats()
		return fmt.Sprintf("%v loads=%d stores=%d end=%v", stamps, loads, stores, c.K.Now())
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, again, first)
		}
	}
}
