package core

import (
	"fmt"

	"thymesisflow/internal/latency"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/metrics"
)

// RegisterMetrics publishes the cluster's live telemetry into reg under the
// given prefix (may be empty). Gauges sample the simulation directly; LLC
// protocol counters are collected per attachment compute port on every
// registry snapshot, with interval deltas so registry counters track the
// ports exactly (see llc.RegisterMetrics for the single-port variant).
//
// Attachments created after registration are picked up automatically: the
// collector walks the live attachment set on every snapshot.
func (c *Cluster) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.GaugeFunc(prefix+"sim.queue_depth", func() float64 { return float64(c.K.Pending()) })
	reg.GaugeFunc(prefix+"sim.now_seconds", func() float64 { return c.K.Now().Seconds() })
	reg.GaugeFunc(prefix+"attachments", func() float64 { return float64(len(c.attachments)) })

	// Shard-runtime health (sharded clusters only): how evenly the
	// conservative-window runtime spreads work and how hard the barriers
	// bite. All derived from virtual time, so values are deterministic per
	// seed and shard count.
	if c.group != nil {
		g := c.group
		reg.GaugeFunc(prefix+"shard.windows", func() float64 {
			return float64(g.Health().Windows)
		})
		reg.GaugeFunc(prefix+"shard.events_per_window", func() float64 {
			return g.Health().EventsPerWindow
		})
		reg.GaugeFunc(prefix+"shard.flush_max_depth", func() float64 {
			return float64(g.Health().MaxFlushDepth)
		})
		reg.GaugeFunc(prefix+"shard.flushed_messages", func() float64 {
			return float64(g.Health().Flushed)
		})
		reg.GaugeFunc(prefix+"shard.imbalance", func() float64 {
			return g.Health().Imbalance
		})
		for i := 0; i < g.Len(); i++ {
			i := i
			reg.GaugeFunc(fmt.Sprintf("%sshard.%d.events", prefix, i), func() float64 {
				return float64(g.Health().Shards[i].Events)
			})
			reg.GaugeFunc(fmt.Sprintf("%sshard.%d.barrier_stall_ns", prefix, i), func() float64 {
				return float64(g.Health().Shards[i].StallPS) / 1e3
			})
		}
	}

	// Latency-attribution distributions surface as snapshot-time histogram
	// functions so the registry (and the Prometheus exposition built on it)
	// always reflects the sink, whether attribution was enabled before or
	// after registration. Disabled clusters report empty summaries.
	reg.HistogramFunc(prefix+"latency.rtt_ns", func() metrics.HistogramSummary {
		if c.lat == nil {
			return metrics.HistogramSummary{}
		}
		return c.lat.EndToEndSummary()
	})
	for _, st := range latency.Stages() {
		st := st
		reg.HistogramFunc(prefix+"latency.stage."+st.String()+"_ns", func() metrics.HistogramSummary {
			if c.lat == nil {
				return metrics.HistogramSummary{}
			}
			return c.lat.StageSummaryFor(st)
		})
	}

	prevPort := make(map[string]llc.Stats)
	prevBytes := make(map[string]int64)
	reg.AddCollector(func(r *metrics.Registry) {
		for _, att := range c.Attachments() {
			for i, p := range att.computePorts {
				key := fmt.Sprintf("%sllc.%s.port%d.", prefix, att.ID, i)
				cur := p.Stats()
				cur.Sub(prevPort[key]).AddTo(r, key)
				prevPort[key] = cur
			}
			var total int64
			for _, pipe := range att.Backend.Channels() {
				total += pipe.TotalBytes()
			}
			bkey := prefix + "backend." + att.ID + ".bytes"
			r.Counter(bkey).Add(total - prevBytes[att.ID])
			prevBytes[att.ID] = total
		}
	})
}
