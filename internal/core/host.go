// Package core is the public facade of the ThymesisFlow simulation: it
// assembles hosts (CPU, caches, NUMA memory, OpenCAPI endpoints) into a
// cluster and implements the full attach/detach lifecycle of disaggregated
// memory — donor-side stealing, RMMU configuration, routing-layer flows,
// LLC/phy channel wiring, Linux-style memory hotplug, and CPU-less NUMA
// node creation — mirroring Sections IV and V of the paper.
package core

import (
	"fmt"

	"thymesisflow/internal/endpoint"
	"thymesisflow/internal/hotplug"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/rmmu"
	"thymesisflow/internal/sim"
)

// HostConfig describes one simulated server. Defaults mirror the IBM Power
// System AC922 nodes of the prototype (Section V): dual-socket POWER9, 32
// physical cores, 128 hardware threads, 512 GiB of RAM.
type HostConfig struct {
	Name             string
	Sockets          int
	CoresPerSocket   int
	SMTPerCore       int
	DRAMPerSocket    int64
	DRAMLatency      sim.Time
	DRAMBWPerSocket  float64 // bytes/sec
	LLCSizePerSocket int64
	LLCWays          int
	CPU              mem.CPUConfig
	// SectionSize is the sparse-memory hotplug granularity.
	SectionSize int64
	// RMMUSections bounds the device address space of the compute endpoint.
	RMMUSections int
}

// DefaultHostConfig returns an AC922-like host.
func DefaultHostConfig(name string) HostConfig {
	return HostConfig{
		Name:             name,
		Sockets:          2,
		CoresPerSocket:   16,
		SMTPerCore:       4,
		DRAMPerSocket:    256 << 30,
		DRAMLatency:      90 * sim.Nanosecond,
		DRAMBWPerSocket:  140e9,
		LLCSizePerSocket: 120 << 20,
		LLCWays:          20,
		CPU:              mem.DefaultCPUConfig(),
		SectionSize:      rmmu.DefaultSectionSize,
		RMMUSections:     1024, // 256 GiB of attachable remote memory
	}
}

// HardwareThreads returns the host's total hardware thread count.
func (c HostConfig) HardwareThreads() int { return c.Sockets * c.CoresPerSocket * c.SMTPerCore }

// Host is one simulated server.
type Host struct {
	Name string
	K    *sim.Kernel
	Cfg  HostConfig

	// Mem is the host's memory system; LocalNodes holds one NUMA node per
	// socket.
	Mem        *mem.System
	LocalNodes []mem.NodeID

	// Cores gates execution: capacity equals the hardware thread count.
	Cores *sim.Resource

	// Hotplug manages sparse memory sections.
	Hotplug *hotplug.Manager

	// Compute and Memory are the ThymesisFlow endpoint personalities.
	Compute *endpoint.ComputeEndpoint
	Memory  *endpoint.MemoryEndpoint

	nextSection   int    // next free RMMU section
	nextDonorBase uint64 // next donor effective address for stolen regions
}

// NewHost builds a host on the given kernel.
func NewHost(k *sim.Kernel, cfg HostConfig) (*Host, error) {
	if cfg.Sockets <= 0 || cfg.CoresPerSocket <= 0 || cfg.SMTPerCore <= 0 {
		return nil, fmt.Errorf("core: host %q has no CPUs", cfg.Name)
	}
	sys := mem.NewSystem(k, 0)
	h := &Host{
		Name:          cfg.Name,
		K:             k,
		Cfg:           cfg,
		Mem:           sys,
		Cores:         sim.NewResource(k, cfg.HardwareThreads()),
		nextDonorBase: 0x100000000000, // arbitrary donor EA base
	}
	for s := 0; s < cfg.Sockets; s++ {
		be := mem.NewDRAMBackend(k, fmt.Sprintf("%s.dram%d", cfg.Name, s), cfg.DRAMLatency, cfg.DRAMBWPerSocket)
		id := sys.AddNode(&mem.Node{
			Name:     fmt.Sprintf("%s.node%d", cfg.Name, s),
			Socket:   s,
			Capacity: cfg.DRAMPerSocket,
			Backend:  be,
			Distance: 10,
		})
		h.LocalNodes = append(h.LocalNodes, id)
		sys.SetLLC(s, mem.NewCache(fmt.Sprintf("%s.llc%d", cfg.Name, s), cfg.LLCSizePerSocket, cfg.LLCWays))
	}
	h.Hotplug = hotplug.NewManager(sys, cfg.SectionSize)
	ce, err := endpoint.NewCompute(k, cfg.Name+".compute", cfg.RMMUSections, cfg.SectionSize)
	if err != nil {
		return nil, err
	}
	h.Compute = ce
	h.Memory = endpoint.NewMemory(k, cfg.Name+".memory", cfg.DRAMLatency)
	return h, nil
}

// NewThread creates an execution context bound to a socket (round-robin by
// index when callers spread threads).
func (h *Host) NewThread(socket int) *mem.Thread {
	return mem.NewThread(h.Mem, socket%h.Cfg.Sockets, h.Cfg.CPU)
}

// LocalNode returns the NUMA node of the given socket.
func (h *Host) LocalNode(socket int) mem.NodeID {
	return h.LocalNodes[socket%len(h.LocalNodes)]
}

// FreeLocalBytes returns the free capacity across local NUMA nodes.
func (h *Host) FreeLocalBytes() int64 {
	var free int64
	for _, id := range h.LocalNodes {
		n := h.Mem.Node(id)
		free += n.Capacity - n.Used
	}
	return free
}
