package capi

import "testing"

func TestTransactionFlits(t *testing.T) {
	cases := []struct {
		txn  Transaction
		want int
	}{
		{Transaction{Op: OpReadReq, Size: 128}, 1},
		{Transaction{Op: OpWriteReq, Size: 128}, 5}, // header + 4 data flits
		{Transaction{Op: OpReadResp, Size: 128}, 5}, // header + 4 data flits
		{Transaction{Op: OpWriteResp, Size: 0}, 1},  //
		{Transaction{Op: OpNop, Size: 0}, 1},        // single-flit padding
		{Transaction{Op: OpWriteReq, Size: 32}, 2},  // partial line
		{Transaction{Op: OpWriteReq, Size: 33}, 3},  // rounds up
		{Transaction{Op: OpReplayReq, Size: 0}, 1},  // in-band control
		{Transaction{Op: OpReadResp, Size: 64}, 3},  //
		{Transaction{Op: OpWriteReq, Size: 128}, 5}, //
		{Transaction{Op: OpReadReq, Size: 64}, 1},   // requests carry no data
		{Transaction{Op: OpReadResp, Size: 128}, 5}, //
		{Transaction{Op: OpWriteReq, Size: 1}, 2},   //
	}
	for _, c := range cases {
		if got := c.txn.Flits(); got != c.want {
			t.Errorf("%v size=%d: flits = %d, want %d", c.txn.Op, c.txn.Size, got, c.want)
		}
		if got := c.txn.Bytes(); got != c.want*FlitSize {
			t.Errorf("%v: bytes = %d, want %d", c.txn.Op, got, c.want*FlitSize)
		}
	}
}

func TestResponseMatchesRequest(t *testing.T) {
	req := &Transaction{Op: OpReadReq, Addr: 0x1000, Size: 128, Tag: 42, NetworkID: 7}
	data := make([]byte, 128)
	resp := req.Response(data)
	if resp.Op != OpReadResp || resp.Tag != 42 || resp.NetworkID != 7 || resp.Size != 128 {
		t.Fatalf("bad read response: %+v", resp)
	}
	wr := &Transaction{Op: OpWriteReq, Addr: 0x2000, Size: 128, Tag: 9}
	wresp := wr.Response(nil)
	if wresp.Op != OpWriteResp || wresp.Tag != 9 || wresp.Size != 0 {
		t.Fatalf("bad write response: %+v", wresp)
	}
}

func TestResponseOnResponsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Response on a response did not panic")
		}
	}()
	(&Transaction{Op: OpReadResp}).Response(nil)
}

func TestValidate(t *testing.T) {
	ok := Transaction{Op: OpReadReq, Size: 128}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid transaction rejected: %v", err)
	}
	bad := []Transaction{
		{Op: OpReadReq, Size: 0},
		{Op: OpWriteReq, Size: 256},
		{Op: OpWriteReq, Size: -1},
		{Op: OpWriteReq, Size: 64, Data: make([]byte, 32)},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid transaction accepted: %+v", i, b)
		}
	}
}

func TestPASIDRegistry(t *testing.T) {
	r := NewPASIDRegistry()
	a := r.Register("stealer-a")
	b := r.Register("stealer-b")
	if a == b {
		t.Fatal("duplicate PASIDs")
	}
	if p, ok := r.Lookup(a); !ok || p != "stealer-a" {
		t.Fatalf("lookup(a) = %q,%v", p, ok)
	}
	r.Unregister(a)
	if _, ok := r.Lookup(a); ok {
		t.Fatal("unregistered PASID still resolves")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1", r.Len())
	}
}

func TestOpString(t *testing.T) {
	if OpReadReq.String() != "read_req" || Op(99).String() != "op(99)" {
		t.Fatal("bad op names")
	}
}
