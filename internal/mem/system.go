package mem

import (
	"fmt"

	"thymesisflow/internal/sim"
)

// NodeID identifies a NUMA node within a simulated host.
type NodeID int

// DefaultPageSize is the page granularity used for placement decisions
// (64 KiB, the POWER9 Linux default).
const DefaultPageSize = 64 * 1024

// Node is one NUMA node: a quantity of memory behind a Backend, optionally
// CPU-less (the paper maps each disaggregated memory section to a CPU-less
// NUMA node, Section IV-B).
type Node struct {
	ID       NodeID
	Name     string
	Socket   int  // socket the node is attached to (for LLC affinity)
	CPULess  bool // true for disaggregated-memory nodes
	Capacity int64
	Used     int64
	Backend  Backend
	// Distance is the ACPI-SLIT-style relative distance from CPU sockets to
	// this node (10 = local). The kernel's NUMA allocator prefers smaller
	// distances.
	Distance int
}

// System is the memory system of one simulated host: NUMA nodes, a paged
// physical address space, and the shared last-level caches (one per socket).
type System struct {
	K        *sim.Kernel
	PageSize int64

	nodes []*Node
	llc   map[int]*Cache // socket -> shared LLC

	pageNode map[uint64]NodeID // page index -> owning node
	nextAddr uint64

	migrations int64 // pages migrated (AutoNUMA accounting)
}

// NewSystem creates an empty memory system with the given page size
// (0 selects DefaultPageSize).
func NewSystem(k *sim.Kernel, pageSize int64) *System {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize%CachelineSize != 0 {
		panic("mem: page size must be a multiple of the cacheline size")
	}
	return &System{
		K:        k,
		PageSize: pageSize,
		llc:      make(map[int]*Cache),
		pageNode: make(map[uint64]NodeID),
		nextAddr: uint64(pageSize), // keep address 0 unused
	}
}

// AddNode registers a NUMA node and returns its ID.
func (s *System) AddNode(n *Node) NodeID {
	n.ID = NodeID(len(s.nodes))
	s.nodes = append(s.nodes, n)
	return n.ID
}

// RemoveNode deletes a (hot-unplugged) node. Pages must have been migrated
// or freed first; it panics if the node still backs mapped pages.
func (s *System) RemoveNode(id NodeID) {
	for _, owner := range s.pageNode {
		if owner == id {
			panic(fmt.Sprintf("mem: RemoveNode(%d) with mapped pages", id))
		}
	}
	s.nodes[id] = nil
}

// Node returns the node with the given ID, or nil if the ID is unknown or
// the node was removed.
func (s *System) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(s.nodes) {
		return nil
	}
	return s.nodes[id]
}

// Nodes returns all live nodes.
func (s *System) Nodes() []*Node {
	out := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

// SetLLC installs the shared last-level cache for a socket.
func (s *System) SetLLC(socket int, c *Cache) { s.llc[socket] = c }

// LLC returns the shared LLC of a socket (nil if not configured).
func (s *System) LLC(socket int) *Cache { return s.llc[socket] }

// Buffer is a contiguous virtual allocation whose pages may live on
// different NUMA nodes.
type Buffer struct {
	sys  *System
	Base uint64
	Size int64
}

// Alloc reserves size bytes (rounded up to whole pages) and places each page
// on the node chosen by place(pageIndexWithinBuffer). It returns an error if
// any chosen node lacks capacity.
func (s *System) Alloc(size int64, place func(page int) NodeID) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: Alloc size %d", size)
	}
	pages := (size + s.PageSize - 1) / s.PageSize
	base := s.nextAddr
	// Place incrementally so stateful placers (e.g. numa.Preferred, which
	// consults free capacity) see usage grow page by page; roll back on
	// failure so a failed allocation leaves no trace.
	rollback := func(upto int64) {
		for i := int64(0); i < upto; i++ {
			pg := (base / uint64(s.PageSize)) + uint64(i)
			s.nodes[s.pageNode[pg]].Used -= s.PageSize
			delete(s.pageNode, pg)
		}
	}
	for i := int64(0); i < pages; i++ {
		id := place(int(i))
		node := s.nodes[id]
		if node == nil {
			rollback(i)
			return nil, fmt.Errorf("mem: Alloc on removed node %d", id)
		}
		if node.Used+s.PageSize > node.Capacity {
			rollback(i)
			return nil, fmt.Errorf("mem: node %d (%s) out of memory at page %d of %d",
				id, node.Name, i, pages)
		}
		s.pageNode[(base/uint64(s.PageSize))+uint64(i)] = id
		node.Used += s.PageSize
	}
	s.nextAddr += uint64(pages * s.PageSize)
	return &Buffer{sys: s, Base: base, Size: pages * s.PageSize}, nil
}

// Free releases the buffer's pages.
func (s *System) Free(b *Buffer) {
	pages := b.Size / s.PageSize
	for i := int64(0); i < pages; i++ {
		pg := (b.Base / uint64(s.PageSize)) + uint64(i)
		if id, ok := s.pageNode[pg]; ok {
			s.nodes[id].Used -= s.PageSize
			delete(s.pageNode, pg)
		}
	}
}

// NodeOf returns the NUMA node owning the page containing addr.
func (s *System) NodeOf(addr uint64) NodeID {
	id, ok := s.pageNode[addr/uint64(s.PageSize)]
	if !ok {
		panic(fmt.Sprintf("mem: access to unmapped address %#x", addr))
	}
	return id
}

// MigratePage moves one page to a different node (AutoNUMA / hot-unplug
// support). The caller is responsible for pricing the copy cost.
func (s *System) MigratePage(addr uint64, to NodeID) error {
	pg := addr / uint64(s.PageSize)
	from, ok := s.pageNode[pg]
	if !ok {
		return fmt.Errorf("mem: migrate of unmapped page %#x", addr)
	}
	if from == to {
		return nil
	}
	dst := s.nodes[to]
	if dst == nil {
		return fmt.Errorf("mem: migrate to removed node %d", to)
	}
	if dst.Used+s.PageSize > dst.Capacity {
		return fmt.Errorf("mem: migrate target node %d full", to)
	}
	s.nodes[from].Used -= s.PageSize
	dst.Used += s.PageSize
	s.pageNode[pg] = to
	s.migrations++
	return nil
}

// Migrations returns the number of pages migrated so far.
func (s *System) Migrations() int64 { return s.migrations }

// AnyPageOn returns the address of some page mapped on node id, if any.
// Iteration order is deterministic (lowest page first) so simulations stay
// reproducible.
func (s *System) AnyPageOn(id NodeID) (uint64, bool) {
	best := uint64(0)
	found := false
	for pg, owner := range s.pageNode {
		if owner != id {
			continue
		}
		if !found || pg < best {
			best = pg
			found = true
		}
	}
	return best * uint64(s.PageSize), found
}

// PagesOn returns the number of mapped pages owned by node id.
func (s *System) PagesOn(id NodeID) int64 {
	var n int64
	for _, owner := range s.pageNode {
		if owner == id {
			n++
		}
	}
	return n
}

// Run is a contiguous byte range of a buffer living on a single NUMA node.
type Run struct {
	Node  NodeID
	Bytes int64
}

// RunsIn walks [off, off+n) of the buffer and groups consecutive pages by
// owning node, returning one Run per group in address order. Streaming
// kernels use it to price per-node traffic without visiting every page.
func (b *Buffer) RunsIn(off, n int64) []Run {
	if off < 0 || n < 0 || off+n > b.Size {
		panic(fmt.Sprintf("mem: RunsIn(%d,%d) outside buffer of %d", off, n, b.Size))
	}
	var out []Run
	ps := b.sys.PageSize
	pos := off
	for pos < off+n {
		node := b.sys.NodeOf(b.Base + uint64(pos))
		// Bytes until the end of this page.
		pageEnd := (pos/ps + 1) * ps
		chunk := pageEnd - pos
		if rem := off + n - pos; chunk > rem {
			chunk = rem
		}
		if len(out) > 0 && out[len(out)-1].Node == node {
			out[len(out)-1].Bytes += chunk
		} else {
			out = append(out, Run{Node: node, Bytes: chunk})
		}
		pos += chunk
	}
	return out
}

// Addr returns the address at byte offset off within the buffer.
func (b *Buffer) Addr(off int64) uint64 {
	if off < 0 || off >= b.Size {
		panic(fmt.Sprintf("mem: buffer offset %d out of range [0,%d)", off, b.Size))
	}
	return b.Base + uint64(off)
}

// System returns the owning memory system.
func (b *Buffer) System() *System { return b.sys }
