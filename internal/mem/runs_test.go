package mem

import (
	"testing"
	"testing/quick"

	"thymesisflow/internal/sim"
)

func runsSystem(t *testing.T) (*System, NodeID, NodeID) {
	t.Helper()
	k := sim.NewKernel()
	sys := NewSystem(k, 0)
	a := sys.AddNode(&Node{Name: "a", Capacity: 1 << 30,
		Backend: NewDRAMBackend(k, "a", 90*sim.Nanosecond, 100e9)})
	b := sys.AddNode(&Node{Name: "b", Capacity: 1 << 30,
		Backend: NewDRAMBackend(k, "b", 90*sim.Nanosecond, 100e9)})
	return sys, a, b
}

func TestRunsInSinglePage(t *testing.T) {
	sys, a, _ := runsSystem(t)
	buf, err := sys.Alloc(4*sys.PageSize, func(int) NodeID { return a })
	if err != nil {
		t.Fatal(err)
	}
	runs := buf.RunsIn(100, 200)
	if len(runs) != 1 || runs[0].Node != a || runs[0].Bytes != 200 {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestRunsInMergesSameNodePages(t *testing.T) {
	sys, a, _ := runsSystem(t)
	buf, err := sys.Alloc(4*sys.PageSize, func(int) NodeID { return a })
	if err != nil {
		t.Fatal(err)
	}
	runs := buf.RunsIn(0, 4*sys.PageSize)
	if len(runs) != 1 || runs[0].Bytes != 4*sys.PageSize {
		t.Fatalf("same-node pages not merged: %+v", runs)
	}
}

func TestRunsInSplitsAtNodeBoundary(t *testing.T) {
	sys, a, b := runsSystem(t)
	buf, err := sys.Alloc(4*sys.PageSize, func(pg int) NodeID {
		if pg < 2 {
			return a
		}
		return b
	})
	if err != nil {
		t.Fatal(err)
	}
	runs := buf.RunsIn(sys.PageSize/2, 3*sys.PageSize)
	if len(runs) != 2 {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].Node != a || runs[0].Bytes != sys.PageSize+sys.PageSize/2 {
		t.Fatalf("first run = %+v", runs[0])
	}
	if runs[1].Node != b || runs[1].Bytes != sys.PageSize+sys.PageSize/2 {
		t.Fatalf("second run = %+v", runs[1])
	}
}

func TestRunsInOutOfRangePanics(t *testing.T) {
	sys, a, _ := runsSystem(t)
	buf, _ := sys.Alloc(sys.PageSize, func(int) NodeID { return a })
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range RunsIn did not panic")
		}
	}()
	buf.RunsIn(0, buf.Size+1)
}

// Property: runs partition the requested range exactly — bytes sum to n,
// every run is positive, and adjacent runs differ in node.
func TestQuickRunsPartition(t *testing.T) {
	sys, a, b := runsSystem(t)
	const pages = 16
	buf, err := sys.Alloc(pages*sys.PageSize, func(pg int) NodeID {
		if pg%3 == 0 {
			return a
		}
		return b
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(offRaw, nRaw uint32) bool {
		off := int64(offRaw) % buf.Size
		maxN := buf.Size - off
		n := int64(nRaw) % (maxN + 1)
		if n == 0 {
			return len(buf.RunsIn(off, 0)) == 0
		}
		runs := buf.RunsIn(off, n)
		var total int64
		for i, r := range runs {
			if r.Bytes <= 0 {
				return false
			}
			if i > 0 && runs[i-1].Node == r.Node {
				return false // adjacent runs must be on different nodes
			}
			total += r.Bytes
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
