// Package mem models the memory hierarchy of the simulated hosts: a
// set-associative cache hierarchy (L1/L2 private, LLC shared per socket),
// DRAM backends with load-dependent queueing, a paged physical address space
// spread over NUMA nodes, and the per-thread access costing used by every
// simulated workload.
//
// The model is calibrated to the POWER9 AC922 systems used in the paper
// (Section V) and to the ThymesisFlow datapath numbers (950 ns flit RTT,
// 12.5 GiB/s per network channel, ~16 GiB/s OpenCAPI C1 ceiling).
package mem

// CachelineSize is the POWER9 cacheline size in bytes; it is also the
// OpenCAPI transaction payload the ThymesisFlow prototype carries.
const CachelineSize = 128

// Cache is a set-associative cache with LRU replacement, tracked at
// cacheline granularity. It is purely functional (hit/miss bookkeeping);
// timing is applied by the caller using the cache's configured latency.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineBits uint
	// lines[set] is an LRU-ordered slice: index 0 is most recently used.
	lines [][]uint64

	hits   int64
	misses int64
}

// NewCache builds a cache of the given total size and associativity.
// size must be a multiple of ways*CachelineSize; sets are forced to a power
// of two for cheap indexing.
func NewCache(name string, size int64, ways int) *Cache {
	if ways <= 0 {
		panic("mem: cache ways must be positive")
	}
	sets := int(size / (int64(ways) * CachelineSize))
	if sets <= 0 {
		sets = 1
	}
	// Round sets down to a power of two.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	c := &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		lineBits: 7, // log2(CachelineSize)
		lines:    make([][]uint64, sets),
	}
	return c
}

// Name returns the cache's configured name (e.g. "L1D").
func (c *Cache) Name() string { return c.name }

// SizeBytes returns the total capacity in bytes.
func (c *Cache) SizeBytes() int64 { return int64(c.sets) * int64(c.ways) * CachelineSize }

// lineAddr maps a byte address to its cacheline address (tag+set).
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineBits }

// Lookup probes the cache for the line containing addr and updates LRU
// state. On a miss the line is installed, possibly evicting the LRU way.
// It reports whether the access hit.
func (c *Cache) Lookup(addr uint64) bool {
	la := c.lineAddr(addr)
	set := int(la) & (c.sets - 1)
	ways := c.lines[set]
	for i, tag := range ways {
		if tag == la {
			// Move to front (MRU).
			copy(ways[1:i+1], ways[:i])
			ways[0] = la
			c.hits++
			return true
		}
	}
	c.misses++
	if len(ways) < c.ways {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = la
	c.lines[set] = ways
	return false
}

// Contains probes without updating LRU or statistics.
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	set := int(la) & (c.sets - 1)
	for _, tag := range c.lines[set] {
		if tag == la {
			return true
		}
	}
	return false
}

// InvalidateRange drops all lines overlapping [addr, addr+size).
func (c *Cache) InvalidateRange(addr uint64, size int64) {
	first := c.lineAddr(addr)
	last := c.lineAddr(addr + uint64(size) - 1)
	for set := 0; set < c.sets; set++ {
		ways := c.lines[set]
		out := ways[:0]
		for _, tag := range ways {
			if tag < first || tag > last {
				out = append(out, tag)
			}
		}
		c.lines[set] = out
	}
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = c.lines[i][:0]
	}
}

// Hits returns the number of lookup hits since creation.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of lookup misses since creation.
func (c *Cache) Misses() int64 { return c.misses }

// HitRatio returns hits/(hits+misses), or 0 with no lookups.
func (c *Cache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// ResetStats zeroes hit/miss counters without touching contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }
