package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache("t", 8*1024, 8)
	if c.Lookup(0x1000) {
		t.Fatal("first access should miss")
	}
	if !c.Lookup(0x1000) {
		t.Fatal("second access should hit")
	}
	if !c.Lookup(0x1000 + CachelineSize - 1) {
		t.Fatal("same-line access should hit")
	}
	if c.Lookup(0x1000 + CachelineSize) {
		t.Fatal("next-line access should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache with exactly 2 sets: lines with even line-index map to set
	// 0, odd to set 1.
	c := NewCache("t", 2*2*CachelineSize, 2)
	addr := func(lineIdx uint64) uint64 { return lineIdx * CachelineSize }
	c.Lookup(addr(0)) // set 0
	c.Lookup(addr(2)) // set 0
	c.Lookup(addr(0)) // touch 0: now MRU
	c.Lookup(addr(4)) // set 0: evicts line 2 (LRU)
	if !c.Contains(addr(0)) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(addr(2)) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Contains(addr(4)) {
		t.Fatal("new line not installed")
	}
}

func TestCacheInvalidateRange(t *testing.T) {
	c := NewCache("t", 64*1024, 8)
	for i := uint64(0); i < 32; i++ {
		c.Lookup(i * CachelineSize)
	}
	c.InvalidateRange(8*CachelineSize, 8*CachelineSize)
	for i := uint64(0); i < 32; i++ {
		got := c.Contains(i * CachelineSize)
		want := i < 8 || i >= 16
		if got != want {
			t.Fatalf("line %d: contains=%v want %v", i, got, want)
		}
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c := NewCache("t", 32*1024, 8)
	linesInCache := c.SizeBytes() / CachelineSize
	// Touch exactly the cache's capacity worth of lines twice: second pass
	// must be all hits.
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < linesInCache; i++ {
			c.Lookup(uint64(i * CachelineSize))
		}
	}
	if c.Hits() != linesInCache {
		t.Fatalf("second pass hits = %d, want %d (ratio %.2f)", c.Hits(), linesInCache, c.HitRatio())
	}
}

// Property: the number of resident lines never exceeds capacity, and a
// just-installed line is always resident.
func TestQuickCacheInvariants(t *testing.T) {
	c := NewCache("t", 4*1024, 4)
	maxLines := c.SizeBytes() / CachelineSize
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Lookup(uint64(a))
			if !c.Contains(uint64(a)) {
				return false
			}
		}
		var resident int64
		for set := 0; set < c.sets; set++ {
			resident += int64(len(c.lines[set]))
			if len(c.lines[set]) > c.ways {
				return false
			}
		}
		return resident <= maxLines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
