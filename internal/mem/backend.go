package mem

import (
	"thymesisflow/internal/sim"
)

// Backend prices accesses that miss the whole cache hierarchy and must be
// served by a memory device: local DRAM, or — for disaggregated NUMA nodes —
// the ThymesisFlow datapath (implemented in internal/endpoint and plugged in
// here through this interface).
type Backend interface {
	// Name identifies the backend ("dram", "thymesisflow", ...).
	Name() string
	// Access prices a demand access of size bytes issued now, returning the
	// latency until the data is available. Implementations account their own
	// queueing/bandwidth state.
	Access(size int64, write bool) sim.Time
	// BaseLatency returns the unloaded access latency (used by NUMA distance
	// heuristics and by the streaming model's MLP computation).
	BaseLatency() sim.Time
	// StreamBandwidth returns the sustainable streaming bandwidth in
	// bytes/sec that this backend can deliver in aggregate.
	StreamBandwidth() float64
	// ReserveStream books n streaming bytes on the backend's bandwidth
	// resource and returns the completion time of the transfer. It is the
	// bulk-transfer path used by bandwidth-bound kernels (STREAM).
	ReserveStream(n int64) (done sim.Time)
}

// AddrBackend is an optional extension of Backend for devices whose access
// cost depends on the address — e.g. a remote backend with an HBM caching
// layer in front of the network (the paper's Section VII extension). When a
// node's backend implements AddrBackend, Thread.Access routes demand misses
// through AccessAt instead of Access.
type AddrBackend interface {
	Backend
	// AccessAt prices a demand access to the given (first-line) address.
	AccessAt(addr uint64, size int64, write bool) sim.Time
}

// DRAMBackend models a local DRAM memory subsystem: fixed CAS-ish base
// latency plus a shared bandwidth pipe that produces queueing under load.
type DRAMBackend struct {
	k       *sim.Kernel
	name    string
	baseLat sim.Time
	pipe    *sim.Pipe
}

// NewDRAMBackend builds a DRAM backend with the given unloaded latency and
// aggregate bandwidth (bytes/sec).
func NewDRAMBackend(k *sim.Kernel, name string, baseLat sim.Time, bandwidth float64) *DRAMBackend {
	return &DRAMBackend{k: k, name: name, baseLat: baseLat, pipe: sim.NewPipe(k, bandwidth)}
}

// Name implements Backend.
func (d *DRAMBackend) Name() string { return d.name }

// BaseLatency implements Backend.
func (d *DRAMBackend) BaseLatency() sim.Time { return d.baseLat }

// StreamBandwidth implements Backend.
func (d *DRAMBackend) StreamBandwidth() float64 { return d.pipe.Rate() }

// Access implements Backend: queueing delay on the channel plus base
// latency plus transfer time.
func (d *DRAMBackend) Access(size int64, write bool) sim.Time {
	if size <= 0 {
		return 0
	}
	_, done := d.pipe.Reserve(size)
	return done - d.k.Now() + d.baseLat
}

// ReserveStream implements Backend.
func (d *DRAMBackend) ReserveStream(n int64) sim.Time {
	_, done := d.pipe.Reserve(n)
	return done
}

// Pipe exposes the underlying bandwidth pipe for statistics.
func (d *DRAMBackend) Pipe() *sim.Pipe { return d.pipe }

var _ Backend = (*DRAMBackend)(nil)
