package mem

import (
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/sim"
)

// CPUConfig describes one simulated hardware thread, calibrated to the
// POWER9 cores in the paper's AC922 machines.
type CPUConfig struct {
	FreqGHz float64 // core clock
	BaseIPC float64 // retired instructions/cycle with no memory stalls
	MLP     int     // outstanding demand misses a thread can sustain
	L1Size  int64
	L1Ways  int
	L1Lat   sim.Time
	L2Size  int64
	L2Ways  int
	L2Lat   sim.Time
	LLCLat  sim.Time
}

// DefaultCPUConfig mirrors a POWER9 SMT4 hardware thread.
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		FreqGHz: 3.8,
		BaseIPC: 2.0,
		MLP:     22,
		L1Size:  32 * 1024,
		L1Ways:  8,
		L1Lat:   1 * sim.Nanosecond,
		L2Size:  512 * 1024,
		L2Ways:  8,
		L2Lat:   4 * sim.Nanosecond,
		LLCLat:  26 * sim.Nanosecond,
	}
}

// Thread is the execution context of one simulated software thread: private
// L1/L2 caches, a socket binding (selecting the shared LLC), and perf-style
// accounting. Thread methods advance virtual time via the owning process.
type Thread struct {
	sys  *System
	cfg  CPUConfig
	l1   *Cache
	l2   *Cache
	sock int

	perf metrics.PerfSample
}

// NewThread creates a thread bound to the given socket.
func NewThread(sys *System, socket int, cfg CPUConfig) *Thread {
	return &Thread{
		sys:  sys,
		cfg:  cfg,
		l1:   NewCache("L1D", cfg.L1Size, cfg.L1Ways),
		l2:   NewCache("L2", cfg.L2Size, cfg.L2Ways),
		sock: socket,
	}
}

// Socket returns the socket this thread runs on.
func (t *Thread) Socket() int { return t.sock }

// Perf returns the accumulated perf counters.
func (t *Thread) Perf() metrics.PerfSample { return t.perf }

// ResetPerf zeroes the perf counters.
func (t *Thread) ResetPerf() { t.perf = metrics.PerfSample{} }

func (t *Thread) cyclesFor(d sim.Time) int64 {
	return int64(float64(d) / 1000 * t.cfg.FreqGHz) // d ps * cycles/ns
}

// Compute models pure CPU work: instr retired instructions at the thread's
// base IPC. It advances virtual time and accounts busy cycles.
func (t *Thread) Compute(p *sim.Proc, instr int64) {
	if instr <= 0 {
		return
	}
	cycles := int64(float64(instr) / t.cfg.BaseIPC)
	if cycles == 0 {
		cycles = 1
	}
	d := sim.Time(float64(cycles) * 1000 / t.cfg.FreqGHz)
	t.perf.Instructions += instr
	t.perf.Cycles += cycles
	t.perf.TaskClockPS += int64(d)
	p.Sleep(d)
}

// Access models a demand load/store of size bytes starting at addr. It walks
// the cache hierarchy per cacheline, prices the misses through the owning
// NUMA node's backend (grouped per node so a burst pays the base latency
// once), advances virtual time, and accounts one ld/st instruction per line
// plus backend-stall cycles for the wait.
func (t *Thread) Access(p *sim.Proc, addr uint64, size int64, write bool) sim.Time {
	if size <= 0 {
		return 0
	}
	llc := t.sys.LLC(t.sock)
	// Misses are grouped into per-node bursts, accumulated in first-touch
	// order in a small stack-allocated buffer: one access rarely spans more
	// than a handful of NUMA nodes, and the former map version allocated
	// twice per missing access on the simulator's single hottest path (and
	// issued the bursts in randomized map order).
	type nodeBurst struct {
		id    NodeID
		bytes int64
		first uint64
	}
	var burstBuf [8]nodeBurst
	bursts := burstBuf[:0]
	lines := int64(0)
	first := addr &^ (CachelineSize - 1)
	last := (addr + uint64(size) - 1) &^ (CachelineSize - 1)
	var hitLat sim.Time
	for la := first; la <= last; la += CachelineSize {
		lines++
		if t.l1.Lookup(la) {
			hitLat += t.cfg.L1Lat
			continue
		}
		if t.l2.Lookup(la) {
			hitLat += t.cfg.L2Lat
			continue
		}
		if llc != nil && llc.Lookup(la) {
			hitLat += t.cfg.LLCLat
			continue
		}
		id := t.sys.NodeOf(la)
		idx := -1
		for i := range bursts {
			if bursts[i].id == id {
				idx = i
				break
			}
		}
		if idx < 0 {
			bursts = append(bursts, nodeBurst{id: id, first: la})
			idx = len(bursts) - 1
		}
		bursts[idx].bytes += CachelineSize
	}
	var missLat sim.Time
	for i := range bursts {
		b := &bursts[i]
		be := t.sys.Node(b.id).Backend
		var l sim.Time
		if ab, ok := be.(AddrBackend); ok {
			l = ab.AccessAt(b.first, b.bytes, write)
		} else {
			l = be.Access(b.bytes, write)
		}
		if l > missLat {
			missLat = l // bursts to different nodes overlap
		}
	}
	total := hitLat + missLat
	t.perf.Instructions += lines
	busy := t.cyclesFor(total)
	if busy == 0 {
		busy = 1
	}
	t.perf.Cycles += busy
	// Cycles beyond one issue slot per line are memory stalls.
	stall := busy - lines
	if stall > 0 {
		t.perf.StallBackend += stall
	}
	t.perf.TaskClockPS += int64(total)
	if total > 0 {
		p.Sleep(total)
	}
	return total
}

// HitAccess models `lines` cacheline touches that hit in an on-chip cache
// at a fixed per-line latency (e.g. LLC-resident index upper levels or
// language-runtime heap structures whose cost is identical across memory
// configurations). It accounts one instruction per line plus backend-stall
// cycles for the wait, exactly like Access, but without perturbing the
// simulated cache state.
func (t *Thread) HitAccess(p *sim.Proc, lines int64, perLine sim.Time) sim.Time {
	if lines <= 0 {
		return 0
	}
	total := sim.Time(lines) * perLine
	t.perf.Instructions += lines
	busy := t.cyclesFor(total)
	if busy == 0 {
		busy = 1
	}
	t.perf.Cycles += busy
	if stall := busy - lines; stall > 0 {
		t.perf.StallBackend += stall
	}
	t.perf.TaskClockPS += int64(total)
	p.Sleep(total)
	return total
}

// StreamChunk models a streaming (prefetched, bandwidth-bound) pass over
// bytes residing on a single NUMA node, as STREAM-style kernels do. The
// chunk time is the maximum of the thread's memory-level-parallelism limit
// and the backend's (queued) bandwidth. Caches are bypassed: STREAM's
// footprint is far beyond cache capacity.
func (t *Thread) StreamChunk(p *sim.Proc, node NodeID, bytes int64, flops int64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	be := t.sys.Node(node).Backend
	// Per-thread streaming ceiling from Little's law: MLP outstanding lines
	// over the unloaded latency.
	lat := be.BaseLatency()
	if lat <= 0 {
		lat = sim.Nanosecond
	}
	perThread := float64(t.cfg.MLP) * CachelineSize / lat.Seconds()
	minTime := sim.DurationForBytes(bytes, perThread)
	done := be.ReserveStream(bytes)
	transfer := done - p.Now()
	total := transfer
	if minTime > total {
		total = minTime
	}
	// FLOPs overlap with memory in STREAM; they only matter if compute-bound.
	if flops > 0 {
		ct := sim.Time(float64(flops) / t.cfg.BaseIPC * 1000 / t.cfg.FreqGHz)
		if ct > total {
			total = ct
		}
	}
	lines := bytes / CachelineSize
	t.perf.Instructions += lines + flops
	busy := t.cyclesFor(total)
	t.perf.Cycles += busy
	if stall := busy - lines - flops; stall > 0 {
		t.perf.StallBackend += stall
	}
	t.perf.TaskClockPS += int64(total)
	p.Sleep(total)
	return total
}

// FlushCaches empties this thread's private caches.
func (t *Thread) FlushCaches() {
	t.l1.Flush()
	t.l2.Flush()
}

// L1 returns the thread's private L1 cache (for tests and statistics).
func (t *Thread) L1() *Cache { return t.l1 }

// L2 returns the thread's private L2 cache.
func (t *Thread) L2() *Cache { return t.l2 }
