package mem

import (
	"testing"

	"thymesisflow/internal/sim"
)

func testSystem(t *testing.T) (*sim.Kernel, *System, NodeID, NodeID) {
	t.Helper()
	k := sim.NewKernel()
	sys := NewSystem(k, 0)
	local := sys.AddNode(&Node{
		Name: "local", Socket: 0, Capacity: 1 << 30, Distance: 10,
		Backend: NewDRAMBackend(k, "dram0", 90*sim.Nanosecond, 140e9),
	})
	remote := sys.AddNode(&Node{
		Name: "remote", Socket: 0, CPULess: true, Capacity: 1 << 30, Distance: 80,
		Backend: NewDRAMBackend(k, "dram-far", 950*sim.Nanosecond, 12.5e9),
	})
	sys.SetLLC(0, NewCache("LLC0", 8<<20, 16))
	return k, sys, local, remote
}

func TestAllocPlacesPages(t *testing.T) {
	_, sys, local, remote := testSystem(t)
	buf, err := sys.Alloc(10*sys.PageSize, func(pg int) NodeID {
		if pg%2 == 0 {
			return local
		}
		return remote
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Node(local).Used != 5*sys.PageSize || sys.Node(remote).Used != 5*sys.PageSize {
		t.Fatalf("usage local=%d remote=%d", sys.Node(local).Used, sys.Node(remote).Used)
	}
	for pg := int64(0); pg < 10; pg++ {
		got := sys.NodeOf(buf.Addr(pg * sys.PageSize))
		want := local
		if pg%2 == 1 {
			want = remote
		}
		if got != want {
			t.Fatalf("page %d on node %d, want %d", pg, got, want)
		}
	}
	sys.Free(buf)
	if sys.Node(local).Used != 0 || sys.Node(remote).Used != 0 {
		t.Fatal("Free did not release pages")
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	_, sys, local, _ := testSystem(t)
	if _, err := sys.Alloc(2<<30, func(int) NodeID { return local }); err == nil {
		t.Fatal("over-capacity Alloc succeeded")
	}
	// Failed alloc must not leak partial usage.
	if sys.Node(local).Used != 0 {
		t.Fatalf("failed alloc leaked %d bytes", sys.Node(local).Used)
	}
}

func TestMigratePage(t *testing.T) {
	_, sys, local, remote := testSystem(t)
	buf, err := sys.Alloc(sys.PageSize, func(int) NodeID { return local })
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.MigratePage(buf.Addr(0), remote); err != nil {
		t.Fatal(err)
	}
	if sys.NodeOf(buf.Addr(0)) != remote {
		t.Fatal("page not migrated")
	}
	if sys.Node(local).Used != 0 || sys.Node(remote).Used != sys.PageSize {
		t.Fatal("usage not transferred on migration")
	}
	if sys.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", sys.Migrations())
	}
}

func TestRemoveNodeWithPagesPanics(t *testing.T) {
	_, sys, local, _ := testSystem(t)
	if _, err := sys.Alloc(sys.PageSize, func(int) NodeID { return local }); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RemoveNode with mapped pages did not panic")
		}
	}()
	sys.RemoveNode(local)
}

func TestThreadAccessLatencyOrdering(t *testing.T) {
	k, sys, local, remote := testSystem(t)
	lbuf, _ := sys.Alloc(1<<20, func(int) NodeID { return local })
	rbuf, _ := sys.Alloc(1<<20, func(int) NodeID { return remote })

	var missLocal, hitLocal, missRemote sim.Time
	k.Go("t", func(p *sim.Proc) {
		th := NewThread(sys, 0, DefaultCPUConfig())
		missLocal = th.Access(p, lbuf.Addr(0), 8, false)
		hitLocal = th.Access(p, lbuf.Addr(0), 8, false)
		missRemote = th.Access(p, rbuf.Addr(0), 8, false)
	})
	k.Run()
	if !(hitLocal < missLocal && missLocal < missRemote) {
		t.Fatalf("latency ordering violated: hit=%v local-miss=%v remote-miss=%v",
			hitLocal, missLocal, missRemote)
	}
	if missRemote < 950*sim.Nanosecond {
		t.Fatalf("remote miss %v under the 950ns datapath RTT", missRemote)
	}
	if missLocal < 90*sim.Nanosecond || missLocal > 200*sim.Nanosecond {
		t.Fatalf("local miss %v outside plausible DRAM range", missLocal)
	}
}

func TestThreadPerfAccounting(t *testing.T) {
	k, sys, local, _ := testSystem(t)
	buf, _ := sys.Alloc(1<<20, func(int) NodeID { return local })
	th := NewThread(sys, 0, DefaultCPUConfig())
	k.Go("t", func(p *sim.Proc) {
		th.Compute(p, 1000)
		th.Access(p, buf.Addr(0), CachelineSize, false)
	})
	k.Run()
	perf := th.Perf()
	if perf.Instructions != 1001 {
		t.Fatalf("instructions = %d, want 1001", perf.Instructions)
	}
	if perf.Cycles <= 500 {
		t.Fatalf("cycles = %d, want > 500 (1000 instr at IPC 2)", perf.Cycles)
	}
	if perf.StallBackend == 0 {
		t.Fatal("memory miss produced no backend stalls")
	}
	if perf.TaskClockPS == 0 {
		t.Fatal("task clock not accounted")
	}
}

func TestStreamChunkBandwidthBound(t *testing.T) {
	k, sys, _, remote := testSystem(t)
	// 12.5 GB/s remote pipe; one thread with MLP 20 @950ns caps at
	// 20*128/950ns = 2.69 GB/s, so the thread limit should bind.
	th := NewThread(sys, 0, DefaultCPUConfig())
	const bytes = 1 << 20
	var took sim.Time
	k.Go("t", func(p *sim.Proc) {
		start := p.Now()
		th.StreamChunk(p, remote, bytes, 0)
		took = p.Now() - start
	})
	k.Run()
	gotBW := float64(bytes) / took.Seconds()
	if gotBW > 3.0e9 || gotBW < 2.3e9 {
		t.Fatalf("single-thread remote stream = %.3g B/s, want ~2.69e9 (MLP bound)", gotBW)
	}
}

func TestStreamAggregateSaturatesPipe(t *testing.T) {
	k, sys, _, remote := testSystem(t)
	const bytes = 4 << 20
	const threads = 8
	var totalBytes int64
	for i := 0; i < threads; i++ {
		th := NewThread(sys, 0, DefaultCPUConfig())
		k.Go("t", func(p *sim.Proc) {
			for c := 0; c < 4; c++ {
				th.StreamChunk(p, remote, bytes/4, 0)
				totalBytes += bytes / 4
			}
		})
	}
	end := k.Run()
	agg := float64(totalBytes) / end.Seconds()
	// 8 threads * 2.69 GB/s offered = 21.5 > 12.5 pipe; expect ~pipe rate.
	if agg < 11e9 || agg > 13e9 {
		t.Fatalf("aggregate stream = %.3g B/s, want ~12.5e9 (pipe bound)", agg)
	}
}
