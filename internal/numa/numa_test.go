package numa

import (
	"testing"

	"thymesisflow/internal/mem"
	"thymesisflow/internal/sim"
)

func newSys(t *testing.T, localCap, remoteCap int64) (*mem.System, mem.NodeID, mem.NodeID) {
	t.Helper()
	k := sim.NewKernel()
	sys := mem.NewSystem(k, 0)
	local := sys.AddNode(&mem.Node{
		Name: "local", Capacity: localCap, Distance: 10,
		Backend: mem.NewDRAMBackend(k, "dram", 90*sim.Nanosecond, 140e9),
	})
	remote := sys.AddNode(&mem.Node{
		Name: "remote", CPULess: true, Capacity: remoteCap, Distance: 80,
		Backend: mem.NewDRAMBackend(k, "far", 950*sim.Nanosecond, 12.5e9),
	})
	return sys, local, remote
}

func TestLocalPlacer(t *testing.T) {
	sys, local, _ := newSys(t, 1<<30, 1<<30)
	buf, err := sys.Alloc(10*sys.PageSize, Local(local))
	if err != nil {
		t.Fatal(err)
	}
	for pg := int64(0); pg < 10; pg++ {
		if sys.NodeOf(buf.Addr(pg*sys.PageSize)) != local {
			t.Fatalf("page %d not local", pg)
		}
	}
}

func TestInterleavePlacer(t *testing.T) {
	sys, local, remote := newSys(t, 1<<30, 1<<30)
	buf, err := sys.Alloc(10*sys.PageSize, Interleave(local, remote))
	if err != nil {
		t.Fatal(err)
	}
	for pg := int64(0); pg < 10; pg++ {
		want := local
		if pg%2 == 1 {
			want = remote
		}
		if got := sys.NodeOf(buf.Addr(pg * sys.PageSize)); got != want {
			t.Fatalf("page %d on %d, want %d", pg, got, want)
		}
	}
	// 50/50 split, the paper's interleaved configuration.
	if sys.PagesOn(local) != 5 || sys.PagesOn(remote) != 5 {
		t.Fatalf("split %d/%d", sys.PagesOn(local), sys.PagesOn(remote))
	}
}

func TestPreferredSpillsWhenFull(t *testing.T) {
	sys, local, remote := newSys(t, 4*mem.DefaultPageSize, 1<<30)
	buf, err := sys.Alloc(8*sys.PageSize, Preferred(sys, local, remote))
	if err != nil {
		t.Fatal(err)
	}
	_ = buf
	if sys.PagesOn(local) != 4 || sys.PagesOn(remote) != 4 {
		t.Fatalf("preferred split %d/%d, want 4/4", sys.PagesOn(local), sys.PagesOn(remote))
	}
}

func TestWeightedInterleave(t *testing.T) {
	sys, local, remote := newSys(t, 1<<30, 1<<30)
	placer, err := WeightedInterleave([]mem.NodeID{local, remote}, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Alloc(8*sys.PageSize, placer); err != nil {
		t.Fatal(err)
	}
	if sys.PagesOn(local) != 6 || sys.PagesOn(remote) != 2 {
		t.Fatalf("weighted split %d/%d, want 6/2", sys.PagesOn(local), sys.PagesOn(remote))
	}
	if _, err := WeightedInterleave([]mem.NodeID{local}, []int{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := WeightedInterleave([]mem.NodeID{local}, []int{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestBalancerMigratesHotRemotePages(t *testing.T) {
	sys, local, remote := newSys(t, 1<<30, 1<<30)
	buf, err := sys.Alloc(4*sys.PageSize, Local(remote))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBalancer(sys, local, sim.Millisecond)
	// Page 0 is hot, page 1 is lukewarm, pages 2-3 cold.
	for i := 0; i < 100; i++ {
		b.RecordAccess(buf.Addr(0))
	}
	b.RecordAccess(buf.Addr(sys.PageSize))
	b.BatchLimit = 1
	cost := b.MaybeScan(2 * sim.Millisecond)
	if cost == 0 {
		t.Fatal("scan performed no migration")
	}
	if sys.NodeOf(buf.Addr(0)) != local {
		t.Fatal("hot page not migrated")
	}
	if sys.NodeOf(buf.Addr(sys.PageSize)) != remote {
		t.Fatal("batch limit exceeded")
	}
	migrated, _ := b.Stats()
	if migrated != 1 {
		t.Fatalf("migrated = %d, want 1", migrated)
	}
}

func TestBalancerRespectsPeriod(t *testing.T) {
	sys, local, remote := newSys(t, 1<<30, 1<<30)
	buf, _ := sys.Alloc(sys.PageSize, Local(remote))
	b := NewBalancer(sys, local, sim.Millisecond)
	b.RecordAccess(buf.Addr(0))
	if cost := b.MaybeScan(500 * sim.Microsecond); cost != 0 {
		t.Fatal("scan ran before period elapsed")
	}
	if sys.NodeOf(buf.Addr(0)) != remote {
		t.Fatal("page migrated before scan period")
	}
}

func TestBalancerIgnoresLocalAndCPUNodes(t *testing.T) {
	sys, local, remote := newSys(t, 1<<30, 1<<30)
	lbuf, _ := sys.Alloc(sys.PageSize, Local(local))
	b := NewBalancer(sys, local, sim.Millisecond)
	for i := 0; i < 50; i++ {
		b.RecordAccess(lbuf.Addr(0))
	}
	b.MaybeScan(2 * sim.Millisecond)
	migrated, _ := b.Stats()
	if migrated != 0 {
		t.Fatalf("migrated local pages: %d", migrated)
	}
	_ = remote
}

func TestDrainMovesEverything(t *testing.T) {
	sys, local, remote := newSys(t, 1<<30, 1<<30)
	if _, err := sys.Alloc(16*sys.PageSize, Local(remote)); err != nil {
		t.Fatal(err)
	}
	moved, err := Drain(sys, remote, local)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 16 {
		t.Fatalf("drained %d pages, want 16", moved)
	}
	if sys.PagesOn(remote) != 0 {
		t.Fatal("pages remain after drain")
	}
	// Node can now be removed without panicking.
	sys.RemoveNode(remote)
}

func TestDrainFailsWhenTargetFull(t *testing.T) {
	sys, local, remote := newSys(t, 2*mem.DefaultPageSize, 1<<30)
	if _, err := sys.Alloc(8*sys.PageSize, Local(remote)); err != nil {
		t.Fatal(err)
	}
	moved, err := Drain(sys, remote, local)
	if err == nil {
		t.Fatal("drain into full node succeeded")
	}
	if moved != 2 {
		t.Fatalf("moved %d before failing, want 2", moved)
	}
}
