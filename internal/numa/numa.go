// Package numa provides the NUMA placement policies and the AutoNUMA-style
// page migration the paper's OS integration relies on (Section IV-B): a
// disaggregated memory section appears as a CPU-less NUMA node, the kernel's
// allocation policies decide which pages land there, and page migration can
// move frequently used pages from distant to closer (including local)
// memory.
package numa

import (
	"fmt"
	"sort"

	"thymesisflow/internal/mem"
	"thymesisflow/internal/sim"
)

// Placer decides the NUMA node for each page of an allocation; it is the
// function mem.System.Alloc consumes.
type Placer func(page int) mem.NodeID

// Local places every page on one node — the paper's "local" and
// "single/bonding-disaggregated" configurations (all memory from one node).
func Local(node mem.NodeID) Placer {
	return func(int) mem.NodeID { return node }
}

// Interleave round-robins pages across the given nodes — the paper's
// "interleaved" configuration (50/50 between local and disaggregated memory
// for two nodes).
func Interleave(nodes ...mem.NodeID) Placer {
	if len(nodes) == 0 {
		panic("numa: Interleave with no nodes")
	}
	return func(page int) mem.NodeID { return nodes[page%len(nodes)] }
}

// Preferred fills the preferred node first (by pages, using its free
// capacity at placement time), spilling to the fallback when full — the
// kernel's default zone fallback behaviour.
func Preferred(sys *mem.System, preferred, fallback mem.NodeID) Placer {
	return func(int) mem.NodeID {
		n := sys.Node(preferred)
		if n != nil && n.Used+sys.PageSize <= n.Capacity {
			return preferred
		}
		return fallback
	}
}

// WeightedInterleave places pages proportionally: weight w out of total
// pages go to nodes[i] per cycle. Used to model partial disaggregation
// ratios in ablations.
func WeightedInterleave(nodes []mem.NodeID, weights []int) (Placer, error) {
	if len(nodes) != len(weights) || len(nodes) == 0 {
		return nil, fmt.Errorf("numa: weighted interleave needs matching non-empty nodes/weights")
	}
	total := 0
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("numa: non-positive weight %d", w)
		}
		total += w
	}
	return func(page int) mem.NodeID {
		slot := page % total
		for i, w := range weights {
			if slot < w {
				return nodes[i]
			}
			slot -= w
		}
		return nodes[len(nodes)-1] // unreachable
	}, nil
}

// Balancer implements AutoNUMA-style page migration: it samples page
// accesses, identifies hot pages living on distant (CPU-less) nodes, and
// migrates them toward local memory when the scan period elapses.
type Balancer struct {
	sys    *mem.System
	local  mem.NodeID
	period sim.Time
	// MigrationCost is the per-page copy cost charged to the system (the
	// page copy itself plus TLB shootdown overhead).
	MigrationCost sim.Time
	// BatchLimit bounds pages migrated per scan.
	BatchLimit int

	hot      map[uint64]int64 // page index -> access samples this period
	lastScan sim.Time
	migrated int64
	failed   int64
}

// NewBalancer builds a balancer migrating hot pages toward `local`.
func NewBalancer(sys *mem.System, local mem.NodeID, period sim.Time) *Balancer {
	return &Balancer{
		sys:           sys,
		local:         local,
		period:        period,
		MigrationCost: 10 * sim.Microsecond,
		BatchLimit:    256,
		hot:           make(map[uint64]int64),
	}
}

// RecordAccess samples one access (callers typically sample a fraction of
// accesses, as the kernel's NUMA hinting faults do).
func (b *Balancer) RecordAccess(addr uint64) {
	b.hot[addr/uint64(b.sys.PageSize)]++
}

// MaybeScan runs a migration scan if the period elapsed; it returns the
// total simulated cost of the migrations performed, which the caller
// charges to the simulation (e.g. by sleeping a background process).
func (b *Balancer) MaybeScan(now sim.Time) sim.Time {
	if now-b.lastScan < b.period {
		return 0
	}
	b.lastScan = now
	type hotPage struct {
		page  uint64
		count int64
	}
	var candidates []hotPage
	for pg, cnt := range b.hot {
		addr := pg * uint64(b.sys.PageSize)
		owner := b.sys.NodeOf(addr)
		if owner == b.local {
			continue
		}
		if !b.sys.Node(owner).CPULess {
			continue // only pull from distant CPU-less nodes
		}
		candidates = append(candidates, hotPage{pg, cnt})
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].count != candidates[j].count {
			return candidates[i].count > candidates[j].count
		}
		return candidates[i].page < candidates[j].page
	})
	if len(candidates) > b.BatchLimit {
		candidates = candidates[:b.BatchLimit]
	}
	var cost sim.Time
	for _, c := range candidates {
		addr := c.page * uint64(b.sys.PageSize)
		if err := b.sys.MigratePage(addr, b.local); err != nil {
			b.failed++
			continue // local node full: leave the page remote
		}
		b.migrated++
		cost += b.MigrationCost
	}
	b.hot = make(map[uint64]int64)
	return cost
}

// Stats returns (migrated, failed) page counts.
func (b *Balancer) Stats() (migrated, failed int64) { return b.migrated, b.failed }

// Drain migrates every mapped page off the given node (used before
// offlining a hotplugged section). It returns the number of pages moved and
// an error if the destination cannot absorb them.
func Drain(sys *mem.System, from, to mem.NodeID) (int64, error) {
	var moved int64
	for {
		addr, ok := sys.AnyPageOn(from)
		if !ok {
			break
		}
		if err := sys.MigratePage(addr, to); err != nil {
			return moved, fmt.Errorf("numa: drain %d->%d after %d pages: %w", from, to, moved, err)
		}
		moved++
	}
	return moved, nil
}
