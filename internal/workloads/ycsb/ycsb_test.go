package ycsb

import "testing"

func mix(t *testing.T, w Workload, n int) map[OpKind]int {
	t.Helper()
	g, err := NewGenerator(w, DefaultConfig(100000), 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[OpKind]int)
	for i := 0; i < n; i++ {
		op := g.Next()
		counts[op.Kind]++
		if op.Kind != OpInsert && op.Key >= uint64(100000+g.inserted) {
			t.Fatalf("%v: key %d outside table", w, op.Key)
		}
	}
	return counts
}

func approx(t *testing.T, w Workload, got, total int, want float64) {
	t.Helper()
	frac := float64(got) / float64(total)
	if frac < want-0.03 || frac > want+0.03 {
		t.Fatalf("%v: fraction %.3f, want %.2f", w, frac, want)
	}
}

func TestWorkloadMixes(t *testing.T) {
	const n = 20000
	a := mix(t, WorkloadA, n)
	approx(t, WorkloadA, a[OpRead], n, 0.5)
	approx(t, WorkloadA, a[OpUpdate], n, 0.5)

	b := mix(t, WorkloadB, n)
	approx(t, WorkloadB, b[OpRead], n, 0.95)
	approx(t, WorkloadB, b[OpUpdate], n, 0.05)

	c := mix(t, WorkloadC, n)
	if c[OpRead] != n {
		t.Fatalf("C: %v", c)
	}

	d := mix(t, WorkloadD, n)
	approx(t, WorkloadD, d[OpRead], n, 0.95)
	approx(t, WorkloadD, d[OpInsert], n, 0.05)

	e := mix(t, WorkloadE, n)
	approx(t, WorkloadE, e[OpScan], n, 0.95)
	approx(t, WorkloadE, e[OpInsert], n, 0.05)

	f := mix(t, WorkloadF, n)
	approx(t, WorkloadF, f[OpRead], n, 0.5)
	approx(t, WorkloadF, f[OpReadModifyWrite], n, 0.5)
}

func TestScanLengths(t *testing.T) {
	g, _ := NewGenerator(WorkloadE, DefaultConfig(1000), 2)
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind != OpScan {
			continue
		}
		if op.ScanLen < 1 || op.ScanLen > 100 {
			t.Fatalf("scan length %d", op.ScanLen)
		}
	}
}

func TestZipfSkewed(t *testing.T) {
	g, _ := NewGenerator(WorkloadC, DefaultConfig(1_000_000), 3)
	hot := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Key < 100 {
			hot++
		}
	}
	// Top-100 keys of a zipf(0.99) over 1M keys draw far more than the
	// uniform share (0.01%).
	if float64(hot)/n < 0.05 {
		t.Fatalf("top-100 share %.4f, want > 0.05", float64(hot)/n)
	}
}

func TestLatestDistributionPrefersRecent(t *testing.T) {
	g, _ := NewGenerator(WorkloadD, DefaultConfig(100000), 4)
	recent := 0
	reads := 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			continue
		}
		reads++
		if op.Key >= uint64(100000+g.inserted)-1000 {
			recent++
		}
	}
	if float64(recent)/float64(reads) < 0.3 {
		t.Fatalf("latest distribution: only %.2f of reads in newest 1%%",
			float64(recent)/float64(reads))
	}
}

func TestInsertsGrowKeySpace(t *testing.T) {
	g, _ := NewGenerator(WorkloadD, DefaultConfig(1000), 5)
	maxKey := uint64(0)
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind == OpInsert && op.Key > maxKey {
			maxKey = op.Key
		}
	}
	if maxKey < 1000 {
		t.Fatal("inserts did not extend the key space")
	}
	if g.inserted == 0 {
		t.Fatal("no inserts recorded")
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := NewGenerator(Workload('Z'), DefaultConfig(10), 1); err == nil {
		t.Fatal("workload Z accepted")
	}
	if _, err := NewGenerator(WorkloadA, DefaultConfig(0), 1); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestReadIntensiveGrouping(t *testing.T) {
	want := map[Workload]bool{
		WorkloadA: false, WorkloadB: true, WorkloadC: true,
		WorkloadD: true, WorkloadE: true, WorkloadF: false,
	}
	for w, exp := range want {
		if w.ReadIntensive() != exp {
			t.Fatalf("%v: ReadIntensive = %v", w, !exp)
		}
	}
}
