// Package ycsb implements the Yahoo! Cloud Serving Benchmark client-side
// workload generator (Cooper et al., SoCC'10): the six core workloads A-F
// with their operation mixes and request distributions, used by the paper
// to drive the VoltDB evaluation (Section VI-D).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is one YCSB operation type.
type OpKind int

// YCSB operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

var opNames = [...]string{"read", "update", "insert", "scan", "rmw"}

// String returns the operation mnemonic.
func (o OpKind) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Workload identifies one of the six core workloads.
type Workload byte

// The six core YCSB workloads.
const (
	WorkloadA Workload = 'A' // update heavy: 50/50 read/update, zipfian
	WorkloadB Workload = 'B' // read mostly: 95/5 read/update, zipfian
	WorkloadC Workload = 'C' // read only, zipfian
	WorkloadD Workload = 'D' // read latest: 95/5 read/insert, latest
	WorkloadE Workload = 'E' // short ranges: 95/5 scan/insert, zipfian
	WorkloadF Workload = 'F' // 50/50 read/read-modify-write, zipfian
)

// Workloads lists A-F in order.
func Workloads() []Workload {
	return []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF}
}

// String returns "A".."F".
func (w Workload) String() string { return string(w) }

// ReadIntensive reports whether the workload is >95% reads/scans — the
// grouping the paper uses when discussing Figure 6.
func (w Workload) ReadIntensive() bool {
	switch w {
	case WorkloadB, WorkloadC, WorkloadD, WorkloadE:
		return true
	}
	return false
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
	// ScanLen is the record count for scans (uniform in [1, MaxScanLen]).
	ScanLen int
}

// Config tunes the generator.
type Config struct {
	Records      int64   // table size in records
	ZipfExponent float64 // request-distribution skew (YCSB default 0.99)
	MaxScanLen   int     // workload E max scan length (YCSB default 100)
}

// DefaultConfig returns YCSB defaults for the given table size.
func DefaultConfig(records int64) Config {
	return Config{Records: records, ZipfExponent: 0.99, MaxScanLen: 100}
}

// Generator produces the operation stream for one client thread.
type Generator struct {
	w        Workload
	cfg      Config
	rng      *rand.Rand
	inserted int64 // grows the key space for D/E inserts
}

// NewGenerator builds a generator for the workload. Seed should differ per
// client thread.
func NewGenerator(w Workload, cfg Config, seed int64) (*Generator, error) {
	switch w {
	case WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF:
	default:
		return nil, fmt.Errorf("ycsb: unknown workload %q", string(w))
	}
	if cfg.Records <= 0 {
		return nil, fmt.Errorf("ycsb: empty table")
	}
	if cfg.MaxScanLen <= 0 {
		cfg.MaxScanLen = 100
	}
	return &Generator{w: w, cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// zipfKey samples a key with the zipfian request distribution (inverse-CDF
// approximation; see kvcache.Zipf for the derivation).
func (g *Generator) zipfKey() uint64 {
	n := float64(g.cfg.Records + g.inserted)
	s := g.cfg.ZipfExponent
	u := g.rng.Float64()
	var k float64
	if math.Abs(s-1.0) < 1e-9 {
		k = math.Exp(u * math.Log(n))
	} else {
		pow := math.Pow(n, 1-s)
		k = math.Pow(u*(pow-1)+1, 1/(1-s))
	}
	r := uint64(k)
	if r < 1 {
		r = 1
	}
	if r > uint64(n) {
		r = uint64(n)
	}
	return r - 1
}

// latestKey samples with the "latest" distribution: zipfian skew anchored
// at the most recently inserted records (workload D).
func (g *Generator) latestKey() uint64 {
	n := uint64(g.cfg.Records + g.inserted)
	off := g.zipfKey() // zipf rank, hottest = most recent
	return n - 1 - off%n
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	roll := g.rng.Float64()
	switch g.w {
	case WorkloadA:
		if roll < 0.5 {
			return Op{Kind: OpRead, Key: g.zipfKey()}
		}
		return Op{Kind: OpUpdate, Key: g.zipfKey()}
	case WorkloadB:
		if roll < 0.95 {
			return Op{Kind: OpRead, Key: g.zipfKey()}
		}
		return Op{Kind: OpUpdate, Key: g.zipfKey()}
	case WorkloadC:
		return Op{Kind: OpRead, Key: g.zipfKey()}
	case WorkloadD:
		if roll < 0.95 {
			return Op{Kind: OpRead, Key: g.latestKey()}
		}
		g.inserted++
		return Op{Kind: OpInsert, Key: uint64(g.cfg.Records + g.inserted - 1)}
	case WorkloadE:
		if roll < 0.95 {
			return Op{
				Kind:    OpScan,
				Key:     g.zipfKey(),
				ScanLen: 1 + g.rng.Intn(g.cfg.MaxScanLen),
			}
		}
		g.inserted++
		return Op{Kind: OpInsert, Key: uint64(g.cfg.Records + g.inserted - 1)}
	default: // WorkloadF
		if roll < 0.5 {
			return Op{Kind: OpRead, Key: g.zipfKey()}
		}
		return Op{Kind: OpReadModifyWrite, Key: g.zipfKey()}
	}
}
