package kvcache

import (
	"fmt"
	"math"

	"thymesisflow/internal/core"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

// RunConfig parameterizes the Figure 8 experiment.
type RunConfig struct {
	// Threads is the client thread count (paper: 64).
	Threads int
	// RequestsPerThread is the measured request count per client thread
	// (paper: 1M; scaled down by default — the latency distribution
	// stabilizes far earlier).
	RequestsPerThread int
	// CacheBytes is the cache capacity; Keys the key-space size. Defaults
	// preserve the paper's ~81% hit ratio at simulation scale.
	CacheBytes int64
	Keys       int64
	// ServiceInstr is the per-request server CPU cost (kernel TCP/IP +
	// event loop + parsing), the dominant term of memcached service time.
	ServiceInstr int64
	// ProxyInstr is the per-request cost of the single-threaded
	// Twemproxy instance used by the scale-out configuration.
	ProxyInstr int64
	// Workers per server instance (memcached -t default: 4).
	Workers int
}

// DefaultRunConfig returns calibrated parameters (see EXPERIMENTS.md for
// the scale mapping).
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Threads:           64,
		RequestsPerThread: 4000,
		CacheBytes:        208 << 20,
		Keys:              5_000_000,
		ServiceInstr:      280_000,
		ProxyInstr:        84_000,
		Workers:           4,
	}
}

// Result carries the Figure 8 measurements for one configuration.
type Result struct {
	Config core.MemoryConfig
	// GetLatency is the GET response-latency distribution in microseconds.
	GetLatency *metrics.Histogram
	// SetLatency is the SET distribution (the paper reports trends match).
	SetLatency *metrics.Histogram
	HitRatio   float64
	Throughput float64 // ops/sec
}

// Run executes the experiment under one memory configuration.
func Run(cfgName core.MemoryConfig, rc RunConfig) (*Result, error) {
	// The key-space/LLC proportions drive cache-friendliness; shrink the
	// LLC in step with the scaled-down arena so the LLC covers the same
	// share of requests as at paper scale (see EXPERIMENTS.md).
	tb, err := core.NewTestbedWith(cfgName, rc.CacheBytes*2, func(hc *core.HostConfig) {
		hc.LLCSizePerSocket = 24 << 20
	})
	if err != nil {
		return nil, err
	}
	return RunOn(tb, rc)
}

// RunOn executes the experiment on a caller-provided testbed (used by
// ablations that customize the attachment, e.g. the HBM caching layer).
func RunOn(tb *core.Testbed, rc RunConfig) (*Result, error) {
	if rc.Threads <= 0 || rc.RequestsPerThread <= 0 {
		return nil, fmt.Errorf("kvcache: bad run config %+v", rc)
	}
	cfgName := tb.Config
	k := tb.Cluster.K
	var err error

	etc := DefaultETCConfig(rc.Keys)

	// Build server instances: one normally, two (half-capacity each,
	// hash-partitioned) for scale-out, fronted by a Twemproxy model.
	instances := tb.ServerInstances()
	servers := make([]*Server, len(instances))
	for i, host := range instances {
		capacity := rc.CacheBytes / int64(len(instances))
		var placer numa.Placer
		if host == tb.Server {
			placer = tb.Placer()
		} else {
			placer = numa.Local(host.LocalNode(0))
		}
		servers[i], err = NewServer(host, placer, ServerConfig{
			CapacityBytes: capacity,
			Workers:       rc.Workers,
		})
		if err != nil {
			return nil, err
		}
		warm(servers[i], etc, i, len(instances))
	}

	proxy := newProxy(k, rc.ProxyInstr, instances[0])

	res := &Result{
		Config:     cfgName,
		GetLatency: metrics.NewHistogram(),
		SetLatency: metrics.NewHistogram(),
	}
	var ops int64
	wg := sim.NewWaitGroup(k)
	wg.Add(rc.Threads)
	for t := 0; t < rc.Threads; t++ {
		t := t
		k.Go(fmt.Sprintf("etc-client-%d", t), func(p *sim.Proc) {
			defer wg.Done()
			gen := NewGenerator(etc, int64(t))
			svcRng := NewGenerator(etc, int64(t)+100000) // jitter source
			for i := 0; i < rc.RequestsPerThread; i++ {
				op := gen.Next()
				start := p.Now()
				serve(p, tb, servers, proxy, rc, op, svcRng)
				lat := (p.Now() - start).Microseconds()
				if op.IsGet {
					res.GetLatency.Observe(lat)
				} else {
					res.SetLatency.Observe(lat)
				}
				ops++
			}
		})
	}
	k.Go("join", func(p *sim.Proc) { wg.Wait(p) })
	start := k.Now()
	k.Run()
	elapsed := k.Now() - start
	var hits, misses int64
	for _, s := range servers {
		h, m, _, _ := s.Stats()
		hits += h
		misses += m
	}
	if hits+misses > 0 {
		res.HitRatio = float64(hits) / float64(hits+misses)
	}
	if elapsed > 0 {
		res.Throughput = float64(ops) / elapsed.Seconds()
	}
	return res, nil
}

// serve prices one request end to end: client link, optional proxy hop,
// server worker service, response.
func serve(p *sim.Proc, tb *core.Testbed, servers []*Server, px *proxyModel,
	rc RunConfig, op Op, jitter *Generator) {
	const reqBytes = 60
	respBytes := int64(40)
	if op.IsGet {
		respBytes += op.Size
	}

	// Client -> data-centre ingress (10 GbE).
	tb.ClientLink.Send(p, reqBytes)

	scaleOut := len(servers) > 1
	var srv *Server
	if scaleOut {
		// Twemproxy terminates the client connection and forwards to the
		// hash-selected instance over the server network; the internal
		// network is not exposed to clients (Section VI-E).
		px.process(p)
		srv = servers[op.Key%uint64(len(servers))]
		if srv != servers[0] {
			tb.ServerLink.Send(p, reqBytes)
			defer tb.ServerLink.SendReverse(p, respBytes)
		}
	} else {
		srv = servers[0]
	}

	th := srv.workers.acquire(p)
	// Per-request network stack + event loop CPU with lognormal jitter.
	th.Compute(p, jitterInstr(rc.ServiceInstr, jitter))
	if op.IsGet {
		srv.Get(p, th, op.Key)
	} else {
		srv.Set(p, th, op.Key, op.Size, nil) //nolint:errcheck
	}
	srv.workers.release(th)

	// Response back to the client.
	tb.ClientLink.SendReverse(p, respBytes)
}

// jitterInstr applies ~N(0, 0.25) lognormal jitter to the service cost so
// latency tails reflect real service-time variability.
func jitterInstr(mean int64, g *Generator) int64 {
	u1 := g.rng.Float64()
	u2 := g.rng.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	n := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	const sigma = 0.25
	v := float64(mean) * math.Exp(sigma*n-sigma*sigma/2)
	return int64(v)
}

// warm fills the cache with the hottest keys (zipf-weighted draws) without
// advancing simulated time, as the paper's warm-up phase does before
// measurement.
func warm(s *Server, etc ETCConfig, shard, shards int) {
	gen := NewGenerator(etc, int64(shard)*31+999)
	target := s.capacity * 95 / 100
	maxDraws := etc.Keys * 4
	for draws := int64(0); draws < maxDraws && s.used < target; draws++ {
		op := gen.Next()
		if shards > 1 && op.Key%uint64(shards) != uint64(shard) {
			continue
		}
		if _, ok := s.index[op.Key]; ok {
			continue
		}
		cls, err := classFor(op.Size)
		if err != nil {
			continue
		}
		off, err := s.alloc(cls)
		if err != nil {
			break
		}
		it := &item{key: op.Key, size: op.Size, off: off, cls: cls}
		s.index[op.Key] = it
		s.lruPush(it)
	}
	// Warm-up traffic does not count toward measured statistics.
	s.hits, s.misses, s.sets, s.evicts = 0, 0, 0, 0
}

// proxyModel is the single-threaded Twemproxy instance of the scale-out
// deployment.
type proxyModel struct {
	busy *sim.Resource
	th   *mem.Thread
	cost int64
}

func newProxy(k *sim.Kernel, instr int64, host *core.Host) *proxyModel {
	return &proxyModel{
		busy: sim.NewResource(k, 1),
		th:   host.NewThread(0),
		cost: instr,
	}
}

func (px *proxyModel) process(p *sim.Proc) {
	px.busy.Acquire(p, 1)
	px.th.Compute(p, px.cost)
	px.busy.Release(1)
}
