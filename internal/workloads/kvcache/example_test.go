package kvcache_test

import (
	"fmt"

	"thymesisflow/internal/core"
	"thymesisflow/internal/workloads/kvcache"
)

// Example runs a small ETC experiment on the local configuration and shows
// the quantities Figure 8 is built from.
func Example() {
	rc := kvcache.DefaultRunConfig()
	rc.Threads = 8
	rc.RequestsPerThread = 200
	rc.CacheBytes = 16 << 20
	rc.Keys = 200_000
	res, err := kvcache.Run(core.ConfigLocal, rc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("config=%v\n", res.Config)
	fmt.Printf("measured GETs > 1000: %v\n", res.GetLatency.Count() > 1000)
	fmt.Printf("GET:SET near 30:1: %v\n",
		res.GetLatency.Count() > 15*res.SetLatency.Count())
	fmt.Printf("p90 above p50: %v\n",
		res.GetLatency.Quantile(0.9) >= res.GetLatency.Quantile(0.5))
	// Output:
	// config=local
	// measured GETs > 1000: true
	// GET:SET near 30:1: true
	// p90 above p50: true
}
