package kvcache

import (
	"math"
	"testing"

	"thymesisflow/internal/core"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

func newLocalServer(t *testing.T, capacity int64, storeValues bool) (*core.Testbed, *Server) {
	t.Helper()
	tb, err := core.NewTestbed(core.ConfigLocal, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(tb.Server, numa.Local(tb.Server.LocalNode(0)), ServerConfig{
		CapacityBytes: capacity,
		StoreValues:   storeValues,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb, s
}

func TestGetSetRoundTrip(t *testing.T) {
	tb, s := newLocalServer(t, 1<<20, true)
	k := tb.Cluster.K
	k.Go("c", func(p *sim.Proc) {
		th := tb.Server.NewThread(0)
		val := []byte("hello-thymesisflow")
		if err := s.Set(p, th, 77, int64(len(val)), val); err != nil {
			t.Error(err)
			return
		}
		got, hit := s.Get(p, th, 77)
		if !hit || string(got) != string(val) {
			t.Errorf("get = %q, %v", got, hit)
		}
		if _, hit := s.Get(p, th, 999); hit {
			t.Error("missing key reported as hit")
		}
	})
	k.Run()
	hits, misses, sets, _ := s.Stats()
	if hits != 1 || misses != 1 || sets != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, sets)
	}
}

func TestLRUEvictionUnderPressure(t *testing.T) {
	// Tiny cache: a stream of distinct 1KiB-class values must evict the
	// oldest entries, and re-getting the newest must still hit.
	tb, s := newLocalServer(t, 64<<10, false)
	k := tb.Cluster.K
	k.Go("c", func(p *sim.Proc) {
		th := tb.Server.NewThread(0)
		for key := uint64(0); key < 500; key++ {
			if err := s.Set(p, th, key, 900, nil); err != nil {
				t.Error(err)
				return
			}
		}
		if _, hit := s.Get(p, th, 499); !hit {
			t.Error("most recent key evicted")
		}
		if _, hit := s.Get(p, th, 0); hit {
			t.Error("oldest key survived a 500-item stream through a 64-slot cache")
		}
	})
	k.Run()
	_, _, _, evicts := s.Stats()
	if evicts == 0 {
		t.Fatal("no evictions recorded")
	}
	if s.UsedBytes() > 64<<10 {
		t.Fatalf("capacity exceeded: %d", s.UsedBytes())
	}
}

func TestSetUpdatesExistingKey(t *testing.T) {
	tb, s := newLocalServer(t, 1<<20, true)
	k := tb.Cluster.K
	k.Go("c", func(p *sim.Proc) {
		th := tb.Server.NewThread(0)
		s.Set(p, th, 5, 10, []byte("aaaaaaaaaa")) //nolint:errcheck
		s.Set(p, th, 5, 4, []byte("bbbb"))        //nolint:errcheck
		got, hit := s.Get(p, th, 5)
		if !hit || string(got) != "bbbb" {
			t.Errorf("updated value = %q", got)
		}
	})
	k.Run()
}

func TestOversizedValueRejected(t *testing.T) {
	tb, s := newLocalServer(t, 1<<20, false)
	k := tb.Cluster.K
	k.Go("c", func(p *sim.Proc) {
		th := tb.Server.NewThread(0)
		if err := s.Set(p, th, 1, 1<<20, nil); err == nil {
			t.Error("oversized value accepted")
		}
	})
	k.Run()
}

func TestZipfSkew(t *testing.T) {
	gen := NewGenerator(DefaultETCConfig(1_000_000), 0)
	counts := make(map[int64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[gen.zipf.Next()]++
	}
	// Rank 1 should receive ~1/ln(N) of requests (~7%), and the top-100
	// ranks should dominate the long tail per-rank.
	if frac := float64(counts[1]) / draws; frac < 0.03 || frac > 0.15 {
		t.Fatalf("rank-1 fraction = %.3f, want ~0.07", frac)
	}
	if counts[1] < counts[1000]*10 {
		t.Fatalf("insufficient skew: rank1=%d rank1000=%d", counts[1], counts[1000])
	}
}

func TestValueSizesDeterministicAndBounded(t *testing.T) {
	cfg := DefaultETCConfig(1000)
	var total float64
	for rank := int64(1); rank <= 1000; rank++ {
		key := keyID(rank)
		a, b := valueSize(cfg, key), valueSize(cfg, key)
		if a != b {
			t.Fatal("value size not deterministic per key")
		}
		if a < 16 || a > 8192-itemOverhead {
			t.Fatalf("value size %d out of slab range", a)
		}
		total += float64(a)
	}
	mean := total / 1000
	if mean < 200 || mean > 900 {
		t.Fatalf("mean value size = %.0f, want a few hundred bytes", mean)
	}
}

func TestRunLocalSmall(t *testing.T) {
	rc := DefaultRunConfig()
	rc.Threads = 16
	rc.RequestsPerThread = 300
	rc.CacheBytes = 32 << 20
	rc.Keys = 1_000_000
	res, err := Run(core.ConfigLocal, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.GetLatency.Count() == 0 || res.SetLatency.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
	ratio := float64(res.GetLatency.Count()) / float64(res.SetLatency.Count())
	if ratio < 15 || ratio > 60 {
		t.Fatalf("GET:SET ratio = %.1f, want ~30", ratio)
	}
	if res.HitRatio < 0.5 || res.HitRatio > 0.99 {
		t.Fatalf("hit ratio = %.2f", res.HitRatio)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunLatencyOrderingAcrossConfigs(t *testing.T) {
	rc := DefaultRunConfig()
	rc.Threads = 32
	rc.RequestsPerThread = 400
	rc.CacheBytes = 64 << 20
	rc.Keys = 2_000_000
	mean := func(cfg core.MemoryConfig) float64 {
		res, err := Run(cfg, rc)
		if err != nil {
			t.Fatal(err)
		}
		return res.GetLatency.Mean()
	}
	local := mean(core.ConfigLocal)
	single := mean(core.ConfigSingleDisaggregated)
	scaleOut := mean(core.ConfigScaleOut)
	// Figure 8: local fastest; disaggregated within ~7%; scale-out worst
	// (proxy hop + network synchronization).
	if !(local < single) {
		t.Fatalf("local %.0fus should beat single-disaggregated %.0fus", local, single)
	}
	if single/local > 1.25 {
		t.Fatalf("single-disaggregated %.0fus more than 25%% over local %.0fus", single, local)
	}
	if !(scaleOut > single) {
		t.Fatalf("scale-out %.0fus should exceed single-disaggregated %.0fus", scaleOut, single)
	}
	if math.IsNaN(local + single + scaleOut) {
		t.Fatal("NaN latency")
	}
}

func TestSlabStats(t *testing.T) {
	tb, s := newLocalServer(t, 1<<20, false)
	k := tb.Cluster.K
	k.Go("c", func(p *sim.Proc) {
		th := tb.Server.NewThread(0)
		// Three items in the 128B class (value 40 + overhead 56 = 96 <= 128),
		// one in the 1024B class.
		for key := uint64(0); key < 3; key++ {
			if err := s.Set(p, th, key, 40, nil); err != nil {
				t.Error(err)
			}
		}
		if err := s.Set(p, th, 99, 900, nil); err != nil {
			t.Error(err)
		}
		// Delete-by-overwrite shrinks one item into a smaller class,
		// leaving a free slot behind.
		if err := s.Set(p, th, 99, 40, nil); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	slabs := s.Slabs()
	var total int64
	for _, st := range slabs {
		total += st.Items
		if st.WasteBytes < 0 {
			t.Fatalf("negative waste in class %d", st.ClassBytes)
		}
	}
	if total != 4 {
		t.Fatalf("total items = %d, want 4", total)
	}
	// Class 128 (index 1) holds all four items now; class 1024 has a freed slot.
	if slabs[1].Items != 4 {
		t.Fatalf("class-128 items = %d, want 4", slabs[1].Items)
	}
	if slabs[4].FreeSlots != 1 || slabs[4].Items != 0 {
		t.Fatalf("class-1024 = %+v, want one free slot", slabs[4])
	}
	// Used bytes never exceed class capacity.
	for _, st := range slabs {
		if st.Items > 0 && st.UsedBytes+st.WasteBytes != st.Items*st.ClassBytes {
			t.Fatalf("class %d accounting broken: %+v", st.ClassBytes, st)
		}
	}
}
