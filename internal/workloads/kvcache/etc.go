package kvcache

import (
	"math"
	"math/rand"
)

// ETCConfig shapes the load generator after the statistical models of the
// Facebook "ETC" Memcached pool (Atikoglu et al., SIGMETRICS'12), as the
// paper's evaluation does (Section VI-E).
type ETCConfig struct {
	Seed int64
	// Keys is the key-space size in distinct keys. The paper uses a 15 GiB
	// key space against a 10 GiB cache; the simulation preserves the ratio
	// at a reduced scale.
	Keys int64
	// ZipfExponent skews key popularity (paper: 1.0, following Breslau et
	// al.'s web-caching observations).
	ZipfExponent float64
	// GetToSet is the GET:SET ratio (paper/ETC: 30:1).
	GetToSet int
	// MeanValueBytes centers the lognormal value-size distribution; ETC
	// values are predominantly small.
	MeanValueBytes float64
}

// DefaultETCConfig returns the paper's workload parameters.
func DefaultETCConfig(keys int64) ETCConfig {
	return ETCConfig{
		Seed:           42,
		Keys:           keys,
		ZipfExponent:   1.0,
		GetToSet:       30,
		MeanValueBytes: 440,
	}
}

// Zipf samples ranks in [1, N] with probability proportional to 1/rank^s.
// It supports s <= 1 (which math/rand's Zipf does not) via inverse-CDF
// sampling on the continuous approximation, which is accurate for the large
// N used here.
type Zipf struct {
	rng *rand.Rand
	n   float64
	s   float64
	// precomputed normalization for the s != 1 branch
	pow float64
}

// NewZipf builds a sampler over [1, n].
func NewZipf(rng *rand.Rand, n int64, s float64) *Zipf {
	z := &Zipf{rng: rng, n: float64(n), s: s}
	if s != 1.0 {
		z.pow = math.Pow(z.n, 1-s)
	}
	return z
}

// Next returns the next rank in [1, n].
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	var k float64
	if z.s == 1.0 {
		// F(k) = ln(k)/ln(n)  =>  k = n^u
		k = math.Exp(u * math.Log(z.n))
	} else {
		// F(k) = (k^(1-s)-1)/(n^(1-s)-1)
		k = math.Pow(u*(z.pow-1)+1, 1/(1-z.s))
	}
	r := int64(k)
	if r < 1 {
		r = 1
	}
	if r > int64(z.n) {
		r = int64(z.n)
	}
	return r
}

// keyID maps a popularity rank to a key identifier. Ranks are scattered
// through the identifier space so that popular keys are not physically
// adjacent in the arena.
func keyID(rank int64) uint64 {
	x := uint64(rank)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// valueSize returns the deterministic value size of a key: lognormal by key
// hash, clamped to the slab range. Sizes are a property of the key so
// repeated SETs stay consistent.
func valueSize(cfg ETCConfig, key uint64) int64 {
	// Two uniform doubles from the key hash drive a Box-Muller normal.
	h1 := float64((key>>11)&0xFFFFFFFF) / float64(1<<32)
	h2 := float64((key*0x9E3779B97F4A7C15)>>32&0xFFFFFFFF) / float64(1<<32)
	if h1 < 1e-12 {
		h1 = 1e-12
	}
	norm := math.Sqrt(-2*math.Log(h1)) * math.Cos(2*math.Pi*h2)
	const sigma = 0.8
	mu := math.Log(cfg.MeanValueBytes) - sigma*sigma/2
	size := int64(math.Exp(mu + sigma*norm))
	if size < 16 {
		size = 16
	}
	if max := slabClasses[len(slabClasses)-1] - itemOverhead; size > max {
		size = max
	}
	return size
}

// Op is one generated request.
type Op struct {
	Key   uint64
	Size  int64 // value size (used by SETs)
	IsGet bool
}

// Generator produces the ETC request stream for one client thread.
type Generator struct {
	cfg  ETCConfig
	rng  *rand.Rand
	zipf *Zipf
}

// NewGenerator builds a thread-local generator (seed should differ per
// thread).
func NewGenerator(cfg ETCConfig, threadSeed int64) *Generator {
	rng := rand.New(rand.NewSource(cfg.Seed + threadSeed*7919))
	return &Generator{cfg: cfg, rng: rng, zipf: NewZipf(rng, cfg.Keys, cfg.ZipfExponent)}
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	rank := g.zipf.Next()
	key := keyID(rank)
	op := Op{Key: key, Size: valueSize(g.cfg, key)}
	op.IsGet = g.rng.Intn(g.cfg.GetToSet+1) != 0
	return op
}
