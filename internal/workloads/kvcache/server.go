// Package kvcache implements an in-memory application-level cache modelled
// on Memcached plus the Facebook "ETC" workload generator of Atikoglu et
// al., reproducing the paper's Figure 8 (GET latency CDFs across memory
// configurations) including the Twemproxy-fronted scale-out deployment.
//
// The cache is a real slab allocator with size classes, a hash index and an
// LRU per-item chain; its arena lives in simulated memory so every item
// header touch and value read is priced through the host's cache hierarchy
// and NUMA placement.
package kvcache

import (
	"fmt"

	"thymesisflow/internal/core"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

// itemOverhead is the per-item metadata footprint (memcached's item header,
// hash-chain pointer and CAS bookkeeping).
const itemOverhead = 56

// slabClasses are the value-size classes of the slab allocator.
var slabClasses = []int64{64, 128, 256, 512, 1024, 2048, 4096, 8192}

type item struct {
	key  uint64
	size int64 // value bytes
	off  int64 // arena offset of the item (header + value)
	cls  int

	// Intrusive LRU list.
	prev, next *item
}

// Server is one cache instance.
type Server struct {
	host  *core.Host
	arena *mem.Buffer

	capacity int64
	used     int64

	index map[uint64]*item
	// LRU sentinel: head.next is most recent.
	head, tail *item

	// Per-class free offsets.
	free    [][]int64
	nextOff int64

	// Workers is the worker-thread pool (memcached defaults to 4).
	workers *workerPool

	hits, misses, sets, evicts int64

	// values optionally stores real bytes for functional verification.
	values map[uint64][]byte
}

// ServerConfig parameterizes a cache instance.
type ServerConfig struct {
	// CapacityBytes is the cache memory limit (paper: 10 GiB; scaled in
	// simulation, see DESIGN.md).
	CapacityBytes int64
	// Workers is the worker thread count (memcached -t, default 4).
	Workers int
	// StoreValues keeps real value bytes for functional tests.
	StoreValues bool
}

// NewServer allocates the cache arena on the host with the given placement
// policy.
func NewServer(host *core.Host, placer numa.Placer, cfg ServerConfig) (*Server, error) {
	if cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("kvcache: capacity %d", cfg.CapacityBytes)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	arena, err := host.Mem.Alloc(cfg.CapacityBytes, placer)
	if err != nil {
		return nil, fmt.Errorf("kvcache: arena: %w", err)
	}
	s := &Server{
		host:     host,
		arena:    arena,
		capacity: cfg.CapacityBytes,
		index:    make(map[uint64]*item),
		free:     make([][]int64, len(slabClasses)),
		workers:  newWorkerPool(host, cfg.Workers),
	}
	h, t := &item{}, &item{}
	h.next, t.prev = t, h
	s.head, s.tail = h, t
	if cfg.StoreValues {
		s.values = make(map[uint64][]byte)
	}
	return s, nil
}

func classFor(size int64) (int, error) {
	for i, c := range slabClasses {
		if size+itemOverhead <= c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("kvcache: value of %d bytes exceeds largest slab class", size)
}

func (s *Server) lruPush(it *item) {
	it.prev = s.head
	it.next = s.head.next
	s.head.next.prev = it
	s.head.next = it
}

func (s *Server) lruRemove(it *item) {
	it.prev.next = it.next
	it.next.prev = it.prev
}

func (s *Server) lruTouch(it *item) {
	s.lruRemove(it)
	s.lruPush(it)
}

// alloc finds an arena slot for the class, evicting LRU items if needed.
func (s *Server) alloc(cls int) (int64, error) {
	if fl := s.free[cls]; len(fl) > 0 {
		off := fl[len(fl)-1]
		s.free[cls] = fl[:len(fl)-1]
		s.used += slabClasses[cls]
		return off, nil
	}
	if s.nextOff+slabClasses[cls] <= s.capacity {
		off := s.nextOff
		s.nextOff += slabClasses[cls]
		s.used += slabClasses[cls]
		return off, nil
	}
	// Evict from the LRU tail until a slot of this class frees up.
	for s.tail.prev != s.head {
		victim := s.tail.prev
		s.evict(victim)
		if fl := s.free[cls]; len(fl) > 0 {
			off := fl[len(fl)-1]
			s.free[cls] = fl[:len(fl)-1]
			s.used += slabClasses[cls]
			return off, nil
		}
	}
	return 0, fmt.Errorf("kvcache: arena exhausted for class %d", cls)
}

func (s *Server) evict(it *item) {
	s.lruRemove(it)
	delete(s.index, it.key)
	s.free[it.cls] = append(s.free[it.cls], it.off)
	s.used -= slabClasses[it.cls]
	s.evicts++
	if s.values != nil {
		delete(s.values, it.key)
	}
}

// bucketAddr maps a key to its hash-bucket cacheline. The hash table is
// interleaved in the arena like memcached's, so bucket probes hit scattered
// lines across the full cache footprint.
func (s *Server) bucketAddr(key uint64) uint64 {
	line := (key * 0x9E3779B97F4A7C15) % uint64(s.capacity/mem.CachelineSize)
	return s.arena.Addr(int64(line) * mem.CachelineSize)
}

// Get serves a GET on the calling (already acquired) worker thread. It
// prices the hash-bucket probe, the item-header touch (memcached updates
// LRU state on every hit) and the value read. Returns the value when
// StoreValues is enabled.
func (s *Server) Get(p *sim.Proc, th *mem.Thread, key uint64) (val []byte, hit bool) {
	// Hash + bucket probe (a scattered cacheline in the arena).
	th.Compute(p, 400)
	th.Access(p, s.bucketAddr(key), 8, false)
	it, ok := s.index[key]
	if !ok {
		s.misses++
		return nil, false
	}
	// Item header access (dependent pointer chase) + LRU touch write.
	th.Access(p, s.arena.Addr(it.off), itemOverhead, true)
	// Value read.
	th.Access(p, s.arena.Addr(it.off+itemOverhead), it.size, false)
	s.lruTouch(it)
	s.hits++
	if s.values != nil {
		val = s.values[key]
	}
	return val, true
}

// Set stores a value of the given size.
func (s *Server) Set(p *sim.Proc, th *mem.Thread, key uint64, size int64, value []byte) error {
	th.Compute(p, 500)
	th.Access(p, s.bucketAddr(key), 8, true)
	cls, err := classFor(size)
	if err != nil {
		return err
	}
	if old, ok := s.index[key]; ok {
		s.evict(old)
	}
	off, err := s.alloc(cls)
	if err != nil {
		return err
	}
	it := &item{key: key, size: size, off: off, cls: cls}
	s.index[key] = it
	s.lruPush(it)
	// Header + value write.
	th.Access(p, s.arena.Addr(off), itemOverhead+size, true)
	s.sets++
	if s.values != nil {
		s.values[key] = append([]byte(nil), value...)
	}
	return nil
}

// Stats returns (hits, misses, sets, evictions).
func (s *Server) Stats() (hits, misses, sets, evicts int64) {
	return s.hits, s.misses, s.sets, s.evicts
}

// HitRatio returns hits/(hits+misses).
func (s *Server) HitRatio() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}

// UsedBytes returns the occupied arena bytes.
func (s *Server) UsedBytes() int64 { return s.used }

// SlabStats describes one size class's occupancy (memcached's `stats
// slabs` view).
type SlabStats struct {
	ClassBytes int64 // slot size of the class
	Items      int64 // live items in the class
	FreeSlots  int64 // carved but unused slots
	UsedBytes  int64 // live bytes including per-item overhead
	WasteBytes int64 // internal fragmentation: slot size minus item size
}

// Slabs reports per-class occupancy, ordered by class size.
func (s *Server) Slabs() []SlabStats {
	out := make([]SlabStats, len(slabClasses))
	for i, c := range slabClasses {
		out[i].ClassBytes = c
		out[i].FreeSlots = int64(len(s.free[i]))
	}
	for it := s.head.next; it != s.tail; it = it.next {
		st := &out[it.cls]
		st.Items++
		st.UsedBytes += itemOverhead + it.size
		st.WasteBytes += slabClasses[it.cls] - (itemOverhead + it.size)
	}
	return out
}

// Close releases the arena.
func (s *Server) Close() { s.host.Mem.Free(s.arena) }

// workerPool hands out server worker threads (each with private L1/L2) to
// incoming requests, queueing FIFO when all workers are busy — the
// memcached event-loop worker model.
type workerPool struct {
	free []*mem.Thread
	sig  *sim.Signal
	all  []*mem.Thread
}

func newWorkerPool(host *core.Host, n int) *workerPool {
	wp := &workerPool{sig: sim.NewSignal(host.K)}
	for i := 0; i < n; i++ {
		th := host.NewThread(i)
		wp.free = append(wp.free, th)
		wp.all = append(wp.all, th)
	}
	return wp
}

func (wp *workerPool) acquire(p *sim.Proc) *mem.Thread {
	for len(wp.free) == 0 {
		wp.sig.Wait(p)
	}
	th := wp.free[len(wp.free)-1]
	wp.free = wp.free[:len(wp.free)-1]
	return th
}

func (wp *workerPool) release(th *mem.Thread) {
	wp.free = append(wp.free, th)
	wp.sig.Wake()
}
