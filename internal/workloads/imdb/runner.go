package imdb

import (
	"fmt"

	"thymesisflow/internal/core"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/workloads/ycsb"
)

// RunConfig parameterizes one YCSB-against-VoltDB experiment.
type RunConfig struct {
	Workload   ycsb.Workload
	Partitions int
	// Clients is the YCSB client thread count (paper: 2000; scaled by
	// default — the system saturates far earlier).
	Clients int
	// OpsPerClient is the measured operation count per client.
	OpsPerClient int
	Engine       EngineConfig
}

// DefaultRunConfig returns calibrated parameters for one (workload,
// partitions) cell of Figures 6 and 7.
func DefaultRunConfig(w ycsb.Workload, partitions int) RunConfig {
	return RunConfig{
		Workload:     w,
		Partitions:   partitions,
		Clients:      200,
		OpsPerClient: 40,
		Engine:       DefaultEngineConfig(partitions),
	}
}

// Result carries one cell of Figures 6 and 7.
type Result struct {
	Workload   ycsb.Workload
	Partitions int
	Config     core.MemoryConfig

	// Throughput in operations/sec (Figure 7).
	Throughput float64
	// Perf carries the profiling counters (Figure 6): package IPC,
	// utilized cores, backend-stall fraction.
	Perf metrics.PerfSample
}

// isWrite reports whether the operation mutates state.
func isWrite(k ycsb.OpKind) bool {
	return k == ycsb.OpUpdate || k == ycsb.OpInsert || k == ycsb.OpReadModifyWrite
}

// Run executes YCSB against the database under one memory configuration.
func Run(cfgName core.MemoryConfig, rc RunConfig) (*Result, error) {
	if rc.Clients <= 0 || rc.OpsPerClient <= 0 {
		return nil, fmt.Errorf("imdb: bad run config %+v", rc)
	}
	tableBytes := rc.Engine.Records * RecordBytes
	tb, err := core.NewTestbedWith(cfgName, tableBytes*3, func(hc *core.HostConfig) {
		// Keep the LLC-to-table proportion of the paper's setup (tables of
		// tens of GiB vs 120 MiB LLC) at simulation scale.
		hc.LLCSizePerSocket = 16 << 20
	})
	if err != nil {
		return nil, err
	}
	k := tb.Cluster.K

	// Build instances: one DB normally; under scale-out the partitions are
	// split across both server nodes with local memory, and writers pay
	// their ordering exchange over the server Ethernet instead of
	// in-process (the paper's "network synchronization across partitions").
	instances := tb.ServerInstances()
	dbs := make([]*DB, len(instances))
	var clusterOrder *sim.Resource
	if len(instances) > 1 {
		clusterOrder = sim.NewResource(k, 1)
	}
	for i, host := range instances {
		eng := rc.Engine
		eng.Partitions = rc.Partitions / len(instances)
		if eng.Partitions == 0 {
			eng.Partitions = 1
		}
		eng.Records = rc.Engine.Records / int64(len(instances))
		var placer numa.Placer
		if host == tb.Server {
			placer = tb.Placer()
		} else {
			placer = numa.Local(host.LocalNode(0))
		}
		dbs[i], err = New(host, placer, eng)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Workload: rc.Workload, Partitions: rc.Partitions, Config: cfgName}
	var ops int64
	wg := sim.NewWaitGroup(k)
	wg.Add(rc.Clients)
	for c := 0; c < rc.Clients; c++ {
		c := c
		k.Go(fmt.Sprintf("ycsb-client-%d", c), func(p *sim.Proc) {
			defer wg.Done()
			gen, err := ycsb.NewGenerator(rc.Workload, ycsb.DefaultConfig(rc.Engine.Records), int64(c))
			if err != nil {
				panic(err)
			}
			for i := 0; i < rc.OpsPerClient; i++ {
				op := gen.Next()
				respBytes := int64(RecordBytes)
				if op.Kind == ycsb.OpScan {
					respBytes = int64(op.ScanLen) * RecordBytes
				}
				tb.ClientLink.Send(p, 80)
				db := dbs[0]
				if len(dbs) > 1 {
					// Shard by the low key bits, then strip them so the
					// instance-local partition routing stays uniform.
					db = dbs[op.Key%uint64(len(dbs))]
					op.Key /= uint64(len(dbs))
				}
				db.Submit(p, op)
				if clusterOrder != nil && isWrite(op.Kind) {
					// Multi-node writes acknowledge only after the
					// cluster-wide ordering round over the server Ethernet
					// completes — the "network synchronization across data
					// partitions" of Section VI-D. The round is pipelined
					// (it does not block the execution site).
					clusterOrder.Acquire(p, 1)
					p.Sleep(7 * sim.Microsecond)
					clusterOrder.Release(1)
				}
				tb.ClientLink.SendReverse(p, respBytes)
				ops++
			}
		})
	}
	k.Go("join", func(p *sim.Proc) {
		wg.Wait(p)
		for _, db := range dbs {
			db.Stop()
		}
	})
	start := k.Now()
	k.Run()
	window := k.Now() - start
	if window > 0 {
		res.Throughput = float64(ops) / window.Seconds()
	}
	// Aggregate the VoltDB-process perf counters (the paper profiles only
	// the server process on the primary node).
	res.Perf = dbs[0].Perf(int64(window))
	for _, db := range dbs[1:] {
		extra := db.Perf(int64(window))
		res.Perf.Add(extra)
	}
	return res, nil
}
