package imdb

import (
	"testing"

	"thymesisflow/internal/core"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/workloads/ycsb"
)

func quickRun(t *testing.T, cfg core.MemoryConfig, w ycsb.Workload, partitions int) *Result {
	t.Helper()
	rc := DefaultRunConfig(w, partitions)
	rc.Clients = 100
	rc.OpsPerClient = 30
	res, err := Run(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEngineExecutesAllOps(t *testing.T) {
	tb, err := core.NewTestbed(core.ConfigLocal, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(tb.Server, numa.Local(tb.Server.LocalNode(0)), DefaultEngineConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	ops := []ycsb.Op{
		{Kind: ycsb.OpRead, Key: 17},
		{Kind: ycsb.OpUpdate, Key: 17},
		{Kind: ycsb.OpInsert, Key: 400_001},
		{Kind: ycsb.OpScan, Key: 100, ScanLen: 10},
		{Kind: ycsb.OpReadModifyWrite, Key: 42},
	}
	tb.Cluster.K.Go("client", func(p *sim.Proc) {
		for _, op := range ops {
			db.Submit(p, op)
		}
		db.Stop()
	})
	tb.Cluster.K.Run()
	if db.Executed() != int64(len(ops)) {
		t.Fatalf("executed %d, want %d", db.Executed(), len(ops))
	}
	perf := db.Perf(1)
	if perf.Instructions == 0 || perf.StallBackend == 0 {
		t.Fatal("perf counters empty")
	}
}

func TestPartitionRouting(t *testing.T) {
	tb, _ := core.NewTestbed(core.ConfigLocal, 1<<30)
	db, err := New(tb.Server, numa.Local(tb.Server.LocalNode(0)), DefaultEngineConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 64; key++ {
		if got := db.PartitionOf(key).id; got != int(key%8) {
			t.Fatalf("key %d routed to %d", key, got)
		}
	}
}

func TestBackendStallsMatchPaper(t *testing.T) {
	// Section VI-D: ~55.5% backend stalls local, ~80.9% single-disaggregated.
	local := quickRun(t, core.ConfigLocal, ycsb.WorkloadA, 16)
	remote := quickRun(t, core.ConfigSingleDisaggregated, ycsb.WorkloadA, 16)
	ls := local.Perf.BackendStallFraction()
	rs := remote.Perf.BackendStallFraction()
	if ls < 0.45 || ls > 0.68 {
		t.Fatalf("local stall fraction %.2f, want ~0.55", ls)
	}
	if rs < 0.72 || rs > 0.90 {
		t.Fatalf("disaggregated stall fraction %.2f, want ~0.81", rs)
	}
	if rs <= ls {
		t.Fatal("disaggregation must raise backend stalls")
	}
}

func TestDisaggregationRaisesUCCAndLowersIPC(t *testing.T) {
	// Section VI-D: under disaggregation the executors stall on memory
	// while synchronization waits stay constant, so utilized cores go UP
	// and thread IPC goes DOWN.
	local := quickRun(t, core.ConfigLocal, ycsb.WorkloadA, 16)
	remote := quickRun(t, core.ConfigSingleDisaggregated, ycsb.WorkloadA, 16)
	if remote.Perf.UtilizedCores() <= local.Perf.UtilizedCores() {
		t.Fatalf("UCC: remote %.2f <= local %.2f", remote.Perf.UtilizedCores(), local.Perf.UtilizedCores())
	}
	if remote.Perf.ThreadIPC() >= local.Perf.ThreadIPC() {
		t.Fatalf("thread IPC: remote %.2f >= local %.2f", remote.Perf.ThreadIPC(), local.Perf.ThreadIPC())
	}
}

func TestMixedWorkloadScalesWithPartitions(t *testing.T) {
	// Figure 6: for update-heavy workloads the biggest IPC gain comes from
	// 4 -> 16 partitions.
	p4 := quickRun(t, core.ConfigLocal, ycsb.WorkloadA, 4)
	p16 := quickRun(t, core.ConfigLocal, ycsb.WorkloadA, 16)
	if p16.Perf.PackageIPC() <= p4.Perf.PackageIPC()*1.3 {
		t.Fatalf("A package IPC: p16 %.2f vs p4 %.2f, want strong growth",
			p16.Perf.PackageIPC(), p4.Perf.PackageIPC())
	}
	if p16.Throughput <= p4.Throughput {
		t.Fatal("A throughput should grow with partitions")
	}
}

func TestReadWorkloadDoesNotScaleWithPartitions(t *testing.T) {
	// Figure 6: READ-dominated workloads gain little IPC from horizontal
	// scaling under local memory.
	p4 := quickRun(t, core.ConfigLocal, ycsb.WorkloadC, 4)
	p32 := quickRun(t, core.ConfigLocal, ycsb.WorkloadC, 32)
	if p32.Perf.PackageIPC() > p4.Perf.PackageIPC()*1.25 {
		t.Fatalf("C package IPC grew %.2f -> %.2f with partitions", p4.Perf.PackageIPC(), p32.Perf.PackageIPC())
	}
}

func TestFig7LowPartitionPenalty(t *testing.T) {
	// Figure 7: with 4 partitions the ThymesisFlow configurations trail
	// local and scale-out clearly.
	local := quickRun(t, core.ConfigLocal, ycsb.WorkloadA, 4)
	single := quickRun(t, core.ConfigSingleDisaggregated, ycsb.WorkloadA, 4)
	if single.Throughput >= local.Throughput*0.97 {
		t.Fatalf("A@4p: single %.0f not clearly below local %.0f", single.Throughput, local.Throughput)
	}
	if single.Throughput < local.Throughput*0.6 {
		t.Fatalf("A@4p: single %.0f unrealistically far below local %.0f", single.Throughput, local.Throughput)
	}
}

func TestFig7HighPartitionParity(t *testing.T) {
	// Figure 7: with 32 partitions the configurations converge (within ~10%).
	local := quickRun(t, core.ConfigLocal, ycsb.WorkloadA, 32)
	single := quickRun(t, core.ConfigSingleDisaggregated, ycsb.WorkloadA, 32)
	scale := quickRun(t, core.ConfigScaleOut, ycsb.WorkloadA, 32)
	if single.Throughput < local.Throughput*0.85 {
		t.Fatalf("A@32p: single %.0f more than 15%% below local %.0f", single.Throughput, local.Throughput)
	}
	if scale.Throughput < local.Throughput*0.70 || scale.Throughput > local.Throughput*1.15 {
		t.Fatalf("A@32p: scale-out %.0f vs local %.0f out of band", scale.Throughput, local.Throughput)
	}
}

func TestFig7WorkloadESimilarAcrossConfigs(t *testing.T) {
	// Figure 7: workload E saturates on scans; throughput is similar for
	// all configurations (and far below A).
	rcE := func(cfg core.MemoryConfig) float64 {
		rc := DefaultRunConfig(ycsb.WorkloadE, 4)
		rc.Clients = 60
		rc.OpsPerClient = 15
		res, err := Run(cfg, rc)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	local := rcE(core.ConfigLocal)
	single := rcE(core.ConfigSingleDisaggregated)
	if single < local*0.7 || single > local*1.3 {
		t.Fatalf("E: single %.0f vs local %.0f not similar", single, local)
	}
	a := quickRun(t, core.ConfigLocal, ycsb.WorkloadA, 4)
	if local > a.Throughput {
		t.Fatalf("E throughput %.0f should be far below A %.0f", local, a.Throughput)
	}
}
