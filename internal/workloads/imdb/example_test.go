package imdb_test

import (
	"fmt"

	"thymesisflow/internal/core"
	"thymesisflow/internal/workloads/imdb"
	"thymesisflow/internal/workloads/ycsb"
)

// Example runs one Figure 6 profiling cell: YCSB workload A against the
// partitioned engine on disaggregated memory, reporting the perf-derived
// metrics the paper plots.
func Example() {
	rc := imdb.DefaultRunConfig(ycsb.WorkloadA, 8)
	rc.Clients = 50
	rc.OpsPerClient = 20
	res, err := imdb.Run(core.ConfigSingleDisaggregated, rc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload=%v partitions=%d\n", res.Workload, res.Partitions)
	fmt.Printf("throughput positive: %v\n", res.Throughput > 0)
	fmt.Printf("backend stalls dominate on disaggregated memory: %v\n",
		res.Perf.BackendStallFraction() > 0.5)
	fmt.Printf("utilized cores below partition count: %v\n",
		res.Perf.UtilizedCores() < 8)
	// Output:
	// workload=A partitions=8
	// throughput positive: true
	// backend stalls dominate on disaggregated memory: true
	// utilized cores below partition count: true
}
