// Package imdb implements a VoltDB/H-Store-style partitioned in-memory
// database: data is split into partitions, each owned by exactly one
// single-threaded executor, so single-partition transactions run without
// locks while write transactions pay a global-ordering exchange — the
// synchronization across data partitions whose interaction with memory
// latency drives the paper's Figure 6 (IPC / utilized-cores profiling) and
// Figure 7 (YCSB throughput) results.
//
// Cost model (calibrated against the paper's perf numbers — 55.5% backend
// stalls local, 80.9% single-disaggregated): every transaction passes
// through a single-threaded dispatch stage (VoltDB's network/initiator
// thread, the scaling limit for read-dominated workloads), then executes on
// its partition's thread as CPU work + LLC-resident index walking (equal in
// every configuration) + dependent pointer chases and a row access that go
// to DRAM or across ThymesisFlow depending on page placement.
package imdb

import (
	"fmt"

	"thymesisflow/internal/core"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/metrics"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
	"thymesisflow/internal/workloads/ycsb"
)

// RecordBytes is the YCSB row size (10 fields x 100 bytes, rounded to a
// cacheline multiple).
const RecordBytes = 1024

// EngineConfig tunes the database engine.
type EngineConfig struct {
	// Partitions is the number of data partitions (the paper sweeps 4, 16,
	// 32, 64).
	Partitions int
	// Records is the table size in rows.
	Records int64
	// ReadInstr is the executor CPU cost of a single-row read.
	ReadInstr int64
	// WriteInstr is the executor CPU cost of an update/insert.
	WriteInstr int64
	// ScanInstrPerRow is the per-row CPU cost of a range scan.
	ScanInstrPerRow int64
	// DispatchInstr is the per-transaction CPU cost of the single-threaded
	// network/initiator stage; DispatchHotLines its LLC-resident buffer
	// touches (message deserialization).
	DispatchInstr    int64
	DispatchHotLines int64
	// HotLines is the number of LLC-resident cachelines touched per
	// transaction (index upper levels, plan cache, JVM heap).
	HotLines int64
	// ChaseDepth is the number of dependent (serialized) cacheline misses
	// per row lookup (index leaf walk).
	ChaseDepth int
	// ExchangeLat is the off-CPU wait a write transaction spends in the
	// global-ordering exchange with the other partitions. During this wait
	// the executor yields its core — the mechanism behind the paper's
	// utilized-cores observations.
	ExchangeLat sim.Time
	// ExchangeSlot is the serialized coordinator occupancy per write (the
	// ordering pipeline's per-transaction slot).
	ExchangeSlot sim.Time
}

// DefaultEngineConfig returns parameters calibrated to the paper's
// profiling numbers (Section VI-D).
func DefaultEngineConfig(partitions int) EngineConfig {
	return EngineConfig{
		Partitions:       partitions,
		Records:          400_000,
		ReadInstr:        7_000,
		WriteInstr:       9_000,
		ScanInstrPerRow:  2_500,
		DispatchInstr:    12_000,
		DispatchHotLines: 60,
		HotLines:         70,
		ChaseDepth:       5,
		ExchangeLat:      40 * sim.Microsecond,
		ExchangeSlot:     1250 * sim.Nanosecond,
	}
}

// llcHitLatency is the fixed cost of one LLC-resident line touch.
const llcHitLatency = 26 * sim.Nanosecond

// request is one transaction queued to a partition executor.
type request struct {
	op   ycsb.Op
	done *sim.Signal
}

// Partition is one data partition with its single-threaded executor.
type Partition struct {
	id    int
	db    *DB
	arena *mem.Buffer
	queue []*request
	work  *sim.Signal
	th    *mem.Thread

	executed int64
	chaseRng uint64
}

// DB is one database instance (one per server node; two under scale-out).
type DB struct {
	host       *core.Host
	cfg        EngineConfig
	partitions []*Partition

	// dispatch is the single-threaded network/initiator stage.
	dispatchQ    []*request
	dispatchWork *sim.Signal
	dispatchTh   *mem.Thread

	// exchange serializes the write-ordering coordinator slot.
	exchange *sim.Resource
	stopped  bool
}

// New builds a database instance on the host with the given page placement.
func New(host *core.Host, placer numa.Placer, cfg EngineConfig) (*DB, error) {
	if cfg.Partitions <= 0 || cfg.Records <= 0 {
		return nil, fmt.Errorf("imdb: bad engine config %+v", cfg)
	}
	db := &DB{
		host:         host,
		cfg:          cfg,
		dispatchWork: sim.NewSignal(host.K),
		dispatchTh:   host.NewThread(0),
		exchange:     sim.NewResource(host.K, 1),
	}
	rowsPer := cfg.Records / int64(cfg.Partitions)
	for i := 0; i < cfg.Partitions; i++ {
		// Headroom for workload D/E inserts.
		arena, err := host.Mem.Alloc((rowsPer*3/2+1)*RecordBytes, placer)
		if err != nil {
			return nil, fmt.Errorf("imdb: partition %d arena: %w", i, err)
		}
		p := &Partition{
			id:       i,
			db:       db,
			arena:    arena,
			work:     sim.NewSignal(host.K),
			th:       host.NewThread(i),
			chaseRng: uint64(i)*0x9E3779B97F4A7C15 + 1,
		}
		db.partitions = append(db.partitions, p)
		db.startExecutor(p)
	}
	db.startDispatcher()
	return db, nil
}

// PartitionOf routes a key to its partition.
func (db *DB) PartitionOf(key uint64) *Partition {
	return db.partitions[key%uint64(len(db.partitions))]
}

// Submit enqueues a transaction and blocks the caller until it completes.
func (db *DB) Submit(p *sim.Proc, op ycsb.Op) {
	req := &request{op: op, done: sim.NewSignal(db.host.K)}
	db.dispatchQ = append(db.dispatchQ, req)
	db.dispatchWork.Wake()
	req.done.Wait(p)
}

// Stop terminates the executors and dispatcher.
func (db *DB) Stop() {
	db.stopped = true
	db.dispatchWork.Broadcast()
	for _, part := range db.partitions {
		part.work.Broadcast()
	}
}

func (db *DB) startDispatcher() {
	db.host.K.Go("imdb-dispatch", func(proc *sim.Proc) {
		for {
			for len(db.dispatchQ) == 0 {
				if db.stopped {
					return
				}
				db.dispatchWork.Wait(proc)
			}
			req := db.dispatchQ[0]
			db.dispatchQ = db.dispatchQ[1:]
			// Network deserialize + transaction initiation.
			db.dispatchTh.Compute(proc, db.cfg.DispatchInstr)
			db.dispatchTh.HitAccess(proc, db.cfg.DispatchHotLines, llcHitLatency)
			part := db.PartitionOf(req.op.Key)
			part.queue = append(part.queue, req)
			part.work.Wake()
		}
	})
}

func (db *DB) startExecutor(part *Partition) {
	db.host.K.Go(fmt.Sprintf("imdb-exec-%d", part.id), func(proc *sim.Proc) {
		for {
			for len(part.queue) == 0 {
				if db.stopped {
					return
				}
				// Idle executor yields its core (off-CPU wait).
				part.work.Wait(proc)
			}
			req := part.queue[0]
			part.queue = part.queue[1:]
			part.execute(proc, req.op)
			part.executed++
			req.done.Broadcast()
		}
	})
}

// rowAddr returns the arena offset of a key owned by this partition.
func (part *Partition) rowAddr(key uint64) int64 {
	local := int64(key) / int64(len(part.db.partitions))
	maxRows := part.arena.Size / RecordBytes
	return (local % maxRows) * RecordBytes
}

// chase walks `depth` dependent index lines scattered over the partition
// arena: each access must complete before the next address is known, so
// remote latency is paid serially — the dominant term of the paper's
// backend-stall blow-up under disaggregation.
func (part *Partition) chase(proc *sim.Proc, depth int) {
	lines := uint64(part.arena.Size / mem.CachelineSize)
	for i := 0; i < depth; i++ {
		part.chaseRng = part.chaseRng*6364136223846793005 + 1442695040888963407
		off := int64(part.chaseRng%lines) * mem.CachelineSize
		part.th.Access(proc, part.arena.Addr(off), 8, false)
	}
}

// lookup prices one row lookup: LLC-resident index upper levels, the
// dependent leaf chase, and the row itself.
func (part *Partition) lookup(proc *sim.Proc, key uint64, write bool) {
	cfg := part.db.cfg
	part.th.HitAccess(proc, cfg.HotLines, llcHitLatency)
	part.chase(proc, cfg.ChaseDepth)
	part.th.Access(proc, part.arena.Addr(part.rowAddr(key)), RecordBytes, write)
}

func (part *Partition) execute(proc *sim.Proc, op ycsb.Op) {
	th := part.th
	cfg := part.db.cfg
	switch op.Kind {
	case ycsb.OpRead:
		th.Compute(proc, cfg.ReadInstr)
		part.lookup(proc, op.Key, false)
	case ycsb.OpUpdate, ycsb.OpInsert:
		th.Compute(proc, cfg.WriteInstr)
		part.lookup(proc, op.Key, true)
		part.globalExchange(proc)
	case ycsb.OpScan:
		n := op.ScanLen
		if n <= 0 {
			n = 1
		}
		th.Compute(proc, cfg.ReadInstr)
		part.lookup(proc, op.Key, false)
		base := part.rowAddr(op.Key)
		for i := 1; i < n; i++ {
			th.Compute(proc, cfg.ScanInstrPerRow)
			off := base + int64(i)*RecordBytes
			if off+RecordBytes > part.arena.Size {
				off = 0
			}
			th.Access(proc, part.arena.Addr(off), RecordBytes, false)
		}
	case ycsb.OpReadModifyWrite:
		th.Compute(proc, cfg.ReadInstr)
		part.lookup(proc, op.Key, false)
		th.Compute(proc, cfg.WriteInstr)
		th.Access(proc, part.arena.Addr(part.rowAddr(op.Key)), RecordBytes, true)
		part.globalExchange(proc)
	}
}

// globalExchange is the write-transaction ordering agreement: a short
// serialized slot on the coordinator plus an off-CPU wait for the ordering
// round to complete. Under disaggregation the executor's on-CPU (stalled)
// time grows while this wait stays constant, which raises the measured
// utilized-cores — the effect the paper reports in Section VI-D.
func (part *Partition) globalExchange(proc *sim.Proc) {
	db := part.db
	db.exchange.Acquire(proc, 1)
	proc.Sleep(db.cfg.ExchangeSlot)
	db.exchange.Release(1)
	proc.Sleep(db.cfg.ExchangeLat)
}

// Perf aggregates the database process's perf counters (executors +
// dispatcher) over the given window.
func (db *DB) Perf(windowPS int64) metrics.PerfSample {
	var total metrics.PerfSample
	for _, part := range db.partitions {
		total.Add(part.th.Perf())
	}
	total.Add(db.dispatchTh.Perf())
	total.WindowPS = windowPS
	return total
}

// ResetPerf zeroes all process counters.
func (db *DB) ResetPerf() {
	for _, part := range db.partitions {
		part.th.ResetPerf()
	}
	db.dispatchTh.ResetPerf()
}

// Executed returns the total transactions completed.
func (db *DB) Executed() int64 {
	var n int64
	for _, part := range db.partitions {
		n += part.executed
	}
	return n
}

// Close frees the partition arenas (executors must be stopped first).
func (db *DB) Close() {
	for _, part := range db.partitions {
		db.host.Mem.Free(part.arena)
	}
}
