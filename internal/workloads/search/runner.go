package search

import (
	"fmt"
	"math/rand"

	"thymesisflow/internal/core"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

// RunConfig parameterizes one Figure 9 cell.
type RunConfig struct {
	Challenge Challenge
	// Shards is the total shard count (the paper reports 5 and 32).
	Shards int
	// Clients is the concurrent search client count.
	Clients int
	// OpsPerClient is the measured query count per client.
	OpsPerClient int
	Corpus       CorpusConfig
	PoolThreads  int
}

// DefaultRunConfig returns calibrated parameters.
func DefaultRunConfig(ch Challenge, shards int) RunConfig {
	rc := RunConfig{
		Challenge:    ch,
		Shards:       shards,
		Clients:      64,
		OpsPerClient: 5,
		Corpus:       DefaultCorpusConfig(),
		PoolThreads:  48,
	}
	if ch == MA {
		// Match-all is cheap; more samples keep the measurement stable.
		rc.OpsPerClient = 30
	}
	return rc
}

// Result carries one cell of Figure 9.
type Result struct {
	Challenge  Challenge
	Shards     int
	Config     core.MemoryConfig
	Throughput float64 // queries/sec
	TotalHits  int64
}

// Run executes the challenge under one memory configuration.
func Run(cfgName core.MemoryConfig, rc RunConfig) (*Result, error) {
	if rc.Shards <= 0 || rc.Clients <= 0 || rc.OpsPerClient <= 0 {
		return nil, fmt.Errorf("search: bad run config %+v", rc)
	}
	// Shard arenas total ~ corpus footprint; keep the LLC proportion of the
	// paper's setup at simulation scale.
	tb, err := core.NewTestbedWith(cfgName, 4<<30, func(hc *core.HostConfig) {
		hc.LLCSizePerSocket = 16 << 20
	})
	if err != nil {
		return nil, err
	}
	k := tb.Cluster.K

	instances := tb.ServerInstances()
	engines := make([]*Engine, len(instances))
	shardsPer := rc.Shards / len(instances)
	if shardsPer == 0 {
		shardsPer = 1
	}
	for i, host := range instances {
		corpus := rc.Corpus
		corpus.Docs = rc.Corpus.Docs / len(instances)
		var placer numa.Placer
		if host == tb.Server {
			placer = tb.Placer()
		} else {
			placer = numa.Local(host.LocalNode(0))
		}
		engines[i], err = NewEngine(host, placer, corpus, EngineConfig{
			Shards:      shardsPer,
			PoolThreads: rc.PoolThreads,
		})
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Challenge: rc.Challenge, Shards: rc.Shards, Config: cfgName}
	wg := sim.NewWaitGroup(k)
	wg.Add(rc.Clients)
	for c := 0; c < rc.Clients; c++ {
		c := c
		k.Go(fmt.Sprintf("rally-%d", c), func(p *sim.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*131 + 17))
			// Match-all returns a full page of _source documents; the other
			// challenges return compact summaries.
			respBytes := int64(2048)
			if rc.Challenge == MA {
				respBytes = 24 << 10
			}
			for i := 0; i < rc.OpsPerClient; i++ {
				tb.ClientLink.Send(p, 300)
				hits := executeQuery(p, tb, engines, rc, rng)
				res.TotalHits += int64(hits)
				tb.ClientLink.SendReverse(p, respBytes)
			}
		})
	}
	k.Go("join", func(p *sim.Proc) { wg.Wait(p) })
	start := k.Now()
	k.Run()
	window := k.Now() - start
	if window > 0 {
		res.Throughput = float64(rc.Clients*rc.OpsPerClient) / window.Seconds()
	}
	return res, nil
}

// executeQuery runs one query: the coordinating node fans the request out
// to every shard (crossing the server Ethernet for shards hosted on the
// second instance under scale-out), waits for all shard responses, and
// reduces them.
func executeQuery(p *sim.Proc, tb *core.Testbed, engines []*Engine, rc RunConfig, rng *rand.Rand) int {
	k := p.Kernel()
	coord := engines[0].coord
	coord.Compute(p, coordInstr)

	tag := rng.Intn(rc.Corpus.Tags)
	date := int32(rng.Intn(4000))

	totalShards := 0
	for _, e := range engines {
		totalShards += len(e.shards)
	}
	wg := sim.NewWaitGroup(k)
	wg.Add(totalShards)
	hits := 0
	for ei, e := range engines {
		e := e
		remote := ei > 0
		for _, sh := range e.shards {
			sh := sh
			k.Go("shard-task", func(sp *sim.Proc) {
				defer wg.Done()
				if remote {
					tb.ServerLink.Send(sp, 400)
				}
				th := e.acquireThread(sp)
				var h int
				switch rc.Challenge {
				case RTQ:
					h = sh.runRTQ(sp, th, tag)
				case RNQIHBS:
					h = sh.runRNQIHBS(sp, th, tag, date)
				case RSTQ:
					h = sh.runRSTQ(sp, th, tag)
				case MA:
					h = sh.runMA(sp, th)
				}
				e.releaseThread(th)
				if remote {
					tb.ServerLink.SendReverse(sp, 1024)
				}
				hits += h
			})
		}
	}
	wg.Wait(p)
	coord.Compute(p, int64(totalShards)*mergeInstrPerShrd)
	return hits
}
