package search

import (
	"encoding/binary"
	"fmt"
)

// Posting lists are stored Lucene-style: ascending document ordinals,
// delta-encoded, with each delta written as an unsigned varint. Hot tags
// with dense lists compress to ~1 byte per document; sparse lists take
// 2-3 bytes per entry.

// encodePostings serializes an ascending ordinal list.
func encodePostings(list []int32) ([]byte, error) {
	var out []byte
	prev := int32(-1)
	var tmp [binary.MaxVarintLen32]byte
	for i, ord := range list {
		if ord <= prev {
			return nil, fmt.Errorf("search: posting list not strictly ascending at %d", i)
		}
		delta := uint64(ord - prev)
		n := binary.PutUvarint(tmp[:], delta)
		out = append(out, tmp[:n]...)
		prev = ord
	}
	return out, nil
}

// postingIterator decodes an encoded list incrementally.
type postingIterator struct {
	data []byte
	pos  int
	cur  int32
}

// newPostingIterator starts decoding at the list head.
func newPostingIterator(data []byte) *postingIterator {
	return &postingIterator{data: data, cur: -1}
}

// next returns the next ordinal, or (0, false) at the end of the list.
func (it *postingIterator) next() (int32, bool) {
	if it.pos >= len(it.data) {
		return 0, false
	}
	delta, n := binary.Uvarint(it.data[it.pos:])
	if n <= 0 {
		// Corrupt encoding: surface as end-of-list; builders validate at
		// encode time so this indicates memory corruption in tests.
		return 0, false
	}
	it.pos += n
	it.cur += int32(delta)
	return it.cur, true
}

// bytesConsumed reports how far into the encoded bytes the iterator is —
// the quantity the timing model charges to the memory system.
func (it *postingIterator) bytesConsumed() int { return it.pos }

// intersectPostings computes the conjunction of two ascending ordinal
// lists with galloping (exponential) search from the shorter list into the
// longer one — the standard Lucene strategy for AND queries, sub-linear in
// the longer list when list sizes are skewed.
func intersectPostings(a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []int32
	lo := 0
	for _, v := range a {
		idx := gallopSearch(b, lo, v)
		if idx < len(b) && b[idx] == v {
			out = append(out, v)
			lo = idx + 1
		} else {
			lo = idx
		}
		if lo >= len(b) {
			break
		}
	}
	return out
}

// gallopSearch returns the smallest index >= lo with b[idx] >= v, probing
// at exponentially growing strides before binary-searching the bracket.
func gallopSearch(b []int32, lo int, v int32) int {
	if lo >= len(b) || b[lo] >= v {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(b) && b[hi] < v {
		lo = hi
		step *= 2
		hi = lo + step
	}
	if hi > len(b) {
		hi = len(b)
	}
	// Binary search in (lo, hi].
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if b[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// decodePostings fully decodes a list (used by queries and tests).
func decodePostings(data []byte) []int32 {
	var out []int32
	it := newPostingIterator(data)
	for {
		ord, ok := it.next()
		if !ok {
			return out
		}
		out = append(out, ord)
	}
}
