package search

import (
	"sort"
	"testing"
	"testing/quick"

	"thymesisflow/internal/sim"
)

func TestPostingsRoundTrip(t *testing.T) {
	list := []int32{0, 1, 5, 100, 101, 70000, 1 << 30}
	enc, err := encodePostings(list)
	if err != nil {
		t.Fatal(err)
	}
	got := decodePostings(enc)
	if len(got) != len(list) {
		t.Fatalf("decoded %d, want %d", len(got), len(list))
	}
	for i := range list {
		if got[i] != list[i] {
			t.Fatalf("entry %d = %d, want %d", i, got[i], list[i])
		}
	}
}

func TestPostingsCompression(t *testing.T) {
	// A dense list (every doc) encodes at ~1 byte per entry.
	list := make([]int32, 10000)
	for i := range list {
		list[i] = int32(i)
	}
	enc, err := encodePostings(list)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(list)*2 {
		t.Fatalf("dense list encoded to %d bytes for %d entries", len(enc), len(list))
	}
}

func TestPostingsRejectUnsorted(t *testing.T) {
	if _, err := encodePostings([]int32{5, 3}); err == nil {
		t.Fatal("descending list encoded")
	}
	if _, err := encodePostings([]int32{5, 5}); err == nil {
		t.Fatal("duplicate entries encoded")
	}
}

func TestPostingsEmpty(t *testing.T) {
	enc, err := encodePostings(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodePostings(enc); len(got) != 0 {
		t.Fatalf("decoded %v from empty list", got)
	}
}

func TestPostingIteratorProgress(t *testing.T) {
	enc, _ := encodePostings([]int32{10, 300, 70000})
	it := newPostingIterator(enc)
	prev := 0
	for {
		_, ok := it.next()
		if !ok {
			break
		}
		if it.bytesConsumed() <= prev {
			t.Fatal("iterator did not advance")
		}
		prev = it.bytesConsumed()
	}
	if prev != len(enc) {
		t.Fatalf("consumed %d of %d bytes", prev, len(enc))
	}
}

// Property: any set of ordinals (deduplicated, sorted) round-trips.
func TestQuickPostingsRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		seen := map[int32]bool{}
		var list []int32
		for _, r := range raw {
			v := int32(r % (1 << 30))
			if !seen[v] {
				seen[v] = true
				list = append(list, v)
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		enc, err := encodePostings(list)
		if err != nil {
			return false
		}
		got := decodePostings(enc)
		if len(got) != len(list) {
			return false
		}
		for i := range list {
			if got[i] != list[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShardEncodingMatchesTruth(t *testing.T) {
	_, e := newLocalEngine(t, 2)
	for _, sh := range e.Shards() {
		for tag, truth := range sh.postings {
			got := decodePostings(sh.postingEnc[tag])
			if len(got) != len(truth) {
				t.Fatalf("tag %d: decoded %d entries, want %d", tag, len(got), len(truth))
			}
			for i := range truth {
				if got[i] != truth[i] {
					t.Fatalf("tag %d entry %d mismatch", tag, i)
				}
			}
		}
	}
}

func naiveIntersect(a, b []int32) []int32 {
	set := map[int32]bool{}
	for _, v := range a {
		set[v] = true
	}
	var out []int32
	for _, v := range b {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

func TestIntersectPostingsBasics(t *testing.T) {
	a := []int32{1, 3, 5, 7, 9}
	b := []int32{2, 3, 4, 7, 10, 11}
	got := intersectPostings(a, b)
	want := []int32{3, 7}
	if len(got) != len(want) || got[0] != 3 || got[1] != 7 {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	if out := intersectPostings(nil, b); len(out) != 0 {
		t.Fatalf("empty intersection = %v", out)
	}
	if out := intersectPostings(a, a); len(out) != len(a) {
		t.Fatalf("self intersection = %v", out)
	}
}

// Property: galloping intersection equals the naive set intersection for
// arbitrary sorted unique inputs, in ascending order.
func TestQuickIntersectMatchesNaive(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		mk := func(raw []uint16) []int32 {
			seen := map[int32]bool{}
			var out []int32
			for _, r := range raw {
				v := int32(r)
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := mk(rawA), mk(rawB)
		got := intersectPostings(a, b)
		want := naiveIntersect(a, b)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBooleanAndOnShard(t *testing.T) {
	tb, e := newLocalEngine(t, 1)
	sh := e.Shards()[0]
	const tagA, tagB = 0, 1
	want := len(naiveIntersect(sh.postings[tagA], sh.postings[tagB]))
	got := 0
	tb.Cluster.K.Go("q", func(p *sim.Proc) {
		th := e.acquireThread(p)
		got = sh.RunBooleanAnd(p, th, tagA, tagB)
		e.releaseThread(th)
	})
	tb.Cluster.K.Run()
	if got != want {
		t.Fatalf("AND hits = %d, want %d", got, want)
	}
	if want == 0 {
		t.Fatal("degenerate corpus: hot tags share no docs")
	}
}
