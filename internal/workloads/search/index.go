// Package search implements an Elasticsearch/Lucene-style distributed
// search engine — a real inverted index over a synthetic StackOverflow-like
// corpus, sharded with per-operation thread pools — and the ESRally
// "nested"-track driver the paper uses (Section VI-F, Figure 9): the RTQ,
// RNQIHBS, RSTQ and MA challenges across shard counts and memory
// configurations.
package search

import (
	"fmt"
	"math/rand"
	"sort"

	"thymesisflow/internal/core"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

// DocMetaBytes is the stored per-document metadata footprint (date, answer
// counts, source offsets).
const DocMetaBytes = 128

// CorpusConfig shapes the synthetic StackOverflow dump.
type CorpusConfig struct {
	Seed int64
	// Docs is the total document (question) count.
	Docs int
	// Tags is the tag vocabulary size; tag popularity is skewed so random
	// tag queries hit realistic posting-list lengths.
	Tags int
	// TagsPerDoc is the average number of tags per question.
	TagsPerDoc int
}

// DefaultCorpusConfig returns a corpus sized for simulation.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{Seed: 7, Docs: 600_000, Tags: 200, TagsPerDoc: 3}
}

// docMeta is the functional document metadata (the simulated arena carries
// the timing; this carries the truth for correctness checks).
type docMeta struct {
	id      int32
	date    int32 // days since epoch
	answers int16 // answers posted before `date`+window
}

// Shard is one index shard: an inverted index over its documents plus the
// stored metadata region, both living in simulated memory.
type Shard struct {
	id    int
	arena *mem.Buffer

	docs []docMeta
	// postings maps tag -> local doc ordinals (ascending); the build-time
	// truth the encoded form is verified against.
	postings map[int][]int32
	// postingEnc maps tag -> the varint-delta-encoded posting list (the
	// bytes that actually live in the arena).
	postingEnc map[int][]byte
	// postingOff maps tag -> arena byte offset of its encoded posting list.
	postingOff map[int]int64
	metaOff    int64
}

// docMetaAddr returns the arena address of a document's stored metadata.
func (s *Shard) docMetaAddr(ord int32) uint64 {
	return s.arena.Addr(s.metaOff + int64(ord)*DocMetaBytes)
}

// Engine is one search-engine instance (one per server node).
type Engine struct {
	host   *core.Host
	shards []*Shard
	// pool is the search thread pool (Elasticsearch sizes it from the core
	// count).
	poolFree []*mem.Thread
	poolSig  *sim.Signal
	// coord is the coordinating (REST) thread.
	coord *mem.Thread
}

// EngineConfig tunes an instance.
type EngineConfig struct {
	Shards      int
	PoolThreads int
}

// NewEngine builds an instance holding `docs` documents spread over the
// configured shards, with the given page placement for index memory.
func NewEngine(host *core.Host, placer numa.Placer, corpus CorpusConfig, cfg EngineConfig) (*Engine, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("search: no shards")
	}
	if cfg.PoolThreads <= 0 {
		cfg.PoolThreads = 48
	}
	e := &Engine{host: host, poolSig: sim.NewSignal(host.K), coord: host.NewThread(0)}
	rng := rand.New(rand.NewSource(corpus.Seed))

	perShard := corpus.Docs / cfg.Shards
	if perShard == 0 {
		return nil, fmt.Errorf("search: %d docs cannot fill %d shards", corpus.Docs, cfg.Shards)
	}
	for si := 0; si < cfg.Shards; si++ {
		sh := &Shard{
			id:         si,
			postings:   make(map[int][]int32),
			postingEnc: make(map[int][]byte),
			postingOff: make(map[int]int64),
		}
		for ord := 0; ord < perShard; ord++ {
			d := docMeta{
				id:      int32(si*perShard + ord),
				date:    int32(rng.Intn(4000)),
				answers: int16(rng.Intn(160)),
			}
			sh.docs = append(sh.docs, d)
			for t := 0; t < corpus.TagsPerDoc; t++ {
				// Skewed tag popularity: squaring the uniform draw favors
				// low tag IDs ~ 1/sqrt density.
				u := rng.Float64()
				tag := int(u * u * float64(corpus.Tags))
				if tag >= corpus.Tags {
					tag = corpus.Tags - 1
				}
				list := sh.postings[tag]
				if len(list) > 0 && list[len(list)-1] == int32(ord) {
					continue // duplicate tag on this doc
				}
				sh.postings[tag] = append(list, int32(ord))
			}
		}
		// Encode every posting list (Lucene-style varint deltas), verify
		// the round trip, and lay lists out in tag order followed by the
		// stored-fields region.
		var postingBytes int64
		tags := make([]int, 0, len(sh.postings))
		for t := range sh.postings {
			tags = append(tags, t)
		}
		sort.Ints(tags)
		for _, t := range tags {
			enc, err := encodePostings(sh.postings[t])
			if err != nil {
				return nil, fmt.Errorf("search: shard %d tag %d: %w", si, t, err)
			}
			sh.postingEnc[t] = enc
			postingBytes += int64(len(enc))
		}
		metaBytes := int64(perShard) * DocMetaBytes
		arena, err := host.Mem.Alloc(postingBytes+metaBytes+mem.CachelineSize, placer)
		if err != nil {
			return nil, fmt.Errorf("search: shard %d arena: %w", si, err)
		}
		sh.arena = arena
		off := int64(0)
		for _, t := range tags {
			sh.postingOff[t] = off
			off += int64(len(sh.postingEnc[t]))
		}
		sh.metaOff = off
		e.shards = append(e.shards, sh)
	}
	for i := 0; i < cfg.PoolThreads; i++ {
		e.poolFree = append(e.poolFree, host.NewThread(i))
	}
	return e, nil
}

// Shards returns the instance's shard list.
func (e *Engine) Shards() []*Shard { return e.shards }

func (e *Engine) acquireThread(p *sim.Proc) *mem.Thread {
	for len(e.poolFree) == 0 {
		e.poolSig.Wait(p)
	}
	th := e.poolFree[len(e.poolFree)-1]
	e.poolFree = e.poolFree[:len(e.poolFree)-1]
	return th
}

func (e *Engine) releaseThread(th *mem.Thread) {
	e.poolFree = append(e.poolFree, th)
	e.poolSig.Wake()
}

// Close frees the shard arenas.
func (e *Engine) Close() {
	for _, sh := range e.shards {
		e.host.Mem.Free(sh.arena)
	}
}
