package search_test

import (
	"fmt"

	"thymesisflow/internal/core"
	"thymesisflow/internal/workloads/search"
)

// Example runs one Figure 9 cell: the random-tag challenge on the
// scale-out configuration.
func Example() {
	rc := search.DefaultRunConfig(search.RTQ, 4)
	rc.Clients = 8
	rc.OpsPerClient = 2
	rc.Corpus = search.CorpusConfig{Seed: 1, Docs: 40_000, Tags: 50, TagsPerDoc: 3}
	res, err := search.Run(core.ConfigScaleOut, rc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("challenge=%v shards=%d\n", res.Challenge, res.Shards)
	fmt.Printf("queries returned hits: %v\n", res.TotalHits > 0)
	fmt.Printf("throughput positive: %v\n", res.Throughput > 0)
	// Output:
	// challenge=RTQ shards=4
	// queries returned hits: true
	// throughput positive: true
}
