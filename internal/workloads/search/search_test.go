package search

import (
	"testing"

	"thymesisflow/internal/core"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

func smallCorpus() CorpusConfig {
	return CorpusConfig{Seed: 3, Docs: 40_000, Tags: 50, TagsPerDoc: 3}
}

func newLocalEngine(t *testing.T, shards int) (*core.Testbed, *Engine) {
	t.Helper()
	tb, err := core.NewTestbed(core.ConfigLocal, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tb.Server, numa.Local(tb.Server.LocalNode(0)), smallCorpus(),
		EngineConfig{Shards: shards, PoolThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	return tb, e
}

func TestIndexStructure(t *testing.T) {
	_, e := newLocalEngine(t, 4)
	if len(e.Shards()) != 4 {
		t.Fatalf("shards = %d", len(e.Shards()))
	}
	totalDocs := 0
	for _, sh := range e.Shards() {
		totalDocs += len(sh.docs)
		// Posting lists are sorted ascending and in range.
		for tag, list := range sh.postings {
			for i, ord := range list {
				if int(ord) >= len(sh.docs) {
					t.Fatalf("tag %d: ordinal %d out of range", tag, ord)
				}
				if i > 0 && list[i-1] >= ord {
					t.Fatalf("tag %d: posting list not strictly ascending", tag)
				}
			}
			if _, ok := sh.postingOff[tag]; !ok {
				t.Fatalf("tag %d has no arena offset", tag)
			}
		}
	}
	if totalDocs != 40_000 {
		t.Fatalf("docs = %d", totalDocs)
	}
}

func TestTagPopularitySkew(t *testing.T) {
	_, e := newLocalEngine(t, 1)
	sh := e.Shards()[0]
	if len(sh.postings[0]) <= len(sh.postings[40])*2 {
		t.Fatalf("tag popularity not skewed: tag0=%d tag40=%d",
			len(sh.postings[0]), len(sh.postings[40]))
	}
}

func TestRTQCountsMatchIndex(t *testing.T) {
	tb, e := newLocalEngine(t, 2)
	const tag = 5
	want := 0
	for _, sh := range e.Shards() {
		want += len(sh.postings[tag])
	}
	got := 0
	tb.Cluster.K.Go("q", func(p *sim.Proc) {
		for _, sh := range e.Shards() {
			th := e.acquireThread(p)
			got += sh.runRTQ(p, th, tag)
			e.releaseThread(th)
		}
	})
	tb.Cluster.K.Run()
	if got != want {
		t.Fatalf("RTQ hits = %d, want %d", got, want)
	}
}

func TestRNQIHBSFiltersCorrectly(t *testing.T) {
	tb, e := newLocalEngine(t, 1)
	sh := e.Shards()[0]
	const tag, date = 3, 2000
	want := 0
	for _, ord := range sh.postings[tag] {
		d := sh.docs[ord]
		if d.answers >= 100 && d.date < date {
			want++
		}
	}
	got := 0
	tb.Cluster.K.Go("q", func(p *sim.Proc) {
		th := e.acquireThread(p)
		got = sh.runRNQIHBS(p, th, tag, date)
		e.releaseThread(th)
	})
	tb.Cluster.K.Run()
	if got != want {
		t.Fatalf("RNQIHBS hits = %d, want %d", got, want)
	}
	if want == 0 {
		t.Fatal("degenerate test: no matching docs")
	}
}

func TestChallengeLatencyOrdering(t *testing.T) {
	// Per-query time: MA (fixed) < RTQ (postings only) < RNQIHBS/RSTQ
	// (postings + doc values + nested setup).
	tb, e := newLocalEngine(t, 1)
	sh := e.Shards()[0]
	dur := func(f func(p *sim.Proc)) sim.Time {
		start := tb.Cluster.K.Now()
		tb.Cluster.K.Go("q", f)
		tb.Cluster.K.Run()
		return tb.Cluster.K.Now() - start
	}
	const tag = 0 // hottest tag: longest list
	ma := dur(func(p *sim.Proc) {
		th := e.acquireThread(p)
		sh.runMA(p, th)
		e.releaseThread(th)
	})
	rtq := dur(func(p *sim.Proc) {
		th := e.acquireThread(p)
		sh.runRTQ(p, th, tag)
		e.releaseThread(th)
	})
	nested := dur(func(p *sim.Proc) {
		th := e.acquireThread(p)
		sh.runRNQIHBS(p, th, tag, 2000)
		e.releaseThread(th)
	})
	if !(ma < rtq && rtq < nested) {
		t.Fatalf("per-shard cost ordering violated: MA=%v RTQ=%v RNQIHBS=%v", ma, rtq, nested)
	}
}

func fig9(t *testing.T, ch Challenge, shards int, cfg core.MemoryConfig) float64 {
	t.Helper()
	rc := DefaultRunConfig(ch, shards)
	rc.Clients = 32
	rc.OpsPerClient = 2
	rc.Corpus = CorpusConfig{Seed: 3, Docs: 120_000, Tags: 80, TagsPerDoc: 3}
	if ch == MA {
		rc.OpsPerClient = 10
	}
	res, err := Run(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	return res.Throughput
}

func TestRTQScaleOutWins(t *testing.T) {
	// Figure 9: for RTQ the scale-out configuration outperforms every
	// other, including local, while the ThymesisFlow configurations trail.
	local := fig9(t, RTQ, 32, core.ConfigLocal)
	scale := fig9(t, RTQ, 32, core.ConfigScaleOut)
	single := fig9(t, RTQ, 32, core.ConfigSingleDisaggregated)
	inter := fig9(t, RTQ, 32, core.ConfigInterleaved)
	if scale <= local {
		t.Fatalf("RTQ: scale-out %.0f should beat local %.0f", scale, local)
	}
	if single >= local || single >= inter {
		t.Fatalf("RTQ: single %.0f should trail local %.0f and interleaved %.0f", single, local, inter)
	}
}

func TestNestedChallengesDegradeWithShards(t *testing.T) {
	// Figure 9: challenges requiring tighter synchronization degrade as
	// shards scale.
	for _, ch := range []Challenge{RNQIHBS, RSTQ, MA} {
		at5 := fig9(t, ch, 5, core.ConfigLocal)
		at32 := fig9(t, ch, 32, core.ConfigLocal)
		if at32 >= at5 {
			t.Fatalf("%v: throughput grew with shards (%.0f -> %.0f)", ch, at5, at32)
		}
	}
}

func TestMASimilarAcrossConfigs(t *testing.T) {
	// Figure 9: for MA the ThymesisFlow configurations perform like local
	// and scale-out.
	local := fig9(t, MA, 5, core.ConfigLocal)
	single := fig9(t, MA, 5, core.ConfigSingleDisaggregated)
	scale := fig9(t, MA, 5, core.ConfigScaleOut)
	if single < local*0.9 || single > local*1.1 {
		t.Fatalf("MA: single %.0f vs local %.0f not similar", single, local)
	}
	if scale < local*0.8 || scale > local*1.25 {
		t.Fatalf("MA: scale-out %.0f vs local %.0f not similar", scale, local)
	}
}

func TestScaleOutBeatsDisaggregatedOnNested(t *testing.T) {
	// Figure 9: scale-out outperforms the ThymesisFlow configurations on
	// the synchronization-heavy challenges.
	for _, ch := range []Challenge{RNQIHBS, RSTQ} {
		scale := fig9(t, ch, 5, core.ConfigScaleOut)
		single := fig9(t, ch, 5, core.ConfigSingleDisaggregated)
		if scale <= single {
			t.Fatalf("%v: scale-out %.0f should beat single-disaggregated %.0f", ch, scale, single)
		}
	}
}
