package search

import (
	"fmt"
	"sort"

	"thymesisflow/internal/mem"
	"thymesisflow/internal/sim"
)

// Challenge is one ESRally "nested"-track challenge (Section VI-F).
type Challenge int

// The challenges the paper reports.
const (
	// RTQ searches for all questions featuring a randomly generated tag.
	RTQ Challenge = iota
	// RNQIHBS searches for questions with at least 100 answers before a
	// random date.
	RNQIHBS
	// RSTQ searches questions by tag sorted descending by date.
	RSTQ
	// MA queries all questions (match-all).
	MA
)

var challengeNames = [...]string{"RTQ", "RNQIHBS", "RSTQ", "MA"}

// String returns the challenge mnemonic used in Figure 9.
func (c Challenge) String() string {
	if int(c) < len(challengeNames) {
		return challengeNames[c]
	}
	return fmt.Sprintf("challenge(%d)", int(c))
}

// Challenges lists the four reported challenges.
func Challenges() []Challenge { return []Challenge{RTQ, RNQIHBS, RSTQ, MA} }

// Query cost-model constants (calibrated; see EXPERIMENTS.md).
const (
	postingChunkBytes = 4 * mem.CachelineSize // skip-list block fetch granularity
	docValueBatch     = 16                    // doc-values read-ahead (docs per burst)
	normsBatch        = 64                    // norms/impacts read-ahead (lighter per-doc data)
	scoreInstrPerDoc  = 100
	filterInstrPerDoc = 600
	sortInstrPerDoc   = 100
	coordInstr        = 20_000 // coordinating-node REST + reduce setup
	mergeInstrPerShrd = 12_000
	topK              = 10

	// Per-shard query setup (parse, rewrite, Lucene weight/segment setup).
	// Simple term queries are cheap; nested queries rewrite into block-join
	// structures and are far heavier — this fixed per-shard cost is what
	// makes the nested challenges degrade as shards grow (Figure 9).
	simpleSetupInstr = 60_000
	nestedSetupInstr = 1_100_000
	matchAllInstr    = 760_000
)

// streamPostings walks a tag's posting list: dependent block fetches (each
// block's skip pointer is only known after the previous block arrives), so
// remote memory latency is paid serially per block. The varint-delta
// encoding is decoded for real, returning the local ordinals.
func (sh *Shard) streamPostings(p *sim.Proc, th *mem.Thread, tag int) []int32 {
	enc := sh.postingEnc[tag]
	if len(enc) == 0 {
		return nil
	}
	base := sh.postingOff[tag]
	total := int64(len(enc))
	for off := int64(0); off < total; off += postingChunkBytes {
		n := int64(postingChunkBytes)
		if off+n > total {
			n = total - off
		}
		th.Access(p, sh.arena.Addr(base+off), n, false)
	}
	return decodePostings(enc)
}

// scanDocValues prices a doc-values sweep over the candidate ordinals:
// Lucene reads doc values in ascending doc order, so the engine's
// read-ahead turns the per-document touches into batched bursts.
func (sh *Shard) scanDocValues(p *sim.Proc, th *mem.Thread, list []int32) {
	sh.scanDocValuesBatch(p, th, list, docValueBatch)
}

// scanDocValuesBatch is scanDocValues with an explicit read-ahead depth:
// lightweight per-doc data (norms, impacts) streams with deeper read-ahead
// than full filter/sort doc values.
func (sh *Shard) scanDocValuesBatch(p *sim.Proc, th *mem.Thread, list []int32, batch int) {
	for i := 0; i < len(list); i += batch {
		n := batch
		if i+n > len(list) {
			n = len(list) - i
		}
		th.Access(p, sh.docMetaAddr(list[i]), int64(n)*DocMetaBytes, false)
	}
}

// runRTQ executes the random-tag query on one shard, returning hit count.
// Scoring reads each candidate's norms/impacts from doc values — the
// per-document memory traffic that makes term queries latency-sensitive on
// disaggregated memory (Figure 9's RTQ shows the largest gap).
func (sh *Shard) runRTQ(p *sim.Proc, th *mem.Thread, tag int) int {
	th.Compute(p, simpleSetupInstr)
	list := sh.streamPostings(p, th, tag)
	sh.scanDocValuesBatch(p, th, list, normsBatch)
	th.Compute(p, int64(len(list))*scoreInstrPerDoc)
	// Fetch stored fields of the top-k documents.
	for i := 0; i < topK && i < len(list); i++ {
		th.Access(p, sh.docMetaAddr(list[i]), DocMetaBytes, false)
	}
	return len(list)
}

// runRNQIHBS filters a tag's questions by answers-before-date; every
// candidate requires its metadata document (random access).
func (sh *Shard) runRNQIHBS(p *sim.Proc, th *mem.Thread, tag int, date int32) int {
	th.Compute(p, nestedSetupInstr)
	list := sh.streamPostings(p, th, tag)
	sh.scanDocValues(p, th, list)
	th.Compute(p, int64(len(list))*filterInstrPerDoc)
	hits := 0
	for _, ord := range list {
		d := sh.docs[ord]
		if d.answers >= 100 && d.date < date {
			hits++
		}
	}
	return hits
}

// runRSTQ runs the tag query and sorts results by date descending.
func (sh *Shard) runRSTQ(p *sim.Proc, th *mem.Thread, tag int) int {
	th.Compute(p, nestedSetupInstr)
	list := sh.streamPostings(p, th, tag)
	// The sort key (date) lives in doc values.
	sh.scanDocValues(p, th, list)
	n := len(list)
	if n > 1 {
		cost := int64(n) * int64(log2(n)) * sortInstrPerDoc
		th.Compute(p, cost)
	}
	// Functional sort over the truth data (verifies the index contents).
	dates := make([]int32, n)
	for i, ord := range list {
		dates[i] = sh.docs[ord].date
	}
	sort.Slice(dates, func(i, j int) bool { return dates[i] > dates[j] })
	return n
}

// RunBooleanAnd executes a two-tag conjunction on one shard: both posting
// lists stream from memory and are intersected with galloping search.
// Multi-tag filtering is how StackOverflow-style questions are actually
// browsed; it is exposed as an engine capability beyond the Rally track.
func (sh *Shard) RunBooleanAnd(p *sim.Proc, th *mem.Thread, tagA, tagB int) int {
	th.Compute(p, simpleSetupInstr)
	a := sh.streamPostings(p, th, tagA)
	b := sh.streamPostings(p, th, tagB)
	hits := intersectPostings(a, b)
	// Galloping intersection: ~len(shorter) * log(len(longer)) work.
	short, long := len(a), len(b)
	if short > long {
		short, long = long, short
	}
	if short > 0 {
		th.Compute(p, int64(short)*int64(log2(long+1)+1)*20)
	}
	return len(hits)
}

// runMA is match-all: Elasticsearch returns the first page of documents
// without scoring the corpus, so the per-shard cost is fixed and largely
// configuration-insensitive.
func (sh *Shard) runMA(p *sim.Proc, th *mem.Thread) int {
	th.Compute(p, matchAllInstr)
	for i := int32(0); i < topK && int(i) < len(sh.docs); i++ {
		th.Access(p, sh.docMetaAddr(i), DocMetaBytes, false)
	}
	return len(sh.docs)
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
