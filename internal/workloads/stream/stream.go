// Package stream reimplements the STREAM sustainable-memory-bandwidth
// benchmark (McCalpin) on the simulated memory hierarchy, reproducing the
// paper's Figure 5: the four kernels (copy, scale, add, triad) confined to
// 4, 8 and 16 hardware threads under each memory configuration.
//
// The paper's setup uses 160 million array elements (3.66 GiB total), far
// beyond cache capacity, so the kernels are bandwidth-bound streaming
// passes; the simulation prices them through mem.Thread.StreamChunk.
package stream

import (
	"fmt"

	"thymesisflow/internal/core"
	"thymesisflow/internal/mem"
	"thymesisflow/internal/numa"
	"thymesisflow/internal/sim"
)

// Kernel is one STREAM kernel.
type Kernel int

// The four STREAM kernels.
const (
	Copy  Kernel = iota // c[i] = a[i]            16 B/iter, 0 FLOPs
	Scale               // b[i] = s*c[i]          16 B/iter, 1 FLOP
	Add                 // c[i] = a[i]+b[i]       24 B/iter, 1 FLOP
	Triad               // a[i] = b[i]+s*c[i]     24 B/iter, 2 FLOPs
)

var kernelNames = [...]string{"copy", "scale", "add", "triad"}

// String returns the kernel name.
func (k Kernel) String() string {
	if int(k) < len(kernelNames) {
		return kernelNames[k]
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// Kernels lists all four kernels in STREAM order.
func Kernels() []Kernel { return []Kernel{Copy, Scale, Add, Triad} }

// bytesPerElem returns (read, write) bytes per loop iteration.
func (k Kernel) bytesPerElem() (read, write int64) {
	switch k {
	case Copy, Scale:
		return 8, 8
	default: // Add, Triad
		return 16, 8
	}
}

// flopsPerElem returns floating-point operations per iteration.
func (k Kernel) flopsPerElem() int64 {
	switch k {
	case Copy:
		return 0
	case Scale, Add:
		return 1
	default:
		return 2
	}
}

// Config parameterizes a run.
type Config struct {
	// Elements is the array length (the paper uses 160e6 -> 3.66 GiB
	// across the three arrays).
	Elements int64
	// Threads is the OpenMP-style thread count the kernels are confined to.
	Threads int
	// Iterations is the number of timed passes per kernel.
	Iterations int
	// ChunkBytes is the simulation granularity (larger = faster, coarser).
	ChunkBytes int64
}

// DefaultConfig mirrors the paper's setup at a simulation-friendly
// iteration count.
func DefaultConfig(threads int) Config {
	return Config{
		Elements:   160_000_000,
		Threads:    threads,
		Iterations: 3,
		ChunkBytes: 4 << 20,
	}
}

// Result is the sustained bandwidth of one kernel run.
type Result struct {
	Kernel  Kernel
	Threads int
	// GiBps is the STREAM-reported bandwidth: bytes moved per second of
	// simulated time, in GiB/s.
	GiBps float64
}

// Run executes all four kernels on the host with the given page placement
// and returns one result per kernel.
func Run(host *core.Host, placer numa.Placer, cfg Config) ([]Result, error) {
	if cfg.Elements <= 0 || cfg.Threads <= 0 || cfg.Iterations <= 0 {
		return nil, fmt.Errorf("stream: bad config %+v", cfg)
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 4 << 20
	}
	arrayBytes := cfg.Elements * 8
	// Three arrays a, b, c with identical placement.
	bufs := make([]*mem.Buffer, 3)
	for i := range bufs {
		b, err := host.Mem.Alloc(arrayBytes, placer)
		if err != nil {
			return nil, fmt.Errorf("stream: allocating array %d: %w", i, err)
		}
		bufs[i] = b
	}
	defer func() {
		for _, b := range bufs {
			host.Mem.Free(b)
		}
	}()

	var results []Result
	for _, kern := range Kernels() {
		gibps := runKernel(host, bufs, kern, cfg)
		results = append(results, Result{Kernel: kern, Threads: cfg.Threads, GiBps: gibps})
	}
	return results, nil
}

func runKernel(host *core.Host, bufs []*mem.Buffer, kern Kernel, cfg Config) float64 {
	k := host.K
	readB, writeB := kern.bytesPerElem()
	flops := kern.flopsPerElem()
	perElem := readB + writeB
	arrayBytes := cfg.Elements * 8

	start := k.Now()
	var totalBytes int64
	wg := sim.NewWaitGroup(k)
	wg.Add(cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		t := t
		lo := arrayBytes * int64(t) / int64(cfg.Threads)
		hi := arrayBytes * int64(t+1) / int64(cfg.Threads)
		k.Go(fmt.Sprintf("stream-%v-%d", kern, t), func(p *sim.Proc) {
			defer wg.Done()
			host.Cores.Acquire(p, 1)
			defer host.Cores.Release(1)
			th := host.NewThread(0)
			// Per-node traffic accumulator in first-touch order. A map here
			// would allocate per chunk and — because Go randomizes map
			// iteration — issue the node bursts in a different order every
			// run, perturbing simulated timing nondeterministically.
			type nodeBytes struct {
				node  mem.NodeID
				bytes int64
			}
			var perNode []nodeBytes
			for iter := 0; iter < cfg.Iterations; iter++ {
				for off := lo; off < hi; off += cfg.ChunkBytes {
					n := cfg.ChunkBytes
					if off+n > hi {
						n = hi - off
					}
					elems := n / 8
					// Group the chunk's traffic per NUMA node. All arrays
					// share a placement pattern, so walking one buffer and
					// scaling by bytes-per-element prices all of them.
					perNode = perNode[:0]
					for _, run := range bufs[0].RunsIn(off, n) {
						add := run.Bytes / 8 * perElem
						found := false
						for i := range perNode {
							if perNode[i].node == run.Node {
								perNode[i].bytes += add
								found = true
								break
							}
						}
						if !found {
							perNode = append(perNode, nodeBytes{run.Node, add})
						}
					}
					chunkFlops := elems * flops
					for _, nb := range perNode {
						share := chunkFlops * nb.bytes / (elems * perElem)
						th.StreamChunk(p, nb.node, nb.bytes, share)
					}
					totalBytes += elems * perElem
				}
			}
		})
	}
	// Drive until all threads finish.
	done := false
	k.Go("stream-join", func(p *sim.Proc) { wg.Wait(p); done = true })
	k.Run()
	if !done {
		panic("stream: kernel did not complete")
	}
	elapsed := k.Now() - start
	if elapsed <= 0 {
		return 0
	}
	return float64(totalBytes) / elapsed.Seconds() / (1 << 30)
}
