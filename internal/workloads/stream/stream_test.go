package stream

import (
	"testing"

	"thymesisflow/internal/core"
)

// fastConfig keeps unit tests quick while preserving the bandwidth regime.
func fastConfig(threads int) Config {
	return Config{
		Elements:   20_000_000, // 160 MiB/array, still far beyond caches
		Threads:    threads,
		Iterations: 1,
		ChunkBytes: 4 << 20,
	}
}

func runConfig(t *testing.T, cfg core.MemoryConfig, threads int) []Result {
	t.Helper()
	tb, err := core.NewTestbed(cfg, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tb.Server, tb.Placer(), fastConfig(threads))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func bw(res []Result, k Kernel) float64 {
	for _, r := range res {
		if r.Kernel == k {
			return r.GiBps
		}
	}
	return 0
}

func TestSingleDisaggregatedApproachesChannelMax(t *testing.T) {
	res := runConfig(t, core.ConfigSingleDisaggregated, 8)
	copyBW := bw(res, Copy)
	// Paper: ~12.5 GiB/s theoretical max, reached with 8 threads.
	if copyBW < 10.5 || copyBW > 12.6 {
		t.Fatalf("8-thread single-disaggregated copy = %.2f GiB/s, want ~12", copyBW)
	}
}

func TestFourThreadsMLPBound(t *testing.T) {
	res := runConfig(t, core.ConfigSingleDisaggregated, 4)
	copyBW := bw(res, Copy)
	// Paper: ~10 GiB/s with 4 threads (thread-level MLP bound).
	if copyBW < 8.5 || copyBW > 11.9 {
		t.Fatalf("4-thread single-disaggregated copy = %.2f GiB/s, want ~10", copyBW)
	}
}

func TestSixteenThreadsSaturationDecline(t *testing.T) {
	at8 := bw(runConfig(t, core.ConfigSingleDisaggregated, 8), Copy)
	at16 := bw(runConfig(t, core.ConfigSingleDisaggregated, 16), Copy)
	// Paper: beyond 8 threads the network-facing stack saturates and
	// performance decreases.
	if at16 >= at8 {
		t.Fatalf("16-thread copy (%.2f) should fall below 8-thread (%.2f)", at16, at8)
	}
}

func TestBondingGainsRoughlyThirtyPercent(t *testing.T) {
	single := bw(runConfig(t, core.ConfigSingleDisaggregated, 8), Copy)
	bonded := bw(runConfig(t, core.ConfigBondingDisaggregated, 8), Copy)
	gain := bonded/single - 1
	// Paper: ~30% improvement, NOT 2x, because the OpenCAPI C1 mode caps
	// at ~16 GiB/s with 128-byte transactions.
	if gain < 0.15 || gain > 0.55 {
		t.Fatalf("bonding gain = %.0f%% (%.2f vs %.2f), want ~30%%", gain*100, bonded, single)
	}
	if bonded > 16.5 {
		t.Fatalf("bonded copy %.2f exceeds the C1 ceiling", bonded)
	}
}

func TestInterleavedOutperformsDisaggregated(t *testing.T) {
	inter := bw(runConfig(t, core.ConfigInterleaved, 8), Copy)
	single := bw(runConfig(t, core.ConfigSingleDisaggregated, 8), Copy)
	bonded := bw(runConfig(t, core.ConfigBondingDisaggregated, 8), Copy)
	// Paper: the interleaved configuration outperforms all the others.
	if inter <= single || inter <= bonded {
		t.Fatalf("interleaved %.2f should beat single %.2f and bonded %.2f", inter, single, bonded)
	}
}

func TestAllKernelsReported(t *testing.T) {
	res := runConfig(t, core.ConfigLocal, 4)
	if len(res) != 4 {
		t.Fatalf("results = %d, want 4 kernels", len(res))
	}
	seen := map[Kernel]bool{}
	for _, r := range res {
		if r.GiBps <= 0 {
			t.Fatalf("%v: non-positive bandwidth", r.Kernel)
		}
		seen[r.Kernel] = true
	}
	if len(seen) != 4 {
		t.Fatalf("kernels missing: %v", seen)
	}
}

func TestBadConfigRejected(t *testing.T) {
	tb, err := core.NewTestbed(core.ConfigLocal, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tb.Server, tb.Placer(), Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
