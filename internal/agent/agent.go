// Package agent implements the ThymesisFlow user-space node agent
// (Section IV-B): a per-host daemon that applies configuration commands
// received from the orchestration layer — donor-side memory stealing, or
// compute-side attachment (RMMU section mapping, routing-layer flow setup,
// and Linux memory hotplug of the new sections).
//
// Agents only accept configuration from a trusted control plane
// (Section IV-C): every command carries the control-plane token, and
// commands with an unknown token are rejected before touching hardware
// state.
package agent

import (
	"fmt"
	"sync"
)

// CommandKind discriminates configuration commands.
type CommandKind string

// The command kinds an agent accepts.
const (
	CmdStealMemory   CommandKind = "steal-memory"
	CmdAttachCompute CommandKind = "attach-compute"
	CmdDetach        CommandKind = "detach"
)

// Command is one configuration push from the control plane.
type Command struct {
	Kind CommandKind
	// AttachmentID correlates the commands of one attachment.
	AttachmentID string
	// Bytes is the memory amount (steal / attach).
	Bytes int64
	// Channels is the channel count for compute attachment.
	Channels int
	// NetworkID is the active-thymesisflow identifier.
	NetworkID uint16
	// DonorBase is the donor effective address of the stolen region.
	DonorBase uint64
}

// Agent is one node's configuration daemon.
type Agent struct {
	mu       sync.Mutex
	host     string
	trusted  string // control-plane token
	applied  []Command
	rejected int
}

// New returns an agent for the named host trusting the given control-plane
// token.
func New(host, trustedToken string) *Agent {
	return &Agent{host: host, trusted: trustedToken}
}

// Host returns the host this agent manages.
func (a *Agent) Host() string { return a.host }

// Apply validates and records a configuration command. Untrusted pushes are
// rejected: no malicious software may install illegal forwarding
// configurations (Section IV-C).
func (a *Agent) Apply(token string, cmd Command) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if token != a.trusted {
		a.rejected++
		return fmt.Errorf("agent %s: configuration push with untrusted token rejected", a.host)
	}
	switch cmd.Kind {
	case CmdStealMemory, CmdAttachCompute, CmdDetach:
	default:
		a.rejected++
		return fmt.Errorf("agent %s: unknown command kind %q", a.host, cmd.Kind)
	}
	if cmd.Kind != CmdDetach && cmd.Bytes <= 0 {
		a.rejected++
		return fmt.Errorf("agent %s: %s with non-positive size", a.host, cmd.Kind)
	}
	a.applied = append(a.applied, cmd)
	return nil
}

// Applied returns a copy of the accepted command log.
func (a *Agent) Applied() []Command {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Command(nil), a.applied...)
}

// Rejected returns the count of rejected pushes.
func (a *Agent) Rejected() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejected
}
