// Package agent implements the ThymesisFlow user-space node agent
// (Section IV-B): a per-host daemon that applies configuration commands
// received from the orchestration layer — donor-side memory stealing, or
// compute-side attachment (RMMU section mapping, routing-layer flow setup,
// and Linux memory hotplug of the new sections).
//
// Agents only accept configuration from a trusted control plane
// (Section IV-C): every command carries the control-plane token, and
// commands with an unknown token are rejected before touching hardware
// state.
//
// Because the transport between orchestrator and agent is lossy (commands
// may be dropped, duplicated, or retried after an ambiguous failure),
// command application is idempotent: commands carry an (AttachmentID,
// Epoch) pair and exact replays are acknowledged without being re-applied,
// while state-level no-ops (stealing memory that is already stolen for the
// same attachment, detaching an attachment the agent never configured or
// already tore down) succeed without mutating the configuration. The
// applied log therefore records each *effective* configuration change
// exactly once.
//
// An agent daemon can crash and restart, losing all volatile state
// (Restart). The control plane detects this through the incarnation
// counter reported by Status and re-pushes the configuration the agent
// should hold (see the controlplane reconciliation loop).
package agent

import (
	"fmt"
	"sort"
	"sync"

	"thymesisflow/internal/trace"
)

// CommandKind discriminates configuration commands.
type CommandKind string

// The command kinds an agent accepts.
const (
	CmdStealMemory   CommandKind = "steal-memory"
	CmdAttachCompute CommandKind = "attach-compute"
	CmdDetach        CommandKind = "detach"
)

// Command is one configuration push from the control plane.
type Command struct {
	Kind CommandKind
	// AttachmentID correlates the commands of one attachment. All saga
	// commands carry it; agents use it to deduplicate replays and to
	// materialize per-attachment state.
	AttachmentID string
	// Epoch is the control plane's monotonic command counter. A retry of a
	// command re-sends the same epoch, so the agent can tell a replay
	// (same AttachmentID, Kind, Epoch — acknowledge, do not re-apply) from
	// a genuinely new command.
	Epoch uint64
	// Bytes is the memory amount (steal / attach).
	Bytes int64
	// Channels is the channel count for compute attachment.
	Channels int
	// NetworkID is the active-thymesisflow identifier.
	NetworkID uint16
	// DonorBase is the donor effective address of the stolen region.
	DonorBase uint64
	// Trace and Span propagate the control plane's span context across the
	// transport, so agent-side handling lands in the same saga trace. Zero
	// when tracing is off.
	Trace trace.TraceID
	Span  trace.SpanID
}

// dedupeKey identifies one exact command instance for replay suppression.
type dedupeKey struct {
	att   string
	kind  CommandKind
	epoch uint64
}

// AttachmentStatus is the agent's materialized configuration for one
// attachment, reported to the control plane for reconciliation.
type AttachmentStatus struct {
	ID              string `json:"id"`
	StolenBytes     int64  `json:"stolen_bytes,omitempty"`
	ComputeAttached bool   `json:"compute_attached,omitempty"`
	Channels        int    `json:"channels,omitempty"`
	NetworkID       uint16 `json:"network_id"`
}

// Status is the agent's ground-truth report: which incarnation of the
// daemon is running and what configuration it currently holds. The
// control plane's reconciliation loop diffs this against its records.
type Status struct {
	Host        string             `json:"host"`
	Incarnation int                `json:"incarnation"`
	Attachments []AttachmentStatus `json:"attachments,omitempty"`
}

// Agent is one node's configuration daemon.
type Agent struct {
	mu      sync.Mutex
	host    string
	trusted string // control-plane token

	incarnation int
	applied     []Command
	rejected    int
	deduped     int

	// state is the materialized per-attachment configuration, rebuilt
	// from effective commands. seen suppresses exact replays.
	state map[string]*AttachmentStatus
	seen  map[dedupeKey]struct{}

	// elog records agent-side command handling into the control plane's
	// saga event log (nil = tracing off; every use is nil-guarded so the
	// disabled path stays allocation-free).
	elog *trace.EventLog
	wall trace.WallClock
}

// New returns an agent for the named host trusting the given control-plane
// token.
func New(host, trustedToken string) *Agent {
	return &Agent{
		host:    host,
		trusted: trustedToken,
		state:   make(map[string]*AttachmentStatus),
		seen:    make(map[dedupeKey]struct{}),
	}
}

// Host returns the host this agent manages.
func (a *Agent) Host() string { return a.host }

// SetEventLog joins this agent to the control plane's saga event log: every
// traced command (cmd.Trace != 0) records its agent-side outcome — applied,
// deduplicated, or rejected — into the same trace. A nil log disables.
func (a *Agent) SetEventLog(l *trace.EventLog, clock trace.WallClock) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.elog = l
	a.wall = clock
	if l != nil && clock == nil {
		a.wall = trace.Monotonic()
	}
}

// Apply validates and applies a configuration command. Untrusted pushes are
// rejected: no malicious software may install illegal forwarding
// configurations (Section IV-C). Application is idempotent: exact replays
// (same AttachmentID, Kind, Epoch) and state-level no-ops are acknowledged
// without mutating configuration or the applied log.
func (a *Agent) Apply(token string, cmd Command) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.elog == nil || cmd.Trace == 0 {
		return a.applyLocked(token, cmd)
	}
	preDeduped, preRejected := a.deduped, a.rejected
	err := a.applyLocked(token, cmd)
	ev := trace.LogEvent{
		WallNS: a.wall(),
		Trace:  cmd.Trace,
		Span:   cmd.Span,
		Source: "agent",
		Kind:   trace.KindAgentApply,
		Saga:   cmd.AttachmentID,
		Step:   string(cmd.Kind),
		Host:   a.host,
	}
	switch {
	case a.rejected > preRejected:
		ev.Kind = trace.KindAgentReject
	case a.deduped > preDeduped:
		ev.Kind = trace.KindAgentDedupe
	}
	if err != nil {
		ev.Err = err.Error()
	}
	a.elog.Append(ev)
	return err
}

// applyLocked holds the command-application logic; a.mu must be held.
func (a *Agent) applyLocked(token string, cmd Command) error {
	if token != a.trusted {
		a.rejected++
		return fmt.Errorf("agent %s: configuration push with untrusted token rejected", a.host)
	}
	switch cmd.Kind {
	case CmdStealMemory, CmdAttachCompute, CmdDetach:
	default:
		a.rejected++
		return fmt.Errorf("agent %s: unknown command kind %q", a.host, cmd.Kind)
	}
	if cmd.Kind != CmdDetach && cmd.Bytes <= 0 {
		a.rejected++
		return fmt.Errorf("agent %s: %s with non-positive size", a.host, cmd.Kind)
	}

	// Uncorrelated commands (no AttachmentID) keep the legacy append-only
	// behaviour: nothing to deduplicate against.
	if cmd.AttachmentID == "" {
		a.applied = append(a.applied, cmd)
		return nil
	}

	key := dedupeKey{att: cmd.AttachmentID, kind: cmd.Kind, epoch: cmd.Epoch}
	if _, replay := a.seen[key]; replay {
		a.deduped++
		return nil
	}
	a.seen[key] = struct{}{}

	st := a.state[cmd.AttachmentID]
	switch cmd.Kind {
	case CmdStealMemory:
		if st != nil && st.StolenBytes > 0 {
			a.deduped++ // already stolen for this attachment: no-op
			return nil
		}
		if st == nil {
			st = &AttachmentStatus{ID: cmd.AttachmentID}
			a.state[cmd.AttachmentID] = st
		}
		st.StolenBytes = cmd.Bytes
		st.NetworkID = cmd.NetworkID
	case CmdAttachCompute:
		if st != nil && st.ComputeAttached {
			a.deduped++
			return nil
		}
		if st == nil {
			st = &AttachmentStatus{ID: cmd.AttachmentID}
			a.state[cmd.AttachmentID] = st
		}
		st.ComputeAttached = true
		st.Channels = cmd.Channels
		st.NetworkID = cmd.NetworkID
	case CmdDetach:
		if st == nil {
			a.deduped++ // never configured (or already detached): no-op
			return nil
		}
		delete(a.state, cmd.AttachmentID)
	}
	a.applied = append(a.applied, cmd)
	return nil
}

// Restart simulates a crash-restart of the agent daemon: all volatile
// state — the applied log, the replay-suppression table, and the
// materialized configuration — is lost, and the incarnation counter
// advances so the control plane can detect the resurrection and re-push
// the configuration this host should hold.
func (a *Agent) Restart() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.incarnation++
	a.applied = nil
	a.rejected = 0
	a.deduped = 0
	a.state = make(map[string]*AttachmentStatus)
	a.seen = make(map[dedupeKey]struct{})
}

// Incarnation returns the number of times the agent has crash-restarted.
func (a *Agent) Incarnation() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.incarnation
}

// Status reports the agent's incarnation and materialized configuration,
// sorted by attachment ID for deterministic reconciliation sweeps.
func (a *Agent) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Status{Host: a.host, Incarnation: a.incarnation}
	for _, s := range a.state {
		st.Attachments = append(st.Attachments, *s)
	}
	sort.Slice(st.Attachments, func(i, j int) bool {
		return st.Attachments[i].ID < st.Attachments[j].ID
	})
	return st
}

// Holds reports the agent's configuration for one attachment.
func (a *Agent) Holds(attachmentID string) (AttachmentStatus, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.state[attachmentID]
	if !ok {
		return AttachmentStatus{}, false
	}
	return *st, true
}

// Applied returns a copy of the effective command log.
func (a *Agent) Applied() []Command {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Command(nil), a.applied...)
}

// Rejected returns the count of rejected pushes.
func (a *Agent) Rejected() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejected
}

// Deduped returns the count of commands acknowledged without application:
// exact replays of an already-applied (AttachmentID, Kind, Epoch) and
// state-level no-ops (re-steal, detach of an unknown attachment).
func (a *Agent) Deduped() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.deduped
}
