package agent

import "testing"

func TestTrustBoundary(t *testing.T) {
	a := New("host0", "secret")
	if a.Host() != "host0" {
		t.Fatalf("host = %q", a.Host())
	}
	if err := a.Apply("wrong", Command{Kind: CmdStealMemory, Bytes: 1}); err == nil {
		t.Fatal("untrusted push accepted")
	}
	if err := a.Apply("secret", Command{Kind: CmdStealMemory, Bytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply("secret", Command{Kind: CommandKind("bogus")}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := a.Apply("secret", Command{Kind: CmdAttachCompute, Bytes: 0}); err == nil {
		t.Fatal("zero-size attach accepted")
	}
	// Detach of an attachment this agent never configured is acknowledged
	// idempotently without landing in the effective log.
	if err := a.Apply("secret", Command{Kind: CmdDetach, AttachmentID: "att-0"}); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Applied()); got != 1 {
		t.Fatalf("applied = %d, want 1", got)
	}
	if got := a.Rejected(); got != 3 {
		t.Fatalf("rejected = %d, want 3", got)
	}
	if got := a.Deduped(); got != 1 {
		t.Fatalf("deduped = %d, want 1", got)
	}
}

func TestAppliedIsACopy(t *testing.T) {
	a := New("h", "tok")
	a.Apply("tok", Command{Kind: CmdStealMemory, Bytes: 5}) //nolint:errcheck
	log := a.Applied()
	log[0].Bytes = 999
	if a.Applied()[0].Bytes != 5 {
		t.Fatal("Applied aliases internal state")
	}
}

// TestReplayDeduplication: an exact replay (same AttachmentID, Kind, Epoch)
// is acknowledged but applied exactly once, so a command retried after an
// ambiguous transport failure does not double-apply.
func TestReplayDeduplication(t *testing.T) {
	a := New("donor", "tok")
	cmd := Command{Kind: CmdStealMemory, AttachmentID: "saga-1", Epoch: 7, Bytes: 1 << 20, NetworkID: 3}
	for i := 0; i < 3; i++ {
		if err := a.Apply("tok", cmd); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(a.Applied()); got != 1 {
		t.Fatalf("applied %d times, want 1", got)
	}
	if got := a.Deduped(); got != 2 {
		t.Fatalf("deduped = %d, want 2", got)
	}
	st, ok := a.Holds("saga-1")
	if !ok || st.StolenBytes != 1<<20 || st.NetworkID != 3 {
		t.Fatalf("state = %+v ok=%v", st, ok)
	}
	// A fresh-epoch re-steal of the same attachment is a state-level no-op.
	cmd.Epoch = 8
	if err := a.Apply("tok", cmd); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Applied()); got != 1 {
		t.Fatalf("re-steal re-applied: log = %d entries", got)
	}
}

// TestDetachIdempotent: detach applies once; replays and post-detach
// detaches are no-ops, leaving a balanced log.
func TestDetachIdempotent(t *testing.T) {
	a := New("donor", "tok")
	if err := a.Apply("tok", Command{Kind: CmdStealMemory, AttachmentID: "s1", Epoch: 1, Bytes: 4096}); err != nil {
		t.Fatal(err)
	}
	det := Command{Kind: CmdDetach, AttachmentID: "s1", Epoch: 2}
	for i := 0; i < 3; i++ {
		if err := a.Apply("tok", det); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Apply("tok", Command{Kind: CmdDetach, AttachmentID: "s1", Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	log := a.Applied()
	if len(log) != 2 || log[0].Kind != CmdStealMemory || log[1].Kind != CmdDetach {
		t.Fatalf("log = %+v, want balanced steal/detach pair", log)
	}
	if _, ok := a.Holds("s1"); ok {
		t.Fatal("state survived detach")
	}
}

// TestRestartLosesVolatileState: a crash-restart clears configuration and
// bumps the incarnation so the control plane can detect the resurrection.
func TestRestartLosesVolatileState(t *testing.T) {
	a := New("n0", "tok")
	if err := a.Apply("tok", Command{Kind: CmdAttachCompute, AttachmentID: "s1", Epoch: 1, Bytes: 4096, Channels: 2}); err != nil {
		t.Fatal(err)
	}
	if a.Incarnation() != 0 {
		t.Fatalf("incarnation = %d", a.Incarnation())
	}
	a.Restart()
	if a.Incarnation() != 1 {
		t.Fatalf("incarnation after restart = %d", a.Incarnation())
	}
	if len(a.Applied()) != 0 {
		t.Fatal("applied log survived restart")
	}
	if _, ok := a.Holds("s1"); ok {
		t.Fatal("attachment state survived restart")
	}
	// The dedupe table is gone too: a re-push with an old epoch applies.
	if err := a.Apply("tok", Command{Kind: CmdAttachCompute, AttachmentID: "s1", Epoch: 1, Bytes: 4096, Channels: 2}); err != nil {
		t.Fatal(err)
	}
	st, ok := a.Holds("s1")
	if !ok || !st.ComputeAttached {
		t.Fatalf("re-push after restart did not apply: %+v ok=%v", st, ok)
	}
}

// TestStatusReport: Status reports materialized state sorted by ID.
func TestStatusReport(t *testing.T) {
	a := New("n0", "tok")
	a.Apply("tok", Command{Kind: CmdStealMemory, AttachmentID: "s2", Epoch: 1, Bytes: 100}) //nolint:errcheck
	a.Apply("tok", Command{Kind: CmdStealMemory, AttachmentID: "s1", Epoch: 2, Bytes: 200}) //nolint:errcheck
	st := a.Status()
	if st.Host != "n0" || len(st.Attachments) != 2 {
		t.Fatalf("status = %+v", st)
	}
	if st.Attachments[0].ID != "s1" || st.Attachments[1].ID != "s2" {
		t.Fatalf("attachments not sorted: %+v", st.Attachments)
	}
}
