package agent

import "testing"

func TestTrustBoundary(t *testing.T) {
	a := New("host0", "secret")
	if a.Host() != "host0" {
		t.Fatalf("host = %q", a.Host())
	}
	if err := a.Apply("wrong", Command{Kind: CmdStealMemory, Bytes: 1}); err == nil {
		t.Fatal("untrusted push accepted")
	}
	if err := a.Apply("secret", Command{Kind: CmdStealMemory, Bytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply("secret", Command{Kind: CommandKind("bogus")}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := a.Apply("secret", Command{Kind: CmdAttachCompute, Bytes: 0}); err == nil {
		t.Fatal("zero-size attach accepted")
	}
	if err := a.Apply("secret", Command{Kind: CmdDetach, AttachmentID: "att-0"}); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Applied()); got != 2 {
		t.Fatalf("applied = %d, want 2", got)
	}
	if got := a.Rejected(); got != 3 {
		t.Fatalf("rejected = %d, want 3", got)
	}
}

func TestAppliedIsACopy(t *testing.T) {
	a := New("h", "tok")
	a.Apply("tok", Command{Kind: CmdStealMemory, Bytes: 5}) //nolint:errcheck
	log := a.Applied()
	log[0].Bytes = 999
	if a.Applied()[0].Bytes != 5 {
		t.Fatal("Applied aliases internal state")
	}
}
