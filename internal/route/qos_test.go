package route

import (
	"testing"

	"thymesisflow/internal/phy"
	"thymesisflow/internal/sim"
)

func TestQoSWeightedShares(t *testing.T) {
	k := sim.NewKernel()
	q := NewQoS(k, float64(phy.ChannelBytesPerSec))
	if err := q.SetWeight(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := q.SetWeight(2, 1); err != nil {
		t.Fatal(err)
	}
	want1 := float64(phy.ChannelBytesPerSec) * 0.75
	want2 := float64(phy.ChannelBytesPerSec) * 0.25
	if got := q.Share(1); got != want1 {
		t.Fatalf("flow 1 share = %g, want %g", got, want1)
	}
	if got := q.Share(2); got != want2 {
		t.Fatalf("flow 2 share = %g, want %g", got, want2)
	}
}

func TestQoSThroughputRatio(t *testing.T) {
	// Two greedy flows, weights 3:1, pumping through a shared channel:
	// achieved throughput must track the weights.
	k := sim.NewKernel()
	const rate = 1e9
	q := NewQoS(k, rate)
	q.SetWeight(1, 3) //nolint:errcheck
	q.SetWeight(2, 1) //nolint:errcheck
	moved := map[NetworkID]int64{}
	for _, id := range []NetworkID{1, 2} {
		id := id
		k.Go("flow", func(p *sim.Proc) {
			for p.Now() < 10*sim.Millisecond {
				q.Admit(p, id, 4096)
				moved[id] += 4096
			}
		})
	}
	k.RunUntil(10 * sim.Millisecond)
	k.Run()
	ratio := float64(moved[1]) / float64(moved[2])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("throughput ratio = %.2f (moved %d vs %d), want ~3", ratio, moved[1], moved[2])
	}
	total := float64(moved[1]+moved[2]) / 0.010
	if total > rate*1.15 {
		t.Fatalf("aggregate %.3g exceeds the channel rate %.3g", total, rate)
	}
}

func TestQoSUnshapedFlowPasses(t *testing.T) {
	k := sim.NewKernel()
	q := NewQoS(k, 1e9)
	q.SetWeight(1, 1) //nolint:errcheck
	passed := false
	k.Go("free", func(p *sim.Proc) {
		start := p.Now()
		q.Admit(p, 99, 1<<30) // unregistered: no shaping
		passed = p.Now() == start
	})
	k.Run()
	if !passed {
		t.Fatal("unshaped flow was delayed")
	}
}

func TestQoSRebalanceOnFlowRemoval(t *testing.T) {
	k := sim.NewKernel()
	q := NewQoS(k, 1e9)
	q.SetWeight(1, 1) //nolint:errcheck
	q.SetWeight(2, 1) //nolint:errcheck
	if q.Share(1) != 0.5e9 {
		t.Fatalf("share with peer = %g", q.Share(1))
	}
	q.SetWeight(2, 0) //nolint:errcheck
	if q.Share(1) != 1e9 {
		t.Fatalf("share after peer removal = %g, want full channel", q.Share(1))
	}
	if q.Share(2) != 0 {
		t.Fatal("removed flow still shaped")
	}
	if got := q.Flows(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("flows = %v", got)
	}
	if err := q.SetWeight(3, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestQoSBurstTolerance(t *testing.T) {
	// A flow idle long enough accrues burst tokens: a small burst after
	// idling passes without delay, but only up to the burst bound.
	k := sim.NewKernel()
	q := NewQoS(k, 1e9)
	q.SetWeight(1, 1) //nolint:errcheck
	k.Go("flow", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond) // accrue burst (capped at 0.5ms worth)
		start := p.Now()
		q.Admit(p, 1, 400_000) // under the 500k burst cap
		if p.Now() != start {
			t.Error("in-burst admit was delayed")
		}
		q.Admit(p, 1, 400_000) // exceeds remaining tokens: must wait
		if p.Now() == start {
			t.Error("over-burst admit was not delayed")
		}
	})
	k.Run()
}
