// Package route implements the ThymesisFlow routing layer (Section IV-A3).
//
// The routing layer sits right after the endpoint attachment module and
// forwards each transaction independently, based on the network identifier
// the RMMU stamped into the transaction header. Any number of endpoints may
// be connected concurrently. The layer also implements channel bonding:
// transactions of an active thymesisflow whose header requests bonding are
// spread over the flow's channel set in round-robin fashion. A channel may
// be shared by several active thymesisflows regardless of whether any of
// them bonds.
package route

import (
	"fmt"
	"sort"

	"thymesisflow/internal/capi"
	"thymesisflow/internal/llc"
	"thymesisflow/internal/sim"
)

// NetworkID identifies an active thymesisflow: the set of in-transit
// transactions between one compute endpoint and one memory-stealing
// endpoint for one memory section group.
type NetworkID = uint16

// Router forwards transactions onto LLC ports according to their header
// network identifier.
type Router struct {
	name  string
	flows map[NetworkID]*flowState

	forwarded int64
	dropped   int64
}

type flowState struct {
	ports []*llc.Port
	next  int // round-robin cursor for bonded flows
	sent  int64
}

// NewRouter returns an empty router.
func NewRouter(name string) *Router {
	return &Router{name: name, flows: make(map[NetworkID]*flowState)}
}

// AddFlow registers an active thymesisflow with its channel set. One port
// means no bonding is possible; two or more enable round-robin bonding for
// transactions whose header requests it.
func (r *Router) AddFlow(id NetworkID, ports ...*llc.Port) error {
	if len(ports) == 0 {
		return fmt.Errorf("route: flow %d registered with no channels", id)
	}
	if _, dup := r.flows[id]; dup {
		return fmt.Errorf("route: flow %d already registered", id)
	}
	r.flows[id] = &flowState{ports: ports}
	return nil
}

// RemoveFlow tears down an active thymesisflow.
func (r *Router) RemoveFlow(id NetworkID) error {
	if _, ok := r.flows[id]; !ok {
		return fmt.Errorf("route: flow %d not registered", id)
	}
	delete(r.flows, id)
	return nil
}

// Flows returns the registered network identifiers in ascending order.
func (r *Router) Flows() []NetworkID {
	out := make([]NetworkID, 0, len(r.flows))
	for id := range r.flows {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Channels returns the channel set of a flow.
func (r *Router) Channels(id NetworkID) ([]*llc.Port, error) {
	f, ok := r.flows[id]
	if !ok {
		return nil, fmt.Errorf("route: flow %d not registered", id)
	}
	return f.ports, nil
}

// Forward routes one transaction. Bonded transactions rotate across the
// flow's channels; unbonded transactions always use the first channel so
// that request/response ordering per flow is preserved on a single path.
// Transactions for unknown flows are dropped with an error: the control
// plane only installs legal destinations (Section IV-C), so an unknown ID
// indicates a misconfiguration, never a routable packet.
func (r *Router) Forward(t *capi.Transaction) error {
	f, ok := r.flows[t.NetworkID]
	if !ok {
		r.dropped++
		return fmt.Errorf("route: %s: transaction for unknown flow %d dropped", r.name, t.NetworkID)
	}
	port := f.ports[0]
	if t.Bonded && len(f.ports) > 1 {
		port = f.ports[f.next%len(f.ports)]
		f.next++
	}
	port.Send(t)
	f.sent++
	r.forwarded++
	return nil
}

// ForwardFrom is Forward with process-context credit backpressure.
func (r *Router) ForwardFrom(p *sim.Proc, t *capi.Transaction) error {
	f, ok := r.flows[t.NetworkID]
	if !ok {
		r.dropped++
		return fmt.Errorf("route: %s: transaction for unknown flow %d dropped", r.name, t.NetworkID)
	}
	port := f.ports[0]
	if t.Bonded && len(f.ports) > 1 {
		port = f.ports[f.next%len(f.ports)]
		f.next++
	}
	port.SendFrom(p, t)
	f.sent++
	r.forwarded++
	return nil
}

// Stats returns (forwarded, dropped) counts.
func (r *Router) Stats() (forwarded, dropped int64) { return r.forwarded, r.dropped }

// FlowSent returns the number of transactions forwarded for one flow.
func (r *Router) FlowSent(id NetworkID) int64 {
	if f, ok := r.flows[id]; ok {
		return f.sent
	}
	return 0
}
