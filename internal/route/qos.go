package route

import (
	"fmt"
	"sort"

	"thymesisflow/internal/sim"
)

// QoS implements the channel-sharing extension the paper identifies
// (Section IV-A3: "more sophisticated channel sharing approaches that go
// beyond simple round-robin, and will be able to offer bandwidth allocation
// and QoS capabilities"): per-flow weighted bandwidth shares on a shared
// channel, enforced with token buckets.
//
// Each flow is granted rate = weight/totalWeight * channelRate. A flow that
// exceeds its share blocks (ForwardFrom) until tokens accumulate; unshaped
// flows are unaffected. Shares re-divide automatically as flows come and
// go.
type QoS struct {
	k           *sim.Kernel
	channelRate float64 // bytes/sec being shared
	flows       map[NetworkID]*flowShare
	totalWeight int
}

type flowShare struct {
	weight int
	bucket tokenBucket
}

// tokenBucket is a virtual-time token bucket: tokens accrue at `rate`
// bytes/sec up to `burst`; take() returns the time the requested bytes are
// available.
type tokenBucket struct {
	rate     float64
	burst    float64
	tokens   float64
	lastFill sim.Time
}

func (tb *tokenBucket) fill(now sim.Time) {
	dt := (now - tb.lastFill).Seconds()
	tb.tokens += dt * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.lastFill = now
}

// take consumes n bytes of tokens, returning how long the caller must wait
// for them to be available (0 when within the share).
func (tb *tokenBucket) take(now sim.Time, n float64) sim.Time {
	tb.fill(now)
	tb.tokens -= n
	if tb.tokens >= 0 {
		return 0
	}
	deficit := -tb.tokens
	return sim.Time(deficit / tb.rate * float64(sim.Second))
}

// NewQoS builds a QoS arbiter for one shared channel.
func NewQoS(k *sim.Kernel, channelBytesPerSec float64) *QoS {
	if channelBytesPerSec <= 0 {
		panic("route: QoS needs a positive channel rate")
	}
	return &QoS{k: k, channelRate: channelBytesPerSec, flows: make(map[NetworkID]*flowShare)}
}

// SetWeight grants a flow a bandwidth weight (0 removes shaping for it).
func (q *QoS) SetWeight(id NetworkID, weight int) error {
	if weight < 0 {
		return fmt.Errorf("route: negative QoS weight %d", weight)
	}
	if cur, ok := q.flows[id]; ok {
		q.totalWeight -= cur.weight
		delete(q.flows, id)
	}
	if weight > 0 {
		q.flows[id] = &flowShare{weight: weight}
		q.totalWeight += weight
	}
	q.rebalance()
	return nil
}

// rebalance recomputes every flow's rate from the weight distribution.
func (q *QoS) rebalance() {
	for _, f := range q.flows {
		f.bucket.rate = q.channelRate * float64(f.weight) / float64(q.totalWeight)
		// Allow half a millisecond of burst at the flow's rate.
		f.bucket.burst = f.bucket.rate * 0.0005
		if f.bucket.tokens > f.bucket.burst {
			f.bucket.tokens = f.bucket.burst
		}
		f.bucket.lastFill = q.k.Now()
	}
}

// Admit blocks the calling process until the flow's share admits n bytes.
// Unregistered flows pass immediately.
func (q *QoS) Admit(p *sim.Proc, id NetworkID, n int64) {
	f, ok := q.flows[id]
	if !ok {
		return
	}
	wait := f.bucket.take(q.k.Now(), float64(n))
	if wait > 0 {
		p.Sleep(wait)
	}
}

// Share returns the flow's current guaranteed rate in bytes/sec (0 when
// unshaped).
func (q *QoS) Share(id NetworkID) float64 {
	if f, ok := q.flows[id]; ok {
		return f.bucket.rate
	}
	return 0
}

// Flows lists the shaped flows in ascending ID order.
func (q *QoS) Flows() []NetworkID {
	out := make([]NetworkID, 0, len(q.flows))
	for id := range q.flows {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
